#ifndef MLCS_UDF_UDF_H_
#define MLCS_UDF_UDF_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "storage/table.h"
#include "types/schema.h"

namespace mlcs::udf {

/// A vectorized scalar UDF: receives whole columns (length `num_rows`, or
/// length 1 for broadcast scalars) and returns one column of length
/// `num_rows` (or 1, which the engine broadcasts). This is the execution
/// granularity the paper's MonetDB/Python UDFs run at — one call per
/// query, not one call per row.
using ScalarUdfFn = std::function<Result<ColumnPtr>(
    const std::vector<ColumnPtr>& args, size_t num_rows)>;

/// A row-at-a-time scalar function — the "traditional UDF" baseline the
/// paper contrasts against (§1). Wrapped by RegisterScalarRowAtATime into
/// the vectorized interface; the ablation benchmark measures the per-row
/// boundary-crossing cost this adds.
using RowUdfFn =
    std::function<Result<Value>(const std::vector<Value>& args)>;

/// A table-returning UDF (the paper's Listing 1 `train(...) RETURNS
/// TABLE(...)`): consumes columns, produces a whole table.
using TableUdfFn =
    std::function<Result<TablePtr>(const std::vector<ColumnPtr>& args)>;

struct ScalarUdfEntry {
  std::string name;
  /// Declared parameter types; empty disables checking (native UDFs that
  /// handle their own typing). Arguments are cast to these before the call.
  std::vector<TypeId> param_types;
  bool typed = false;
  TypeId return_type = TypeId::kInt32;
  bool has_return_type = false;
  ScalarUdfFn fn;
  /// True when this entry wraps a row-at-a-time function (ablation flag).
  bool row_at_a_time = false;
};

struct TableUdfEntry {
  std::string name;
  std::vector<TypeId> param_types;
  bool typed = false;
  Schema return_schema;
  TableUdfFn fn;
};

/// Thread-safe UDF catalog; names are case-insensitive. Scalar and table
/// functions live in separate namespaces (SQL resolves by call position).
class UdfRegistry {
 public:
  UdfRegistry() = default;
  UdfRegistry(const UdfRegistry&) = delete;
  UdfRegistry& operator=(const UdfRegistry&) = delete;

  Status RegisterScalar(ScalarUdfEntry entry, bool or_replace = false);
  Status RegisterTable(TableUdfEntry entry, bool or_replace = false);
  /// Wraps a per-row function into the vectorized interface.
  Status RegisterScalarRowAtATime(const std::string& name,
                                  std::vector<TypeId> param_types,
                                  TypeId return_type, RowUdfFn fn,
                                  bool or_replace = false);

  Result<std::shared_ptr<const ScalarUdfEntry>> GetScalar(
      const std::string& name) const;
  Result<std::shared_ptr<const TableUdfEntry>> GetTable(
      const std::string& name) const;
  [[nodiscard]] bool HasScalar(const std::string& name) const;
  [[nodiscard]] bool HasTable(const std::string& name) const;
  std::vector<std::string> ListScalar() const;
  std::vector<std::string> ListTable() const;
  Status Drop(const std::string& name, bool if_exists = false);

  /// Validates arity and casts arguments to the declared parameter types
  /// (length-1 broadcast columns stay length-1). Shared by the SQL
  /// executor and the parallel driver.
  static Result<std::vector<ColumnPtr>> CoerceArgs(
      const std::vector<TypeId>& param_types, bool typed,
      const std::vector<ColumnPtr>& args, const std::string& name);

  /// Invokes a scalar UDF with coercion and result-length validation.
  Result<ColumnPtr> CallScalar(const std::string& name,
                               const std::vector<ColumnPtr>& args,
                               size_t num_rows) const;

  /// Invokes a table UDF with coercion and schema validation.
  Result<TablePtr> CallTable(const std::string& name,
                             const std::vector<ColumnPtr>& args) const;

 private:
  mutable Mutex mutex_{"UdfRegistry::mutex_"};
  std::map<std::string, std::shared_ptr<const ScalarUdfEntry>> scalar_
      MLCS_GUARDED_BY(mutex_);
  std::map<std::string, std::shared_ptr<const TableUdfEntry>> table_
      MLCS_GUARDED_BY(mutex_);
};

}  // namespace mlcs::udf

#endif  // MLCS_UDF_UDF_H_
