#include "udf/udf.h"

#include "common/string_util.h"
#include "obs/trace.h"

namespace mlcs::udf {

Status UdfRegistry::RegisterScalar(ScalarUdfEntry entry, bool or_replace) {
  if (entry.name.empty() || !entry.fn) {
    return Status::InvalidArgument("scalar UDF needs a name and a function");
  }
  std::string key = ToLower(entry.name);
  MutexLock lock(&mutex_);
  if (!or_replace && scalar_.count(key) > 0) {
    return Status::AlreadyExists("scalar function '" + entry.name +
                                 "' already exists");
  }
  scalar_[key] = std::make_shared<const ScalarUdfEntry>(std::move(entry));
  return Status::OK();
}

Status UdfRegistry::RegisterTable(TableUdfEntry entry, bool or_replace) {
  if (entry.name.empty() || !entry.fn) {
    return Status::InvalidArgument("table UDF needs a name and a function");
  }
  if (entry.return_schema.num_fields() == 0) {
    return Status::InvalidArgument("table UDF needs a non-empty schema");
  }
  std::string key = ToLower(entry.name);
  MutexLock lock(&mutex_);
  if (!or_replace && table_.count(key) > 0) {
    return Status::AlreadyExists("table function '" + entry.name +
                                 "' already exists");
  }
  table_[key] = std::make_shared<const TableUdfEntry>(std::move(entry));
  return Status::OK();
}

Status UdfRegistry::RegisterScalarRowAtATime(const std::string& name,
                                             std::vector<TypeId> param_types,
                                             TypeId return_type, RowUdfFn fn,
                                             bool or_replace) {
  if (!fn) return Status::InvalidArgument("null row function");
  ScalarUdfEntry entry;
  entry.name = name;
  entry.param_types = std::move(param_types);
  entry.typed = !entry.param_types.empty();
  entry.return_type = return_type;
  entry.has_return_type = true;
  entry.row_at_a_time = true;
  entry.fn = [fn = std::move(fn), return_type](
                 const std::vector<ColumnPtr>& args,
                 size_t num_rows) -> Result<ColumnPtr> {
    ColumnPtr out = Column::Make(return_type);
    out->Reserve(num_rows);
    std::vector<Value> row(args.size());
    // The per-row loop the paper's vectorized UDFs avoid: one boxing
    // round-trip and one function call per tuple.
    for (size_t r = 0; r < num_rows; ++r) {
      for (size_t a = 0; a < args.size(); ++a) {
        size_t idx = args[a]->size() == 1 ? 0 : r;
        MLCS_ASSIGN_OR_RETURN(row[a], args[a]->GetValue(idx));
      }
      MLCS_ASSIGN_OR_RETURN(Value result, fn(row));
      MLCS_RETURN_IF_ERROR(out->AppendValue(result));
    }
    return out;
  };
  return RegisterScalar(std::move(entry), or_replace);
}

Result<std::shared_ptr<const ScalarUdfEntry>> UdfRegistry::GetScalar(
    const std::string& name) const {
  MutexLock lock(&mutex_);
  auto it = scalar_.find(ToLower(name));
  if (it == scalar_.end()) {
    return Status::NotFound("scalar function '" + name + "' does not exist");
  }
  return it->second;
}

Result<std::shared_ptr<const TableUdfEntry>> UdfRegistry::GetTable(
    const std::string& name) const {
  MutexLock lock(&mutex_);
  auto it = table_.find(ToLower(name));
  if (it == table_.end()) {
    return Status::NotFound("table function '" + name + "' does not exist");
  }
  return it->second;
}

bool UdfRegistry::HasScalar(const std::string& name) const {
  MutexLock lock(&mutex_);
  return scalar_.count(ToLower(name)) > 0;
}

bool UdfRegistry::HasTable(const std::string& name) const {
  MutexLock lock(&mutex_);
  return table_.count(ToLower(name)) > 0;
}

std::vector<std::string> UdfRegistry::ListScalar() const {
  MutexLock lock(&mutex_);
  std::vector<std::string> names;
  for (const auto& [name, _] : scalar_) names.push_back(name);
  return names;
}

std::vector<std::string> UdfRegistry::ListTable() const {
  MutexLock lock(&mutex_);
  std::vector<std::string> names;
  for (const auto& [name, _] : table_) names.push_back(name);
  return names;
}

Status UdfRegistry::Drop(const std::string& name, bool if_exists) {
  std::string key = ToLower(name);
  MutexLock lock(&mutex_);
  size_t erased = scalar_.erase(key) + table_.erase(key);
  if (erased == 0 && !if_exists) {
    return Status::NotFound("function '" + name + "' does not exist");
  }
  return Status::OK();
}

Result<std::vector<ColumnPtr>> UdfRegistry::CoerceArgs(
    const std::vector<TypeId>& param_types, bool typed,
    const std::vector<ColumnPtr>& args, const std::string& name) {
  if (typed && args.size() != param_types.size()) {
    return Status::InvalidArgument(
        "function '" + name + "' expects " +
        std::to_string(param_types.size()) + " arguments, got " +
        std::to_string(args.size()));
  }
  std::vector<ColumnPtr> coerced;
  coerced.reserve(args.size());
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == nullptr) {
      return Status::InvalidArgument("null argument column");
    }
    if (typed && args[i]->type() != param_types[i]) {
      MLCS_ASSIGN_OR_RETURN(ColumnPtr cast, args[i]->CastTo(param_types[i]));
      coerced.push_back(std::move(cast));
    } else {
      coerced.push_back(args[i]);
    }
  }
  return coerced;
}

Result<ColumnPtr> UdfRegistry::CallScalar(const std::string& name,
                                          const std::vector<ColumnPtr>& args,
                                          size_t num_rows) const {
  obs::ScopedSpan span("udf:", name);
  span.set_rows_in(num_rows);
  MLCS_ASSIGN_OR_RETURN(auto entry, GetScalar(name));
  MLCS_ASSIGN_OR_RETURN(
      std::vector<ColumnPtr> coerced,
      CoerceArgs(entry->param_types, entry->typed, args, name));
  MLCS_ASSIGN_OR_RETURN(ColumnPtr out, entry->fn(coerced, num_rows));
  if (out == nullptr) {
    return Status::Internal("function '" + name + "' returned null");
  }
  if (out->size() != num_rows && out->size() != 1) {
    return Status::Internal(
        "function '" + name + "' returned " + std::to_string(out->size()) +
        " rows, expected " + std::to_string(num_rows) + " (or 1)");
  }
  if (entry->has_return_type && out->type() != entry->return_type) {
    span.set_rows_out(out->size());
    return out->CastTo(entry->return_type);
  }
  span.set_rows_out(out->size());
  return out;
}

Result<TablePtr> UdfRegistry::CallTable(
    const std::string& name, const std::vector<ColumnPtr>& args) const {
  obs::ScopedSpan span("udf:", name);
  MLCS_ASSIGN_OR_RETURN(auto entry, GetTable(name));
  MLCS_ASSIGN_OR_RETURN(
      std::vector<ColumnPtr> coerced,
      CoerceArgs(entry->param_types, entry->typed, args, name));
  MLCS_ASSIGN_OR_RETURN(TablePtr out, entry->fn(coerced));
  if (out == nullptr) {
    return Status::Internal("table function '" + name + "' returned null");
  }
  // Align the output to the declared schema: names by position, types cast.
  if (out->num_columns() != entry->return_schema.num_fields()) {
    return Status::Internal(
        "table function '" + name + "' returned " +
        std::to_string(out->num_columns()) + " columns, declared " +
        std::to_string(entry->return_schema.num_fields()));
  }
  Schema schema;
  std::vector<ColumnPtr> columns;
  for (size_t i = 0; i < out->num_columns(); ++i) {
    const Field& declared = entry->return_schema.field(i);
    ColumnPtr col = out->column(i);
    if (col->type() != declared.type) {
      MLCS_ASSIGN_OR_RETURN(col, col->CastTo(declared.type));
    }
    schema.AddField(declared.name, declared.type);
    columns.push_back(std::move(col));
  }
  auto aligned =
      std::make_shared<Table>(std::move(schema), std::move(columns));
  MLCS_RETURN_IF_ERROR(aligned->Validate());
  span.set_rows_out(aligned->num_rows());
  return aligned;
}

}  // namespace mlcs::udf
