#include "udf/parallel.h"

#include <mutex>

#include "common/thread_pool.h"

namespace mlcs::udf {

Result<ColumnPtr> ParallelCallScalar(const UdfRegistry& registry,
                                     const std::string& name,
                                     const std::vector<ColumnPtr>& args,
                                     size_t num_rows,
                                     const ParallelOptions& options) {
  ThreadPool& pool = ThreadPool::Global();
  size_t num_chunks =
      options.num_chunks == 0 ? pool.num_threads() : options.num_chunks;
  if (options.min_rows_per_chunk > 0) {
    num_chunks = std::min(num_chunks,
                          std::max<size_t>(1, num_rows /
                                                  options.min_rows_per_chunk));
  }
  if (num_chunks <= 1 || num_rows == 0) {
    return registry.CallScalar(name, args, num_rows);
  }

  size_t chunk_size = (num_rows + num_chunks - 1) / num_chunks;
  struct ChunkResult {
    Status status = Status::OK();
    ColumnPtr column;
  };
  std::vector<ChunkResult> results(num_chunks);

  pool.ParallelForChunks(
      num_rows, num_chunks, [&](size_t chunk, size_t begin, size_t end) {
        size_t rows = end - begin;
        std::vector<ColumnPtr> sliced;
        sliced.reserve(args.size());
        for (const auto& arg : args) {
          if (arg->size() == 1) {
            sliced.push_back(arg);  // broadcast scalar, shared
          } else {
            sliced.push_back(arg->Slice(begin, rows));
          }
        }
        auto r = registry.CallScalar(name, sliced, rows);
        if (!r.ok()) {
          results[chunk].status = r.status();
        } else {
          results[chunk].column = std::move(r).ValueOrDie();
        }
      });

  // Stitch in chunk order; broadcast (length-1) chunk outputs expand.
  ColumnPtr out;
  size_t chunk_index = 0;
  for (size_t begin = 0; begin < num_rows; begin += chunk_size) {
    ChunkResult& cr = results[chunk_index];
    MLCS_RETURN_IF_ERROR(cr.status);
    if (cr.column == nullptr) {
      return Status::Internal("parallel UDF chunk produced no column");
    }
    size_t rows = std::min(chunk_size, num_rows - begin);
    ColumnPtr piece = cr.column;
    if (piece->size() == 1 && rows != 1) {
      MLCS_ASSIGN_OR_RETURN(Value v, piece->GetValue(0));
      piece = Column::Constant(v, rows);
    }
    if (out == nullptr) {
      out = Column::Make(piece->type());
      out->Reserve(num_rows);
    }
    MLCS_RETURN_IF_ERROR(out->AppendColumn(*piece));
    ++chunk_index;
  }
  return out;
}

}  // namespace mlcs::udf
