#include "udf/parallel.h"

#include <algorithm>
#include <vector>

#include "common/parallel_for.h"
#include "common/thread_pool.h"

namespace mlcs::udf {

Result<ColumnPtr> ParallelCallScalar(const UdfRegistry& registry,
                                     const std::string& name,
                                     const std::vector<ColumnPtr>& args,
                                     size_t num_rows,
                                     const ParallelOptions& options) {
  ThreadPool& pool =
      options.pool != nullptr ? *options.pool : ThreadPool::Global();
  size_t num_chunks =
      options.num_chunks == 0 ? pool.num_threads() : options.num_chunks;
  if (options.min_rows_per_chunk > 0) {
    num_chunks = std::min(num_chunks,
                          std::max<size_t>(1, num_rows /
                                                  options.min_rows_per_chunk));
  }
  if (num_chunks <= 1 || num_rows == 0) {
    return registry.CallScalar(name, args, num_rows);
  }

  // Chunks ride the morsel scheduler (one chunk per item): same atomic
  // handoff, caller participation (so a UDF invoked from inside a
  // morselized operator on the same pool cannot deadlock), and
  // first-error-wins cancellation as the relational operators.
  size_t chunk_size = (num_rows + num_chunks - 1) / num_chunks;
  std::vector<ColumnPtr> pieces(num_chunks);
  MorselPolicy policy;
  policy.pool = &pool;
  MLCS_RETURN_IF_ERROR(ParallelItems(
      policy, num_chunks, [&](size_t chunk) -> Status {
        size_t begin = chunk * chunk_size;
        size_t rows = std::min(chunk_size, num_rows - begin);
        std::vector<ColumnPtr> sliced;
        sliced.reserve(args.size());
        for (const auto& arg : args) {
          if (arg->size() == 1) {
            sliced.push_back(arg);  // broadcast scalar, shared
          } else {
            sliced.push_back(arg->Slice(begin, rows));
          }
        }
        MLCS_ASSIGN_OR_RETURN(pieces[chunk],
                              registry.CallScalar(name, sliced, rows));
        if (pieces[chunk] == nullptr) {
          return Status::Internal("parallel UDF chunk produced no column");
        }
        return Status::OK();
      }));

  // Stitch in chunk order; broadcast (length-1) chunk outputs expand.
  ColumnPtr out;
  for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
    size_t begin = chunk * chunk_size;
    size_t rows = std::min(chunk_size, num_rows - begin);
    ColumnPtr piece = pieces[chunk];
    if (piece->size() == 1 && rows != 1) {
      MLCS_ASSIGN_OR_RETURN(Value v, piece->GetValue(0));
      piece = Column::Constant(v, rows);
    }
    if (out == nullptr) {
      out = Column::Make(piece->type());
      out->Reserve(num_rows);
    }
    MLCS_RETURN_IF_ERROR(out->AppendColumn(*piece));
  }
  return out;
}

}  // namespace mlcs::udf
