#ifndef MLCS_UDF_PARALLEL_H_
#define MLCS_UDF_PARALLEL_H_

#include "common/result.h"
#include "udf/udf.h"

namespace mlcs {
class ThreadPool;
}

namespace mlcs::udf {

struct ParallelOptions {
  /// Number of chunks the input columns are split into; 0 = thread count.
  size_t num_chunks = 0;
  /// Minimum rows per chunk — below this the call stays single-chunk
  /// (splitting tiny inputs costs more than it saves).
  size_t min_rows_per_chunk = 4096;
  /// Pool the chunks run on; nullptr = ThreadPool::Global() (the same
  /// pool the relational operators' MorselPolicy defaults to, so one
  /// MLCS_THREADS knob governs UDFs and operators alike).
  mlcs::ThreadPool* pool = nullptr;
};

/// Runs a *vectorized scalar* UDF over the input in parallel: slices each
/// full-length argument column into contiguous chunks, invokes the UDF once
/// per chunk on the thread pool, and stitches the result columns back
/// together in order. Length-1 (broadcast) arguments are shared across
/// chunks unsliced. This implements the paper's "parallel processing
/// opportunities" claim for UDFs that are row-wise pure (predict-style
/// functions; train-style table UDFs need the whole input and are not
/// chunkable).
Result<ColumnPtr> ParallelCallScalar(const UdfRegistry& registry,
                                     const std::string& name,
                                     const std::vector<ColumnPtr>& args,
                                     size_t num_rows,
                                     const ParallelOptions& options = {});

}  // namespace mlcs::udf

#endif  // MLCS_UDF_PARALLEL_H_
