#include "types/data_type.h"

#include "common/string_util.h"

namespace mlcs {

const char* TypeIdToString(TypeId type) {
  switch (type) {
    case TypeId::kBool:
      return "BOOLEAN";
    case TypeId::kInt32:
      return "INTEGER";
    case TypeId::kInt64:
      return "BIGINT";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kVarchar:
      return "VARCHAR";
    case TypeId::kBlob:
      return "BLOB";
  }
  return "UNKNOWN";
}

Result<TypeId> TypeIdFromString(std::string_view name) {
  std::string upper = ToUpper(TrimView(name));
  if (upper == "BOOLEAN" || upper == "BOOL") return TypeId::kBool;
  if (upper == "INTEGER" || upper == "INT" || upper == "INT32") {
    return TypeId::kInt32;
  }
  if (upper == "BIGINT" || upper == "INT64" || upper == "LONG") {
    return TypeId::kInt64;
  }
  if (upper == "DOUBLE" || upper == "FLOAT" || upper == "REAL" ||
      upper == "FLOAT64") {
    return TypeId::kDouble;
  }
  if (upper == "VARCHAR" || upper == "TEXT" || upper == "STRING") {
    return TypeId::kVarchar;
  }
  if (upper == "BLOB" || upper == "BYTEA") return TypeId::kBlob;
  return Status::ParseError("unknown type name: '" + std::string(name) + "'");
}

bool IsNumericType(TypeId type) {
  switch (type) {
    case TypeId::kBool:
    case TypeId::kInt32:
    case TypeId::kInt64:
    case TypeId::kDouble:
      return true;
    case TypeId::kVarchar:
    case TypeId::kBlob:
      return false;
  }
  return false;
}

size_t FixedWidthOf(TypeId type) {
  switch (type) {
    case TypeId::kBool:
      return 1;
    case TypeId::kInt32:
      return 4;
    case TypeId::kInt64:
      return 8;
    case TypeId::kDouble:
      return 8;
    case TypeId::kVarchar:
    case TypeId::kBlob:
      return 0;
  }
  return 0;
}

Result<TypeId> CommonNumericType(TypeId a, TypeId b) {
  if (!IsNumericType(a) || !IsNumericType(b)) {
    return Status::TypeMismatch(
        std::string("no numeric promotion between ") + TypeIdToString(a) +
        " and " + TypeIdToString(b));
  }
  if (a == TypeId::kDouble || b == TypeId::kDouble) return TypeId::kDouble;
  if (a == TypeId::kInt64 || b == TypeId::kInt64) return TypeId::kInt64;
  if (a == TypeId::kInt32 || b == TypeId::kInt32) return TypeId::kInt32;
  return TypeId::kBool;
}

}  // namespace mlcs
