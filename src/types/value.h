#ifndef MLCS_TYPES_VALUE_H_
#define MLCS_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/byte_buffer.h"
#include "common/result.h"
#include "types/data_type.h"

namespace mlcs {

/// A single typed (possibly NULL) scalar. Values appear at the boundaries of
/// the vectorized engine: literals in expressions, INSERT rows, protocol
/// cells, and scalar UDF parameters. Hot loops operate on Columns instead.
class Value {
 public:
  /// NULL of type INTEGER (the default). Use MakeNull for explicit types.
  Value() : type_(TypeId::kInt32), is_null_(true) {}

  static Value MakeNull(TypeId type) {
    Value v;
    v.type_ = type;
    v.is_null_ = true;
    return v;
  }
  static Value Bool(bool v) { return Value(TypeId::kBool, uint64_t(v)); }
  static Value Int32(int32_t v) {
    return Value(TypeId::kInt32, static_cast<uint64_t>(static_cast<int64_t>(v)));
  }
  static Value Int64(int64_t v) {
    return Value(TypeId::kInt64, static_cast<uint64_t>(v));
  }
  static Value Double(double v) {
    Value out;
    out.type_ = TypeId::kDouble;
    out.is_null_ = false;
    out.double_ = v;
    return out;
  }
  static Value Varchar(std::string v) {
    Value out;
    out.type_ = TypeId::kVarchar;
    out.is_null_ = false;
    out.str_ = std::move(v);
    return out;
  }
  static Value Blob(std::string bytes) {
    Value out;
    out.type_ = TypeId::kBlob;
    out.is_null_ = false;
    out.str_ = std::move(bytes);
    return out;
  }

  TypeId type() const { return type_; }
  bool is_null() const { return is_null_; }

  /// Typed accessors; the caller must know the type (checked in debug via
  /// the As* Result variants below when the type is dynamic).
  bool bool_value() const { return int_ != 0; }
  int32_t int32_value() const { return static_cast<int32_t>(int_); }
  int64_t int64_value() const { return static_cast<int64_t>(int_); }
  double double_value() const { return double_; }
  const std::string& string_value() const { return str_; }
  const std::string& blob_value() const { return str_; }

  /// Numeric coercions (NULL or non-numeric → error).
  Result<int64_t> AsInt64() const;
  Result<double> AsDouble() const;
  Result<bool> AsBool() const;
  Result<std::string> AsString() const;

  /// Converts to the given type (numeric widening/narrowing, string
  /// parse/format). NULLs stay NULL.
  Result<Value> CastTo(TypeId target) const;

  /// SQL-ish rendering; NULL → "NULL"; BLOBs render as "\x<hex>".
  std::string ToString() const;

  /// Deep equality: same type, both NULL or equal payloads.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Binary serialization (type tag + null flag + payload).
  void Serialize(ByteWriter* writer) const;
  static Result<Value> Deserialize(ByteReader* reader);

 private:
  Value(TypeId type, uint64_t bits)
      : type_(type), is_null_(false), int_(bits) {}

  TypeId type_;
  bool is_null_ = false;
  uint64_t int_ = 0;    // bool/int32/int64 payload
  double double_ = 0;   // double payload
  std::string str_;     // varchar/blob payload
};

}  // namespace mlcs

#endif  // MLCS_TYPES_VALUE_H_
