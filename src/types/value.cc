#include "types/value.h"

#include "common/string_util.h"

namespace mlcs {

namespace {
std::string HexEncode(const std::string& bytes) {
  static const char* kHex = "0123456789abcdef";
  std::string out = "\\x";
  out.reserve(2 + bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xF]);
  }
  return out;
}
}  // namespace

Result<int64_t> Value::AsInt64() const {
  if (is_null_) return Status::InvalidArgument("NULL has no integer value");
  switch (type_) {
    case TypeId::kBool:
    case TypeId::kInt32:
    case TypeId::kInt64:
      return static_cast<int64_t>(int_);
    case TypeId::kDouble:
      return static_cast<int64_t>(double_);
    case TypeId::kVarchar:
      return ParseInt64(str_);
    case TypeId::kBlob:
      return Status::TypeMismatch("BLOB is not numeric");
  }
  return Status::Internal("unreachable");
}

Result<double> Value::AsDouble() const {
  if (is_null_) return Status::InvalidArgument("NULL has no double value");
  switch (type_) {
    case TypeId::kBool:
    case TypeId::kInt32:
    case TypeId::kInt64:
      return static_cast<double>(static_cast<int64_t>(int_));
    case TypeId::kDouble:
      return double_;
    case TypeId::kVarchar:
      return ParseDouble(str_);
    case TypeId::kBlob:
      return Status::TypeMismatch("BLOB is not numeric");
  }
  return Status::Internal("unreachable");
}

Result<bool> Value::AsBool() const {
  if (is_null_) return Status::InvalidArgument("NULL has no bool value");
  switch (type_) {
    case TypeId::kBool:
    case TypeId::kInt32:
    case TypeId::kInt64:
      return int_ != 0;
    case TypeId::kDouble:
      return double_ != 0.0;
    case TypeId::kVarchar:
      if (EqualsIgnoreCase(str_, "true")) return true;
      if (EqualsIgnoreCase(str_, "false")) return false;
      return Status::ParseError("invalid bool: '" + str_ + "'");
    case TypeId::kBlob:
      return Status::TypeMismatch("BLOB is not boolean");
  }
  return Status::Internal("unreachable");
}

Result<std::string> Value::AsString() const {
  if (is_null_) return Status::InvalidArgument("NULL has no string value");
  if (type_ == TypeId::kVarchar || type_ == TypeId::kBlob) return str_;
  return ToString();
}

Result<Value> Value::CastTo(TypeId target) const {
  if (type_ == target) return *this;
  if (is_null_) return MakeNull(target);
  switch (target) {
    case TypeId::kBool: {
      MLCS_ASSIGN_OR_RETURN(bool b, AsBool());
      return Bool(b);
    }
    case TypeId::kInt32: {
      MLCS_ASSIGN_OR_RETURN(int64_t v, AsInt64());
      if (v < INT32_MIN || v > INT32_MAX) {
        return Status::OutOfRange("cast to INTEGER overflows");
      }
      return Int32(static_cast<int32_t>(v));
    }
    case TypeId::kInt64: {
      MLCS_ASSIGN_OR_RETURN(int64_t v, AsInt64());
      return Int64(v);
    }
    case TypeId::kDouble: {
      MLCS_ASSIGN_OR_RETURN(double v, AsDouble());
      return Double(v);
    }
    case TypeId::kVarchar:
      return Varchar(ToString());
    case TypeId::kBlob:
      if (type_ == TypeId::kVarchar) return Blob(str_);
      return Status::TypeMismatch("only VARCHAR casts to BLOB");
  }
  return Status::Internal("unreachable");
}

std::string Value::ToString() const {
  if (is_null_) return "NULL";
  switch (type_) {
    case TypeId::kBool:
      return int_ != 0 ? "true" : "false";
    case TypeId::kInt32:
    case TypeId::kInt64:
      return std::to_string(static_cast<int64_t>(int_));
    case TypeId::kDouble:
      return FormatDouble(double_);
    case TypeId::kVarchar:
      return str_;
    case TypeId::kBlob:
      return HexEncode(str_);
  }
  return "?";
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  if (is_null_ || other.is_null_) return is_null_ == other.is_null_;
  switch (type_) {
    case TypeId::kBool:
    case TypeId::kInt32:
    case TypeId::kInt64:
      return int_ == other.int_;
    case TypeId::kDouble:
      return double_ == other.double_;
    case TypeId::kVarchar:
    case TypeId::kBlob:
      return str_ == other.str_;
  }
  return false;
}

void Value::Serialize(ByteWriter* writer) const {
  writer->WriteU8(static_cast<uint8_t>(type_));
  writer->WriteBool(is_null_);
  if (is_null_) return;
  switch (type_) {
    case TypeId::kBool:
      writer->WriteBool(int_ != 0);
      break;
    case TypeId::kInt32:
      writer->WriteI32(static_cast<int32_t>(int_));
      break;
    case TypeId::kInt64:
      writer->WriteI64(static_cast<int64_t>(int_));
      break;
    case TypeId::kDouble:
      writer->WriteDouble(double_);
      break;
    case TypeId::kVarchar:
    case TypeId::kBlob:
      writer->WriteString(str_);
      break;
  }
}

Result<Value> Value::Deserialize(ByteReader* reader) {
  MLCS_ASSIGN_OR_RETURN(uint8_t type_byte, reader->ReadU8());
  if (type_byte > static_cast<uint8_t>(TypeId::kBlob)) {
    return Status::ParseError("invalid type tag in serialized value");
  }
  TypeId type = static_cast<TypeId>(type_byte);
  MLCS_ASSIGN_OR_RETURN(bool is_null, reader->ReadBool());
  if (is_null) return MakeNull(type);
  switch (type) {
    case TypeId::kBool: {
      MLCS_ASSIGN_OR_RETURN(bool v, reader->ReadBool());
      return Bool(v);
    }
    case TypeId::kInt32: {
      MLCS_ASSIGN_OR_RETURN(int32_t v, reader->ReadI32());
      return Int32(v);
    }
    case TypeId::kInt64: {
      MLCS_ASSIGN_OR_RETURN(int64_t v, reader->ReadI64());
      return Int64(v);
    }
    case TypeId::kDouble: {
      MLCS_ASSIGN_OR_RETURN(double v, reader->ReadDouble());
      return Double(v);
    }
    case TypeId::kVarchar: {
      MLCS_ASSIGN_OR_RETURN(std::string v, reader->ReadString());
      return Varchar(std::move(v));
    }
    case TypeId::kBlob: {
      MLCS_ASSIGN_OR_RETURN(std::string v, reader->ReadString());
      return Blob(std::move(v));
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace mlcs
