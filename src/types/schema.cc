#include "types/schema.h"

#include "common/string_util.h"

namespace mlcs {

std::optional<size_t> Schema::FieldIndex(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (EqualsIgnoreCase(fields_[i].name, name)) return i;
  }
  return std::nullopt;
}

Result<size_t> Schema::RequireFieldIndex(std::string_view name) const {
  auto idx = FieldIndex(name);
  if (idx.has_value()) return *idx;
  std::vector<std::string> names;
  names.reserve(fields_.size());
  for (const auto& f : fields_) names.push_back(f.name);
  return Status::NotFound("column '" + std::string(name) +
                          "' not found; available: " +
                          JoinStrings(names, ", "));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += " ";
    out += TypeIdToString(fields_[i].type);
  }
  out += ")";
  return out;
}

void Schema::Serialize(ByteWriter* writer) const {
  writer->WriteVarint(fields_.size());
  for (const auto& f : fields_) {
    writer->WriteString(f.name);
    writer->WriteU8(static_cast<uint8_t>(f.type));
  }
}

Result<Schema> Schema::Deserialize(ByteReader* reader) {
  MLCS_ASSIGN_OR_RETURN(uint64_t count, reader->ReadVarint());
  std::vector<Field> fields;
  fields.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    MLCS_ASSIGN_OR_RETURN(std::string name, reader->ReadString());
    MLCS_ASSIGN_OR_RETURN(uint8_t type_byte, reader->ReadU8());
    if (type_byte > static_cast<uint8_t>(TypeId::kBlob)) {
      return Status::ParseError("invalid type tag in serialized schema");
    }
    fields.push_back(Field{std::move(name), static_cast<TypeId>(type_byte)});
  }
  return Schema(std::move(fields));
}

}  // namespace mlcs
