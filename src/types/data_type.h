#ifndef MLCS_TYPES_DATA_TYPE_H_
#define MLCS_TYPES_DATA_TYPE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace mlcs {

/// Logical column types supported by the engine. BLOB is first-class because
/// serialized models are stored in BLOB columns (paper §3.1, Listing 1).
enum class TypeId : uint8_t {
  kBool = 0,
  kInt32 = 1,
  kInt64 = 2,
  kDouble = 3,
  kVarchar = 4,
  kBlob = 5,
};

/// SQL-facing name ("INTEGER", "BIGINT", "DOUBLE", "VARCHAR", "BLOB",
/// "BOOLEAN").
const char* TypeIdToString(TypeId type);

/// Parses a SQL type name (case-insensitive; accepts common aliases such as
/// INT/INTEGER, FLOAT/DOUBLE/REAL, TEXT/STRING/VARCHAR).
Result<TypeId> TypeIdFromString(std::string_view name);

/// True for BOOL/INT32/INT64/DOUBLE.
[[nodiscard]] bool IsNumericType(TypeId type);

/// Width in bytes of the fixed-size physical representation; 0 for
/// variable-length types (VARCHAR, BLOB).
size_t FixedWidthOf(TypeId type);

/// Numeric promotion used by arithmetic kernels: the smallest numeric type
/// both inputs can be losslessly converted to (int32+int32→int32,
/// int32+int64→int64, any+double→double).
Result<TypeId> CommonNumericType(TypeId a, TypeId b);

}  // namespace mlcs

#endif  // MLCS_TYPES_DATA_TYPE_H_
