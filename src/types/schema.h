#ifndef MLCS_TYPES_SCHEMA_H_
#define MLCS_TYPES_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/byte_buffer.h"
#include "common/result.h"
#include "types/data_type.h"

namespace mlcs {

/// A named, typed column slot in a schema.
struct Field {
  std::string name;
  TypeId type = TypeId::kInt32;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// Ordered list of fields describing a table or result set.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  void AddField(std::string name, TypeId type) {
    fields_.push_back(Field{std::move(name), type});
  }

  /// Case-insensitive lookup; nullopt if absent.
  [[nodiscard]] std::optional<size_t> FieldIndex(std::string_view name) const;
  /// Lookup that errors with the available field names on a miss.
  Result<size_t> RequireFieldIndex(std::string_view name) const;

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

  /// "(a INTEGER, b VARCHAR)"
  std::string ToString() const;

  void Serialize(ByteWriter* writer) const;
  static Result<Schema> Deserialize(ByteReader* reader);

 private:
  std::vector<Field> fields_;
};

}  // namespace mlcs

#endif  // MLCS_TYPES_SCHEMA_H_
