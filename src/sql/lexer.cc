#include "sql/lexer.h"

#include <cctype>

namespace mlcs::sql {

Result<std::vector<SqlToken>> TokenizeSql(const std::string& source) {
  std::vector<SqlToken> tokens;
  size_t i = 0;
  int line = 1;
  auto push = [&](SqlTokenType type, std::string text, size_t offset) {
    tokens.push_back(SqlToken{type, std::move(text), line, offset});
  };
  while (i < source.size()) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < source.size() && source[i + 1] == '-') {
      while (i < source.size() && source[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[i])) ||
              source[i] == '_')) {
        ++i;
      }
      push(SqlTokenType::kIdent, source.substr(start, i - start), start);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      bool is_float = false;
      while (i < source.size() &&
             (std::isdigit(static_cast<unsigned char>(source[i])) ||
              source[i] == '.' || source[i] == 'e' || source[i] == 'E' ||
              ((source[i] == '+' || source[i] == '-') && i > start &&
               (source[i - 1] == 'e' || source[i - 1] == 'E')))) {
        if (source[i] == '.' || source[i] == 'e' || source[i] == 'E') {
          is_float = true;
        }
        ++i;
      }
      push(is_float ? SqlTokenType::kFloat : SqlTokenType::kInt,
           source.substr(start, i - start), start);
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < source.size()) {
        if (source[i] == '\'') {
          if (i + 1 < source.size() && source[i + 1] == '\'') {
            text.push_back('\'');  // '' escape
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        if (source[i] == '\n') ++line;
        text.push_back(source[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated string at line " +
                                  std::to_string(line));
      }
      push(SqlTokenType::kString, std::move(text), start);
      continue;
    }
    auto two = [&](char next) {
      return i + 1 < source.size() && source[i + 1] == next;
    };
    switch (c) {
      case '(':
        push(SqlTokenType::kLParen, "(", start);
        ++i;
        break;
      case ')':
        push(SqlTokenType::kRParen, ")", start);
        ++i;
        break;
      case '{': {
        // Raw-capture a UDF body up to the matching close brace.
        ++i;
        int depth = 1;
        std::string body;
        while (i < source.size() && depth > 0) {
          char b = source[i];
          if (b == '\n') ++line;
          if (b == '#') {  // VectorScript comment: braces inside are inert
            while (i < source.size() && source[i] != '\n') {
              body.push_back(source[i]);
              ++i;
            }
            continue;
          }
          if (b == '\'' || b == '"') {
            char quote = b;
            body.push_back(b);
            ++i;
            while (i < source.size()) {
              if (source[i] == '\\' && i + 1 < source.size()) {
                body.push_back(source[i]);
                body.push_back(source[i + 1]);
                i += 2;
                continue;
              }
              if (source[i] == '\n') ++line;
              body.push_back(source[i]);
              if (source[i] == quote) {
                ++i;
                break;
              }
              ++i;
            }
            continue;
          }
          if (b == '{') ++depth;
          if (b == '}') {
            --depth;
            if (depth == 0) {
              ++i;
              break;
            }
          }
          body.push_back(b);
          ++i;
        }
        if (depth != 0) {
          return Status::ParseError("unterminated { } block at line " +
                                    std::to_string(line));
        }
        push(SqlTokenType::kBody, std::move(body), start);
        break;
      }
      case '}':
        return Status::ParseError("unmatched '}' at line " +
                                  std::to_string(line));
      case ',':
        push(SqlTokenType::kComma, ",", start);
        ++i;
        break;
      case ';':
        push(SqlTokenType::kSemicolon, ";", start);
        ++i;
        break;
      case '.':
        push(SqlTokenType::kDot, ".", start);
        ++i;
        break;
      case '*':
        push(SqlTokenType::kStar, "*", start);
        ++i;
        break;
      case '=':
        push(SqlTokenType::kOperator, "=", start);
        ++i;
        break;
      case '<':
        if (two('=')) {
          push(SqlTokenType::kOperator, "<=", start);
          i += 2;
        } else if (two('>')) {
          push(SqlTokenType::kOperator, "<>", start);
          i += 2;
        } else {
          push(SqlTokenType::kOperator, "<", start);
          ++i;
        }
        break;
      case '>':
        if (two('=')) {
          push(SqlTokenType::kOperator, ">=", start);
          i += 2;
        } else {
          push(SqlTokenType::kOperator, ">", start);
          ++i;
        }
        break;
      case '!':
        if (two('=')) {
          push(SqlTokenType::kOperator, "!=", start);
          i += 2;
        } else {
          return Status::ParseError("unexpected '!' at line " +
                                    std::to_string(line));
        }
        break;
      case '+':
      case '-':
      case '/':
      case '%':
        push(SqlTokenType::kOperator, std::string(1, c), start);
        ++i;
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at line " + std::to_string(line));
    }
  }
  tokens.push_back(SqlToken{SqlTokenType::kEof, "", line, source.size()});
  return tokens;
}

}  // namespace mlcs::sql
