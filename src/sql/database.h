#ifndef MLCS_SQL_DATABASE_H_
#define MLCS_SQL_DATABASE_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "sql/executor.h"
#include "storage/catalog.h"
#include "udf/udf.h"

namespace mlcs {

/// The embedded analytical database — the library's main entry point.
///
///   mlcs::Database db;
///   auto conn = db.Connect();
///   conn.Query("CREATE TABLE t (x INTEGER)");
///   conn.Query("INSERT INTO t VALUES (1), (2)");
///   auto result = conn.Query("SELECT SUM(x) FROM t");
///
/// UDFs (vectorized, the paper's integration mechanism) register either
/// natively from C++ via udfs() or from SQL via
/// `CREATE FUNCTION ... LANGUAGE VSCRIPT { ... }` (LANGUAGE PYTHON is an
/// accepted alias so the paper's listings run verbatim).
class Database {
 public:
  Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  udf::UdfRegistry& udfs() { return udfs_; }

  /// Morsel scheduling policy for this database's relational operators
  /// (defaults to the global pool, sized by MLCS_THREADS). Embedders with
  /// their own pool pass it here.
  void set_exec_policy(const MorselPolicy& policy) {
    executor_->set_policy(policy);
  }
  const MorselPolicy& exec_policy() const { return executor_->policy(); }

  /// Executes one SQL statement and returns its result table.
  Result<TablePtr> Query(const std::string& sql);
  /// Executes a semicolon-separated script; returns the last result.
  Result<TablePtr> Run(const std::string& script);

  /// Persists every catalog table into `dir` (one .mlt file per table plus
  /// a manifest) — "storing data inside a relational database" across
  /// process restarts. UDFs are code, not data: native ones must be
  /// re-registered; VSCRIPT functions must be re-created.
  Status SaveTo(const std::string& dir) const;
  /// Loads all tables a previous SaveTo wrote (replacing same-named ones).
  Status LoadFrom(const std::string& dir);

  class Connection Connect();

 private:
  void RegisterBuiltinFunctions();

  Catalog catalog_;
  udf::UdfRegistry udfs_;
  std::unique_ptr<sql::Executor> executor_;
};

/// A lightweight session handle. Connections share the database's catalog
/// and UDF registry and may be used from different threads (each call is
/// internally synchronized at the catalog/registry level; concurrent DDL
/// and DML on the same table is the caller's responsibility, as in SQLite).
class Connection {
 public:
  explicit Connection(Database* db) : db_(db) {}

  Result<TablePtr> Query(const std::string& sql) { return db_->Query(sql); }
  Result<TablePtr> Run(const std::string& script) {
    return db_->Run(script);
  }
  Database& database() { return *db_; }

 private:
  Database* db_;
};

}  // namespace mlcs

#endif  // MLCS_SQL_DATABASE_H_
