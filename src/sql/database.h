#ifndef MLCS_SQL_DATABASE_H_
#define MLCS_SQL_DATABASE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/result.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sql/executor.h"
#include "storage/catalog.h"
#include "udf/udf.h"

namespace mlcs {

/// Counters summed across every Database in the process — the serving
/// benches read these to report cache effectiveness without plumbing a
/// Database pointer through the harness. Backed by the metrics registry
/// (`mlcs.plan_cache.hits` / `mlcs.plan_cache.misses`); mlcs_metrics()
/// exports the same series.
uint64_t PlanCacheHitsTotal();
uint64_t PlanCacheMissesTotal();

/// The embedded analytical database — the library's main entry point.
///
///   mlcs::Database db;
///   auto conn = db.Connect();
///   conn.Query("CREATE TABLE t (x INTEGER)");
///   conn.Query("INSERT INTO t VALUES (1), (2)");
///   auto result = conn.Query("SELECT SUM(x) FROM t");
///
/// UDFs (vectorized, the paper's integration mechanism) register either
/// natively from C++ via udfs() or from SQL via
/// `CREATE FUNCTION ... LANGUAGE VSCRIPT { ... }` (LANGUAGE PYTHON is an
/// accepted alias so the paper's listings run verbatim).
///
/// SELECT statements are planned once and cached by SQL text: the serving
/// path replays the same parameterless query per request, so repeat
/// queries skip parse/bind/optimize entirely. Entries are validated
/// against the catalog's schema version and re-planned after any DDL.
class Database {
 public:
  Database();
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  udf::UdfRegistry& udfs() { return udfs_; }

  /// Morsel scheduling policy for this database's relational operators
  /// (defaults to the global pool, sized by MLCS_THREADS). Embedders with
  /// their own pool pass it here. Clears the plan cache: prepared plans
  /// capture the policy at plan time.
  void set_exec_policy(const MorselPolicy& policy);
  const MorselPolicy& exec_policy() const { return executor_->policy(); }

  /// Toggles the plan rewrite rules (see sql/optimizer.h). Defaults on;
  /// the MLCS_DISABLE_OPTIMIZER env var (any non-empty value) starts it
  /// off. Clears the plan cache.
  void set_optimizer_enabled(bool enabled);
  bool optimizer_enabled() const { return executor_->optimizer_enabled(); }

  /// Executes one SQL statement and returns its result table.
  Result<TablePtr> Query(const std::string& sql);
  /// Executes a semicolon-separated script; returns the last result.
  Result<TablePtr> Run(const std::string& script);

  /// Currently resident prepared plans. The cache's event counters
  /// (hits / misses / stale / evictions) live on the metrics registry as
  /// process-wide `mlcs.plan_cache.*` series — query them via
  /// `SELECT * FROM mlcs_metrics()` or obs::MetricsRegistry directly.
  size_t plan_cache_size() const;
  void ClearPlanCache();

  /// Persists every catalog table into `dir` as columnar block files (one
  /// `<dir>/<table>/block_NNNN.blk` per row group, with zone maps, plus a
  /// per-table manifest and a `catalog.manifest` listing) — "storing data
  /// inside a relational database" across process restarts. Model BLOBs
  /// ride along: the model store is an ordinary catalog table. All writes
  /// are atomic (temp file + fsync + rename). UDFs are code, not data:
  /// native ones must be re-registered; VSCRIPT functions re-created.
  Status SaveTo(const std::string& dir) const;
  /// Attaches all tables a previous SaveTo wrote (replacing same-named
  /// ones) as disk-backed entries: block payloads load lazily through the
  /// buffer pool on first scan. Also reads the legacy v1 layout
  /// (tables.txt + monolithic .mlt files), eagerly.
  Status LoadFrom(const std::string& dir);

  class Connection Connect();

 private:
  void RegisterBuiltinFunctions();
  /// Renders the optimized plan into the query's trace when the statement
  /// has already crossed the slow-query threshold (lazy: fast queries
  /// never pay the render).
  static void MaybeCapturePlanText(std::optional<obs::TraceContext>& trace,
                                   const sql::PreparedSelect& plan);

  // Each internally synchronized (Catalog/UdfRegistry carry their own
  // mutexes; the Executor is immutable after the setters clear the cache).
  Catalog catalog_;                         // lint:allow(guarded-member)
  udf::UdfRegistry udfs_;                   // lint:allow(guarded-member)
  std::unique_ptr<sql::Executor> executor_; // lint:allow(guarded-member)

  /// LRU plan cache: SQL text → prepared plan. `lru_` is most-recent-first;
  /// each map entry holds its list position for O(1) touch.
  struct CacheEntry {
    std::shared_ptr<const sql::PreparedSelect> plan;
    std::list<std::string>::iterator lru_pos;
  };
  static constexpr size_t kPlanCacheCapacity = 128;
  mutable Mutex cache_mu_{"Database::cache_mu_"};
  std::unordered_map<std::string, CacheEntry> plan_cache_
      MLCS_GUARDED_BY(cache_mu_);
  std::list<std::string> lru_ MLCS_GUARDED_BY(cache_mu_);
  /// Registry-backed cache counters (process-wide series; pointers cached
  /// at construction so the hot path never takes the registry lock).
  /// Atomic bumps fix the old copy-under-lock races on non-atomic fields.
  obs::Counter* cache_hits_;
  obs::Counter* cache_misses_;
  obs::Counter* cache_stale_;
  obs::Counter* cache_evictions_;
  obs::Gauge* cache_entries_;
};

/// A lightweight session handle. Connections share the database's catalog
/// and UDF registry and may be used from different threads (each call is
/// internally synchronized at the catalog/registry level; concurrent DDL
/// and DML on the same table is the caller's responsibility, as in SQLite).
class Connection {
 public:
  explicit Connection(Database* db) : db_(db) {}

  Result<TablePtr> Query(const std::string& sql) { return db_->Query(sql); }
  Result<TablePtr> Run(const std::string& script) {
    return db_->Run(script);
  }
  Database& database() { return *db_; }

 private:
  Database* db_;
};

}  // namespace mlcs

#endif  // MLCS_SQL_DATABASE_H_
