#ifndef MLCS_SQL_LEXER_H_
#define MLCS_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace mlcs::sql {

enum class SqlTokenType {
  kIdent,     // bare identifier or keyword (keyword-ness decided in parser)
  kInt,
  kFloat,
  kString,    // '...' literal
  kOperator,  // = <> != < <= > >= + - * / %
  kLParen,
  kRParen,
  /// `{ ... }` block captured raw (text excludes the outer braces). UDF
  /// bodies are VectorScript, not SQL — the lexer must not tokenize them.
  /// Nested braces, quoted strings and `#` comments inside are respected.
  kBody,
  kComma,
  kSemicolon,
  kDot,
  kStar,      // '*' (also multiplication; parser disambiguates)
  kEof,
};

struct SqlToken {
  SqlTokenType type = SqlTokenType::kEof;
  std::string text;
  int line = 1;
  /// Byte offset into the original source — used to slice raw UDF bodies
  /// out of CREATE FUNCTION ... { ... } without re-lexing them as SQL.
  size_t offset = 0;
};

/// Tokenizes SQL. `--` starts a line comment; strings use single quotes
/// with '' escaping. Keywords stay kIdent (matched case-insensitively by
/// the parser).
Result<std::vector<SqlToken>> TokenizeSql(const std::string& source);

}  // namespace mlcs::sql

#endif  // MLCS_SQL_LEXER_H_
