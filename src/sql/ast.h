#ifndef MLCS_SQL_AST_H_
#define MLCS_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "exec/hash_join.h"
#include "exec/kernels.h"
#include "types/schema.h"
#include "types/value.h"

namespace mlcs::sql {

struct SelectStatement;

/// SQL expression AST. Kept separate from exec::Expression so the executor
/// can resolve scalar subqueries and aggregate calls before building the
/// vectorized expression tree.
struct SqlExpr;
using SqlExprPtr = std::unique_ptr<SqlExpr>;

enum class SqlExprKind {
  kLiteral,
  kColumnRef,   // name (possibly qualified; only the last part is kept)
  kBinary,
  kUnary,
  kCall,        // function(args) — scalar UDF, builtin, or aggregate
  kCast,        // CAST(expr AS TYPE)
  kIsNull,      // expr IS [NOT] NULL
  kSubquery,    // (SELECT ...) used as a scalar
  kStar,        // '*' inside COUNT(*)
  kCase,        // CASE WHEN ... THEN ... [ELSE ...] END
};
// Note: `x IN (a, b)` and `x BETWEEN a AND b` are desugared by the parser
// into OR-of-equalities / AND-of-comparisons, so they need no AST kinds.

struct SqlExpr {
  SqlExprKind kind = SqlExprKind::kLiteral;
  int line = 1;

  Value literal;                       // kLiteral
  std::string name;                    // kColumnRef / kCall
  exec::BinOpKind bin_op = exec::BinOpKind::kAdd;  // kBinary
  exec::UnOpKind un_op = exec::UnOpKind::kNeg;     // kUnary
  SqlExprPtr left;
  SqlExprPtr right;
  std::vector<SqlExprPtr> args;        // kCall
  TypeId cast_type = TypeId::kInt32;   // kCast
  bool is_not_null = false;            // kIsNull: true → IS NOT NULL
  std::unique_ptr<SelectStatement> subquery;  // kSubquery
  // kCase: (condition, value) pairs in order; `left` holds the ELSE value
  // (null when absent).
  std::vector<std::pair<SqlExprPtr, SqlExprPtr>> when_clauses;

  std::string ToString() const;
};

/// One item of a SELECT list.
struct SelectItem {
  bool star = false;   // SELECT *
  SqlExprPtr expr;
  std::string alias;   // empty → derived from the expression
};

/// Argument of a table function in FROM: either a scalar expression or a
/// parenthesized subquery whose columns become vector arguments (the
/// MonetDB `SELECT * FROM train((SELECT ...), 16)` calling convention).
struct TableFunctionArg {
  SqlExprPtr scalar;
  std::unique_ptr<SelectStatement> table;
};

/// FROM-clause relation.
struct TableRef {
  enum class Kind { kBase, kJoin, kFunction, kSubquery };
  Kind kind = Kind::kBase;

  std::string name;   // kBase table name / kFunction function name
  std::string alias;

  // kJoin
  std::unique_ptr<TableRef> left;
  std::unique_ptr<TableRef> right;
  exec::JoinType join_type = exec::JoinType::kInner;
  std::vector<std::pair<std::string, std::string>> join_keys;  // left=right

  // kFunction
  std::vector<TableFunctionArg> fn_args;

  // kSubquery
  std::unique_ptr<SelectStatement> subquery;
};

struct OrderItem {
  SqlExprPtr expr;   // usually a column ref; evaluated over the result
  bool descending = false;
};

struct SelectStatement {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::unique_ptr<TableRef> from;   // null → SELECT without FROM
  SqlExprPtr where;
  std::vector<std::string> group_by;
  /// Evaluated over the projected output (reference output column names /
  /// aliases, e.g. `HAVING n > 5` with `COUNT(*) AS n`).
  SqlExprPtr having;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;               // -1 → no limit
};

struct CreateTableStmt {
  std::string name;
  bool or_replace = false;
  Schema schema;                                   // column-list form
  std::unique_ptr<SelectStatement> as_select;      // CREATE TABLE AS form
};

struct InsertStmt {
  std::string table;
  std::vector<std::vector<SqlExprPtr>> rows;       // VALUES form (literals)
  std::unique_ptr<SelectStatement> select;         // INSERT ... SELECT form
};

struct DropStmt {
  bool is_function = false;
  std::string name;
  bool if_exists = false;
};

struct CreateFunctionStmt {
  std::string name;
  bool or_replace = false;
  std::vector<Field> params;
  bool returns_table = false;
  Schema table_schema;           // RETURNS TABLE(...)
  TypeId scalar_type = TypeId::kInt32;  // RETURNS <type>
  std::string language;          // e.g. "VSCRIPT"
  std::string body;              // raw text between { }
};

struct DeleteStmt {
  std::string table;
  SqlExprPtr where;  // null → delete all rows
};

/// UPDATE <table> SET col = expr [, ...] [WHERE expr].
struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, SqlExprPtr>> assignments;
  SqlExprPtr where;  // null → all rows
};

/// SHOW TABLES / SHOW FUNCTIONS.
struct ShowStmt {
  enum class What { kTables, kFunctions };
  What what = What::kTables;
};

/// DESCRIBE <table> — one row per column (name, type).
struct DescribeStmt {
  std::string table;
};

struct ExplainStmt;  // defined after Statement (holds one)

using Statement =
    std::variant<SelectStatement, CreateTableStmt, InsertStmt, DropStmt,
                 CreateFunctionStmt, DeleteStmt, UpdateStmt, ShowStmt,
                 DescribeStmt, std::unique_ptr<ExplainStmt>>;

/// EXPLAIN <statement> — renders the plan as text without executing.
/// EXPLAIN ANALYZE <select> executes the statement under a forced trace
/// context and annotates each node with actual time / row counts.
struct ExplainStmt {
  Statement inner;
  bool analyze = false;
};

}  // namespace mlcs::sql

#endif  // MLCS_SQL_AST_H_
