#include "sql/database.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>

#include "bufpool/stored_table.h"
#include "common/file_util.h"
#include "common/string_util.h"
#include "exec/operator.h"
#include "obs/flight_recorder.h"
#include "obs/introspection.h"
#include "obs/trace.h"
#include "sql/parser.h"
#include "storage/encoding.h"
#include "storage/table_io.h"

namespace mlcs {

namespace {

/// Registers a 1-argument numeric builtin computing fn over doubles.
void RegisterNumericFn(udf::UdfRegistry* registry, const char* name,
                       double (*fn)(double)) {
  udf::ScalarUdfEntry entry;
  entry.name = name;
  entry.return_type = TypeId::kDouble;
  entry.has_return_type = true;
  entry.fn = [fn, name = std::string(name)](
                 const std::vector<ColumnPtr>& args,
                 size_t /*num_rows*/) -> Result<ColumnPtr> {
    if (args.size() != 1) {
      return Status::InvalidArgument(name + " takes exactly one argument");
    }
    MLCS_ASSIGN_OR_RETURN(std::vector<double> data,
                          args[0]->ToDoubleVector());
    for (auto& v : data) v = fn(v);
    ColumnPtr out = Column::FromDouble(std::move(data));
    if (args[0]->has_nulls()) {
      for (size_t i = 0; i < args[0]->size(); ++i) {
        if (args[0]->IsNull(i)) out->SetNull(i);
      }
    }
    return out;
  };
  (void)registry->RegisterScalar(std::move(entry));
}

/// Registers a 1-argument string builtin.
void RegisterStringFn(udf::UdfRegistry* registry, const char* name,
                      std::string (*fn)(std::string_view), TypeId out_type) {
  udf::ScalarUdfEntry entry;
  entry.name = name;
  entry.return_type = out_type;
  entry.has_return_type = true;
  entry.fn = [fn, out_type, name = std::string(name)](
                 const std::vector<ColumnPtr>& args,
                 size_t /*num_rows*/) -> Result<ColumnPtr> {
    if (args.size() != 1) {
      return Status::InvalidArgument(name + " takes exactly one argument");
    }
    if (args[0]->type() != TypeId::kVarchar) {
      return Status::TypeMismatch(name + " requires a VARCHAR argument");
    }
    ColumnPtr out = Column::Make(out_type);
    out->Reserve(args[0]->size());
    for (size_t i = 0; i < args[0]->size(); ++i) {
      if (args[0]->IsNull(i)) {
        out->AppendNull();
        continue;
      }
      std::string transformed = fn(args[0]->str_data()[i]);
      if (out_type == TypeId::kVarchar) {
        out->AppendString(std::move(transformed));
      } else {
        MLCS_ASSIGN_OR_RETURN(int64_t v, ParseInt64(transformed));
        out->AppendInt64(v);
      }
    }
    return out;
  };
  (void)registry->RegisterScalar(std::move(entry));
}

}  // namespace

uint64_t PlanCacheHitsTotal() {
  static obs::Counter* hits =
      obs::MetricsRegistry::Global().GetCounter("mlcs.plan_cache.hits");
  return hits->Value();
}

uint64_t PlanCacheMissesTotal() {
  static obs::Counter* misses =
      obs::MetricsRegistry::Global().GetCounter("mlcs.plan_cache.misses");
  return misses->Value();
}

Database::Database() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  cache_hits_ = registry.GetCounter("mlcs.plan_cache.hits");
  cache_misses_ = registry.GetCounter("mlcs.plan_cache.misses");
  cache_stale_ = registry.GetCounter("mlcs.plan_cache.stale");
  cache_evictions_ = registry.GetCounter("mlcs.plan_cache.evictions");
  cache_entries_ = registry.GetGauge("mlcs.plan_cache.entries");
  executor_ = std::make_unique<sql::Executor>(&catalog_, &udfs_);
  const char* disable = std::getenv("MLCS_DISABLE_OPTIMIZER");
  if (disable != nullptr && disable[0] != '\0') {
    executor_->set_optimizer_enabled(false);
  }
  RegisterBuiltinFunctions();
}

Database::~Database() {
  // Release this database's contribution to the shared entries gauge.
  ClearPlanCache();
}

void Database::RegisterBuiltinFunctions() {
  RegisterNumericFn(&udfs_, "abs", [](double v) { return std::fabs(v); });
  RegisterNumericFn(&udfs_, "sqrt", [](double v) { return std::sqrt(v); });
  RegisterNumericFn(&udfs_, "floor", [](double v) { return std::floor(v); });
  RegisterNumericFn(&udfs_, "ceil", [](double v) { return std::ceil(v); });
  RegisterNumericFn(&udfs_, "round", [](double v) { return std::round(v); });
  RegisterNumericFn(&udfs_, "ln", [](double v) { return std::log(v); });
  RegisterNumericFn(&udfs_, "exp", [](double v) { return std::exp(v); });
  RegisterStringFn(
      &udfs_, "lower",
      [](std::string_view s) { return ToLower(s); }, TypeId::kVarchar);
  RegisterStringFn(
      &udfs_, "upper",
      [](std::string_view s) { return ToUpper(s); }, TypeId::kVarchar);
  RegisterStringFn(
      &udfs_, "length",
      [](std::string_view s) { return std::to_string(s.size()); },
      TypeId::kInt64);
  // mlcs_metrics() / mlcs_trace(): SQL-queryable observability tables.
  MLCS_CHECK_OK(obs::RegisterIntrospectionFunctions(&udfs_));
}

void Database::set_exec_policy(const MorselPolicy& policy) {
  // Prepared plans capture the policy inside their operator closures, so a
  // policy change invalidates everything cached.
  ClearPlanCache();
  executor_->set_policy(policy);
}

void Database::set_optimizer_enabled(bool enabled) {
  ClearPlanCache();
  executor_->set_optimizer_enabled(enabled);
}

void Database::ClearPlanCache() {
  MutexLock lock(&cache_mu_);
  cache_entries_->Add(-static_cast<int64_t>(plan_cache_.size()));
  plan_cache_.clear();
  lru_.clear();
}

size_t Database::plan_cache_size() const {
  MutexLock lock(&cache_mu_);
  return plan_cache_.size();
}

Result<TablePtr> Database::Query(const std::string& sql) {
  // Root span for the whole statement; children (parse, plan, operators)
  // nest under it. Created when tracing is on OR the always-on flight
  // recorder is capturing (`force`: the ctor's own gate only checks the
  // tracing flag). No-ops down to two relaxed loads when both are off.
  std::optional<obs::TraceContext> trace;
  if (obs::TraceCaptureEnabled()) {
    trace.emplace("query: " + sql.substr(0, 120), /*force=*/true);
    trace->set_query_text(sql);
  }
  // Fast path: a resident, still-current plan for this exact text. Take a
  // strong reference under the lock, execute outside it (plans are const
  // and thread-safe).
  std::shared_ptr<const sql::PreparedSelect> cached;
  {
    MutexLock lock(&cache_mu_);
    auto it = plan_cache_.find(sql);
    if (it != plan_cache_.end()) {
      if (it->second.plan->catalog_version == catalog_.schema_version()) {
        cache_hits_->Add(1);
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
        cached = it->second.plan;
      } else {
        // DDL moved the schema since this was planned: discard, re-plan.
        cache_stale_->Add(1);
        cache_entries_->Add(-1);
        lru_.erase(it->second.lru_pos);
        plan_cache_.erase(it);
      }
    }
  }
  if (cached != nullptr) {
    auto result = sql::Executor::RunPrepared(*cached);
    MaybeCapturePlanText(trace, *cached);
    return result;
  }

  sql::Statement stmt;
  {
    obs::ScopedSpan parse_span("sql.parse");
    MLCS_ASSIGN_OR_RETURN(stmt, sql::ParseStatement(sql));
  }
  if (std::get_if<sql::SelectStatement>(&stmt) == nullptr) {
    // Only SELECTs are cacheable — DDL/DML must re-execute every time.
    return executor_->Execute(stmt);
  }

  cache_misses_->Add(1);
  MLCS_ASSIGN_OR_RETURN(std::shared_ptr<const sql::PreparedSelect> plan,
                        executor_->Prepare(std::move(stmt)));
  {
    MutexLock lock(&cache_mu_);
    auto it = plan_cache_.find(sql);
    if (it == plan_cache_.end()) {
      while (plan_cache_.size() >= kPlanCacheCapacity && !lru_.empty()) {
        cache_evictions_->Add(1);
        cache_entries_->Add(-1);
        plan_cache_.erase(lru_.back());
        lru_.pop_back();
      }
      lru_.push_front(sql);
      plan_cache_.emplace(sql, CacheEntry{plan, lru_.begin()});
      cache_entries_->Add(1);
    } else {
      // A concurrent caller planned the same text; keep the fresher plan.
      if (plan->catalog_version >= it->second.plan->catalog_version) {
        it->second.plan = plan;
      }
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    }
  }
  auto result = sql::Executor::RunPrepared(*plan);
  MaybeCapturePlanText(trace, *plan);
  return result;
}

void Database::MaybeCapturePlanText(
    std::optional<obs::TraceContext>& trace,
    const sql::PreparedSelect& plan) {
  // Plan text is rendered lazily and only for queries that already
  // crossed the slow threshold — a fast query pays nothing beyond the
  // ElapsedMs clock read. The trace dtor (which fires after this returns)
  // carries the text into the slow-query log.
  if (!trace.has_value() || !trace->active()) return;
  if (trace->ElapsedMs() < obs::FlightRecorder::SlowQueryThresholdMs()) {
    return;
  }
  if (plan.root != nullptr) {
    trace->set_plan_text(exec::RenderOperatorTree(*plan.root));
  }
}

Result<TablePtr> Database::Run(const std::string& script) {
  MLCS_ASSIGN_OR_RETURN(std::vector<sql::Statement> statements,
                        sql::ParseScript(script));
  if (statements.empty()) {
    return Status::InvalidArgument("empty SQL script");
  }
  TablePtr last;
  for (const auto& stmt : statements) {
    MLCS_ASSIGN_OR_RETURN(last, executor_->Execute(stmt));
  }
  return last;
}

Connection Database::Connect() { return Connection(this); }

namespace {

/// Rows per on-disk block when saving; `MLCS_BLOCK_ROWS` overrides for
/// tests (small values force multi-block tables on tiny data).
size_t SaveBlockRows() {
  const char* env = std::getenv("MLCS_BLOCK_ROWS");
  if (env != nullptr && env[0] != '\0') {
    char* end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && v > 0) return static_cast<size_t>(v);
  }
  return bufpool::StoredTable::kDefaultBlockRows;
}

}  // namespace

Status Database::SaveTo(const std::string& dir) const {
  MLCS_RETURN_IF_ERROR(MakeDirs(dir));
  size_t block_rows = SaveBlockRows();
  std::string manifest = "mlcs-catalog-v2\n";
  for (const std::string& name : catalog_.ListTables()) {
    // ReadTable: saving must not promote stored entries to resident.
    MLCS_ASSIGN_OR_RETURN(TablePtr table, catalog_.ReadTable(name));
    // Compress at the save boundary: encoded columns serialize encoded
    // (block files shrink, scans stay encoded end-to-end). No-op when
    // encoding is disabled or nothing meets the policy thresholds.
    table = EncodeTable(table);
    MLCS_RETURN_IF_ERROR(
        bufpool::StoredTable::Write(*table, dir + "/" + name, block_rows));
    manifest += name + "\n";
  }
  // Catalog manifest last — a crash mid-save leaves the old catalog (if
  // any) intact and pointing only at fully-written table directories.
  return AtomicWriteFile(dir + "/catalog.manifest", manifest.data(),
                         manifest.size());
}

Status Database::LoadFrom(const std::string& dir) {
  if (FileExists(dir + "/catalog.manifest")) {
    MLCS_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                          ReadFileBytes(dir + "/catalog.manifest"));
    std::string manifest(reinterpret_cast<const char*>(bytes.data()),
                         bytes.size());
    std::vector<std::string> lines = SplitString(manifest, '\n');
    if (lines.empty() || Trim(lines[0]) != "mlcs-catalog-v2") {
      return Status::ParseError("'" + dir +
                                "' has an unrecognized catalog.manifest");
    }
    for (size_t i = 1; i < lines.size(); ++i) {
      std::string name = Trim(lines[i]);
      if (name.empty()) continue;
      // Blocks are opened lazily: attaching validates headers and zone
      // maps but materializes no payloads until a query needs them.
      MLCS_ASSIGN_OR_RETURN(std::shared_ptr<bufpool::StoredTable> stored,
                            bufpool::StoredTable::Open(dir + "/" + name));
      MLCS_RETURN_IF_ERROR(
          catalog_.AttachStoredTable(name, std::move(stored)));
    }
    return Status::OK();
  }
  // Legacy v1 layout: tables.txt + one monolithic .mlt file per table.
  std::FILE* f = std::fopen((dir + "/tables.txt").c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("'" + dir + "' has no catalog.manifest");
  }
  std::string manifest;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    manifest.append(buf, got);
  }
  std::fclose(f);
  for (const std::string& line : SplitString(manifest, '\n')) {
    std::string name = Trim(line);
    if (name.empty()) continue;
    MLCS_ASSIGN_OR_RETURN(TablePtr table,
                          LoadTable(dir + "/" + name + ".mlt"));
    MLCS_RETURN_IF_ERROR(
        catalog_.CreateTable(name, table, /*or_replace=*/true));
  }
  return Status::OK();
}

}  // namespace mlcs
