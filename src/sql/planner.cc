#include "sql/planner.h"

#include <optional>
#include <set>

#include "bufpool/zone_map.h"
#include "common/string_util.h"
#include "exec/kernels.h"
#include "sql/executor.h"

namespace mlcs::sql {

namespace {

/// Builds the boolean selection mask for a filter node: each conjunct is
/// lowered and evaluated at Execute() time (scalar subqueries in WHERE run
/// per execution, exactly as the interpreted executor did), then re-ANDed
/// with the vectorized kernel.
exec::MaskFn MakeMaskFn(Executor* exec,
                        std::vector<const SqlExpr*> conjuncts) {
  return [exec, conjuncts = std::move(conjuncts)](
             const Table& input) -> Result<ColumnPtr> {
    ColumnPtr mask;
    exec::EvalContext ctx = exec->MakeContext(&input);
    for (const SqlExpr* e : conjuncts) {
      MLCS_ASSIGN_OR_RETURN(exec::ExprPtr lowered, exec->Lower(*e));
      MLCS_ASSIGN_OR_RETURN(ColumnPtr part, lowered->Evaluate(ctx));
      if (mask == nullptr) {
        mask = std::move(part);
      } else {
        MLCS_ASSIGN_OR_RETURN(
            mask, exec::BinaryKernel(exec::BinOpKind::kAnd, *mask, *part,
                                     exec->policy()));
      }
    }
    return mask;
  };
}

std::string FilterDisplay(const LogicalNode& node) {
  std::string out =
      node.op == LogicalOp::kHaving ? "HAVING " : "FILTER ";
  for (size_t i = 0; i < node.conjuncts.size(); ++i) {
    if (i > 0) out += " AND ";
    out += node.conjuncts[i]->ToString();
  }
  return out;
}

/// -- Zone-predicate extraction ----------------------------------------------
/// A filter directly above a scan donates its `col <op> literal` conjuncts
/// to the scan as zone predicates so a disk-backed table can skip blocks
/// the min/max zone maps refute. The filter keeps every conjunct — zone
/// predicates prune I/O, never rows — so this never changes results.

void SplitAnd(const SqlExpr* e, std::vector<const SqlExpr*>* out) {
  if (e->kind == SqlExprKind::kBinary &&
      e->bin_op == exec::BinOpKind::kAnd) {
    SplitAnd(e->left.get(), out);
    SplitAnd(e->right.get(), out);
    return;
  }
  out->push_back(e);
}

std::optional<bufpool::ZoneOp> CompareOpToZoneOp(exec::BinOpKind op) {
  switch (op) {
    case exec::BinOpKind::kEq: return bufpool::ZoneOp::kEq;
    case exec::BinOpKind::kNe: return bufpool::ZoneOp::kNe;
    case exec::BinOpKind::kLt: return bufpool::ZoneOp::kLt;
    case exec::BinOpKind::kLe: return bufpool::ZoneOp::kLe;
    case exec::BinOpKind::kGt: return bufpool::ZoneOp::kGt;
    case exec::BinOpKind::kGe: return bufpool::ZoneOp::kGe;
    default: return std::nullopt;
  }
}

/// Mirrors the comparison when the literal is on the left (`5 < x` ≡
/// `x > 5`).
bufpool::ZoneOp FlipZoneOp(bufpool::ZoneOp op) {
  switch (op) {
    case bufpool::ZoneOp::kLt: return bufpool::ZoneOp::kGt;
    case bufpool::ZoneOp::kLe: return bufpool::ZoneOp::kGe;
    case bufpool::ZoneOp::kGt: return bufpool::ZoneOp::kLt;
    case bufpool::ZoneOp::kGe: return bufpool::ZoneOp::kLe;
    default: return op;  // kEq/kNe are symmetric
  }
}

std::vector<bufpool::ZonePredicate> ExtractZonePredicates(
    const std::vector<const SqlExpr*>& conjuncts) {
  std::vector<bufpool::ZonePredicate> out;
  std::vector<const SqlExpr*> atoms;
  for (const SqlExpr* e : conjuncts) SplitAnd(e, &atoms);
  for (const SqlExpr* e : atoms) {
    if (e->kind != SqlExprKind::kBinary) continue;
    std::optional<bufpool::ZoneOp> op = CompareOpToZoneOp(e->bin_op);
    if (!op.has_value()) continue;
    const SqlExpr* lhs = e->left.get();
    const SqlExpr* rhs = e->right.get();
    bool flipped = false;
    if (lhs->kind == SqlExprKind::kLiteral &&
        rhs->kind == SqlExprKind::kColumnRef) {
      std::swap(lhs, rhs);
      flipped = true;
    }
    if (lhs->kind != SqlExprKind::kColumnRef ||
        rhs->kind != SqlExprKind::kLiteral) {
      continue;
    }
    bufpool::ZonePredicate p;
    p.column = ToLower(lhs->name);
    p.op = flipped ? FlipZoneOp(*op) : *op;
    p.literal = rhs->literal;
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace

Result<LogicalNodePtr> Planner::BindTableRef(const TableRef& ref) {
  auto node = std::make_unique<LogicalNode>();
  switch (ref.kind) {
    case TableRef::Kind::kBase: {
      node->op = LogicalOp::kScan;
      node->table_name = ref.name;
      // Schema-only lookup: binding must not materialize a stored table.
      Result<Schema> schema = catalog_->GetTableSchema(ref.name);
      if (schema.ok()) {
        std::vector<std::string> names;
        names.reserve(schema.ValueOrDie().num_fields());
        for (const auto& field : schema.ValueOrDie().fields()) {
          names.push_back(ToLower(field.name));
        }
        node->output_names = std::move(names);
      }
      // Missing table: fail open (unknown names); the scan errors at run.
      return node;
    }
    case TableRef::Kind::kJoin: {
      node->op = LogicalOp::kJoin;
      node->ref = &ref;
      MLCS_ASSIGN_OR_RETURN(LogicalNodePtr left, BindTableRef(*ref.left));
      MLCS_ASSIGN_OR_RETURN(LogicalNodePtr right, BindTableRef(*ref.right));
      if (left->output_names.has_value() &&
          right->output_names.has_value()) {
        // Mirror HashJoin's output naming: right columns are checked
        // against the *growing* output schema and get "_r" on collision.
        std::vector<std::string> names = *left->output_names;
        std::set<std::string> seen(names.begin(), names.end());
        for (const std::string& rname : *right->output_names) {
          std::string out = rname;
          if (seen.count(out) > 0) out += "_r";
          seen.insert(out);
          names.push_back(std::move(out));
        }
        node->output_names = std::move(names);
      }
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(right));
      return node;
    }
    case TableRef::Kind::kFunction: {
      node->op = LogicalOp::kTableFunction;
      node->ref = &ref;
      for (const auto& arg : ref.fn_args) {
        if (arg.table != nullptr) {
          MLCS_ASSIGN_OR_RETURN(LogicalNodePtr sub,
                                BindSelect(*arg.table));
          node->children.push_back(std::move(sub));
        }
      }
      // Output schema depends on the registered UDF: fail open.
      return node;
    }
    case TableRef::Kind::kSubquery: {
      node->op = LogicalOp::kSubquery;
      node->ref = &ref;
      MLCS_ASSIGN_OR_RETURN(LogicalNodePtr child,
                            BindSelect(*ref.subquery));
      node->output_names = child->output_names;
      node->children.push_back(std::move(child));
      return node;
    }
  }
  return Status::Internal("unknown table ref kind");
}

Result<LogicalNodePtr> Planner::BindSelect(const SelectStatement& select) {
  LogicalNodePtr root;
  if (select.from != nullptr) {
    MLCS_ASSIGN_OR_RETURN(root, BindTableRef(*select.from));
  } else {
    root = std::make_unique<LogicalNode>();
    root->op = LogicalOp::kDual;
    root->output_names = std::vector<std::string>{};
  }

  if (select.where != nullptr) {
    auto filter = std::make_unique<LogicalNode>();
    filter->op = LogicalOp::kFilter;
    filter->select = &select;
    filter->conjuncts = {select.where.get()};
    filter->output_names = root->output_names;
    filter->children.push_back(std::move(root));
    root = std::move(filter);
  }

  bool has_aggregate = HasAggregate(select);
  if (select.having != nullptr && !has_aggregate) {
    return Status::InvalidArgument("HAVING requires GROUP BY or aggregates");
  }

  auto projection = std::make_unique<LogicalNode>();
  projection->op =
      has_aggregate ? LogicalOp::kAggregate : LogicalOp::kProject;
  projection->select = &select;
  {
    std::vector<std::string> names;
    bool known = true;
    for (size_t i = 0; i < select.items.size(); ++i) {
      const SelectItem& item = select.items[i];
      if (item.star) {
        if (!root->output_names.has_value()) {
          known = false;
          break;
        }
        for (const auto& name : *root->output_names) {
          names.push_back(name);
        }
        continue;
      }
      names.push_back(ToLower(item.alias.empty()
                                  ? DeriveItemName(*item.expr, i)
                                  : item.alias));
    }
    if (known) projection->output_names = std::move(names);
  }
  projection->children.push_back(std::move(root));
  root = std::move(projection);

  if (select.having != nullptr) {
    auto having = std::make_unique<LogicalNode>();
    having->op = LogicalOp::kHaving;
    having->select = &select;
    having->conjuncts = {select.having.get()};
    having->output_names = root->output_names;
    having->children.push_back(std::move(root));
    root = std::move(having);
  }

  if (select.distinct) {
    auto distinct = std::make_unique<LogicalNode>();
    distinct->op = LogicalOp::kDistinct;
    distinct->select = &select;
    distinct->output_names = root->output_names;
    distinct->children.push_back(std::move(root));
    root = std::move(distinct);
  }

  if (!select.order_by.empty()) {
    auto sort = std::make_unique<LogicalNode>();
    sort->op = LogicalOp::kSort;
    sort->select = &select;
    sort->output_names = root->output_names;
    sort->children.push_back(std::move(root));
    root = std::move(sort);
  }

  if (select.limit >= 0) {
    auto limit = std::make_unique<LogicalNode>();
    limit->op = LogicalOp::kLimit;
    limit->select = &select;
    limit->output_names = root->output_names;
    limit->children.push_back(std::move(root));
    root = std::move(limit);
  }

  return root;
}

Result<BoundPlan> Planner::Bind(const SelectStatement& select) {
  BoundPlan plan;
  MLCS_ASSIGN_OR_RETURN(plan.root, BindSelect(select));
  return plan;
}

Result<exec::PhysicalOpPtr> Planner::BuildPhysical(
    const LogicalNode& node) const {
  switch (node.op) {
    case LogicalOp::kScan:
      return exec::PhysicalOpPtr(std::make_shared<exec::ScanOperator>(
          catalog_, node.table_name, node.scan_columns));
    case LogicalOp::kDual:
      return exec::PhysicalOpPtr(std::make_shared<DualOperator>());
    case LogicalOp::kSubquery: {
      MLCS_ASSIGN_OR_RETURN(exec::PhysicalOpPtr child,
                            BuildPhysical(*node.children[0]));
      return exec::PhysicalOpPtr(
          std::make_shared<SubqueryOperator>(std::move(child)));
    }
    case LogicalOp::kTableFunction: {
      std::vector<exec::PhysicalOpPtr> args;
      args.reserve(node.children.size());
      for (const auto& child : node.children) {
        MLCS_ASSIGN_OR_RETURN(exec::PhysicalOpPtr sub,
                              BuildPhysical(*child));
        args.push_back(std::move(sub));
      }
      return exec::PhysicalOpPtr(std::make_shared<TableFunctionOperator>(
          exec_, node.ref, std::move(args)));
    }
    case LogicalOp::kJoin: {
      MLCS_ASSIGN_OR_RETURN(exec::PhysicalOpPtr left,
                            BuildPhysical(*node.children[0]));
      MLCS_ASSIGN_OR_RETURN(exec::PhysicalOpPtr right,
                            BuildPhysical(*node.children[1]));
      return exec::PhysicalOpPtr(std::make_shared<exec::HashJoinOperator>(
          std::move(left), std::move(right), node.ref->join_keys,
          node.ref->join_type, exec_->policy()));
    }
    case LogicalOp::kFilter:
    case LogicalOp::kHaving: {
      exec::PhysicalOpPtr child;
      const LogicalNode& below = *node.children[0];
      if (node.op == LogicalOp::kFilter &&
          below.op == LogicalOp::kScan) {
        // Donate `col <op> literal` conjuncts to the scan as zone
        // predicates (block skipping); the filter still applies them all.
        child = std::make_shared<exec::ScanOperator>(
            catalog_, below.table_name, below.scan_columns,
            ExtractZonePredicates(node.conjuncts));
      } else {
        MLCS_ASSIGN_OR_RETURN(child, BuildPhysical(below));
      }
      return exec::PhysicalOpPtr(std::make_shared<exec::FilterOperator>(
          std::move(child), MakeMaskFn(exec_, node.conjuncts),
          FilterDisplay(node), exec_->policy()));
    }
    case LogicalOp::kProject: {
      MLCS_ASSIGN_OR_RETURN(exec::PhysicalOpPtr child,
                            BuildPhysical(*node.children[0]));
      return exec::PhysicalOpPtr(std::make_shared<ProjectOperator>(
          exec_, node.select, std::move(child)));
    }
    case LogicalOp::kAggregate: {
      MLCS_ASSIGN_OR_RETURN(exec::PhysicalOpPtr child,
                            BuildPhysical(*node.children[0]));
      return exec::PhysicalOpPtr(std::make_shared<AggregateOperator>(
          exec_, node.select, std::move(child)));
    }
    case LogicalOp::kDistinct: {
      MLCS_ASSIGN_OR_RETURN(exec::PhysicalOpPtr child,
                            BuildPhysical(*node.children[0]));
      return exec::PhysicalOpPtr(std::make_shared<exec::DistinctOperator>(
          std::move(child), exec_->policy()));
    }
    case LogicalOp::kSort: {
      MLCS_ASSIGN_OR_RETURN(exec::PhysicalOpPtr child,
                            BuildPhysical(*node.children[0]));
      return exec::PhysicalOpPtr(std::make_shared<SortOperator>(
          exec_, node.select, std::move(child)));
    }
    case LogicalOp::kLimit: {
      MLCS_ASSIGN_OR_RETURN(exec::PhysicalOpPtr child,
                            BuildPhysical(*node.children[0]));
      return exec::PhysicalOpPtr(std::make_shared<exec::LimitOperator>(
          std::move(child), node.select->limit));
    }
  }
  return Status::Internal("unknown logical operator");
}

}  // namespace mlcs::sql
