#ifndef MLCS_SQL_PLAN_H_
#define MLCS_SQL_PLAN_H_

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "sql/ast.h"

namespace mlcs::sql {

class Executor;

/// Logical relational operators. The binder (planner.h) produces a tree of
/// these from a SelectStatement; the optimizer rewrites the tree; the
/// physical builder lowers it onto exec::PhysicalOperator.
enum class LogicalOp {
  kScan,           // base table
  kDual,           // FROM-less SELECT (one conceptual row)
  kSubquery,       // derived table in FROM
  kTableFunction,  // table UDF in FROM
  kJoin,
  kFilter,         // WHERE
  kProject,        // plain select list
  kAggregate,      // GROUP BY / top-level aggregates
  kHaving,         // filter over the aggregate output names
  kDistinct,
  kSort,
  kLimit,
};

struct LogicalNode;
using LogicalNodePtr = std::unique_ptr<LogicalNode>;

/// One logical plan node. Expression and statement pointers are borrowed:
/// they point into the SelectStatement that was bound (which must outlive
/// the plan) or into the owning BoundPlan's expression arena.
struct LogicalNode {
  LogicalOp op = LogicalOp::kScan;
  std::vector<LogicalNodePtr> children;

  // kScan
  std::string table_name;
  /// Engaged after projection pruning: the column subset (in schema order)
  /// the scan fetches. nullopt → scan every column.
  std::optional<std::vector<std::string>> scan_columns;

  // kFilter / kHaving: conjuncts, re-ANDed at evaluation time. The binder
  // stores the whole predicate as one conjunct; predicate pushdown splits
  // it only when at least one piece actually moves.
  std::vector<const SqlExpr*> conjuncts;

  // kJoin / kTableFunction / kSubquery
  const TableRef* ref = nullptr;

  // kProject / kAggregate / kSort / kLimit / kDistinct / kHaving: the
  // SELECT scope this node belongs to.
  const SelectStatement* select = nullptr;

  /// Lower-cased output column names when statically known at bind time;
  /// nullopt when unknowable (table functions, missing tables). Rules that
  /// need names fail open on nullopt.
  std::optional<std::vector<std::string>> output_names;
};

/// A bound logical plan plus the expressions and statements the optimizer
/// synthesized (folded literals, aggregate-pushdown partial/final select
/// lists); the arenas keep borrowed pointers alive for the plan's lifetime.
struct BoundPlan {
  LogicalNodePtr root;
  std::vector<SqlExprPtr> arena;
  std::vector<std::unique_ptr<SelectStatement>> stmt_arena;
};

/// -- Shared SELECT-shape helpers (used by binder and physical operators) --

bool IsAggregateFunctionName(const std::string& name);
bool IsTopLevelAggregate(const SqlExpr& e);
/// Output column name for an unaliased select item.
std::string DeriveItemName(const SqlExpr& e, size_t index);
/// True when the select list or GROUP BY makes this an aggregate query.
bool HasAggregate(const SelectStatement& select);
/// Collects lower-cased column-ref names into `out`. Scalar subqueries are
/// skipped — they bind in their own scope at execution time.
void CollectColumnRefs(const SqlExpr& e, std::set<std::string>* out);

/// -- SQL-specific physical operators --------------------------------------
/// These close over the Executor for expression lowering (Lower executes
/// scalar subqueries, so it must run at Execute() time, never at plan
/// time — EXPLAIN must not execute anything).

/// Plain (non-aggregate) projection of the select list.
class ProjectOperator : public exec::PhysicalOperator {
 public:
  ProjectOperator(Executor* exec, const SelectStatement* select,
                  exec::PhysicalOpPtr child)
      : exec_(exec), select_(select) {
    children_.push_back(std::move(child));
  }
  Result<exec::OpResult> Execute() const override;
  std::string label() const override;

 private:
  Executor* exec_;
  const SelectStatement* select_;
};

/// Hash aggregation: pre-projects expression aggregate inputs into temp
/// columns, runs HashGroupBy, then maps select items onto its output.
class AggregateOperator : public exec::PhysicalOperator {
 public:
  AggregateOperator(Executor* exec, const SelectStatement* select,
                    exec::PhysicalOpPtr child)
      : exec_(exec), select_(select) {
    children_.push_back(std::move(child));
  }
  Result<exec::OpResult> Execute() const override;
  std::string label() const override;

 private:
  Executor* exec_;
  const SelectStatement* select_;
};

/// ORDER BY: evaluates sort keys into temp columns (falling back to the
/// child's row_source for expressions that do not resolve against the
/// projection), sorts, drops the temps.
class SortOperator : public exec::PhysicalOperator {
 public:
  SortOperator(Executor* exec, const SelectStatement* select,
               exec::PhysicalOpPtr child)
      : exec_(exec), select_(select) {
    children_.push_back(std::move(child));
  }
  Result<exec::OpResult> Execute() const override;
  std::string label() const override;

 private:
  Executor* exec_;
  const SelectStatement* select_;
};

/// Table UDF in FROM. Children are the physical plans of table-valued
/// arguments, in argument order; scalar arguments are evaluated as
/// constants at Execute() time.
class TableFunctionOperator : public exec::PhysicalOperator {
 public:
  TableFunctionOperator(Executor* exec, const TableRef* ref,
                        std::vector<exec::PhysicalOpPtr> arg_plans)
      : exec_(exec), ref_(ref) {
    for (auto& plan : arg_plans) children_.push_back(std::move(plan));
  }
  Result<exec::OpResult> Execute() const override;
  std::string label() const override {
    return "TABLE FUNCTION " + ref_->name + "(...)";
  }

 private:
  Executor* exec_;
  const TableRef* ref_;
};

/// FROM-less SELECT: a zero-column table the projection broadcasts over.
class DualOperator : public exec::PhysicalOperator {
 public:
  Result<exec::OpResult> Execute() const override {
    Schema empty;
    return exec::OpResult{Table::Make(std::move(empty)), nullptr, {}};
  }
  std::string label() const override { return "DUAL (no FROM)"; }
};

/// Derived table in FROM — a pass-through wrapper that keeps the EXPLAIN
/// shape ("SUBQUERY" over the inner select's plan).
class SubqueryOperator : public exec::PhysicalOperator {
 public:
  explicit SubqueryOperator(exec::PhysicalOpPtr child) {
    children_.push_back(std::move(child));
  }
  Result<exec::OpResult> Execute() const override {
    MLCS_ASSIGN_OR_RETURN(exec::OpResult in, children_[0]->Run());
    return exec::OpResult{std::move(in.table), nullptr, {}};
  }
  std::string label() const override { return "SUBQUERY"; }
};

}  // namespace mlcs::sql

#endif  // MLCS_SQL_PLAN_H_
