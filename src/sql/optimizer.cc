#include "sql/optimizer.h"

#include <algorithm>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "exec/aggregate.h"
#include "ml/training_source.h"
#include "obs/metrics.h"

namespace mlcs::sql {

namespace {

/// -- Rule 1: constant folding ---------------------------------------------

/// Literal-only subtree: no column refs, no calls (UDFs may be impure), no
/// subqueries. Safe to evaluate at plan time.
bool IsFoldable(const SqlExpr& e) {
  switch (e.kind) {
    case SqlExprKind::kLiteral:
      return true;
    case SqlExprKind::kBinary:
      return IsFoldable(*e.left) && IsFoldable(*e.right);
    case SqlExprKind::kUnary:
    case SqlExprKind::kCast:
    case SqlExprKind::kIsNull:
      return IsFoldable(*e.left);
    case SqlExprKind::kCase: {
      for (const auto& [cond, value] : e.when_clauses) {
        if (!IsFoldable(*cond) || !IsFoldable(*value)) return false;
      }
      return e.left == nullptr || IsFoldable(*e.left);
    }
    default:
      return false;
  }
}

bool IsLiteralTrue(const SqlExpr& e) {
  return e.kind == SqlExprKind::kLiteral && !e.literal.is_null() &&
         e.literal.type() == TypeId::kBool && e.literal.bool_value();
}

void SplitConjuncts(const SqlExpr* e, std::vector<const SqlExpr*>* out);

void FoldConstants(LogicalNode* node, BoundPlan* plan,
                   const OptimizerContext& ctx) {
  if (node->op == LogicalOp::kFilter || node->op == LogicalOp::kHaving) {
    // Split each conjunct on AND so a literal-only piece folds even when
    // it is mixed with column predicates (`x > 3 AND 1 < 2`).
    std::vector<const SqlExpr*> pieces;
    for (const SqlExpr* conjunct : node->conjuncts) {
      SplitConjuncts(conjunct, &pieces);
    }
    bool any_folded = false;
    for (const SqlExpr*& piece : pieces) {
      if (piece->kind == SqlExprKind::kLiteral) continue;
      if (!IsFoldable(*piece)) continue;
      Result<Value> v = ctx.eval_constant(*piece);
      if (!v.ok()) continue;  // defer the error to runtime, unchanged
      auto lit = std::make_unique<SqlExpr>();
      lit->kind = SqlExprKind::kLiteral;
      lit->literal = std::move(v).ValueOrDie();
      piece = lit.get();
      plan->arena.push_back(std::move(lit));
      any_folded = true;
    }
    // Only restructure when folding happened; otherwise keep the original
    // (unsplit) conjunct list so unoptimized evaluation is preserved
    // exactly. `X AND TRUE == X`, so folded-TRUE pieces drop out; if every
    // piece folded TRUE, one survivor lets RemoveTrueFilters elide the
    // whole filter node.
    if (any_folded) {
      std::vector<const SqlExpr*> kept;
      for (const SqlExpr* piece : pieces) {
        if (!IsLiteralTrue(*piece)) kept.push_back(piece);
      }
      if (kept.empty()) kept.push_back(pieces.front());
      node->conjuncts = std::move(kept);
    }
  }
  for (auto& child : node->children) {
    FoldConstants(child.get(), plan, ctx);
  }
}

/// Drops filters whose every conjunct folded to TRUE (a keep-all mask).
void RemoveTrueFilters(LogicalNodePtr* slot) {
  LogicalNode* node = slot->get();
  if ((node->op == LogicalOp::kFilter ||
       node->op == LogicalOp::kHaving) &&
      std::all_of(node->conjuncts.begin(), node->conjuncts.end(),
                  [](const SqlExpr* e) { return IsLiteralTrue(*e); })) {
    *slot = std::move(node->children[0]);
    RemoveTrueFilters(slot);
    return;
  }
  for (auto& child : node->children) RemoveTrueFilters(&child);
}

/// -- Rule 2: predicate pushdown -------------------------------------------

void SplitConjuncts(const SqlExpr* e, std::vector<const SqlExpr*>* out) {
  if (e->kind == SqlExprKind::kBinary &&
      e->bin_op == exec::BinOpKind::kAnd) {
    SplitConjuncts(e->left.get(), out);
    SplitConjuncts(e->right.get(), out);
    return;
  }
  out->push_back(e);
}

bool AllIn(const std::set<std::string>& refs,
           const std::set<std::string>& names) {
  return std::all_of(refs.begin(), refs.end(), [&](const std::string& r) {
    return names.count(r) > 0;
  });
}

/// Wraps `*slot` in a filter carrying `conjuncts` (or appends to an
/// existing filter there).
void AttachFilter(LogicalNodePtr* slot,
                  const std::vector<const SqlExpr*>& conjuncts,
                  const SelectStatement* select) {
  if ((*slot)->op == LogicalOp::kFilter) {
    auto& existing = (*slot)->conjuncts;
    existing.insert(existing.end(), conjuncts.begin(), conjuncts.end());
    return;
  }
  auto filter = std::make_unique<LogicalNode>();
  filter->op = LogicalOp::kFilter;
  filter->select = select;
  filter->conjuncts = conjuncts;
  filter->output_names = (*slot)->output_names;
  filter->children.push_back(std::move(*slot));
  *slot = std::move(filter);
}

void PushDownPredicates(LogicalNodePtr* slot) {
  LogicalNode* node = slot->get();
  if (node->op == LogicalOp::kFilter && !node->children.empty() &&
      node->children[0]->op == LogicalOp::kJoin) {
    LogicalNode* join = node->children[0].get();
    const LogicalNode& lchild = *join->children[0];
    const LogicalNode& rchild = *join->children[1];
    // Need both sides' names to attribute conjuncts; else fail open.
    if (lchild.output_names.has_value() &&
        rchild.output_names.has_value()) {
      std::set<std::string> lnames(lchild.output_names->begin(),
                                   lchild.output_names->end());
      // Right-side names that survive the join un-renamed. A name also on
      // the left gets "_r" in the join output, so a bare reference to it
      // means the LEFT column — pushing such a conjunct right (or pushing
      // an "x_r" reference, which names a column the child doesn't have)
      // would be wrong; both land in `residual`.
      std::set<std::string> rnames;
      for (const std::string& name : *rchild.output_names) {
        if (lnames.count(name) == 0) rnames.insert(name);
      }
      bool inner = join->ref->join_type == exec::JoinType::kInner;
      std::vector<const SqlExpr*> pieces;
      for (const SqlExpr* conjunct : node->conjuncts) {
        SplitConjuncts(conjunct, &pieces);
      }
      std::vector<const SqlExpr*> to_left, to_right, residual;
      for (const SqlExpr* piece : pieces) {
        std::set<std::string> refs;
        CollectColumnRefs(*piece, &refs);
        if (!refs.empty() && AllIn(refs, lnames)) {
          to_left.push_back(piece);
        } else if (inner && !refs.empty() && AllIn(refs, rnames)) {
          to_right.push_back(piece);
        } else {
          residual.push_back(piece);
        }
      }
      if (!to_left.empty() || !to_right.empty()) {
        if (!to_left.empty()) {
          AttachFilter(&join->children[0], to_left, node->select);
        }
        if (!to_right.empty()) {
          AttachFilter(&join->children[1], to_right, node->select);
        }
        if (residual.empty()) {
          // Everything moved: the filter node dissolves into the join.
          *slot = std::move(node->children[0]);
          PushDownPredicates(slot);
          return;
        }
        node->conjuncts = std::move(residual);
      }
      // If nothing moved, keep the original (unsplit) conjunct list so
      // the unoptimized evaluation order is preserved exactly.
    }
  }
  for (auto& child : (*slot)->children) PushDownPredicates(&child);
}

/// -- Rule 3: projection pruning -------------------------------------------

void PruneScope(LogicalNode* scope_root, Catalog* catalog);

/// Walks one SELECT scope, collecting referenced column names (lower-
/// cased), scan nodes, and the roots of nested scopes (which prune
/// independently).
void CollectScope(LogicalNode* node, std::set<std::string>* refs,
                  bool* star, std::vector<LogicalNode*>* scans,
                  std::vector<LogicalNode*>* inner_scopes) {
  switch (node->op) {
    case LogicalOp::kScan:
      scans->push_back(node);
      return;
    case LogicalOp::kDual:
      return;
    case LogicalOp::kSubquery:
    case LogicalOp::kTableFunction:
      for (auto& child : node->children) {
        inner_scopes->push_back(child.get());
      }
      return;
    case LogicalOp::kJoin:
      for (const auto& [a, b] : node->ref->join_keys) {
        refs->insert(ToLower(a));
        refs->insert(ToLower(b));
      }
      break;
    case LogicalOp::kFilter:
    case LogicalOp::kHaving:
      for (const SqlExpr* conjunct : node->conjuncts) {
        CollectColumnRefs(*conjunct, refs);
      }
      break;
    case LogicalOp::kProject:
    case LogicalOp::kAggregate: {
      // One projection per scope: collect the whole statement's column
      // demand here (select list, GROUP BY, ORDER BY; HAVING and WHERE
      // arrive via their filter nodes).
      const SelectStatement& select = *node->select;
      for (const auto& item : select.items) {
        if (item.star) {
          *star = true;
        } else {
          CollectColumnRefs(*item.expr, refs);
        }
      }
      for (const auto& key : select.group_by) refs->insert(ToLower(key));
      for (const auto& order : select.order_by) {
        CollectColumnRefs(*order.expr, refs);
      }
      break;
    }
    case LogicalOp::kDistinct:
    case LogicalOp::kSort:
    case LogicalOp::kLimit:
      break;
  }
  for (auto& child : node->children) {
    CollectScope(child.get(), refs, star, scans, inner_scopes);
  }
}

size_t TypeWidth(TypeId type) {
  switch (type) {
    case TypeId::kBool:
      return 1;
    case TypeId::kInt32:
      return 4;
    case TypeId::kInt64:
    case TypeId::kDouble:
      return 8;
    case TypeId::kVarchar:
    case TypeId::kBlob:
      return 16;  // headers alone beat any fixed-width column
  }
  return 16;
}

void PruneScope(LogicalNode* scope_root, Catalog* catalog) {
  std::set<std::string> refs;
  bool star = false;
  std::vector<LogicalNode*> scans;
  std::vector<LogicalNode*> inner_scopes;
  CollectScope(scope_root, &refs, &star, &scans, &inner_scopes);

  if (!star) {
    // A reference to a join-renamed column "x_r" demands the underlying
    // "x" on both sides (keeping the colliding left column also keeps the
    // rename in place).
    std::set<std::string> expanded = refs;
    for (const std::string& r : refs) {
      if (r.size() > 2 && r.compare(r.size() - 2, 2, "_r") == 0) {
        expanded.insert(r.substr(0, r.size() - 2));
      }
    }
    for (LogicalNode* scan : scans) {
      // Schema-only lookup: pruning must not materialize a stored table.
      Result<Schema> looked_up = catalog->GetTableSchema(scan->table_name);
      if (!looked_up.ok()) continue;  // fail open; the scan errors at run
      const Schema& schema = looked_up.ValueOrDie();
      std::vector<std::string> kept;
      for (const auto& field : schema.fields()) {
        if (expanded.count(ToLower(field.name)) > 0) {
          kept.push_back(field.name);
        }
      }
      if (kept.size() == schema.num_fields()) continue;  // nothing to cut
      if (kept.empty() && schema.num_fields() > 0) {
        // No column referenced (SELECT COUNT(*)): keep the narrowest one
        // so num_rows() survives.
        size_t best = 0;
        for (size_t i = 1; i < schema.num_fields(); ++i) {
          if (TypeWidth(schema.field(i).type) <
              TypeWidth(schema.field(best).type)) {
            best = i;
          }
        }
        kept.push_back(schema.field(best).name);
      }
      scan->scan_columns = std::move(kept);
    }
  }

  for (LogicalNode* inner : inner_scopes) PruneScope(inner, catalog);
}

/// -- Rule 4: aggregate pushdown below a join (factorized statistics) ------
///
/// The ML-side counterpart lives in ml/training_source.h: training
/// statistics are group-by aggregates, and aggregates over fact⋈dim never
/// need the join output. `Agg_{G}(F ⋈ D)` with every aggregate input on F
/// rewrites to `FinalAgg_{G}(PartialAgg_{G_F ∪ {k}}(F) ⋈ D)`: the partial
/// aggregate collapses F to one row per (fact group keys, join key) before
/// the join ever runs, so the join touches O(groups) rows instead of
/// O(|F|).
///
/// Result-preservation argument (the property suite compares against the
/// unoptimized plan bit for bit):
///  - Values: restricted to COUNT(*)/COUNT(col)/SUM(col) with SUM inputs
///    declared BOOLEAN/INT/BIGINT — partial and final sums are exact
///    integer arithmetic, so re-association cannot change them. A fact row
///    matching m dim rows contributes its value m times in the join
///    output; after the rewrite its partial group joins those same m dim
///    rows and the final SUM adds the partial m times. NULL join keys drop
///    in the inner join on both plans.
///  - Types: COUNT and integer SUM both emit BIGINT, and SUM(BIGINT) of a
///    partial is again BIGINT.
///  - Row order: HashGroupBy emits groups in first-seen order and HashJoin
///    emits probe (left) rows in order, so a final group's position is
///    governed by the minimum fact-row index mapping to it — the same
///    index on both plans.
/// Anything outside this shape (expressions, AVG/MIN/MAX, dim-side or
/// join-renamed "_r" inputs, multi-key or outer joins, residual filters
/// between aggregate and join) fails open and keeps the original plan.

const LogicalNode* UnwrapFilters(const LogicalNode* node) {
  while (node->op == LogicalOp::kFilter && !node->children.empty()) {
    node = node->children[0].get();
  }
  return node;
}

/// Declared type of `name` when `side` bottoms out in a scan (possibly
/// under pushed-down filters); nullopt → unresolvable, caller fails open.
std::optional<TypeId> ResolveScanColumnType(const LogicalNode& side,
                                            Catalog* catalog,
                                            const std::string& name) {
  const LogicalNode* node = UnwrapFilters(&side);
  if (node->op != LogicalOp::kScan) return std::nullopt;
  Result<Schema> schema = catalog->GetTableSchema(node->table_name);
  if (!schema.ok()) return std::nullopt;
  for (const auto& field : schema.ValueOrDie().fields()) {
    if (EqualsIgnoreCase(field.name, name)) return field.type;
  }
  return std::nullopt;
}

SqlExprPtr MakeColumnRef(const std::string& name) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = SqlExprKind::kColumnRef;
  e->name = name;
  return e;
}

SqlExprPtr MakeAggCall(const std::string& fn, SqlExprPtr arg) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = SqlExprKind::kCall;
  e->name = fn;
  e->args.push_back(std::move(arg));
  return e;
}

void PushAggregateBelowJoin(LogicalNode* node, BoundPlan* plan,
                            Catalog* catalog) {
  for (auto& child : node->children) {
    PushAggregateBelowJoin(child.get(), plan, catalog);
  }
  if (node->op != LogicalOp::kAggregate || node->select == nullptr) return;
  if (node->children.empty() ||
      node->children[0]->op != LogicalOp::kJoin) {
    return;
  }
  LogicalNode* join = node->children[0].get();
  if (join->ref == nullptr ||
      join->ref->join_type != exec::JoinType::kInner ||
      join->ref->join_keys.size() != 1) {
    return;
  }
  const LogicalNode& lchild = *join->children[0];
  const LogicalNode& rchild = *join->children[1];
  if (!lchild.output_names.has_value() || !rchild.output_names.has_value()) {
    return;
  }
  std::set<std::string> lnames(lchild.output_names->begin(),
                               lchild.output_names->end());
  // Right-side names that survive the join un-renamed (same attribution
  // rule as predicate pushdown).
  std::set<std::string> rnames;
  for (const std::string& name : *rchild.output_names) {
    if (lnames.count(name) == 0) rnames.insert(name);
  }
  const std::string& lkey = join->ref->join_keys[0].first;
  const std::string& rkey = join->ref->join_keys[0].second;
  if (lnames.count(ToLower(lkey)) == 0) return;
  if (std::none_of(rchild.output_names->begin(), rchild.output_names->end(),
                   [&](const std::string& n) {
                     return EqualsIgnoreCase(n, rkey);
                   })) {
    return;
  }

  const SelectStatement& select = *node->select;
  struct AggItem {
    exec::AggOp op;
    std::string input;  // original spelling; empty for COUNT(*)
  };
  std::vector<AggItem> aggs;
  for (const auto& item : select.items) {
    if (item.star) return;
    if (!IsTopLevelAggregate(*item.expr)) {
      // Non-aggregate items must be bare group-key refs; side attribution
      // happens with the group keys below.
      if (item.expr->kind != SqlExprKind::kColumnRef) return;
      continue;
    }
    const SqlExpr& call = *item.expr;
    if (call.args.size() != 1) return;
    bool star_arg = call.args[0]->kind == SqlExprKind::kStar;
    Result<exec::AggOp> op = exec::AggOpFromName(call.name, star_arg);
    if (!op.ok()) return;
    if (op.ValueOrDie() == exec::AggOp::kCountStar) {
      aggs.push_back({exec::AggOp::kCountStar, ""});
      continue;
    }
    if (op.ValueOrDie() != exec::AggOp::kCount &&
        op.ValueOrDie() != exec::AggOp::kSum) {
      return;
    }
    if (call.args[0]->kind != SqlExprKind::kColumnRef) return;
    const std::string& input = call.args[0]->name;
    if (lnames.count(ToLower(input)) == 0) return;
    if (op.ValueOrDie() == exec::AggOp::kSum) {
      std::optional<TypeId> type =
          ResolveScanColumnType(lchild, catalog, input);
      if (!type.has_value() ||
          (*type != TypeId::kInt32 && *type != TypeId::kInt64 &&
           *type != TypeId::kBool)) {
        return;
      }
    }
    aggs.push_back({op.ValueOrDie(), input});
  }
  if (aggs.empty()) return;

  // Split group keys by side: fact keys move into the partial aggregate,
  // dim keys keep grouping above the join.
  std::vector<std::string> fact_keys;
  for (const std::string& key : select.group_by) {
    if (lnames.count(ToLower(key)) > 0) {
      fact_keys.push_back(key);
    } else if (rnames.count(ToLower(key)) == 0) {
      return;  // renamed or unknown — fail open
    }
  }

  // Partial statement: fact group keys ∪ join key, plus one partial
  // aggregate per original aggregate.
  auto partial = std::make_unique<SelectStatement>();
  std::vector<std::string> partial_names;
  for (const std::string& key : fact_keys) {
    SelectItem item;
    item.expr = MakeColumnRef(key);
    partial->items.push_back(std::move(item));
    partial->group_by.push_back(key);
    partial_names.push_back(ToLower(key));
  }
  if (std::none_of(fact_keys.begin(), fact_keys.end(),
                   [&](const std::string& k) {
                     return EqualsIgnoreCase(k, lkey);
                   })) {
    SelectItem item;
    item.expr = MakeColumnRef(lkey);
    partial->items.push_back(std::move(item));
    partial->group_by.push_back(lkey);
    partial_names.push_back(ToLower(lkey));
  }
  for (size_t i = 0; i < aggs.size(); ++i) {
    SqlExprPtr arg;
    if (aggs[i].op == exec::AggOp::kCountStar) {
      arg = std::make_unique<SqlExpr>();
      arg->kind = SqlExprKind::kStar;
    } else {
      arg = MakeColumnRef(aggs[i].input);
    }
    std::string name = "__pagg_" + std::to_string(i);
    SelectItem item;
    item.expr = MakeAggCall(
        aggs[i].op == exec::AggOp::kSum ? "SUM" : "COUNT", std::move(arg));
    item.alias = name;
    partial->items.push_back(std::move(item));
    partial_names.push_back(std::move(name));
  }

  // Final statement: aggregates become SUM over their partial column,
  // keeping the original output names; group keys pass through.
  auto final_stmt = std::make_unique<SelectStatement>();
  final_stmt->group_by = select.group_by;
  size_t agg_index = 0;
  for (size_t i = 0; i < select.items.size(); ++i) {
    const SelectItem& orig = select.items[i];
    SelectItem item;
    if (IsTopLevelAggregate(*orig.expr)) {
      item.expr = MakeAggCall(
          "SUM", MakeColumnRef("__pagg_" + std::to_string(agg_index++)));
      item.alias =
          orig.alias.empty() ? DeriveItemName(*orig.expr, i) : orig.alias;
    } else {
      item.expr = MakeColumnRef(orig.expr->name);
      item.alias = orig.alias;
    }
    final_stmt->items.push_back(std::move(item));
  }

  auto pnode = std::make_unique<LogicalNode>();
  pnode->op = LogicalOp::kAggregate;
  pnode->select = partial.get();
  pnode->output_names = partial_names;
  pnode->children.push_back(std::move(join->children[0]));
  join->children[0] = std::move(pnode);

  // The join's left input narrowed; recompute its output names with the
  // binder's collision rule.
  std::set<std::string> pset(partial_names.begin(), partial_names.end());
  std::vector<std::string> join_names = partial_names;
  for (const std::string& name : *rchild.output_names) {
    join_names.push_back(pset.count(name) > 0 ? name + "_r" : name);
  }
  join->output_names = std::move(join_names);

  node->select = final_stmt.get();
  plan->stmt_arena.push_back(std::move(partial));
  plan->stmt_arena.push_back(std::move(final_stmt));
  obs::MetricsRegistry::Global()
      .GetCounter("mlcs.factorized.agg_pushdowns")
      ->Add(1);
}

}  // namespace

void OptimizePlan(BoundPlan* plan, const OptimizerContext& ctx) {
  if (ctx.eval_constant) {
    FoldConstants(plan->root.get(), plan, ctx);
    RemoveTrueFilters(&plan->root);
  }
  PushDownPredicates(&plan->root);
  if (ctx.catalog != nullptr) {
    if (ml::FactorizedEnabled()) {
      PushAggregateBelowJoin(plan->root.get(), plan, ctx.catalog);
    }
    PruneScope(plan->root.get(), ctx.catalog);
  }
}

}  // namespace mlcs::sql
