#ifndef MLCS_SQL_OPTIMIZER_H_
#define MLCS_SQL_OPTIMIZER_H_

#include <functional>

#include "sql/plan.h"
#include "storage/catalog.h"

namespace mlcs::sql {

/// Hooks the rule engine needs from its host. `eval_constant` must be pure
/// for the expressions it is given (the folder only hands it literal-only
/// trees, so it never executes subqueries or UDFs).
struct OptimizerContext {
  Catalog* catalog = nullptr;
  std::function<Result<Value>(const SqlExpr&)> eval_constant;
};

/// Rewrites a bound logical plan in place. Rules run in a fixed order:
///
///   1. Constant folding — literal-only filter conjuncts collapse to
///      literals via `eval_constant`; filters reduced to TRUE disappear.
///   2. Predicate pushdown — WHERE conjuncts above a join are split on AND
///      and moved to the side whose columns they reference (both sides for
///      inner joins; only the preserved left side for LEFT joins, since
///      filtering the nullable side below the join would change results).
///      Conjuncts that straddle sides, reference renamed ("_r") columns,
///      or reference no columns stay put.
///   3. Aggregate pushdown below a join — a grouped COUNT/integer-SUM
///      statistics query over a single-key inner fact⋈dim join is rewritten
///      so the fact side collapses to per-(group keys, join key) partial
///      aggregates before the join, and the aggregate above it folds the
///      partials with SUM. Gated by ml::FactorizedEnabled()
///      (MLCS_DISABLE_FACTORIZED) — the relational half of factorized ML
///      training (DESIGN.md §14).
///   4. Projection pruning — each scan is narrowed to the columns its
///      SELECT scope references (select list, WHERE/HAVING, GROUP BY,
///      ORDER BY, join keys). `SELECT *` anywhere in the scope disables
///      pruning for that scope; a scope referencing no scan columns (e.g.
///      `SELECT COUNT(*)`) keeps the narrowest column so row counts
///      survive.
///
/// Every rule is semantics-preserving on results: optimized and
/// unoptimized plans return bit-identical tables (the property suite
/// enforces this). Rules never fail — anything uncertain is left as-is
/// ("fail open") and the runtime reports errors exactly as the
/// interpreted executor did.
void OptimizePlan(BoundPlan* plan, const OptimizerContext& ctx);

}  // namespace mlcs::sql

#endif  // MLCS_SQL_OPTIMIZER_H_
