#include "sql/plan.h"

#include "common/string_util.h"
#include "exec/aggregate.h"
#include "exec/sort.h"
#include "sql/executor.h"

namespace mlcs::sql {

bool IsAggregateFunctionName(const std::string& name) {
  return EqualsIgnoreCase(name, "count") || EqualsIgnoreCase(name, "sum") ||
         EqualsIgnoreCase(name, "avg") || EqualsIgnoreCase(name, "min") ||
         EqualsIgnoreCase(name, "max") || EqualsIgnoreCase(name, "stddev") ||
         EqualsIgnoreCase(name, "stddev_pop");
}

bool IsTopLevelAggregate(const SqlExpr& e) {
  return e.kind == SqlExprKind::kCall && IsAggregateFunctionName(e.name);
}

std::string DeriveItemName(const SqlExpr& e, size_t index) {
  if (e.kind == SqlExprKind::kColumnRef) return e.name;
  if (e.kind == SqlExprKind::kCall) return ToLower(e.name);
  return "col" + std::to_string(index);
}

bool HasAggregate(const SelectStatement& select) {
  if (!select.group_by.empty()) return true;
  for (const auto& item : select.items) {
    if (!item.star && IsTopLevelAggregate(*item.expr)) return true;
  }
  return false;
}

void CollectColumnRefs(const SqlExpr& e, std::set<std::string>* out) {
  switch (e.kind) {
    case SqlExprKind::kColumnRef:
      out->insert(ToLower(e.name));
      return;
    case SqlExprKind::kSubquery:
      return;  // binds in its own scope
    case SqlExprKind::kCase:
      for (const auto& [cond, value] : e.when_clauses) {
        CollectColumnRefs(*cond, out);
        CollectColumnRefs(*value, out);
      }
      break;
    default:
      break;
  }
  if (e.left != nullptr) CollectColumnRefs(*e.left, out);
  if (e.right != nullptr) CollectColumnRefs(*e.right, out);
  for (const auto& arg : e.args) CollectColumnRefs(*arg, out);
}

namespace {

/// The bracketed select-list string the old interpreted EXPLAIN showed for
/// PROJECT/AGGREGATE nodes, kept for plan-text continuity.
std::string ProjectionString(const SelectStatement& select) {
  std::string projection;
  for (size_t i = 0; i < select.items.size(); ++i) {
    if (i > 0) projection += ", ";
    projection +=
        select.items[i].star ? "*" : select.items[i].expr->ToString();
    if (!select.items[i].alias.empty()) {
      projection += " AS " + select.items[i].alias;
    }
  }
  return projection;
}

}  // namespace

Result<exec::OpResult> ProjectOperator::Execute() const {
  MLCS_ASSIGN_OR_RETURN(exec::OpResult in, children_[0]->Run());
  const SelectStatement& select = *select_;
  const TablePtr& input = in.table;
  Schema schema;
  std::vector<ColumnPtr> columns;
  size_t num_rows = input->num_rows();
  bool from_less = select.from == nullptr;
  exec::EvalContext ctx =
      exec_->MakeContext(from_less ? nullptr : input.get());
  for (size_t i = 0; i < select.items.size(); ++i) {
    const SelectItem& item = select.items[i];
    if (item.star) {
      if (select.from == nullptr) {
        return Status::InvalidArgument("SELECT * requires a FROM clause");
      }
      for (size_t c = 0; c < input->num_columns(); ++c) {
        schema.AddField(input->schema().field(c).name,
                        input->schema().field(c).type);
        columns.push_back(input->column(c));
      }
      continue;
    }
    MLCS_ASSIGN_OR_RETURN(exec::ExprPtr lowered, exec_->Lower(*item.expr));
    MLCS_ASSIGN_OR_RETURN(ColumnPtr col, lowered->Evaluate(ctx));
    size_t target_rows = from_less ? 1 : num_rows;
    if (col->size() == 1 && target_rows != 1) {
      MLCS_ASSIGN_OR_RETURN(Value v, col->GetValue(0));
      col = Column::Constant(v, target_rows);
    } else if (col->size() != target_rows) {
      return Status::Internal("projection produced " +
                              std::to_string(col->size()) +
                              " rows, expected " +
                              std::to_string(target_rows));
    }
    schema.AddField(
        item.alias.empty() ? DeriveItemName(*item.expr, i) : item.alias,
        col->type());
    columns.push_back(std::move(col));
  }
  auto out = std::make_shared<Table>(std::move(schema), std::move(columns));
  MLCS_RETURN_IF_ERROR(out->Validate());
  // Rows stay 1:1 with the input, so the pre-projection table remains
  // available for ORDER BY fallback.
  return exec::OpResult{std::move(out), in.table, {}};
}

std::string ProjectOperator::label() const {
  return "PROJECT [" + ProjectionString(*select_) + "]";
}

Result<exec::OpResult> AggregateOperator::Execute() const {
  MLCS_ASSIGN_OR_RETURN(exec::OpResult in, children_[0]->Run());
  const SelectStatement& select = *select_;
  const TablePtr& input = in.table;
  // Pre-project aggregate inputs that are expressions, run the hash
  // aggregation, then map select items onto its output.
  TablePtr work = std::make_shared<Table>(*input);
  std::vector<exec::AggSpec> specs;
  struct ItemPlan {
    bool is_aggregate = false;
    std::string source_column;  // group key or aggregate output name
    std::string output_name;
  };
  std::vector<ItemPlan> plans;
  exec::EvalContext ctx = exec_->MakeContext(work.get());

  for (size_t i = 0; i < select.items.size(); ++i) {
    const SelectItem& item = select.items[i];
    if (item.star) {
      return Status::InvalidArgument(
          "SELECT * cannot be combined with aggregates/GROUP BY");
    }
    ItemPlan plan;
    plan.output_name =
        item.alias.empty() ? DeriveItemName(*item.expr, i) : item.alias;
    if (IsTopLevelAggregate(*item.expr)) {
      plan.is_aggregate = true;
      const SqlExpr& call = *item.expr;
      bool star_arg =
          call.args.size() == 1 && call.args[0]->kind == SqlExprKind::kStar;
      MLCS_ASSIGN_OR_RETURN(exec::AggOp op,
                            exec::AggOpFromName(call.name, star_arg));
      exec::AggSpec spec;
      spec.op = op;
      spec.output_name = "__agg_out_" + std::to_string(specs.size());
      if (!star_arg) {
        if (call.args.size() != 1) {
          return Status::InvalidArgument(call.name +
                                         " takes exactly one argument");
        }
        const SqlExpr& arg = *call.args[0];
        if (arg.kind == SqlExprKind::kColumnRef) {
          spec.input_column = arg.name;
        } else {
          // Aggregate over an expression: pre-project a temp column.
          MLCS_ASSIGN_OR_RETURN(exec::ExprPtr lowered, exec_->Lower(arg));
          MLCS_ASSIGN_OR_RETURN(ColumnPtr col, lowered->Evaluate(ctx));
          if (col->size() == 1 && work->num_rows() != 1) {
            MLCS_ASSIGN_OR_RETURN(Value v, col->GetValue(0));
            col = Column::Constant(v, work->num_rows());
          }
          std::string temp = "__agg_in_" + std::to_string(specs.size());
          MLCS_RETURN_IF_ERROR(work->AddColumn(temp, std::move(col)));
          spec.input_column = temp;
        }
      }
      plan.source_column = spec.output_name;
      specs.push_back(std::move(spec));
    } else {
      // Must be a group key column.
      if (item.expr->kind != SqlExprKind::kColumnRef) {
        return Status::InvalidArgument(
            "non-aggregate select item '" + item.expr->ToString() +
            "' must be a GROUP BY column");
      }
      bool is_key = false;
      for (const auto& key : select.group_by) {
        if (EqualsIgnoreCase(key, item.expr->name)) is_key = true;
      }
      if (!is_key) {
        return Status::InvalidArgument("column '" + item.expr->name +
                                       "' is not in GROUP BY");
      }
      plan.source_column = item.expr->name;
    }
    plans.push_back(std::move(plan));
  }

  MLCS_ASSIGN_OR_RETURN(
      TablePtr aggregated,
      exec::HashGroupBy(*work, select.group_by, specs, exec_->policy()));

  // Final projection in select-list order with aliases.
  Schema schema;
  std::vector<ColumnPtr> columns;
  for (const auto& plan : plans) {
    MLCS_ASSIGN_OR_RETURN(ColumnPtr col,
                          aggregated->ColumnByName(plan.source_column));
    schema.AddField(plan.output_name, col->type());
    columns.push_back(std::move(col));
  }
  auto out = std::make_shared<Table>(std::move(schema), std::move(columns));
  MLCS_RETURN_IF_ERROR(out->Validate());
  // Aggregation breaks the row correspondence with the input.
  return exec::OpResult{std::move(out), nullptr, {}};
}

std::string AggregateOperator::label() const {
  std::string out = "AGGREGATE [" + ProjectionString(*select_) + "]";
  if (!select_->group_by.empty()) {
    out += " group by ";
    for (size_t i = 0; i < select_->group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += select_->group_by[i];
    }
  }
  return out;
}

Result<exec::OpResult> SortOperator::Execute() const {
  MLCS_ASSIGN_OR_RETURN(exec::OpResult in, children_[0]->Run());
  const SelectStatement& select = *select_;
  TablePtr table = std::move(in.table);
  const TablePtr& row_source = in.row_source;
  // Evaluate each order expression over the output table into temp
  // columns, sort, then drop the temps.
  TablePtr augmented = std::make_shared<Table>(*table);
  exec::EvalContext ctx = exec_->MakeContext(augmented.get());
  std::vector<exec::SortKey> keys;
  size_t original_columns = table->num_columns();
  for (size_t i = 0; i < select.order_by.size(); ++i) {
    const OrderItem& item = select.order_by[i];
    // Ordinal form: ORDER BY 2.
    if (item.expr->kind == SqlExprKind::kLiteral &&
        !item.expr->literal.is_null() &&
        (item.expr->literal.type() == TypeId::kInt32 ||
         item.expr->literal.type() == TypeId::kInt64)) {
      int64_t ordinal = item.expr->literal.int64_value();
      if (ordinal < 1 || ordinal > static_cast<int64_t>(original_columns)) {
        return Status::OutOfRange("ORDER BY ordinal out of range");
      }
      keys.push_back(
          {table->schema().field(static_cast<size_t>(ordinal - 1)).name,
           item.descending});
      continue;
    }
    MLCS_ASSIGN_OR_RETURN(exec::ExprPtr lowered, exec_->Lower(*item.expr));
    auto evaluated = lowered->Evaluate(ctx);
    if (!evaluated.ok() && row_source != nullptr &&
        row_source->num_rows() == table->num_rows()) {
      // Retry against the pre-projection input (same row order).
      exec::EvalContext src_ctx = exec_->MakeContext(row_source.get());
      evaluated = lowered->Evaluate(src_ctx);
    }
    if (!evaluated.ok()) return evaluated.status();
    ColumnPtr col = std::move(evaluated).ValueOrDie();
    if (col->size() == 1 && augmented->num_rows() != 1) {
      MLCS_ASSIGN_OR_RETURN(Value v, col->GetValue(0));
      col = Column::Constant(v, augmented->num_rows());
    }
    std::string temp = "__ord_" + std::to_string(i);
    MLCS_RETURN_IF_ERROR(augmented->AddColumn(temp, std::move(col)));
    keys.push_back({temp, item.descending});
  }
  MLCS_ASSIGN_OR_RETURN(TablePtr sorted,
                        exec::SortTable(*augmented, keys, exec_->policy()));
  std::vector<size_t> keep(original_columns);
  for (size_t i = 0; i < original_columns; ++i) keep[i] = i;
  return exec::OpResult{sorted->Project(keep), nullptr, {}};
}

std::string SortOperator::label() const {
  std::string out = "SORT by ";
  for (size_t i = 0; i < select_->order_by.size(); ++i) {
    if (i > 0) out += ", ";
    out += select_->order_by[i].expr->ToString();
    if (select_->order_by[i].descending) out += " DESC";
  }
  return out;
}

Result<exec::OpResult> TableFunctionOperator::Execute() const {
  std::vector<ColumnPtr> args;
  size_t child = 0;
  for (const auto& arg : ref_->fn_args) {
    if (arg.table != nullptr) {
      // Parenthesized subquery: its columns become vector arguments —
      // the MonetDB table-argument calling convention.
      MLCS_ASSIGN_OR_RETURN(exec::OpResult t,
                            children_[child++]->Run());
      for (size_t c = 0; c < t.table->num_columns(); ++c) {
        // Decode boundary: table-UDF bodies read raw payload vectors.
        ColumnPtr col = t.table->column(c);
        if (col->is_encoded()) col = col->Decode();
        args.push_back(std::move(col));
      }
    } else {
      MLCS_ASSIGN_OR_RETURN(Value v, exec_->EvaluateConstant(*arg.scalar));
      args.push_back(Column::Constant(v, 1));
    }
  }
  MLCS_ASSIGN_OR_RETURN(TablePtr out,
                        exec_->udfs()->CallTable(ref_->name, args));
  return exec::OpResult{std::move(out), nullptr, {}};
}

}  // namespace mlcs::sql
