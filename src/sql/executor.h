#ifndef MLCS_SQL_EXECUTOR_H_
#define MLCS_SQL_EXECUTOR_H_

#include <string>

#include "common/parallel_for.h"
#include "common/result.h"
#include "exec/expression.h"
#include "sql/ast.h"
#include "storage/catalog.h"
#include "udf/udf.h"

namespace mlcs::sql {

/// Interprets bound SQL statements against a catalog + UDF registry using
/// the column-at-a-time operators in exec/ (MonetDB-style operator-at-a-
/// time execution: each operator materializes full columns). The relational
/// operators run morsel-parallel under `policy()` — by default the global
/// pool, whose size MLCS_THREADS controls.
class Executor {
 public:
  Executor(Catalog* catalog, udf::UdfRegistry* udfs)
      : catalog_(catalog), udfs_(udfs) {}

  /// Morsel scheduling policy handed to every relational operator this
  /// executor invokes (filter, join, group-by, sort).
  const MorselPolicy& policy() const { return policy_; }
  void set_policy(const MorselPolicy& policy) { policy_ = policy; }

  /// Runs one statement; DDL/DML return a one-column status table.
  Result<TablePtr> Execute(const Statement& stmt);
  Result<TablePtr> ExecuteSelect(const SelectStatement& select);

 private:
  Result<TablePtr> ExecuteCreateTable(const CreateTableStmt& stmt);
  Result<TablePtr> ExecuteInsert(const InsertStmt& stmt);
  Result<TablePtr> ExecuteDrop(const DropStmt& stmt);
  Result<TablePtr> ExecuteCreateFunction(const CreateFunctionStmt& stmt);
  Result<TablePtr> ExecuteDelete(const DeleteStmt& stmt);
  Result<TablePtr> ExecuteUpdate(const UpdateStmt& stmt);

  Result<TablePtr> ResolveTableRef(const TableRef& ref);
  Result<TablePtr> ExecuteJoin(const TableRef& ref);

  /// Lowers a SQL expression into a vectorized exec expression, resolving
  /// scalar subqueries to literals on the way.
  Result<exec::ExprPtr> Lower(const SqlExpr& e);
  Result<Value> EvaluateScalarSubquery(const SelectStatement& select);
  /// Evaluates an expression with no row source (literals, scalar
  /// subqueries, scalar UDFs of constants).
  Result<Value> EvaluateConstant(const SqlExpr& e);

  exec::EvalContext MakeContext(const Table* input) const;

  Result<TablePtr> ProjectPlain(const SelectStatement& select,
                                const TablePtr& input);
  Result<TablePtr> ProjectAggregate(const SelectStatement& select,
                                    const TablePtr& input);
  /// `row_source` (may be null) is the filtered FROM table whose rows are
  /// 1:1 with the output rows; ORDER BY expressions that do not resolve
  /// against the projection are retried against it (so
  /// `SELECT id ... ORDER BY age` works).
  Result<TablePtr> ApplyOrderByLimit(const SelectStatement& select,
                                     TablePtr table,
                                     const TablePtr& row_source);

  static TablePtr StatusTable(const std::string& message);

  /// Textual plan rendering for EXPLAIN (interpreted plan: the operator
  /// order ExecuteSelect applies).
  static std::string RenderPlan(const Statement& stmt);
  static std::string RenderSelectPlan(const SelectStatement& select,
                                      int indent);
  static std::string RenderTableRefPlan(const TableRef& ref, int indent);

  Catalog* catalog_;
  udf::UdfRegistry* udfs_;
  MorselPolicy policy_;
};

}  // namespace mlcs::sql

#endif  // MLCS_SQL_EXECUTOR_H_
