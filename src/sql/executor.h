#ifndef MLCS_SQL_EXECUTOR_H_
#define MLCS_SQL_EXECUTOR_H_

#include <memory>
#include <string>

#include "common/parallel_for.h"
#include "common/result.h"
#include "exec/expression.h"
#include "sql/ast.h"
#include "sql/planner.h"
#include "storage/catalog.h"
#include "udf/udf.h"

namespace mlcs::sql {

/// Thin driver over the plan stack: statements are bound into a logical
/// plan (planner.h), rewritten by the rule-based optimizer (optimizer.h),
/// lowered onto physical operators (plan.h / exec/operator.h), and run.
/// The relational operators execute morsel-parallel under `policy()` — by
/// default the global pool, whose size MLCS_THREADS controls.
class Executor {
 public:
  Executor(Catalog* catalog, udf::UdfRegistry* udfs)
      : catalog_(catalog), udfs_(udfs) {}

  /// Morsel scheduling policy handed to every relational operator this
  /// executor invokes (filter, join, group-by, sort).
  const MorselPolicy& policy() const { return policy_; }
  void set_policy(const MorselPolicy& policy) { policy_ = policy; }

  /// Toggles the rewrite rules (constant folding, predicate pushdown,
  /// projection pruning). Off still goes through the plan stack, just
  /// without rewrites — the shape the interpreted executor ran. Results
  /// are bit-identical either way (the optimizer-parity suite enforces
  /// it); the MLCS_DISABLE_OPTIMIZER env var flips the Database default.
  bool optimizer_enabled() const { return optimizer_enabled_; }
  void set_optimizer_enabled(bool enabled) { optimizer_enabled_ = enabled; }

  Catalog* catalog() const { return catalog_; }
  udf::UdfRegistry* udfs() const { return udfs_; }

  /// Runs one statement; DDL/DML return a status table (DML adds a second
  /// `rows BIGINT` column with the affected-row count).
  Result<TablePtr> Execute(const Statement& stmt);
  /// plan → optimize → run for one SELECT.
  Result<TablePtr> ExecuteSelect(const SelectStatement& select);
  /// Bind + optimize + build, without running (EXPLAIN, Prepare). Never
  /// executes anything. The statement must outlive the returned plan.
  Result<PlannedSelect> PlanSelect(const SelectStatement& select);

  /// Plans a parsed SELECT into a self-contained cacheable unit (takes
  /// ownership of the AST so the plan's borrowed pointers stay valid).
  /// Errors if `stmt` is not a SELECT.
  Result<std::shared_ptr<const PreparedSelect>> Prepare(Statement stmt);
  /// Executes a prepared plan. Const and thread-safe: concurrent callers
  /// may share one PreparedSelect.
  static Result<TablePtr> RunPrepared(const PreparedSelect& prepared);

  /// -- Expression path (shared with the physical operators) ---------------

  /// Lowers a SQL expression into a vectorized exec expression, resolving
  /// scalar subqueries to literals on the way (so it may execute; never
  /// call during planning).
  Result<exec::ExprPtr> Lower(const SqlExpr& e);
  Result<Value> EvaluateScalarSubquery(const SelectStatement& select);
  /// Evaluates an expression with no row source (literals, scalar
  /// subqueries, scalar UDFs of constants).
  Result<Value> EvaluateConstant(const SqlExpr& e);
  exec::EvalContext MakeContext(const Table* input) const;

 private:
  Result<TablePtr> ExecuteCreateTable(const CreateTableStmt& stmt);
  Result<TablePtr> ExecuteInsert(const InsertStmt& stmt);
  Result<TablePtr> ExecuteDrop(const DropStmt& stmt);
  Result<TablePtr> ExecuteCreateFunction(const CreateFunctionStmt& stmt);
  Result<TablePtr> ExecuteDelete(const DeleteStmt& stmt);
  Result<TablePtr> ExecuteUpdate(const UpdateStmt& stmt);

  static TablePtr StatusTable(const std::string& message);
  /// DML status: column 0 keeps the classic "VERB n" message, column 1
  /// reports the affected-row count as BIGINT.
  static TablePtr DmlStatusTable(const std::string& verb, size_t rows);

  /// Textual plan rendering for EXPLAIN. SELECTs render the optimized
  /// physical plan; planning never executes, so EXPLAIN stays side-effect
  /// free.
  Result<std::string> RenderPlan(const Statement& stmt);
  /// EXPLAIN ANALYZE: executes a SELECT under a forced trace context and
  /// renders the physical tree annotated with per-node actual time / rows
  /// (from the execution's spans), plus a total-time footer.
  Result<std::string> RenderAnalyzedPlan(const Statement& stmt);

  Catalog* catalog_;
  udf::UdfRegistry* udfs_;
  MorselPolicy policy_;
  bool optimizer_enabled_ = true;
};

}  // namespace mlcs::sql

#endif  // MLCS_SQL_EXECUTOR_H_
