#include "sql/parser.h"

#include "common/string_util.h"
#include "sql/lexer.h"

namespace mlcs::sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<SqlToken> tokens)
      : tokens_(std::move(tokens)) {}

  Result<std::vector<Statement>> ParseAll() {
    std::vector<Statement> statements;
    while (!Check(SqlTokenType::kEof)) {
      if (Match(SqlTokenType::kSemicolon)) continue;
      MLCS_ASSIGN_OR_RETURN(Statement stmt, ParseOne());
      statements.push_back(std::move(stmt));
      if (!Check(SqlTokenType::kEof)) {
        MLCS_RETURN_IF_ERROR(
            Expect(SqlTokenType::kSemicolon, "between statements"));
      }
    }
    return statements;
  }

  Result<Statement> ParseOne() {
    if (CheckKw("SELECT")) {
      MLCS_ASSIGN_OR_RETURN(SelectStatement select, ParseSelect());
      return Statement(std::move(select));
    }
    if (CheckKw("CREATE")) return ParseCreate();
    if (CheckKw("INSERT")) return ParseInsert();
    if (CheckKw("DROP")) return ParseDrop();
    if (CheckKw("DELETE")) return ParseDelete();
    if (CheckKw("UPDATE")) return ParseUpdate();
    if (MatchKw("SHOW")) {
      ShowStmt stmt;
      if (MatchKw("TABLES")) {
        stmt.what = ShowStmt::What::kTables;
      } else if (MatchKw("FUNCTIONS")) {
        stmt.what = ShowStmt::What::kFunctions;
      } else {
        return Err("expected TABLES or FUNCTIONS after SHOW");
      }
      return Statement(stmt);
    }
    if (MatchKw("DESCRIBE") || MatchKw("DESC")) {
      DescribeStmt stmt;
      MLCS_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("for table name"));
      return Statement(std::move(stmt));
    }
    if (MatchKw("EXPLAIN")) {
      auto wrapper = std::make_unique<ExplainStmt>();
      wrapper->analyze = MatchKw("ANALYZE");
      MLCS_ASSIGN_OR_RETURN(wrapper->inner, ParseOne());
      return Statement(std::move(wrapper));
    }
    return Err(
        "expected SELECT, CREATE, INSERT, DELETE, DROP, SHOW, DESCRIBE or "
        "EXPLAIN");
  }

 private:
  // -- Token helpers --------------------------------------------------------
  const SqlToken& Peek(size_t ahead = 0) const {
    return tokens_[std::min(pos_ + ahead, tokens_.size() - 1)];
  }
  bool Check(SqlTokenType type) const { return Peek().type == type; }
  bool CheckKw(const char* kw, size_t ahead = 0) const {
    const SqlToken& t = Peek(ahead);
    return t.type == SqlTokenType::kIdent && EqualsIgnoreCase(t.text, kw);
  }
  SqlToken Advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool Match(SqlTokenType type) {
    if (!Check(type)) return false;
    Advance();
    return true;
  }
  bool MatchKw(const char* kw) {
    if (!CheckKw(kw)) return false;
    Advance();
    return true;
  }
  bool CheckOp(const char* op) const {
    return Check(SqlTokenType::kOperator) && Peek().text == op;
  }
  bool MatchOp(const char* op) {
    if (!CheckOp(op)) return false;
    Advance();
    return true;
  }
  Status Expect(SqlTokenType type, const char* context) {
    if (Match(type)) return Status::OK();
    return Err(std::string("expected token ") + context);
  }
  Status ExpectKw(const char* kw) {
    if (MatchKw(kw)) return Status::OK();
    return Err(std::string("expected keyword ") + kw);
  }
  Result<std::string> ExpectIdent(const char* context) {
    if (!Check(SqlTokenType::kIdent)) {
      return Err(std::string("expected identifier ") + context);
    }
    return Advance().text;
  }
  Status Err(const std::string& message) const {
    return Status::ParseError(message + " but found '" + Peek().text +
                              "' at line " + std::to_string(Peek().line));
  }

  bool IsReservedKeyword(const std::string& word) const {
    static const char* kReserved[] = {
        "SELECT", "FROM",  "WHERE",  "GROUP",    "BY",     "ORDER",
        "LIMIT",  "JOIN",  "INNER",  "LEFT",     "ON",     "AND",
        "OR",     "NOT",   "AS",     "CREATE",   "TABLE",  "FUNCTION",
        "INSERT", "INTO",  "VALUES", "DROP",     "IF",     "EXISTS",
        "RETURNS", "LANGUAGE", "CAST", "IS",     "NULL",   "TRUE",
        "FALSE",  "ASC",   "DESC",   "REPLACE",  "UNION",  "DELETE",
        "DISTINCT", "HAVING", "IN",   "BETWEEN",  "CASE",   "WHEN",
        "THEN",   "ELSE",  "END",    "UPDATE",   "SET",    "SHOW",
        "DESCRIBE", "EXPLAIN"};
    for (const char* kw : kReserved) {
      if (EqualsIgnoreCase(word, kw)) return true;
    }
    return false;
  }

  // -- Statements -----------------------------------------------------------
  Result<Statement> ParseCreate() {
    MLCS_RETURN_IF_ERROR(ExpectKw("CREATE"));
    bool or_replace = false;
    if (MatchKw("OR")) {
      MLCS_RETURN_IF_ERROR(ExpectKw("REPLACE"));
      or_replace = true;
    }
    if (MatchKw("TABLE")) return ParseCreateTable(or_replace);
    if (MatchKw("FUNCTION")) return ParseCreateFunction(or_replace);
    return Err("expected TABLE or FUNCTION after CREATE");
  }

  Result<Statement> ParseCreateTable(bool or_replace) {
    CreateTableStmt stmt;
    stmt.or_replace = or_replace;
    MLCS_ASSIGN_OR_RETURN(stmt.name, ExpectIdent("for table name"));
    if (MatchKw("AS")) {
      MLCS_ASSIGN_OR_RETURN(SelectStatement select, ParseSelect());
      stmt.as_select =
          std::make_unique<SelectStatement>(std::move(select));
      return Statement(std::move(stmt));
    }
    MLCS_RETURN_IF_ERROR(
        Expect(SqlTokenType::kLParen, "'(' for column list"));
    while (true) {
      MLCS_ASSIGN_OR_RETURN(std::string col, ExpectIdent("for column name"));
      MLCS_ASSIGN_OR_RETURN(std::string type_name,
                            ExpectIdent("for column type"));
      MLCS_ASSIGN_OR_RETURN(TypeId type, TypeIdFromString(type_name));
      stmt.schema.AddField(std::move(col), type);
      if (!Match(SqlTokenType::kComma)) break;
    }
    MLCS_RETURN_IF_ERROR(
        Expect(SqlTokenType::kRParen, "')' after column list"));
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseCreateFunction(bool or_replace) {
    CreateFunctionStmt stmt;
    stmt.or_replace = or_replace;
    MLCS_ASSIGN_OR_RETURN(stmt.name, ExpectIdent("for function name"));
    MLCS_RETURN_IF_ERROR(
        Expect(SqlTokenType::kLParen, "'(' for parameter list"));
    if (!Check(SqlTokenType::kRParen)) {
      while (true) {
        MLCS_ASSIGN_OR_RETURN(std::string pname,
                              ExpectIdent("for parameter name"));
        MLCS_ASSIGN_OR_RETURN(std::string tname,
                              ExpectIdent("for parameter type"));
        MLCS_ASSIGN_OR_RETURN(TypeId type, TypeIdFromString(tname));
        stmt.params.push_back(Field{std::move(pname), type});
        if (!Match(SqlTokenType::kComma)) break;
      }
    }
    MLCS_RETURN_IF_ERROR(
        Expect(SqlTokenType::kRParen, "')' after parameters"));
    MLCS_RETURN_IF_ERROR(ExpectKw("RETURNS"));
    if (MatchKw("TABLE")) {
      stmt.returns_table = true;
      MLCS_RETURN_IF_ERROR(
          Expect(SqlTokenType::kLParen, "'(' for return schema"));
      while (true) {
        MLCS_ASSIGN_OR_RETURN(std::string cname,
                              ExpectIdent("for return column"));
        MLCS_ASSIGN_OR_RETURN(std::string tname,
                              ExpectIdent("for return column type"));
        MLCS_ASSIGN_OR_RETURN(TypeId type, TypeIdFromString(tname));
        stmt.table_schema.AddField(std::move(cname), type);
        if (!Match(SqlTokenType::kComma)) break;
      }
      MLCS_RETURN_IF_ERROR(
          Expect(SqlTokenType::kRParen, "')' after return schema"));
    } else {
      MLCS_ASSIGN_OR_RETURN(std::string tname,
                            ExpectIdent("for return type"));
      MLCS_ASSIGN_OR_RETURN(stmt.scalar_type, TypeIdFromString(tname));
    }
    MLCS_RETURN_IF_ERROR(ExpectKw("LANGUAGE"));
    MLCS_ASSIGN_OR_RETURN(stmt.language, ExpectIdent("for language"));
    if (!Check(SqlTokenType::kBody)) {
      return Err("expected '{' function body");
    }
    stmt.body = Advance().text;
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseInsert() {
    MLCS_RETURN_IF_ERROR(ExpectKw("INSERT"));
    MLCS_RETURN_IF_ERROR(ExpectKw("INTO"));
    InsertStmt stmt;
    MLCS_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("for table name"));
    if (MatchKw("VALUES")) {
      while (true) {
        MLCS_RETURN_IF_ERROR(
            Expect(SqlTokenType::kLParen, "'(' for VALUES row"));
        std::vector<SqlExprPtr> row;
        while (true) {
          MLCS_ASSIGN_OR_RETURN(SqlExprPtr e, ParseExpr());
          row.push_back(std::move(e));
          if (!Match(SqlTokenType::kComma)) break;
        }
        MLCS_RETURN_IF_ERROR(
            Expect(SqlTokenType::kRParen, "')' after VALUES row"));
        stmt.rows.push_back(std::move(row));
        if (!Match(SqlTokenType::kComma)) break;
      }
      return Statement(std::move(stmt));
    }
    if (CheckKw("SELECT")) {
      MLCS_ASSIGN_OR_RETURN(SelectStatement select, ParseSelect());
      stmt.select = std::make_unique<SelectStatement>(std::move(select));
      return Statement(std::move(stmt));
    }
    return Err("expected VALUES or SELECT after INSERT INTO <table>");
  }

  Result<Statement> ParseDrop() {
    MLCS_RETURN_IF_ERROR(ExpectKw("DROP"));
    DropStmt stmt;
    if (MatchKw("FUNCTION")) {
      stmt.is_function = true;
    } else {
      MLCS_RETURN_IF_ERROR(ExpectKw("TABLE"));
    }
    if (MatchKw("IF")) {
      MLCS_RETURN_IF_ERROR(ExpectKw("EXISTS"));
      stmt.if_exists = true;
    }
    MLCS_ASSIGN_OR_RETURN(stmt.name, ExpectIdent("for name"));
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseDelete() {
    MLCS_RETURN_IF_ERROR(ExpectKw("DELETE"));
    MLCS_RETURN_IF_ERROR(ExpectKw("FROM"));
    DeleteStmt stmt;
    MLCS_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("for table name"));
    if (MatchKw("WHERE")) {
      MLCS_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseUpdate() {
    MLCS_RETURN_IF_ERROR(ExpectKw("UPDATE"));
    UpdateStmt stmt;
    MLCS_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("for table name"));
    MLCS_RETURN_IF_ERROR(ExpectKw("SET"));
    while (true) {
      MLCS_ASSIGN_OR_RETURN(std::string col,
                            ExpectIdent("for column to update"));
      if (!MatchOp("=")) return Err("expected '=' in SET clause");
      MLCS_ASSIGN_OR_RETURN(SqlExprPtr value, ParseExpr());
      stmt.assignments.emplace_back(std::move(col), std::move(value));
      if (!Match(SqlTokenType::kComma)) break;
    }
    if (MatchKw("WHERE")) {
      MLCS_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    return Statement(std::move(stmt));
  }

  // -- SELECT ---------------------------------------------------------------
  Result<SelectStatement> ParseSelect() {
    MLCS_RETURN_IF_ERROR(ExpectKw("SELECT"));
    SelectStatement select;
    select.distinct = MatchKw("DISTINCT");
    while (true) {
      SelectItem item;
      if (Check(SqlTokenType::kStar)) {
        Advance();
        item.star = true;
      } else {
        MLCS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKw("AS")) {
          MLCS_ASSIGN_OR_RETURN(item.alias, ExpectIdent("after AS"));
        } else if (Check(SqlTokenType::kIdent) &&
                   !IsReservedKeyword(Peek().text)) {
          item.alias = Advance().text;
        }
      }
      select.items.push_back(std::move(item));
      if (!Match(SqlTokenType::kComma)) break;
    }
    if (MatchKw("FROM")) {
      MLCS_ASSIGN_OR_RETURN(select.from, ParseTableRef());
    }
    if (MatchKw("WHERE")) {
      MLCS_ASSIGN_OR_RETURN(select.where, ParseExpr());
    }
    if (MatchKw("GROUP")) {
      MLCS_RETURN_IF_ERROR(ExpectKw("BY"));
      while (true) {
        MLCS_ASSIGN_OR_RETURN(std::string col,
                              ParsePossiblyQualifiedName("in GROUP BY"));
        select.group_by.push_back(std::move(col));
        if (!Match(SqlTokenType::kComma)) break;
      }
    }
    if (MatchKw("HAVING")) {
      MLCS_ASSIGN_OR_RETURN(select.having, ParseExpr());
    }
    if (MatchKw("ORDER")) {
      MLCS_RETURN_IF_ERROR(ExpectKw("BY"));
      while (true) {
        OrderItem item;
        MLCS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKw("DESC")) {
          item.descending = true;
        } else {
          MatchKw("ASC");
        }
        select.order_by.push_back(std::move(item));
        if (!Match(SqlTokenType::kComma)) break;
      }
    }
    if (MatchKw("LIMIT")) {
      if (!Check(SqlTokenType::kInt)) return Err("expected LIMIT count");
      MLCS_ASSIGN_OR_RETURN(select.limit, ParseInt64(Advance().text));
    }
    return select;
  }

  Result<std::string> ParsePossiblyQualifiedName(const char* context) {
    MLCS_ASSIGN_OR_RETURN(std::string name, ExpectIdent(context));
    while (Match(SqlTokenType::kDot)) {
      MLCS_ASSIGN_OR_RETURN(name, ExpectIdent("after '.'"));
    }
    return name;  // only the last path component is kept
  }

  // -- FROM -----------------------------------------------------------------
  Result<std::unique_ptr<TableRef>> ParseTableRef() {
    MLCS_ASSIGN_OR_RETURN(std::unique_ptr<TableRef> left,
                          ParseTableRefPrimary());
    while (true) {
      exec::JoinType join_type = exec::JoinType::kInner;
      if (MatchKw("LEFT")) {
        MatchKw("OUTER");
        join_type = exec::JoinType::kLeft;
        MLCS_RETURN_IF_ERROR(ExpectKw("JOIN"));
      } else if (MatchKw("INNER")) {
        MLCS_RETURN_IF_ERROR(ExpectKw("JOIN"));
      } else if (!MatchKw("JOIN")) {
        break;
      }
      auto join = std::make_unique<TableRef>();
      join->kind = TableRef::Kind::kJoin;
      join->join_type = join_type;
      join->left = std::move(left);
      MLCS_ASSIGN_OR_RETURN(join->right, ParseTableRefPrimary());
      MLCS_RETURN_IF_ERROR(ExpectKw("ON"));
      while (true) {
        MLCS_ASSIGN_OR_RETURN(std::string a,
                              ParsePossiblyQualifiedName("in join key"));
        if (!MatchOp("=")) return Err("expected '=' in join condition");
        MLCS_ASSIGN_OR_RETURN(std::string b,
                              ParsePossiblyQualifiedName("in join key"));
        join->join_keys.emplace_back(std::move(a), std::move(b));
        if (!MatchKw("AND")) break;
      }
      left = std::move(join);
    }
    return left;
  }

  Result<std::unique_ptr<TableRef>> ParseTableRefPrimary() {
    auto ref = std::make_unique<TableRef>();
    if (Match(SqlTokenType::kLParen)) {
      // (SELECT ...) subquery.
      if (!CheckKw("SELECT")) return Err("expected SELECT in subquery");
      MLCS_ASSIGN_OR_RETURN(SelectStatement select, ParseSelect());
      MLCS_RETURN_IF_ERROR(
          Expect(SqlTokenType::kRParen, "')' after subquery"));
      ref->kind = TableRef::Kind::kSubquery;
      ref->subquery = std::make_unique<SelectStatement>(std::move(select));
    } else {
      MLCS_ASSIGN_OR_RETURN(ref->name, ExpectIdent("for table name"));
      if (Match(SqlTokenType::kLParen)) {
        // Table function call.
        ref->kind = TableRef::Kind::kFunction;
        if (!Check(SqlTokenType::kRParen)) {
          while (true) {
            TableFunctionArg arg;
            if (Check(SqlTokenType::kLParen) && CheckKw("SELECT", 1)) {
              Advance();  // '('
              MLCS_ASSIGN_OR_RETURN(SelectStatement select, ParseSelect());
              MLCS_RETURN_IF_ERROR(Expect(SqlTokenType::kRParen,
                                          "')' after table argument"));
              arg.table =
                  std::make_unique<SelectStatement>(std::move(select));
            } else {
              MLCS_ASSIGN_OR_RETURN(arg.scalar, ParseExpr());
            }
            ref->fn_args.push_back(std::move(arg));
            if (!Match(SqlTokenType::kComma)) break;
          }
        }
        MLCS_RETURN_IF_ERROR(
            Expect(SqlTokenType::kRParen, "')' after function arguments"));
      }
    }
    // Optional alias.
    if (MatchKw("AS")) {
      MLCS_ASSIGN_OR_RETURN(ref->alias, ExpectIdent("after AS"));
    } else if (Check(SqlTokenType::kIdent) &&
               !IsReservedKeyword(Peek().text)) {
      ref->alias = Advance().text;
    }
    return ref;
  }

  // -- Expressions ----------------------------------------------------------
  Result<SqlExprPtr> ParseExpr() { return ParseOr(); }

  Result<SqlExprPtr> ParseOr() {
    MLCS_ASSIGN_OR_RETURN(SqlExprPtr left, ParseAnd());
    while (CheckKw("OR")) {
      int line = Advance().line;
      MLCS_ASSIGN_OR_RETURN(SqlExprPtr right, ParseAnd());
      left = MakeBinary(exec::BinOpKind::kOr, std::move(left),
                        std::move(right), line);
    }
    return left;
  }

  Result<SqlExprPtr> ParseAnd() {
    MLCS_ASSIGN_OR_RETURN(SqlExprPtr left, ParseNot());
    while (CheckKw("AND")) {
      int line = Advance().line;
      MLCS_ASSIGN_OR_RETURN(SqlExprPtr right, ParseNot());
      left = MakeBinary(exec::BinOpKind::kAnd, std::move(left),
                        std::move(right), line);
    }
    return left;
  }

  Result<SqlExprPtr> ParseNot() {
    if (CheckKw("NOT")) {
      int line = Advance().line;
      MLCS_ASSIGN_OR_RETURN(SqlExprPtr operand, ParseNot());
      auto e = std::make_unique<SqlExpr>();
      e->kind = SqlExprKind::kUnary;
      e->un_op = exec::UnOpKind::kNot;
      e->left = std::move(operand);
      e->line = line;
      return e;
    }
    return ParseComparison();
  }

  /// Deep copy of an expression (needed to desugar IN / BETWEEN, whose
  /// probe expression appears in several comparisons).
  static SqlExprPtr CloneExpr(const SqlExpr& e) {
    auto out = std::make_unique<SqlExpr>();
    out->kind = e.kind;
    out->line = e.line;
    out->literal = e.literal;
    out->name = e.name;
    out->bin_op = e.bin_op;
    out->un_op = e.un_op;
    out->cast_type = e.cast_type;
    out->is_not_null = e.is_not_null;
    if (e.left != nullptr) out->left = CloneExpr(*e.left);
    if (e.right != nullptr) out->right = CloneExpr(*e.right);
    for (const auto& arg : e.args) out->args.push_back(CloneExpr(*arg));
    for (const auto& [cond, value] : e.when_clauses) {
      out->when_clauses.emplace_back(CloneExpr(*cond), CloneExpr(*value));
    }
    if (e.subquery != nullptr) {
      // Subqueries inside IN/BETWEEN probes are rare; forbid cloning them
      // rather than deep-copying a statement tree.
      out->subquery = nullptr;
    }
    return out;
  }

  Result<SqlExprPtr> ParseComparison() {
    MLCS_ASSIGN_OR_RETURN(SqlExprPtr left, ParseAdditive());
    // [NOT] IN (list) / [NOT] BETWEEN lo AND hi postfixes (desugared).
    bool negated_postfix = false;
    if (CheckKw("NOT") && (CheckKw("IN", 1) || CheckKw("BETWEEN", 1))) {
      Advance();
      negated_postfix = true;
    }
    if (CheckKw("IN")) {
      int line = Advance().line;
      if (left->subquery != nullptr) {
        return Status::ParseError("subqueries are not allowed in IN lists");
      }
      MLCS_RETURN_IF_ERROR(Expect(SqlTokenType::kLParen, "'(' after IN"));
      SqlExprPtr disjunction;
      while (true) {
        MLCS_ASSIGN_OR_RETURN(SqlExprPtr item, ParseExpr());
        SqlExprPtr eq = MakeBinary(exec::BinOpKind::kEq, CloneExpr(*left),
                                   std::move(item), line);
        disjunction = disjunction == nullptr
                          ? std::move(eq)
                          : MakeBinary(exec::BinOpKind::kOr,
                                       std::move(disjunction), std::move(eq),
                                       line);
        if (!Match(SqlTokenType::kComma)) break;
      }
      MLCS_RETURN_IF_ERROR(
          Expect(SqlTokenType::kRParen, "')' after IN list"));
      if (negated_postfix) {
        auto e = std::make_unique<SqlExpr>();
        e->kind = SqlExprKind::kUnary;
        e->un_op = exec::UnOpKind::kNot;
        e->left = std::move(disjunction);
        e->line = line;
        return e;
      }
      return disjunction;
    }
    if (CheckKw("BETWEEN")) {
      int line = Advance().line;
      MLCS_ASSIGN_OR_RETURN(SqlExprPtr lo, ParseAdditive());
      MLCS_RETURN_IF_ERROR(ExpectKw("AND"));
      MLCS_ASSIGN_OR_RETURN(SqlExprPtr hi, ParseAdditive());
      SqlExprPtr ge = MakeBinary(exec::BinOpKind::kGe, CloneExpr(*left),
                                 std::move(lo), line);
      SqlExprPtr le = MakeBinary(exec::BinOpKind::kLe, std::move(left),
                                 std::move(hi), line);
      SqlExprPtr both = MakeBinary(exec::BinOpKind::kAnd, std::move(ge),
                                   std::move(le), line);
      if (negated_postfix) {
        auto e = std::make_unique<SqlExpr>();
        e->kind = SqlExprKind::kUnary;
        e->un_op = exec::UnOpKind::kNot;
        e->left = std::move(both);
        e->line = line;
        return e;
      }
      return both;
    }
    if (negated_postfix) {
      return Err("expected IN or BETWEEN after NOT");
    }
    // IS [NOT] NULL postfix.
    if (CheckKw("IS")) {
      int line = Advance().line;
      bool negated = MatchKw("NOT");
      MLCS_RETURN_IF_ERROR(ExpectKw("NULL"));
      auto e = std::make_unique<SqlExpr>();
      e->kind = SqlExprKind::kIsNull;
      e->is_not_null = negated;
      e->left = std::move(left);
      e->line = line;
      return e;
    }
    exec::BinOpKind op;
    if (CheckOp("=")) {
      op = exec::BinOpKind::kEq;
    } else if (CheckOp("<>") || CheckOp("!=")) {
      op = exec::BinOpKind::kNe;
    } else if (CheckOp("<")) {
      op = exec::BinOpKind::kLt;
    } else if (CheckOp("<=")) {
      op = exec::BinOpKind::kLe;
    } else if (CheckOp(">")) {
      op = exec::BinOpKind::kGt;
    } else if (CheckOp(">=")) {
      op = exec::BinOpKind::kGe;
    } else {
      return left;
    }
    int line = Advance().line;
    MLCS_ASSIGN_OR_RETURN(SqlExprPtr right, ParseAdditive());
    return MakeBinary(op, std::move(left), std::move(right), line);
  }

  Result<SqlExprPtr> ParseAdditive() {
    MLCS_ASSIGN_OR_RETURN(SqlExprPtr left, ParseMultiplicative());
    while (CheckOp("+") || CheckOp("-")) {
      exec::BinOpKind op =
          Peek().text == "+" ? exec::BinOpKind::kAdd : exec::BinOpKind::kSub;
      int line = Advance().line;
      MLCS_ASSIGN_OR_RETURN(SqlExprPtr right, ParseMultiplicative());
      left = MakeBinary(op, std::move(left), std::move(right), line);
    }
    return left;
  }

  Result<SqlExprPtr> ParseMultiplicative() {
    MLCS_ASSIGN_OR_RETURN(SqlExprPtr left, ParseUnary());
    while (Check(SqlTokenType::kStar) || CheckOp("/") || CheckOp("%")) {
      exec::BinOpKind op = Check(SqlTokenType::kStar)
                               ? exec::BinOpKind::kMul
                               : (Peek().text == "/" ? exec::BinOpKind::kDiv
                                                     : exec::BinOpKind::kMod);
      int line = Advance().line;
      MLCS_ASSIGN_OR_RETURN(SqlExprPtr right, ParseUnary());
      left = MakeBinary(op, std::move(left), std::move(right), line);
    }
    return left;
  }

  Result<SqlExprPtr> ParseUnary() {
    if (CheckOp("-")) {
      int line = Advance().line;
      MLCS_ASSIGN_OR_RETURN(SqlExprPtr operand, ParseUnary());
      auto e = std::make_unique<SqlExpr>();
      e->kind = SqlExprKind::kUnary;
      e->un_op = exec::UnOpKind::kNeg;
      e->left = std::move(operand);
      e->line = line;
      return e;
    }
    return ParsePrimary();
  }

  Result<SqlExprPtr> ParsePrimary() {
    int line = Peek().line;
    if (Match(SqlTokenType::kLParen)) {
      if (CheckKw("SELECT")) {
        MLCS_ASSIGN_OR_RETURN(SelectStatement select, ParseSelect());
        MLCS_RETURN_IF_ERROR(
            Expect(SqlTokenType::kRParen, "')' after scalar subquery"));
        auto e = std::make_unique<SqlExpr>();
        e->kind = SqlExprKind::kSubquery;
        e->subquery = std::make_unique<SelectStatement>(std::move(select));
        e->line = line;
        return e;
      }
      MLCS_ASSIGN_OR_RETURN(SqlExprPtr inner, ParseExpr());
      MLCS_RETURN_IF_ERROR(Expect(SqlTokenType::kRParen, "')'"));
      return inner;
    }
    if (Check(SqlTokenType::kInt)) {
      SqlToken tok = Advance();
      MLCS_ASSIGN_OR_RETURN(int64_t v, ParseInt64(tok.text));
      return MakeLiteral(v >= INT32_MIN && v <= INT32_MAX
                             ? Value::Int32(static_cast<int32_t>(v))
                             : Value::Int64(v),
                         line);
    }
    if (Check(SqlTokenType::kFloat)) {
      SqlToken tok = Advance();
      MLCS_ASSIGN_OR_RETURN(double v, ParseDouble(tok.text));
      return MakeLiteral(Value::Double(v), line);
    }
    if (Check(SqlTokenType::kString)) {
      return MakeLiteral(Value::Varchar(Advance().text), line);
    }
    if (MatchKw("TRUE")) return MakeLiteral(Value::Bool(true), line);
    if (MatchKw("FALSE")) return MakeLiteral(Value::Bool(false), line);
    if (MatchKw("NULL")) {
      return MakeLiteral(Value::MakeNull(TypeId::kInt32), line);
    }
    if (CheckKw("CASE")) {
      Advance();
      auto e = std::make_unique<SqlExpr>();
      e->kind = SqlExprKind::kCase;
      e->line = line;
      if (!CheckKw("WHEN")) {
        return Err("expected WHEN after CASE (simple CASE form is not "
                   "supported; use CASE WHEN <cond> THEN <value>)");
      }
      while (MatchKw("WHEN")) {
        MLCS_ASSIGN_OR_RETURN(SqlExprPtr cond, ParseExpr());
        MLCS_RETURN_IF_ERROR(ExpectKw("THEN"));
        MLCS_ASSIGN_OR_RETURN(SqlExprPtr value, ParseExpr());
        e->when_clauses.emplace_back(std::move(cond), std::move(value));
      }
      if (MatchKw("ELSE")) {
        MLCS_ASSIGN_OR_RETURN(e->left, ParseExpr());
      }
      MLCS_RETURN_IF_ERROR(ExpectKw("END"));
      return e;
    }
    if (CheckKw("CAST")) {
      Advance();
      MLCS_RETURN_IF_ERROR(Expect(SqlTokenType::kLParen, "'(' after CAST"));
      auto e = std::make_unique<SqlExpr>();
      e->kind = SqlExprKind::kCast;
      e->line = line;
      MLCS_ASSIGN_OR_RETURN(e->left, ParseExpr());
      MLCS_RETURN_IF_ERROR(ExpectKw("AS"));
      MLCS_ASSIGN_OR_RETURN(std::string tname,
                            ExpectIdent("for CAST target type"));
      MLCS_ASSIGN_OR_RETURN(e->cast_type, TypeIdFromString(tname));
      MLCS_RETURN_IF_ERROR(Expect(SqlTokenType::kRParen, "')' after CAST"));
      return e;
    }
    if (Check(SqlTokenType::kIdent)) {
      if (IsReservedKeyword(Peek().text)) {
        return Err("unexpected keyword in expression");
      }
      MLCS_ASSIGN_OR_RETURN(std::string name,
                            ParsePossiblyQualifiedName("in expression"));
      if (Match(SqlTokenType::kLParen)) {
        auto e = std::make_unique<SqlExpr>();
        e->kind = SqlExprKind::kCall;
        e->name = std::move(name);
        e->line = line;
        if (!Check(SqlTokenType::kRParen)) {
          while (true) {
            if (Check(SqlTokenType::kStar) &&
                Peek(1).type == SqlTokenType::kRParen) {
              Advance();
              auto star = std::make_unique<SqlExpr>();
              star->kind = SqlExprKind::kStar;
              star->line = line;
              e->args.push_back(std::move(star));
              break;
            }
            MLCS_ASSIGN_OR_RETURN(SqlExprPtr arg, ParseExpr());
            e->args.push_back(std::move(arg));
            if (!Match(SqlTokenType::kComma)) break;
          }
        }
        MLCS_RETURN_IF_ERROR(
            Expect(SqlTokenType::kRParen, "')' after call arguments"));
        return e;
      }
      auto e = std::make_unique<SqlExpr>();
      e->kind = SqlExprKind::kColumnRef;
      e->name = std::move(name);
      e->line = line;
      return e;
    }
    return Err("unexpected token in expression");
  }

  static SqlExprPtr MakeBinary(exec::BinOpKind op, SqlExprPtr left,
                               SqlExprPtr right, int line) {
    auto e = std::make_unique<SqlExpr>();
    e->kind = SqlExprKind::kBinary;
    e->bin_op = op;
    e->left = std::move(left);
    e->right = std::move(right);
    e->line = line;
    return e;
  }

  static Result<SqlExprPtr> MakeLiteral(Value v, int line) {
    auto e = std::make_unique<SqlExpr>();
    e->kind = SqlExprKind::kLiteral;
    e->literal = std::move(v);
    e->line = line;
    return e;
  }

  std::vector<SqlToken> tokens_;
  size_t pos_ = 0;
};

}  // namespace

std::string SqlExpr::ToString() const {
  switch (kind) {
    case SqlExprKind::kLiteral:
      return literal.ToString();
    case SqlExprKind::kColumnRef:
      return name;
    case SqlExprKind::kStar:
      return "*";
    case SqlExprKind::kBinary:
      return "(" + left->ToString() + " " +
             exec::BinOpKindToString(bin_op) + " " + right->ToString() + ")";
    case SqlExprKind::kUnary:
      return std::string(un_op == exec::UnOpKind::kNeg ? "-" : "NOT ") +
             left->ToString();
    case SqlExprKind::kCall: {
      std::string out = name + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
    case SqlExprKind::kCast:
      return "CAST(" + left->ToString() + " AS " +
             TypeIdToString(cast_type) + ")";
    case SqlExprKind::kIsNull:
      return left->ToString() + (is_not_null ? " IS NOT NULL" : " IS NULL");
    case SqlExprKind::kSubquery:
      return "(<subquery>)";
    case SqlExprKind::kCase: {
      std::string out = "CASE";
      for (const auto& [cond, value] : when_clauses) {
        out += " WHEN " + cond->ToString() + " THEN " + value->ToString();
      }
      if (left != nullptr) out += " ELSE " + left->ToString();
      return out + " END";
    }
  }
  return "?";
}

Result<Statement> ParseStatement(const std::string& sql) {
  MLCS_ASSIGN_OR_RETURN(std::vector<Statement> statements, ParseScript(sql));
  if (statements.size() != 1) {
    return Status::ParseError("expected exactly one statement, got " +
                              std::to_string(statements.size()));
  }
  return std::move(statements[0]);
}

Result<std::vector<Statement>> ParseScript(const std::string& sql) {
  MLCS_ASSIGN_OR_RETURN(std::vector<SqlToken> tokens, TokenizeSql(sql));
  Parser parser(std::move(tokens));
  return parser.ParseAll();
}

}  // namespace mlcs::sql
