#include "sql/executor.h"

#include <map>

#include "common/string_util.h"
#include "exec/aggregate.h"
#include "exec/filter.h"
#include "exec/sort.h"
#include "vscript/vs_interpreter.h"
#include "vscript/vs_parser.h"

namespace mlcs::sql {

namespace {

bool IsAggregateName(const std::string& name) {
  return EqualsIgnoreCase(name, "count") || EqualsIgnoreCase(name, "sum") ||
         EqualsIgnoreCase(name, "avg") || EqualsIgnoreCase(name, "min") ||
         EqualsIgnoreCase(name, "max") || EqualsIgnoreCase(name, "stddev") ||
         EqualsIgnoreCase(name, "stddev_pop");
}

bool IsTopLevelAggregate(const SqlExpr& e) {
  return e.kind == SqlExprKind::kCall && IsAggregateName(e.name);
}

/// Output column name for an unaliased select item.
std::string DeriveName(const SqlExpr& e, size_t index) {
  if (e.kind == SqlExprKind::kColumnRef) return e.name;
  if (e.kind == SqlExprKind::kCall) return ToLower(e.name);
  return "col" + std::to_string(index);
}

}  // namespace

TablePtr Executor::StatusTable(const std::string& message) {
  Schema s;
  s.AddField("status", TypeId::kVarchar);
  auto t = Table::Make(std::move(s));
  (void)t->AppendRow({Value::Varchar(message)});
  return t;
}

namespace {
std::string Indent(int n) { return std::string(static_cast<size_t>(n), ' '); }
}  // namespace

std::string Executor::RenderTableRefPlan(const TableRef& ref, int indent) {
  switch (ref.kind) {
    case TableRef::Kind::kBase:
      return Indent(indent) + "SCAN " + ref.name + "\n";
    case TableRef::Kind::kJoin: {
      std::string out =
          Indent(indent) +
          (ref.join_type == exec::JoinType::kLeft ? "LEFT JOIN"
                                                  : "HASH JOIN");
      out += " on ";
      for (size_t i = 0; i < ref.join_keys.size(); ++i) {
        if (i > 0) out += " AND ";
        out += ref.join_keys[i].first + " = " + ref.join_keys[i].second;
      }
      out += "\n";
      out += RenderTableRefPlan(*ref.left, indent + 2);
      out += RenderTableRefPlan(*ref.right, indent + 2);
      return out;
    }
    case TableRef::Kind::kFunction: {
      std::string out =
          Indent(indent) + "TABLE FUNCTION " + ref.name + "(...)\n";
      for (const auto& arg : ref.fn_args) {
        if (arg.table != nullptr) {
          out += RenderSelectPlan(*arg.table, indent + 2);
        }
      }
      return out;
    }
    case TableRef::Kind::kSubquery:
      return Indent(indent) + "SUBQUERY\n" +
             RenderSelectPlan(*ref.subquery, indent + 2);
  }
  return "";
}

std::string Executor::RenderSelectPlan(const SelectStatement& select,
                                       int indent) {
  // Rendered outermost-last-applied first (the conventional plan shape).
  std::string out;
  if (select.limit >= 0) {
    out += Indent(indent) + "LIMIT " + std::to_string(select.limit) + "\n";
    indent += 2;
  }
  if (!select.order_by.empty()) {
    out += Indent(indent) + "SORT by ";
    for (size_t i = 0; i < select.order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += select.order_by[i].expr->ToString();
      if (select.order_by[i].descending) out += " DESC";
    }
    out += "\n";
    indent += 2;
  }
  if (select.distinct) {
    out += Indent(indent) + "DISTINCT\n";
    indent += 2;
  }
  if (select.having != nullptr) {
    out += Indent(indent) + "HAVING " + select.having->ToString() + "\n";
    indent += 2;
  }
  std::string projection;
  for (size_t i = 0; i < select.items.size(); ++i) {
    if (i > 0) projection += ", ";
    projection += select.items[i].star ? "*" : select.items[i].expr->ToString();
    if (!select.items[i].alias.empty()) {
      projection += " AS " + select.items[i].alias;
    }
  }
  bool has_aggregate = !select.group_by.empty();
  for (const auto& item : select.items) {
    if (!item.star && item.expr->kind == SqlExprKind::kCall) {
      has_aggregate = true;  // conservative for plan display
    }
  }
  if (!select.group_by.empty() || has_aggregate) {
    out += Indent(indent) + "AGGREGATE [" + projection + "]";
    if (!select.group_by.empty()) {
      out += " group by ";
      for (size_t i = 0; i < select.group_by.size(); ++i) {
        if (i > 0) out += ", ";
        out += select.group_by[i];
      }
    }
    out += "\n";
  } else {
    out += Indent(indent) + "PROJECT [" + projection + "]\n";
  }
  indent += 2;
  if (select.where != nullptr) {
    out += Indent(indent) + "FILTER " + select.where->ToString() + "\n";
    indent += 2;
  }
  if (select.from != nullptr) {
    out += RenderTableRefPlan(*select.from, indent);
  } else {
    out += Indent(indent) + "DUAL (no FROM)\n";
  }
  return out;
}

std::string Executor::RenderPlan(const Statement& stmt) {
  if (const auto* select = std::get_if<SelectStatement>(&stmt)) {
    return RenderSelectPlan(*select, 0);
  }
  if (const auto* create = std::get_if<CreateTableStmt>(&stmt)) {
    if (create->as_select != nullptr) {
      return "CREATE TABLE " + create->name + " AS\n" +
             RenderSelectPlan(*create->as_select, 2);
    }
    return "CREATE TABLE " + create->name + " " +
           create->schema.ToString() + "\n";
  }
  if (const auto* insert = std::get_if<InsertStmt>(&stmt)) {
    if (insert->select != nullptr) {
      return "INSERT INTO " + insert->table + "\n" +
             RenderSelectPlan(*insert->select, 2);
    }
    return "INSERT INTO " + insert->table + " (" +
           std::to_string(insert->rows.size()) + " literal rows)\n";
  }
  if (const auto* del = std::get_if<DeleteStmt>(&stmt)) {
    return "DELETE FROM " + del->table +
           (del->where != nullptr ? " WHERE " + del->where->ToString()
                                  : std::string(" (all rows)")) +
           "\n";
  }
  return "(plan rendering not supported for this statement)\n";
}

exec::EvalContext Executor::MakeContext(const Table* input) const {
  exec::EvalContext ctx;
  ctx.input = input;
  ctx.call_function = [this](const std::string& name,
                             const std::vector<ColumnPtr>& args,
                             size_t num_rows) -> Result<ColumnPtr> {
    return udfs_->CallScalar(name, args, num_rows);
  };
  return ctx;
}

Result<TablePtr> Executor::Execute(const Statement& stmt) {
  if (const auto* select = std::get_if<SelectStatement>(&stmt)) {
    return ExecuteSelect(*select);
  }
  if (const auto* create = std::get_if<CreateTableStmt>(&stmt)) {
    return ExecuteCreateTable(*create);
  }
  if (const auto* insert = std::get_if<InsertStmt>(&stmt)) {
    return ExecuteInsert(*insert);
  }
  if (const auto* drop = std::get_if<DropStmt>(&stmt)) {
    return ExecuteDrop(*drop);
  }
  if (const auto* fn = std::get_if<CreateFunctionStmt>(&stmt)) {
    return ExecuteCreateFunction(*fn);
  }
  if (const auto* del = std::get_if<DeleteStmt>(&stmt)) {
    return ExecuteDelete(*del);
  }
  if (const auto* update = std::get_if<UpdateStmt>(&stmt)) {
    return ExecuteUpdate(*update);
  }
  if (const auto* show = std::get_if<ShowStmt>(&stmt)) {
    Schema schema;
    schema.AddField("name", TypeId::kVarchar);
    auto out = Table::Make(std::move(schema));
    std::vector<std::string> names;
    if (show->what == ShowStmt::What::kTables) {
      names = catalog_->ListTables();
    } else {
      names = udfs_->ListScalar();
      for (auto& t : udfs_->ListTable()) names.push_back(t + " (table)");
    }
    for (const auto& name : names) {
      MLCS_RETURN_IF_ERROR(out->AppendRow({Value::Varchar(name)}));
    }
    return out;
  }
  if (const auto* describe = std::get_if<DescribeStmt>(&stmt)) {
    MLCS_ASSIGN_OR_RETURN(TablePtr table,
                          catalog_->GetTable(describe->table));
    Schema schema;
    schema.AddField("column", TypeId::kVarchar);
    schema.AddField("type", TypeId::kVarchar);
    auto out = Table::Make(std::move(schema));
    for (const auto& field : table->schema().fields()) {
      MLCS_RETURN_IF_ERROR(
          out->AppendRow({Value::Varchar(field.name),
                          Value::Varchar(TypeIdToString(field.type))}));
    }
    return out;
  }
  if (const auto* explain =
          std::get_if<std::unique_ptr<ExplainStmt>>(&stmt)) {
    Schema schema;
    schema.AddField("plan", TypeId::kVarchar);
    auto out = Table::Make(std::move(schema));
    for (const std::string& line :
         SplitString(RenderPlan((*explain)->inner), '\n')) {
      if (!line.empty()) {
        MLCS_RETURN_IF_ERROR(out->AppendRow({Value::Varchar(line)}));
      }
    }
    return out;
  }
  return Status::Internal("unknown statement kind");
}

Result<TablePtr> Executor::ExecuteCreateTable(const CreateTableStmt& stmt) {
  TablePtr table;
  if (stmt.as_select != nullptr) {
    MLCS_ASSIGN_OR_RETURN(TablePtr result, ExecuteSelect(*stmt.as_select));
    // Deep-copy the columns: results may share buffers with source tables,
    // and catalog tables must own their storage.
    std::vector<ColumnPtr> columns;
    columns.reserve(result->num_columns());
    for (size_t i = 0; i < result->num_columns(); ++i) {
      columns.push_back(std::make_shared<Column>(*result->column(i)));
    }
    table = std::make_shared<Table>(result->schema(), std::move(columns));
  } else {
    if (stmt.schema.num_fields() == 0) {
      return Status::InvalidArgument("CREATE TABLE with no columns");
    }
    table = Table::Make(stmt.schema);
  }
  MLCS_RETURN_IF_ERROR(
      catalog_->CreateTable(stmt.name, table, stmt.or_replace));
  return StatusTable("CREATE TABLE " + stmt.name);
}

Result<TablePtr> Executor::ExecuteInsert(const InsertStmt& stmt) {
  MLCS_ASSIGN_OR_RETURN(TablePtr table, catalog_->GetTable(stmt.table));
  size_t inserted = 0;
  if (stmt.select != nullptr) {
    MLCS_ASSIGN_OR_RETURN(TablePtr result, ExecuteSelect(*stmt.select));
    if (result->num_columns() != table->num_columns()) {
      return Status::TypeMismatch(
          "INSERT SELECT column count mismatch: " +
          std::to_string(result->num_columns()) + " vs " +
          std::to_string(table->num_columns()));
    }
    for (size_t c = 0; c < table->num_columns(); ++c) {
      ColumnPtr col = result->column(c);
      if (col->type() != table->schema().field(c).type) {
        MLCS_ASSIGN_OR_RETURN(col,
                              col->CastTo(table->schema().field(c).type));
      }
      MLCS_RETURN_IF_ERROR(table->column(c)->AppendColumn(*col));
    }
    inserted = result->num_rows();
  } else {
    for (const auto& row : stmt.rows) {
      std::vector<Value> values;
      values.reserve(row.size());
      for (const auto& expr : row) {
        MLCS_ASSIGN_OR_RETURN(Value v, EvaluateConstant(*expr));
        values.push_back(std::move(v));
      }
      MLCS_RETURN_IF_ERROR(table->AppendRow(values));
      ++inserted;
    }
  }
  return StatusTable("INSERT " + std::to_string(inserted));
}

Result<TablePtr> Executor::ExecuteDrop(const DropStmt& stmt) {
  if (stmt.is_function) {
    MLCS_RETURN_IF_ERROR(udfs_->Drop(stmt.name, stmt.if_exists));
    return StatusTable("DROP FUNCTION " + stmt.name);
  }
  MLCS_RETURN_IF_ERROR(catalog_->DropTable(stmt.name, stmt.if_exists));
  return StatusTable("DROP TABLE " + stmt.name);
}

Result<TablePtr> Executor::ExecuteDelete(const DeleteStmt& stmt) {
  MLCS_ASSIGN_OR_RETURN(TablePtr table, catalog_->GetTable(stmt.table));
  size_t before = table->num_rows();
  TablePtr remaining;
  if (stmt.where == nullptr) {
    remaining = Table::Make(table->schema());
  } else {
    MLCS_ASSIGN_OR_RETURN(exec::ExprPtr pred, Lower(*stmt.where));
    exec::EvalContext ctx = MakeContext(table.get());
    MLCS_ASSIGN_OR_RETURN(ColumnPtr mask, pred->Evaluate(ctx));
    if (mask->type() != TypeId::kBool) {
      return Status::TypeMismatch("DELETE predicate must be BOOLEAN");
    }
    // Keep rows where the predicate is NOT true (false or NULL stay).
    std::vector<uint32_t> keep;
    size_t n = table->num_rows();
    for (size_t r = 0; r < n; ++r) {
      size_t mi = mask->size() == 1 ? 0 : r;
      bool deleted = !mask->IsNull(mi) && mask->bool_data()[mi] != 0;
      if (!deleted) keep.push_back(static_cast<uint32_t>(r));
    }
    remaining = table->TakeRows(keep);
  }
  MLCS_RETURN_IF_ERROR(catalog_->CreateTable(stmt.table, remaining,
                                             /*or_replace=*/true));
  return StatusTable("DELETE " +
                     std::to_string(before - remaining->num_rows()));
}

Result<TablePtr> Executor::ExecuteUpdate(const UpdateStmt& stmt) {
  MLCS_ASSIGN_OR_RETURN(TablePtr table, catalog_->GetTable(stmt.table));
  size_t n = table->num_rows();
  exec::EvalContext ctx = MakeContext(table.get());

  // Row mask (true → update this row).
  std::vector<uint8_t> update_row(n, 1);
  if (stmt.where != nullptr) {
    MLCS_ASSIGN_OR_RETURN(exec::ExprPtr pred, Lower(*stmt.where));
    MLCS_ASSIGN_OR_RETURN(ColumnPtr mask, pred->Evaluate(ctx));
    if (mask->type() != TypeId::kBool) {
      return Status::TypeMismatch("UPDATE predicate must be BOOLEAN");
    }
    for (size_t r = 0; r < n; ++r) {
      size_t mi = mask->size() == 1 ? 0 : r;
      update_row[r] =
          (!mask->IsNull(mi) && mask->bool_data()[mi] != 0) ? 1 : 0;
    }
  }

  // New values per assignment, evaluated over the *old* table (standard
  // UPDATE semantics: all right-hand sides see pre-update values).
  std::map<size_t, ColumnPtr> new_values;
  for (const auto& [col_name, expr] : stmt.assignments) {
    MLCS_ASSIGN_OR_RETURN(size_t idx,
                          table->schema().RequireFieldIndex(col_name));
    if (new_values.count(idx) > 0) {
      return Status::InvalidArgument("column '" + col_name +
                                     "' assigned twice in UPDATE");
    }
    MLCS_ASSIGN_OR_RETURN(exec::ExprPtr lowered, Lower(*expr));
    MLCS_ASSIGN_OR_RETURN(ColumnPtr value, lowered->Evaluate(ctx));
    TypeId target = table->schema().field(idx).type;
    if (value->type() != target) {
      MLCS_ASSIGN_OR_RETURN(value, value->CastTo(target));
    }
    new_values[idx] = std::move(value);
  }

  // Copy-on-write: build a fresh table (shared result sets keep the old
  // column buffers).
  std::vector<ColumnPtr> columns;
  size_t updated = 0;
  for (size_t r = 0; r < n; ++r) updated += update_row[r];
  for (size_t c = 0; c < table->num_columns(); ++c) {
    auto it = new_values.find(c);
    if (it == new_values.end()) {
      columns.push_back(table->column(c));
      continue;
    }
    const ColumnPtr& fresh = it->second;
    ColumnPtr out = Column::Make(table->schema().field(c).type);
    out->Reserve(n);
    for (size_t r = 0; r < n; ++r) {
      const Column& src = update_row[r] ? *fresh : *table->column(c);
      size_t idx = (update_row[r] && fresh->size() == 1) ? 0 : r;
      if (src.IsNull(idx)) {
        out->AppendNull();
      } else {
        MLCS_ASSIGN_OR_RETURN(Value v, src.GetValue(idx));
        MLCS_RETURN_IF_ERROR(out->AppendValue(v));
      }
    }
    columns.push_back(std::move(out));
  }
  auto rebuilt =
      std::make_shared<Table>(table->schema(), std::move(columns));
  MLCS_RETURN_IF_ERROR(rebuilt->Validate());
  MLCS_RETURN_IF_ERROR(
      catalog_->CreateTable(stmt.table, rebuilt, /*or_replace=*/true));
  return StatusTable("UPDATE " + std::to_string(updated));
}

Result<Value> Executor::EvaluateScalarSubquery(
    const SelectStatement& select) {
  MLCS_ASSIGN_OR_RETURN(TablePtr result, ExecuteSelect(select));
  if (result->num_columns() != 1 || result->num_rows() != 1) {
    return Status::InvalidArgument(
        "scalar subquery must produce exactly one row and one column, got " +
        std::to_string(result->num_rows()) + "x" +
        std::to_string(result->num_columns()));
  }
  return result->GetValue(0, 0);
}

Result<exec::ExprPtr> Executor::Lower(const SqlExpr& e) {
  switch (e.kind) {
    case SqlExprKind::kLiteral:
      return exec::ExprPtr(std::make_shared<exec::LiteralExpr>(e.literal));
    case SqlExprKind::kColumnRef:
      return exec::ExprPtr(std::make_shared<exec::ColumnRefExpr>(e.name));
    case SqlExprKind::kBinary: {
      MLCS_ASSIGN_OR_RETURN(exec::ExprPtr left, Lower(*e.left));
      MLCS_ASSIGN_OR_RETURN(exec::ExprPtr right, Lower(*e.right));
      return exec::ExprPtr(std::make_shared<exec::BinaryExpr>(
          e.bin_op, std::move(left), std::move(right)));
    }
    case SqlExprKind::kUnary: {
      MLCS_ASSIGN_OR_RETURN(exec::ExprPtr operand, Lower(*e.left));
      return exec::ExprPtr(
          std::make_shared<exec::UnaryExpr>(e.un_op, std::move(operand)));
    }
    case SqlExprKind::kCall: {
      if (IsAggregateName(e.name)) {
        return Status::InvalidArgument(
            "aggregate function " + e.name +
            " is only allowed at the top level of a SELECT list");
      }
      std::vector<exec::ExprPtr> args;
      args.reserve(e.args.size());
      for (const auto& arg : e.args) {
        MLCS_ASSIGN_OR_RETURN(exec::ExprPtr lowered, Lower(*arg));
        args.push_back(std::move(lowered));
      }
      return exec::ExprPtr(
          std::make_shared<exec::FunctionCallExpr>(e.name, std::move(args)));
    }
    case SqlExprKind::kCast: {
      MLCS_ASSIGN_OR_RETURN(exec::ExprPtr operand, Lower(*e.left));
      return exec::ExprPtr(
          std::make_shared<exec::CastExpr>(std::move(operand), e.cast_type));
    }
    case SqlExprKind::kIsNull: {
      MLCS_ASSIGN_OR_RETURN(exec::ExprPtr operand, Lower(*e.left));
      return exec::ExprPtr(std::make_shared<exec::IsNullExpr>(
          std::move(operand), e.is_not_null));
    }
    case SqlExprKind::kSubquery: {
      MLCS_ASSIGN_OR_RETURN(Value v, EvaluateScalarSubquery(*e.subquery));
      return exec::ExprPtr(std::make_shared<exec::LiteralExpr>(std::move(v)));
    }
    case SqlExprKind::kCase: {
      std::vector<std::pair<exec::ExprPtr, exec::ExprPtr>> branches;
      for (const auto& [cond, value] : e.when_clauses) {
        MLCS_ASSIGN_OR_RETURN(exec::ExprPtr c, Lower(*cond));
        MLCS_ASSIGN_OR_RETURN(exec::ExprPtr v, Lower(*value));
        branches.emplace_back(std::move(c), std::move(v));
      }
      exec::ExprPtr else_value;
      if (e.left != nullptr) {
        MLCS_ASSIGN_OR_RETURN(else_value, Lower(*e.left));
      }
      return exec::ExprPtr(std::make_shared<exec::CaseExpr>(
          std::move(branches), std::move(else_value)));
    }
    case SqlExprKind::kStar:
      return Status::InvalidArgument("'*' is only valid inside COUNT(*)");
  }
  return Status::Internal("unknown expression kind");
}

Result<Value> Executor::EvaluateConstant(const SqlExpr& e) {
  MLCS_ASSIGN_OR_RETURN(exec::ExprPtr lowered, Lower(e));
  exec::EvalContext ctx = MakeContext(nullptr);
  MLCS_ASSIGN_OR_RETURN(ColumnPtr col, lowered->Evaluate(ctx));
  if (col->size() != 1) {
    return Status::InvalidArgument("expected a scalar expression");
  }
  return col->GetValue(0);
}

Result<TablePtr> Executor::ResolveTableRef(const TableRef& ref) {
  switch (ref.kind) {
    case TableRef::Kind::kBase:
      return catalog_->GetTable(ref.name);
    case TableRef::Kind::kSubquery:
      return ExecuteSelect(*ref.subquery);
    case TableRef::Kind::kJoin:
      return ExecuteJoin(ref);
    case TableRef::Kind::kFunction: {
      std::vector<ColumnPtr> args;
      for (const auto& arg : ref.fn_args) {
        if (arg.table != nullptr) {
          // Parenthesized subquery: its columns become vector arguments —
          // the MonetDB table-argument calling convention.
          MLCS_ASSIGN_OR_RETURN(TablePtr t, ExecuteSelect(*arg.table));
          for (size_t c = 0; c < t->num_columns(); ++c) {
            args.push_back(t->column(c));
          }
        } else {
          MLCS_ASSIGN_OR_RETURN(Value v, EvaluateConstant(*arg.scalar));
          args.push_back(Column::Constant(v, 1));
        }
      }
      return udfs_->CallTable(ref.name, args);
    }
  }
  return Status::Internal("unknown table ref kind");
}

Result<TablePtr> Executor::ExecuteJoin(const TableRef& ref) {
  MLCS_ASSIGN_OR_RETURN(TablePtr left, ResolveTableRef(*ref.left));
  MLCS_ASSIGN_OR_RETURN(TablePtr right, ResolveTableRef(*ref.right));
  // Orient each key pair: the parser strips qualifiers, so decide by which
  // schema actually holds each column.
  std::vector<std::string> left_keys, right_keys;
  for (const auto& [a, b] : ref.join_keys) {
    bool a_left = left->schema().FieldIndex(a).has_value();
    bool b_right = right->schema().FieldIndex(b).has_value();
    if (a_left && b_right) {
      left_keys.push_back(a);
      right_keys.push_back(b);
      continue;
    }
    bool b_left = left->schema().FieldIndex(b).has_value();
    bool a_right = right->schema().FieldIndex(a).has_value();
    if (b_left && a_right) {
      left_keys.push_back(b);
      right_keys.push_back(a);
      continue;
    }
    return Status::NotFound("join condition " + a + " = " + b +
                            " does not match the joined tables' columns");
  }
  return exec::HashJoin(*left, *right, left_keys, right_keys, ref.join_type,
                        policy_);
}

Result<TablePtr> Executor::ExecuteSelect(const SelectStatement& select) {
  // FROM (default: a one-row dummy so `SELECT 1` works).
  TablePtr input;
  if (select.from != nullptr) {
    MLCS_ASSIGN_OR_RETURN(input, ResolveTableRef(*select.from));
  } else {
    Schema empty;
    input = Table::Make(std::move(empty));
  }

  // WHERE.
  if (select.where != nullptr) {
    MLCS_ASSIGN_OR_RETURN(exec::ExprPtr pred, Lower(*select.where));
    exec::EvalContext ctx = MakeContext(input.get());
    MLCS_ASSIGN_OR_RETURN(ColumnPtr mask, pred->Evaluate(ctx));
    MLCS_ASSIGN_OR_RETURN(input, exec::FilterTable(*input, *mask, policy_));
  }

  // Projection (aggregate or plain).
  bool has_aggregate = !select.group_by.empty();
  for (const auto& item : select.items) {
    if (!item.star && IsTopLevelAggregate(*item.expr)) has_aggregate = true;
  }
  TablePtr output;
  if (has_aggregate) {
    MLCS_ASSIGN_OR_RETURN(output, ProjectAggregate(select, input));
    // Aggregation breaks the row correspondence with the input.
    input = nullptr;
  } else {
    MLCS_ASSIGN_OR_RETURN(output, ProjectPlain(select, input));
  }

  // HAVING filters the projected output (reference output names/aliases,
  // e.g. `SELECT k, COUNT(*) AS n ... HAVING n > 5`).
  if (select.having != nullptr) {
    if (!has_aggregate) {
      return Status::InvalidArgument(
          "HAVING requires GROUP BY or aggregates");
    }
    MLCS_ASSIGN_OR_RETURN(exec::ExprPtr pred, Lower(*select.having));
    exec::EvalContext ctx = MakeContext(output.get());
    MLCS_ASSIGN_OR_RETURN(ColumnPtr mask, pred->Evaluate(ctx));
    MLCS_ASSIGN_OR_RETURN(output, exec::FilterTable(*output, *mask, policy_));
  }

  // DISTINCT: hash-deduplicate full output rows (first-seen order).
  if (select.distinct) {
    std::vector<std::string> keys;
    keys.reserve(output->num_columns());
    for (const auto& field : output->schema().fields()) {
      keys.push_back(field.name);
    }
    MLCS_ASSIGN_OR_RETURN(output,
                          exec::HashGroupBy(*output, keys, {}, policy_));
    input = nullptr;  // row correspondence is gone
  }

  return ApplyOrderByLimit(select, std::move(output), input);
}

Result<TablePtr> Executor::ProjectPlain(const SelectStatement& select,
                                        const TablePtr& input) {
  Schema schema;
  std::vector<ColumnPtr> columns;
  size_t num_rows = input->num_rows();
  bool from_less = select.from == nullptr;
  exec::EvalContext ctx = MakeContext(from_less ? nullptr : input.get());
  for (size_t i = 0; i < select.items.size(); ++i) {
    const SelectItem& item = select.items[i];
    if (item.star) {
      if (select.from == nullptr) {
        return Status::InvalidArgument("SELECT * requires a FROM clause");
      }
      for (size_t c = 0; c < input->num_columns(); ++c) {
        schema.AddField(input->schema().field(c).name,
                        input->schema().field(c).type);
        columns.push_back(input->column(c));
      }
      continue;
    }
    MLCS_ASSIGN_OR_RETURN(exec::ExprPtr lowered, Lower(*item.expr));
    MLCS_ASSIGN_OR_RETURN(ColumnPtr col, lowered->Evaluate(ctx));
    size_t target_rows = from_less ? 1 : num_rows;
    if (col->size() == 1 && target_rows != 1) {
      MLCS_ASSIGN_OR_RETURN(Value v, col->GetValue(0));
      col = Column::Constant(v, target_rows);
    } else if (col->size() != target_rows) {
      return Status::Internal("projection produced " +
                              std::to_string(col->size()) +
                              " rows, expected " +
                              std::to_string(target_rows));
    }
    schema.AddField(
        item.alias.empty() ? DeriveName(*item.expr, i) : item.alias,
        col->type());
    columns.push_back(std::move(col));
  }
  auto out = std::make_shared<Table>(std::move(schema), std::move(columns));
  MLCS_RETURN_IF_ERROR(out->Validate());
  return out;
}

Result<TablePtr> Executor::ProjectAggregate(const SelectStatement& select,
                                            const TablePtr& input) {
  // Plan: pre-project aggregate inputs that are expressions, run the hash
  // aggregation, then map select items onto its output.
  TablePtr work = std::make_shared<Table>(*input);
  std::vector<exec::AggSpec> specs;
  struct ItemPlan {
    bool is_aggregate = false;
    std::string source_column;  // group key or aggregate output name
    std::string output_name;
  };
  std::vector<ItemPlan> plans;
  exec::EvalContext ctx = MakeContext(work.get());

  for (size_t i = 0; i < select.items.size(); ++i) {
    const SelectItem& item = select.items[i];
    if (item.star) {
      return Status::InvalidArgument(
          "SELECT * cannot be combined with aggregates/GROUP BY");
    }
    ItemPlan plan;
    plan.output_name =
        item.alias.empty() ? DeriveName(*item.expr, i) : item.alias;
    if (IsTopLevelAggregate(*item.expr)) {
      plan.is_aggregate = true;
      const SqlExpr& call = *item.expr;
      bool star_arg =
          call.args.size() == 1 && call.args[0]->kind == SqlExprKind::kStar;
      MLCS_ASSIGN_OR_RETURN(exec::AggOp op,
                            exec::AggOpFromName(call.name, star_arg));
      exec::AggSpec spec;
      spec.op = op;
      spec.output_name = "__agg_out_" + std::to_string(specs.size());
      if (!star_arg) {
        if (call.args.size() != 1) {
          return Status::InvalidArgument(call.name +
                                         " takes exactly one argument");
        }
        const SqlExpr& arg = *call.args[0];
        if (arg.kind == SqlExprKind::kColumnRef) {
          spec.input_column = arg.name;
        } else {
          // Aggregate over an expression: pre-project a temp column.
          MLCS_ASSIGN_OR_RETURN(exec::ExprPtr lowered, Lower(arg));
          MLCS_ASSIGN_OR_RETURN(ColumnPtr col, lowered->Evaluate(ctx));
          if (col->size() == 1 && work->num_rows() != 1) {
            MLCS_ASSIGN_OR_RETURN(Value v, col->GetValue(0));
            col = Column::Constant(v, work->num_rows());
          }
          std::string temp = "__agg_in_" + std::to_string(specs.size());
          MLCS_RETURN_IF_ERROR(work->AddColumn(temp, std::move(col)));
          spec.input_column = temp;
        }
      }
      plan.source_column = spec.output_name;
      specs.push_back(std::move(spec));
    } else {
      // Must be a group key column.
      if (item.expr->kind != SqlExprKind::kColumnRef) {
        return Status::InvalidArgument(
            "non-aggregate select item '" + item.expr->ToString() +
            "' must be a GROUP BY column");
      }
      bool is_key = false;
      for (const auto& key : select.group_by) {
        if (EqualsIgnoreCase(key, item.expr->name)) is_key = true;
      }
      if (!is_key) {
        return Status::InvalidArgument("column '" + item.expr->name +
                                       "' is not in GROUP BY");
      }
      plan.source_column = item.expr->name;
    }
    plans.push_back(std::move(plan));
  }

  MLCS_ASSIGN_OR_RETURN(TablePtr aggregated,
                        exec::HashGroupBy(*work, select.group_by, specs,
                                          policy_));

  // Final projection in select-list order with aliases.
  Schema schema;
  std::vector<ColumnPtr> columns;
  for (const auto& plan : plans) {
    MLCS_ASSIGN_OR_RETURN(ColumnPtr col,
                          aggregated->ColumnByName(plan.source_column));
    schema.AddField(plan.output_name, col->type());
    columns.push_back(std::move(col));
  }
  auto out = std::make_shared<Table>(std::move(schema), std::move(columns));
  MLCS_RETURN_IF_ERROR(out->Validate());
  return out;
}

Result<TablePtr> Executor::ApplyOrderByLimit(const SelectStatement& select,
                                             TablePtr table,
                                             const TablePtr& row_source) {
  if (!select.order_by.empty()) {
    // Evaluate each order expression over the output table into temp
    // columns, sort, then drop the temps.
    TablePtr augmented = std::make_shared<Table>(*table);
    exec::EvalContext ctx = MakeContext(augmented.get());
    std::vector<exec::SortKey> keys;
    size_t original_columns = table->num_columns();
    for (size_t i = 0; i < select.order_by.size(); ++i) {
      const OrderItem& item = select.order_by[i];
      // Ordinal form: ORDER BY 2.
      if (item.expr->kind == SqlExprKind::kLiteral &&
          !item.expr->literal.is_null() &&
          (item.expr->literal.type() == TypeId::kInt32 ||
           item.expr->literal.type() == TypeId::kInt64)) {
        int64_t ordinal = item.expr->literal.int64_value();
        if (ordinal < 1 ||
            ordinal > static_cast<int64_t>(original_columns)) {
          return Status::OutOfRange("ORDER BY ordinal out of range");
        }
        keys.push_back(
            {table->schema().field(static_cast<size_t>(ordinal - 1)).name,
             item.descending});
        continue;
      }
      MLCS_ASSIGN_OR_RETURN(exec::ExprPtr lowered, Lower(*item.expr));
      auto evaluated = lowered->Evaluate(ctx);
      if (!evaluated.ok() && row_source != nullptr &&
          row_source->num_rows() == table->num_rows()) {
        // Retry against the pre-projection input (same row order).
        exec::EvalContext src_ctx = MakeContext(row_source.get());
        evaluated = lowered->Evaluate(src_ctx);
      }
      if (!evaluated.ok()) return evaluated.status();
      ColumnPtr col = std::move(evaluated).ValueOrDie();
      if (col->size() == 1 && augmented->num_rows() != 1) {
        MLCS_ASSIGN_OR_RETURN(Value v, col->GetValue(0));
        col = Column::Constant(v, augmented->num_rows());
      }
      std::string temp = "__ord_" + std::to_string(i);
      MLCS_RETURN_IF_ERROR(augmented->AddColumn(temp, std::move(col)));
      keys.push_back({temp, item.descending});
    }
    MLCS_ASSIGN_OR_RETURN(TablePtr sorted,
                          exec::SortTable(*augmented, keys, policy_));
    std::vector<size_t> keep(original_columns);
    for (size_t i = 0; i < original_columns; ++i) keep[i] = i;
    table = sorted->Project(keep);
  }
  if (select.limit >= 0 &&
      static_cast<size_t>(select.limit) < table->num_rows()) {
    table = table->SliceRows(0, static_cast<size_t>(select.limit));
  }
  return table;
}

namespace {

/// Binds UDF argument columns into a VectorScript environment. Length-1
/// columns bind as scalars (so `n_estimators` reads naturally in scripts);
/// full columns bind as vectors — the MonetDB/Python convention.
vscript::Environment BindArgs(const std::vector<Field>& params,
                              const std::vector<ColumnPtr>& args) {
  vscript::Environment env;
  for (size_t i = 0; i < params.size() && i < args.size(); ++i) {
    if (args[i]->size() == 1) {
      auto v = args[i]->GetValue(0);
      env[params[i].name] = vscript::ScriptValue(
          v.ok() ? v.ValueOrDie() : Value::MakeNull(args[i]->type()));
    } else {
      env[params[i].name] = vscript::ScriptValue(args[i]);
    }
  }
  return env;
}

/// Converts a script return value into the declared table shape. Dicts map
/// by (case-insensitive) field name; a bare column/scalar fills a
/// single-column schema.
Result<TablePtr> ScriptResultToTable(const vscript::ScriptValue& result,
                                     const Schema& declared) {
  std::vector<ColumnPtr> columns(declared.num_fields());
  if (result.is_dict()) {
    const vscript::ScriptDict& dict = result.dict();
    for (size_t i = 0; i < declared.num_fields(); ++i) {
      const std::string& want = declared.field(i).name;
      const vscript::ScriptValue* found = nullptr;
      for (const auto& [key, value] : dict) {
        if (EqualsIgnoreCase(key, want)) {
          found = &value;
          break;
        }
      }
      if (found == nullptr) {
        return Status::InvalidArgument(
            "script result dict is missing declared column '" + want + "'");
      }
      MLCS_ASSIGN_OR_RETURN(columns[i], found->AsColumn());
    }
  } else if (declared.num_fields() == 1) {
    MLCS_ASSIGN_OR_RETURN(columns[0], result.AsColumn());
  } else {
    return Status::InvalidArgument(
        "script must return a dict for a multi-column table function");
  }
  // Broadcast length-1 columns to the longest column's length.
  size_t rows = 1;
  for (const auto& col : columns) rows = std::max(rows, col->size());
  Schema schema;
  std::vector<ColumnPtr> out_cols;
  for (size_t i = 0; i < columns.size(); ++i) {
    ColumnPtr col = columns[i];
    if (col->size() == 1 && rows != 1) {
      MLCS_ASSIGN_OR_RETURN(Value v, col->GetValue(0));
      col = Column::Constant(v, rows);
    } else if (col->size() != rows) {
      return Status::InvalidArgument(
          "script result columns have mismatched lengths");
    }
    if (col->type() != declared.field(i).type) {
      MLCS_ASSIGN_OR_RETURN(col, col->CastTo(declared.field(i).type));
    }
    schema.AddField(declared.field(i).name, declared.field(i).type);
    out_cols.push_back(std::move(col));
  }
  auto table = std::make_shared<Table>(std::move(schema),
                                       std::move(out_cols));
  MLCS_RETURN_IF_ERROR(table->Validate());
  return table;
}

}  // namespace

Result<TablePtr> Executor::ExecuteCreateFunction(
    const CreateFunctionStmt& stmt) {
  // LANGUAGE VSCRIPT is the native name; PYTHON is accepted as an alias so
  // the paper's Listings 1–2 run verbatim (the body dialect is
  // VectorScript — see DESIGN.md's substitution table).
  if (!EqualsIgnoreCase(stmt.language, "VSCRIPT") &&
      !EqualsIgnoreCase(stmt.language, "VECTORSCRIPT") &&
      !EqualsIgnoreCase(stmt.language, "PYTHON")) {
    return Status::NotImplemented("unsupported UDF language '" +
                                  stmt.language + "'");
  }
  // Parse once at creation time so syntax errors surface immediately.
  MLCS_ASSIGN_OR_RETURN(vscript::Program parsed, vscript::Parse(stmt.body));
  auto program =
      std::make_shared<const vscript::Program>(std::move(parsed));
  auto params = std::make_shared<const std::vector<Field>>(stmt.params);

  std::vector<TypeId> param_types;
  param_types.reserve(stmt.params.size());
  for (const auto& p : stmt.params) param_types.push_back(p.type);

  if (stmt.returns_table) {
    udf::TableUdfEntry entry;
    entry.name = stmt.name;
    entry.param_types = std::move(param_types);
    entry.typed = true;
    entry.return_schema = stmt.table_schema;
    Schema declared = stmt.table_schema;
    entry.fn = [program, params, declared](
                   const std::vector<ColumnPtr>& args) -> Result<TablePtr> {
      MLCS_ASSIGN_OR_RETURN(
          vscript::ScriptValue result,
          vscript::Execute(*program, BindArgs(*params, args)));
      return ScriptResultToTable(result, declared);
    };
    MLCS_RETURN_IF_ERROR(udfs_->RegisterTable(std::move(entry),
                                              stmt.or_replace));
  } else {
    udf::ScalarUdfEntry entry;
    entry.name = stmt.name;
    entry.param_types = std::move(param_types);
    entry.typed = true;
    entry.return_type = stmt.scalar_type;
    entry.has_return_type = true;
    entry.fn = [program, params](const std::vector<ColumnPtr>& args,
                                 size_t /*num_rows*/) -> Result<ColumnPtr> {
      MLCS_ASSIGN_OR_RETURN(
          vscript::ScriptValue result,
          vscript::Execute(*program, BindArgs(*params, args)));
      return result.AsColumn();
    };
    MLCS_RETURN_IF_ERROR(udfs_->RegisterScalar(std::move(entry),
                                               stmt.or_replace));
  }
  return StatusTable("CREATE FUNCTION " + stmt.name);
}

}  // namespace mlcs::sql
