#include "sql/executor.h"

#include <chrono>
#include <cstdio>
#include <map>
#include <unordered_map>

#include "common/string_util.h"
#include "obs/trace.h"
#include "exec/operator.h"
#include "storage/encoding.h"
#include "sql/optimizer.h"
#include "sql/plan.h"
#include "vscript/vs_interpreter.h"
#include "vscript/vs_parser.h"

namespace mlcs::sql {

TablePtr Executor::StatusTable(const std::string& message) {
  Schema s;
  s.AddField("status", TypeId::kVarchar);
  auto t = Table::Make(std::move(s));
  (void)t->AppendRow({Value::Varchar(message)});
  return t;
}

TablePtr Executor::DmlStatusTable(const std::string& verb, size_t rows) {
  Schema s;
  s.AddField("status", TypeId::kVarchar);
  s.AddField("rows", TypeId::kInt64);
  auto t = Table::Make(std::move(s));
  (void)t->AppendRow(
      {Value::Varchar(verb + " " + std::to_string(rows)),
       Value::Int64(static_cast<int64_t>(rows))});
  return t;
}

exec::EvalContext Executor::MakeContext(const Table* input) const {
  exec::EvalContext ctx;
  ctx.input = input;
  ctx.call_function = [this](const std::string& name,
                             const std::vector<ColumnPtr>& args,
                             size_t num_rows) -> Result<ColumnPtr> {
    // Decode boundary: UDF bodies (builtins and VectorScript alike) read
    // raw payload vectors and never see encoded columns.
    std::vector<ColumnPtr> plain = args;
    for (ColumnPtr& a : plain) {
      if (a->is_encoded()) a = a->Decode();
    }
    return udfs_->CallScalar(name, plain, num_rows);
  };
  return ctx;
}

Result<TablePtr> Executor::Execute(const Statement& stmt) {
  if (const auto* select = std::get_if<SelectStatement>(&stmt)) {
    return ExecuteSelect(*select);
  }
  if (const auto* create = std::get_if<CreateTableStmt>(&stmt)) {
    return ExecuteCreateTable(*create);
  }
  if (const auto* insert = std::get_if<InsertStmt>(&stmt)) {
    return ExecuteInsert(*insert);
  }
  if (const auto* drop = std::get_if<DropStmt>(&stmt)) {
    return ExecuteDrop(*drop);
  }
  if (const auto* fn = std::get_if<CreateFunctionStmt>(&stmt)) {
    return ExecuteCreateFunction(*fn);
  }
  if (const auto* del = std::get_if<DeleteStmt>(&stmt)) {
    return ExecuteDelete(*del);
  }
  if (const auto* update = std::get_if<UpdateStmt>(&stmt)) {
    return ExecuteUpdate(*update);
  }
  if (const auto* show = std::get_if<ShowStmt>(&stmt)) {
    Schema schema;
    schema.AddField("name", TypeId::kVarchar);
    auto out = Table::Make(std::move(schema));
    std::vector<std::string> names;
    if (show->what == ShowStmt::What::kTables) {
      names = catalog_->ListTables();
    } else {
      names = udfs_->ListScalar();
      for (auto& t : udfs_->ListTable()) names.push_back(t + " (table)");
    }
    for (const auto& name : names) {
      MLCS_RETURN_IF_ERROR(out->AppendRow({Value::Varchar(name)}));
    }
    return out;
  }
  if (const auto* describe = std::get_if<DescribeStmt>(&stmt)) {
    // Schema-only lookup: DESCRIBE must not materialize a stored table.
    MLCS_ASSIGN_OR_RETURN(Schema described,
                          catalog_->GetTableSchema(describe->table));
    Schema schema;
    schema.AddField("column", TypeId::kVarchar);
    schema.AddField("type", TypeId::kVarchar);
    auto out = Table::Make(std::move(schema));
    for (const auto& field : described.fields()) {
      MLCS_RETURN_IF_ERROR(
          out->AppendRow({Value::Varchar(field.name),
                          Value::Varchar(TypeIdToString(field.type))}));
    }
    return out;
  }
  if (const auto* explain =
          std::get_if<std::unique_ptr<ExplainStmt>>(&stmt)) {
    Schema schema;
    schema.AddField("plan", TypeId::kVarchar);
    auto out = Table::Make(std::move(schema));
    std::string plan;
    if ((*explain)->analyze) {
      MLCS_ASSIGN_OR_RETURN(plan, RenderAnalyzedPlan((*explain)->inner));
    } else {
      MLCS_ASSIGN_OR_RETURN(plan, RenderPlan((*explain)->inner));
    }
    for (const std::string& line : SplitString(plan, '\n')) {
      if (!line.empty()) {
        MLCS_RETURN_IF_ERROR(out->AppendRow({Value::Varchar(line)}));
      }
    }
    return out;
  }
  return Status::Internal("unknown statement kind");
}

/// -- Planning & SELECT execution ------------------------------------------

Result<PlannedSelect> Executor::PlanSelect(const SelectStatement& select) {
  obs::ScopedSpan plan_span("sql.plan");
  Planner planner(catalog_, this);
  PlannedSelect planned;
  MLCS_ASSIGN_OR_RETURN(planned.bound, planner.Bind(select));
  if (optimizer_enabled_) {
    obs::ScopedSpan optimize_span("sql.optimize");
    OptimizerContext octx;
    octx.catalog = catalog_;
    octx.eval_constant = [this](const SqlExpr& e) {
      return EvaluateConstant(e);
    };
    OptimizePlan(&planned.bound, octx);
  }
  MLCS_ASSIGN_OR_RETURN(planned.root,
                        planner.BuildPhysical(*planned.bound.root));
  return planned;
}

Result<TablePtr> Executor::ExecuteSelect(const SelectStatement& select) {
  MLCS_ASSIGN_OR_RETURN(PlannedSelect planned, PlanSelect(select));
  MLCS_ASSIGN_OR_RETURN(exec::OpResult out, planned.root->Run());
  // Decode boundary: operators execute on encoded columns, but result
  // consumers (wire protocol, pipelines, CTAS/INSERT appends) read raw
  // payload vectors.
  return DecodeTable(out.table);
}

Result<std::shared_ptr<const PreparedSelect>> Executor::Prepare(
    Statement stmt) {
  auto prepared = std::make_shared<PreparedSelect>();
  // Move the AST into its final home *before* binding: plan nodes borrow
  // pointers to the SelectStatement object itself.
  prepared->stmt = std::move(stmt);
  const auto* select = std::get_if<SelectStatement>(&prepared->stmt);
  if (select == nullptr) {
    return Status::InvalidArgument("Prepare expects a SELECT statement");
  }
  // Snapshot the version before planning so a concurrent DDL mid-plan can
  // only make the entry look older (safe: it re-plans), never newer.
  prepared->catalog_version = catalog_->schema_version();
  MLCS_ASSIGN_OR_RETURN(PlannedSelect planned, PlanSelect(*select));
  prepared->bound = std::move(planned.bound);
  prepared->root = std::move(planned.root);
  return std::shared_ptr<const PreparedSelect>(std::move(prepared));
}

Result<TablePtr> Executor::RunPrepared(const PreparedSelect& prepared) {
  MLCS_ASSIGN_OR_RETURN(exec::OpResult out, prepared.root->Run());
  return DecodeTable(out.table);
}

Result<std::string> Executor::RenderAnalyzedPlan(const Statement& stmt) {
  const auto* select = std::get_if<SelectStatement>(&stmt);
  if (select == nullptr) {
    return Status::InvalidArgument(
        "EXPLAIN ANALYZE supports only SELECT statements");
  }
  MLCS_ASSIGN_OR_RETURN(PlannedSelect planned, PlanSelect(*select));
  // Forced context: ANALYZE traces this execution even with background
  // tracing off (and shadows the session's context when it is on, so the
  // annotations read only this query's spans).
  obs::TraceContext trace("explain analyze", /*force=*/true);
  auto wall_start = std::chrono::steady_clock::now();
  MLCS_ASSIGN_OR_RETURN(exec::OpResult result, planned.root->Run());
  double total_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
  // Aggregate spans per plan node: an operator may execute more than once
  // (e.g. under a re-entrant subquery), so times and rows accumulate.
  struct NodeTotals {
    double ms = 0.0;
    uint64_t rows = 0;
    std::string note;
  };
  std::unordered_map<const void*, NodeTotals> by_node;
  for (const obs::TraceSpan& span : trace.ConsumeSpans()) {
    if (span.op_token == nullptr) continue;
    NodeTotals& n = by_node[span.op_token];
    n.ms += static_cast<double>(span.duration.count()) / 1e6;
    n.rows += span.rows_out;
    if (n.note.empty() && !span.note.empty()) n.note = span.note;
  }
  exec::NodeAnnotator annotate =
      [&by_node](const exec::PhysicalOperator& op) -> std::string {
    auto it = by_node.find(&op);
    if (it == by_node.end()) return " (not executed)";
    char buf[96];
    std::snprintf(buf, sizeof(buf), " (actual time=%.3f ms, rows=%llu)",
                  it->second.ms,
                  static_cast<unsigned long long>(it->second.rows));
    std::string out = buf;
    if (!it->second.note.empty()) out += " [" + it->second.note + "]";
    return out;
  };
  std::string text = exec::RenderOperatorTree(*planned.root, 0, annotate);
  char footer[96];
  std::snprintf(footer, sizeof(footer), "Total: %.3f ms, %llu rows",
                total_ms,
                static_cast<unsigned long long>(result.table->num_rows()));
  return text + footer + "\n";
}

Result<std::string> Executor::RenderPlan(const Statement& stmt) {
  if (const auto* select = std::get_if<SelectStatement>(&stmt)) {
    MLCS_ASSIGN_OR_RETURN(PlannedSelect planned, PlanSelect(*select));
    return exec::RenderOperatorTree(*planned.root);
  }
  if (const auto* create = std::get_if<CreateTableStmt>(&stmt)) {
    if (create->as_select != nullptr) {
      MLCS_ASSIGN_OR_RETURN(PlannedSelect planned,
                            PlanSelect(*create->as_select));
      return "CREATE TABLE " + create->name + " AS\n" +
             exec::RenderOperatorTree(*planned.root, 2);
    }
    return "CREATE TABLE " + create->name + " " +
           create->schema.ToString() + "\n";
  }
  if (const auto* insert = std::get_if<InsertStmt>(&stmt)) {
    if (insert->select != nullptr) {
      MLCS_ASSIGN_OR_RETURN(PlannedSelect planned,
                            PlanSelect(*insert->select));
      return "INSERT INTO " + insert->table + "\n" +
             exec::RenderOperatorTree(*planned.root, 2);
    }
    return "INSERT INTO " + insert->table + " (" +
           std::to_string(insert->rows.size()) + " literal rows)\n";
  }
  if (const auto* del = std::get_if<DeleteStmt>(&stmt)) {
    return "DELETE FROM " + del->table +
           (del->where != nullptr ? " WHERE " + del->where->ToString()
                                  : std::string(" (all rows)")) +
           "\n";
  }
  return std::string("(plan rendering not supported for this statement)\n");
}

/// -- DDL / DML -------------------------------------------------------------

Result<TablePtr> Executor::ExecuteCreateTable(const CreateTableStmt& stmt) {
  TablePtr table;
  if (stmt.as_select != nullptr) {
    MLCS_ASSIGN_OR_RETURN(TablePtr result, ExecuteSelect(*stmt.as_select));
    // Deep-copy the columns: results may share buffers with source tables,
    // and catalog tables must own their storage.
    std::vector<ColumnPtr> columns;
    columns.reserve(result->num_columns());
    for (size_t i = 0; i < result->num_columns(); ++i) {
      columns.push_back(std::make_shared<Column>(*result->column(i)));
    }
    table = std::make_shared<Table>(result->schema(), std::move(columns));
  } else {
    if (stmt.schema.num_fields() == 0) {
      return Status::InvalidArgument("CREATE TABLE with no columns");
    }
    table = Table::Make(stmt.schema);
  }
  MLCS_RETURN_IF_ERROR(
      catalog_->CreateTable(stmt.name, table, stmt.or_replace));
  return StatusTable("CREATE TABLE " + stmt.name);
}

Result<TablePtr> Executor::ExecuteInsert(const InsertStmt& stmt) {
  MLCS_ASSIGN_OR_RETURN(TablePtr table, catalog_->GetTable(stmt.table));
  size_t inserted = 0;
  if (stmt.select != nullptr) {
    MLCS_ASSIGN_OR_RETURN(TablePtr result, ExecuteSelect(*stmt.select));
    if (result->num_columns() != table->num_columns()) {
      return Status::TypeMismatch(
          "INSERT SELECT column count mismatch: " +
          std::to_string(result->num_columns()) + " vs " +
          std::to_string(table->num_columns()));
    }
    for (size_t c = 0; c < table->num_columns(); ++c) {
      ColumnPtr col = result->column(c);
      if (col->type() != table->schema().field(c).type) {
        MLCS_ASSIGN_OR_RETURN(col,
                              col->CastTo(table->schema().field(c).type));
      }
      MLCS_RETURN_IF_ERROR(table->column(c)->AppendColumn(*col));
    }
    inserted = result->num_rows();
  } else {
    for (const auto& row : stmt.rows) {
      std::vector<Value> values;
      values.reserve(row.size());
      for (const auto& expr : row) {
        MLCS_ASSIGN_OR_RETURN(Value v, EvaluateConstant(*expr));
        values.push_back(std::move(v));
      }
      MLCS_RETURN_IF_ERROR(table->AppendRow(values));
      ++inserted;
    }
  }
  return DmlStatusTable("INSERT", inserted);
}

Result<TablePtr> Executor::ExecuteDrop(const DropStmt& stmt) {
  if (stmt.is_function) {
    MLCS_RETURN_IF_ERROR(udfs_->Drop(stmt.name, stmt.if_exists));
    return StatusTable("DROP FUNCTION " + stmt.name);
  }
  MLCS_RETURN_IF_ERROR(catalog_->DropTable(stmt.name, stmt.if_exists));
  return StatusTable("DROP TABLE " + stmt.name);
}

Result<TablePtr> Executor::ExecuteDelete(const DeleteStmt& stmt) {
  MLCS_ASSIGN_OR_RETURN(TablePtr table, catalog_->GetTable(stmt.table));
  size_t before = table->num_rows();
  TablePtr remaining;
  if (stmt.where == nullptr) {
    remaining = Table::Make(table->schema());
  } else {
    MLCS_ASSIGN_OR_RETURN(exec::ExprPtr pred, Lower(*stmt.where));
    exec::EvalContext ctx = MakeContext(table.get());
    MLCS_ASSIGN_OR_RETURN(ColumnPtr mask, pred->Evaluate(ctx));
    if (mask->type() != TypeId::kBool) {
      return Status::TypeMismatch("DELETE predicate must be BOOLEAN");
    }
    if (mask->is_encoded()) mask = mask->Decode();  // bool_data() below
    // Keep rows where the predicate is NOT true (false or NULL stay).
    std::vector<uint32_t> keep;
    size_t n = table->num_rows();
    for (size_t r = 0; r < n; ++r) {
      size_t mi = mask->size() == 1 ? 0 : r;
      bool deleted = !mask->IsNull(mi) && mask->bool_data()[mi] != 0;
      if (!deleted) keep.push_back(static_cast<uint32_t>(r));
    }
    remaining = table->TakeRows(keep);
  }
  MLCS_RETURN_IF_ERROR(catalog_->CreateTable(stmt.table, remaining,
                                             /*or_replace=*/true));
  return DmlStatusTable("DELETE", before - remaining->num_rows());
}

Result<TablePtr> Executor::ExecuteUpdate(const UpdateStmt& stmt) {
  MLCS_ASSIGN_OR_RETURN(TablePtr table, catalog_->GetTable(stmt.table));
  size_t n = table->num_rows();
  exec::EvalContext ctx = MakeContext(table.get());

  // Row mask (true → update this row).
  std::vector<uint8_t> update_row(n, 1);
  if (stmt.where != nullptr) {
    MLCS_ASSIGN_OR_RETURN(exec::ExprPtr pred, Lower(*stmt.where));
    MLCS_ASSIGN_OR_RETURN(ColumnPtr mask, pred->Evaluate(ctx));
    if (mask->type() != TypeId::kBool) {
      return Status::TypeMismatch("UPDATE predicate must be BOOLEAN");
    }
    if (mask->is_encoded()) mask = mask->Decode();  // bool_data() below
    for (size_t r = 0; r < n; ++r) {
      size_t mi = mask->size() == 1 ? 0 : r;
      update_row[r] =
          (!mask->IsNull(mi) && mask->bool_data()[mi] != 0) ? 1 : 0;
    }
  }

  // New values per assignment, evaluated over the *old* table (standard
  // UPDATE semantics: all right-hand sides see pre-update values).
  std::map<size_t, ColumnPtr> new_values;
  for (const auto& [col_name, expr] : stmt.assignments) {
    MLCS_ASSIGN_OR_RETURN(size_t idx,
                          table->schema().RequireFieldIndex(col_name));
    if (new_values.count(idx) > 0) {
      return Status::InvalidArgument("column '" + col_name +
                                     "' assigned twice in UPDATE");
    }
    MLCS_ASSIGN_OR_RETURN(exec::ExprPtr lowered, Lower(*expr));
    MLCS_ASSIGN_OR_RETURN(ColumnPtr value, lowered->Evaluate(ctx));
    TypeId target = table->schema().field(idx).type;
    if (value->type() != target) {
      MLCS_ASSIGN_OR_RETURN(value, value->CastTo(target));
    }
    new_values[idx] = std::move(value);
  }

  // Copy-on-write: build a fresh table (shared result sets keep the old
  // column buffers).
  std::vector<ColumnPtr> columns;
  size_t updated = 0;
  for (size_t r = 0; r < n; ++r) updated += update_row[r];
  for (size_t c = 0; c < table->num_columns(); ++c) {
    auto it = new_values.find(c);
    if (it == new_values.end()) {
      columns.push_back(table->column(c));
      continue;
    }
    const ColumnPtr& fresh = it->second;
    ColumnPtr out = Column::Make(table->schema().field(c).type);
    out->Reserve(n);
    for (size_t r = 0; r < n; ++r) {
      const Column& src = update_row[r] ? *fresh : *table->column(c);
      size_t idx = (update_row[r] && fresh->size() == 1) ? 0 : r;
      if (src.IsNull(idx)) {
        out->AppendNull();
      } else {
        MLCS_ASSIGN_OR_RETURN(Value v, src.GetValue(idx));
        MLCS_RETURN_IF_ERROR(out->AppendValue(v));
      }
    }
    columns.push_back(std::move(out));
  }
  auto rebuilt =
      std::make_shared<Table>(table->schema(), std::move(columns));
  MLCS_RETURN_IF_ERROR(rebuilt->Validate());
  MLCS_RETURN_IF_ERROR(
      catalog_->CreateTable(stmt.table, rebuilt, /*or_replace=*/true));
  return DmlStatusTable("UPDATE", updated);
}

/// -- Expression lowering ----------------------------------------------------

Result<Value> Executor::EvaluateScalarSubquery(
    const SelectStatement& select) {
  MLCS_ASSIGN_OR_RETURN(TablePtr result, ExecuteSelect(select));
  if (result->num_columns() != 1 || result->num_rows() != 1) {
    return Status::InvalidArgument(
        "scalar subquery must produce exactly one row and one column, got " +
        std::to_string(result->num_rows()) + "x" +
        std::to_string(result->num_columns()));
  }
  return result->GetValue(0, 0);
}

Result<exec::ExprPtr> Executor::Lower(const SqlExpr& e) {
  switch (e.kind) {
    case SqlExprKind::kLiteral:
      return exec::ExprPtr(std::make_shared<exec::LiteralExpr>(e.literal));
    case SqlExprKind::kColumnRef:
      return exec::ExprPtr(std::make_shared<exec::ColumnRefExpr>(e.name));
    case SqlExprKind::kBinary: {
      MLCS_ASSIGN_OR_RETURN(exec::ExprPtr left, Lower(*e.left));
      MLCS_ASSIGN_OR_RETURN(exec::ExprPtr right, Lower(*e.right));
      return exec::ExprPtr(std::make_shared<exec::BinaryExpr>(
          e.bin_op, std::move(left), std::move(right)));
    }
    case SqlExprKind::kUnary: {
      MLCS_ASSIGN_OR_RETURN(exec::ExprPtr operand, Lower(*e.left));
      return exec::ExprPtr(
          std::make_shared<exec::UnaryExpr>(e.un_op, std::move(operand)));
    }
    case SqlExprKind::kCall: {
      if (IsAggregateFunctionName(e.name)) {
        return Status::InvalidArgument(
            "aggregate function " + e.name +
            " is only allowed at the top level of a SELECT list");
      }
      std::vector<exec::ExprPtr> args;
      args.reserve(e.args.size());
      for (const auto& arg : e.args) {
        MLCS_ASSIGN_OR_RETURN(exec::ExprPtr lowered, Lower(*arg));
        args.push_back(std::move(lowered));
      }
      return exec::ExprPtr(
          std::make_shared<exec::FunctionCallExpr>(e.name, std::move(args)));
    }
    case SqlExprKind::kCast: {
      MLCS_ASSIGN_OR_RETURN(exec::ExprPtr operand, Lower(*e.left));
      return exec::ExprPtr(
          std::make_shared<exec::CastExpr>(std::move(operand), e.cast_type));
    }
    case SqlExprKind::kIsNull: {
      MLCS_ASSIGN_OR_RETURN(exec::ExprPtr operand, Lower(*e.left));
      return exec::ExprPtr(std::make_shared<exec::IsNullExpr>(
          std::move(operand), e.is_not_null));
    }
    case SqlExprKind::kSubquery: {
      MLCS_ASSIGN_OR_RETURN(Value v, EvaluateScalarSubquery(*e.subquery));
      return exec::ExprPtr(std::make_shared<exec::LiteralExpr>(std::move(v)));
    }
    case SqlExprKind::kCase: {
      std::vector<std::pair<exec::ExprPtr, exec::ExprPtr>> branches;
      for (const auto& [cond, value] : e.when_clauses) {
        MLCS_ASSIGN_OR_RETURN(exec::ExprPtr c, Lower(*cond));
        MLCS_ASSIGN_OR_RETURN(exec::ExprPtr v, Lower(*value));
        branches.emplace_back(std::move(c), std::move(v));
      }
      exec::ExprPtr else_value;
      if (e.left != nullptr) {
        MLCS_ASSIGN_OR_RETURN(else_value, Lower(*e.left));
      }
      return exec::ExprPtr(std::make_shared<exec::CaseExpr>(
          std::move(branches), std::move(else_value)));
    }
    case SqlExprKind::kStar:
      return Status::InvalidArgument("'*' is only valid inside COUNT(*)");
  }
  return Status::Internal("unknown expression kind");
}

Result<Value> Executor::EvaluateConstant(const SqlExpr& e) {
  MLCS_ASSIGN_OR_RETURN(exec::ExprPtr lowered, Lower(e));
  exec::EvalContext ctx = MakeContext(nullptr);
  MLCS_ASSIGN_OR_RETURN(ColumnPtr col, lowered->Evaluate(ctx));
  if (col->size() != 1) {
    return Status::InvalidArgument("expected a scalar expression");
  }
  return col->GetValue(0);
}

/// -- SQL-defined UDFs -------------------------------------------------------

namespace {

/// Binds UDF argument columns into a VectorScript environment. Length-1
/// columns bind as scalars (so `n_estimators` reads naturally in scripts);
/// full columns bind as vectors — the MonetDB/Python convention.
vscript::Environment BindArgs(const std::vector<Field>& params,
                              const std::vector<ColumnPtr>& args) {
  vscript::Environment env;
  for (size_t i = 0; i < params.size() && i < args.size(); ++i) {
    if (args[i]->size() == 1) {
      auto v = args[i]->GetValue(0);
      env[params[i].name] = vscript::ScriptValue(
          v.ok() ? v.ValueOrDie() : Value::MakeNull(args[i]->type()));
    } else {
      env[params[i].name] = vscript::ScriptValue(args[i]);
    }
  }
  return env;
}

/// Converts a script return value into the declared table shape. Dicts map
/// by (case-insensitive) field name; a bare column/scalar fills a
/// single-column schema.
Result<TablePtr> ScriptResultToTable(const vscript::ScriptValue& result,
                                     const Schema& declared) {
  std::vector<ColumnPtr> columns(declared.num_fields());
  if (result.is_dict()) {
    const vscript::ScriptDict& dict = result.dict();
    for (size_t i = 0; i < declared.num_fields(); ++i) {
      const std::string& want = declared.field(i).name;
      const vscript::ScriptValue* found = nullptr;
      for (const auto& [key, value] : dict) {
        if (EqualsIgnoreCase(key, want)) {
          found = &value;
          break;
        }
      }
      if (found == nullptr) {
        return Status::InvalidArgument(
            "script result dict is missing declared column '" + want + "'");
      }
      MLCS_ASSIGN_OR_RETURN(columns[i], found->AsColumn());
    }
  } else if (declared.num_fields() == 1) {
    MLCS_ASSIGN_OR_RETURN(columns[0], result.AsColumn());
  } else {
    return Status::InvalidArgument(
        "script must return a dict for a multi-column table function");
  }
  // Broadcast length-1 columns to the longest column's length.
  size_t rows = 1;
  for (const auto& col : columns) rows = std::max(rows, col->size());
  Schema schema;
  std::vector<ColumnPtr> out_cols;
  for (size_t i = 0; i < columns.size(); ++i) {
    ColumnPtr col = columns[i];
    if (col->size() == 1 && rows != 1) {
      MLCS_ASSIGN_OR_RETURN(Value v, col->GetValue(0));
      col = Column::Constant(v, rows);
    } else if (col->size() != rows) {
      return Status::InvalidArgument(
          "script result columns have mismatched lengths");
    }
    if (col->type() != declared.field(i).type) {
      MLCS_ASSIGN_OR_RETURN(col, col->CastTo(declared.field(i).type));
    }
    schema.AddField(declared.field(i).name, declared.field(i).type);
    out_cols.push_back(std::move(col));
  }
  auto table = std::make_shared<Table>(std::move(schema),
                                       std::move(out_cols));
  MLCS_RETURN_IF_ERROR(table->Validate());
  return table;
}

}  // namespace

Result<TablePtr> Executor::ExecuteCreateFunction(
    const CreateFunctionStmt& stmt) {
  // LANGUAGE VSCRIPT is the native name; PYTHON is accepted as an alias so
  // the paper's Listings 1–2 run verbatim (the body dialect is
  // VectorScript — see DESIGN.md's substitution table).
  if (!EqualsIgnoreCase(stmt.language, "VSCRIPT") &&
      !EqualsIgnoreCase(stmt.language, "VECTORSCRIPT") &&
      !EqualsIgnoreCase(stmt.language, "PYTHON")) {
    return Status::NotImplemented("unsupported UDF language '" +
                                  stmt.language + "'");
  }
  // Parse once at creation time so syntax errors surface immediately.
  MLCS_ASSIGN_OR_RETURN(vscript::Program parsed, vscript::Parse(stmt.body));
  auto program =
      std::make_shared<const vscript::Program>(std::move(parsed));
  auto params = std::make_shared<const std::vector<Field>>(stmt.params);

  std::vector<TypeId> param_types;
  param_types.reserve(stmt.params.size());
  for (const auto& p : stmt.params) param_types.push_back(p.type);

  if (stmt.returns_table) {
    udf::TableUdfEntry entry;
    entry.name = stmt.name;
    entry.param_types = std::move(param_types);
    entry.typed = true;
    entry.return_schema = stmt.table_schema;
    Schema declared = stmt.table_schema;
    entry.fn = [program, params, declared](
                   const std::vector<ColumnPtr>& args) -> Result<TablePtr> {
      MLCS_ASSIGN_OR_RETURN(
          vscript::ScriptValue result,
          vscript::Execute(*program, BindArgs(*params, args)));
      return ScriptResultToTable(result, declared);
    };
    MLCS_RETURN_IF_ERROR(udfs_->RegisterTable(std::move(entry),
                                              stmt.or_replace));
  } else {
    udf::ScalarUdfEntry entry;
    entry.name = stmt.name;
    entry.param_types = std::move(param_types);
    entry.typed = true;
    entry.return_type = stmt.scalar_type;
    entry.has_return_type = true;
    entry.fn = [program, params](const std::vector<ColumnPtr>& args,
                                 size_t /*num_rows*/) -> Result<ColumnPtr> {
      MLCS_ASSIGN_OR_RETURN(
          vscript::ScriptValue result,
          vscript::Execute(*program, BindArgs(*params, args)));
      return result.AsColumn();
    };
    MLCS_RETURN_IF_ERROR(udfs_->RegisterScalar(std::move(entry),
                                               stmt.or_replace));
  }
  return StatusTable("CREATE FUNCTION " + stmt.name);
}

}  // namespace mlcs::sql
