#ifndef MLCS_SQL_PARSER_H_
#define MLCS_SQL_PARSER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"

namespace mlcs::sql {

/// Parses a single SQL statement (a trailing semicolon is allowed).
Result<Statement> ParseStatement(const std::string& sql);

/// Parses a script of semicolon-separated statements.
Result<std::vector<Statement>> ParseScript(const std::string& sql);

}  // namespace mlcs::sql

#endif  // MLCS_SQL_PARSER_H_
