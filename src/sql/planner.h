#ifndef MLCS_SQL_PLANNER_H_
#define MLCS_SQL_PLANNER_H_

#include <cstdint>
#include <memory>
#include <utility>

#include "sql/plan.h"
#include "storage/catalog.h"

namespace mlcs::sql {

class Executor;

/// A planned SELECT: the bound logical tree (owning the optimizer's
/// expression arena) plus the executable physical tree built from it. The
/// SelectStatement it was planned from must outlive it.
struct PlannedSelect {
  BoundPlan bound;
  exec::PhysicalOpPtr root;
};

/// A cached, self-contained prepared statement: owns its AST, so the plan's
/// borrowed pointers stay valid for the cache entry's lifetime. Executing a
/// prepared plan is const and thread-safe; `catalog_version` records the
/// schema version it was planned under (stale entries are re-planned).
struct PreparedSelect {
  Statement stmt;
  BoundPlan bound;
  exec::PhysicalOpPtr root;
  uint64_t catalog_version = 0;
};

/// Binder + physical builder: AST → logical plan → physical operators.
/// Binding never executes anything and "fails open" on unknown schemas
/// (missing tables, table functions): the plan still builds, optimizer
/// rules that need names skip, and the runtime produces the usual error.
class Planner {
 public:
  Planner(Catalog* catalog, Executor* exec)
      : catalog_(catalog), exec_(exec) {}

  /// AST → logical plan. The only bind-time error is a semantically
  /// invalid statement shape (e.g. HAVING without aggregates).
  Result<BoundPlan> Bind(const SelectStatement& select);

  /// Logical → physical. Builds closures over the Executor's expression
  /// path; nothing is evaluated until PhysicalOperator::Execute().
  Result<exec::PhysicalOpPtr> BuildPhysical(const LogicalNode& node) const;

 private:
  Result<LogicalNodePtr> BindSelect(const SelectStatement& select);
  Result<LogicalNodePtr> BindTableRef(const TableRef& ref);

  Catalog* catalog_;
  Executor* exec_;
};

}  // namespace mlcs::sql

#endif  // MLCS_SQL_PLANNER_H_
