#include "modelstore/model_cache.h"

#include "ml/pickle.h"
#include "obs/trace.h"

namespace mlcs::modelstore {

uint64_t ModelCache::HashBytes(const std::string& bytes) {
  // FNV-1a 64 over the pickled payload. A collision would serve the wrong
  // model; with 64-bit keys over a handful of cached models the risk is
  // negligible (and a collision still yields a *valid* model object).
  uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  h ^= bytes.size();
  return h;
}

Result<ml::ModelPtr> ModelCache::Get(const std::string& pickled_bytes) {
  uint64_t key = HashBytes(pickled_bytes);
  {
    MutexLock lock(&mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      // Move to front (most recently used).
      lru_.splice(lru_.begin(), lru_, it->second);
      hits_.Add(1);
      return it->second->model;
    }
  }
  misses_.Add(1);
  // The deserialize-on-miss cost the snapshot cache exists to amortize —
  // traced so its absence on hits is visible in mlcs_trace().
  obs::ScopedSpan load_span("model_cache.load");
  load_span.set_bytes(pickled_bytes.size());
  MLCS_ASSIGN_OR_RETURN(ml::ModelPtr model, ml::pickle::Loads(pickled_bytes));
  MutexLock lock(&mutex_);
  auto existing = index_.find(key);
  if (existing != index_.end()) return existing->second->model;  // raced
  lru_.push_front(Entry{key, model});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
  return model;
}

size_t ModelCache::size() const {
  MutexLock lock(&mutex_);
  return lru_.size();
}

void ModelCache::Clear() {
  MutexLock lock(&mutex_);
  lru_.clear();
  index_.clear();
}

ModelCache& ModelCache::Global() {
  static ModelCache* cache = new ModelCache(16);
  return *cache;
}

}  // namespace mlcs::modelstore
