#include "modelstore/ensemble.h"

#include <map>

namespace mlcs::modelstore {

namespace {
Status CheckModels(const std::vector<ml::ModelPtr>& models) {
  if (models.empty()) {
    return Status::InvalidArgument("ensemble needs at least one model");
  }
  for (const auto& m : models) {
    if (m == nullptr || !m->fitted()) {
      return Status::InvalidArgument("ensemble contains an unfitted model");
    }
  }
  return Status::OK();
}
}  // namespace

Result<std::vector<size_t>> WinningModelPerRow(
    const std::vector<ml::ModelPtr>& models, const ml::Matrix& x) {
  MLCS_RETURN_IF_ERROR(CheckModels(models));
  std::vector<std::vector<double>> confidences(models.size());
  for (size_t m = 0; m < models.size(); ++m) {
    MLCS_ASSIGN_OR_RETURN(confidences[m], models[m]->PredictConfidence(x));
  }
  std::vector<size_t> winner(x.rows(), 0);
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t m = 1; m < models.size(); ++m) {
      if (confidences[m][r] > confidences[winner[r]][r]) winner[r] = m;
    }
  }
  return winner;
}

Result<ml::Labels> PredictHighestConfidence(
    const std::vector<ml::ModelPtr>& models, const ml::Matrix& x) {
  MLCS_ASSIGN_OR_RETURN(std::vector<size_t> winner,
                        WinningModelPerRow(models, x));
  std::vector<ml::Labels> predictions(models.size());
  for (size_t m = 0; m < models.size(); ++m) {
    MLCS_ASSIGN_OR_RETURN(predictions[m], models[m]->Predict(x));
  }
  ml::Labels out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) out[r] = predictions[winner[r]][r];
  return out;
}

Result<ml::Labels> PredictMajorityVote(
    const std::vector<ml::ModelPtr>& models, const ml::Matrix& x) {
  MLCS_RETURN_IF_ERROR(CheckModels(models));
  std::vector<ml::Labels> predictions(models.size());
  for (size_t m = 0; m < models.size(); ++m) {
    MLCS_ASSIGN_OR_RETURN(predictions[m], models[m]->Predict(x));
  }
  ml::Labels out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    std::map<int32_t, int> votes;
    for (size_t m = 0; m < models.size(); ++m) {
      ++votes[predictions[m][r]];
    }
    // Highest count; ties go to the earliest model's prediction.
    int best_count = -1;
    int32_t best_label = predictions[0][r];
    for (size_t m = 0; m < models.size(); ++m) {
      int32_t label = predictions[m][r];
      if (votes[label] > best_count) {
        best_count = votes[label];
        best_label = label;
      }
    }
    out[r] = best_label;
  }
  return out;
}

}  // namespace mlcs::modelstore
