#include "modelstore/model_store.h"

#include "ml/pickle.h"

namespace mlcs::modelstore {

ModelStore::ModelStore(Database* db, std::string table_name)
    : db_(db), table_name_(std::move(table_name)) {}

Status ModelStore::Init() {
  MutexLock lock(&mutex_);
  if (db_->catalog().HasTable(table_name_)) return Status::OK();
  Schema schema;
  schema.AddField("name", TypeId::kVarchar);
  schema.AddField("algorithm", TypeId::kVarchar);
  schema.AddField("params", TypeId::kVarchar);
  schema.AddField("classifier", TypeId::kBlob);
  schema.AddField("accuracy", TypeId::kDouble);
  schema.AddField("trained_rows", TypeId::kInt64);
  return db_->catalog().CreateTable(table_name_,
                                    Table::Make(std::move(schema)));
}

Result<TablePtr> ModelStore::Table() const {
  return db_->catalog().GetTable(table_name_);
}

Result<size_t> ModelStore::RowOf(const std::string& name) const {
  MLCS_ASSIGN_OR_RETURN(TablePtr table, Table());
  MLCS_ASSIGN_OR_RETURN(ColumnPtr names, table->ColumnByName("name"));
  for (size_t r = 0; r < names->size(); ++r) {
    if (!names->IsNull(r) && names->str_data()[r] == name) return r;
  }
  return Status::NotFound("model '" + name + "' is not stored");
}

Status ModelStore::SaveModel(const std::string& name, const ml::Model& model,
                             double accuracy, int64_t trained_rows) {
  if (!model.fitted()) {
    return Status::InvalidArgument("refusing to store an unfitted model");
  }
  MutexLock lock(&mutex_);
  // Replace semantics: drop any previous entry with this name.
  Status deleted = DeleteModelLocked(name);
  if (!deleted.ok() && deleted.code() != StatusCode::kNotFound) {
    return deleted;
  }
  MLCS_ASSIGN_OR_RETURN(TablePtr table, Table());
  return table->AppendRow(
      {Value::Varchar(name),
       Value::Varchar(ml::ModelTypeToString(model.type())),
       Value::Varchar(model.ParamsString()),
       Value::Blob(ml::pickle::Dumps(model)), Value::Double(accuracy),
       Value::Int64(trained_rows)});
}

Result<ml::ModelPtr> ModelStore::LoadModel(const std::string& name) const {
  MLCS_ASSIGN_OR_RETURN(std::string blob, LoadModelBlob(name));
  return ml::pickle::Loads(blob);
}

Result<std::string> ModelStore::LoadModelBlob(
    const std::string& name) const {
  MutexLock lock(&mutex_);
  MLCS_ASSIGN_OR_RETURN(size_t row, RowOf(name));
  MLCS_ASSIGN_OR_RETURN(TablePtr table, Table());
  MLCS_ASSIGN_OR_RETURN(ColumnPtr blobs, table->ColumnByName("classifier"));
  return blobs->str_data()[row];
}

Result<ModelInfo> ModelStore::GetInfo(const std::string& name) const {
  MutexLock lock(&mutex_);
  return GetInfoLocked(name);
}

Result<ModelInfo> ModelStore::GetInfoLocked(const std::string& name) const {
  MLCS_ASSIGN_OR_RETURN(size_t row, RowOf(name));
  MLCS_ASSIGN_OR_RETURN(TablePtr table, Table());
  ModelInfo info;
  MLCS_ASSIGN_OR_RETURN(Value n, table->GetValue(row, 0));
  info.name = n.string_value();
  MLCS_ASSIGN_OR_RETURN(Value a, table->GetValue(row, 1));
  info.algorithm = a.string_value();
  MLCS_ASSIGN_OR_RETURN(Value p, table->GetValue(row, 2));
  info.params = p.string_value();
  MLCS_ASSIGN_OR_RETURN(Value acc, table->GetValue(row, 4));
  info.accuracy = acc.double_value();
  MLCS_ASSIGN_OR_RETURN(Value tr, table->GetValue(row, 5));
  info.trained_rows = tr.int64_value();
  return info;
}

Result<std::vector<ModelInfo>> ModelStore::ListModels() const {
  MutexLock lock(&mutex_);
  return ListModelsLocked();
}

Result<std::vector<ModelInfo>> ModelStore::ListModelsLocked() const {
  MLCS_ASSIGN_OR_RETURN(TablePtr table, Table());
  std::vector<ModelInfo> out;
  MLCS_ASSIGN_OR_RETURN(ColumnPtr names, table->ColumnByName("name"));
  for (size_t r = 0; r < table->num_rows(); ++r) {
    MLCS_ASSIGN_OR_RETURN(ModelInfo info,
                          GetInfoLocked(names->str_data()[r]));
    out.push_back(std::move(info));
  }
  return out;
}

Result<std::string> ModelStore::BestModelName() const {
  MutexLock lock(&mutex_);
  MLCS_ASSIGN_OR_RETURN(std::vector<ModelInfo> models, ListModelsLocked());
  if (models.empty()) return Status::NotFound("no models stored");
  size_t best = 0;
  for (size_t i = 1; i < models.size(); ++i) {
    if (models[i].accuracy > models[best].accuracy) best = i;
  }
  return models[best].name;
}

Status ModelStore::DeleteModel(const std::string& name) {
  MutexLock lock(&mutex_);
  return DeleteModelLocked(name);
}

Status ModelStore::DeleteModelLocked(const std::string& name) {
  auto row = RowOf(name);
  if (!row.ok()) return row.status();
  MLCS_ASSIGN_OR_RETURN(TablePtr table, Table());
  // Rebuild the table without the row (no DELETE support needed in SQL).
  std::vector<uint32_t> keep;
  for (size_t r = 0; r < table->num_rows(); ++r) {
    if (r != row.ValueOrDie()) keep.push_back(static_cast<uint32_t>(r));
  }
  TablePtr rebuilt = table->TakeRows(keep);
  return db_->catalog().CreateTable(table_name_, rebuilt,
                                    /*or_replace=*/true);
}

}  // namespace mlcs::modelstore
