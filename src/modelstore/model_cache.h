#ifndef MLCS_MODELSTORE_MODEL_CACHE_H_
#define MLCS_MODELSTORE_MODEL_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/result.h"
#include "ml/model.h"
#include "obs/metrics.h"

namespace mlcs::modelstore {

/// The paper's §5.1 future-work item, implemented: "directly store
/// snapshots of the in-memory representation of the models to avoid this
/// (de)serialization overhead".
///
/// An LRU cache keyed by a hash of the pickled BLOB: the first Get
/// deserializes and snapshots the model; subsequent predict calls with the
/// same BLOB reuse the in-memory object. Content addressing keeps the
/// cache correct under model replacement (a retrained model has different
/// bytes, hence a different key). Thread-safe.
class ModelCache {
 public:
  explicit ModelCache(size_t capacity = 16) : capacity_(capacity) {}

  ModelCache(const ModelCache&) = delete;
  ModelCache& operator=(const ModelCache&) = delete;

  /// Returns the cached model for these bytes, deserializing on miss.
  Result<ml::ModelPtr> Get(const std::string& pickled_bytes);

  size_t size() const;
  uint64_t hits() const { return hits_.Value(); }
  uint64_t misses() const { return misses_.Value(); }
  void Clear();

  /// Process-wide cache used by the `_cached` predict UDFs.
  static ModelCache& Global();

 private:
  static uint64_t HashBytes(const std::string& bytes);

  struct Entry {
    uint64_t key;
    ml::ModelPtr model;
  };

  const size_t capacity_;
  mutable Mutex mutex_{"ModelCache::mutex_"};
  std::list<Entry> lru_ MLCS_GUARDED_BY(mutex_);  // front = most recent
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_
      MLCS_GUARDED_BY(mutex_);
  /// Per-cache counts mirrored into the process-wide
  /// `mlcs.model_cache.hits` / `.misses` registry series.
  obs::MirroredCounter hits_{"mlcs.model_cache.hits"};
  obs::MirroredCounter misses_{"mlcs.model_cache.misses"};
};

}  // namespace mlcs::modelstore

#endif  // MLCS_MODELSTORE_MODEL_CACHE_H_
