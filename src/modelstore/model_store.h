#ifndef MLCS_MODELSTORE_MODEL_STORE_H_
#define MLCS_MODELSTORE_MODEL_STORE_H_

#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "ml/model.h"
#include "sql/database.h"

namespace mlcs::modelstore {

/// Metadata row describing a stored model (paper §3.3: hyperparameters and
/// quality metrics persist next to the serialized model, queryable by SQL).
struct ModelInfo {
  std::string name;
  std::string algorithm;   // ml::ModelTypeToString
  std::string params;      // model.ParamsString()
  double accuracy = 0;     // quality metric recorded at save time
  int64_t trained_rows = 0;
};

/// Persists models into a relational catalog table (`name` BLOB + metadata)
/// inside a Database, and loads them back. This is the in-database
/// ModelDB-style management layer the paper contrasts with external model
/// stores: because models live in ordinary tables, plain SQL performs the
/// meta-analysis (best model, per-algorithm comparison, ...).
///
/// Thread-safe: every operation is a composite of catalog reads/writes
/// (find row, rebuild table, append), serialized by an internal mutex so
/// the serving path can LoadModelBlob concurrently with live retraining
/// (SaveModel) on another thread.
class ModelStore {
 public:
  /// Creates (if needed) the backing table `table_name`.
  explicit ModelStore(Database* db, std::string table_name = "models");

  Status Init();

  /// Saves a fitted model under `name` (replaces an existing entry).
  Status SaveModel(const std::string& name, const ml::Model& model,
                   double accuracy, int64_t trained_rows);

  /// Loads and unpickles the model stored under `name`.
  Result<ml::ModelPtr> LoadModel(const std::string& name) const;

  /// Loads the serialized (pickled) bytes without unpickling — the serving
  /// path feeds these to the content-addressed ModelCache, which only
  /// unpickles on a hash miss.
  Result<std::string> LoadModelBlob(const std::string& name) const;

  Result<ModelInfo> GetInfo(const std::string& name) const;
  Result<std::vector<ModelInfo>> ListModels() const;

  /// Name of the stored model with the highest recorded accuracy.
  Result<std::string> BestModelName() const;

  Status DeleteModel(const std::string& name);

  const std::string& table_name() const { return table_name_; }

 private:
  // Unlocked implementations; public wrappers take `mutex_` exactly once,
  // so composite call chains (SaveModel -> DeleteModel -> RowOf, ...)
  // never re-enter the lock. `mutex_` guards the composite catalog
  // read-modify-write sequences, not any member of this class.
  Status DeleteModelLocked(const std::string& name) MLCS_REQUIRES(mutex_);
  Result<ModelInfo> GetInfoLocked(const std::string& name) const
      MLCS_REQUIRES(mutex_);
  Result<std::vector<ModelInfo>> ListModelsLocked() const
      MLCS_REQUIRES(mutex_);
  Result<TablePtr> Table() const MLCS_REQUIRES(mutex_);
  Result<size_t> RowOf(const std::string& name) const MLCS_REQUIRES(mutex_);

  Database* const db_;
  const std::string table_name_;
  mutable Mutex mutex_{"ModelStore::mutex_"};
};

}  // namespace mlcs::modelstore

#endif  // MLCS_MODELSTORE_MODEL_STORE_H_
