#ifndef MLCS_MODELSTORE_ENSEMBLE_H_
#define MLCS_MODELSTORE_ENSEMBLE_H_

#include <vector>

#include "common/result.h"
#include "ml/model.h"

namespace mlcs::modelstore {

/// Ensemble strategies from the paper's §3.3: "classify the same data
/// using multiple models and use the result of the model that reports the
/// highest confidence", plus plain majority voting for comparison.

/// Per-row label from the model whose PredictConfidence is highest.
Result<ml::Labels> PredictHighestConfidence(
    const std::vector<ml::ModelPtr>& models, const ml::Matrix& x);

/// Per-row majority vote across models (ties broken by the earliest
/// model in the list).
Result<ml::Labels> PredictMajorityVote(
    const std::vector<ml::ModelPtr>& models, const ml::Matrix& x);

/// Which model index won each row under the highest-confidence rule —
/// useful for meta-analysis ("which specialist handles which region?").
Result<std::vector<size_t>> WinningModelPerRow(
    const std::vector<ml::ModelPtr>& models, const ml::Matrix& x);

}  // namespace mlcs::modelstore

#endif  // MLCS_MODELSTORE_ENSEMBLE_H_
