#include "serve/serve_protocol.h"

#include "client/net_util.h"

namespace mlcs::serve {

namespace {
constexpr uint8_t kRequestKind = 'P';
constexpr uint8_t kResponseKind = 'R';
constexpr uint8_t kMetricsRequestKind = 'm';
constexpr uint8_t kTraceRequestKind = 't';
constexpr uint8_t kExportResponseKind = 'E';
}  // namespace

const char* LayoutToString(Layout layout) {
  switch (layout) {
    case Layout::kRowMajor:
      return "row-major";
    case Layout::kColumnar:
      return "columnar";
  }
  return "?";
}

const char* ServeCodeToString(ServeCode code) {
  switch (code) {
    case ServeCode::kOk:
      return "ok";
    case ServeCode::kBadRequest:
      return "bad-request";
    case ServeCode::kModelNotFound:
      return "model-not-found";
    case ServeCode::kOverloaded:
      return "overloaded";
    case ServeCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case ServeCode::kShuttingDown:
      return "shutting-down";
    case ServeCode::kInternalError:
      return "internal-error";
  }
  return "?";
}

Status ServeCodeToStatus(ServeCode code, const std::string& message) {
  std::string text =
      std::string(ServeCodeToString(code)) + ": " + message;
  switch (code) {
    case ServeCode::kOk:
      return Status::OK();
    case ServeCode::kBadRequest:
      return Status::InvalidArgument(std::move(text));
    case ServeCode::kModelNotFound:
      return Status::NotFound(std::move(text));
    case ServeCode::kOverloaded:
    case ServeCode::kDeadlineExceeded:
    case ServeCode::kShuttingDown:
      return Status::NetworkError(std::move(text));
    case ServeCode::kInternalError:
      return Status::Internal(std::move(text));
  }
  return Status::Internal(std::move(text));
}

void EncodePredictRequest(const PredictRequest& request, Layout layout,
                          ByteWriter* out) {
  out->WriteU8(kRequestKind);
  out->WriteU64(request.request_id);
  out->WriteU32(request.deadline_ms);
  out->WriteString(request.model_name);
  out->WriteU8(static_cast<uint8_t>(layout));
  const ml::Matrix& x = request.features;
  out->WriteU32(static_cast<uint32_t>(x.rows()));
  out->WriteU16(static_cast<uint16_t>(x.cols()));
  if (layout == Layout::kColumnar) {
    for (size_t c = 0; c < x.cols(); ++c) {
      out->WriteRaw(x.column(c).data(), x.rows() * sizeof(double));
    }
  } else {
    for (size_t r = 0; r < x.rows(); ++r) {
      for (size_t c = 0; c < x.cols(); ++c) {
        out->WriteDouble(x.At(r, c));
      }
    }
  }
}

Result<PredictRequest> DecodePredictRequest(ByteReader* in) {
  MLCS_ASSIGN_OR_RETURN(uint8_t kind, in->ReadU8());
  if (kind != kRequestKind) {
    return Status::ParseError("unknown request kind byte " +
                              std::to_string(kind));
  }
  PredictRequest request;
  MLCS_ASSIGN_OR_RETURN(request.request_id, in->ReadU64());
  MLCS_ASSIGN_OR_RETURN(request.deadline_ms, in->ReadU32());
  MLCS_ASSIGN_OR_RETURN(request.model_name, in->ReadString());
  MLCS_ASSIGN_OR_RETURN(uint8_t layout_byte, in->ReadU8());
  if (layout_byte > static_cast<uint8_t>(Layout::kColumnar)) {
    return Status::ParseError("unknown layout byte " +
                              std::to_string(layout_byte));
  }
  Layout layout = static_cast<Layout>(layout_byte);
  MLCS_ASSIGN_OR_RETURN(uint32_t num_rows, in->ReadU32());
  MLCS_ASSIGN_OR_RETURN(uint16_t num_features, in->ReadU16());
  if (num_rows > kMaxRequestRows) {
    return Status::InvalidArgument("request declares " +
                                   std::to_string(num_rows) +
                                   " rows, above the per-request cap");
  }
  if (num_features > kMaxRequestFeatures) {
    return Status::InvalidArgument("request declares " +
                                   std::to_string(num_features) +
                                   " features, above the per-request cap");
  }
  // The declared payload must actually be present before any allocation.
  size_t payload = static_cast<size_t>(num_rows) * num_features *
                   sizeof(double);
  if (in->remaining() < payload) {
    return Status::OutOfRange("truncated feature payload: need " +
                              std::to_string(payload) + " bytes, have " +
                              std::to_string(in->remaining()));
  }
  request.features = ml::Matrix(num_rows, num_features);
  if (layout == Layout::kColumnar) {
    // Straight per-column copy — the wire layout IS the matrix layout.
    for (size_t c = 0; c < num_features; ++c) {
      MLCS_RETURN_IF_ERROR(in->ReadRaw(request.features.column(c).data(),
                                       num_rows * sizeof(double)));
    }
  } else {
    // Row-major wire form: transpose cell by cell.
    for (size_t r = 0; r < num_rows; ++r) {
      for (size_t c = 0; c < num_features; ++c) {
        MLCS_ASSIGN_OR_RETURN(double v, in->ReadDouble());
        request.features.Set(r, c, v);
      }
    }
  }
  return request;
}

uint64_t PeekRequestId(const uint8_t* body, size_t size) {
  if (size < 1 + sizeof(uint64_t) || body[0] != kRequestKind) return 0;
  uint64_t id = 0;
  std::memcpy(&id, body + 1, sizeof(id));
  return id;
}

void EncodePredictResponse(const PredictResponse& response, ByteWriter* out) {
  out->WriteU8(kResponseKind);
  out->WriteU64(response.request_id);
  out->WriteU8(static_cast<uint8_t>(response.code));
  if (response.code == ServeCode::kOk) {
    out->WriteU32(static_cast<uint32_t>(response.labels.size()));
    out->WriteRaw(response.labels.data(),
                  response.labels.size() * sizeof(int32_t));
  } else {
    out->WriteString(response.message);
  }
}

Result<PredictResponse> DecodePredictResponse(ByteReader* in) {
  MLCS_ASSIGN_OR_RETURN(uint8_t kind, in->ReadU8());
  if (kind != kResponseKind) {
    return Status::ParseError("unknown response kind byte " +
                              std::to_string(kind));
  }
  PredictResponse response;
  MLCS_ASSIGN_OR_RETURN(response.request_id, in->ReadU64());
  MLCS_ASSIGN_OR_RETURN(uint8_t code_byte, in->ReadU8());
  if (code_byte > static_cast<uint8_t>(ServeCode::kInternalError)) {
    return Status::ParseError("unknown response code byte " +
                              std::to_string(code_byte));
  }
  response.code = static_cast<ServeCode>(code_byte);
  if (response.code == ServeCode::kOk) {
    MLCS_ASSIGN_OR_RETURN(uint32_t count, in->ReadU32());
    if (count > kMaxRequestRows) {
      return Status::ParseError("response declares an absurd label count");
    }
    if (in->remaining() < count * sizeof(int32_t)) {
      return Status::OutOfRange("truncated label payload");
    }
    response.labels.resize(count);
    MLCS_RETURN_IF_ERROR(
        in->ReadRaw(response.labels.data(), count * sizeof(int32_t)));
  } else {
    MLCS_ASSIGN_OR_RETURN(response.message, in->ReadString());
  }
  return response;
}

bool IsExportRequest(const uint8_t* body, size_t size) {
  return size >= 1 && (body[0] == kMetricsRequestKind ||
                       body[0] == kTraceRequestKind);
}

void EncodeMetricsRequest(ByteWriter* out) {
  out->WriteU8(kMetricsRequestKind);
}

void EncodeTraceExportRequest(uint64_t trace_id, ByteWriter* out) {
  out->WriteU8(kTraceRequestKind);
  out->WriteU64(trace_id);
}

Result<ExportRequest> DecodeExportRequest(ByteReader* in) {
  ExportRequest request;
  MLCS_ASSIGN_OR_RETURN(request.kind, in->ReadU8());
  if (request.kind == kTraceRequestKind) {
    MLCS_ASSIGN_OR_RETURN(request.trace_id, in->ReadU64());
  } else if (request.kind != kMetricsRequestKind) {
    return Status::ParseError("unknown export request kind byte " +
                              std::to_string(request.kind));
  }
  return request;
}

void EncodeExportResponse(bool ok, const std::string& text,
                          ByteWriter* out) {
  out->WriteU8(kExportResponseKind);
  out->WriteU8(ok ? 1 : 0);
  out->WriteString(text);
}

Result<std::string> DecodeExportResponse(ByteReader* in) {
  MLCS_ASSIGN_OR_RETURN(uint8_t kind, in->ReadU8());
  if (kind != kExportResponseKind) {
    return Status::ParseError("unknown export response kind byte " +
                              std::to_string(kind));
  }
  MLCS_ASSIGN_OR_RETURN(uint8_t ok, in->ReadU8());
  MLCS_ASSIGN_OR_RETURN(std::string text, in->ReadString());
  if (ok == 0) return Status::Internal("export failed: " + text);
  return text;
}

Status WriteFrame(int fd, const ByteWriter& body) {
  // One contiguous buffer (length prefix + body) so the frame leaves in a
  // single send — with TCP_NODELAY two writes would mean two packets.
  ByteWriter frame;
  frame.WriteU32(static_cast<uint32_t>(body.size()));
  frame.WriteRaw(body.data().data(), body.size());
  if (!client::net::WriteAll(fd, frame.data().data(), frame.size())) {
    return Status::NetworkError("failed to write frame");
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadFrame(int fd) {
  uint32_t len = 0;
  if (!client::net::ReadExact(fd, &len, sizeof(len))) {
    return Status::NetworkError("connection closed while reading frame");
  }
  if (len > kMaxFrameBytes) {
    return Status::InvalidArgument("frame of " + std::to_string(len) +
                                   " bytes exceeds the frame cap");
  }
  std::vector<uint8_t> body(len);
  if (!client::net::ReadExact(fd, body.data(), body.size())) {
    return Status::NetworkError("connection closed mid-frame");
  }
  return body;
}

}  // namespace mlcs::serve
