#ifndef MLCS_SERVE_BOUNDED_QUEUE_H_
#define MLCS_SERVE_BOUNDED_QUEUE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "common/mutex.h"
#include "obs/wait_stats.h"

namespace mlcs::serve {

/// Bounded multi-producer/multi-consumer queue — the admission-control
/// primitive of the serving path. Producers never block: TryPush either
/// accepts the item or reports the queue full/closed, so the caller can
/// answer `overloaded` instead of queueing without bound. Consumers drain
/// remaining items after Close() (drain-then-stop shutdown).
///
/// Consumer blocked-time is attributed to `mlcs.wait.queue.<site>` (the
/// `wait_site` constructor label, DESIGN.md §15): only waits that
/// actually parked on the condvar are recorded, so an always-stocked
/// queue costs nothing extra.
template <typename T>
class BoundedQueue {
 public:
  /// `wait_site` must outlive the queue (string literals).
  explicit BoundedQueue(size_t capacity,
                        const char* wait_site = "BoundedQueue")
      : capacity_(capacity), wait_site_name_(wait_site) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking enqueue; false when the queue is full or closed.
  [[nodiscard]] bool TryPush(T item) {
    {
      MutexLock lock(&mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.NotifyOne();
    return true;
  }

  /// Blocks until an item is available or the queue is closed *and*
  /// drained; nullopt only in the latter case.
  std::optional<T> PopWait() {
    MutexLock lock(&mutex_);
    if (!closed_ && items_.empty()) {
      auto start = std::chrono::steady_clock::now();
      while (!closed_ && items_.empty()) cv_.Wait(lock);
      RecordBlocked(start);
    }
    return PopLocked();
  }

  /// Like PopWait but gives up at `deadline` (nullopt on timeout too) —
  /// the micro-batcher's linger wait.
  std::optional<T> PopUntil(std::chrono::steady_clock::time_point deadline) {
    MutexLock lock(&mutex_);
    if (!closed_ && items_.empty()) {
      auto start = std::chrono::steady_clock::now();
      while (!closed_ && items_.empty()) {
        if (!cv_.WaitUntil(lock, deadline)) break;  // deadline passed
      }
      RecordBlocked(start);
    }
    return PopLocked();
  }

  /// Rejects all future pushes and wakes every waiter. Already-queued
  /// items remain poppable so consumers can drain.
  void Close() {
    {
      MutexLock lock(&mutex_);
      closed_ = true;
    }
    cv_.NotifyAll();
  }

  [[nodiscard]] bool closed() const {
    MutexLock lock(&mutex_);
    return closed_;
  }

  size_t size() const {
    MutexLock lock(&mutex_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  std::optional<T> PopLocked() MLCS_REQUIRES(mutex_) {
    if (items_.empty()) return std::nullopt;
    std::optional<T> out(std::move(items_.front()));
    items_.pop_front();
    return out;
  }

  void RecordBlocked(std::chrono::steady_clock::time_point start) {
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count();
    obs::WaitSite* site = wait_site_.load(std::memory_order_acquire);
    if (site == nullptr) {
      site = obs::WaitStats::Global().GetSite(obs::WaitKind::kQueue,
                                              wait_site_name_);
      wait_site_.store(site, std::memory_order_release);
    }
    site->RecordWaitNs(static_cast<uint64_t>(ns));
  }

  const size_t capacity_;
  const char* wait_site_name_;
  std::atomic<obs::WaitSite*> wait_site_{nullptr};
  mutable Mutex mutex_{"BoundedQueue::mutex_"};
  CondVar cv_;
  std::deque<T> items_ MLCS_GUARDED_BY(mutex_);
  bool closed_ MLCS_GUARDED_BY(mutex_) = false;
};

}  // namespace mlcs::serve

#endif  // MLCS_SERVE_BOUNDED_QUEUE_H_
