#ifndef MLCS_SERVE_BOUNDED_QUEUE_H_
#define MLCS_SERVE_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace mlcs::serve {

/// Bounded multi-producer/multi-consumer queue — the admission-control
/// primitive of the serving path. Producers never block: TryPush either
/// accepts the item or reports the queue full/closed, so the caller can
/// answer `overloaded` instead of queueing without bound. Consumers drain
/// remaining items after Close() (drain-then-stop shutdown).
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking enqueue; false when the queue is full or closed.
  [[nodiscard]] bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed *and*
  /// drained; nullopt only in the latter case.
  std::optional<T> PopWait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    return PopLocked();
  }

  /// Like PopWait but gives up at `deadline` (nullopt on timeout too) —
  /// the micro-batcher's linger wait.
  std::optional<T> PopUntil(std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_until(lock, deadline,
                   [this] { return closed_ || !items_.empty(); });
    return PopLocked();
  }

  /// Rejects all future pushes and wakes every waiter. Already-queued
  /// items remain poppable so consumers can drain.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  std::optional<T> PopLocked() {
    if (items_.empty()) return std::nullopt;
    std::optional<T> out(std::move(items_.front()));
    items_.pop_front();
    return out;
  }

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace mlcs::serve

#endif  // MLCS_SERVE_BOUNDED_QUEUE_H_
