#include "serve/inference_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <unordered_map>

#include "common/logging.h"
#include "obs/export.h"

namespace mlcs::serve {

namespace {

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

InferenceServer::Conn::~Conn() { ::close(fd); }

InferenceServer::InferenceServer(Database* db, modelstore::ModelStore* store,
                                 InferenceServerOptions options)
    : db_(db),
      store_(store),
      options_(std::move(options)),
      pool_(options_.pool != nullptr ? options_.pool : &ThreadPool::Global()),
      cache_(options_.model_cache != nullptr
                 ? options_.model_cache
                 : &modelstore::ModelCache::Global()) {
  (void)db_;  // reserved for serving-side SQL (health/metadata queries)
}

InferenceServer::~InferenceServer() { Stop(); }

Status InferenceServer::Start(uint16_t port) {
  if (running_.load()) return Status::InvalidArgument("already running");
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::NetworkError("socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::NetworkError("bind() failed: " +
                                std::string(std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return Status::NetworkError("getsockname() failed");
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return Status::NetworkError("listen() failed");
  }
  if (::pipe(wake_pipe_) != 0) {
    ::close(fd);
    return Status::NetworkError("pipe() failed");
  }
  SetNonBlocking(fd);
  SetNonBlocking(wake_pipe_[0]);
  SetNonBlocking(wake_pipe_[1]);
  port_ = ntohs(addr.sin_port);
  listen_fd_.store(fd);
  queue_ = std::make_unique<BoundedQueue<Pending>>(
      options_.max_queue_requests, "serve.admission");
  draining_.store(false);
  io_stop_.store(false);
  running_.store(true);
  // Dedicated long-lived loops, not units of work — they must not occupy
  // (or deadlock behind) the shared pool's workers.
  io_thread_ = std::thread([this] { IoLoop(); });      // lint:allow(naked-thread)
  batch_thread_ = std::thread([this] { BatchLoop(); });  // lint:allow(naked-thread)
  return Status::OK();
}

void InferenceServer::Stop() {
  if (!running_.exchange(false)) return;
  // Phase 1: refuse new work. New connections stop at the closed listen
  // socket; frames that still arrive on live connections are answered
  // with kShuttingDown by the I/O thread.
  draining_.store(true);
  int lfd = listen_fd_.exchange(-1);
  if (lfd >= 0) ::close(lfd);
  // Phase 2: drain. Closing the queue lets the batcher pop every admitted
  // request, answer it, and exit — no accepted request goes unanswered.
  queue_->Close();
  if (batch_thread_.joinable()) batch_thread_.join();
  // Phase 3: stop. All responses are on the wire; now the I/O thread can
  // go, taking every connection (and its fd) with it.
  io_stop_.store(true);
  if (wake_pipe_[1] >= 0) {
    uint8_t byte = 1;
    ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
    (void)ignored;
  }
  if (io_thread_.joinable()) io_thread_.join();
  for (int i = 0; i < 2; ++i) {
    if (wake_pipe_[i] >= 0) ::close(wake_pipe_[i]);
    wake_pipe_[i] = -1;
  }
}

InferenceServerStats InferenceServer::stats() const {
  InferenceServerStats out;
  out.requests_accepted = stats_.requests_accepted.Value();
  out.responses_ok = stats_.responses_ok.Value();
  out.rejected_overload = stats_.rejected_overload.Value();
  out.rejected_bad_request = stats_.rejected_bad_request.Value();
  out.rejected_shutdown = stats_.rejected_shutdown.Value();
  out.expired_deadline = stats_.expired_deadline.Value();
  out.failed_internal = stats_.failed_internal.Value();
  out.batches_executed = stats_.batches_executed.Value();
  out.batched_requests = stats_.batched_requests.Value();
  out.batched_rows = stats_.batched_rows.Value();
  out.peak_queue_depth = stats_.peak_queue_depth.Value();
  out.peak_batch_requests = stats_.peak_batch_requests.Value();
  return out;
}

void InferenceServer::IoLoop() {
  std::unordered_map<int, ConnPtr> conns;
  std::vector<pollfd> pfds;
  while (!io_stop_.load()) {
    pfds.clear();
    pfds.push_back({wake_pipe_[0], POLLIN, 0});
    int lfd = listen_fd_.load();
    if (lfd >= 0) pfds.push_back({lfd, POLLIN, 0});
    for (const auto& [fd, conn] : conns) {
      pfds.push_back({fd, POLLIN, 0});
    }
    int n = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 200);
    if (n < 0) {
      if (errno == EINTR) continue;
      MLCS_LOG(kWarn) << "poll() failed: " << std::strerror(errno);
      break;
    }
    for (const pollfd& p : pfds) {
      if (p.revents == 0) continue;
      if (p.fd == wake_pipe_[0]) {
        uint8_t drain[64];
        while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (lfd >= 0 && p.fd == lfd) {
        while (true) {
          int cfd = ::accept(lfd, nullptr, nullptr);
          // EAGAIN when the backlog is drained; EBADF if Stop() closed the
          // socket under us — both end the accept burst harmlessly.
          if (cfd < 0) break;
          int one = 1;
          ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          conns.emplace(cfd, std::make_shared<Conn>(cfd));
        }
        continue;
      }
      auto it = conns.find(p.fd);
      if (it == conns.end()) continue;
      if (!ReadAndDispatch(it->second)) conns.erase(it);
    }
  }
  // Dropping the map releases the I/O thread's references; each fd closes
  // once any in-flight response holding the Conn finishes.
  conns.clear();
}

bool InferenceServer::ReadAndDispatch(const ConnPtr& conn) {
  bool peer_gone = false;
  while (true) {
    uint8_t buf[16384];
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      conn->inbuf.insert(conn->inbuf.end(), buf, buf + n);
      continue;
    }
    if (n == 0) {
      peer_gone = true;  // orderly shutdown; flush what we have
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    peer_gone = true;
    break;
  }
  if (!ProcessBufferedFrames(conn)) return false;
  return !peer_gone;
}

bool InferenceServer::ProcessBufferedFrames(const ConnPtr& conn) {
  std::vector<uint8_t>& buf = conn->inbuf;
  size_t consumed = 0;
  while (buf.size() - consumed >= sizeof(uint32_t)) {
    uint32_t frame_len = 0;
    std::memcpy(&frame_len, buf.data() + consumed, sizeof(frame_len));
    if (frame_len > kMaxFrameBytes) {
      stats_.rejected_bad_request.Add(1);
      RespondError(conn, 0, ServeCode::kBadRequest,
                   "frame of " + std::to_string(frame_len) +
                       " bytes exceeds the frame cap");
      return false;  // cannot resynchronize a corrupt stream
    }
    if (buf.size() - consumed < sizeof(uint32_t) + frame_len) break;
    HandleFrame(conn, buf.data() + consumed + sizeof(uint32_t), frame_len);
    consumed += sizeof(uint32_t) + frame_len;
  }
  if (consumed > 0) {
    buf.erase(buf.begin(),
              buf.begin() + static_cast<std::ptrdiff_t>(consumed));
  }
  return true;
}

void InferenceServer::HandleFrame(const ConnPtr& conn, const uint8_t* body,
                                  size_t size) {
  if (IsExportRequest(body, size)) {
    HandleExportFrame(conn, body, size);
    return;
  }
  ByteReader reader(body, size);
  auto decoded = DecodePredictRequest(&reader);
  if (!decoded.ok()) {
    stats_.rejected_bad_request.Add(1);
    RespondError(conn, PeekRequestId(body, size), ServeCode::kBadRequest,
                 decoded.status().ToString());
    return;
  }
  Pending pending{conn, std::move(decoded).ValueOrDie(),
                  std::chrono::steady_clock::now()};
  uint64_t id = pending.request.request_id;
  if (draining_.load()) {
    stats_.rejected_shutdown.Add(1);
    RespondError(conn, id, ServeCode::kShuttingDown, "server is draining");
    return;
  }
  if (!queue_->TryPush(std::move(pending))) {
    // Graceful degradation: the bounded queue is full (or just closed by
    // Stop), so answer immediately instead of queueing without bound.
    if (draining_.load()) {
      stats_.rejected_shutdown.Add(1);
      RespondError(conn, id, ServeCode::kShuttingDown, "server is draining");
    } else {
      stats_.rejected_overload.Add(1);
      RespondError(conn, id, ServeCode::kOverloaded,
                   "admission queue full (" +
                       std::to_string(queue_->capacity()) + " requests)");
    }
    return;
  }
  stats_.requests_accepted.Add(1);
  stats_.peak_queue_depth.UpdateMax(queue_->size());
}

void InferenceServer::HandleExportFrame(const ConnPtr& conn,
                                        const uint8_t* body, size_t size) {
  ByteReader reader(body, size);
  auto decoded = DecodeExportRequest(&reader);
  bool ok = decoded.ok();
  std::string text;
  if (!ok) {
    text = decoded.status().ToString();
  } else if (decoded.ValueOrDie().kind == 'm') {
    text = obs::PrometheusText();
  } else {
    text = obs::ChromeTraceJson(decoded.ValueOrDie().trace_id);
  }
  ByteWriter out;
  EncodeExportResponse(ok, text, &out);
  MutexLock lock(&conn->write_mutex);
  Status ignored = WriteFrame(conn->fd, out);
  (void)ignored;
}

void InferenceServer::BatchLoop() {
  while (true) {
    std::optional<Pending> first = queue_->PopWait();
    if (!first.has_value()) break;  // closed and fully drained
    std::vector<Pending> batch;
    batch.push_back(std::move(*first));
    if (options_.batching_enabled) {
      size_t rows = batch.back().request.features.rows();
      auto linger_until =
          std::chrono::steady_clock::now() + options_.batch_linger;
      while (rows < options_.max_batch_rows) {
        std::optional<Pending> next = queue_->PopUntil(linger_until);
        if (!next.has_value()) break;  // linger expired (or drained)
        rows += next->request.features.rows();
        batch.push_back(std::move(*next));
      }
    }
    if (options_.test_batch_hook) options_.test_batch_hook();
    ExecuteBatch(std::move(batch));
  }
}

void InferenceServer::ExecuteBatch(std::vector<Pending> batch) {
  // One trace per batch. Admission waits are recorded as synthetic spans
  // (their start predates this context); predict spans attach from the
  // pool workers. Futures are waited below, so `trace` outlives them.
  obs::TraceContext trace("serve.batch");
  if (trace.active()) {
    auto now = std::chrono::steady_clock::now();
    for (const Pending& p : batch) {
      trace.RecordSpan("serve.admission", p.arrival, now,
                       p.request.features.rows());
    }
  }
  // Group by (model, feature count): each group becomes one vectorized
  // Predict. Mixed-model batches split here, not at admission, so the
  // linger window coalesces across models too.
  struct Group {
    std::vector<Pending*> members;
    size_t rows = 0;
  };
  std::vector<Group> groups;
  for (Pending& p : batch) {
    Group* target = nullptr;
    for (Group& g : groups) {
      if (g.members[0]->request.model_name == p.request.model_name &&
          g.members[0]->request.features.cols() == p.request.features.cols()) {
        target = &g;
        break;
      }
    }
    if (target == nullptr) {
      groups.emplace_back();
      target = &groups.back();
    }
    target->members.push_back(&p);
    target->rows += p.request.features.rows();
  }
  // Inference runs as tasks on the shared pool — the batch thread only
  // plans; no thread is pinned to a connection or a model.
  std::vector<std::future<void>> futures;
  futures.reserve(groups.size());
  obs::TraceContext* tctx = trace.active() ? &trace : nullptr;
  for (Group& g : groups) {
    futures.push_back(
        pool_->Submit([this, &g, tctx] { RunGroup(g.members, g.rows, tctx); }));
  }
  for (auto& f : futures) f.wait();
}

void InferenceServer::RunGroup(std::vector<Pending*>& members,
                               size_t total_rows, obs::TraceContext* trace) {
  obs::ScopedTraceAttach attach(trace);
  obs::ScopedSpan span("serve.predict");
  span.set_rows_in(total_rows);
  auto now = std::chrono::steady_clock::now();
  std::vector<Pending*> live;
  live.reserve(members.size());
  for (Pending* p : members) {
    if (p->request.deadline_ms > 0 &&
        now - p->arrival >
            std::chrono::milliseconds(p->request.deadline_ms)) {
      stats_.expired_deadline.Add(1);
      RespondError(p->conn, p->request.request_id,
                   ServeCode::kDeadlineExceeded,
                   "deadline of " + std::to_string(p->request.deadline_ms) +
                       "ms expired before execution");
      total_rows -= p->request.features.rows();
    } else {
      live.push_back(p);
    }
  }
  if (live.empty()) return;
  const std::string& model_name = live[0]->request.model_name;
  auto blob = store_->LoadModelBlob(model_name);
  if (!blob.ok()) {
    ServeCode code = blob.status().code() == StatusCode::kNotFound
                         ? ServeCode::kModelNotFound
                         : ServeCode::kInternalError;
    for (Pending* p : live) {
      stats_.failed_internal.Add(1);
      RespondError(p->conn, p->request.request_id, code,
                   blob.status().ToString());
    }
    return;
  }
  // Content-addressed snapshot cache: a retrained model has different
  // bytes, so a stale snapshot can never be served (paper §5.1).
  auto model = cache_->Get(blob.ValueOrDie());
  if (!model.ok()) {
    for (Pending* p : live) {
      stats_.failed_internal.Add(1);
      RespondError(p->conn, p->request.request_id,
                   ServeCode::kInternalError, model.status().ToString());
    }
    return;
  }
  // One column-major matrix for the whole group; single-request groups
  // predict in place with no copy at all.
  size_t cols = live[0]->request.features.cols();
  const ml::Matrix* x = &live[0]->request.features;
  ml::Matrix concat;
  if (live.size() > 1) {
    concat = ml::Matrix(total_rows, cols);
    for (size_t c = 0; c < cols; ++c) {
      double* out = concat.column(c).data();
      size_t offset = 0;
      for (Pending* p : live) {
        const std::vector<double>& src = p->request.features.column(c);
        std::memcpy(out + offset, src.data(), src.size() * sizeof(double));
        offset += src.size();
      }
    }
    x = &concat;
  }
  auto labels = model.ValueOrDie()->Predict(*x);
  if (!labels.ok()) {
    // Typically a feature-count mismatch against the fitted model: the
    // request is malformed, not the server.
    for (Pending* p : live) {
      stats_.rejected_bad_request.Add(1);
      RespondError(p->conn, p->request.request_id, ServeCode::kBadRequest,
                   labels.status().ToString());
    }
    return;
  }
  // Count the batch before writing any response: a client that has seen
  // its answer must be able to observe the matching counters via stats().
  stats_.batches_executed.Add(1);
  stats_.batched_requests.Add(live.size());
  stats_.batched_rows.Add(total_rows);
  stats_.peak_batch_requests.UpdateMax(live.size());
  span.set_rows_out(total_rows);
  const ml::Labels& all = labels.ValueOrDie();
  size_t offset = 0;
  for (Pending* p : live) {
    size_t rows = p->request.features.rows();
    PredictResponse response;
    response.request_id = p->request.request_id;
    response.code = ServeCode::kOk;
    response.labels.assign(
        all.begin() + static_cast<std::ptrdiff_t>(offset),
        all.begin() + static_cast<std::ptrdiff_t>(offset + rows));
    offset += rows;
    stats_.responses_ok.Add(1);
    Respond(p->conn, response);
  }
}

void InferenceServer::Respond(const ConnPtr& conn,
                              const PredictResponse& response) {
  ByteWriter body;
  EncodePredictResponse(response, &body);
  MutexLock lock(&conn->write_mutex);
  // A failed write means the peer vanished; the I/O thread notices the
  // hangup independently, so the error is dropped on purpose.
  Status ignored = WriteFrame(conn->fd, body);
  (void)ignored;
}

void InferenceServer::RespondError(const ConnPtr& conn, uint64_t request_id,
                                   ServeCode code, std::string message) {
  PredictResponse response;
  response.request_id = request_id;
  response.code = code;
  response.message = std::move(message);
  Respond(conn, response);
}

}  // namespace mlcs::serve
