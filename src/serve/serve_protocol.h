#ifndef MLCS_SERVE_SERVE_PROTOCOL_H_
#define MLCS_SERVE_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/byte_buffer.h"
#include "common/result.h"
#include "ml/matrix.h"

namespace mlcs::serve {

/// Feature payload layout on the wire. The contrast mirrors the result-set
/// protocols in client/protocol.h, applied to the *request* direction:
///
///  - kRowMajor:  rows interleaved (f0,f1,...,f0,f1,...) — the
///                one-record-per-message shape a conventional RPC client
///                produces. The server must transpose into column-major
///                before predicting (the per-cell cost Figure 1's socket
///                bars pay).
///  - kColumnar:  each feature's values contiguous — matches ml::Matrix
///                (and the column store) exactly, so decode is a straight
///                per-column memcpy. The serving-side analogue of the
///                zero-copy column handoff.
enum class Layout : uint8_t { kRowMajor = 0, kColumnar = 1 };

const char* LayoutToString(Layout layout);

/// Response codes. Degradation is explicit: an overloaded server answers
/// `kOverloaded` immediately instead of queueing without bound.
enum class ServeCode : uint8_t {
  kOk = 0,
  kBadRequest = 1,
  kModelNotFound = 2,
  kOverloaded = 3,
  kDeadlineExceeded = 4,
  kShuttingDown = 5,
  kInternalError = 6,
};

const char* ServeCodeToString(ServeCode code);

/// Maps a non-OK response code (plus its message) onto a Status for
/// callers that do not need to distinguish the serving-specific codes.
Status ServeCodeToStatus(ServeCode code, const std::string& message);

/// Frame and payload sanity bounds; a frame declaring more is rejected
/// with kBadRequest before any allocation happens.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;
inline constexpr uint32_t kMaxRequestRows = 1u << 20;
inline constexpr uint32_t kMaxRequestFeatures = 4096;

/// One predict call: label `features` with the stored model `model_name`.
/// In memory the features are always column-major (ml::Matrix); Layout
/// only governs the wire form.
struct PredictRequest {
  uint64_t request_id = 0;
  /// Milliseconds the client is willing to wait measured from arrival at
  /// the server; 0 means no deadline. Expired requests are answered with
  /// kDeadlineExceeded instead of being predicted.
  uint32_t deadline_ms = 0;
  std::string model_name;
  ml::Matrix features;
};

struct PredictResponse {
  uint64_t request_id = 0;
  ServeCode code = ServeCode::kOk;
  std::vector<int32_t> labels;  // one per feature row when code == kOk
  std::string message;          // human-readable detail when code != kOk
};

/// Encodes the request body (the content of one frame, excluding the
/// u32 length prefix) in the given layout.
void EncodePredictRequest(const PredictRequest& request, Layout layout,
                          ByteWriter* out);

/// Decodes a request body. Row-major payloads are transposed into the
/// column-major Matrix here — that transpose is the measured layout cost.
Result<PredictRequest> DecodePredictRequest(ByteReader* in);

/// Best-effort extraction of the request id from a (possibly malformed)
/// request body so an error response can still be correlated; 0 when the
/// body is too short to contain one.
uint64_t PeekRequestId(const uint8_t* body, size_t size);

void EncodePredictResponse(const PredictResponse& response, ByteWriter* out);
Result<PredictResponse> DecodePredictResponse(ByteReader* in);

/// Observability sideband (DESIGN.md §15) on the same framed transport:
/// kind 'm' requests a Prometheus text snapshot of the global registry,
/// kind 't' (+ u64 trace id, 0 = all retained) a Chrome trace_event JSON
/// export. Both are answered inline by the I/O thread with an 'E' frame —
/// ok flag + text — so a scraper never queues behind inference.
struct ExportRequest {
  uint8_t kind = 0;       // 'm' or 't'
  uint64_t trace_id = 0;  // 't' only
};

/// True when `body` opens with an export request kind (how HandleFrame
/// routes between predict and the sideband without trial decoding).
bool IsExportRequest(const uint8_t* body, size_t size);

void EncodeMetricsRequest(ByteWriter* out);
void EncodeTraceExportRequest(uint64_t trace_id, ByteWriter* out);
Result<ExportRequest> DecodeExportRequest(ByteReader* in);

void EncodeExportResponse(bool ok, const std::string& text, ByteWriter* out);
/// The exported text, or the server-side error as a Status.
Result<std::string> DecodeExportResponse(ByteReader* in);

/// Blocking frame transport: a u32 length prefix followed by the body.
Status WriteFrame(int fd, const ByteWriter& body);
Result<std::vector<uint8_t>> ReadFrame(int fd);

}  // namespace mlcs::serve

#endif  // MLCS_SERVE_SERVE_PROTOCOL_H_
