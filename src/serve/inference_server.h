#ifndef MLCS_SERVE_INFERENCE_SERVER_H_
#define MLCS_SERVE_INFERENCE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "modelstore/model_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "modelstore/model_store.h"
#include "serve/bounded_queue.h"
#include "serve/serve_protocol.h"
#include "sql/database.h"

namespace mlcs::serve {

struct InferenceServerOptions {
  /// When false every request is predicted individually (the row-at-a-time
  /// ablation baseline); when true concurrently arriving requests coalesce
  /// into one vectorized Predict per model.
  bool batching_enabled = true;
  /// Flush a forming batch once it holds this many feature rows.
  size_t max_batch_rows = 4096;
  /// Maximum time the batcher waits for more requests after the first.
  std::chrono::microseconds batch_linger{250};
  /// Admission bound: requests queued past this answer kOverloaded.
  size_t max_queue_requests = 256;
  /// Inference executes as tasks on this pool (default: the process-wide
  /// shared pool) — no thread is ever dedicated to a single connection.
  ThreadPool* pool = nullptr;
  /// Model snapshot cache (default: ModelCache::Global()). Content
  /// addressing keeps it correct while models are retrained live.
  modelstore::ModelCache* model_cache = nullptr;
  /// Test-only: run by the batch thread right before dispatching a batch;
  /// lets tests hold execution to fill the queue deterministically.
  std::function<void()> test_batch_hook;
};

/// Counters exposed for tests, benchmarks, and ops. Snapshot semantics.
/// Plain-value copy of one server's ServeCounters; the process-wide
/// aggregates live on the metrics registry as `mlcs.serve.*`.
struct InferenceServerStats {  // lint:allow(adhoc-stats)
  uint64_t requests_accepted = 0;   // admitted into the queue
  uint64_t responses_ok = 0;
  uint64_t rejected_overload = 0;   // answered kOverloaded at admission
  uint64_t rejected_bad_request = 0;
  uint64_t rejected_shutdown = 0;   // arrived while draining
  uint64_t expired_deadline = 0;    // answered kDeadlineExceeded
  uint64_t failed_internal = 0;     // model load / predict failures
  uint64_t batches_executed = 0;    // vectorized Predict invocations
  uint64_t batched_requests = 0;    // requests carried by those batches
  uint64_t batched_rows = 0;        // feature rows predicted
  uint64_t peak_queue_depth = 0;    // high-water mark, never > capacity
  uint64_t peak_batch_requests = 0;
};

/// Micro-batching inference server — the serving path for the paper's
/// in-database models (§5.1 snapshots + §2 vectorization, applied to the
/// request path). Concurrently arriving predict requests coalesce into one
/// vectorized Predict call per model, so per-request cost amortizes
/// exactly like per-row UDF cost amortized in abl-vec.
///
/// Threading: one poll-based I/O thread owns every connection (no
/// thread-per-connection), one batcher thread forms batches from a bounded
/// admission queue, and inference itself runs as tasks on the shared
/// ThreadPool. Responses may arrive out of request order; the request_id
/// correlates them. Stop() drains: queued requests are answered, new ones
/// get kShuttingDown, then threads join and sockets close.
class InferenceServer {
 public:
  InferenceServer(Database* db, modelstore::ModelStore* store,
                  InferenceServerOptions options = {});
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 → ephemeral) and starts serving.
  Status Start(uint16_t port = 0);
  /// Drain-then-stop; idempotent.
  void Stop();

  uint16_t port() const { return port_; }
  bool running() const { return running_.load(); }
  InferenceServerStats stats() const;

 private:
  /// One client connection. The fd closes when the last reference drops,
  /// so an in-flight response can never write into a recycled fd.
  struct Conn {
    explicit Conn(int fd) : fd(fd) {}
    ~Conn();
    const int fd;
    /// Serializes response frames onto `fd` (the guarded state is the
    /// socket write stream, not a member).
    Mutex write_mutex{"Conn::write_mutex"};
    /// Touched only by the single I/O thread; never shared.
    std::vector<uint8_t> inbuf;  // lint:allow(guarded-member)
  };
  using ConnPtr = std::shared_ptr<Conn>;

  /// A request admitted into the queue, with its arrival time pinned so
  /// deadlines measure true server-side latency (queue wait included).
  struct Pending {
    ConnPtr conn;
    PredictRequest request;
    std::chrono::steady_clock::time_point arrival;
  };

  void IoLoop();
  void BatchLoop();
  /// Drains readable bytes and dispatches complete frames; false when the
  /// connection must close (peer gone or protocol violation).
  [[nodiscard]] bool ReadAndDispatch(const ConnPtr& conn);
  [[nodiscard]] bool ProcessBufferedFrames(const ConnPtr& conn);
  void HandleFrame(const ConnPtr& conn, const uint8_t* body, size_t size);
  /// Observability sideband ('m'/'t' frames): renders the export on the
  /// I/O thread and answers inline — never queued behind inference.
  void HandleExportFrame(const ConnPtr& conn, const uint8_t* body,
                         size_t size);
  void ExecuteBatch(std::vector<Pending> batch);
  /// `trace` is the batch's trace context (null when tracing is off); pool
  /// workers attach to it so predict spans land in the batch's trace.
  void RunGroup(std::vector<Pending*>& members, size_t total_rows,
                obs::TraceContext* trace);

  void Respond(const ConnPtr& conn, const PredictResponse& response);
  void RespondError(const ConnPtr& conn, uint64_t request_id, ServeCode code,
                    std::string message);

  Database* db_;
  modelstore::ModelStore* store_;
  InferenceServerOptions options_;
  ThreadPool* pool_;
  modelstore::ModelCache* cache_;

  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  int wake_pipe_[2] = {-1, -1};  // self-pipe to interrupt poll()
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> io_stop_{false};
  std::thread io_thread_;
  std::thread batch_thread_;
  std::unique_ptr<BoundedQueue<Pending>> queue_;

  /// Per-server counters, each mirrored into the process-wide
  /// `mlcs.serve.*` registry series (so `mlcs_metrics()` aggregates across
  /// servers while stats() stays exact per instance).
  struct ServeCounters {
    obs::MirroredCounter requests_accepted{"mlcs.serve.requests_accepted"};
    obs::MirroredCounter responses_ok{"mlcs.serve.responses_ok"};
    obs::MirroredCounter rejected_overload{"mlcs.serve.rejected_overload"};
    obs::MirroredCounter rejected_bad_request{
        "mlcs.serve.rejected_bad_request"};
    obs::MirroredCounter rejected_shutdown{"mlcs.serve.rejected_shutdown"};
    obs::MirroredCounter expired_deadline{"mlcs.serve.expired_deadline"};
    obs::MirroredCounter failed_internal{"mlcs.serve.failed_internal"};
    obs::MirroredCounter batches_executed{"mlcs.serve.batches_executed"};
    obs::MirroredCounter batched_requests{"mlcs.serve.batched_requests"};
    obs::MirroredCounter batched_rows{"mlcs.serve.batched_rows"};
    obs::MirroredMaxGauge peak_queue_depth{"mlcs.serve.peak_queue_depth"};
    obs::MirroredMaxGauge peak_batch_requests{
        "mlcs.serve.peak_batch_requests"};
  };
  ServeCounters stats_;
};

}  // namespace mlcs::serve

#endif  // MLCS_SERVE_INFERENCE_SERVER_H_
