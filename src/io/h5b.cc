#include "io/h5b.h"

#include <cstdio>
#include <memory>

#include "common/byte_buffer.h"

namespace mlcs::io {

namespace {
constexpr uint32_t kMagic = 0x48354232;  // "H5B2" (chunks length-prefixed)

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

Status WriteBytes(std::FILE* f, const void* data, size_t size,
                  const std::string& path) {
  if (size > 0 && std::fwrite(data, 1, size, f) != size) {
    return Status::IoError("short write to '" + path + "'");
  }
  return Status::OK();
}
}  // namespace

Status WriteH5b(const Table& table, const std::string& path,
                const H5bOptions& options) {
  MLCS_RETURN_IF_ERROR(table.Validate());
  if (options.chunk_rows == 0) {
    return Status::InvalidArgument("chunk_rows must be positive");
  }
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  ByteWriter header;
  header.WriteU32(kMagic);
  table.schema().Serialize(&header);
  header.WriteVarint(table.num_rows());
  header.WriteVarint(options.chunk_rows);
  MLCS_RETURN_IF_ERROR(
      WriteBytes(f.get(), header.data().data(), header.size(), path));
  size_t rows = table.num_rows();
  for (size_t begin = 0; begin < rows; begin += options.chunk_rows) {
    size_t length = std::min(options.chunk_rows, rows - begin);
    ByteWriter chunk;
    for (size_t c = 0; c < table.num_columns(); ++c) {
      table.column(c)->Slice(begin, length)->Serialize(&chunk);
    }
    uint64_t chunk_len = chunk.size();
    MLCS_RETURN_IF_ERROR(
        WriteBytes(f.get(), &chunk_len, sizeof(chunk_len), path));
    MLCS_RETURN_IF_ERROR(
        WriteBytes(f.get(), chunk.data().data(), chunk.size(), path));
  }
  return Status::OK();
}

Result<H5bChunkReader> H5bChunkReader::Open(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  // The header is small (schema + counts); load a bounded prefix and parse.
  std::vector<uint8_t> prefix(1 << 16);
  size_t got = std::fread(prefix.data(), 1, prefix.size(), f.get());
  prefix.resize(got);
  ByteReader reader(prefix);
  MLCS_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kMagic) {
    return Status::ParseError("'" + path + "' is not an mlcs .h5b file");
  }
  H5bChunkReader out;
  MLCS_ASSIGN_OR_RETURN(out.schema_, Schema::Deserialize(&reader));
  MLCS_ASSIGN_OR_RETURN(out.total_rows_, reader.ReadVarint());
  MLCS_ASSIGN_OR_RETURN(out.chunk_rows_, reader.ReadVarint());
  if (out.chunk_rows_ == 0) {
    return Status::ParseError("zero chunk size in '" + path + "'");
  }
  // Reposition to the first chunk.
  if (std::fseek(f.get(), static_cast<long>(reader.position()),
                 SEEK_SET) != 0) {
    return Status::IoError("seek failed in '" + path + "'");
  }
  out.file_ = f.release();
  out.path_ = path;
  return out;
}

H5bChunkReader::~H5bChunkReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<TablePtr> H5bChunkReader::NextChunk() {
  if (!HasNext()) {
    return Status::OutOfRange("no more chunks in '" + path_ + "'");
  }
  uint64_t chunk_len = 0;
  if (std::fread(&chunk_len, sizeof(chunk_len), 1, file_) != 1) {
    return Status::IoError("truncated chunk header in '" + path_ + "'");
  }
  if (chunk_len > (1ull << 34)) {
    return Status::ParseError("implausible chunk size in '" + path_ + "'");
  }
  std::vector<uint8_t> bytes(chunk_len);
  if (std::fread(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    return Status::IoError("truncated chunk body in '" + path_ + "'");
  }
  ByteReader reader(bytes);
  std::vector<ColumnPtr> columns;
  columns.reserve(schema_.num_fields());
  uint64_t expected =
      std::min<uint64_t>(chunk_rows_, total_rows_ - rows_read_);
  for (size_t c = 0; c < schema_.num_fields(); ++c) {
    MLCS_ASSIGN_OR_RETURN(ColumnPtr col, Column::Deserialize(&reader));
    if (col->type() != schema_.field(c).type ||
        col->size() != expected) {
      return Status::ParseError("chunk shape mismatch in '" + path_ + "'");
    }
    columns.push_back(std::move(col));
  }
  rows_read_ += expected;
  auto table = std::make_shared<Table>(schema_, std::move(columns));
  MLCS_RETURN_IF_ERROR(table->Validate());
  return table;
}

Result<TablePtr> ReadH5b(const std::string& path) {
  MLCS_ASSIGN_OR_RETURN(H5bChunkReader reader, H5bChunkReader::Open(path));
  auto table = Table::Make(reader.schema());
  while (reader.HasNext()) {
    MLCS_ASSIGN_OR_RETURN(TablePtr chunk, reader.NextChunk());
    MLCS_RETURN_IF_ERROR(table->AppendTable(*chunk));
  }
  return table;
}

}  // namespace mlcs::io
