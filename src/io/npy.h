#ifndef MLCS_IO_NPY_H_
#define MLCS_IO_NPY_H_

#include <string>

#include "common/result.h"
#include "storage/table.h"

namespace mlcs::io {

/// NumPy `.npy` v1.0 files — byte-compatible with numpy.save for 1-D
/// arrays of int32 (`<i4`), int64 (`<i8`), float64 (`<f8`) and bool
/// (`|b1`). This is the paper's "NumPy binary files" baseline: each of the
/// 96 voter columns lives in its own file on disk, loading is a header
/// parse plus one fread.
Status WriteNpy(const Column& column, const std::string& path);
Result<ColumnPtr> ReadNpy(const std::string& path);

/// One .npy per column (named `<index>_<column>.npy`) plus a `columns.txt`
/// manifest recording order, names and types — mirroring how the paper's
/// external pipeline manages "each of the 96 columns as a separate file".
Status SaveTableAsNpyDir(const Table& table, const std::string& dir);
Result<TablePtr> LoadTableFromNpyDir(const std::string& dir);

}  // namespace mlcs::io

#endif  // MLCS_IO_NPY_H_
