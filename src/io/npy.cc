#include "io/npy.h"

#include <cstdio>
#include <cstring>
#include <memory>

#include "common/string_util.h"

namespace mlcs::io {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

constexpr char kMagic[] = "\x93NUMPY";

Result<const char*> DescrFor(TypeId type) {
  switch (type) {
    case TypeId::kBool:
      return "|b1";
    case TypeId::kInt32:
      return "<i4";
    case TypeId::kInt64:
      return "<i8";
    case TypeId::kDouble:
      return "<f8";
    default:
      return Status::NotImplemented(
          std::string(TypeIdToString(type)) +
          " columns cannot be stored as .npy (numeric arrays only)");
  }
}

Result<TypeId> TypeForDescr(const std::string& descr) {
  if (descr == "|b1") return TypeId::kBool;
  if (descr == "<i4") return TypeId::kInt32;
  if (descr == "<i8") return TypeId::kInt64;
  if (descr == "<f8") return TypeId::kDouble;
  return Status::NotImplemented("unsupported .npy dtype '" + descr + "'");
}

/// Pulls the value of a quoted or bare key out of the header dict text.
Result<std::string> HeaderField(const std::string& header,
                                const std::string& key) {
  size_t pos = header.find("'" + key + "'");
  if (pos == std::string::npos) {
    return Status::ParseError(".npy header is missing '" + key + "'");
  }
  pos = header.find(':', pos);
  if (pos == std::string::npos) return Status::ParseError("bad .npy header");
  ++pos;
  while (pos < header.size() && header[pos] == ' ') ++pos;
  size_t end = pos;
  if (header[pos] == '\'') {
    ++pos;
    end = header.find('\'', pos);
    if (end == std::string::npos) return Status::ParseError("bad .npy header");
    return header.substr(pos, end - pos);
  }
  if (header[pos] == '(') {
    end = header.find(')', pos);
    if (end == std::string::npos) return Status::ParseError("bad .npy header");
    return header.substr(pos, end - pos + 1);
  }
  while (end < header.size() && header[end] != ',' && header[end] != '}') {
    ++end;
  }
  return Trim(header.substr(pos, end - pos));
}

}  // namespace

Status WriteNpy(const Column& column, const std::string& path) {
  MLCS_ASSIGN_OR_RETURN(const char* descr, DescrFor(column.type()));
  if (column.has_nulls()) {
    return Status::InvalidArgument(
        ".npy cannot represent NULLs; fill them first");
  }
  std::string header = std::string("{'descr': '") + descr +
                       "', 'fortran_order': False, 'shape': (" +
                       std::to_string(column.size()) + ",), }";
  // Pad so that magic(6)+version(2)+len(2)+header is a multiple of 64,
  // ending with '\n' — as numpy.save does.
  size_t unpadded = 10 + header.size() + 1;
  size_t padding = (64 - unpadded % 64) % 64;
  header.append(padding, ' ');
  header.push_back('\n');

  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  std::fwrite(kMagic, 1, 6, f.get());
  uint8_t version[2] = {1, 0};
  std::fwrite(version, 1, 2, f.get());
  uint16_t hlen = static_cast<uint16_t>(header.size());
  std::fwrite(&hlen, sizeof(hlen), 1, f.get());
  std::fwrite(header.data(), 1, header.size(), f.get());

  const void* data = nullptr;
  size_t bytes = 0;
  switch (column.type()) {
    case TypeId::kBool:
      data = column.bool_data().data();
      bytes = column.size();
      break;
    case TypeId::kInt32:
      data = column.i32_data().data();
      bytes = column.size() * sizeof(int32_t);
      break;
    case TypeId::kInt64:
      data = column.i64_data().data();
      bytes = column.size() * sizeof(int64_t);
      break;
    case TypeId::kDouble:
      data = column.f64_data().data();
      bytes = column.size() * sizeof(double);
      break;
    default:
      return Status::Internal("unreachable");
  }
  if (bytes > 0 && std::fwrite(data, 1, bytes, f.get()) != bytes) {
    return Status::IoError("short write to '" + path + "'");
  }
  return Status::OK();
}

Result<ColumnPtr> ReadNpy(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  char magic[6];
  if (std::fread(magic, 1, 6, f.get()) != 6 ||
      std::memcmp(magic, kMagic, 6) != 0) {
    return Status::ParseError("'" + path + "' is not a .npy file");
  }
  uint8_t version[2];
  if (std::fread(version, 1, 2, f.get()) != 2 || version[0] != 1) {
    return Status::NotImplemented("only .npy format 1.0 is supported");
  }
  uint16_t hlen = 0;
  if (std::fread(&hlen, sizeof(hlen), 1, f.get()) != 1) {
    return Status::ParseError("truncated .npy header");
  }
  std::string header(hlen, '\0');
  if (std::fread(header.data(), 1, hlen, f.get()) != hlen) {
    return Status::ParseError("truncated .npy header");
  }
  MLCS_ASSIGN_OR_RETURN(std::string descr, HeaderField(header, "descr"));
  MLCS_ASSIGN_OR_RETURN(TypeId type, TypeForDescr(descr));
  MLCS_ASSIGN_OR_RETURN(std::string order,
                        HeaderField(header, "fortran_order"));
  if (order != "False") {
    return Status::NotImplemented("fortran-order .npy not supported");
  }
  MLCS_ASSIGN_OR_RETURN(std::string shape, HeaderField(header, "shape"));
  // shape looks like "(N,)" — 1-D only.
  std::string inner = Trim(shape.substr(1, shape.size() - 2));
  if (!inner.empty() && inner.back() == ',') inner.pop_back();
  if (inner.find(',') != std::string::npos) {
    return Status::NotImplemented("only 1-D .npy arrays are supported");
  }
  MLCS_ASSIGN_OR_RETURN(int64_t n, ParseInt64(inner));
  if (n < 0) return Status::ParseError("negative .npy shape");

  ColumnPtr col = Column::Make(type);
  size_t count = static_cast<size_t>(n);
  switch (type) {
    case TypeId::kBool: {
      auto& dst = col->bool_data();
      dst.resize(count);
      if (std::fread(dst.data(), 1, count, f.get()) != count) {
        return Status::IoError("truncated .npy data in '" + path + "'");
      }
      break;
    }
    case TypeId::kInt32: {
      auto& dst = col->i32_data();
      dst.resize(count);
      if (std::fread(dst.data(), sizeof(int32_t), count, f.get()) != count) {
        return Status::IoError("truncated .npy data in '" + path + "'");
      }
      break;
    }
    case TypeId::kInt64: {
      auto& dst = col->i64_data();
      dst.resize(count);
      if (std::fread(dst.data(), sizeof(int64_t), count, f.get()) != count) {
        return Status::IoError("truncated .npy data in '" + path + "'");
      }
      break;
    }
    case TypeId::kDouble: {
      auto& dst = col->f64_data();
      dst.resize(count);
      if (std::fread(dst.data(), sizeof(double), count, f.get()) != count) {
        return Status::IoError("truncated .npy data in '" + path + "'");
      }
      break;
    }
    default:
      return Status::Internal("unreachable");
  }
  return col;
}

Status SaveTableAsNpyDir(const Table& table, const std::string& dir) {
  MLCS_RETURN_IF_ERROR(table.Validate());
  std::string manifest;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Field& field = table.schema().field(c);
    std::string file = std::to_string(c) + "_" + field.name + ".npy";
    MLCS_RETURN_IF_ERROR(WriteNpy(*table.column(c), dir + "/" + file));
    manifest += file + "," + field.name + "," + TypeIdToString(field.type) +
                "\n";
  }
  FilePtr f(std::fopen((dir + "/columns.txt").c_str(), "wb"));
  if (f == nullptr) {
    return Status::IoError("cannot write manifest in '" + dir + "'");
  }
  if (std::fwrite(manifest.data(), 1, manifest.size(), f.get()) !=
      manifest.size()) {
    return Status::IoError("short manifest write in '" + dir + "'");
  }
  return Status::OK();
}

Result<TablePtr> LoadTableFromNpyDir(const std::string& dir) {
  FilePtr f(std::fopen((dir + "/columns.txt").c_str(), "rb"));
  if (f == nullptr) {
    return Status::IoError("'" + dir + "' has no columns.txt manifest");
  }
  std::string manifest;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f.get())) > 0) {
    manifest.append(buf, got);
  }
  Schema schema;
  std::vector<ColumnPtr> columns;
  for (const std::string& line : SplitString(manifest, '\n')) {
    if (Trim(line).empty()) continue;
    auto parts = SplitString(line, ',');
    if (parts.size() != 3) {
      return Status::ParseError("bad manifest line: " + line);
    }
    MLCS_ASSIGN_OR_RETURN(TypeId type, TypeIdFromString(parts[2]));
    MLCS_ASSIGN_OR_RETURN(ColumnPtr col, ReadNpy(dir + "/" + parts[0]));
    if (col->type() != type) {
      return Status::TypeMismatch("manifest/file type mismatch for " +
                                  parts[0]);
    }
    schema.AddField(parts[1], type);
    columns.push_back(std::move(col));
  }
  auto table = std::make_shared<Table>(std::move(schema),
                                       std::move(columns));
  MLCS_RETURN_IF_ERROR(table->Validate());
  return table;
}

}  // namespace mlcs::io
