#include "io/voter_gen.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace mlcs::io {

double PrecinctDemShare(uint64_t seed, size_t precinct,
                        size_t /*num_precincts*/) {
  // One gaussian draw per precinct, deterministic in (seed, precinct).
  Rng rng(seed ^ (0x9E3779B97F4A7C15ULL * (precinct + 1)));
  double share = 0.5 + 0.18 * rng.NextGaussian();
  return std::clamp(share, 0.05, 0.95);
}

Result<TablePtr> GeneratePrecincts(const VoterDataOptions& options) {
  if (options.num_precincts == 0) {
    return Status::InvalidArgument("need at least one precinct");
  }
  Schema schema;
  schema.AddField("precinct_id", TypeId::kInt32);
  schema.AddField("dem_votes", TypeId::kInt32);
  schema.AddField("rep_votes", TypeId::kInt32);
  auto table = Table::Make(std::move(schema));
  Rng rng(options.seed + 1);
  auto& ids = table->column(0)->i32_data();
  auto& dem = table->column(1)->i32_data();
  auto& rep = table->column(2)->i32_data();
  ids.reserve(options.num_precincts);
  dem.reserve(options.num_precincts);
  rep.reserve(options.num_precincts);
  for (size_t p = 0; p < options.num_precincts; ++p) {
    double share = PrecinctDemShare(options.seed, p, options.num_precincts);
    int32_t total = static_cast<int32_t>(200 + rng.NextBounded(4000));
    int32_t d = static_cast<int32_t>(std::lround(total * share));
    ids.push_back(static_cast<int32_t>(p));
    dem.push_back(d);
    rep.push_back(total - d);
  }
  return table;
}

Result<TablePtr> GenerateVoters(const VoterDataOptions& options) {
  if (options.num_columns < 9) {
    return Status::InvalidArgument("voter table needs >= 9 columns");
  }
  if (options.num_precincts == 0 || options.num_voters == 0) {
    return Status::InvalidArgument("empty voter dataset requested");
  }
  Schema schema;
  schema.AddField("voter_id", TypeId::kInt32);
  schema.AddField("precinct_id", TypeId::kInt32);
  schema.AddField("age", TypeId::kInt32);
  schema.AddField("gender", TypeId::kInt32);
  schema.AddField("ethnicity", TypeId::kInt32);
  schema.AddField("party_reg", TypeId::kInt32);
  schema.AddField("income_bracket", TypeId::kInt32);
  schema.AddField("urban_score", TypeId::kInt32);
  schema.AddField("years_registered", TypeId::kInt32);
  for (size_t c = schema.num_fields(); c < options.num_columns; ++c) {
    schema.AddField("attr_" + std::to_string(c), TypeId::kInt32);
  }
  auto table = Table::Make(schema);
  for (size_t c = 0; c < options.num_columns; ++c) {
    table->column(c)->i32_data().reserve(options.num_voters);
  }

  // Filler-attribute cardinalities cycle through realistic ranges
  // (county codes, boolean flags, small categorical domains).
  auto filler_cardinality = [](size_t column_index) -> uint64_t {
    switch (column_index % 5) {
      case 0:
        return 2;    // flag
      case 1:
        return 8;    // small categorical
      case 2:
        return 100;  // county-ish
      case 3:
        return 12;   // month-ish
      default:
        return 50;
    }
  };

  Rng rng(options.seed + 2);
  for (size_t v = 0; v < options.num_voters; ++v) {
    size_t precinct = rng.NextBounded(options.num_precincts);
    double share =
        PrecinctDemShare(options.seed, precinct, options.num_precincts);
    table->column(0)->i32_data().push_back(static_cast<int32_t>(v));
    table->column(1)->i32_data().push_back(static_cast<int32_t>(precinct));
    // Correlated demographics: noisy functions of the precinct lean, so
    // the classifier has signal beyond the precinct id itself.
    int32_t age = static_cast<int32_t>(std::clamp(
        45.0 - 20.0 * (share - 0.5) + 14.0 * rng.NextGaussian(), 18.0,
        100.0));
    int32_t gender = static_cast<int32_t>(rng.NextBounded(2));
    int32_t ethnicity = static_cast<int32_t>(
        rng.NextDouble() < share * 0.6 ? rng.NextBounded(4) + 1 : 0);
    int32_t party_reg =
        rng.NextDouble() < share ? 0 : (rng.NextDouble() < 0.8 ? 1 : 2);
    int32_t income = static_cast<int32_t>(std::clamp(
        5.0 + 3.0 * (share - 0.5) + 2.0 * rng.NextGaussian(), 0.0, 10.0));
    int32_t urban = static_cast<int32_t>(std::clamp(
        10.0 * share + 2.0 * rng.NextGaussian(), 0.0, 10.0));
    int32_t years = static_cast<int32_t>(rng.NextBounded(40));
    table->column(2)->i32_data().push_back(age);
    table->column(3)->i32_data().push_back(gender);
    table->column(4)->i32_data().push_back(ethnicity);
    table->column(5)->i32_data().push_back(party_reg);
    table->column(6)->i32_data().push_back(income);
    table->column(7)->i32_data().push_back(urban);
    table->column(8)->i32_data().push_back(years);
    for (size_t c = 9; c < options.num_columns; ++c) {
      table->column(c)->i32_data().push_back(
          static_cast<int32_t>(rng.NextBounded(filler_cardinality(c))));
    }
  }
  return table;
}

}  // namespace mlcs::io
