#ifndef MLCS_IO_CSV_H_
#define MLCS_IO_CSV_H_

#include <string>

#include "common/result.h"
#include "storage/table.h"

namespace mlcs::io {

struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
  /// Run EncodeTable over the loaded table (dictionary/RLE auto-detect,
  /// storage/encoding.h). Off by default: callers that read payload
  /// vectors straight off the result must opt in deliberately.
  bool auto_encode = false;
};

/// Writes a table as delimited text. VARCHAR fields containing the
/// delimiter, quotes or newlines are quoted with '"' ('""' escapes).
Status WriteCsv(const Table& table, const std::string& path,
                const CsvOptions& options = {});

/// Reads a CSV with a known schema (the fast path the paper's "optimized
/// parser" baseline uses: std::from_chars per field, no type sniffing).
Result<TablePtr> ReadCsv(const std::string& path, const Schema& schema,
                         const CsvOptions& options = {});

/// Reads a CSV inferring each column as BIGINT → DOUBLE → VARCHAR from the
/// first `probe_rows` data rows.
Result<TablePtr> ReadCsvInferred(const std::string& path,
                                 const CsvOptions& options = {},
                                 size_t probe_rows = 100);

}  // namespace mlcs::io

#endif  // MLCS_IO_CSV_H_
