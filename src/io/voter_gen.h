#ifndef MLCS_IO_VOTER_GEN_H_
#define MLCS_IO_VOTER_GEN_H_

#include <cstdint>

#include "common/result.h"
#include "storage/table.h"

namespace mlcs::io {

/// Shape parameters of the synthetic North Carolina voter dataset — the
/// real file used by the paper is not redistributable, so we generate a
/// deterministic dataset with the same shape (see DESIGN.md): N voters ×
/// 96 INTEGER columns keyed by precinct, plus a 2 751-row precinct table
/// with Democrat/Republican vote totals.
struct VoterDataOptions {
  size_t num_voters = 250000;    // paper: 7.5M (env-scalable in benches)
  size_t num_precincts = 2751;   // paper's NC precinct count
  /// Total voter columns, including precinct_id. The paper reports 96.
  size_t num_columns = 96;
  uint64_t seed = 42;
};

/// `precincts(precinct_id INTEGER, dem_votes INTEGER, rep_votes INTEGER)`.
/// Each precinct gets a persistent partisan lean (clamped gaussian around
/// 0.5) so that voter features correlated with the lean are learnable.
Result<TablePtr> GeneratePrecincts(const VoterDataOptions& options);

/// `voters(voter_id, precinct_id, age, gender, ... attr_NN)`
/// — num_columns INT32 columns. A handful of demographic features are
/// correlated with the precinct lean (so a classifier beats the 50 %
/// baseline); the rest are independent noise with realistic cardinalities,
/// matching the "96 columns describing characteristics" shape.
Result<TablePtr> GenerateVoters(const VoterDataOptions& options);

/// The precinct lean used internally (exposed for tests): deterministic in
/// (seed, precinct).
double PrecinctDemShare(uint64_t seed, size_t precinct, size_t num_precincts);

}  // namespace mlcs::io

#endif  // MLCS_IO_VOTER_GEN_H_
