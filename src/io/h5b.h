#ifndef MLCS_IO_H5B_H_
#define MLCS_IO_H5B_H_

#include <cstdio>
#include <string>
#include <utility>

#include "common/result.h"
#include "storage/table.h"

namespace mlcs::io {

struct H5bOptions {
  /// Rows per chunk (PyTables-style chunked layout).
  size_t chunk_rows = 65536;
};

/// `.h5b` — a single-file chunked binary columnar table format standing in
/// for HDF5/PyTables (see DESIGN.md's substitution table). Layout: magic,
/// schema, row count, chunk size, then per chunk each column's serialized
/// block. Like PyTables it loads with near-memcpy cost from one file, in
/// chunks, without the per-column file management of the .npy baseline.
Status WriteH5b(const Table& table, const std::string& path,
                const H5bOptions& options = {});
Result<TablePtr> ReadH5b(const std::string& path);

/// Streaming chunk-at-a-time reader — the paper's §5.1 "out-of-memory
/// datasets" future-work path: only one chunk is resident at a time, so a
/// UDF can score a dataset far larger than RAM. Each chunk on disk is
/// length-prefixed, so the reader seeks/loads exactly one chunk per call.
///
///   MLCS_ASSIGN_OR_RETURN(auto reader, H5bChunkReader::Open(path));
///   while (reader.HasNext()) {
///     MLCS_ASSIGN_OR_RETURN(TablePtr chunk, reader.NextChunk());
///     ...process chunk...
///   }
class H5bChunkReader {
 public:
  static Result<H5bChunkReader> Open(const std::string& path);

  H5bChunkReader(H5bChunkReader&& other) noexcept { *this = std::move(other); }
  H5bChunkReader& operator=(H5bChunkReader&& other) noexcept {
    if (this != &other) {
      if (file_ != nullptr) std::fclose(file_);
      file_ = other.file_;
      other.file_ = nullptr;
      schema_ = std::move(other.schema_);
      total_rows_ = other.total_rows_;
      chunk_rows_ = other.chunk_rows_;
      rows_read_ = other.rows_read_;
      path_ = std::move(other.path_);
    }
    return *this;
  }
  H5bChunkReader(const H5bChunkReader&) = delete;
  H5bChunkReader& operator=(const H5bChunkReader&) = delete;
  ~H5bChunkReader();

  const Schema& schema() const { return schema_; }
  uint64_t total_rows() const { return total_rows_; }
  uint64_t rows_read() const { return rows_read_; }
  [[nodiscard]] bool HasNext() const { return rows_read_ < total_rows_; }

  /// Reads and materializes the next chunk. Calling past the end errors.
  Result<TablePtr> NextChunk();

 private:
  H5bChunkReader() = default;

  std::FILE* file_ = nullptr;
  Schema schema_;
  uint64_t total_rows_ = 0;
  uint64_t chunk_rows_ = 0;
  uint64_t rows_read_ = 0;
  std::string path_;
};

}  // namespace mlcs::io

#endif  // MLCS_IO_H5B_H_
