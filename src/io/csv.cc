#include "io/csv.h"

#include <charconv>
#include <cstdio>
#include <memory>

#include "common/string_util.h"
#include "storage/encoding.h"

namespace mlcs::io {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

Result<std::string> ReadWholeFile(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::fseek(f.get(), 0, SEEK_END);
  long size = std::ftell(f.get());
  std::fseek(f.get(), 0, SEEK_SET);
  if (size < 0) return Status::IoError("cannot stat '" + path + "'");
  std::string data(static_cast<size_t>(size), '\0');
  if (std::fread(data.data(), 1, data.size(), f.get()) != data.size()) {
    return Status::IoError("short read from '" + path + "'");
  }
  return data;
}

bool NeedsQuoting(const std::string& s, char delimiter) {
  return s.find(delimiter) != std::string::npos ||
         s.find('"') != std::string::npos ||
         s.find('\n') != std::string::npos ||
         s.find('\r') != std::string::npos;
}

void AppendQuoted(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

/// Splits one line into field views, handling quoted fields. `line` must
/// outlive the returned views.
void SplitLine(std::string_view line, char delimiter,
               std::vector<std::string>* fields) {
  fields->clear();
  size_t i = 0;
  while (true) {
    std::string field;
    if (i < line.size() && line[i] == '"') {
      ++i;
      while (i < line.size()) {
        if (line[i] == '"') {
          if (i + 1 < line.size() && line[i + 1] == '"') {
            field.push_back('"');
            i += 2;
            continue;
          }
          ++i;
          break;
        }
        field.push_back(line[i]);
        ++i;
      }
    } else {
      size_t start = i;
      while (i < line.size() && line[i] != delimiter) ++i;
      field.assign(line.substr(start, i - start));
    }
    fields->push_back(std::move(field));
    if (i >= line.size()) break;
    if (line[i] == delimiter) ++i;
  }
}

Status AppendField(Column* col, const std::string& field) {
  if (field.empty() && col->type() != TypeId::kVarchar) {
    col->AppendNull();
    return Status::OK();
  }
  switch (col->type()) {
    case TypeId::kBool: {
      MLCS_ASSIGN_OR_RETURN(Value v, Value::Varchar(field).CastTo(
                                         TypeId::kBool));
      col->AppendBool(v.bool_value());
      return Status::OK();
    }
    case TypeId::kInt32: {
      MLCS_ASSIGN_OR_RETURN(int32_t v, ParseInt32(field));
      col->AppendInt32(v);
      return Status::OK();
    }
    case TypeId::kInt64: {
      MLCS_ASSIGN_OR_RETURN(int64_t v, ParseInt64(field));
      col->AppendInt64(v);
      return Status::OK();
    }
    case TypeId::kDouble: {
      MLCS_ASSIGN_OR_RETURN(double v, ParseDouble(field));
      col->AppendDouble(v);
      return Status::OK();
    }
    case TypeId::kVarchar:
      col->AppendString(field);
      return Status::OK();
    case TypeId::kBlob:
      return Status::NotImplemented("BLOB columns cannot be read from CSV");
  }
  return Status::Internal("unreachable");
}

}  // namespace

Status WriteCsv(const Table& table, const std::string& path,
                const CsvOptions& options) {
  MLCS_RETURN_IF_ERROR(table.Validate());
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  // The row loop reads raw payload vectors; encoded columns write their
  // decoded form (CSV is plain text either way).
  std::vector<ColumnPtr> decoded(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (table.column(c)->is_encoded()) {
      decoded[c] = table.column(c)->Decode();
    }
  }
  std::string buffer;
  buffer.reserve(1 << 20);
  if (options.has_header) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) buffer.push_back(options.delimiter);
      buffer.append(table.schema().field(c).name);
    }
    buffer.push_back('\n');
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) buffer.push_back(options.delimiter);
      const auto& col =
          decoded[c] != nullptr ? *decoded[c] : *table.column(c);
      if (col.IsNull(r)) continue;  // NULL → empty field
      switch (col.type()) {
        case TypeId::kBool:
          buffer.append(col.bool_data()[r] != 0 ? "true" : "false");
          break;
        case TypeId::kInt32:
          buffer.append(std::to_string(col.i32_data()[r]));
          break;
        case TypeId::kInt64:
          buffer.append(std::to_string(col.i64_data()[r]));
          break;
        case TypeId::kDouble:
          buffer.append(FormatDouble(col.f64_data()[r]));
          break;
        case TypeId::kVarchar: {
          const std::string& s = col.str_data()[r];
          if (NeedsQuoting(s, options.delimiter)) {
            AppendQuoted(&buffer, s);
          } else {
            buffer.append(s);
          }
          break;
        }
        case TypeId::kBlob:
          return Status::NotImplemented("BLOB columns cannot go to CSV");
      }
    }
    buffer.push_back('\n');
    if (buffer.size() > (1 << 20)) {
      if (std::fwrite(buffer.data(), 1, buffer.size(), f.get()) !=
          buffer.size()) {
        return Status::IoError("short write to '" + path + "'");
      }
      buffer.clear();
    }
  }
  if (!buffer.empty() &&
      std::fwrite(buffer.data(), 1, buffer.size(), f.get()) !=
          buffer.size()) {
    return Status::IoError("short write to '" + path + "'");
  }
  return Status::OK();
}

Result<TablePtr> ReadCsv(const std::string& path, const Schema& schema,
                         const CsvOptions& options) {
  MLCS_ASSIGN_OR_RETURN(std::string data, ReadWholeFile(path));
  auto table = Table::Make(schema);
  std::vector<std::string> fields;
  size_t pos = 0;
  bool first_line = true;
  size_t line_no = 0;
  while (pos < data.size()) {
    size_t end = data.find('\n', pos);
    if (end == std::string::npos) end = data.size();
    std::string_view line(data.data() + pos, end - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    pos = end + 1;
    ++line_no;
    if (line.empty()) continue;
    if (first_line) {
      first_line = false;
      if (options.has_header) continue;
    }
    SplitLine(line, options.delimiter, &fields);
    if (fields.size() != schema.num_fields()) {
      return Status::ParseError(
          "line " + std::to_string(line_no) + " of '" + path + "' has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(schema.num_fields()));
    }
    for (size_t c = 0; c < fields.size(); ++c) {
      MLCS_RETURN_IF_ERROR(AppendField(table->column(c).get(), fields[c]));
    }
  }
  if (options.auto_encode) return EncodeTable(table);
  return table;
}

Result<TablePtr> ReadCsvInferred(const std::string& path,
                                 const CsvOptions& options,
                                 size_t probe_rows) {
  MLCS_ASSIGN_OR_RETURN(std::string data, ReadWholeFile(path));
  // First pass over up to probe_rows lines: names and types.
  std::vector<std::string> names;
  std::vector<TypeId> types;
  std::vector<std::string> fields;
  size_t pos = 0;
  bool saw_header = false;
  size_t probed = 0;
  while (pos < data.size() && probed < probe_rows) {
    size_t end = data.find('\n', pos);
    if (end == std::string::npos) end = data.size();
    std::string_view line(data.data() + pos, end - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    pos = end + 1;
    if (line.empty()) continue;
    SplitLine(line, options.delimiter, &fields);
    if (!saw_header) {
      saw_header = true;
      if (options.has_header) {
        names.assign(fields.begin(), fields.end());
        types.assign(fields.size(), TypeId::kInt64);
        continue;
      }
      names.resize(fields.size());
      for (size_t i = 0; i < fields.size(); ++i) {
        names[i] = "col" + std::to_string(i);
      }
      types.assign(fields.size(), TypeId::kInt64);
    }
    if (fields.size() != names.size()) {
      return Status::ParseError("ragged CSV in '" + path + "'");
    }
    for (size_t c = 0; c < fields.size(); ++c) {
      if (fields[c].empty()) continue;
      if (types[c] == TypeId::kInt64 && !ParseInt64(fields[c]).ok()) {
        types[c] = TypeId::kDouble;
      }
      if (types[c] == TypeId::kDouble && !ParseDouble(fields[c]).ok()) {
        types[c] = TypeId::kVarchar;
      }
    }
    ++probed;
  }
  if (names.empty()) {
    return Status::ParseError("'" + path + "' is empty");
  }
  Schema schema;
  for (size_t c = 0; c < names.size(); ++c) {
    schema.AddField(names[c], types[c]);
  }
  return ReadCsv(path, schema, options);
}

}  // namespace mlcs::io
