#include "common/logging.h"

#include <atomic>
#include <cstdio>

#include "common/mutex.h"

namespace mlcs {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};
Mutex g_log_mutex{"g_log_mutex"};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level));
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load());
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < g_log_level.load()) return;
  MutexLock lock(&g_log_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal
}  // namespace mlcs
