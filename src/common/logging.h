#ifndef MLCS_COMMON_LOGGING_H_
#define MLCS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace mlcs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Structured key=value suffix for log lines, so operational warnings stay
/// machine-greppable:
///
///   MLCS_LOG(kWarn) << "dropped spans " << Kv("trace_id", id) << Kv("n", n);
///     → [WARN ...] dropped spans trace_id=7 n=42
///
/// String values are quoted; every pair carries one trailing space.
template <typename T>
std::string Kv(const char* key, const T& value) {
  std::ostringstream s;
  s << key << '=' << value << ' ';
  return s.str();
}
inline std::string Kv(const char* key, const std::string& value) {
  return std::string(key) + "=\"" + value + "\" ";
}
inline std::string Kv(const char* key, const char* value) {
  return Kv(key, std::string(value));
}

/// Sets the minimum level that is actually emitted (default: kWarn, so
/// library internals stay quiet in tests and benchmarks).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction. Use via the MLCS_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace mlcs

#define MLCS_LOG(level)                                               \
  ::mlcs::internal::LogMessage(::mlcs::LogLevel::level, __FILE__, __LINE__)

#endif  // MLCS_COMMON_LOGGING_H_
