#ifndef MLCS_COMMON_LOGGING_H_
#define MLCS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace mlcs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the minimum level that is actually emitted (default: kWarn, so
/// library internals stay quiet in tests and benchmarks).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction. Use via the MLCS_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace mlcs

#define MLCS_LOG(level)                                               \
  ::mlcs::internal::LogMessage(::mlcs::LogLevel::level, __FILE__, __LINE__)

#endif  // MLCS_COMMON_LOGGING_H_
