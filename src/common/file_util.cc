#include "common/file_util.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace mlcs {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// Durability for the rename itself: without a directory fsync the new
/// directory entry may not survive a crash even though the file data does.
/// Best-effort — some filesystems refuse O_RDONLY fsync on directories.
void FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  (void)::fsync(fd);
  (void)::close(fd);
}

}  // namespace

Status AtomicWriteFile(const std::string& path, const void* data,
                       size_t size) {
  std::string tmp = path + ".tmp";
  FilePtr f(std::fopen(tmp.c_str(), "wb"));
  if (f == nullptr) {
    return Status::IoError("cannot open '" + tmp + "' for writing: " +
                           std::strerror(errno));
  }
  if (size > 0 && std::fwrite(data, 1, size, f.get()) != size) {
    f.reset();
    (void)std::remove(tmp.c_str());
    return Status::IoError("short write to '" + tmp + "'");
  }
  if (std::fflush(f.get()) != 0 || ::fsync(::fileno(f.get())) != 0) {
    f.reset();
    (void)std::remove(tmp.c_str());
    return Status::IoError("fsync of '" + tmp + "' failed: " +
                           std::strerror(errno));
  }
  f.reset();  // close before rename
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)std::remove(tmp.c_str());
    return Status::IoError("rename '" + tmp + "' -> '" + path +
                           "' failed: " + std::strerror(errno));
  }
  FsyncDir(ParentDir(path));
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  if (::fseeko(f.get(), 0, SEEK_END) != 0) {
    return Status::IoError("cannot seek '" + path + "'");
  }
  off_t file_size = ::ftello(f.get());
  if (file_size < 0) return Status::IoError("cannot stat '" + path + "'");
  std::rewind(f.get());
  std::vector<uint8_t> bytes(static_cast<size_t>(file_size));
  if (!bytes.empty() &&
      std::fread(bytes.data(), 1, bytes.size(), f.get()) != bytes.size()) {
    return Status::IoError("short read from '" + path + "'");
  }
  return bytes;
}

Result<std::vector<uint8_t>> ReadFileRegion(const std::string& path,
                                            uint64_t offset,
                                            uint64_t length) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  // fseeko takes an off_t — never a (possibly 32-bit) long, which would
  // silently truncate offsets past 2 GiB and read the wrong region.
  if (offset > static_cast<uint64_t>(std::numeric_limits<off_t>::max())) {
    return Status::IoError("offset " + std::to_string(offset) +
                           " in '" + path +
                           "' exceeds the platform file-offset range");
  }
  if (::fseeko(f.get(), static_cast<off_t>(offset), SEEK_SET) != 0) {
    return Status::IoError("cannot seek to " + std::to_string(offset) +
                           " in '" + path + "'");
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(length));
  if (length > 0 &&
      std::fread(bytes.data(), 1, bytes.size(), f.get()) != bytes.size()) {
    return Status::IoError(
        "'" + path + "' is truncated: wanted " + std::to_string(length) +
        " bytes at offset " + std::to_string(offset));
  }
  return bytes;
}

Status MakeDirs(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("MakeDirs: empty path");
  std::string partial;
  size_t pos = 0;
  while (pos <= path.size()) {
    size_t slash = path.find('/', pos);
    if (slash == std::string::npos) slash = path.size();
    partial = path.substr(0, slash);
    pos = slash + 1;
    if (partial.empty()) continue;  // leading '/'
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IoError("mkdir '" + partial + "' failed: " +
                             std::strerror(errno));
    }
  }
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::IoError("'" + path + "' is not a directory");
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

bool RemoveFileIfExists(const std::string& path) {
  return std::remove(path.c_str()) == 0;
}

}  // namespace mlcs
