#ifndef MLCS_COMMON_BYTE_BUFFER_H_
#define MLCS_COMMON_BYTE_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace mlcs {

/// Append-only little-endian binary writer. Shared by model serialization
/// ("pickle"), the wire protocols, and the on-disk file formats.
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Fixed-width primitives, written little-endian (the host is assumed
  /// little-endian; static_assert'ed in byte_buffer.cc).
  void WriteU8(uint8_t v) { buffer_.push_back(v); }
  void WriteU16(uint16_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI32(int32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { WriteRaw(&v, sizeof(v)); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }

  /// Length-prefixed (u32) byte string.
  void WriteString(const std::string& s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    WriteRaw(s.data(), s.size());
  }

  /// Raw bytes with no length prefix.
  // GCC 12 constant-propagates small fixed-size writes through this
  // resize+memcpy when it inlines into a caller (notably at -O3 under
  // -fsanitize=thread) and reports bogus -Wstringop-overflow /
  // -Warray-bounds against libstdc++'s own vector internals — a known
  // GCC 12 false-positive class (DESIGN.md §7). The repo builds -Werror,
  // so suppress the pair for exactly this function.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"
#pragma GCC diagnostic ignored "-Warray-bounds"
  void WriteRaw(const void* data, size_t size) {
    if (size == 0) return;
    size_t old_size = buffer_.size();
    buffer_.resize(old_size + size);
    std::memcpy(buffer_.data() + old_size, data, size);
  }
#pragma GCC diagnostic pop

  /// Variable-length unsigned integer (LEB128); compact counts in formats.
  void WriteVarint(uint64_t v) {
    while (v >= 0x80) {
      WriteU8(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    WriteU8(static_cast<uint8_t>(v));
  }

  const std::vector<uint8_t>& data() const { return buffer_; }
  size_t size() const { return buffer_.size(); }

  /// Moves the accumulated bytes out as a std::string (BLOB payload).
  std::string TakeString() {
    std::string out(reinterpret_cast<const char*>(buffer_.data()),
                    buffer_.size());
    buffer_.clear();
    return out;
  }

 private:
  std::vector<uint8_t> buffer_;
};

/// Bounds-checked little-endian reader over a borrowed byte span.
/// All reads return Status/Result; truncated input is reported as
/// kOutOfRange, never UB.
class ByteReader {
 public:
  ByteReader(const void* data, size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size) {}
  explicit ByteReader(const std::string& s) : ByteReader(s.data(), s.size()) {}
  explicit ByteReader(const std::vector<uint8_t>& v)
      : ByteReader(v.data(), v.size()) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] bool AtEnd() const { return pos_ == size_; }

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int32_t> ReadI32();
  Result<int64_t> ReadI64();
  Result<double> ReadDouble();
  Result<bool> ReadBool();
  Result<std::string> ReadString();
  Result<uint64_t> ReadVarint();

  /// Copies `size` bytes into `out`.
  Status ReadRaw(void* out, size_t size);
  /// Advances without copying.
  Status Skip(size_t size);

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace mlcs

#endif  // MLCS_COMMON_BYTE_BUFFER_H_
