#ifndef MLCS_COMMON_STATUS_H_
#define MLCS_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace mlcs {

/// Error categories used across the library. Modeled after the RocksDB /
/// Arrow Status idiom: library code never throws; every fallible operation
/// returns a Status (or a Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIoError,
  kParseError,
  kTypeMismatch,
  kNotImplemented,
  kInternal,
  kNetworkError,
};

/// Returns a human-readable name for a status code ("Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// A Status carries either success (ok) or an error code plus message.
/// Cheap to copy in the OK case (empty message string).
///
/// The class itself is [[nodiscard]]: any function returning a Status by
/// value must have its result checked (or explicitly handled) at every
/// call site — dropping an error is a compile error under -Werror.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NetworkError(std::string msg) {
    return Status(StatusCode::kNetworkError, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "<code name>: <message>", or "OK".
  [[nodiscard]] std::string ToString() const;

  [[nodiscard]] bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

namespace internal {
/// Prints `status` with the failing expression and location, then aborts.
/// Out-of-line so the macro below stays cheap at every call site.
[[noreturn]] void AbortOnBadStatus(const Status& status, const char* expr,
                                   const char* file, int line);
}  // namespace internal

}  // namespace mlcs

/// Asserts that `expr` yields an OK Status, aborting with the error text
/// otherwise. For call sites (main(), tests, benchmarks) where propagation
/// is impossible and failure is a programming error.
#define MLCS_CHECK_OK(expr)                                                 \
  do {                                                                      \
    ::mlcs::Status _st = (expr);                                            \
    if (!_st.ok()) {                                                        \
      ::mlcs::internal::AbortOnBadStatus(_st, #expr, __FILE__, __LINE__);   \
    }                                                                       \
  } while (0)

/// Propagates a non-OK Status to the caller.
#define MLCS_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::mlcs::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                    \
  } while (0)

#define MLCS_CONCAT_IMPL(a, b) a##b
#define MLCS_CONCAT(a, b) MLCS_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; on error propagates the Status,
/// otherwise moves the value into `lhs` (which may be a declaration).
#define MLCS_ASSIGN_OR_RETURN(lhs, expr)                        \
  auto MLCS_CONCAT(_res_, __LINE__) = (expr);                   \
  if (!MLCS_CONCAT(_res_, __LINE__).ok())                       \
    return MLCS_CONCAT(_res_, __LINE__).status();               \
  lhs = std::move(MLCS_CONCAT(_res_, __LINE__)).ValueOrDie()

#endif  // MLCS_COMMON_STATUS_H_
