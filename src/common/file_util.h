#ifndef MLCS_COMMON_FILE_UTIL_H_
#define MLCS_COMMON_FILE_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace mlcs {

/// Crash-safe file replacement: writes `<path>.tmp`, fsyncs it, then
/// atomically renames it over `path` (and best-effort fsyncs the parent
/// directory). A crash at any point leaves either the old file or the new
/// one — never a torn mix — which is the durability contract every block
/// and manifest write in the storage layer relies on (DESIGN.md §12).
Status AtomicWriteFile(const std::string& path, const void* data,
                       size_t size);

/// Whole-file read into a byte vector.
Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path);

/// Reads exactly `length` bytes starting at `offset`. A file too short for
/// the requested region is an IoError — torn or truncated writes surface
/// here as a clean Status, never as UB downstream.
Result<std::vector<uint8_t>> ReadFileRegion(const std::string& path,
                                            uint64_t offset,
                                            uint64_t length);

/// mkdir -p: creates `path` and any missing parents; existing directories
/// are success.
Status MakeDirs(const std::string& path);

[[nodiscard]] bool FileExists(const std::string& path);

/// Best-effort unlink. Returns true when a file was actually removed.
bool RemoveFileIfExists(const std::string& path);

}  // namespace mlcs

#endif  // MLCS_COMMON_FILE_UTIL_H_
