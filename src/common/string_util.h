#ifndef MLCS_COMMON_STRING_UTIL_H_
#define MLCS_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace mlcs {

/// Splits on a single character; keeps empty fields.
std::vector<std::string> SplitString(std::string_view input, char delim);

/// Removes ASCII whitespace from both ends.
std::string_view TrimView(std::string_view s);
std::string Trim(std::string_view s);

std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

/// Joins with a separator.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Case-insensitive ASCII equality (SQL keywords, type names).
[[nodiscard]] bool EqualsIgnoreCase(std::string_view a, std::string_view b);

[[nodiscard]] bool StartsWith(std::string_view s, std::string_view prefix);
[[nodiscard]] bool EndsWith(std::string_view s, std::string_view suffix);

/// Strict numeric parsing built on std::from_chars: the whole (trimmed)
/// string must be consumed, otherwise kParseError.
Result<int64_t> ParseInt64(std::string_view s);
Result<int32_t> ParseInt32(std::string_view s);
Result<double> ParseDouble(std::string_view s);

/// Formats a double the way a text protocol would (shortest round-trip).
std::string FormatDouble(double v);

}  // namespace mlcs

#endif  // MLCS_COMMON_STRING_UTIL_H_
