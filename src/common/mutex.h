#ifndef MLCS_COMMON_MUTEX_H_
#define MLCS_COMMON_MUTEX_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/annotations.h"

namespace mlcs {

namespace internal {
/// -1: undecided, 0: off, 1: on. Resolved on first use from the build
/// default + MLCS_LOCK_DEBUG; writable via SetDeadlockDetectionForTesting.
extern std::atomic<int> g_lock_debug_state;
/// Resolves the undecided state (mutex.cc); returns the decision.
bool DecideLockDebug();

/// Inline so the Release fast path is one relaxed load + branch around
/// the bare std::mutex — the facade's zero-overhead contract.
inline bool LockDebugEnabled() {
  int state = g_lock_debug_state.load(std::memory_order_relaxed);
  if (state >= 0) return state != 0;
  return DecideLockDebug();
}
}  // namespace internal

/// The repo's one mutex type (DESIGN.md §11). A thin facade over
/// std::mutex that adds two things:
///
///  1. Thread-safety annotations: the class is a clang capability, so
///     `MLCS_GUARDED_BY(mu_)` members and `MLCS_REQUIRES(mu_)` helpers are
///     machine-checked wherever clang is available (scripts/check.sh
///     --analyze). Under g++ the annotations compile away.
///
///  2. A potential-deadlock detector (absl-style): when enabled, every
///     acquisition records "held → acquired" edges into a process-wide
///     lock-order graph and keeps a per-thread held-lock set. The first
///     acquisition that would close a cycle — including a self-deadlock —
///     aborts immediately, printing the acquiring stack plus the stack
///     captured when each conflicting edge was first recorded. A seeded
///     A→B / B→A inversion is therefore caught on the first run even if
///     the threads never actually interleave into the hang.
///
/// Detection defaults ON in Debug and sanitizer builds (mutex.cc compiled
/// with !NDEBUG or MLCS_ENABLE_LOCK_DEBUG) and OFF in Release, where
/// Lock()/Unlock() are a relaxed atomic flag test away from bare
/// std::mutex (measured within noise on abl-par-exec, EXPERIMENTS.md
/// abl-lockdisc). The MLCS_LOCK_DEBUG env var (0/1) overrides the build
/// default at process start.
///
/// Wait attribution (DESIGN.md §15): the uncontended path is a plain
/// try_lock (same single CAS as lock). Only when that fails — the thread
/// is actually about to block — is the blocking acquisition timed and
/// recorded into this mutex's named WaitSite
/// (`mlcs.wait.lock.<name>.*`), in both release and detector builds. The
/// resolved site pointer is cached per-mutex, so steady-state contention
/// cost is one clock pair plus a few relaxed atomic bumps.
class MLCS_CAPABILITY("mutex") Mutex {
 public:
  /// `name` must outlive the mutex (string literals); it labels the node
  /// in detector reports.
  explicit Mutex(const char* name = "mlcs::Mutex") : name_(name) {}
  ~Mutex();

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MLCS_ACQUIRE() {
    if (!internal::LockDebugEnabled()) {
      if (mu_.try_lock()) return;
      LockContended();
      return;
    }
    LockSlow();
  }
  void Unlock() MLCS_RELEASE() {
    if (!internal::LockDebugEnabled()) {
      mu_.unlock();
      return;
    }
    UnlockSlow();
  }
  [[nodiscard]] bool TryLock() MLCS_TRY_ACQUIRE(true) {
    if (!internal::LockDebugEnabled()) return mu_.try_lock();
    return TryLockSlow();
  }

  const char* name() const { return name_; }

  /// Whether acquisitions are currently being order-checked.
  static bool DeadlockDetectionEnabled();
  /// Overrides the build-default/env decision (tests force it on so the
  /// inversion death test triggers in every build type, Release included).
  static void SetDeadlockDetectionForTesting(bool enabled);
  /// Drops every recorded lock-order edge — lets a test seed a fresh graph
  /// without inheriting orderings from earlier tests in the process.
  static void ResetDeadlockGraphForTesting();

 private:
  friend class CondVar;

  /// Detector paths: held-set and lock-order-graph bookkeeping (mutex.cc).
  void LockSlow();
  void UnlockSlow();
  bool TryLockSlow();
  /// Blocking acquisition after a failed try_lock: times the block and
  /// records it into the wait site (mutex.cc).
  void LockContended();
  void RecordContendedWait(std::chrono::steady_clock::time_point start);

  std::mutex mu_;
  const char* name_;
  /// Lazily resolved obs::WaitSite*, cached after the first contended
  /// acquisition (type-erased: common/ must not depend on obs/ headers).
  std::atomic<void*> wait_site_{nullptr};
};

/// RAII lock for the scope — the only way code outside this header should
/// acquire a Mutex. Declared a scoped capability so clang tracks it.
class MLCS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) MLCS_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() MLCS_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex* const mu_;
};

/// Condition variable paired with mlcs::Mutex. No predicate overloads on
/// purpose: clang's analysis cannot see through predicate lambdas, so wait
/// sites spell the loop (`while (!ReadyLocked()) cv_.Wait(lock);`) and keep
/// every guarded-member access inside an analyzable scope. Wait keeps the
/// detector's held-set honest: the mutex leaves the calling thread's held
/// set for the duration of the block and is re-checked on re-acquisition.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`'s mutex and blocks; re-acquires before
  /// returning. As with std::condition_variable, spurious wakeups happen —
  /// always wait in a predicate loop.
  void Wait(MutexLock& lock);

  /// Wait with a deadline; false when it returned because the deadline
  /// passed (the mutex is re-held either way).
  [[nodiscard]] bool WaitUntil(MutexLock& lock,
                               std::chrono::steady_clock::time_point deadline);

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mlcs

#endif  // MLCS_COMMON_MUTEX_H_
