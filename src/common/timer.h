#ifndef MLCS_COMMON_TIMER_H_
#define MLCS_COMMON_TIMER_H_

#include <chrono>

namespace mlcs {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mlcs

#endif  // MLCS_COMMON_TIMER_H_
