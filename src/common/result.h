#ifndef MLCS_COMMON_RESULT_H_
#define MLCS_COMMON_RESULT_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "common/status.h"

namespace mlcs {

/// Result<T> holds either a value of type T or an error Status.
/// The usual access pattern is via MLCS_ASSIGN_OR_RETURN, or explicit
/// `if (!r.ok()) ...; use(r.ValueOrDie());`.
///
/// Like Status, the class is [[nodiscard]]: ignoring a returned Result<T>
/// silently drops both the value and any error, so it is a compile error
/// under -Werror.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value: `return my_table;`.
  Result(T value) : value_(std::move(value)) {}
  /// Implicit construction from an error status: `return Status::...;`.
  /// Constructing from an OK status is a programming error and aborts.
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      // A Result without a value must carry an error.
      std::abort();
    }
  }

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  /// Returns the contained value. Must only be called when ok().
  [[nodiscard]] const T& ValueOrDie() const& {
    if (!ok()) std::abort();
    return *value_;
  }
  [[nodiscard]] T& ValueOrDie() & {
    if (!ok()) std::abort();
    return *value_;
  }
  [[nodiscard]] T&& ValueOrDie() && {
    if (!ok()) std::abort();
    return std::move(*value_);
  }

  /// Returns the value or `fallback` when this holds an error.
  [[nodiscard]] T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mlcs

#endif  // MLCS_COMMON_RESULT_H_
