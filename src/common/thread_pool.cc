#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>

namespace mlcs {

size_t ThreadPool::DefaultThreadCount() {
  const char* env = std::getenv("MLCS_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    long parsed = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && parsed > 0) {
      return static_cast<size_t>(parsed);
    }
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(size_t num_threads) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  queue_depth_ = registry.GetGauge("mlcs.threadpool.queue_depth");
  tasks_completed_ = registry.GetCounter("mlcs.threadpool.tasks_completed");
  task_wait_us_ = registry.GetHistogram(
      "mlcs.threadpool.task_wait_us",
      {50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 100000});
  dispatch_wait_ =
      obs::WaitStats::Global().GetSite(obs::WaitKind::kPool, "dispatch");
  if (num_threads == 0) {
    num_threads = DefaultThreadCount();
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mutex_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  auto enqueued = std::chrono::steady_clock::now();
  std::packaged_task<void()> packaged(
      [this, enqueued, task = std::move(task)] {
        auto started = std::chrono::steady_clock::now();
        auto waited = started - enqueued;
        task_wait_us_->Observe(
            std::chrono::duration<double, std::micro>(waited).count());
        dispatch_wait_->RecordWaitNs(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(waited)
                .count()));
        task();
        tasks_completed_->Add(1);
      });
  std::future<void> fut = packaged.get_future();
  {
    MutexLock lock(&mutex_);
    tasks_.push(std::move(packaged));
  }
  queue_depth_->Add(1);
  cv_.NotifyOne();
  return fut;
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  ParallelForChunks(count, num_threads(),
                    [&fn](size_t, size_t begin, size_t end) {
                      for (size_t i = begin; i < end; ++i) fn(i);
                    });
}

void ThreadPool::ParallelForChunks(
    size_t count, size_t num_chunks,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (count == 0) return;
  num_chunks = std::max<size_t>(1, std::min(num_chunks, count));
  if (num_chunks == 1) {
    fn(0, 0, count);
    return;
  }
  size_t chunk_size = (count + num_chunks - 1) / num_chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(num_chunks);
  for (size_t c = 0; c < num_chunks; ++c) {
    size_t begin = c * chunk_size;
    size_t end = std::min(count, begin + chunk_size);
    if (begin >= end) break;
    futures.push_back(Submit([&fn, c, begin, end] { fn(c, begin, end); }));
  }
  for (auto& f : futures) f.wait();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      MutexLock lock(&mutex_);
      while (!shutdown_ && tasks_.empty()) cv_.Wait(lock);
      if (tasks_.empty()) return;  // shutdown requested and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    queue_depth_->Add(-1);
    task();
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

}  // namespace mlcs
