#ifndef MLCS_COMMON_PARALLEL_FOR_H_
#define MLCS_COMMON_PARALLEL_FOR_H_

#include <cstddef>
#include <functional>

#include "common/status.h"
#include "common/thread_pool.h"

namespace mlcs {

/// Morsel-driven scheduling policy for the relational operators (HyPer-style
/// fixed-size morsels handed out over the shared ThreadPool).
///
/// The invariant the whole engine relies on: morsel boundaries are a pure
/// function of (row count, morsel_rows) and never of the thread count, so
/// any operator that accumulates per-morsel partial state and merges it in
/// morsel order produces bit-identical results at every degree of
/// parallelism — including nthreads == 1, which runs the same morsels
/// inline on the caller thread with no task handoff at all.
struct MorselPolicy {
  /// Pool the morsels run on; nullptr means ThreadPool::Global() (whose
  /// size the MLCS_THREADS environment variable controls).
  ThreadPool* pool = nullptr;
  /// Fixed morsel width in rows. Large enough that per-morsel dispatch is
  /// noise, small enough that a typical column batch still splits into
  /// several units of work per core.
  size_t morsel_rows = 16 * 1024;

  ThreadPool& resolved_pool() const {
    return pool != nullptr ? *pool : ThreadPool::Global();
  }
  size_t threads() const { return resolved_pool().num_threads(); }
};

/// Number of fixed-width morsels [0, count) splits into under `policy`.
/// Depends only on count and policy.morsel_rows (determinism invariant).
size_t NumMorsels(const MorselPolicy& policy, size_t count);

/// True when ParallelMorsels would actually fan out (more than one morsel
/// and more than one pool thread). Operators whose serial form is cheaper
/// than slice-and-splice (element-wise kernels) use this to keep the
/// single-threaded path byte-for-byte the pre-morsel code.
bool ShouldParallelize(const MorselPolicy& policy, size_t count);

/// Runs fn(morsel_index, begin, end) for every fixed-width morsel of
/// [0, count), fanning out over the policy's pool. Chunk handoff is a
/// single atomic counter (no per-morsel queue round trip, no stealing);
/// the caller thread participates, so progress never depends on pool
/// capacity and nesting inside a pool worker cannot deadlock.
///
/// Error contract: the first non-OK Status wins and is returned; morsels
/// not yet claimed when the failure lands are skipped (cancellation).
/// Morsels already running complete. fn must be thread-safe across
/// distinct morsels.
///
/// Serial fast path: with one pool thread or one morsel, fn runs inline on
/// the caller for each morsel in order — same boundaries, no tasks, no
/// synchronization.
Status ParallelMorsels(const MorselPolicy& policy, size_t count,
                       const std::function<Status(size_t, size_t, size_t)>& fn);

/// Coarse-grained variant: runs fn(item) for each item in [0, count) with
/// one item per handoff (columns, hash-join partitions, merge pairs —
/// units that are already thread-sized). Same pool, participation, and
/// first-error semantics as ParallelMorsels.
Status ParallelItems(const MorselPolicy& policy, size_t count,
                     const std::function<Status(size_t)>& fn);

}  // namespace mlcs

#endif  // MLCS_COMMON_PARALLEL_FOR_H_
