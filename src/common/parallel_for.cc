#include "common/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/mutex.h"

namespace mlcs {

namespace {

size_t MorselWidth(const MorselPolicy& policy) {
  return std::max<size_t>(1, policy.morsel_rows);
}

}  // namespace

size_t NumMorsels(const MorselPolicy& policy, size_t count) {
  if (count == 0) return 0;
  size_t width = MorselWidth(policy);
  return 1 + (count - 1) / width;  // overflow-safe ceil-div; count > 0 here
}

bool ShouldParallelize(const MorselPolicy& policy, size_t count) {
  return NumMorsels(policy, count) > 1 && policy.threads() > 1;
}

Status ParallelMorsels(
    const MorselPolicy& policy, size_t count,
    const std::function<Status(size_t, size_t, size_t)>& fn) {
  if (count == 0) return Status::OK();
  const size_t width = MorselWidth(policy);
  const size_t morsels = NumMorsels(policy, count);
  ThreadPool& pool = policy.resolved_pool();

  if (morsels == 1 || pool.num_threads() <= 1) {
    // Serial fast path: identical morsel boundaries, zero handoff.
    for (size_t m = 0; m < morsels; ++m) {
      size_t begin = m * width;
      MLCS_RETURN_IF_ERROR(fn(m, begin, std::min(count, begin + width)));
    }
    return Status::OK();
  }

  // Shared drain state. Heap-allocated and shared_ptr-held because helper
  // tasks that lose every claim race may only get scheduled after the
  // caller has already returned; they must still find live state.
  struct State {
    std::atomic<size_t> next{0};    // morsel handoff cursor
    std::atomic<size_t> settled{0}; // morsels run or skipped
    std::atomic<bool> failed{false};
    Mutex mu{"ParallelMorsels::State::mu"};
    CondVar cv;
    Status error MLCS_GUARDED_BY(mu) = Status::OK();
  };
  auto state = std::make_shared<State>();

  // Each runner claims morsels off the atomic cursor until none remain.
  // The caller runs this loop too, so all morsels complete even if the
  // pool never schedules a helper (saturated pool, nested parallelism).
  const std::function<Status(size_t, size_t, size_t)>* fn_ptr = &fn;
  auto drain = [state, fn_ptr, morsels, width, count] {
    size_t m;
    while ((m = state->next.fetch_add(1)) < morsels) {
      if (!state->failed.load(std::memory_order_acquire)) {
        size_t begin = m * width;
        // fn_ptr stays valid: every morsel is claimed before the caller's
        // own drain loop exits, and the caller blocks until all claimed
        // morsels settle.
        Status s = (*fn_ptr)(m, begin, std::min(count, begin + width));
        if (!s.ok()) {
          bool expected = false;
          if (state->failed.compare_exchange_strong(expected, true)) {
            MutexLock lock(&state->mu);
            state->error = std::move(s);
          }
        }
      }
      if (state->settled.fetch_add(1) + 1 == morsels) {
        MutexLock lock(&state->mu);  // pairs with the wait
        state->cv.NotifyAll();
      }
    }
  };

  size_t helpers = std::min(pool.num_threads(), morsels) - 1;
  for (size_t i = 0; i < helpers; ++i) {
    (void)pool.Submit(drain);
  }
  drain();

  MutexLock lock(&state->mu);
  while (state->settled.load() != morsels) state->cv.Wait(lock);
  // All writers of `error` finished before the last settle; reading under
  // the same mutex the winner wrote under makes it visible here.
  return state->failed.load() ? state->error : Status::OK();
}

Status ParallelItems(const MorselPolicy& policy, size_t count,
                     const std::function<Status(size_t)>& fn) {
  MorselPolicy item_policy = policy;
  item_policy.morsel_rows = 1;  // one coarse item per handoff
  return ParallelMorsels(item_policy, count,
                         [&fn](size_t item, size_t, size_t) {
                           return fn(item);
                         });
}

}  // namespace mlcs
