#ifndef MLCS_COMMON_ANNOTATIONS_H_
#define MLCS_COMMON_ANNOTATIONS_H_

/// Clang thread-safety analysis annotations (DESIGN.md §11).
///
/// The repo builds with g++ (which ignores these attributes) but the lock
/// discipline is written against clang's -Wthread-safety analysis: every
/// guarded member declares its mutex with MLCS_GUARDED_BY, every function
/// with a locking precondition declares it with MLCS_REQUIRES, and
/// `scripts/check.sh --analyze` runs `clang++ -fsyntax-only -Wthread-safety`
/// over the tree whenever clang is available (CI always; the dev container
/// opportunistically). Under g++ every macro expands to nothing, so the
/// annotations are zero-cost documentation that a second compiler can prove.
///
/// Vocabulary (mirrors clang's capability model, absl-style spellings):
///   MLCS_CAPABILITY("mutex")   class is a lockable capability (mlcs::Mutex)
///   MLCS_SCOPED_CAPABILITY     RAII type that acquires/releases in ctor/dtor
///   MLCS_GUARDED_BY(mu)        member may only be touched while `mu` is held
///   MLCS_PT_GUARDED_BY(mu)     pointee guarded (the pointer itself is not)
///   MLCS_REQUIRES(mu, ...)     caller must hold `mu` (…Locked() helpers)
///   MLCS_ACQUIRE(mu, ...)      function acquires and does not release
///   MLCS_RELEASE(mu, ...)      function releases a held capability
///   MLCS_TRY_ACQUIRE(b, mu)    try-lock: acquired when the result equals b
///   MLCS_EXCLUDES(mu, ...)     caller must NOT hold `mu` (non-reentrant API)
///   MLCS_RETURN_CAPABILITY(mu) accessor returning a reference to `mu`
///   MLCS_NO_THREAD_SAFETY_ANALYSIS  opt a function out (init/teardown paths)

#if defined(__clang__)
#define MLCS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define MLCS_THREAD_ANNOTATION_(x)  // g++: attributes unsupported, expand away
#endif

#define MLCS_CAPABILITY(x) MLCS_THREAD_ANNOTATION_(capability(x))
#define MLCS_SCOPED_CAPABILITY MLCS_THREAD_ANNOTATION_(scoped_lockable)
#define MLCS_GUARDED_BY(x) MLCS_THREAD_ANNOTATION_(guarded_by(x))
#define MLCS_PT_GUARDED_BY(x) MLCS_THREAD_ANNOTATION_(pt_guarded_by(x))
#define MLCS_REQUIRES(...) \
  MLCS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define MLCS_REQUIRES_SHARED(...) \
  MLCS_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define MLCS_ACQUIRE(...) \
  MLCS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define MLCS_RELEASE(...) \
  MLCS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define MLCS_TRY_ACQUIRE(...) \
  MLCS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define MLCS_EXCLUDES(...) MLCS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define MLCS_RETURN_CAPABILITY(x) MLCS_THREAD_ANNOTATION_(lock_returned(x))
#define MLCS_ASSERT_CAPABILITY(x) \
  MLCS_THREAD_ANNOTATION_(assert_capability(x))
#define MLCS_NO_THREAD_SAFETY_ANALYSIS \
  MLCS_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // MLCS_COMMON_ANNOTATIONS_H_
