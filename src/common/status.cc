#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace mlcs {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kTypeMismatch:
      return "Type mismatch";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kNetworkError:
      return "Network error";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace internal {

void AbortOnBadStatus(const Status& status, const char* expr,
                      const char* file, int line) {
  std::fprintf(stderr, "%s:%d: MLCS_CHECK_OK(%s) failed: %s\n", file, line,
               expr, status.ToString().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal

}  // namespace mlcs
