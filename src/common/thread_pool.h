#ifndef MLCS_COMMON_THREAD_POOL_H_
#define MLCS_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "obs/metrics.h"
#include "obs/wait_stats.h"

namespace mlcs {

/// Fixed-size worker pool. Supports fire-and-forget Submit plus a blocking
/// ParallelFor used by the chunked UDF driver and random-forest training.
class ThreadPool {
 public:
  /// `num_threads == 0` means DefaultThreadCount().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; returns a future for completion/raised value.
  std::future<void> Submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, count), partitioned across the pool, and
  /// blocks until all iterations finish. fn must be thread-safe.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

  /// Splits [0, count) into `num_chunks` contiguous ranges and runs
  /// fn(chunk_index, begin, end) for each in parallel.
  void ParallelForChunks(
      size_t count, size_t num_chunks,
      const std::function<void(size_t, size_t, size_t)>& fn);

  /// Process-wide shared pool (lazily constructed, never destroyed —
  /// avoids static destruction order issues per Google style).
  static ThreadPool& Global();

  /// The one knob that governs the whole stack: MLCS_THREADS (positive
  /// integer) when set, otherwise hardware_concurrency (min 1). Global()
  /// is sized with this, so the SQL executor, the parallel relational
  /// operators, UDF chunking, RF training, and the inference server all
  /// follow it. Benches record it in their BENCH_<name>.json.
  static size_t DefaultThreadCount();

 private:
  void WorkerLoop();

  /// Written before the workers start, joined+cleared only in the dtor.
  std::vector<std::thread> workers_;  // lint:allow(guarded-member)
  Mutex mutex_{"ThreadPool::mutex_"};
  CondVar cv_;
  std::queue<std::packaged_task<void()>> tasks_ MLCS_GUARDED_BY(mutex_);
  bool shutdown_ MLCS_GUARDED_BY(mutex_) = false;
  /// Process-wide pool metrics (all ThreadPool instances share the series):
  /// `mlcs.threadpool.queue_depth` (gauge), `.tasks_completed` (counter),
  /// `.task_wait_us` (histogram of enqueue→dequeue latency).
  obs::Gauge* queue_depth_;
  obs::Counter* tasks_completed_;
  obs::Histogram* task_wait_us_;
  /// Same enqueue→dequeue latency mirrored into the wait-attribution
  /// registry (`mlcs.wait.pool.dispatch`) so dispatch delay shows up next
  /// to lock/queue/bufpool blocking in one place (DESIGN.md §15).
  obs::WaitSite* dispatch_wait_;
};

}  // namespace mlcs

#endif  // MLCS_COMMON_THREAD_POOL_H_
