#include "common/mutex.h"

#include <execinfo.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/wait_stats.h"

namespace mlcs {
namespace {

/// ----- potential-deadlock detector (DESIGN.md §11) -------------------------
///
/// Per-thread held-lock stacks plus a process-wide lock-order graph keyed
/// by mutex address. Acquiring M while holding H records the edge H → M;
/// if M already reaches H through recorded edges, the new edge closes a
/// cycle and the process aborts with the acquiring stack and the stack
/// captured when each conflicting edge was first recorded. Edges are
/// checked once (on first sighting), so the steady-state cost of a known
/// ordering is two hash lookups under the graph mutex. Destroyed mutexes
/// leave the graph, which both bounds its size and keeps address reuse
/// from fabricating orderings.

constexpr int kMaxFrames = 32;

struct StackTrace {
  void* frames[kMaxFrames];
  int depth = 0;
};

void CaptureStack(StackTrace* st) {
  st->depth = ::backtrace(st->frames, kMaxFrames);
}

/// Reporting uses raw fprintf, not MLCS_LOG: the logger takes its own
/// facade mutex, and the report path runs with the graph mutex held.
void PrintStack(const StackTrace& st, const char* indent) {
  char** symbols = ::backtrace_symbols(st.frames, st.depth);
  for (int i = 0; i < st.depth; ++i) {
    std::fprintf(stderr, "%s%s\n", indent,
                 symbols != nullptr ? symbols[i] : "<unresolved frame>");
  }
  std::free(symbols);
}

uint64_t CurrentThreadId() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

struct Edge {
  StackTrace stack;  // where this "acquired while holding" was first seen
  uint64_t tid = 0;
};

using EdgeMap = std::unordered_map<const Mutex*, Edge>;
using LockGraph = std::unordered_map<const Mutex*, EdgeMap>;

/// Leaky singletons: mutexes locked during static destruction (leaked
/// globals like the ThreadPool) must still find live detector state.
LockGraph& Graph() {
  static auto* graph = new LockGraph();
  return *graph;
}

/// Deliberately a raw std::mutex — the detector cannot bookkeep itself.
std::mutex& GraphMutex() {
  static auto* mu = new std::mutex();
  return *mu;
}

thread_local std::vector<const Mutex*> tls_held;

bool Enabled() { return internal::LockDebugEnabled(); }

[[noreturn]] void ReportSelfDeadlock(const Mutex* mu) {
  StackTrace now;
  CaptureStack(&now);
  std::fprintf(stderr,
               "\n[mlcs::Mutex] SELF-DEADLOCK: thread %llu re-acquiring "
               "\"%s\" (%p) it already holds (mlcs::Mutex is "
               "non-recursive)\n  acquisition stack:\n",
               static_cast<unsigned long long>(CurrentThreadId()), mu->name(),
               static_cast<const void*>(mu));
  PrintStack(now, "    ");
  std::fflush(stderr);
  std::abort();
}

/// DFS over the order graph; fills `path` with from → … → to when
/// reachable. Caller holds GraphMutex().
bool FindPath(const Mutex* from, const Mutex* to,
              std::vector<const Mutex*>* path) {
  std::unordered_map<const Mutex*, const Mutex*> parent;
  std::vector<const Mutex*> stack{from};
  parent.emplace(from, nullptr);
  const LockGraph& graph = Graph();
  while (!stack.empty()) {
    const Mutex* node = stack.back();
    stack.pop_back();
    if (node == to) {
      for (const Mutex* n = to; n != nullptr; n = parent.at(n)) {
        path->push_back(n);
      }
      std::reverse(path->begin(), path->end());
      return true;
    }
    auto it = graph.find(node);
    if (it == graph.end()) continue;
    for (const auto& [next, edge] : it->second) {
      if (parent.emplace(next, node).second) stack.push_back(next);
    }
  }
  return false;
}

/// Caller holds GraphMutex(); `path` runs acquired → … → holder.
[[noreturn]] void ReportCycle(const Mutex* holder, const Mutex* acquired,
                              const std::vector<const Mutex*>& path) {
  StackTrace now;
  CaptureStack(&now);
  std::fprintf(stderr,
               "\n[mlcs::Mutex] POTENTIAL DEADLOCK (lock-order cycle): "
               "thread %llu is acquiring \"%s\" (%p) while holding \"%s\" "
               "(%p)\n  acquisition stack:\n",
               static_cast<unsigned long long>(CurrentThreadId()),
               acquired->name(), static_cast<const void*>(acquired),
               holder->name(), static_cast<const void*>(holder));
  PrintStack(now, "    ");
  std::fprintf(stderr,
               "  ...but the inverse ordering was already established:\n");
  const LockGraph& graph = Graph();
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    const Edge& edge = graph.at(path[i]).at(path[i + 1]);
    std::fprintf(stderr,
                 "  edge \"%s\" -> \"%s\" first recorded on thread %llu "
                 "at:\n",
                 path[i]->name(), path[i + 1]->name(),
                 static_cast<unsigned long long>(edge.tid));
    PrintStack(edge.stack, "    ");
  }
  std::fflush(stderr);
  std::abort();
}

/// Order-checks an impending blocking acquisition of `mu`. Runs *before*
/// the underlying lock: two threads mid-flight into an A→B / B→A hang each
/// record their edge first, so the second records the cycle and aborts
/// instead of deadlocking silently.
void PreAcquireCheck(const Mutex* mu) {
  for (const Mutex* held : tls_held) {
    if (held == mu) ReportSelfDeadlock(mu);
  }
  if (tls_held.empty()) return;
  std::lock_guard<std::mutex> g(GraphMutex());
  for (const Mutex* held : tls_held) {
    EdgeMap& out = Graph()[held];
    if (out.find(mu) != out.end()) continue;  // ordering already vetted
    std::vector<const Mutex*> path;
    if (FindPath(mu, held, &path)) ReportCycle(held, mu, path);
    Edge edge;
    CaptureStack(&edge.stack);
    edge.tid = CurrentThreadId();
    out.emplace(mu, std::move(edge));
  }
}

void PushHeld(const Mutex* mu) { tls_held.push_back(mu); }

void RemoveHeld(const Mutex* mu) {
  // Back-to-front: locks release in roughly LIFO order. A miss is legal
  // only when detection was toggled on mid-process (testing API).
  for (auto it = tls_held.rbegin(); it != tls_held.rend(); ++it) {
    if (*it == mu) {
      tls_held.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace

namespace internal {

std::atomic<int> g_lock_debug_state{-1};

bool DecideLockDebug() {
#if !defined(NDEBUG) || defined(MLCS_ENABLE_LOCK_DEBUG)
  bool enabled = true;  // Debug and sanitizer builds order-check by default
#else
  bool enabled = false;  // Release: bare std::mutex behind one flag test
#endif
  const char* env = std::getenv("MLCS_LOCK_DEBUG");
  if (env != nullptr && *env != '\0') enabled = (*env != '0');
  int expected = -1;
  g_lock_debug_state.compare_exchange_strong(expected, enabled ? 1 : 0,
                                             std::memory_order_relaxed);
  return g_lock_debug_state.load(std::memory_order_relaxed) != 0;
}

}  // namespace internal

Mutex::~Mutex() {
  if (!Enabled()) return;
  std::lock_guard<std::mutex> g(GraphMutex());
  Graph().erase(this);
  for (auto& [node, out] : Graph()) out.erase(this);
}

void Mutex::LockContended() {
  auto start = std::chrono::steady_clock::now();
  mu_.lock();
  RecordContendedWait(start);
}

void Mutex::RecordContendedWait(
    std::chrono::steady_clock::time_point start) {
  auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
  auto* site = static_cast<obs::WaitSite*>(
      wait_site_.load(std::memory_order_acquire));
  if (site == nullptr) {
    // GetSite is lock-free, so resolving the MetricsRegistry mutex's own
    // site cannot recurse. Racing resolvers converge on one site (or a
    // benign duplicate Export merges).
    site = obs::WaitStats::Global().GetSite(obs::WaitKind::kLock, name_);
    wait_site_.store(site, std::memory_order_release);
  }
  site->RecordWaitNs(static_cast<uint64_t>(ns));
}

void Mutex::LockSlow() {
  PreAcquireCheck(this);
  // Wait attribution mirrors the release path: only an actually-blocking
  // acquisition pays for a clock pair and a site record.
  if (!mu_.try_lock()) {
    auto start = std::chrono::steady_clock::now();
    mu_.lock();
    RecordContendedWait(start);
  }
  PushHeld(this);
}

void Mutex::UnlockSlow() {
  RemoveHeld(this);
  mu_.unlock();
}

bool Mutex::TryLockSlow() {
  // A failed or succeeded try-lock can't block, so no order edge is
  // recorded (try-then-back-off is a legitimate inversion-breaking
  // pattern) — but try-locking a mutex this thread holds is still UB.
  for (const Mutex* held : tls_held) {
    if (held == this) ReportSelfDeadlock(this);
  }
  if (!mu_.try_lock()) return false;
  PushHeld(this);
  return true;
}

bool Mutex::DeadlockDetectionEnabled() { return Enabled(); }

void Mutex::SetDeadlockDetectionForTesting(bool enabled) {
  internal::g_lock_debug_state.store(enabled ? 1 : 0,
                                     std::memory_order_relaxed);
}

void Mutex::ResetDeadlockGraphForTesting() {
  std::lock_guard<std::mutex> g(GraphMutex());
  Graph().clear();
}

void CondVar::Wait(MutexLock& lock) {
  Mutex* mu = lock.mu_;
  const bool debug = Mutex::DeadlockDetectionEnabled();
  // The wait releases the mutex while blocked: mirror that in the held
  // set, and order-check the re-acquisition like any other.
  if (debug) RemoveHeld(mu);
  std::unique_lock<std::mutex> ul(mu->mu_, std::adopt_lock);
  cv_.wait(ul);
  ul.release();
  if (debug) {
    PreAcquireCheck(mu);
    PushHeld(mu);
  }
}

bool CondVar::WaitUntil(MutexLock& lock,
                        std::chrono::steady_clock::time_point deadline) {
  Mutex* mu = lock.mu_;
  const bool debug = Mutex::DeadlockDetectionEnabled();
  if (debug) RemoveHeld(mu);
  std::unique_lock<std::mutex> ul(mu->mu_, std::adopt_lock);
  const bool no_timeout = cv_.wait_until(ul, deadline) ==
                          std::cv_status::no_timeout;
  ul.release();
  if (debug) {
    PreAcquireCheck(mu);
    PushHeld(mu);
  }
  return no_timeout;
}

}  // namespace mlcs
