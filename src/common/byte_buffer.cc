#include "common/byte_buffer.h"

#include <bit>

namespace mlcs {

static_assert(std::endian::native == std::endian::little,
              "mlcs serialization assumes a little-endian host");

namespace {
Status Truncated(const char* what) {
  return Status::OutOfRange(std::string("truncated input while reading ") +
                            what);
}
}  // namespace

Result<uint8_t> ByteReader::ReadU8() {
  if (remaining() < 1) return Truncated("u8");
  return data_[pos_++];
}

Result<uint16_t> ByteReader::ReadU16() {
  uint16_t v = 0;
  MLCS_RETURN_IF_ERROR(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<uint32_t> ByteReader::ReadU32() {
  uint32_t v = 0;
  MLCS_RETURN_IF_ERROR(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<uint64_t> ByteReader::ReadU64() {
  uint64_t v = 0;
  MLCS_RETURN_IF_ERROR(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<int32_t> ByteReader::ReadI32() {
  int32_t v = 0;
  MLCS_RETURN_IF_ERROR(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<int64_t> ByteReader::ReadI64() {
  int64_t v = 0;
  MLCS_RETURN_IF_ERROR(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<double> ByteReader::ReadDouble() {
  double v = 0;
  MLCS_RETURN_IF_ERROR(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<bool> ByteReader::ReadBool() {
  MLCS_ASSIGN_OR_RETURN(uint8_t v, ReadU8());
  return v != 0;
}

Result<std::string> ByteReader::ReadString() {
  MLCS_ASSIGN_OR_RETURN(uint32_t len, ReadU32());
  if (remaining() < len) return Truncated("string body");
  std::string out(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return out;
}

Result<uint64_t> ByteReader::ReadVarint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (shift > 63) return Status::ParseError("varint too long");
    MLCS_ASSIGN_OR_RETURN(uint8_t byte, ReadU8());
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

Status ByteReader::ReadRaw(void* out, size_t size) {
  if (remaining() < size) return Truncated("raw bytes");
  // `out` may be null for a zero-length read (e.g. an empty column's
  // data pointer); memcpy's arguments must be non-null even then.
  if (size > 0) {
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
  }
  return Status::OK();
}

Status ByteReader::Skip(size_t size) {
  if (remaining() < size) return Truncated("skip");
  pos_ += size;
  return Status::OK();
}

}  // namespace mlcs
