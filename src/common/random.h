#ifndef MLCS_COMMON_RANDOM_H_
#define MLCS_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace mlcs {

/// Deterministic, seedable PRNG (xoshiro256** seeded via splitmix64).
/// Used everywhere randomness is needed — data generation, bootstrap
/// sampling, label generation — so every experiment is reproducible
/// bit-for-bit from its seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) {
    // splitmix64 expansion of the seed into the 4-word state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      state_[i] = z ^ (z >> 31);
    }
  }

  /// Uniform over all 64-bit values.
  uint64_t NextU64() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's nearly-divisionless method would be overkill here; simple
    // modulo bias is acceptable for bounds far below 2^64, but we debias
    // with rejection to keep property tests exact.
    uint64_t threshold = -bound % bound;
    while (true) {
      uint64_t r = NextU64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform int in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller (one value per call, simple).
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(6.283185307179586 * u2);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace mlcs

#endif  // MLCS_COMMON_RANDOM_H_
