#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>

namespace mlcs {

std::vector<std::string> SplitString(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view TrimView(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string Trim(std::string_view s) { return std::string(TrimView(s)); }

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = TrimView(s);
  int64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::ParseError("invalid integer: '" + std::string(s) + "'");
  }
  return v;
}

Result<int32_t> ParseInt32(std::string_view s) {
  MLCS_ASSIGN_OR_RETURN(int64_t v, ParseInt64(s));
  if (v < INT32_MIN || v > INT32_MAX) {
    return Status::OutOfRange("integer out of int32 range: " +
                              std::string(s));
  }
  return static_cast<int32_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  s = TrimView(s);
  double v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::ParseError("invalid double: '" + std::string(s) + "'");
  }
  return v;
}

std::string FormatDouble(double v) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
  }
  return std::string(buf, ptr);
}

}  // namespace mlcs
