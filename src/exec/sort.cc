#include "exec/sort.h"

#include <algorithm>
#include <numeric>

#include "exec/kernels.h"

namespace mlcs::exec {

Result<std::vector<uint32_t>> SortIndices(const Table& input,
                                          const std::vector<SortKey>& keys) {
  if (keys.empty()) {
    return Status::InvalidArgument("sort requires at least one key");
  }
  std::vector<ColumnPtr> cols;
  cols.reserve(keys.size());
  for (const auto& k : keys) {
    MLCS_ASSIGN_OR_RETURN(ColumnPtr col, input.ColumnByName(k.column));
    cols.push_back(std::move(col));
  }
  std::vector<uint32_t> indices(input.num_rows());
  std::iota(indices.begin(), indices.end(), 0);
  std::stable_sort(indices.begin(), indices.end(),
                   [&](uint32_t a, uint32_t b) {
                     for (size_t k = 0; k < cols.size(); ++k) {
                       int c = CellCompare(*cols[k], a, *cols[k], b);
                       if (c != 0) return keys[k].descending ? c > 0 : c < 0;
                     }
                     return false;
                   });
  return indices;
}

Result<TablePtr> SortTable(const Table& input,
                           const std::vector<SortKey>& keys) {
  MLCS_ASSIGN_OR_RETURN(std::vector<uint32_t> indices,
                        SortIndices(input, keys));
  return input.TakeRows(indices);
}

}  // namespace mlcs::exec
