#include "exec/sort.h"

#include <algorithm>
#include <numeric>

#include "exec/filter.h"
#include "exec/kernels.h"

namespace mlcs::exec {

Result<std::vector<uint32_t>> SortIndices(const Table& input,
                                          const std::vector<SortKey>& keys,
                                          const MorselPolicy& policy) {
  if (keys.empty()) {
    return Status::InvalidArgument("sort requires at least one key");
  }
  std::vector<ColumnPtr> cols;
  cols.reserve(keys.size());
  for (const auto& k : keys) {
    MLCS_ASSIGN_OR_RETURN(ColumnPtr col, input.ColumnByName(k.column));
    cols.push_back(std::move(col));
  }
  size_t n = input.num_rows();
  std::vector<uint32_t> indices(n);
  std::iota(indices.begin(), indices.end(), 0);
  auto less = [&](uint32_t a, uint32_t b) {
    for (size_t k = 0; k < cols.size(); ++k) {
      int c = CellCompare(*cols[k], a, *cols[k], b);
      if (c != 0) return keys[k].descending ? c > 0 : c < 0;
    }
    return false;
  };
  if (!ShouldParallelize(policy, n)) {
    std::stable_sort(indices.begin(), indices.end(), less);
    return indices;
  }
  // Sort morsel-width runs in parallel, then combine adjacent runs with a
  // stable binary merge tree (pairs within a pass merge in parallel, run
  // width doubles per pass). Runs are position-ascending blocks and both
  // stable_sort and inplace_merge break ties toward the earlier position,
  // so the result is the unique stable-sort permutation — identical to the
  // serial path no matter how the runs were split.
  MLCS_RETURN_IF_ERROR(ParallelMorsels(
      policy, n, [&](size_t, size_t begin, size_t end) -> Status {
        std::stable_sort(indices.begin() + static_cast<ptrdiff_t>(begin),
                         indices.begin() + static_cast<ptrdiff_t>(end), less);
        return Status::OK();
      }));
  for (size_t width = std::max<size_t>(1, policy.morsel_rows); width < n;
       width *= 2) {
    size_t pairs = (n + 2 * width - 1) / (2 * width);
    MLCS_RETURN_IF_ERROR(ParallelItems(
        policy, pairs, [&](size_t p) -> Status {
          size_t begin = p * 2 * width;
          size_t mid = std::min(n, begin + width);
          size_t end = std::min(n, begin + 2 * width);
          if (mid < end) {
            std::inplace_merge(indices.begin() + static_cast<ptrdiff_t>(begin),
                               indices.begin() + static_cast<ptrdiff_t>(mid),
                               indices.begin() + static_cast<ptrdiff_t>(end),
                               less);
          }
          return Status::OK();
        }));
  }
  return indices;
}

Result<TablePtr> SortTable(const Table& input,
                           const std::vector<SortKey>& keys,
                           const MorselPolicy& policy) {
  MLCS_ASSIGN_OR_RETURN(std::vector<uint32_t> indices,
                        SortIndices(input, keys, policy));
  return GatherRows(input, indices, policy);
}

}  // namespace mlcs::exec
