#include "exec/aggregate.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/string_util.h"
#include "exec/kernels.h"
#include "storage/encoding.h"

namespace mlcs::exec {

Result<AggOp> AggOpFromName(std::string_view name, bool is_star) {
  if (EqualsIgnoreCase(name, "count")) {
    return is_star ? AggOp::kCountStar : AggOp::kCount;
  }
  if (is_star) {
    return Status::InvalidArgument("only COUNT supports '*'");
  }
  if (EqualsIgnoreCase(name, "sum")) return AggOp::kSum;
  if (EqualsIgnoreCase(name, "stddev") ||
      EqualsIgnoreCase(name, "stddev_pop")) {
    return AggOp::kStdDev;
  }
  if (EqualsIgnoreCase(name, "avg")) return AggOp::kAvg;
  if (EqualsIgnoreCase(name, "min")) return AggOp::kMin;
  if (EqualsIgnoreCase(name, "max")) return AggOp::kMax;
  return Status::NotFound("unknown aggregate function '" + std::string(name) +
                          "'");
}

const char* AggOpToString(AggOp op) {
  switch (op) {
    case AggOp::kCountStar:
      return "COUNT(*)";
    case AggOp::kCount:
      return "COUNT";
    case AggOp::kSum:
      return "SUM";
    case AggOp::kAvg:
      return "AVG";
    case AggOp::kMin:
      return "MIN";
    case AggOp::kMax:
      return "MAX";
    case AggOp::kStdDev:
      return "STDDEV";
  }
  return "?";
}

namespace {

/// Per-group accumulator, generic across the numeric aggregate ops. Kept
/// free of std::string members on purpose: the morsel-parallel pass
/// allocates one accumulator per (aggregate, local group, morsel), so this
/// struct being trivially destructible is what keeps small-group morsels
/// cheap. VARCHAR MIN/MAX state lives in the side-car StrState, allocated
/// only for string aggregates.
struct Accumulator {
  int64_t count = 0;        // non-null inputs seen (or rows for COUNT(*))
  double sum = 0;           // numeric running sum
  double sum_sq = 0;        // running sum of squares (STDDEV)
  int64_t isum = 0;         // integer running sum (exact SUM for int types)
  double dmin = std::numeric_limits<double>::infinity();
  double dmax = -std::numeric_limits<double>::infinity();
  bool has_value = false;
};

struct StrState {
  std::string smin, smax;  // valid iff the matching Accumulator.has_value
};

TypeId OutputTypeFor(AggOp op, TypeId input) {
  switch (op) {
    case AggOp::kCountStar:
    case AggOp::kCount:
      return TypeId::kInt64;
    case AggOp::kSum:
      return input == TypeId::kDouble ? TypeId::kDouble : TypeId::kInt64;
    case AggOp::kAvg:
    case AggOp::kStdDev:
      return TypeId::kDouble;
    case AggOp::kMin:
    case AggOp::kMax:
      return input;
  }
  return TypeId::kDouble;
}

/// Folds a morsel-local accumulator into the group's global one. Addition
/// order is (morsel asc, local group asc), fixed by the merge loop, so the
/// folded doubles do not depend on the thread count.
void MergeInto(Accumulator* g, const Accumulator& l) {
  g->count += l.count;
  g->sum += l.sum;
  g->sum_sq += l.sum_sq;
  g->isum += l.isum;
  if (l.has_value) {
    if (l.dmin < g->dmin) g->dmin = l.dmin;
    if (l.dmax > g->dmax) g->dmax = l.dmax;
    g->has_value = true;
  }
}

/// String side-car merge; `g_had_value` is the global has_value from before
/// the numeric merge folded this local in.
void MergeStrInto(StrState* g, bool g_had_value, const StrState& l) {
  if (!g_had_value || l.smin < g->smin) g->smin = l.smin;
  if (!g_had_value || l.smax > g->smax) g->smax = l.smax;
}

/// Hash-to-group-id resolution shared by the morsel-local pass and the
/// global merge. Representatives are absolute input rows, so CellEquals
/// works identically for both. Open addressing over a flat slot array —
/// a node-based map here costs one malloc per group per morsel, which at
/// 16K-row morsels dominated the whole operator.
struct GroupSet {
  struct Slot {
    uint64_t hash = 0;
    uint32_t gid = UINT32_MAX;  // UINT32_MAX = empty
  };
  std::vector<Slot> slots;
  std::vector<uint32_t> rep;  // gid → first input row
  size_t mask = 0;

  uint32_t Resolve(uint64_t hash, size_t row,
                   const std::vector<ColumnPtr>& key_cols) {
    if (slots.empty() || rep.size() * 2 >= slots.size()) Grow();
    size_t slot = hash & mask;
    while (slots[slot].gid != UINT32_MAX) {
      if (slots[slot].hash == hash) {
        size_t r = rep[slots[slot].gid];
        bool equal = true;
        for (const auto& col : key_cols) {
          if (!CellEquals(*col, row, *col, r)) {
            equal = false;
            break;
          }
        }
        if (equal) return slots[slot].gid;
      }
      slot = (slot + 1) & mask;
    }
    uint32_t gid = static_cast<uint32_t>(rep.size());
    rep.push_back(static_cast<uint32_t>(row));
    slots[slot] = {hash, gid};
    return gid;
  }

 private:
  void Grow() {
    size_t cap = slots.empty() ? 64 : slots.size() * 2;
    std::vector<Slot> old = std::move(slots);
    slots.assign(cap, Slot{});
    mask = cap - 1;
    for (const Slot& s : old) {
      if (s.gid == UINT32_MAX) continue;
      size_t slot = s.hash & mask;
      while (slots[slot].gid != UINT32_MAX) slot = (slot + 1) & mask;
      slots[slot] = s;
    }
  }
};

/// Pre-extracted aggregate input (the double view is materialized once,
/// outside the morsel loop).
struct AggInput {
  const Column* col = nullptr;
  bool is_string = false;
  std::vector<double> numeric;
  const std::vector<int32_t>* i32 = nullptr;
  const std::vector<int64_t>* i64 = nullptr;
  /// Owns the plain copy when the input column arrived encoded: the morsel
  /// loop reads the typed vectors directly, so encoded inputs decode once
  /// here (decode-at-materialization) rather than per row.
  ColumnPtr decoded;
  /// Set when the input is a null-free integer RLE column under SUM/COUNT:
  /// the morsel loop folds whole runs (value × length) instead of
  /// expanding — the column is never decoded at all.
  const Column* rle = nullptr;
};

/// SUM/COUNT over a null-free integer RLE column can accumulate per run
/// without decoding: count and isum are exact integer state, so folding
/// `value × segment length` is bit-identical to adding the value once per
/// row (the double members sum/sum_sq/dmin/dmax are never read when
/// emitting integer SUM or COUNT).
bool RleFoldable(AggOp op, const Column& col) {
  if (op != AggOp::kSum && op != AggOp::kCount) return false;
  return col.encoding() == ColumnEncoding::kRle && !col.has_nulls() &&
         (col.type() == TypeId::kInt32 || col.type() == TypeId::kInt64);
}

/// Aggregation morsels are 16× the policy width. Each morsel pays for a
/// local group table plus a per-group merge, so the efficient grain is
/// coarser than for element-wise operators; at the default 16K policy this
/// gives 256K-row grains, where the measured single-thread overhead vs one
/// big morsel is ~0. Still a pure function of the policy width — never of
/// the thread count — so results stay identical at every parallelism.
constexpr size_t kAggMorselScale = 16;

}  // namespace

Result<TablePtr> HashGroupBy(const Table& input,
                             const std::vector<std::string>& group_keys,
                             const std::vector<AggSpec>& aggregates,
                             const MorselPolicy& base_policy) {
  MorselPolicy policy = base_policy;
  size_t base_rows = std::max<size_t>(1, base_policy.morsel_rows);
  policy.morsel_rows = base_rows < SIZE_MAX / kAggMorselScale
                           ? base_rows * kAggMorselScale
                           : SIZE_MAX;
  size_t n = input.num_rows();

  // Resolve key columns.
  std::vector<ColumnPtr> key_cols;
  for (const auto& key : group_keys) {
    MLCS_ASSIGN_OR_RETURN(ColumnPtr col, input.ColumnByName(key));
    key_cols.push_back(col);
  }

  // Group-on-codes fast path: a single dictionary-encoded key groups by
  // code through a flat first-seen lookup table — no hashing, no probe
  // chain, no per-row key compare. Dictionary entries are distinct, so
  // code equality ⇔ value equality (nulls get the one-past-the-dict
  // bucket), and first-seen gid assignment walks rows in the same order as
  // GroupSet::Resolve — group ids, output order, and accumulation order
  // are identical to the hash path, keeping results bit-identical with
  // encoding disabled.
  const Column* code_key = group_keys.size() == 1 &&
                                   key_cols[0]->encoding() ==
                                       ColumnEncoding::kDict
                               ? key_cols[0].get()
                               : nullptr;
  if (code_key != nullptr) CountCodePathHit();

  // Hash the keys morsel-parallel (skipped when grouping on codes).
  std::vector<uint64_t> hashes;
  if (!group_keys.empty() && code_key == nullptr) {
    hashes.assign(n, kHashSeed);
    MLCS_RETURN_IF_ERROR(ParallelMorsels(
        policy, n, [&](size_t, size_t begin, size_t end) -> Status {
          for (const auto& col : key_cols) {
            HashCombineColumnRange(*col, begin, end, &hashes);
          }
          return Status::OK();
        }));
  }

  // Resolve aggregate input columns.
  std::vector<ColumnPtr> agg_cols(aggregates.size());
  for (size_t a = 0; a < aggregates.size(); ++a) {
    if (aggregates[a].op == AggOp::kCountStar) continue;
    MLCS_ASSIGN_OR_RETURN(agg_cols[a],
                          input.ColumnByName(aggregates[a].input_column));
    TypeId t = agg_cols[a]->type();
    bool numeric_needed = aggregates[a].op == AggOp::kSum ||
                          aggregates[a].op == AggOp::kAvg ||
                          aggregates[a].op == AggOp::kStdDev;
    if (numeric_needed && !IsNumericType(t)) {
      return Status::TypeMismatch(std::string(AggOpToString(aggregates[a].op)) +
                                  " requires a numeric column, got " +
                                  TypeIdToString(t));
    }
    if ((aggregates[a].op == AggOp::kMin || aggregates[a].op == AggOp::kMax) &&
        t == TypeId::kBlob) {
      return Status::TypeMismatch("MIN/MAX not supported on BLOB");
    }
  }

  // Per-run aggregation fast path: with no grouping, COUNT/SUM/MIN/MAX over
  // null-free integer RLE columns fold whole runs — O(runs) instead of
  // O(rows). Restricted to exact integer state so the result is bit-
  // identical to the per-row path (double accumulation order would differ
  // per run, which is why AVG/STDDEV and DOUBLE inputs are excluded).
  bool rle_fast = group_keys.empty() && n > 0 && !aggregates.empty();
  for (size_t a = 0; rle_fast && a < aggregates.size(); ++a) {
    AggOp op = aggregates[a].op;
    if (op == AggOp::kCountStar) continue;
    const Column& col = *agg_cols[a];
    bool int_rle = col.encoding() == ColumnEncoding::kRle &&
                   !col.has_nulls() &&
                   (col.type() == TypeId::kInt32 ||
                    col.type() == TypeId::kInt64);
    rle_fast = int_rle && (op == AggOp::kCount || op == AggOp::kSum ||
                           op == AggOp::kMin || op == AggOp::kMax);
  }
  if (rle_fast) {
    CountCodePathHit();
    Schema schema;
    std::vector<ColumnPtr> out_cols;
    for (size_t a = 0; a < aggregates.size(); ++a) {
      const AggSpec& spec = aggregates[a];
      TypeId input_type =
          spec.op == AggOp::kCountStar ? TypeId::kInt64 : agg_cols[a]->type();
      TypeId out_type = OutputTypeFor(spec.op, input_type);
      ColumnPtr col = Column::Make(out_type);
      if (spec.op == AggOp::kCountStar || spec.op == AggOp::kCount) {
        col->AppendInt64(static_cast<int64_t>(n));
      } else {
        const Column& in = *agg_cols[a];
        const Column& rv = *in.run_values();
        const auto& lens = in.run_lengths();
        uint64_t isum = 0;  // wraps like the per-row signed adds
        double dmin = std::numeric_limits<double>::infinity();
        double dmax = -std::numeric_limits<double>::infinity();
        for (size_t r = 0; r < lens.size(); ++r) {
          int64_t value = rv.type() == TypeId::kInt32
                              ? static_cast<int64_t>(rv.i32_data()[r])
                              : rv.i64_data()[r];
          isum += static_cast<uint64_t>(value) * lens[r];
          double v = static_cast<double>(value);
          if (v < dmin) dmin = v;
          if (v > dmax) dmax = v;
        }
        if (spec.op == AggOp::kSum) {
          col->AppendInt64(static_cast<int64_t>(isum));
        } else {
          double v = spec.op == AggOp::kMin ? dmin : dmax;
          if (out_type == TypeId::kInt32) {
            col->AppendInt32(static_cast<int32_t>(v));
          } else {
            col->AppendInt64(static_cast<int64_t>(v));
          }
        }
      }
      schema.AddField(spec.output_name, out_type);
      out_cols.push_back(std::move(col));
    }
    auto out = std::make_shared<Table>(std::move(schema), std::move(out_cols));
    MLCS_RETURN_IF_ERROR(out->Validate());
    return out;
  }

  // Materialize the double view of each numeric aggregate input up front,
  // one task per aggregate (ToDoubleVector is an O(n) copy).
  std::vector<AggInput> agg_inputs(aggregates.size());
  MLCS_RETURN_IF_ERROR(ParallelItems(
      policy, aggregates.size(), [&](size_t a) -> Status {
        if (aggregates[a].op == AggOp::kCountStar) return Status::OK();
        AggInput& in = agg_inputs[a];
        if (RleFoldable(aggregates[a].op, *agg_cols[a])) {
          in.rle = agg_cols[a].get();
          in.col = in.rle;
          CountCodePathHit();
          return Status::OK();
        }
        if (agg_cols[a]->is_encoded()) in.decoded = agg_cols[a]->Decode();
        const Column& col = in.decoded != nullptr ? *in.decoded : *agg_cols[a];
        in.col = &col;
        in.is_string = col.type() == TypeId::kVarchar;
        if (!in.is_string) {
          MLCS_ASSIGN_OR_RETURN(in.numeric, col.ToDoubleVector());
        }
        if (col.type() == TypeId::kInt32) in.i32 = &col.i32_data();
        if (col.type() == TypeId::kInt64) in.i64 = &col.i64_data();
        return Status::OK();
      }));

  // Morsel-local aggregation. This ALWAYS goes through per-morsel partials
  // (even on one thread): boundaries are fixed, so the double-precision
  // accumulation order is the same at every thread count.
  struct LocalGroups {
    GroupSet groups;
    std::vector<std::vector<Accumulator>> accs;  // [aggregate][local gid]
    std::vector<std::vector<StrState>> strs;     // only for string aggs
  };
  bool any_string = false;
  for (const AggInput& in : agg_inputs) any_string |= in.is_string;
  std::vector<LocalGroups> locals(NumMorsels(policy, n));
  MLCS_RETURN_IF_ERROR(ParallelMorsels(
      policy, n, [&](size_t m, size_t begin, size_t end) -> Status {
        LocalGroups& lg = locals[m];
        std::vector<uint32_t> lgid(end - begin, 0);
        if (group_keys.empty()) {
          lg.groups.rep.push_back(static_cast<uint32_t>(begin));
        } else if (code_key != nullptr) {
          const std::vector<uint32_t>& codes = code_key->codes();
          uint32_t null_bucket =
              static_cast<uint32_t>(code_key->dict()->size());
          std::vector<uint32_t> lut(null_bucket + 1, UINT32_MAX);
          bool key_nulls = code_key->has_nulls();
          for (size_t row = begin; row < end; ++row) {
            uint32_t c = key_nulls && code_key->IsNull(row) ? null_bucket
                                                            : codes[row];
            uint32_t g = lut[c];
            if (g == UINT32_MAX) {
              g = static_cast<uint32_t>(lg.groups.rep.size());
              lg.groups.rep.push_back(static_cast<uint32_t>(row));
              lut[c] = g;
            }
            lgid[row - begin] = g;
          }
        } else {
          for (size_t row = begin; row < end; ++row) {
            lgid[row - begin] = lg.groups.Resolve(hashes[row], row, key_cols);
          }
        }
        size_t local_groups = lg.groups.rep.size();
        lg.accs.assign(aggregates.size(),
                       std::vector<Accumulator>(local_groups));
        if (any_string) lg.strs.resize(aggregates.size());
        for (size_t a = 0; a < aggregates.size(); ++a) {
          auto& acc = lg.accs[a];
          if (aggregates[a].op == AggOp::kCountStar) {
            for (size_t row = begin; row < end; ++row) {
              ++acc[lgid[row - begin]].count;
            }
            continue;
          }
          const AggInput& in = agg_inputs[a];
          const Column& col = *in.col;
          if (in.rle != nullptr) {
            // Run folding: one (count, isum) update per stretch of rows
            // that share a run AND a local group, instead of one per row.
            // Exact integer accumulation, so identical to the per-row path.
            const Column& rv = *in.rle->run_values();
            const std::vector<uint64_t>& starts = in.rle->run_starts();
            bool narrow = rv.type() == TypeId::kInt32;
            size_t num_runs = in.rle->run_lengths().size();
            for (size_t r = in.rle->RunIndexOf(begin);
                 r < num_runs && starts[r] < end; ++r) {
              size_t seg_begin = std::max<size_t>(starts[r], begin);
              size_t seg_end = std::min<size_t>(starts[r + 1], end);
              uint64_t value =
                  narrow ? static_cast<uint64_t>(
                               static_cast<int64_t>(rv.i32_data()[r]))
                         : static_cast<uint64_t>(rv.i64_data()[r]);
              size_t i = seg_begin;
              while (i < seg_end) {
                uint32_t g = lgid[i - begin];
                size_t j = i + 1;
                while (j < seg_end && lgid[j - begin] == g) ++j;
                Accumulator& ga = acc[g];
                uint64_t len = j - i;
                ga.count += static_cast<int64_t>(len);
                ga.has_value = true;
                // uint64 arithmetic: wraps like the per-row signed adds.
                ga.isum = static_cast<int64_t>(
                    static_cast<uint64_t>(ga.isum) + value * len);
                i = j;
              }
            }
            continue;
          }
          if (in.is_string) {
            auto& str = lg.strs[a];
            str.resize(local_groups);
            for (size_t row = begin; row < end; ++row) {
              if (col.IsNull(row)) continue;
              Accumulator& g = acc[lgid[row - begin]];
              StrState& gs = str[lgid[row - begin]];
              ++g.count;
              g.has_value = true;
              const std::string& s = col.str_data()[row];
              if (g.count == 1 || s < gs.smin) gs.smin = s;
              if (g.count == 1 || s > gs.smax) gs.smax = s;
            }
            continue;
          }
          for (size_t row = begin; row < end; ++row) {
            if (col.IsNull(row)) continue;
            Accumulator& g = acc[lgid[row - begin]];
            ++g.count;
            g.has_value = true;
            double v = in.numeric[row];
            g.sum += v;
            g.sum_sq += v * v;
            if (in.i32 != nullptr) g.isum += (*in.i32)[row];
            if (in.i64 != nullptr) g.isum += (*in.i64)[row];
            if (col.type() == TypeId::kBool) g.isum += col.bool_data()[row];
            if (v < g.dmin) g.dmin = v;
            if (v > g.dmax) g.dmax = v;
          }
        }
        return Status::OK();
      }));

  // Serial merge in (morsel asc, local gid asc) order. Globals are created
  // in that order, which is exactly the serial first-seen group order, and
  // each global representative is the group's overall first row.
  GroupSet global;
  std::vector<std::vector<Accumulator>> accs(aggregates.size());
  std::vector<std::vector<StrState>> strs(aggregates.size());
  if (group_keys.empty()) {
    global.rep.push_back(0);
    for (auto& v : accs) v.resize(1);
    for (auto& v : strs) v.resize(1);
  }
  // Code-keyed global ids: same first-seen LUT as the morsel loop, over
  // (morsel asc, local gid asc) — the order Resolve would see.
  std::vector<uint32_t> global_lut;
  if (code_key != nullptr) {
    global_lut.assign(code_key->dict()->size() + 1, UINT32_MAX);
  }
  for (const LocalGroups& lg : locals) {
    for (size_t l = 0; l < lg.groups.rep.size(); ++l) {
      uint32_t gid = 0;
      if (!group_keys.empty()) {
        uint32_t rrow = lg.groups.rep[l];
        if (code_key != nullptr) {
          uint32_t c = code_key->has_nulls() && code_key->IsNull(rrow)
                           ? static_cast<uint32_t>(code_key->dict()->size())
                           : code_key->codes()[rrow];
          if (global_lut[c] == UINT32_MAX) {
            global_lut[c] = static_cast<uint32_t>(global.rep.size());
            global.rep.push_back(rrow);
          }
          gid = global_lut[c];
        } else {
          gid = global.Resolve(hashes[rrow], rrow, key_cols);
        }
        for (auto& v : accs) {
          if (v.size() < global.rep.size()) v.resize(global.rep.size());
        }
        if (any_string) {
          for (auto& v : strs) {
            if (v.size() < global.rep.size()) v.resize(global.rep.size());
          }
        }
      }
      for (size_t a = 0; a < aggregates.size(); ++a) {
        const Accumulator& local_acc = lg.accs[a][l];
        Accumulator* global_acc = &accs[a][gid];
        bool had_value = global_acc->has_value;
        MergeInto(global_acc, local_acc);
        if (agg_inputs[a].is_string && local_acc.has_value) {
          MergeStrInto(&strs[a][gid], had_value, lg.strs[a][l]);
        }
      }
    }
  }
  size_t num_groups = global.rep.size();
  const std::vector<uint32_t>& representative_row = global.rep;

  // Emit output table: key columns then aggregate columns.
  Schema schema;
  std::vector<ColumnPtr> out_cols;
  if (!group_keys.empty()) {
    for (size_t k = 0; k < key_cols.size(); ++k) {
      schema.AddField(group_keys[k], key_cols[k]->type());
      out_cols.push_back(key_cols[k]->Take(representative_row));
    }
  }
  for (size_t a = 0; a < aggregates.size(); ++a) {
    const AggSpec& spec = aggregates[a];
    TypeId input_type =
        spec.op == AggOp::kCountStar ? TypeId::kInt64 : agg_cols[a]->type();
    TypeId out_type = OutputTypeFor(spec.op, input_type);
    ColumnPtr col = Column::Make(out_type);
    col->Reserve(num_groups);
    for (size_t g = 0; g < num_groups; ++g) {
      const Accumulator& acc = accs[a][g];
      switch (spec.op) {
        case AggOp::kCountStar:
        case AggOp::kCount:
          col->AppendInt64(acc.count);
          break;
        case AggOp::kSum:
          if (!acc.has_value) {
            col->AppendNull();
          } else if (out_type == TypeId::kInt64) {
            col->AppendInt64(acc.isum);
          } else {
            col->AppendDouble(acc.sum);
          }
          break;
        case AggOp::kAvg:
          if (!acc.has_value) {
            col->AppendNull();
          } else {
            col->AppendDouble(acc.sum / static_cast<double>(acc.count));
          }
          break;
        case AggOp::kStdDev:
          if (!acc.has_value) {
            col->AppendNull();
          } else {
            double n = static_cast<double>(acc.count);
            double mean = acc.sum / n;
            double var = acc.sum_sq / n - mean * mean;
            col->AppendDouble(std::sqrt(std::max(0.0, var)));
          }
          break;
        case AggOp::kMin:
        case AggOp::kMax: {
          if (!acc.has_value) {
            col->AppendNull();
            break;
          }
          bool is_min = spec.op == AggOp::kMin;
          if (input_type == TypeId::kVarchar) {
            const StrState& str = strs[a][g];
            col->AppendString(is_min ? str.smin : str.smax);
          } else {
            double v = is_min ? acc.dmin : acc.dmax;
            switch (out_type) {
              case TypeId::kBool:
                col->AppendBool(v != 0);
                break;
              case TypeId::kInt32:
                col->AppendInt32(static_cast<int32_t>(v));
                break;
              case TypeId::kInt64:
                col->AppendInt64(static_cast<int64_t>(v));
                break;
              default:
                col->AppendDouble(v);
                break;
            }
          }
          break;
        }
      }
    }
    schema.AddField(spec.output_name, out_type);
    out_cols.push_back(std::move(col));
  }
  auto out = std::make_shared<Table>(std::move(schema), std::move(out_cols));
  MLCS_RETURN_IF_ERROR(out->Validate());
  return out;
}

}  // namespace mlcs::exec
