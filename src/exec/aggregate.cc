#include "exec/aggregate.h"

#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/string_util.h"
#include "exec/kernels.h"

namespace mlcs::exec {

Result<AggOp> AggOpFromName(std::string_view name, bool is_star) {
  if (EqualsIgnoreCase(name, "count")) {
    return is_star ? AggOp::kCountStar : AggOp::kCount;
  }
  if (is_star) {
    return Status::InvalidArgument("only COUNT supports '*'");
  }
  if (EqualsIgnoreCase(name, "sum")) return AggOp::kSum;
  if (EqualsIgnoreCase(name, "stddev") ||
      EqualsIgnoreCase(name, "stddev_pop")) {
    return AggOp::kStdDev;
  }
  if (EqualsIgnoreCase(name, "avg")) return AggOp::kAvg;
  if (EqualsIgnoreCase(name, "min")) return AggOp::kMin;
  if (EqualsIgnoreCase(name, "max")) return AggOp::kMax;
  return Status::NotFound("unknown aggregate function '" + std::string(name) +
                          "'");
}

const char* AggOpToString(AggOp op) {
  switch (op) {
    case AggOp::kCountStar:
      return "COUNT(*)";
    case AggOp::kCount:
      return "COUNT";
    case AggOp::kSum:
      return "SUM";
    case AggOp::kAvg:
      return "AVG";
    case AggOp::kMin:
      return "MIN";
    case AggOp::kMax:
      return "MAX";
    case AggOp::kStdDev:
      return "STDDEV";
  }
  return "?";
}

namespace {

/// Per-group accumulator, generic across aggregate ops.
struct Accumulator {
  int64_t count = 0;        // non-null inputs seen (or rows for COUNT(*))
  double sum = 0;           // numeric running sum
  double sum_sq = 0;        // running sum of squares (STDDEV)
  int64_t isum = 0;         // integer running sum (exact SUM for int types)
  double dmin = std::numeric_limits<double>::infinity();
  double dmax = -std::numeric_limits<double>::infinity();
  std::string smin, smax;   // VARCHAR MIN/MAX
  bool has_value = false;
};

TypeId OutputTypeFor(AggOp op, TypeId input) {
  switch (op) {
    case AggOp::kCountStar:
    case AggOp::kCount:
      return TypeId::kInt64;
    case AggOp::kSum:
      return input == TypeId::kDouble ? TypeId::kDouble : TypeId::kInt64;
    case AggOp::kAvg:
    case AggOp::kStdDev:
      return TypeId::kDouble;
    case AggOp::kMin:
    case AggOp::kMax:
      return input;
  }
  return TypeId::kDouble;
}

}  // namespace

Result<TablePtr> HashGroupBy(const Table& input,
                             const std::vector<std::string>& group_keys,
                             const std::vector<AggSpec>& aggregates) {
  size_t n = input.num_rows();

  // Resolve key columns and build per-row group ids.
  std::vector<ColumnPtr> key_cols;
  std::vector<uint32_t> group_of_row(n, 0);
  std::vector<uint32_t> representative_row;  // first row of each group
  size_t num_groups = 0;
  if (group_keys.empty()) {
    num_groups = 1;
    representative_row.push_back(0);
  } else {
    std::vector<uint64_t> hashes(n, kHashSeed);
    for (const auto& key : group_keys) {
      MLCS_ASSIGN_OR_RETURN(ColumnPtr col, input.ColumnByName(key));
      key_cols.push_back(col);
      HashCombineColumn(*col, &hashes);
    }
    // hash → candidate group ids (chained on collisions).
    std::unordered_multimap<uint64_t, uint32_t> groups;
    groups.reserve(1024);
    for (size_t row = 0; row < n; ++row) {
      uint32_t gid = UINT32_MAX;
      auto [begin, end] = groups.equal_range(hashes[row]);
      for (auto it = begin; it != end; ++it) {
        size_t rep = representative_row[it->second];
        bool equal = true;
        for (const auto& col : key_cols) {
          if (!CellEquals(*col, row, *col, rep)) {
            equal = false;
            break;
          }
        }
        if (equal) {
          gid = it->second;
          break;
        }
      }
      if (gid == UINT32_MAX) {
        gid = static_cast<uint32_t>(num_groups++);
        representative_row.push_back(static_cast<uint32_t>(row));
        groups.emplace(hashes[row], gid);
      }
      group_of_row[row] = gid;
    }
  }

  // Resolve aggregate input columns.
  std::vector<ColumnPtr> agg_cols(aggregates.size());
  for (size_t a = 0; a < aggregates.size(); ++a) {
    if (aggregates[a].op == AggOp::kCountStar) continue;
    MLCS_ASSIGN_OR_RETURN(agg_cols[a],
                          input.ColumnByName(aggregates[a].input_column));
    TypeId t = agg_cols[a]->type();
    bool numeric_needed = aggregates[a].op == AggOp::kSum ||
                          aggregates[a].op == AggOp::kAvg ||
                          aggregates[a].op == AggOp::kStdDev;
    if (numeric_needed && !IsNumericType(t)) {
      return Status::TypeMismatch(std::string(AggOpToString(aggregates[a].op)) +
                                  " requires a numeric column, got " +
                                  TypeIdToString(t));
    }
    if ((aggregates[a].op == AggOp::kMin || aggregates[a].op == AggOp::kMax) &&
        t == TypeId::kBlob) {
      return Status::TypeMismatch("MIN/MAX not supported on BLOB");
    }
  }

  // Accumulate.
  std::vector<std::vector<Accumulator>> accs(aggregates.size());
  for (auto& v : accs) v.resize(num_groups);
  for (size_t a = 0; a < aggregates.size(); ++a) {
    const AggSpec& spec = aggregates[a];
    auto& acc = accs[a];
    if (spec.op == AggOp::kCountStar) {
      for (size_t row = 0; row < n; ++row) ++acc[group_of_row[row]].count;
      continue;
    }
    const Column& col = *agg_cols[a];
    bool is_string = col.type() == TypeId::kVarchar;
    std::vector<double> numeric;
    if (!is_string) {
      MLCS_ASSIGN_OR_RETURN(numeric, col.ToDoubleVector());
    }
    const auto* i32 = col.type() == TypeId::kInt32 ? &col.i32_data() : nullptr;
    const auto* i64 = col.type() == TypeId::kInt64 ? &col.i64_data() : nullptr;
    for (size_t row = 0; row < n; ++row) {
      if (col.IsNull(row)) continue;
      Accumulator& g = acc[group_of_row[row]];
      ++g.count;
      g.has_value = true;
      if (is_string) {
        const std::string& s = col.str_data()[row];
        if (g.count == 1 || s < g.smin) g.smin = s;
        if (g.count == 1 || s > g.smax) g.smax = s;
      } else {
        double v = numeric[row];
        g.sum += v;
        g.sum_sq += v * v;
        if (i32 != nullptr) g.isum += (*i32)[row];
        if (i64 != nullptr) g.isum += (*i64)[row];
        if (col.type() == TypeId::kBool) g.isum += col.bool_data()[row];
        if (v < g.dmin) g.dmin = v;
        if (v > g.dmax) g.dmax = v;
      }
    }
  }

  // Emit output table: key columns then aggregate columns.
  Schema schema;
  std::vector<ColumnPtr> out_cols;
  if (!group_keys.empty()) {
    for (size_t k = 0; k < key_cols.size(); ++k) {
      schema.AddField(group_keys[k], key_cols[k]->type());
      out_cols.push_back(key_cols[k]->Take(representative_row));
    }
  }
  for (size_t a = 0; a < aggregates.size(); ++a) {
    const AggSpec& spec = aggregates[a];
    TypeId input_type =
        spec.op == AggOp::kCountStar ? TypeId::kInt64 : agg_cols[a]->type();
    TypeId out_type = OutputTypeFor(spec.op, input_type);
    ColumnPtr col = Column::Make(out_type);
    col->Reserve(num_groups);
    for (size_t g = 0; g < num_groups; ++g) {
      const Accumulator& acc = accs[a][g];
      switch (spec.op) {
        case AggOp::kCountStar:
        case AggOp::kCount:
          col->AppendInt64(acc.count);
          break;
        case AggOp::kSum:
          if (!acc.has_value) {
            col->AppendNull();
          } else if (out_type == TypeId::kInt64) {
            col->AppendInt64(acc.isum);
          } else {
            col->AppendDouble(acc.sum);
          }
          break;
        case AggOp::kAvg:
          if (!acc.has_value) {
            col->AppendNull();
          } else {
            col->AppendDouble(acc.sum / static_cast<double>(acc.count));
          }
          break;
        case AggOp::kStdDev:
          if (!acc.has_value) {
            col->AppendNull();
          } else {
            double n = static_cast<double>(acc.count);
            double mean = acc.sum / n;
            double var = acc.sum_sq / n - mean * mean;
            col->AppendDouble(std::sqrt(std::max(0.0, var)));
          }
          break;
        case AggOp::kMin:
        case AggOp::kMax: {
          if (!acc.has_value) {
            col->AppendNull();
            break;
          }
          bool is_min = spec.op == AggOp::kMin;
          if (input_type == TypeId::kVarchar) {
            col->AppendString(is_min ? acc.smin : acc.smax);
          } else {
            double v = is_min ? acc.dmin : acc.dmax;
            switch (out_type) {
              case TypeId::kBool:
                col->AppendBool(v != 0);
                break;
              case TypeId::kInt32:
                col->AppendInt32(static_cast<int32_t>(v));
                break;
              case TypeId::kInt64:
                col->AppendInt64(static_cast<int64_t>(v));
                break;
              default:
                col->AppendDouble(v);
                break;
            }
          }
          break;
        }
      }
    }
    schema.AddField(spec.output_name, out_type);
    out_cols.push_back(std::move(col));
  }
  auto out = std::make_shared<Table>(std::move(schema), std::move(out_cols));
  MLCS_RETURN_IF_ERROR(out->Validate());
  return out;
}

}  // namespace mlcs::exec
