#ifndef MLCS_EXEC_SORT_H_
#define MLCS_EXEC_SORT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace mlcs::exec {

struct SortKey {
  std::string column;
  bool descending = false;
};

/// Stable multi-key sort; NULLs sort first (before all values) on ascending
/// keys, last on descending keys.
Result<TablePtr> SortTable(const Table& input,
                           const std::vector<SortKey>& keys);

/// The permutation that SortTable applies (exposed for operators that sort
/// auxiliary payloads alongside).
Result<std::vector<uint32_t>> SortIndices(const Table& input,
                                          const std::vector<SortKey>& keys);

}  // namespace mlcs::exec

#endif  // MLCS_EXEC_SORT_H_
