#ifndef MLCS_EXEC_SORT_H_
#define MLCS_EXEC_SORT_H_

#include <string>
#include <vector>

#include "common/parallel_for.h"
#include "common/result.h"
#include "storage/table.h"

namespace mlcs::exec {

struct SortKey {
  std::string column;
  bool descending = false;
};

/// Stable multi-key sort; NULLs sort first (before all values) on ascending
/// keys, last on descending keys. Long inputs sort morsel-width runs in
/// parallel and combine them with a stable binary merge tree; the stable
/// sort permutation is unique (ties resolve by input position), so the
/// result is bit-identical to the serial sort at every thread count.
Result<TablePtr> SortTable(const Table& input,
                           const std::vector<SortKey>& keys,
                           const MorselPolicy& policy = {});

/// The permutation that SortTable applies (exposed for operators that sort
/// auxiliary payloads alongside).
Result<std::vector<uint32_t>> SortIndices(const Table& input,
                                          const std::vector<SortKey>& keys,
                                          const MorselPolicy& policy = {});

}  // namespace mlcs::exec

#endif  // MLCS_EXEC_SORT_H_
