#include "exec/filter.h"

namespace mlcs::exec {

Result<std::vector<uint32_t>> SelectionIndices(const Column& predicate,
                                               size_t num_rows) {
  if (predicate.type() != TypeId::kBool) {
    return Status::TypeMismatch("filter predicate must be BOOLEAN, got " +
                                std::string(TypeIdToString(predicate.type())));
  }
  std::vector<uint32_t> indices;
  if (predicate.size() == 1) {
    // Broadcast scalar predicate.
    bool keep = !predicate.IsNull(0) && predicate.bool_data()[0] != 0;
    if (keep) {
      indices.resize(num_rows);
      for (size_t i = 0; i < num_rows; ++i) {
        indices[i] = static_cast<uint32_t>(i);
      }
    }
    return indices;
  }
  if (predicate.size() != num_rows) {
    return Status::InvalidArgument("predicate length " +
                                   std::to_string(predicate.size()) +
                                   " does not match row count " +
                                   std::to_string(num_rows));
  }
  const auto& data = predicate.bool_data();
  indices.reserve(num_rows / 2);
  if (!predicate.has_nulls()) {
    for (size_t i = 0; i < num_rows; ++i) {
      if (data[i] != 0) indices.push_back(static_cast<uint32_t>(i));
    }
  } else {
    for (size_t i = 0; i < num_rows; ++i) {
      if (data[i] != 0 && !predicate.IsNull(i)) {
        indices.push_back(static_cast<uint32_t>(i));
      }
    }
  }
  return indices;
}

Result<TablePtr> FilterTable(const Table& input, const Column& predicate) {
  MLCS_ASSIGN_OR_RETURN(std::vector<uint32_t> indices,
                        SelectionIndices(predicate, input.num_rows()));
  return input.TakeRows(indices);
}

}  // namespace mlcs::exec
