#include "exec/filter.h"

#include <algorithm>

#include "storage/encoding.h"

namespace mlcs::exec {

namespace {

/// Serial true-row scan over [begin, end); indices are absolute. Branchless
/// compress-store: the index is written unconditionally and the cursor
/// advances by the predicate bit, so the loop body carries no
/// data-dependent branch (the selectivity-proof selection idiom).
void ScanTrueRows(const Column& predicate, size_t begin, size_t end,
                  std::vector<uint32_t>* out) {
  const uint8_t* data = predicate.bool_data().data();
  const uint8_t* valid = predicate.validity_data();
  size_t base = out->size();
  out->resize(base + (end - begin));
  uint32_t* dst = out->data() + base;
  size_t count = 0;
  if (valid == nullptr) {
    for (size_t i = begin; i < end; ++i) {
      dst[count] = static_cast<uint32_t>(i);
      count += data[i] != 0;
    }
  } else {
    for (size_t i = begin; i < end; ++i) {
      dst[count] = static_cast<uint32_t>(i);
      count += static_cast<size_t>((data[i] != 0) & (valid[i] != 0));
    }
  }
  out->resize(base + count);
}

/// Per-run selection over an RLE BOOLEAN predicate: one decision per run
/// instead of per row (a false or all-null run emits nothing; a true run
/// emits its whole span, minus any null rows).
std::vector<uint32_t> RleTrueRows(const Column& predicate) {
  CountCodePathHit();
  std::vector<uint32_t> indices;
  const auto& rv = predicate.run_values()->bool_data();
  const auto& starts = predicate.run_starts();
  const uint8_t* valid = predicate.validity_data();
  for (size_t r = 0; r + 1 < starts.size(); ++r) {
    if (rv[r] == 0) continue;
    size_t lo = static_cast<size_t>(starts[r]);
    size_t hi = static_cast<size_t>(starts[r + 1]);
    if (valid == nullptr) {
      size_t base = indices.size();
      indices.resize(base + (hi - lo));
      for (size_t i = lo; i < hi; ++i) {
        indices[base + (i - lo)] = static_cast<uint32_t>(i);
      }
    } else {
      for (size_t i = lo; i < hi; ++i) {
        if (valid[i] != 0) indices.push_back(static_cast<uint32_t>(i));
      }
    }
  }
  return indices;
}

}  // namespace

Result<std::vector<uint32_t>> SelectionIndices(const Column& predicate,
                                               size_t num_rows,
                                               const MorselPolicy& policy) {
  if (predicate.type() != TypeId::kBool) {
    return Status::TypeMismatch("filter predicate must be BOOLEAN, got " +
                                std::string(TypeIdToString(predicate.type())));
  }
  if (predicate.encoding() == ColumnEncoding::kRle &&
      predicate.size() == num_rows && num_rows > 0) {
    return RleTrueRows(predicate);
  }
  if (predicate.is_encoded()) {
    // Encoded shapes without a per-run path (length-mismatch errors
    // included) evaluate against the plain decode.
    return SelectionIndices(*predicate.Decode(), num_rows, policy);
  }
  std::vector<uint32_t> indices;
  if (predicate.size() == 1) {
    // Broadcast scalar predicate.
    bool keep = !predicate.IsNull(0) && predicate.bool_data()[0] != 0;
    if (keep) {
      indices.resize(num_rows);
      for (size_t i = 0; i < num_rows; ++i) {
        indices[i] = static_cast<uint32_t>(i);
      }
    }
    return indices;
  }
  if (predicate.size() != num_rows) {
    return Status::InvalidArgument("predicate length " +
                                   std::to_string(predicate.size()) +
                                   " does not match row count " +
                                   std::to_string(num_rows));
  }
  if (!ShouldParallelize(policy, num_rows)) {
    indices.reserve(num_rows / 2);
    ScanTrueRows(predicate, 0, num_rows, &indices);
    return indices;
  }
  // Morsel-parallel scan into per-morsel locals; splicing them in morsel
  // order reproduces the serial vector exactly.
  std::vector<std::vector<uint32_t>> parts(NumMorsels(policy, num_rows));
  MLCS_RETURN_IF_ERROR(ParallelMorsels(
      policy, num_rows, [&](size_t m, size_t begin, size_t end) -> Status {
        parts[m].reserve((end - begin) / 2);
        ScanTrueRows(predicate, begin, end, &parts[m]);
        return Status::OK();
      }));
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  indices.reserve(total);
  for (const auto& p : parts) {
    indices.insert(indices.end(), p.begin(), p.end());
  }
  return indices;
}

Result<TablePtr> GatherRows(const Table& input,
                            const std::vector<uint32_t>& indices,
                            const MorselPolicy& policy) {
  size_t ncols = input.num_columns();
  if (ncols == 0 || !ShouldParallelize(policy, indices.size())) {
    return input.TakeRows(indices);
  }
  size_t morsels = NumMorsels(policy, indices.size());
  size_t width = std::max<size_t>(1, policy.morsel_rows);
  // One gather task per (column, index-morsel); each column's pieces splice
  // back in morsel order into a pre-reserved output column.
  std::vector<std::vector<ColumnPtr>> parts(
      ncols, std::vector<ColumnPtr>(morsels));
  MLCS_RETURN_IF_ERROR(ParallelItems(
      policy, ncols * morsels, [&](size_t item) -> Status {
        size_t c = item / morsels;
        size_t m = item % morsels;
        size_t begin = m * width;
        size_t end = std::min(indices.size(), begin + width);
        parts[c][m] = input.column(c)->Take(indices.data() + begin,
                                            end - begin);
        return Status::OK();
      }));
  std::vector<ColumnPtr> cols(ncols);
  MLCS_RETURN_IF_ERROR(
      ParallelItems(policy, ncols, [&](size_t c) -> Status {
        ColumnPtr out = Column::Make(input.column(c)->type());
        out->Reserve(indices.size());
        for (const ColumnPtr& part : parts[c]) {
          MLCS_RETURN_IF_ERROR(out->AppendColumn(*part));
        }
        cols[c] = std::move(out);
        return Status::OK();
      }));
  return std::make_shared<Table>(input.schema(), std::move(cols));
}

ColumnPtr SortedDictRangeMask(const Column& enc, const Column& per_entry) {
  if (enc.encoding() != ColumnEncoding::kDict || !enc.dict_sorted()) {
    return nullptr;
  }
  if (per_entry.type() != TypeId::kBool || per_entry.has_nulls() ||
      per_entry.encoding() != ColumnEncoding::kPlain) {
    return nullptr;
  }
  const std::vector<uint8_t>& t = per_entry.bool_data();
  size_t k = t.size();
  size_t lo = 0;
  while (lo < k && t[lo] == 0) ++lo;
  size_t hi = k;
  while (hi > lo && t[hi - 1] == 0) --hi;
  // A comparison against a sorted dictionary always yields one band, but
  // verify: any interior false means the caller must gather instead.
  for (size_t i = lo; i < hi; ++i) {
    if (t[i] == 0) return nullptr;
  }
  const std::vector<uint32_t>& codes = enc.codes();
  size_t n = codes.size();
  ColumnPtr out = Column::Make(TypeId::kBool);
  std::vector<uint8_t>& bits = out->bool_data();
  bits.resize(n);
  uint32_t band_lo = static_cast<uint32_t>(lo);
  uint32_t band_hi = static_cast<uint32_t>(hi);
  for (size_t i = 0; i < n; ++i) {
    bits[i] =
        static_cast<uint8_t>((codes[i] >= band_lo) & (codes[i] < band_hi));
  }
  return out;
}

Result<TablePtr> FilterTable(const Table& input, const Column& predicate,
                             const MorselPolicy& policy) {
  MLCS_ASSIGN_OR_RETURN(std::vector<uint32_t> indices,
                        SelectionIndices(predicate, input.num_rows(), policy));
  return GatherRows(input, indices, policy);
}

}  // namespace mlcs::exec
