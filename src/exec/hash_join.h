#ifndef MLCS_EXEC_HASH_JOIN_H_
#define MLCS_EXEC_HASH_JOIN_H_

#include <vector>

#include "common/parallel_for.h"
#include "common/result.h"
#include "storage/table.h"

namespace mlcs::exec {

enum class JoinType { kInner, kLeft };

/// Equi-join of two tables on one or more key column pairs
/// (left_keys[i] = right_keys[i]). Builds a hash table on the right input,
/// probes with the left (so put the smaller relation on the right — in the
/// voter pipeline that is the 2 751-row precincts table).
///
/// Output schema: all left columns followed by all right columns; right
/// column names that collide with a left name get a "_r" suffix. For
/// kLeft, unmatched left rows appear once with NULL right columns.
/// NULL keys never match (SQL semantics).
///
/// Parallel plan on the policy's pool: morsel-parallel key hashing, a
/// hash-partitioned build (one task per partition, partition chosen by the
/// hash's high bits), a morsel-parallel probe whose per-morsel match lists
/// splice in morsel order, and per-column output materialization. Matches
/// for one probe row are emitted in ascending right-row order, so output
/// is bit-identical at every thread count.
Result<TablePtr> HashJoin(const Table& left, const Table& right,
                          const std::vector<std::string>& left_keys,
                          const std::vector<std::string>& right_keys,
                          JoinType type = JoinType::kInner,
                          const MorselPolicy& policy = {});

}  // namespace mlcs::exec

#endif  // MLCS_EXEC_HASH_JOIN_H_
