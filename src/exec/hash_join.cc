#include "exec/hash_join.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "exec/kernels.h"
#include "storage/encoding.h"

namespace mlcs::exec {

namespace {

inline constexpr uint32_t kChainEnd = UINT32_MAX;

/// Row hashes for the given key columns of a table, computed morsel-parallel
/// (each morsel owns a disjoint slice of the hash vector).
Result<std::vector<uint64_t>> KeyHashes(
    const Table& table, const std::vector<std::string>& keys,
    std::vector<ColumnPtr>* key_cols, const MorselPolicy& policy) {
  std::vector<uint64_t> hashes(table.num_rows(), kHashSeed);
  for (const auto& key : keys) {
    MLCS_ASSIGN_OR_RETURN(ColumnPtr col, table.ColumnByName(key));
    key_cols->push_back(col);
  }
  MLCS_RETURN_IF_ERROR(ParallelMorsels(
      policy, table.num_rows(),
      [&](size_t, size_t begin, size_t end) -> Status {
        for (const auto& col : *key_cols) {
          HashCombineColumnRange(*col, begin, end, &hashes);
        }
        return Status::OK();
      }));
  return hashes;
}

bool KeysEqual(const std::vector<ColumnPtr>& left_cols, size_t li,
               const std::vector<ColumnPtr>& right_cols, size_t ri) {
  for (size_t k = 0; k < left_cols.size(); ++k) {
    if (!CellEquals(*left_cols[k], li, *right_cols[k], ri)) return false;
  }
  return true;
}

bool AnyKeyNull(const std::vector<ColumnPtr>& cols, size_t row) {
  for (const auto& c : cols) {
    if (c->IsNull(row)) return true;
  }
  return false;
}

/// Partition index from the hash's high byte. The maps below bucket by the
/// low bits (modulo bucket count), so high-bit partitioning keeps per-map
/// chains as well distributed as a single global map's.
inline size_t PartitionOf(uint64_t hash, size_t num_partitions) {
  return (hash >> 56) & (num_partitions - 1);
}

}  // namespace

Result<TablePtr> HashJoin(const Table& left, const Table& right,
                          const std::vector<std::string>& left_keys,
                          const std::vector<std::string>& right_keys,
                          JoinType type, const MorselPolicy& policy) {
  if (left_keys.size() != right_keys.size() || left_keys.empty()) {
    return Status::InvalidArgument(
        "join requires equal, non-empty key lists");
  }
  std::vector<ColumnPtr> lcols, rcols;
  MLCS_ASSIGN_OR_RETURN(std::vector<uint64_t> lhash,
                        KeyHashes(left, left_keys, &lcols, policy));
  MLCS_ASSIGN_OR_RETURN(std::vector<uint64_t> rhash,
                        KeyHashes(right, right_keys, &rcols, policy));
  for (size_t k = 0; k < lcols.size(); ++k) {
    if (lcols[k]->type() != rcols[k]->type()) {
      return Status::TypeMismatch(
          "join key type mismatch on '" + left_keys[k] + "': " +
          TypeIdToString(lcols[k]->type()) + " vs " +
          TypeIdToString(rcols[k]->type()));
    }
  }

  // Build: hash-partitioned chained table over right rows. `first[p]` maps a
  // hash to the lowest right row with that hash; `next` threads the rest in
  // ascending row order (rows are inserted descending with push-front).
  // Every row of one hash lands in one partition, so chain order — and
  // therefore match order — does not depend on the partition count.
  size_t right_rows = right.num_rows();
  size_t partitions = 1;
  if (ShouldParallelize(policy, right_rows)) {
    while (partitions < policy.threads() && partitions < 16) {
      partitions <<= 1;
    }
  }
  std::vector<uint32_t> next(right_rows, kChainEnd);
  std::vector<std::unordered_map<uint64_t, uint32_t>> first(partitions);
  MLCS_RETURN_IF_ERROR(ParallelItems(
      policy, partitions, [&](size_t p) -> Status {
        auto& map = first[p];
        map.reserve(right_rows / partitions + 1);
        for (size_t r = right_rows; r-- > 0;) {
          if (PartitionOf(rhash[r], partitions) != p) continue;
          if (AnyKeyNull(rcols, r)) continue;  // NULL keys never match
          auto [it, inserted] =
              map.try_emplace(rhash[r], static_cast<uint32_t>(r));
          if (!inserted) {
            next[r] = it->second;
            it->second = static_cast<uint32_t>(r);
          }
        }
        return Status::OK();
      }));

  // Probe: per-morsel match lists, spliced in morsel order.
  size_t left_rows = left.num_rows();
  struct ProbeOut {
    std::vector<uint32_t> l;
    std::vector<int64_t> r;
  };
  std::vector<ProbeOut> probe_parts(NumMorsels(policy, left_rows));
  // Run-level probing: every row of an RLE run carries the same key (and
  // therefore the same hash), so the match list can be resolved once per
  // run and replicated across the run's rows — one map lookup and one
  // chain walk per run instead of per row. Restricted to null-free
  // single-key probes: validity is per-row, so a nullable column can mix
  // null and non-null rows inside one run.
  const Column* rle_key =
      lcols.size() == 1 && lcols[0]->encoding() == ColumnEncoding::kRle &&
              !lcols[0]->has_nulls()
          ? lcols[0].get()
          : nullptr;
  if (rle_key != nullptr) CountCodePathHit();
  MLCS_RETURN_IF_ERROR(ParallelMorsels(
      policy, left_rows, [&](size_t m, size_t begin, size_t end) -> Status {
        ProbeOut& out = probe_parts[m];
        out.l.reserve(end - begin);
        out.r.reserve(end - begin);
        if (rle_key != nullptr && end > begin) {
          const auto& starts = rle_key->run_starts();
          size_t run = rle_key->RunIndexOf(begin);
          std::vector<uint32_t> matches;
          for (size_t l = begin; l < end; ++run) {
            size_t stop = std::min(end, static_cast<size_t>(starts[run + 1]));
            matches.clear();
            const auto& map = first[PartitionOf(lhash[l], partitions)];
            auto it = map.find(lhash[l]);
            if (it != map.end()) {
              for (uint32_t r = it->second; r != kChainEnd; r = next[r]) {
                if (KeysEqual(lcols, l, rcols, r)) matches.push_back(r);
              }
            }
            // Same emission order as the per-row loop below: for each left
            // row in turn, its chain matches in chain order.
            for (; l < stop; ++l) {
              if (matches.empty()) {
                if (type == JoinType::kLeft) {
                  out.l.push_back(static_cast<uint32_t>(l));
                  out.r.push_back(-1);
                }
                continue;
              }
              for (uint32_t r : matches) {
                out.l.push_back(static_cast<uint32_t>(l));
                out.r.push_back(r);
              }
            }
          }
          return Status::OK();
        }
        for (size_t l = begin; l < end; ++l) {
          bool matched = false;
          if (!AnyKeyNull(lcols, l)) {
            const auto& map = first[PartitionOf(lhash[l], partitions)];
            auto it = map.find(lhash[l]);
            if (it != map.end()) {
              for (uint32_t r = it->second; r != kChainEnd; r = next[r]) {
                if (KeysEqual(lcols, l, rcols, r)) {
                  out.l.push_back(static_cast<uint32_t>(l));
                  out.r.push_back(r);
                  matched = true;
                }
              }
            }
          }
          if (!matched && type == JoinType::kLeft) {
            out.l.push_back(static_cast<uint32_t>(l));
            out.r.push_back(-1);
          }
        }
        return Status::OK();
      }));
  size_t total = 0;
  for (const auto& p : probe_parts) total += p.l.size();
  std::vector<uint32_t> out_left;
  std::vector<int64_t> out_right;
  out_left.reserve(total);
  out_right.reserve(total);
  for (const auto& p : probe_parts) {
    out_left.insert(out_left.end(), p.l.begin(), p.l.end());
    out_right.insert(out_right.end(), p.r.begin(), p.r.end());
  }

  // Materialize output columns, one gather task per column.
  Schema schema;
  for (size_t c = 0; c < left.num_columns(); ++c) {
    schema.AddField(left.schema().field(c).name, left.schema().field(c).type);
  }
  for (size_t c = 0; c < right.num_columns(); ++c) {
    std::string name = right.schema().field(c).name;
    if (schema.FieldIndex(name).has_value()) name += "_r";
    schema.AddField(std::move(name), right.schema().field(c).type);
  }
  size_t ncols = left.num_columns() + right.num_columns();
  std::vector<ColumnPtr> columns(ncols);
  MLCS_RETURN_IF_ERROR(ParallelItems(
      policy, ncols, [&](size_t c) -> Status {
        if (c < left.num_columns()) {
          columns[c] = left.column(c)->Take(out_left);
        } else {
          columns[c] =
              TakeOrNull(*right.column(c - left.num_columns()), out_right);
        }
        return Status::OK();
      }));
  auto out = std::make_shared<Table>(std::move(schema), std::move(columns));
  MLCS_RETURN_IF_ERROR(out->Validate());
  return out;
}

}  // namespace mlcs::exec
