#include "exec/hash_join.h"

#include <unordered_map>

#include "exec/kernels.h"

namespace mlcs::exec {

namespace {

/// Row hashes for the given key columns of a table.
Result<std::vector<uint64_t>> KeyHashes(
    const Table& table, const std::vector<std::string>& keys,
    std::vector<ColumnPtr>* key_cols) {
  std::vector<uint64_t> hashes(table.num_rows(), kHashSeed);
  for (const auto& key : keys) {
    MLCS_ASSIGN_OR_RETURN(ColumnPtr col, table.ColumnByName(key));
    key_cols->push_back(col);
    HashCombineColumn(*col, &hashes);
  }
  return hashes;
}

bool KeysEqual(const std::vector<ColumnPtr>& left_cols, size_t li,
               const std::vector<ColumnPtr>& right_cols, size_t ri) {
  for (size_t k = 0; k < left_cols.size(); ++k) {
    if (!CellEquals(*left_cols[k], li, *right_cols[k], ri)) return false;
  }
  return true;
}

bool AnyKeyNull(const std::vector<ColumnPtr>& cols, size_t row) {
  for (const auto& c : cols) {
    if (c->IsNull(row)) return true;
  }
  return false;
}

}  // namespace

Result<TablePtr> HashJoin(const Table& left, const Table& right,
                          const std::vector<std::string>& left_keys,
                          const std::vector<std::string>& right_keys,
                          JoinType type) {
  if (left_keys.size() != right_keys.size() || left_keys.empty()) {
    return Status::InvalidArgument(
        "join requires equal, non-empty key lists");
  }
  std::vector<ColumnPtr> lcols, rcols;
  MLCS_ASSIGN_OR_RETURN(std::vector<uint64_t> lhash,
                        KeyHashes(left, left_keys, &lcols));
  MLCS_ASSIGN_OR_RETURN(std::vector<uint64_t> rhash,
                        KeyHashes(right, right_keys, &rcols));
  for (size_t k = 0; k < lcols.size(); ++k) {
    if (lcols[k]->type() != rcols[k]->type()) {
      return Status::TypeMismatch(
          "join key type mismatch on '" + left_keys[k] + "': " +
          TypeIdToString(lcols[k]->type()) + " vs " +
          TypeIdToString(rcols[k]->type()));
    }
  }

  // Build: hash → right row ids (chained for duplicates/collisions).
  std::unordered_multimap<uint64_t, uint32_t> build;
  build.reserve(right.num_rows());
  for (size_t r = 0; r < right.num_rows(); ++r) {
    if (AnyKeyNull(rcols, r)) continue;  // NULL keys never match
    build.emplace(rhash[r], static_cast<uint32_t>(r));
  }

  // Probe.
  std::vector<uint32_t> out_left;
  std::vector<int64_t> out_right;
  out_left.reserve(left.num_rows());
  out_right.reserve(left.num_rows());
  for (size_t l = 0; l < left.num_rows(); ++l) {
    bool matched = false;
    if (!AnyKeyNull(lcols, l)) {
      auto [begin, end] = build.equal_range(lhash[l]);
      for (auto it = begin; it != end; ++it) {
        uint32_t r = it->second;
        if (KeysEqual(lcols, l, rcols, r)) {
          out_left.push_back(static_cast<uint32_t>(l));
          out_right.push_back(r);
          matched = true;
        }
      }
    }
    if (!matched && type == JoinType::kLeft) {
      out_left.push_back(static_cast<uint32_t>(l));
      out_right.push_back(-1);
    }
  }

  // Materialize output columns.
  Schema schema;
  std::vector<ColumnPtr> columns;
  for (size_t c = 0; c < left.num_columns(); ++c) {
    schema.AddField(left.schema().field(c).name, left.schema().field(c).type);
    columns.push_back(left.column(c)->Take(out_left));
  }
  for (size_t c = 0; c < right.num_columns(); ++c) {
    std::string name = right.schema().field(c).name;
    if (schema.FieldIndex(name).has_value()) name += "_r";
    schema.AddField(std::move(name), right.schema().field(c).type);
    columns.push_back(TakeOrNull(*right.column(c), out_right));
  }
  auto out = std::make_shared<Table>(std::move(schema), std::move(columns));
  MLCS_RETURN_IF_ERROR(out->Validate());
  return out;
}

}  // namespace mlcs::exec
