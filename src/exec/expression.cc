#include "exec/expression.h"

namespace mlcs::exec {

Result<ColumnPtr> ColumnRefExpr::Evaluate(const EvalContext& ctx) const {
  if (ctx.input == nullptr) {
    return Status::InvalidArgument("column reference '" + name_ +
                                   "' without an input table");
  }
  return ctx.input->ColumnByName(name_);
}

Result<ColumnPtr> LiteralExpr::Evaluate(const EvalContext& /*ctx*/) const {
  // Length-1 column; kernels broadcast it against full-length operands.
  return Column::Constant(value_, 1);
}

Result<ColumnPtr> BinaryExpr::Evaluate(const EvalContext& ctx) const {
  MLCS_ASSIGN_OR_RETURN(ColumnPtr left, left_->Evaluate(ctx));
  MLCS_ASSIGN_OR_RETURN(ColumnPtr right, right_->Evaluate(ctx));
  return BinaryKernel(op_, *left, *right);
}

std::string BinaryExpr::ToString() const {
  std::string out = "(";
  out += left_->ToString();
  out += ' ';
  out += BinOpKindToString(op_);
  out += ' ';
  out += right_->ToString();
  out += ')';
  return out;
}

Result<ColumnPtr> UnaryExpr::Evaluate(const EvalContext& ctx) const {
  MLCS_ASSIGN_OR_RETURN(ColumnPtr operand, operand_->Evaluate(ctx));
  return UnaryKernel(op_, *operand);
}

std::string UnaryExpr::ToString() const {
  return std::string(op_ == UnOpKind::kNeg ? "-" : "NOT ") +
         operand_->ToString();
}

Result<ColumnPtr> CastExpr::Evaluate(const EvalContext& ctx) const {
  MLCS_ASSIGN_OR_RETURN(ColumnPtr operand, operand_->Evaluate(ctx));
  return operand->CastTo(target_);
}

std::string CastExpr::ToString() const {
  return "CAST(" + operand_->ToString() + " AS " + TypeIdToString(target_) +
         ")";
}

Result<ColumnPtr> IsNullExpr::Evaluate(const EvalContext& ctx) const {
  MLCS_ASSIGN_OR_RETURN(ColumnPtr operand, operand_->Evaluate(ctx));
  size_t n = operand->size();
  std::vector<uint8_t> out(n);
  for (size_t i = 0; i < n; ++i) {
    bool is_null = operand->IsNull(i);
    out[i] = (is_null != negated_) ? 1 : 0;
  }
  return Column::FromBool(std::move(out));
}

std::string IsNullExpr::ToString() const {
  return operand_->ToString() + (negated_ ? " IS NOT NULL" : " IS NULL");
}

Result<ColumnPtr> CaseExpr::Evaluate(const EvalContext& ctx) const {
  if (branches_.empty()) {
    return Status::InvalidArgument("CASE needs at least one WHEN branch");
  }
  size_t n = ctx.input != nullptr ? ctx.input->num_rows() : 1;

  struct EvaluatedBranch {
    ColumnPtr condition;
    ColumnPtr value;
  };
  std::vector<EvaluatedBranch> branches;
  branches.reserve(branches_.size());
  for (const auto& [cond_expr, value_expr] : branches_) {
    EvaluatedBranch b;
    MLCS_ASSIGN_OR_RETURN(b.condition, cond_expr->Evaluate(ctx));
    if (b.condition->type() != TypeId::kBool) {
      return Status::TypeMismatch("CASE WHEN condition must be BOOLEAN");
    }
    // The row loop below reads bool_data() directly; a condition that is a
    // bare reference to an encoded stored column decodes once here — per
    // WHEN branch, not per row.
    if (b.condition->is_encoded()) b.condition = b.condition->Decode();  // lint:allow(row-decode)
    MLCS_ASSIGN_OR_RETURN(b.value, value_expr->Evaluate(ctx));
    branches.push_back(std::move(b));
  }
  ColumnPtr else_col;
  if (else_value_ != nullptr) {
    MLCS_ASSIGN_OR_RETURN(else_col, else_value_->Evaluate(ctx));
  }

  // Result type: all equal, or the common numeric promotion.
  TypeId out_type = branches[0].value->type();
  auto unify = [&out_type](TypeId t) -> Status {
    if (t == out_type) return Status::OK();
    MLCS_ASSIGN_OR_RETURN(out_type, CommonNumericType(out_type, t));
    return Status::OK();
  };
  for (const auto& b : branches) {
    MLCS_RETURN_IF_ERROR(unify(b.value->type()));
  }
  if (else_col != nullptr) MLCS_RETURN_IF_ERROR(unify(else_col->type()));

  auto fetch = [](const ColumnPtr& col, size_t row) -> Result<Value> {
    return col->GetValue(col->size() == 1 ? 0 : row);
  };
  ColumnPtr out = Column::Make(out_type);
  out->Reserve(n);
  for (size_t r = 0; r < n; ++r) {
    bool matched = false;
    for (const auto& b : branches) {
      size_t ci = b.condition->size() == 1 ? 0 : r;
      if (!b.condition->IsNull(ci) && b.condition->bool_data()[ci] != 0) {
        MLCS_ASSIGN_OR_RETURN(Value v, fetch(b.value, r));
        MLCS_RETURN_IF_ERROR(out->AppendValue(v));
        matched = true;
        break;
      }
    }
    if (matched) continue;
    if (else_col != nullptr) {
      MLCS_ASSIGN_OR_RETURN(Value v, fetch(else_col, r));
      MLCS_RETURN_IF_ERROR(out->AppendValue(v));
    } else {
      out->AppendNull();
    }
  }
  return out;
}

std::string CaseExpr::ToString() const {
  std::string out = "CASE";
  for (const auto& [cond, value] : branches_) {
    out += " WHEN " + cond->ToString() + " THEN " + value->ToString();
  }
  if (else_value_ != nullptr) out += " ELSE " + else_value_->ToString();
  return out + " END";
}

Result<ColumnPtr> FunctionCallExpr::Evaluate(const EvalContext& ctx) const {
  if (!ctx.call_function) {
    return Status::NotImplemented("no function dispatcher installed; '" +
                                  name_ + "' cannot be called here");
  }
  std::vector<ColumnPtr> args;
  args.reserve(args_.size());
  size_t num_rows = ctx.input != nullptr ? ctx.input->num_rows() : 1;
  for (const auto& arg : args_) {
    MLCS_ASSIGN_OR_RETURN(ColumnPtr col, arg->Evaluate(ctx));
    args.push_back(std::move(col));
  }
  return ctx.call_function(name_, args, num_rows);
}

std::string FunctionCallExpr::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i]->ToString();
  }
  out += ")";
  return out;
}

}  // namespace mlcs::exec
