#ifndef MLCS_EXEC_EXPRESSION_H_
#define MLCS_EXEC_EXPRESSION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/kernels.h"
#include "storage/table.h"

namespace mlcs::exec {

/// Everything an expression needs to evaluate against a row source.
/// `call_function` is injected by the SQL executor and dispatches to the
/// vectorized scalar-UDF registry (keeping exec/ independent of udf/).
struct EvalContext {
  const Table* input = nullptr;
  std::function<Result<ColumnPtr>(const std::string& name,
                                  const std::vector<ColumnPtr>& args,
                                  size_t num_rows)>
      call_function;
};

/// A vectorized expression: evaluates to a whole column over the input
/// table (column-at-a-time, MonetDB style). Length-1 results broadcast
/// inside kernels.
class Expression {
 public:
  virtual ~Expression() = default;
  virtual Result<ColumnPtr> Evaluate(const EvalContext& ctx) const = 0;
  virtual std::string ToString() const = 0;
};

using ExprPtr = std::shared_ptr<Expression>;

/// Reference to an input column by (case-insensitive) name.
class ColumnRefExpr : public Expression {
 public:
  explicit ColumnRefExpr(std::string name) : name_(std::move(name)) {}
  Result<ColumnPtr> Evaluate(const EvalContext& ctx) const override;
  std::string ToString() const override { return name_; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

/// Constant; broadcasts as a length-1 column.
class LiteralExpr : public Expression {
 public:
  explicit LiteralExpr(Value value) : value_(std::move(value)) {}
  Result<ColumnPtr> Evaluate(const EvalContext& ctx) const override;
  std::string ToString() const override { return value_.ToString(); }
  const Value& value() const { return value_; }

 private:
  Value value_;
};

class BinaryExpr : public Expression {
 public:
  BinaryExpr(BinOpKind op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}
  Result<ColumnPtr> Evaluate(const EvalContext& ctx) const override;
  std::string ToString() const override;

 private:
  BinOpKind op_;
  ExprPtr left_;
  ExprPtr right_;
};

class UnaryExpr : public Expression {
 public:
  UnaryExpr(UnOpKind op, ExprPtr operand)
      : op_(op), operand_(std::move(operand)) {}
  Result<ColumnPtr> Evaluate(const EvalContext& ctx) const override;
  std::string ToString() const override;

 private:
  UnOpKind op_;
  ExprPtr operand_;
};

/// CAST(expr AS TYPE).
class CastExpr : public Expression {
 public:
  CastExpr(ExprPtr operand, TypeId target)
      : operand_(std::move(operand)), target_(target) {}
  Result<ColumnPtr> Evaluate(const EvalContext& ctx) const override;
  std::string ToString() const override;

 private:
  ExprPtr operand_;
  TypeId target_;
};

/// expr IS [NOT] NULL — evaluates to BOOL.
class IsNullExpr : public Expression {
 public:
  IsNullExpr(ExprPtr operand, bool negated)
      : operand_(std::move(operand)), negated_(negated) {}
  Result<ColumnPtr> Evaluate(const EvalContext& ctx) const override;
  std::string ToString() const override;

 private:
  ExprPtr operand_;
  bool negated_;
};

/// CASE WHEN c1 THEN v1 [WHEN ...] [ELSE e] END — evaluated fully
/// vectorized (all branches computed, then a row-wise select; SQL CASE
/// short-circuit semantics for side effects do not apply since expressions
/// here are pure). Value types must share a numeric promotion or be
/// identical; rows with no matching branch and no ELSE become NULL.
class CaseExpr : public Expression {
 public:
  CaseExpr(std::vector<std::pair<ExprPtr, ExprPtr>> branches,
           ExprPtr else_value)
      : branches_(std::move(branches)), else_value_(std::move(else_value)) {}
  Result<ColumnPtr> Evaluate(const EvalContext& ctx) const override;
  std::string ToString() const override;

 private:
  std::vector<std::pair<ExprPtr, ExprPtr>> branches_;
  ExprPtr else_value_;
};

/// name(arg, ...) — dispatched through EvalContext::call_function, i.e.
/// a registered vectorized scalar UDF (the paper's Listing 2 style) or an
/// engine builtin.
class FunctionCallExpr : public Expression {
 public:
  FunctionCallExpr(std::string name, std::vector<ExprPtr> args)
      : name_(std::move(name)), args_(std::move(args)) {}
  Result<ColumnPtr> Evaluate(const EvalContext& ctx) const override;
  std::string ToString() const override;
  const std::string& name() const { return name_; }
  const std::vector<ExprPtr>& args() const { return args_; }

 private:
  std::string name_;
  std::vector<ExprPtr> args_;
};

}  // namespace mlcs::exec

#endif  // MLCS_EXEC_EXPRESSION_H_
