#include "exec/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "exec/filter.h"
#include "storage/encoding.h"

namespace mlcs::exec {

namespace {

bool IsComparison(BinOpKind op) {
  switch (op) {
    case BinOpKind::kEq:
    case BinOpKind::kNe:
    case BinOpKind::kLt:
    case BinOpKind::kLe:
    case BinOpKind::kGt:
    case BinOpKind::kGe:
      return true;
    default:
      return false;
  }
}

bool IsLogical(BinOpKind op) {
  return op == BinOpKind::kAnd || op == BinOpKind::kOr;
}

/// Copies a numeric column into a typed buffer of the promoted type.
template <typename T>
std::vector<T> PromoteNumeric(const Column& col) {
  size_t n = col.size();
  std::vector<T> out(n);
  switch (col.type()) {
    case TypeId::kBool: {
      const auto& src = col.bool_data();
      for (size_t i = 0; i < n; ++i) out[i] = static_cast<T>(src[i]);
      break;
    }
    case TypeId::kInt32: {
      const auto& src = col.i32_data();
      for (size_t i = 0; i < n; ++i) out[i] = static_cast<T>(src[i]);
      break;
    }
    case TypeId::kInt64: {
      const auto& src = col.i64_data();
      for (size_t i = 0; i < n; ++i) out[i] = static_cast<T>(src[i]);
      break;
    }
    case TypeId::kDouble: {
      const auto& src = col.f64_data();
      for (size_t i = 0; i < n; ++i) out[i] = static_cast<T>(src[i]);
      break;
    }
    default:
      break;
  }
  return out;
}

/// Merged validity vector for a binary op (empty == all valid).
/// `ln`/`rn` are operand lengths; `n` the broadcast output length.
std::vector<uint8_t> MergeValidity(const Column& l, const Column& r,
                                   size_t n) {
  if (!l.has_nulls() && !r.has_nulls()) return {};
  std::vector<uint8_t> out(n, 1);
  size_t ln = l.size(), rn = r.size();
  for (size_t i = 0; i < n; ++i) {
    bool lnull = l.IsNull(ln == 1 ? 0 : i);
    bool rnull = r.IsNull(rn == 1 ? 0 : i);
    if (lnull || rnull) out[i] = 0;
  }
  return out;
}

void ApplyValidity(Column* col, std::vector<uint8_t> validity) {
  for (size_t i = 0; i < validity.size(); ++i) {
    if (validity[i] == 0) col->SetNull(i);
  }
}

/// Arithmetic loop over promoted buffers; Op(f) must be total over T
/// except that integer / and % guard zero divisors via the extra_null mask.
template <typename T, typename F>
ColumnPtr ArithmeticLoop(const std::vector<T>& l, const std::vector<T>& r,
                         size_t n, F f) {
  std::vector<T> out(n);
  size_t ln = l.size(), rn = r.size();
  if (ln == rn) {
    for (size_t i = 0; i < n; ++i) out[i] = f(l[i], r[i]);
  } else if (ln == 1) {
    for (size_t i = 0; i < n; ++i) out[i] = f(l[0], r[i]);
  } else {
    for (size_t i = 0; i < n; ++i) out[i] = f(l[i], r[0]);
  }
  if constexpr (std::is_same_v<T, int32_t>) {
    return Column::FromInt32(std::move(out));
  } else if constexpr (std::is_same_v<T, int64_t>) {
    return Column::FromInt64(std::move(out));
  } else {
    return Column::FromDouble(std::move(out));
  }
}

template <typename T>
Result<ColumnPtr> IntegerArithmetic(BinOpKind op, const std::vector<T>& l,
                                    const std::vector<T>& r, size_t n,
                                    std::vector<uint8_t>* extra_nulls) {
  auto pick = [&](const std::vector<T>& v, size_t i) {
    return v.size() == 1 ? v[0] : v[i];
  };
  switch (op) {
    case BinOpKind::kAdd:
      return ArithmeticLoop<T>(l, r, n, [](T a, T b) { return T(a + b); });
    case BinOpKind::kSub:
      return ArithmeticLoop<T>(l, r, n, [](T a, T b) { return T(a - b); });
    case BinOpKind::kMul:
      return ArithmeticLoop<T>(l, r, n, [](T a, T b) { return T(a * b); });
    case BinOpKind::kDiv:
    case BinOpKind::kMod: {
      // SQL semantics: x / 0 and x % 0 are NULL, not a crash.
      std::vector<T> out(n);
      extra_nulls->assign(n, 1);
      bool any_null = false;
      for (size_t i = 0; i < n; ++i) {
        T a = pick(l, i), b = pick(r, i);
        if (b == 0) {
          out[i] = 0;
          (*extra_nulls)[i] = 0;
          any_null = true;
        } else {
          out[i] = op == BinOpKind::kDiv ? T(a / b) : T(a % b);
        }
      }
      if (!any_null) extra_nulls->clear();
      if constexpr (std::is_same_v<T, int32_t>) {
        return Column::FromInt32(std::move(out));
      } else {
        return Column::FromInt64(std::move(out));
      }
    }
    default:
      return Status::Internal("not an arithmetic op");
  }
}

Result<ColumnPtr> DoubleArithmetic(BinOpKind op, const std::vector<double>& l,
                                   const std::vector<double>& r, size_t n) {
  switch (op) {
    case BinOpKind::kAdd:
      return ArithmeticLoop<double>(l, r, n,
                                    [](double a, double b) { return a + b; });
    case BinOpKind::kSub:
      return ArithmeticLoop<double>(l, r, n,
                                    [](double a, double b) { return a - b; });
    case BinOpKind::kMul:
      return ArithmeticLoop<double>(l, r, n,
                                    [](double a, double b) { return a * b; });
    case BinOpKind::kDiv:
      return ArithmeticLoop<double>(l, r, n,
                                    [](double a, double b) { return a / b; });
    case BinOpKind::kMod:
      return ArithmeticLoop<double>(
          l, r, n, [](double a, double b) { return std::fmod(a, b); });
    default:
      return Status::Internal("not an arithmetic op");
  }
}

template <typename T, typename F>
ColumnPtr CompareLoop(const std::vector<T>& l, const std::vector<T>& r,
                      size_t n, F f) {
  std::vector<uint8_t> out(n);
  size_t ln = l.size(), rn = r.size();
  if (ln == rn) {
    for (size_t i = 0; i < n; ++i) out[i] = f(l[i], r[i]) ? 1 : 0;
  } else if (ln == 1) {
    for (size_t i = 0; i < n; ++i) out[i] = f(l[0], r[i]) ? 1 : 0;
  } else {
    for (size_t i = 0; i < n; ++i) out[i] = f(l[i], r[0]) ? 1 : 0;
  }
  return Column::FromBool(std::move(out));
}

template <typename T>
ColumnPtr TypedCompare(BinOpKind op, const std::vector<T>& l,
                       const std::vector<T>& r, size_t n) {
  switch (op) {
    case BinOpKind::kEq:
      return CompareLoop<T>(l, r, n, [](const T& a, const T& b) { return a == b; });
    case BinOpKind::kNe:
      return CompareLoop<T>(l, r, n, [](const T& a, const T& b) { return a != b; });
    case BinOpKind::kLt:
      return CompareLoop<T>(l, r, n, [](const T& a, const T& b) { return a < b; });
    case BinOpKind::kLe:
      return CompareLoop<T>(l, r, n, [](const T& a, const T& b) { return a <= b; });
    case BinOpKind::kGt:
      return CompareLoop<T>(l, r, n, [](const T& a, const T& b) { return a > b; });
    case BinOpKind::kGe:
      return CompareLoop<T>(l, r, n, [](const T& a, const T& b) { return a >= b; });
    default:
      return nullptr;
  }
}

uint64_t MixHash(uint64_t h, uint64_t v) {
  // 64-bit finalizer from MurmurHash3 applied to the combined word.
  uint64_t x = h ^ (v + kHashSeed + (h << 6) + (h >> 2));
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

uint64_t HashBytes(const void* data, size_t len) {
  // FNV-1a 64.
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

constexpr uint64_t kNullHash = 0x6E756C6C6E756C6CULL;  // "nullnull"

/// One row's hash word, exactly as the plain typed loops in
/// HashCombineColumnRange compute it — the per-dictionary-entry hashing
/// below must produce bit-identical words for non-null rows.
uint64_t ValueWord(const Column& col, size_t i) {
  switch (col.type()) {
    case TypeId::kBool:
      return col.bool_data()[i];
    case TypeId::kInt32:
      return static_cast<uint64_t>(static_cast<int64_t>(col.i32_data()[i]));
    case TypeId::kInt64:
      return static_cast<uint64_t>(col.i64_data()[i]);
    case TypeId::kDouble: {
      uint64_t bits;
      std::memcpy(&bits, &col.f64_data()[i], sizeof(bits));
      return bits;
    }
    case TypeId::kVarchar:
    case TypeId::kBlob:
      return HashBytes(col.str_data()[i].data(), col.str_data()[i].size());
  }
  return 0;
}

/// The broadcastable literal shape the encoded fast paths rewrite against:
/// one plain non-null row.
bool IsPlainLiteral(const Column& c) {
  return !c.is_encoded() && c.size() == 1 && !c.has_nulls();
}

/// row → run-index gather vector for an RLE column (expands a per-run
/// result back to row granularity in one Take).
std::vector<uint32_t> RunIndexVector(const Column& c) {
  const auto& starts = c.run_starts();
  std::vector<uint32_t> ridx(c.size());
  for (size_t r = 0; r + 1 < starts.size(); ++r) {
    for (uint64_t i = starts[r]; i < starts[r + 1]; ++i) {
      ridx[i] = static_cast<uint32_t>(r);
    }
  }
  return ridx;
}

/// Nulls in `src` become nulls in `out` — the validity overlay the
/// gather-based fast paths apply after expanding a per-code result.
void OverlayNulls(const Column& src, Column* out) {
  if (!src.has_nulls()) return;
  size_t n = src.size();
  for (size_t i = 0; i < n; ++i) {
    if (src.IsNull(i)) out->SetNull(i);
  }
}

/// Serial element-wise binary kernel over full columns — the pre-morsel
/// code path, also the per-morsel worker body.
Result<ColumnPtr> BinaryKernelSerial(BinOpKind op, const Column& left,
                                     const Column& right) {
  size_t ln = left.size(), rn = right.size();
  // Broadcast rule: a length-1 operand adopts the other side's length —
  // including zero (scalar ⊕ empty column → empty column).
  size_t n = ln == rn ? ln : (ln == 1 ? rn : ln);

  if (IsLogical(op)) {
    if (left.type() != TypeId::kBool || right.type() != TypeId::kBool) {
      return Status::TypeMismatch("AND/OR require BOOLEAN operands");
    }
    const auto& l = left.bool_data();
    const auto& r = right.bool_data();
    ColumnPtr out =
        op == BinOpKind::kAnd
            ? CompareLoop<uint8_t>(l, r, n,
                                   [](uint8_t a, uint8_t b) { return a && b; })
            : CompareLoop<uint8_t>(
                  l, r, n, [](uint8_t a, uint8_t b) { return a || b; });
    ApplyValidity(out.get(), MergeValidity(left, right, n));
    return out;
  }

  if (IsComparison(op)) {
    ColumnPtr out;
    if (left.type() == TypeId::kVarchar && right.type() == TypeId::kVarchar) {
      out = TypedCompare<std::string>(op, left.str_data(), right.str_data(),
                                      n);
    } else {
      MLCS_ASSIGN_OR_RETURN(TypeId common,
                            CommonNumericType(left.type(), right.type()));
      if (common == TypeId::kDouble) {
        out = TypedCompare<double>(op, PromoteNumeric<double>(left),
                                   PromoteNumeric<double>(right), n);
      } else {
        out = TypedCompare<int64_t>(op, PromoteNumeric<int64_t>(left),
                                    PromoteNumeric<int64_t>(right), n);
      }
    }
    ApplyValidity(out.get(), MergeValidity(left, right, n));
    return out;
  }

  // Arithmetic.
  MLCS_ASSIGN_OR_RETURN(TypeId common,
                        CommonNumericType(left.type(), right.type()));
  ColumnPtr out;
  std::vector<uint8_t> extra_nulls;
  if (common == TypeId::kDouble) {
    MLCS_ASSIGN_OR_RETURN(out, DoubleArithmetic(op, PromoteNumeric<double>(left),
                                                PromoteNumeric<double>(right),
                                                n));
  } else if (common == TypeId::kInt64) {
    MLCS_ASSIGN_OR_RETURN(
        out, IntegerArithmetic<int64_t>(op, PromoteNumeric<int64_t>(left),
                                        PromoteNumeric<int64_t>(right), n,
                                        &extra_nulls));
  } else {
    // int32 or bool arithmetic → int32.
    MLCS_ASSIGN_OR_RETURN(
        out, IntegerArithmetic<int32_t>(op, PromoteNumeric<int32_t>(left),
                                        PromoteNumeric<int32_t>(right), n,
                                        &extra_nulls));
  }
  ApplyValidity(out.get(), MergeValidity(left, right, n));
  ApplyValidity(out.get(), std::move(extra_nulls));
  return out;
}

/// Operate-on-encoded-data fast paths (DESIGN.md §13). A dictionary or RLE
/// operand against a scalar literal computes the op once per dictionary
/// entry / run on the small plain payload, then expands that per-code
/// result through the codes with one gather — O(distinct + n) instead of
/// O(n) typed work. Because the per-entry values are exactly the column's
/// distinct plain values, every SQL semantic (type promotion, ÷0 nulls,
/// VARCHAR compares) falls out of the same serial kernel the plain path
/// runs, so results are bit-identical with encoding disabled. Shapes
/// without a fast path decode and re-enter the plain kernel.
Result<ColumnPtr> EncodedBinaryKernel(BinOpKind op, const Column& left,
                                      const Column& right,
                                      const MorselPolicy& policy) {
  const Column* enc = nullptr;
  const Column* lit = nullptr;
  bool enc_left = false;
  if (left.is_encoded() && IsPlainLiteral(right)) {
    enc = &left;
    lit = &right;
    enc_left = true;
  } else if (right.is_encoded() && IsPlainLiteral(left)) {
    enc = &right;
    lit = &left;
  }
  if (enc != nullptr) {
    const Column& per_input = enc->encoding() == ColumnEncoding::kDict
                                  ? *enc->dict()
                                  : *enc->run_values();
    // An empty dictionary / zero runs means every row is NULL (or the
    // column is empty): nothing to gather from, take the decode path.
    if (per_input.size() > 0) {
      MLCS_ASSIGN_OR_RETURN(ColumnPtr per,
                            enc_left ? BinaryKernelSerial(op, per_input, *lit)
                                     : BinaryKernelSerial(op, *lit, per_input));
      // Sorted-dictionary comparisons skip the per-row gather entirely:
      // the per-entry trues are one code band, so the mask is two
      // branchless code compares (filter.h).
      ColumnPtr out;
      if (IsComparison(op) && enc->encoding() == ColumnEncoding::kDict) {
        out = SortedDictRangeMask(*enc, *per);
      }
      if (out == nullptr) {
        out = enc->encoding() == ColumnEncoding::kDict
                  ? per->Take(enc->codes())
                  : per->Take(RunIndexVector(*enc));
      }
      OverlayNulls(*enc, out.get());
      CountCodePathHit();
      return out;
    }
  }
  ColumnPtr lp = left.is_encoded() ? left.Decode() : nullptr;
  ColumnPtr rp = right.is_encoded() ? right.Decode() : nullptr;
  return BinaryKernel(op, lp != nullptr ? *lp : left,
                      rp != nullptr ? *rp : right, policy);
}

/// Concatenates per-morsel result slices in morsel order.
Result<ColumnPtr> SpliceParts(const std::vector<ColumnPtr>& parts,
                              size_t total_rows) {
  if (parts.size() == 1) return parts[0];
  ColumnPtr out = Column::Make(parts[0]->type());
  out->Reserve(total_rows);
  for (const auto& part : parts) {
    MLCS_RETURN_IF_ERROR(out->AppendColumn(*part));
  }
  return out;
}

}  // namespace

const char* BinOpKindToString(BinOpKind op) {
  switch (op) {
    case BinOpKind::kAdd:
      return "+";
    case BinOpKind::kSub:
      return "-";
    case BinOpKind::kMul:
      return "*";
    case BinOpKind::kDiv:
      return "/";
    case BinOpKind::kMod:
      return "%";
    case BinOpKind::kEq:
      return "=";
    case BinOpKind::kNe:
      return "<>";
    case BinOpKind::kLt:
      return "<";
    case BinOpKind::kLe:
      return "<=";
    case BinOpKind::kGt:
      return ">";
    case BinOpKind::kGe:
      return ">=";
    case BinOpKind::kAnd:
      return "AND";
    case BinOpKind::kOr:
      return "OR";
  }
  return "?";
}

Result<ColumnPtr> BinaryKernel(BinOpKind op, const Column& left,
                               const Column& right,
                               const MorselPolicy& policy) {
  size_t ln = left.size(), rn = right.size();
  if (ln != rn && ln != 1 && rn != 1) {
    return Status::InvalidArgument(
        "operand lengths " + std::to_string(ln) + " and " +
        std::to_string(rn) + " are incompatible (no broadcast)");
  }
  size_t n = ln == rn ? ln : (ln == 1 ? rn : ln);

  if (left.is_encoded() || right.is_encoded()) {
    return EncodedBinaryKernel(op, left, right, policy);
  }

  if (!ShouldParallelize(policy, n)) {
    return BinaryKernelSerial(op, left, right);
  }

  // Morsel-parallel: each morsel runs the serial kernel over column slices
  // (length-1 broadcast operands are shared unsliced), then the per-morsel
  // outputs splice back in morsel order. Element-wise semantics make the
  // result independent of the split.
  std::vector<ColumnPtr> parts(NumMorsels(policy, n));
  MLCS_RETURN_IF_ERROR(ParallelMorsels(
      policy, n, [&](size_t m, size_t begin, size_t end) -> Status {
        size_t rows = end - begin;
        ColumnPtr lslice = ln == 1 ? nullptr : left.Slice(begin, rows);
        ColumnPtr rslice = rn == 1 ? nullptr : right.Slice(begin, rows);
        const Column& l = lslice != nullptr ? *lslice : left;
        const Column& r = rslice != nullptr ? *rslice : right;
        MLCS_ASSIGN_OR_RETURN(parts[m], BinaryKernelSerial(op, l, r));
        return Status::OK();
      }));
  return SpliceParts(parts, n);
}

Result<ColumnPtr> UnaryKernel(UnOpKind op, const Column& input,
                              const MorselPolicy& policy) {
  size_t n = input.size();
  if (input.is_encoded()) {
    // Apply the op once per dictionary entry / run, then expand through the
    // codes (NOT and unary minus are pure per value, so the gathered result
    // matches the plain per-row loops bit for bit).
    const Column& per_input = input.encoding() == ColumnEncoding::kDict
                                  ? *input.dict()
                                  : *input.run_values();
    if (per_input.size() == 0) return UnaryKernel(op, *input.Decode(), policy);
    MLCS_ASSIGN_OR_RETURN(ColumnPtr per, UnaryKernel(op, per_input));
    ColumnPtr out = input.encoding() == ColumnEncoding::kDict
                        ? per->Take(input.codes())
                        : per->Take(RunIndexVector(input));
    OverlayNulls(input, out.get());
    CountCodePathHit();
    return out;
  }
  if (ShouldParallelize(policy, n)) {
    std::vector<ColumnPtr> parts(NumMorsels(policy, n));
    MLCS_RETURN_IF_ERROR(ParallelMorsels(
        policy, n, [&](size_t m, size_t begin, size_t end) -> Status {
          ColumnPtr slice = input.Slice(begin, end - begin);
          MLCS_ASSIGN_OR_RETURN(parts[m], UnaryKernel(op, *slice));
          return Status::OK();
        }));
    return SpliceParts(parts, n);
  }
  ColumnPtr out;
  if (op == UnOpKind::kNot) {
    if (input.type() != TypeId::kBool) {
      return Status::TypeMismatch("NOT requires a BOOLEAN operand");
    }
    std::vector<uint8_t> data(n);
    const auto& src = input.bool_data();
    for (size_t i = 0; i < n; ++i) data[i] = src[i] ? 0 : 1;
    out = Column::FromBool(std::move(data));
  } else {
    switch (input.type()) {
      case TypeId::kInt32: {
        std::vector<int32_t> data(n);
        const auto& src = input.i32_data();
        for (size_t i = 0; i < n; ++i) data[i] = -src[i];
        out = Column::FromInt32(std::move(data));
        break;
      }
      case TypeId::kInt64: {
        std::vector<int64_t> data(n);
        const auto& src = input.i64_data();
        for (size_t i = 0; i < n; ++i) data[i] = -src[i];
        out = Column::FromInt64(std::move(data));
        break;
      }
      case TypeId::kDouble: {
        std::vector<double> data(n);
        const auto& src = input.f64_data();
        for (size_t i = 0; i < n; ++i) data[i] = -src[i];
        out = Column::FromDouble(std::move(data));
        break;
      }
      default:
        return Status::TypeMismatch("unary minus requires a numeric operand");
    }
  }
  if (input.has_nulls()) {
    for (size_t i = 0; i < n; ++i) {
      if (input.IsNull(i)) out->SetNull(i);
    }
  }
  return out;
}

void HashCombineColumn(const Column& column, std::vector<uint64_t>* hashes) {
  HashCombineColumnRange(column, 0, column.size(), hashes);
}

void HashCombineColumnRange(const Column& column, size_t begin, size_t end,
                            std::vector<uint64_t>* hashes) {
  if (column.is_encoded()) {
    // Hash each dictionary entry / run value once, then mix the gathered
    // word per row. Non-null rows mix exactly the word the plain loops
    // below would (the dictionary holds the plain values), so hashes agree
    // across encodings wherever equality can hold; null rows are excluded
    // from joins and resolved by CellEquals in group-by, so their value
    // word is free to differ from the decoded default slot's.
    const Column& vals = column.encoding() == ColumnEncoding::kDict
                             ? *column.dict()
                             : *column.run_values();
    size_t k = vals.size();
    std::vector<uint64_t> words(k);
    for (size_t e = 0; e < k; ++e) words[e] = ValueWord(vals, e);
    if (column.encoding() == ColumnEncoding::kDict) {
      if (k > 0) {
        const auto& codes = column.codes();
        for (size_t i = begin; i < end; ++i) {
          (*hashes)[i] = MixHash((*hashes)[i], words[codes[i]]);
        }
      }
    } else if (k > 0 && end > begin) {
      const auto& starts = column.run_starts();
      size_t r = column.RunIndexOf(begin);
      for (size_t i = begin; i < end;) {
        size_t stop = std::min(end, static_cast<size_t>(starts[r + 1]));
        uint64_t w = words[r];
        for (; i < stop; ++i) (*hashes)[i] = MixHash((*hashes)[i], w);
        ++r;
      }
    }
    if (column.has_nulls()) {
      for (size_t i = begin; i < end; ++i) {
        if (column.IsNull(i)) (*hashes)[i] = MixHash((*hashes)[i], kNullHash);
      }
    }
    CountCodePathHit();
    return;
  }
  switch (column.type()) {
    case TypeId::kBool: {
      const auto& src = column.bool_data();
      for (size_t i = begin; i < end; ++i) {
        (*hashes)[i] = MixHash((*hashes)[i], src[i]);
      }
      break;
    }
    case TypeId::kInt32: {
      const auto& src = column.i32_data();
      for (size_t i = begin; i < end; ++i) {
        (*hashes)[i] =
            MixHash((*hashes)[i], static_cast<uint64_t>(
                                      static_cast<int64_t>(src[i])));
      }
      break;
    }
    case TypeId::kInt64: {
      const auto& src = column.i64_data();
      for (size_t i = begin; i < end; ++i) {
        (*hashes)[i] = MixHash((*hashes)[i], static_cast<uint64_t>(src[i]));
      }
      break;
    }
    case TypeId::kDouble: {
      const auto& src = column.f64_data();
      for (size_t i = begin; i < end; ++i) {
        uint64_t bits;
        std::memcpy(&bits, &src[i], sizeof(bits));
        (*hashes)[i] = MixHash((*hashes)[i], bits);
      }
      break;
    }
    case TypeId::kVarchar:
    case TypeId::kBlob: {
      const auto& src = column.str_data();
      for (size_t i = begin; i < end; ++i) {
        (*hashes)[i] =
            MixHash((*hashes)[i], HashBytes(src[i].data(), src[i].size()));
      }
      break;
    }
  }
  if (column.has_nulls()) {
    for (size_t i = begin; i < end; ++i) {
      if (column.IsNull(i)) (*hashes)[i] = MixHash((*hashes)[i], kNullHash);
    }
  }
}

namespace {

/// (column, row) rewritten to the plain payload cell behind an encoding:
/// a dictionary cell resolves to its dictionary entry, an RLE cell to its
/// run value. The cell must be non-null (null codes are never valid).
struct CellRef {
  const Column* col;
  size_t row;
};

CellRef ResolveCell(const Column& c, size_t i) {
  if (c.encoding() == ColumnEncoding::kDict) {
    return {c.dict().get(), c.codes()[i]};
  }
  if (c.encoding() == ColumnEncoding::kRle) {
    return {c.run_values().get(), c.RunIndexOf(i)};
  }
  return {&c, i};
}

}  // namespace

bool CellEquals(const Column& a, size_t ai, const Column& b, size_t bi) {
  bool an = a.IsNull(ai), bn = b.IsNull(bi);
  if (an || bn) return an == bn;
  if (a.encoding() == ColumnEncoding::kDict &&
      b.encoding() == ColumnEncoding::kDict && a.dict() == b.dict()) {
    // Shared dictionary: entries are distinct, so code equality is value
    // equality — the O(1) probe code-path joins and group-bys rely on.
    return a.codes()[ai] == b.codes()[bi];
  }
  CellRef ra = ResolveCell(a, ai);
  CellRef rb = ResolveCell(b, bi);
  switch (ra.col->type()) {
    case TypeId::kBool:
      return ra.col->bool_data()[ra.row] == rb.col->bool_data()[rb.row];
    case TypeId::kInt32:
      return ra.col->i32_data()[ra.row] == rb.col->i32_data()[rb.row];
    case TypeId::kInt64:
      return ra.col->i64_data()[ra.row] == rb.col->i64_data()[rb.row];
    case TypeId::kDouble:
      return ra.col->f64_data()[ra.row] == rb.col->f64_data()[rb.row];
    case TypeId::kVarchar:
    case TypeId::kBlob:
      return ra.col->str_data()[ra.row] == rb.col->str_data()[rb.row];
  }
  return false;
}

int CellCompare(const Column& a, size_t ai, const Column& b, size_t bi) {
  bool an = a.IsNull(ai), bn = b.IsNull(bi);
  if (an || bn) {
    if (an && bn) return 0;
    return an ? -1 : 1;  // NULLs first
  }
  if (a.encoding() == ColumnEncoding::kDict &&
      b.encoding() == ColumnEncoding::kDict && a.dict() == b.dict() &&
      a.dict_sorted()) {
    // Sorted shared dictionary: code order is value order.
    uint32_t ca = a.codes()[ai], cb = b.codes()[bi];
    return ca < cb ? -1 : (ca > cb ? 1 : 0);
  }
  CellRef ra = ResolveCell(a, ai);
  CellRef rb = ResolveCell(b, bi);
  auto cmp3 = [](auto x, auto y) { return x < y ? -1 : (x > y ? 1 : 0); };
  switch (ra.col->type()) {
    case TypeId::kBool:
      return cmp3(ra.col->bool_data()[ra.row], rb.col->bool_data()[rb.row]);
    case TypeId::kInt32:
      return cmp3(ra.col->i32_data()[ra.row], rb.col->i32_data()[rb.row]);
    case TypeId::kInt64:
      return cmp3(ra.col->i64_data()[ra.row], rb.col->i64_data()[rb.row]);
    case TypeId::kDouble:
      return cmp3(ra.col->f64_data()[ra.row], rb.col->f64_data()[rb.row]);
    case TypeId::kVarchar:
    case TypeId::kBlob: {
      int c = ra.col->str_data()[ra.row].compare(rb.col->str_data()[rb.row]);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
  return 0;
}

namespace {

/// Typed bulk gather for the null-free / no-negative-index case: one branch
/// per column instead of two per row.
template <typename T>
std::vector<T> GatherDense(const std::vector<T>& src,
                           const std::vector<int64_t>& idx) {
  std::vector<T> data;
  data.reserve(idx.size());
  for (int64_t i : idx) data.push_back(src[static_cast<size_t>(i)]);
  return data;
}

}  // namespace

ColumnPtr TakeOrNull(const Column& column, const std::vector<int64_t>& idx) {
  if (column.encoding() == ColumnEncoding::kDict) {
    // Gather the codes, share the dictionary; -1 and null sources become
    // null rows with code 0 (null codes are never dereferenced).
    std::vector<uint32_t> codes(idx.size(), 0);
    std::vector<uint8_t> validity(idx.size(), 1);
    const auto& src_codes = column.codes();
    bool any_null = false;
    for (size_t i = 0; i < idx.size(); ++i) {
      int64_t j = idx[i];
      if (j < 0 || column.IsNull(static_cast<size_t>(j))) {
        validity[i] = 0;
        any_null = true;
      } else {
        codes[i] = src_codes[static_cast<size_t>(j)];
      }
    }
    if (!any_null) validity.clear();
    Result<ColumnPtr> out = Column::MakeDictionary(
        column.type(), std::move(codes), column.dict(), std::move(validity));
    if (out.ok()) {
      CountCodePathHit();
      return out.ValueOrDie();
    }
  }
  if (column.is_encoded()) {
    // RLE (a gather breaks runs) and any rejected dictionary rebuild.
    return TakeOrNull(*column.Decode(), idx);
  }
  if (!column.has_nulls() &&
      std::none_of(idx.begin(), idx.end(),
                   [](int64_t i) { return i < 0; })) {
    switch (column.type()) {
      case TypeId::kBool:
        return Column::FromBool(GatherDense(column.bool_data(), idx));
      case TypeId::kInt32:
        return Column::FromInt32(GatherDense(column.i32_data(), idx));
      case TypeId::kInt64:
        return Column::FromInt64(GatherDense(column.i64_data(), idx));
      case TypeId::kDouble:
        return Column::FromDouble(GatherDense(column.f64_data(), idx));
      case TypeId::kVarchar:
      case TypeId::kBlob:
        return Column::FromStrings(GatherDense(column.str_data(), idx),
                                   column.type());
    }
  }
  ColumnPtr out = Column::Make(column.type());
  out->Reserve(idx.size());
  for (int64_t i : idx) {
    if (i < 0 || column.IsNull(static_cast<size_t>(i))) {
      out->AppendNull();
      continue;
    }
    switch (column.type()) {
      case TypeId::kBool:
        out->AppendBool(column.bool_data()[i] != 0);
        break;
      case TypeId::kInt32:
        out->AppendInt32(column.i32_data()[i]);
        break;
      case TypeId::kInt64:
        out->AppendInt64(column.i64_data()[i]);
        break;
      case TypeId::kDouble:
        out->AppendDouble(column.f64_data()[i]);
        break;
      case TypeId::kVarchar:
      case TypeId::kBlob:
        out->AppendString(column.str_data()[i]);
        break;
    }
  }
  return out;
}

}  // namespace mlcs::exec
