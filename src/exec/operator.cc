#include "exec/operator.h"

#include "exec/aggregate.h"
#include "exec/filter.h"
#include "obs/trace.h"

namespace mlcs::exec {

namespace {

uint64_t TableBytes(const Table& table) {
  uint64_t bytes = 0;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    bytes += table.column(c)->ByteSize();
  }
  return bytes;
}

}  // namespace

Result<OpResult> PhysicalOperator::Run() const {
  if (!obs::TraceActive()) return Execute();
  obs::ScopedSpan span(label());
  span.set_op_token(this);
  Result<OpResult> result = Execute();
  if (result.ok()) {
    const OpResult& out = result.ValueOrDie();
    span.set_rows_out(out.table->num_rows());
    span.set_bytes(TableBytes(*out.table));
    if (!out.note.empty()) span.set_note(out.note);
  }
  return result;
}

std::string RenderOperatorTree(const PhysicalOperator& root, int indent) {
  return RenderOperatorTree(root, indent,
                            [](const PhysicalOperator&) { return ""; });
}

std::string RenderOperatorTree(const PhysicalOperator& root, int indent,
                               const NodeAnnotator& annotate) {
  std::string out(static_cast<size_t>(indent), ' ');
  out += root.label();
  out += annotate(root);
  out += "\n";
  for (const PhysicalOpPtr& child : root.children()) {
    out += RenderOperatorTree(*child, indent + 2, annotate);
  }
  return out;
}

Result<OpResult> ScanOperator::Execute() const {
  Catalog::ScanOptions options;
  if (!zone_predicates_.empty()) {
    options.zone_predicates = &zone_predicates_;
  }
  OpResult out;
  // Only ask for the per-scan stats string when a trace will render it.
  if (obs::TraceActive()) options.analyze_note = &out.note;
  MLCS_ASSIGN_OR_RETURN(out.table,
                        catalog_->ScanTable(table_, columns_, options));
  return out;
}

std::string ScanOperator::label() const {
  std::string out = "SCAN " + table_;
  if (columns_.has_value()) {
    out += " [";
    for (size_t i = 0; i < columns_->size(); ++i) {
      if (i > 0) out += ", ";
      out += (*columns_)[i];
    }
    out += "]";
  }
  return out;
}

Result<OpResult> FilterOperator::Execute() const {
  MLCS_ASSIGN_OR_RETURN(OpResult in, children_[0]->Run());
  MLCS_ASSIGN_OR_RETURN(ColumnPtr mask, mask_(*in.table));
  MLCS_ASSIGN_OR_RETURN(TablePtr out,
                        FilterTable(*in.table, *mask, policy_));
  return OpResult{std::move(out), nullptr, {}};
}

Result<OpResult> HashJoinOperator::Execute() const {
  MLCS_ASSIGN_OR_RETURN(OpResult left, children_[0]->Run());
  MLCS_ASSIGN_OR_RETURN(OpResult right, children_[1]->Run());
  // Orient each key pair by which schema actually holds the column.
  std::vector<std::string> left_keys, right_keys;
  for (const auto& [a, b] : keys_) {
    bool a_left = left.table->schema().FieldIndex(a).has_value();
    bool b_right = right.table->schema().FieldIndex(b).has_value();
    if (a_left && b_right) {
      left_keys.push_back(a);
      right_keys.push_back(b);
      continue;
    }
    bool b_left = left.table->schema().FieldIndex(b).has_value();
    bool a_right = right.table->schema().FieldIndex(a).has_value();
    if (b_left && a_right) {
      left_keys.push_back(b);
      right_keys.push_back(a);
      continue;
    }
    return Status::NotFound("join condition " + a + " = " + b +
                            " does not match the joined tables' columns");
  }
  MLCS_ASSIGN_OR_RETURN(
      TablePtr out, HashJoin(*left.table, *right.table, left_keys,
                             right_keys, type_, policy_));
  return OpResult{std::move(out), nullptr, {}};
}

std::string HashJoinOperator::label() const {
  std::string out = type_ == JoinType::kLeft ? "LEFT JOIN" : "HASH JOIN";
  out += " on ";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += " AND ";
    out += keys_[i].first + " = " + keys_[i].second;
  }
  return out;
}

Result<OpResult> DistinctOperator::Execute() const {
  MLCS_ASSIGN_OR_RETURN(OpResult in, children_[0]->Run());
  std::vector<std::string> keys;
  keys.reserve(in.table->num_columns());
  for (const auto& field : in.table->schema().fields()) {
    keys.push_back(field.name);
  }
  MLCS_ASSIGN_OR_RETURN(TablePtr out,
                        HashGroupBy(*in.table, keys, {}, policy_));
  return OpResult{std::move(out), nullptr, {}};
}

Result<OpResult> LimitOperator::Execute() const {
  MLCS_ASSIGN_OR_RETURN(OpResult in, children_[0]->Run());
  TablePtr table = std::move(in.table);
  if (limit_ >= 0 && static_cast<size_t>(limit_) < table->num_rows()) {
    table = table->SliceRows(0, static_cast<size_t>(limit_));
  }
  return OpResult{std::move(table), nullptr, {}};
}

}  // namespace mlcs::exec
