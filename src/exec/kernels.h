#ifndef MLCS_EXEC_KERNELS_H_
#define MLCS_EXEC_KERNELS_H_

#include <cstdint>
#include <vector>

#include "common/parallel_for.h"
#include "common/result.h"
#include "storage/column.h"

namespace mlcs::exec {

/// Binary operator kinds shared by the expression tree, the SQL parser and
/// VectorScript.
enum class BinOpKind {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

enum class UnOpKind { kNeg, kNot };

const char* BinOpKindToString(BinOpKind op);

/// Applies an arithmetic/comparison/logical operator element-wise over two
/// columns. Columns of length 1 broadcast against the other operand
/// (scalar ⊕ vector). NULL in either input yields NULL output. Arithmetic
/// promotes numerically (int32+int32→int32, mixed→wider); comparisons also
/// accept VARCHAR=VARCHAR (lexicographic); AND/OR require BOOL inputs.
/// Integer division/modulo by zero produces NULL (SQL semantics).
///
/// Long inputs run morsel-parallel on the policy's pool (column slices
/// through the serial kernel, spliced back in morsel order); results are
/// identical at every thread count because the op is element-wise.
Result<ColumnPtr> BinaryKernel(BinOpKind op, const Column& left,
                               const Column& right,
                               const MorselPolicy& policy = {});

/// Unary minus (numeric) and NOT (bool); NULLs pass through. Parallelizes
/// like BinaryKernel.
Result<ColumnPtr> UnaryKernel(UnOpKind op, const Column& input,
                              const MorselPolicy& policy = {});

/// Mixes each row's value into `hashes` (multiplicative combine), so calling
/// it once per key column produces a composite row hash. `hashes` must
/// already be sized to the column length (seed it with kHashSeed).
void HashCombineColumn(const Column& column, std::vector<uint64_t>* hashes);

/// Range-restricted form: combines rows [begin, end) only. Each output row
/// depends only on its own input row, so disjoint ranges are safe to hash
/// from different threads (the morsel-parallel join/group-by path).
void HashCombineColumnRange(const Column& column, size_t begin, size_t end,
                            std::vector<uint64_t>* hashes);

inline constexpr uint64_t kHashSeed = 0x9E3779B97F4A7C15ULL;

/// Compares the same logical cell across two columns (used to resolve hash
/// collisions in join/group-by). Types must match physically.
[[nodiscard]] bool CellEquals(const Column& a, size_t ai, const Column& b,
                              size_t bi);

/// Three-way comparison of two cells in columns of the same type.
/// NULLs sort first; returns <0, 0, >0.
int CellCompare(const Column& a, size_t ai, const Column& b, size_t bi);

/// Gather allowing -1 indices, which become NULL rows (left-join padding).
[[nodiscard]] ColumnPtr TakeOrNull(const Column& column,
                                   const std::vector<int64_t>& idx);

}  // namespace mlcs::exec

#endif  // MLCS_EXEC_KERNELS_H_
