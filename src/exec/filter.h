#ifndef MLCS_EXEC_FILTER_H_
#define MLCS_EXEC_FILTER_H_

#include <cstdint>
#include <vector>

#include "common/parallel_for.h"
#include "common/result.h"
#include "storage/table.h"

namespace mlcs::exec {

/// Selection-vector filter: keeps rows where `predicate` is true (NULL and
/// false rows are dropped, SQL semantics). `predicate` must be a BOOL
/// column of the table's length, or length 1 (broadcast keep-all/none).
/// Long inputs build the selection vector and gather morsel-parallel on
/// the policy's pool; output row order is always input order.
Result<TablePtr> FilterTable(const Table& input, const Column& predicate,
                             const MorselPolicy& policy = {});

/// Extracts the indices of true rows (shared by FilterTable and callers
/// that want the selection vector itself). Parallel path scans each morsel
/// into a local vector, then splices the locals at exact prefix offsets —
/// one sized allocation, no reallocation, and the same vector the serial
/// scan produces.
Result<std::vector<uint32_t>> SelectionIndices(const Column& predicate,
                                               size_t num_rows,
                                               const MorselPolicy& policy = {});

/// Gathers `indices` rows out of every column of `input`, parallel over
/// (column × index-morsel) work items. Shared by FilterTable and SortTable.
Result<TablePtr> GatherRows(const Table& input,
                            const std::vector<uint32_t>& indices,
                            const MorselPolicy& policy = {});

}  // namespace mlcs::exec

#endif  // MLCS_EXEC_FILTER_H_
