#ifndef MLCS_EXEC_FILTER_H_
#define MLCS_EXEC_FILTER_H_

#include "common/result.h"
#include "storage/table.h"

namespace mlcs::exec {

/// Selection-vector filter: keeps rows where `predicate` is true (NULL and
/// false rows are dropped, SQL semantics). `predicate` must be a BOOL
/// column of the table's length, or length 1 (broadcast keep-all/none).
Result<TablePtr> FilterTable(const Table& input, const Column& predicate);

/// Extracts the indices of true rows (shared by FilterTable and callers
/// that want the selection vector itself).
Result<std::vector<uint32_t>> SelectionIndices(const Column& predicate,
                                               size_t num_rows);

}  // namespace mlcs::exec

#endif  // MLCS_EXEC_FILTER_H_
