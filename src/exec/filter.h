#ifndef MLCS_EXEC_FILTER_H_
#define MLCS_EXEC_FILTER_H_

#include <cstdint>
#include <vector>

#include "common/parallel_for.h"
#include "common/result.h"
#include "storage/table.h"

namespace mlcs::exec {

/// Selection-vector filter: keeps rows where `predicate` is true (NULL and
/// false rows are dropped, SQL semantics). `predicate` must be a BOOL
/// column of the table's length, or length 1 (broadcast keep-all/none).
/// Long inputs build the selection vector and gather morsel-parallel on
/// the policy's pool; output row order is always input order.
Result<TablePtr> FilterTable(const Table& input, const Column& predicate,
                             const MorselPolicy& policy = {});

/// Extracts the indices of true rows (shared by FilterTable and callers
/// that want the selection vector itself). Parallel path scans each morsel
/// into a local vector, then splices the locals at exact prefix offsets —
/// one sized allocation, no reallocation, and the same vector the serial
/// scan produces.
Result<std::vector<uint32_t>> SelectionIndices(const Column& predicate,
                                               size_t num_rows,
                                               const MorselPolicy& policy = {});

/// Gathers `indices` rows out of every column of `input`, parallel over
/// (column × index-morsel) work items. Shared by FilterTable and SortTable.
Result<TablePtr> GatherRows(const Table& input,
                            const std::vector<uint32_t>& indices,
                            const MorselPolicy& policy = {});

/// Sorted-dictionary range predicate (DESIGN.md §13): when `enc` is a
/// dictionary column whose dictionary is sorted ascending, the true
/// entries of a comparison's per-entry result form one contiguous code
/// band [lo, hi), so the row mask is two branchless code compares —
/// no per-row gather through the dictionary-sized result. Returns the
/// BOOLEAN mask (null-free; the caller overlays `enc`'s validity), or
/// nullptr when the shape does not apply (unsorted dictionary, non-BOOL
/// or nullable per-entry input, non-contiguous trues) — callers fall
/// back to the gather path. Values match `per_entry.Take(enc.codes())`
/// bit for bit.
[[nodiscard]] ColumnPtr SortedDictRangeMask(const Column& enc,
                                            const Column& per_entry);

}  // namespace mlcs::exec

#endif  // MLCS_EXEC_FILTER_H_
