#ifndef MLCS_EXEC_AGGREGATE_H_
#define MLCS_EXEC_AGGREGATE_H_

#include <string>
#include <vector>

#include "common/parallel_for.h"
#include "common/result.h"
#include "storage/table.h"

namespace mlcs::exec {

enum class AggOp { kCountStar, kCount, kSum, kAvg, kMin, kMax, kStdDev };

Result<AggOp> AggOpFromName(std::string_view name, bool is_star);
const char* AggOpToString(AggOp op);

/// One aggregate in a GROUP BY: op over `input_column` (ignored for
/// COUNT(*)), emitted as `output_name`.
struct AggSpec {
  AggOp op = AggOp::kCountStar;
  std::string input_column;
  std::string output_name;
};

/// Hash group-by aggregation. Output schema = key columns (original names
/// and types, first-seen group order) followed by one column per AggSpec.
/// COUNT → BIGINT; SUM over ints → BIGINT, over doubles → DOUBLE;
/// AVG and STDDEV (population) → DOUBLE; MIN/MAX keep the input type. NULL inputs are skipped by
/// all aggregates except COUNT(*). Groups with only NULL inputs produce
/// NULL (COUNT produces 0). With `group_keys` empty the whole input is one
/// group (global aggregation, emits exactly one row).
///
/// Runs morsel-parallel on the policy's pool: each morsel aggregates into
/// its own local group table, and the locals merge serially in (morsel,
/// local-group) order. Because morsel boundaries are fixed and every thread
/// count — including one — goes through the same per-morsel partials,
/// floating-point sums are bit-identical at every degree of parallelism,
/// and group output order is the serial first-seen order.
Result<TablePtr> HashGroupBy(const Table& input,
                             const std::vector<std::string>& group_keys,
                             const std::vector<AggSpec>& aggregates,
                             const MorselPolicy& policy = {});

}  // namespace mlcs::exec

#endif  // MLCS_EXEC_AGGREGATE_H_
