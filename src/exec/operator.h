#ifndef MLCS_EXEC_OPERATOR_H_
#define MLCS_EXEC_OPERATOR_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bufpool/zone_map.h"
#include "common/parallel_for.h"
#include "common/result.h"
#include "exec/hash_join.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace mlcs::exec {

class PhysicalOperator;
using PhysicalOpPtr = std::shared_ptr<const PhysicalOperator>;

/// What an operator hands its parent.
struct OpResult {
  TablePtr table;
  /// Pre-projection table whose rows are 1:1 with `table`'s rows, or null
  /// when that correspondence is broken (aggregation, distinct, sort). The
  /// SQL sort operator retries ORDER BY expressions that do not resolve
  /// against the projection over this table, so `SELECT id ... ORDER BY
  /// age` keeps working.
  TablePtr row_source;
  /// Optional per-execution annotation (stored scans report block/pool
  /// stats here); Run() copies it onto the trace span so EXPLAIN ANALYZE
  /// can render it. Empty for most operators.
  std::string note;
};

/// A node of an executable physical plan. Operators are materializing
/// (MonetDB operator-at-a-time: each pulls its children's full result) and
/// immutable once built — Execute() is const and carries no per-run state,
/// so one prepared plan can serve concurrent queries.
class PhysicalOperator {
 public:
  virtual ~PhysicalOperator() = default;
  virtual Result<OpResult> Execute() const = 0;
  /// The execution entry point: Execute() wrapped in a trace span (rows
  /// out, bytes, wall time) when the calling thread has a trace context
  /// installed. Parents invoke children through Run(), never Execute()
  /// directly, so EXPLAIN ANALYZE and mlcs_trace() see every node. When
  /// tracing is off this is one thread-local null check over Execute().
  Result<OpResult> Run() const;
  /// One EXPLAIN line describing this node (no children, no indent).
  virtual std::string label() const = 0;
  const std::vector<PhysicalOpPtr>& children() const { return children_; }

 protected:
  std::vector<PhysicalOpPtr> children_;
};

/// Per-node annotation appended to its EXPLAIN line (EXPLAIN ANALYZE);
/// empty string → no suffix.
using NodeAnnotator = std::function<std::string(const PhysicalOperator&)>;

/// Renders the tree as EXPLAIN text: label per line, children indented two
/// spaces under their parent.
std::string RenderOperatorTree(const PhysicalOperator& root, int indent = 0);
/// Annotated form: each node's line becomes `label annotate(node)`.
std::string RenderOperatorTree(const PhysicalOperator& root, int indent,
                               const NodeAnnotator& annotate);

/// Leaf scan over a catalog table, optionally restricted to a column subset
/// (the optimizer's projection pruning). The table is resolved by name at
/// Execute() time so prepared plans always see current data. Zone
/// predicates — `col <op> literal` conjuncts the planner lifted from the
/// filter directly above this scan — let a disk-backed table skip whole
/// blocks whose min/max zone maps refute them; the filter still runs
/// above, so they affect I/O, never results.
class ScanOperator : public PhysicalOperator {
 public:
  ScanOperator(const Catalog* catalog, std::string table,
               std::optional<std::vector<std::string>> columns,
               std::vector<bufpool::ZonePredicate> zone_predicates = {})
      : catalog_(catalog),
        table_(std::move(table)),
        columns_(std::move(columns)),
        zone_predicates_(std::move(zone_predicates)) {}

  Result<OpResult> Execute() const override;
  std::string label() const override;
  const std::optional<std::vector<std::string>>& columns() const {
    return columns_;
  }
  const std::vector<bufpool::ZonePredicate>& zone_predicates() const {
    return zone_predicates_;
  }

 private:
  const Catalog* catalog_;
  std::string table_;
  std::optional<std::vector<std::string>> columns_;
  std::vector<bufpool::ZonePredicate> zone_predicates_;
};

/// Produces the boolean selection mask for a FilterOperator. Receives the
/// child's table; the hook keeps exec/ free of SQL expression types.
using MaskFn = std::function<Result<ColumnPtr>(const Table&)>;

/// Filters child rows by a mask (three-valued logic: only TRUE survives).
class FilterOperator : public PhysicalOperator {
 public:
  FilterOperator(PhysicalOpPtr child, MaskFn mask, std::string display,
                 MorselPolicy policy)
      : mask_(std::move(mask)),
        display_(std::move(display)),
        policy_(std::move(policy)) {
    children_.push_back(std::move(child));
  }

  Result<OpResult> Execute() const override;
  std::string label() const override { return display_; }

 private:
  MaskFn mask_;
  std::string display_;
  MorselPolicy policy_;
};

/// Hash join of two children. Key pairs arrive unoriented (the SQL parser
/// strips qualifiers); each pair is oriented at Execute() time by which
/// schema actually holds the column.
class HashJoinOperator : public PhysicalOperator {
 public:
  HashJoinOperator(PhysicalOpPtr left, PhysicalOpPtr right,
                   std::vector<std::pair<std::string, std::string>> keys,
                   JoinType type, MorselPolicy policy)
      : keys_(std::move(keys)), type_(type), policy_(std::move(policy)) {
    children_.push_back(std::move(left));
    children_.push_back(std::move(right));
  }

  Result<OpResult> Execute() const override;
  std::string label() const override;

 private:
  std::vector<std::pair<std::string, std::string>> keys_;
  JoinType type_;
  MorselPolicy policy_;
};

/// Deduplicates full child rows (hash group-by over every column,
/// first-seen order).
class DistinctOperator : public PhysicalOperator {
 public:
  DistinctOperator(PhysicalOpPtr child, MorselPolicy policy)
      : policy_(std::move(policy)) {
    children_.push_back(std::move(child));
  }

  Result<OpResult> Execute() const override;
  std::string label() const override { return "DISTINCT"; }

 private:
  MorselPolicy policy_;
};

/// Keeps the first `limit` child rows.
class LimitOperator : public PhysicalOperator {
 public:
  LimitOperator(PhysicalOpPtr child, int64_t limit) : limit_(limit) {
    children_.push_back(std::move(child));
  }

  Result<OpResult> Execute() const override;
  std::string label() const override {
    return "LIMIT " + std::to_string(limit_);
  }

 private:
  int64_t limit_;
};

}  // namespace mlcs::exec

#endif  // MLCS_EXEC_OPERATOR_H_
