#ifndef MLCS_STORAGE_TABLE_H_
#define MLCS_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/column.h"
#include "types/schema.h"
#include "types/value.h"

namespace mlcs {

class Table;
using TablePtr = std::shared_ptr<Table>;

/// A named collection of equal-length columns. Tables are immutable-ish
/// value containers: operators produce new tables rather than mutating
/// inputs (except bulk-append during loading).
class Table {
 public:
  /// Empty table with the given schema (one empty column per field).
  explicit Table(Schema schema);
  /// Table over pre-built columns; lengths and types must agree with the
  /// schema (checked by Validate()).
  Table(Schema schema, std::vector<ColumnPtr> columns);

  static TablePtr Make(Schema schema) {
    return std::make_shared<Table>(std::move(schema));
  }

  const Schema& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0]->size();
  }

  const ColumnPtr& column(size_t i) const { return columns_[i]; }
  ColumnPtr& column(size_t i) { return columns_[i]; }
  Result<ColumnPtr> ColumnByName(std::string_view name) const;

  /// Checks that every column matches the schema type and all lengths agree.
  Status Validate() const;

  /// Appends one row of values (cast to column types; count must match).
  Status AppendRow(const std::vector<Value>& row);
  /// Appends all rows of `other` (schemas must be type-compatible).
  Status AppendTable(const Table& other);
  /// Adds a column on the right; its length must equal num_rows() (or the
  /// table must be empty of columns).
  Status AddColumn(std::string name, ColumnPtr column);

  Result<Value> GetValue(size_t row, size_t col) const;

  /// New table with only the given column indices (shares column buffers).
  [[nodiscard]] TablePtr Project(const std::vector<size_t>& column_indices) const;
  /// Name-based projection (case-insensitive, shares column buffers).
  /// Output order is `names` order; a missing name is a NotFound error.
  Result<TablePtr> SelectColumns(const std::vector<std::string>& names) const;
  /// New table with rows gathered by index (applies Take per column).
  [[nodiscard]] TablePtr TakeRows(const std::vector<uint32_t>& indices) const;
  /// Contiguous row range copy.
  [[nodiscard]] TablePtr SliceRows(size_t offset, size_t length) const;

  [[nodiscard]] bool Equals(const Table& other) const;

  /// Pretty-printer for tests/examples: header + up to `max_rows` rows.
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<ColumnPtr> columns_;
};

}  // namespace mlcs

#endif  // MLCS_STORAGE_TABLE_H_
