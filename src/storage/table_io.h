#ifndef MLCS_STORAGE_TABLE_IO_H_
#define MLCS_STORAGE_TABLE_IO_H_

#include <string>

#include "common/result.h"
#include "storage/table.h"

namespace mlcs {

/// Native on-disk table format (".mlt"): magic, format version, schema,
/// then each column's serialized payload. Used for database persistence
/// and by tests; the benchmark file formats (.npy, .h5b, .csv) live in io/.
Status SaveTable(const Table& table, const std::string& path);
Result<TablePtr> LoadTable(const std::string& path);

}  // namespace mlcs

#endif  // MLCS_STORAGE_TABLE_IO_H_
