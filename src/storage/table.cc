#include "storage/table.h"

#include <sstream>

namespace mlcs {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (const auto& f : schema_.fields()) {
    columns_.push_back(Column::Make(f.type));
  }
}

Table::Table(Schema schema, std::vector<ColumnPtr> columns)
    : schema_(std::move(schema)), columns_(std::move(columns)) {}

Result<ColumnPtr> Table::ColumnByName(std::string_view name) const {
  MLCS_ASSIGN_OR_RETURN(size_t idx, schema_.RequireFieldIndex(name));
  return columns_[idx];
}

Status Table::Validate() const {
  if (columns_.size() != schema_.num_fields()) {
    return Status::Internal("column count does not match schema");
  }
  size_t rows = num_rows();
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == nullptr) {
      return Status::Internal("column " + std::to_string(i) + " is null");
    }
    if (columns_[i]->type() != schema_.field(i).type) {
      return Status::TypeMismatch(
          "column '" + schema_.field(i).name + "' has type " +
          TypeIdToString(columns_[i]->type()) + ", schema says " +
          TypeIdToString(schema_.field(i).type));
    }
    if (columns_[i]->size() != rows) {
      return Status::Internal("column '" + schema_.field(i).name +
                              "' length mismatch");
    }
  }
  return Status::OK();
}

Status Table::AppendRow(const std::vector<Value>& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, table has " +
        std::to_string(columns_.size()) + " columns");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    MLCS_RETURN_IF_ERROR(columns_[i]->AppendValue(row[i]));
  }
  return Status::OK();
}

Status Table::AppendTable(const Table& other) {
  if (other.num_columns() != num_columns()) {
    return Status::TypeMismatch("cannot append table: column count differs");
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    MLCS_RETURN_IF_ERROR(columns_[i]->AppendColumn(*other.columns_[i]));
  }
  return Status::OK();
}

Status Table::AddColumn(std::string name, ColumnPtr column) {
  if (column == nullptr) {
    return Status::InvalidArgument("AddColumn: null column");
  }
  if (!columns_.empty() && column->size() != num_rows()) {
    return Status::InvalidArgument(
        "AddColumn: length " + std::to_string(column->size()) +
        " does not match table rows " + std::to_string(num_rows()));
  }
  schema_.AddField(std::move(name), column->type());
  columns_.push_back(std::move(column));
  return Status::OK();
}

Result<Value> Table::GetValue(size_t row, size_t col) const {
  if (col >= columns_.size()) {
    return Status::OutOfRange("column index out of range");
  }
  return columns_[col]->GetValue(row);
}

TablePtr Table::Project(const std::vector<size_t>& column_indices) const {
  Schema schema;
  std::vector<ColumnPtr> cols;
  cols.reserve(column_indices.size());
  for (size_t idx : column_indices) {
    schema.AddField(schema_.field(idx).name, schema_.field(idx).type);
    cols.push_back(columns_[idx]);
  }
  return std::make_shared<Table>(std::move(schema), std::move(cols));
}

Result<TablePtr> Table::SelectColumns(
    const std::vector<std::string>& names) const {
  std::vector<size_t> indices;
  indices.reserve(names.size());
  for (const std::string& name : names) {
    MLCS_ASSIGN_OR_RETURN(size_t idx, schema_.RequireFieldIndex(name));
    indices.push_back(idx);
  }
  return Project(indices);
}

TablePtr Table::TakeRows(const std::vector<uint32_t>& indices) const {
  std::vector<ColumnPtr> cols;
  cols.reserve(columns_.size());
  for (const auto& c : columns_) cols.push_back(c->Take(indices));
  return std::make_shared<Table>(schema_, std::move(cols));
}

TablePtr Table::SliceRows(size_t offset, size_t length) const {
  std::vector<ColumnPtr> cols;
  cols.reserve(columns_.size());
  for (const auto& c : columns_) cols.push_back(c->Slice(offset, length));
  return std::make_shared<Table>(schema_, std::move(cols));
}

bool Table::Equals(const Table& other) const {
  if (!(schema_ == other.schema_)) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (!columns_[i]->Equals(*other.columns_[i])) return false;
  }
  return true;
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream out;
  for (size_t i = 0; i < schema_.num_fields(); ++i) {
    if (i > 0) out << " | ";
    out << schema_.field(i).name;
  }
  out << "\n";
  size_t rows = std::min(num_rows(), max_rows);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out << " | ";
      auto v = columns_[c]->GetValue(r);
      out << (v.ok() ? v.ValueOrDie().ToString() : "<err>");
    }
    out << "\n";
  }
  if (num_rows() > max_rows) {
    out << "... (" << num_rows() << " rows total)\n";
  }
  return out.str();
}

}  // namespace mlcs
