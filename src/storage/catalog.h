#ifndef MLCS_STORAGE_CATALOG_H_
#define MLCS_STORAGE_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "storage/table.h"

namespace mlcs {

/// Process-wide count of column-payload bytes handed out by Catalog scans.
/// The pushdown ablation reads the delta around a query to show that a
/// pruned scan stops touching the 90+ columns a narrow projection never
/// reads. Monotonic; callers diff two readings.
uint64_t ScanBytesTouched();
void AddScanBytesTouched(uint64_t bytes);

/// Thread-safe name → table registry; the database's system catalog.
/// Table names are case-insensitive (stored lower-cased).
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  Status CreateTable(const std::string& name, TablePtr table,
                     bool or_replace = false);
  Result<TablePtr> GetTable(const std::string& name) const;
  Status DropTable(const std::string& name, bool if_exists = false);
  [[nodiscard]] bool HasTable(const std::string& name) const;
  std::vector<std::string> ListTables() const;

  /// Column-subset scan: the table restricted to `columns` (schema order is
  /// the scan order; buffers are shared, not copied). nullopt scans every
  /// column. Both forms bump the ScanBytesTouched() accounting by the
  /// payload bytes of the columns actually handed out.
  Result<TablePtr> ScanTable(
      const std::string& name,
      const std::optional<std::vector<std::string>>& columns) const;

  /// Monotonic counter bumped whenever the set of visible table *schemas*
  /// changes: a table appears, disappears, or is replaced with a different
  /// schema. Same-schema replacement (DELETE/UPDATE copy-on-write rebuilds)
  /// does NOT bump it, so prepared plans — which resolve tables by name at
  /// execution — survive DML but are invalidated by DDL.
  uint64_t schema_version() const {
    return schema_version_.load(std::memory_order_acquire);
  }

 private:
  mutable Mutex mutex_{"Catalog::mutex_"};
  std::map<std::string, TablePtr> tables_ MLCS_GUARDED_BY(mutex_);
  std::atomic<uint64_t> schema_version_{0};
};

}  // namespace mlcs

#endif  // MLCS_STORAGE_CATALOG_H_
