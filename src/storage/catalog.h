#ifndef MLCS_STORAGE_CATALOG_H_
#define MLCS_STORAGE_CATALOG_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace mlcs {

/// Thread-safe name → table registry; the database's system catalog.
/// Table names are case-insensitive (stored lower-cased).
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  Status CreateTable(const std::string& name, TablePtr table,
                     bool or_replace = false);
  Result<TablePtr> GetTable(const std::string& name) const;
  Status DropTable(const std::string& name, bool if_exists = false);
  [[nodiscard]] bool HasTable(const std::string& name) const;
  std::vector<std::string> ListTables() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, TablePtr> tables_;
};

}  // namespace mlcs

#endif  // MLCS_STORAGE_CATALOG_H_
