#ifndef MLCS_STORAGE_CATALOG_H_
#define MLCS_STORAGE_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "storage/table.h"
#include "types/schema.h"

namespace mlcs {

namespace bufpool {
class StoredTable;
struct ZonePredicate;
}  // namespace bufpool

/// Process-wide count of column-payload bytes handed out by Catalog scans.
/// The pushdown ablation reads the delta around a query to show that a
/// pruned scan stops touching the 90+ columns a narrow projection never
/// reads. For disk-backed tables only bytes actually materialized from
/// the buffer pool count — blocks skipped via zone maps contribute
/// nothing. Monotonic; callers diff two readings.
uint64_t ScanBytesTouched();
void AddScanBytesTouched(uint64_t bytes);

/// Thread-safe name → table registry; the database's system catalog.
/// Table names are case-insensitive (stored lower-cased).
///
/// An entry is either *resident* (a fully materialized Table, the only
/// state that existed before the block storage layer) or *stored* (a
/// bufpool::StoredTable over on-disk blocks, attached by
/// Database::LoadFrom). Stored entries serve scans directly from the
/// block layer; the first GetTable() — the mutating access path used by
/// INSERT/UPDATE/DELETE and the model store — promotes the entry to
/// resident so in-place appends behave exactly as before.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  Status CreateTable(const std::string& name, TablePtr table,
                     bool or_replace = false);
  /// Registers a disk-backed table (replacing any same-named entry). The
  /// schema-version bump rules match CreateTable.
  Status AttachStoredTable(const std::string& name,
                           std::shared_ptr<bufpool::StoredTable> stored);
  /// The resident table, promoting a stored entry by materializing every
  /// block through the buffer pool. Callers that only need to *read*
  /// should prefer ScanTable/GetTableSchema/ReadTable, which never
  /// promote.
  Result<TablePtr> GetTable(const std::string& name) const;
  /// Schema lookup that never materializes a stored table — the binder,
  /// optimizer and DESCRIBE use this.
  Result<Schema> GetTableSchema(const std::string& name) const;
  /// A materialized snapshot without promoting (SaveTo uses this so
  /// saving a database does not drag every stored table into memory).
  Result<TablePtr> ReadTable(const std::string& name) const;
  Status DropTable(const std::string& name, bool if_exists = false);
  [[nodiscard]] bool HasTable(const std::string& name) const;
  /// True when the entry is resident in memory (false for still-stored
  /// entries); an unknown name is also false.
  [[nodiscard]] bool IsResident(const std::string& name) const;
  std::vector<std::string> ListTables() const;

  /// Per-scan knobs and feedback for ScanTable.
  struct ScanOptions {
    /// Pushed-down `col <op> literal` conjuncts a stored table's zone
    /// maps can refute per block. Ignored for resident tables (nothing
    /// to skip). Borrowed; must outlive the call.
    const std::vector<bufpool::ZonePredicate>* zone_predicates = nullptr;
    /// When non-null, receives a short per-scan stats string for stored
    /// scans ("blocks=8 skipped=6 pool_hits=2 pool_misses=4"); left
    /// empty for resident scans. EXPLAIN ANALYZE renders it.
    std::string* analyze_note = nullptr;
  };

  /// Column-subset scan: the table restricted to `columns` (schema order is
  /// the scan order; buffers are shared, not copied). nullopt scans every
  /// column. Resident tables bump ScanBytesTouched() by the payload bytes
  /// of the columns handed out; stored tables bump it by the chunk bytes
  /// actually materialized from the buffer pool (skipped blocks excluded).
  Result<TablePtr> ScanTable(
      const std::string& name,
      const std::optional<std::vector<std::string>>& columns,
      const ScanOptions& options) const;
  Result<TablePtr> ScanTable(
      const std::string& name,
      const std::optional<std::vector<std::string>>& columns) const {
    return ScanTable(name, columns, ScanOptions());
  }

  /// Monotonic counter bumped whenever the set of visible table *schemas*
  /// changes: a table appears, disappears, or is replaced with a different
  /// schema. Same-schema replacement (DELETE/UPDATE copy-on-write rebuilds)
  /// does NOT bump it, so prepared plans — which resolve tables by name at
  /// execution — survive DML but are invalidated by DDL. Stored→resident
  /// promotion keeps the schema and does not bump it either.
  uint64_t schema_version() const {
    return schema_version_.load(std::memory_order_acquire);
  }

 private:
  /// Exactly one of the two pointers is set.
  struct TableEntry {
    TablePtr resident;
    std::shared_ptr<bufpool::StoredTable> stored;
  };

  const Schema& EntrySchemaLocked(const TableEntry& entry) const
      MLCS_REQUIRES(mutex_);

  mutable Mutex mutex_{"Catalog::mutex_"};
  /// mutable: GetTable on a const catalog promotes stored entries (a
  /// cache fill, not a logical mutation).
  mutable std::map<std::string, TableEntry> tables_ MLCS_GUARDED_BY(mutex_);
  std::atomic<uint64_t> schema_version_{0};
};

}  // namespace mlcs

#endif  // MLCS_STORAGE_CATALOG_H_
