#include "storage/encoding.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace mlcs {

namespace {

/// Default-on toggle, started off by MLCS_DISABLE_ENCODING (same pattern
/// as zone-map skipping — bufpool/zone_map.cc).
std::atomic<int>& EncodingState() {
  static std::atomic<int> state([] {
    const char* env = std::getenv("MLCS_DISABLE_ENCODING");
    return (env != nullptr && env[0] != '\0') ? 0 : 1;
  }());
  return state;
}

/// mlcs.encode.* series; pointers cached so hot paths skip the registry
/// lock.
obs::Counter* ColumnsEncodedCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "mlcs.encode.columns_encoded");
  return counter;
}

obs::Counter* EncodedBytesCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("mlcs.encode.encoded_bytes");
  return counter;
}

obs::Counter* DecodeEventsCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("mlcs.encode.decode_events");
  return counter;
}

obs::Counter* CodePathHitsCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("mlcs.encode.code_path_hits");
  return counter;
}

/// Profiles and encodes one typed payload. Returns nullptr when neither
/// encoding clears the policy thresholds — the caller keeps the plain
/// column. `make_col` turns a std::vector<T> back into a plain column of
/// the right type.
template <typename T, typename MakeCol>
ColumnPtr EncodeTypedImpl(const Column& column, const std::vector<T>& v,
                          const EncodingPolicy& policy, bool dict_eligible,
                          const MakeCol& make_col) {
  size_t n = v.size();
  const uint8_t* valid = column.validity_data();
  auto row_null = [&](size_t i) { return valid != nullptr && valid[i] == 0; };
  // Runs use null-equality: two rows are equal iff both null or both valid
  // with equal payloads.
  auto rows_equal = [&](size_t a, size_t b) {
    bool a_null = row_null(a);
    bool b_null = row_null(b);
    if (a_null || b_null) return a_null && b_null;
    return v[a] == v[b];
  };
  // One profiling pass: run count plus distinct non-null values, aborting
  // the distinct set once it is provably over the dictionary cap.
  size_t runs = 1;
  bool too_many_distinct = false;
  std::unordered_set<T> seen;
  if (dict_eligible && !row_null(0)) seen.insert(v[0]);
  for (size_t i = 1; i < n; ++i) {
    if (!rows_equal(i - 1, i)) ++runs;
    if (dict_eligible && !too_many_distinct && !row_null(i)) {
      seen.insert(v[i]);
      if (seen.size() > policy.max_dict_size) {
        too_many_distinct = true;  // spill to plain; stop paying for the set
        seen.clear();
      }
    }
  }
  if (runs <= static_cast<size_t>(static_cast<double>(n) *
                                  policy.max_run_fraction)) {
    // RLE: one value slot per run (null runs keep a default slot; the
    // per-row validity is authoritative).
    std::vector<T> run_vals;
    std::vector<uint32_t> run_lens;
    run_vals.reserve(runs);
    run_lens.reserve(runs);
    size_t start = 0;
    for (size_t i = 1; i <= n; ++i) {
      if (i < n && rows_equal(i - 1, i)) continue;
      run_vals.push_back(row_null(start) ? T{} : v[start]);
      run_lens.push_back(static_cast<uint32_t>(i - start));
      start = i;
    }
    std::vector<uint8_t> validity;
    if (valid != nullptr) validity.assign(valid, valid + n);
    Result<ColumnPtr> rle =
        Column::MakeRle(column.type(), make_col(std::move(run_vals)),
                        std::move(run_lens), std::move(validity));
    return rle.ok() ? rle.ValueOrDie() : nullptr;
  }
  size_t non_null = n - column.null_count();
  if (dict_eligible && !too_many_distinct &&
      seen.size() <= static_cast<size_t>(static_cast<double>(non_null) *
                                         policy.max_dict_fraction)) {
    // Dictionary: sorted unique values, dense codes per row.
    std::vector<T> uniq(seen.begin(), seen.end());
    std::sort(uniq.begin(), uniq.end());
    std::unordered_map<T, uint32_t> code_of;
    code_of.reserve(uniq.size());
    for (size_t i = 0; i < uniq.size(); ++i) {
      code_of.emplace(uniq[i], static_cast<uint32_t>(i));
    }
    std::vector<uint32_t> codes(n, 0);
    for (size_t i = 0; i < n; ++i) {
      if (!row_null(i)) codes[i] = code_of.find(v[i])->second;
    }
    std::vector<uint8_t> validity;
    if (valid != nullptr) validity.assign(valid, valid + n);
    Result<ColumnPtr> dict = Column::MakeDictionary(
        column.type(), std::move(codes), make_col(std::move(uniq)),
        std::move(validity));
    return dict.ok() ? dict.ValueOrDie() : nullptr;
  }
  return nullptr;
}

}  // namespace

ColumnPtr EncodeColumn(const ColumnPtr& column, const EncodingPolicy& policy) {
  if (column == nullptr || column->is_encoded()) return column;
  size_t n = column->size();
  if (n < policy.min_rows) return column;
  ColumnPtr encoded;
  switch (column->type()) {
    case TypeId::kBool:
      encoded = EncodeTypedImpl(
          *column, column->bool_data(), policy, /*dict_eligible=*/false,
          [](std::vector<uint8_t> v) { return Column::FromBool(std::move(v)); });
      break;
    case TypeId::kInt32:
      encoded = EncodeTypedImpl(
          *column, column->i32_data(), policy, /*dict_eligible=*/true,
          [](std::vector<int32_t> v) {
            return Column::FromInt32(std::move(v));
          });
      break;
    case TypeId::kInt64:
      encoded = EncodeTypedImpl(
          *column, column->i64_data(), policy, /*dict_eligible=*/true,
          [](std::vector<int64_t> v) {
            return Column::FromInt64(std::move(v));
          });
      break;
    case TypeId::kVarchar:
      encoded = EncodeTypedImpl(*column, column->str_data(), policy,
                                /*dict_eligible=*/true,
                                [](std::vector<std::string> v) {
                                  return Column::FromStrings(std::move(v));
                                });
      break;
    case TypeId::kDouble:  // float runs are rare and NaN poisons equality
    case TypeId::kBlob:    // serialized model payloads: never encoded
      return column;
  }
  if (encoded == nullptr) return column;
  ColumnsEncodedCounter()->Add(1);
  EncodedBytesCounter()->Add(encoded->ByteSize());
  return encoded;
}

TablePtr EncodeTable(const TablePtr& table, const EncodingPolicy& policy) {
  if (table == nullptr || !EncodingEnabled()) return table;
  bool changed = false;
  std::vector<ColumnPtr> columns;
  columns.reserve(table->num_columns());
  for (size_t c = 0; c < table->num_columns(); ++c) {
    ColumnPtr encoded = EncodeColumn(table->column(c), policy);
    changed = changed || encoded != table->column(c);
    columns.push_back(std::move(encoded));
  }
  if (!changed) return table;
  return std::make_shared<Table>(table->schema(), std::move(columns));
}

TablePtr DecodeTable(const TablePtr& table) {
  if (table == nullptr) return table;
  bool changed = false;
  std::vector<ColumnPtr> columns;
  columns.reserve(table->num_columns());
  for (size_t c = 0; c < table->num_columns(); ++c) {
    const ColumnPtr& col = table->column(c);
    if (col != nullptr && col->is_encoded()) {
      columns.push_back(col->Decode());
      changed = true;
    } else {
      columns.push_back(col);
    }
  }
  if (!changed) return table;
  return std::make_shared<Table>(table->schema(), std::move(columns));
}

bool EncodingEnabled() {
  return EncodingState().load(std::memory_order_relaxed) != 0;
}

void SetEncodingEnabled(bool enabled) {
  EncodingState().store(enabled ? 1 : 0, std::memory_order_relaxed);
}

uint64_t EncodeColumnsEncoded() { return ColumnsEncodedCounter()->Value(); }
uint64_t EncodeEncodedBytes() { return EncodedBytesCounter()->Value(); }
uint64_t EncodeDecodeEvents() { return DecodeEventsCounter()->Value(); }
uint64_t EncodeCodePathHits() { return CodePathHitsCounter()->Value(); }

void CountDecodeEvent() { DecodeEventsCounter()->Add(1); }
void CountCodePathHit() { CodePathHitsCounter()->Add(1); }

}  // namespace mlcs
