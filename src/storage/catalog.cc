#include "storage/catalog.h"

#include <cstdio>

#include "bufpool/stored_table.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace mlcs {

namespace {
/// Registry-backed `mlcs.scan.bytes_touched` series; the pointer is cached
/// so scans never take the registry lock.
obs::Counter* ScanBytesCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("mlcs.scan.bytes_touched");
  return counter;
}
}  // namespace

uint64_t ScanBytesTouched() { return ScanBytesCounter()->Value(); }

void AddScanBytesTouched(uint64_t bytes) { ScanBytesCounter()->Add(bytes); }

const Schema& Catalog::EntrySchemaLocked(const TableEntry& entry) const {
  return entry.resident != nullptr ? entry.resident->schema()
                                   : entry.stored->schema();
}

Status Catalog::CreateTable(const std::string& name, TablePtr table,
                            bool or_replace) {
  if (table == nullptr) {
    return Status::InvalidArgument("CreateTable: null table");
  }
  std::string key = ToLower(name);
  MutexLock lock(&mutex_);
  auto it = tables_.find(key);
  if (it != tables_.end() && !or_replace) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  bool schema_changed =
      it == tables_.end() ||
      !(EntrySchemaLocked(it->second) == table->schema());
  tables_[key] = TableEntry{std::move(table), nullptr};
  if (schema_changed) {
    schema_version_.fetch_add(1, std::memory_order_acq_rel);
  }
  return Status::OK();
}

Status Catalog::AttachStoredTable(
    const std::string& name, std::shared_ptr<bufpool::StoredTable> stored) {
  if (stored == nullptr) {
    return Status::InvalidArgument("AttachStoredTable: null table");
  }
  std::string key = ToLower(name);
  MutexLock lock(&mutex_);
  auto it = tables_.find(key);
  bool schema_changed =
      it == tables_.end() ||
      !(EntrySchemaLocked(it->second) == stored->schema());
  tables_[key] = TableEntry{nullptr, std::move(stored)};
  if (schema_changed) {
    schema_version_.fetch_add(1, std::memory_order_acq_rel);
  }
  return Status::OK();
}

Result<TablePtr> Catalog::GetTable(const std::string& name) const {
  std::string key = ToLower(name);
  for (;;) {
    std::shared_ptr<bufpool::StoredTable> stored;
    {
      MutexLock lock(&mutex_);
      auto it = tables_.find(key);
      if (it == tables_.end()) {
        return Status::NotFound("table '" + name + "' does not exist");
      }
      if (it->second.resident != nullptr) return it->second.resident;
      stored = it->second.stored;
    }
    // Promotion: materialize every block outside the lock (disk I/O),
    // then install the table if no one raced us to it. Callers mutate the
    // returned table in place (INSERT appends rows), so the stored handle
    // must be dropped — otherwise later scans would read stale blocks —
    // and only an *installed* table may be returned: writes applied to a
    // detached snapshot would be silently lost.
    MLCS_ASSIGN_OR_RETURN(TablePtr table, stored->Materialize());
    MutexLock lock(&mutex_);
    auto it = tables_.find(key);
    if (it == tables_.end()) {
      return Status::NotFound("table '" + name + "' was dropped");
    }
    if (it->second.resident != nullptr) return it->second.resident;
    if (it->second.stored == stored) {
      it->second.resident = table;
      it->second.stored.reset();
      return table;
    }
    // The entry was re-attached to a different stored table mid-flight;
    // our snapshot is stale. Loop and promote the new handle instead.
  }
}

Result<Schema> Catalog::GetTableSchema(const std::string& name) const {
  std::string key = ToLower(name);
  MutexLock lock(&mutex_);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  return EntrySchemaLocked(it->second);
}

Result<TablePtr> Catalog::ReadTable(const std::string& name) const {
  std::string key = ToLower(name);
  std::shared_ptr<bufpool::StoredTable> stored;
  {
    MutexLock lock(&mutex_);
    auto it = tables_.find(key);
    if (it == tables_.end()) {
      return Status::NotFound("table '" + name + "' does not exist");
    }
    if (it->second.resident != nullptr) return it->second.resident;
    stored = it->second.stored;
  }
  return stored->Materialize();
}

Result<TablePtr> Catalog::ScanTable(
    const std::string& name,
    const std::optional<std::vector<std::string>>& columns,
    const ScanOptions& options) const {
  std::string key = ToLower(name);
  TablePtr resident;
  std::shared_ptr<bufpool::StoredTable> stored;
  {
    MutexLock lock(&mutex_);
    auto it = tables_.find(key);
    if (it == tables_.end()) {
      return Status::NotFound("table '" + name + "' does not exist");
    }
    resident = it->second.resident;
    stored = it->second.stored;
  }
  if (resident != nullptr) {
    TablePtr table = std::move(resident);
    if (columns.has_value()) {
      MLCS_ASSIGN_OR_RETURN(table, table->SelectColumns(*columns));
    }
    uint64_t bytes = 0;
    for (size_t c = 0; c < table->num_columns(); ++c) {
      bytes += table->column(c)->ByteSize();
    }
    AddScanBytesTouched(bytes);
    return table;
  }
  static const std::vector<bufpool::ZonePredicate> kNoPredicates;
  const std::vector<bufpool::ZonePredicate>& predicates =
      options.zone_predicates != nullptr ? *options.zone_predicates
                                         : kNoPredicates;
  bufpool::StoredTable::ScanCounters counters;
  MLCS_ASSIGN_OR_RETURN(TablePtr table,
                        stored->Scan(columns, predicates, &counters));
  AddScanBytesTouched(counters.bytes_materialized);
  if (options.analyze_note != nullptr) {
    char buf[128];
    std::snprintf(
        buf, sizeof(buf),
        "blocks=%llu skipped=%llu pool_hits=%llu pool_misses=%llu",
        static_cast<unsigned long long>(counters.blocks_total),
        static_cast<unsigned long long>(counters.blocks_skipped),
        static_cast<unsigned long long>(counters.pool_hits),
        static_cast<unsigned long long>(counters.pool_misses));
    *options.analyze_note = buf;
  }
  return table;
}

Status Catalog::DropTable(const std::string& name, bool if_exists) {
  std::string key = ToLower(name);
  MutexLock lock(&mutex_);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    if (if_exists) return Status::OK();
    return Status::NotFound("table '" + name + "' does not exist");
  }
  tables_.erase(it);
  schema_version_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

bool Catalog::HasTable(const std::string& name) const {
  MutexLock lock(&mutex_);
  return tables_.count(ToLower(name)) > 0;
}

bool Catalog::IsResident(const std::string& name) const {
  MutexLock lock(&mutex_);
  auto it = tables_.find(ToLower(name));
  return it != tables_.end() && it->second.resident != nullptr;
}

std::vector<std::string> Catalog::ListTables() const {
  MutexLock lock(&mutex_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace mlcs
