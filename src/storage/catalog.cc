#include "storage/catalog.h"

#include "common/string_util.h"
#include "obs/metrics.h"

namespace mlcs {

namespace {
/// Registry-backed `mlcs.scan.bytes_touched` series; the pointer is cached
/// so scans never take the registry lock.
obs::Counter* ScanBytesCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("mlcs.scan.bytes_touched");
  return counter;
}
}  // namespace

uint64_t ScanBytesTouched() { return ScanBytesCounter()->Value(); }

void AddScanBytesTouched(uint64_t bytes) { ScanBytesCounter()->Add(bytes); }

Status Catalog::CreateTable(const std::string& name, TablePtr table,
                            bool or_replace) {
  if (table == nullptr) {
    return Status::InvalidArgument("CreateTable: null table");
  }
  std::string key = ToLower(name);
  MutexLock lock(&mutex_);
  auto it = tables_.find(key);
  if (it != tables_.end() && !or_replace) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  bool schema_changed =
      it == tables_.end() || !(it->second->schema() == table->schema());
  tables_[key] = std::move(table);
  if (schema_changed) {
    schema_version_.fetch_add(1, std::memory_order_acq_rel);
  }
  return Status::OK();
}

Result<TablePtr> Catalog::GetTable(const std::string& name) const {
  std::string key = ToLower(name);
  MutexLock lock(&mutex_);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  return it->second;
}

Result<TablePtr> Catalog::ScanTable(
    const std::string& name,
    const std::optional<std::vector<std::string>>& columns) const {
  MLCS_ASSIGN_OR_RETURN(TablePtr table, GetTable(name));
  if (columns.has_value()) {
    MLCS_ASSIGN_OR_RETURN(table, table->SelectColumns(*columns));
  }
  uint64_t bytes = 0;
  for (size_t c = 0; c < table->num_columns(); ++c) {
    bytes += table->column(c)->ByteSize();
  }
  AddScanBytesTouched(bytes);
  return table;
}

Status Catalog::DropTable(const std::string& name, bool if_exists) {
  std::string key = ToLower(name);
  MutexLock lock(&mutex_);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    if (if_exists) return Status::OK();
    return Status::NotFound("table '" + name + "' does not exist");
  }
  tables_.erase(it);
  schema_version_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

bool Catalog::HasTable(const std::string& name) const {
  MutexLock lock(&mutex_);
  return tables_.count(ToLower(name)) > 0;
}

std::vector<std::string> Catalog::ListTables() const {
  MutexLock lock(&mutex_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace mlcs
