#include "storage/catalog.h"

#include "common/string_util.h"

namespace mlcs {

Status Catalog::CreateTable(const std::string& name, TablePtr table,
                            bool or_replace) {
  if (table == nullptr) {
    return Status::InvalidArgument("CreateTable: null table");
  }
  std::string key = ToLower(name);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tables_.find(key);
  if (it != tables_.end() && !or_replace) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  tables_[key] = std::move(table);
  return Status::OK();
}

Result<TablePtr> Catalog::GetTable(const std::string& name) const {
  std::string key = ToLower(name);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  return it->second;
}

Status Catalog::DropTable(const std::string& name, bool if_exists) {
  std::string key = ToLower(name);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    if (if_exists) return Status::OK();
    return Status::NotFound("table '" + name + "' does not exist");
  }
  tables_.erase(it);
  return Status::OK();
}

bool Catalog::HasTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tables_.count(ToLower(name)) > 0;
}

std::vector<std::string> Catalog::ListTables() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace mlcs
