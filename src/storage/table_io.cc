#include "storage/table_io.h"

#include <cstdio>
#include <memory>

#include "common/byte_buffer.h"
#include "common/file_util.h"

namespace mlcs {

namespace {
constexpr uint32_t kMagic = 0x4D4C5431;  // "MLT1"
constexpr uint16_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;
}  // namespace

Status SaveTable(const Table& table, const std::string& path) {
  MLCS_RETURN_IF_ERROR(table.Validate());
  ByteWriter writer;
  writer.WriteU32(kMagic);
  writer.WriteU16(kVersion);
  table.schema().Serialize(&writer);
  writer.WriteVarint(table.num_rows());
  for (size_t i = 0; i < table.num_columns(); ++i) {
    table.column(i)->Serialize(&writer);
  }
  // Atomic (temp + fsync + rename): a crash mid-save never leaves a
  // half-written table where a good one used to be.
  return AtomicWriteFile(path, writer.data().data(), writer.size());
}

Result<TablePtr> LoadTable(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::fseek(f.get(), 0, SEEK_END);
  long file_size = std::ftell(f.get());
  std::fseek(f.get(), 0, SEEK_SET);
  if (file_size < 0) return Status::IoError("cannot stat '" + path + "'");
  std::vector<uint8_t> bytes(static_cast<size_t>(file_size));
  if (std::fread(bytes.data(), 1, bytes.size(), f.get()) != bytes.size()) {
    return Status::IoError("short read from '" + path + "'");
  }
  ByteReader reader(bytes);
  MLCS_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kMagic) {
    return Status::ParseError("'" + path + "' is not an mlcs table file");
  }
  MLCS_ASSIGN_OR_RETURN(uint16_t version, reader.ReadU16());
  if (version != kVersion) {
    return Status::ParseError("unsupported table file version " +
                              std::to_string(version));
  }
  MLCS_ASSIGN_OR_RETURN(Schema schema, Schema::Deserialize(&reader));
  MLCS_ASSIGN_OR_RETURN(uint64_t rows, reader.ReadVarint());
  std::vector<ColumnPtr> columns;
  columns.reserve(schema.num_fields());
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    MLCS_ASSIGN_OR_RETURN(ColumnPtr col, Column::Deserialize(&reader));
    if (col->size() != rows) {
      return Status::ParseError("column length mismatch in '" + path + "'");
    }
    columns.push_back(std::move(col));
  }
  auto table = std::make_shared<Table>(std::move(schema), std::move(columns));
  MLCS_RETURN_IF_ERROR(table->Validate());
  return table;
}

}  // namespace mlcs
