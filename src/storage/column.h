#ifndef MLCS_STORAGE_COLUMN_H_
#define MLCS_STORAGE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/byte_buffer.h"
#include "common/result.h"
#include "types/data_type.h"
#include "types/value.h"

namespace mlcs {

class Column;
using ColumnPtr = std::shared_ptr<Column>;

/// A single column: contiguous typed vector plus an optional validity
/// (null) vector. This is the unit the vectorized engine and the UDFs
/// operate on — MonetDB-style full-column-at-a-time, which is exactly the
/// "vectorized UDF" granularity the paper leverages.
///
/// Physical layouts:
///   BOOL            -> std::vector<uint8_t> (0/1)
///   INTEGER         -> std::vector<int32_t>
///   BIGINT          -> std::vector<int64_t>
///   DOUBLE          -> std::vector<double>
///   VARCHAR / BLOB  -> std::vector<std::string>
class Column {
 public:
  explicit Column(TypeId type);

  static ColumnPtr Make(TypeId type) { return std::make_shared<Column>(type); }

  /// A column of `count` copies of `v` (used to broadcast scalars into the
  /// vectorized kernels). NULL values produce an all-null column.
  static ColumnPtr Constant(const Value& v, size_t count);

  /// Builds a column from typed data in one move (zero extra copies).
  static ColumnPtr FromInt32(std::vector<int32_t> data);
  static ColumnPtr FromInt64(std::vector<int64_t> data);
  static ColumnPtr FromDouble(std::vector<double> data);
  static ColumnPtr FromBool(std::vector<uint8_t> data);
  static ColumnPtr FromStrings(std::vector<std::string> data,
                               TypeId type = TypeId::kVarchar);

  TypeId type() const { return type_; }
  size_t size() const;

  /// -- Null handling ------------------------------------------------------
  /// The validity vector is allocated lazily; a column with no nulls keeps
  /// it empty so the common all-valid path costs nothing.
  bool has_nulls() const { return null_count_ > 0; }
  size_t null_count() const { return null_count_; }
  [[nodiscard]] bool IsNull(size_t row) const {
    return !validity_.empty() && validity_[row] == 0;
  }
  void SetNull(size_t row);

  /// -- Typed raw access (hot paths) ---------------------------------------
  std::vector<uint8_t>& bool_data() { return std::get<kBoolIdx>(data_); }
  const std::vector<uint8_t>& bool_data() const {
    return std::get<kBoolIdx>(data_);
  }
  std::vector<int32_t>& i32_data() { return std::get<kI32Idx>(data_); }
  const std::vector<int32_t>& i32_data() const {
    return std::get<kI32Idx>(data_);
  }
  std::vector<int64_t>& i64_data() { return std::get<kI64Idx>(data_); }
  const std::vector<int64_t>& i64_data() const {
    return std::get<kI64Idx>(data_);
  }
  std::vector<double>& f64_data() { return std::get<kF64Idx>(data_); }
  const std::vector<double>& f64_data() const {
    return std::get<kF64Idx>(data_);
  }
  std::vector<std::string>& str_data() { return std::get<kStrIdx>(data_); }
  const std::vector<std::string>& str_data() const {
    return std::get<kStrIdx>(data_);
  }

  /// -- Appending ----------------------------------------------------------
  void Reserve(size_t capacity);
  void AppendBool(bool v) {
    std::get<kBoolIdx>(data_).push_back(v ? 1 : 0);
    MarkAppendedValid();
  }
  void AppendInt32(int32_t v) {
    std::get<kI32Idx>(data_).push_back(v);
    MarkAppendedValid();
  }
  void AppendInt64(int64_t v) {
    std::get<kI64Idx>(data_).push_back(v);
    MarkAppendedValid();
  }
  void AppendDouble(double v) {
    std::get<kF64Idx>(data_).push_back(v);
    MarkAppendedValid();
  }
  void AppendString(std::string v) {
    std::get<kStrIdx>(data_).push_back(std::move(v));
    MarkAppendedValid();
  }
  void AppendNull();
  /// Type-checked append of a Value (casts numerics when lossless).
  Status AppendValue(const Value& v);
  /// Appends all rows of `other` (must have the same type).
  Status AppendColumn(const Column& other);

  /// -- Row access (boundaries, tests, protocols) --------------------------
  Result<Value> GetValue(size_t row) const;

  /// -- Bulk transforms ----------------------------------------------------
  /// Element-wise cast; NULLs are preserved.
  Result<ColumnPtr> CastTo(TypeId target) const;
  /// Gather: out[i] = this[indices[i]].
  [[nodiscard]] ColumnPtr Take(const std::vector<uint32_t>& indices) const;
  /// Pointer-range gather over indices[0, count). Lets morsel-parallel
  /// operators gather disjoint pieces of one selection vector without
  /// copying it per morsel.
  [[nodiscard]] ColumnPtr Take(const uint32_t* indices, size_t count) const;
  /// Contiguous sub-range copy.
  [[nodiscard]] ColumnPtr Slice(size_t offset, size_t length) const;
  /// Numeric column as doubles (ML ingestion). NULLs become NaN.
  Result<std::vector<double>> ToDoubleVector() const;

  /// Payload bytes this column holds (fixed-width element bytes, or the
  /// summed string lengths for VARCHAR/BLOB) plus the validity vector.
  /// Feeds the scan bytes-touched accounting the pushdown ablation reads.
  [[nodiscard]] size_t ByteSize() const;

  [[nodiscard]] bool Equals(const Column& other) const;

  void Serialize(ByteWriter* writer) const;
  static Result<ColumnPtr> Deserialize(ByteReader* reader);

 private:
  static constexpr size_t kBoolIdx = 0;
  static constexpr size_t kI32Idx = 1;
  static constexpr size_t kI64Idx = 2;
  static constexpr size_t kF64Idx = 3;
  static constexpr size_t kStrIdx = 4;

  void EnsureValidity();
  /// Keeps the lazily-allocated validity vector aligned after any append of
  /// a non-null value.
  void MarkAppendedValid() {
    if (!validity_.empty()) validity_.push_back(1);
  }

  TypeId type_;
  std::variant<std::vector<uint8_t>, std::vector<int32_t>,
               std::vector<int64_t>, std::vector<double>,
               std::vector<std::string>>
      data_;
  /// 1 = valid, 0 = null. Empty means "all valid".
  std::vector<uint8_t> validity_;
  size_t null_count_ = 0;
};

}  // namespace mlcs

#endif  // MLCS_STORAGE_COLUMN_H_
