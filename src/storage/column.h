#ifndef MLCS_STORAGE_COLUMN_H_
#define MLCS_STORAGE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/byte_buffer.h"
#include "common/result.h"
#include "types/data_type.h"
#include "types/value.h"

namespace mlcs {

class Column;
using ColumnPtr = std::shared_ptr<Column>;

/// Physical representation of a column's payload (DESIGN.md §13). The
/// logical contents — type(), size(), GetValue(), null pattern — are
/// identical across encodings; only the bytes behind them differ.
enum class ColumnEncoding : uint8_t {
  kPlain = 0,  ///< typed vector, one slot per row
  kDict = 1,   ///< dense uint32 codes into a sorted unique-value dictionary
  kRle = 2,    ///< run-length: per-run values + run lengths
};

/// A single column: contiguous typed vector plus an optional validity
/// (null) vector. This is the unit the vectorized engine and the UDFs
/// operate on — MonetDB-style full-column-at-a-time, which is exactly the
/// "vectorized UDF" granularity the paper leverages.
///
/// Physical layouts (kPlain):
///   BOOL            -> std::vector<uint8_t> (0/1)
///   INTEGER         -> std::vector<int32_t>
///   BIGINT          -> std::vector<int64_t>
///   DOUBLE          -> std::vector<double>
///   VARCHAR / BLOB  -> std::vector<std::string>
///
/// Encoded layouts hold the payload compressed instead of in the typed
/// vector (which stays empty):
///   kDict -> codes() (uint32 per row) + dict() (plain column of unique
///            non-null values; null rows carry code 0 and are never
///            dereferenced — IsNull() decides first)
///   kRle  -> run_values() (plain column, one slot per run) +
///            run_lengths() / run_starts() (starts has runs+1 entries,
///            back() == row count). Runs are maximal spans of rows that
///            are pairwise equal under null-equality.
///
/// Contract: every logical operation (GetValue, Take, Slice, AppendColumn,
/// Equals, CastTo, ToDoubleVector, Serialize) works on any encoding and
/// returns logically identical results; Decode()/EnsurePlain() is the
/// always-available fallback. The typed raw accessors (`i32_data()` …) are
/// only meaningful on plain columns — hot paths that use them must either
/// check encoding() or sit behind one of the decode boundaries
/// (storage/encoding.h).
class Column {
 public:
  explicit Column(TypeId type);

  static ColumnPtr Make(TypeId type) { return std::make_shared<Column>(type); }

  /// A column of `count` copies of `v` (used to broadcast scalars into the
  /// vectorized kernels). NULL values produce an all-null column.
  static ColumnPtr Constant(const Value& v, size_t count);

  /// Builds a column from typed data in one move (zero extra copies).
  static ColumnPtr FromInt32(std::vector<int32_t> data);
  static ColumnPtr FromInt64(std::vector<int64_t> data);
  static ColumnPtr FromDouble(std::vector<double> data);
  static ColumnPtr FromBool(std::vector<uint8_t> data);
  static ColumnPtr FromStrings(std::vector<std::string> data,
                               TypeId type = TypeId::kVarchar);

  /// -- Encoded construction ------------------------------------------------
  /// Builds a dictionary-encoded column: `dict` must be a plain, null-free
  /// column of distinct values of `type`; every code of a non-null row must
  /// index into it (null rows' codes are normalized to 0). `validity`
  /// follows the plain-column convention (empty = all valid). Whether the
  /// dictionary is sorted ascending is detected here and exposed through
  /// dict_sorted() — range predicates on codes require it.
  static Result<ColumnPtr> MakeDictionary(TypeId type,
                                          std::vector<uint32_t> codes,
                                          ColumnPtr dict,
                                          std::vector<uint8_t> validity = {});
  /// Builds a run-length-encoded column: `run_values` must be a plain
  /// column of `type` with one slot per run (null runs carry a default
  /// slot; the per-row `validity` is authoritative). Zero-length runs are
  /// rejected. An empty run list builds an empty column.
  static Result<ColumnPtr> MakeRle(TypeId type, ColumnPtr run_values,
                                   std::vector<uint32_t> run_lengths,
                                   std::vector<uint8_t> validity = {});

  TypeId type() const { return type_; }
  size_t size() const;

  ColumnEncoding encoding() const { return encoding_; }
  bool is_encoded() const { return encoding_ != ColumnEncoding::kPlain; }

  /// -- Encoded raw access (code-aware kernel fast paths) -------------------
  const std::vector<uint32_t>& codes() const { return codes_; }
  const ColumnPtr& dict() const { return dict_; }
  bool dict_sorted() const { return dict_sorted_; }
  const ColumnPtr& run_values() const { return run_values_; }
  const std::vector<uint32_t>& run_lengths() const { return run_lengths_; }
  /// runs+1 prefix-summed row offsets; run_starts()[r] is run r's first row.
  const std::vector<uint64_t>& run_starts() const { return run_starts_; }
  /// The run containing `row` (kRle only; row must be < size()).
  [[nodiscard]] size_t RunIndexOf(size_t row) const;

  /// A plain deep copy with identical logical contents (the decode
  /// fallback; counts one mlcs.encode.decode_events). Returns a copy even
  /// when already plain.
  [[nodiscard]] ColumnPtr Decode() const;
  /// In-place decode; no-op on plain columns. Mutating entry points call
  /// this so in-place appends always see the typed vector.
  void EnsurePlain();

  /// -- Null handling ------------------------------------------------------
  /// The validity vector is allocated lazily; a column with no nulls keeps
  /// it empty so the common all-valid path costs nothing.
  bool has_nulls() const { return null_count_ > 0; }
  size_t null_count() const { return null_count_; }
  [[nodiscard]] bool IsNull(size_t row) const {
    return !validity_.empty() && validity_[row] == 0;
  }
  void SetNull(size_t row);
  /// Raw validity bytes (1 = valid), nullptr when all rows are valid.
  /// Branchless selection loops read this instead of calling IsNull per row.
  const uint8_t* validity_data() const {
    return validity_.empty() ? nullptr : validity_.data();
  }

  /// -- Typed raw access (hot paths; plain columns only) --------------------
  std::vector<uint8_t>& bool_data() { return std::get<kBoolIdx>(data_); }
  const std::vector<uint8_t>& bool_data() const {
    return std::get<kBoolIdx>(data_);
  }
  std::vector<int32_t>& i32_data() { return std::get<kI32Idx>(data_); }
  const std::vector<int32_t>& i32_data() const {
    return std::get<kI32Idx>(data_);
  }
  std::vector<int64_t>& i64_data() { return std::get<kI64Idx>(data_); }
  const std::vector<int64_t>& i64_data() const {
    return std::get<kI64Idx>(data_);
  }
  std::vector<double>& f64_data() { return std::get<kF64Idx>(data_); }
  const std::vector<double>& f64_data() const {
    return std::get<kF64Idx>(data_);
  }
  std::vector<std::string>& str_data() { return std::get<kStrIdx>(data_); }
  const std::vector<std::string>& str_data() const {
    return std::get<kStrIdx>(data_);
  }

  /// -- Appending ----------------------------------------------------------
  void Reserve(size_t capacity);
  void AppendBool(bool v) {
    if (encoding_ != ColumnEncoding::kPlain) EnsurePlain();
    std::get<kBoolIdx>(data_).push_back(v ? 1 : 0);
    MarkAppendedValid();
  }
  void AppendInt32(int32_t v) {
    if (encoding_ != ColumnEncoding::kPlain) EnsurePlain();
    std::get<kI32Idx>(data_).push_back(v);
    MarkAppendedValid();
  }
  void AppendInt64(int64_t v) {
    if (encoding_ != ColumnEncoding::kPlain) EnsurePlain();
    std::get<kI64Idx>(data_).push_back(v);
    MarkAppendedValid();
  }
  void AppendDouble(double v) {
    if (encoding_ != ColumnEncoding::kPlain) EnsurePlain();
    std::get<kF64Idx>(data_).push_back(v);
    MarkAppendedValid();
  }
  void AppendString(std::string v) {
    if (encoding_ != ColumnEncoding::kPlain) EnsurePlain();
    std::get<kStrIdx>(data_).push_back(std::move(v));
    MarkAppendedValid();
  }
  void AppendNull();
  /// Type-checked append of a Value (casts numerics when lossless).
  Status AppendValue(const Value& v);
  /// Appends all rows of `other` (must have the same type). Appending an
  /// encoded column to an empty plain column adopts its encoding; two
  /// dictionary columns over the same (or equal) dictionary concatenate
  /// codes; two RLE columns concatenate runs; any other mix decodes.
  Status AppendColumn(const Column& other);

  /// -- Row access (boundaries, tests, protocols) --------------------------
  Result<Value> GetValue(size_t row) const;

  /// -- Bulk transforms ----------------------------------------------------
  /// Element-wise cast; NULLs are preserved.
  Result<ColumnPtr> CastTo(TypeId target) const;
  /// Gather: out[i] = this[indices[i]]. Dictionary columns gather codes and
  /// share the dictionary; RLE gathers decode (a gather breaks runs).
  [[nodiscard]] ColumnPtr Take(const std::vector<uint32_t>& indices) const;
  /// Pointer-range gather over indices[0, count). Lets morsel-parallel
  /// operators gather disjoint pieces of one selection vector without
  /// copying it per morsel.
  [[nodiscard]] ColumnPtr Take(const uint32_t* indices, size_t count) const;
  /// Contiguous sub-range copy. Dictionary slices share the dictionary;
  /// RLE slices stay RLE with boundary runs trimmed.
  [[nodiscard]] ColumnPtr Slice(size_t offset, size_t length) const;
  /// Numeric column as doubles (ML ingestion). NULLs become NaN.
  Result<std::vector<double>> ToDoubleVector() const;

  /// Payload bytes this column holds — the data-movement footprint the
  /// scan bytes-touched accounting reads. Plain: fixed-width element bytes
  /// (or summed string lengths) plus the validity vector. Dictionary:
  /// codes at their packed width (1/2/4 bytes by dictionary size, the
  /// width Serialize writes) plus the dictionary itself. RLE: run values
  /// plus run lengths.
  [[nodiscard]] size_t ByteSize() const;

  [[nodiscard]] bool Equals(const Column& other) const;

  void Serialize(ByteWriter* writer) const;
  static Result<ColumnPtr> Deserialize(ByteReader* reader);

 private:
  static constexpr size_t kBoolIdx = 0;
  static constexpr size_t kI32Idx = 1;
  static constexpr size_t kI64Idx = 2;
  static constexpr size_t kF64Idx = 3;
  static constexpr size_t kStrIdx = 4;

  /// Serialized-form tag bits OR'ed onto the type byte (plain columns keep
  /// the bare type byte, so pre-encoding payloads still load).
  static constexpr uint8_t kDictTagBase = 0x80;
  static constexpr uint8_t kRleTagBase = 0xA0;

  /// Bytes per serialized code, by dictionary size.
  size_t CodeWidth() const;

  void EnsureValidity();
  /// Raw payload equality for plain null-free columns (dictionaries):
  /// compares the backing vectors directly instead of boxing every row
  /// into a Value like Equals — AppendColumn checks dictionary
  /// compatibility once per appended block, on the scan hot path.
  bool PlainPayloadEquals(const Column& other) const {
    return type_ == other.type_ && data_ == other.data_;
  }
  /// Keeps the lazily-allocated validity vector aligned after any append of
  /// a non-null value.
  void MarkAppendedValid() {
    if (!validity_.empty()) validity_.push_back(1);
  }

  TypeId type_;
  std::variant<std::vector<uint8_t>, std::vector<int32_t>,
               std::vector<int64_t>, std::vector<double>,
               std::vector<std::string>>
      data_;
  /// 1 = valid, 0 = null. Empty means "all valid". Always per logical row,
  /// whatever the encoding.
  std::vector<uint8_t> validity_;
  size_t null_count_ = 0;

  ColumnEncoding encoding_ = ColumnEncoding::kPlain;
  // kDict state (empty/null otherwise). dict_ is shared across Take/Slice
  // results and is never mutated through this column (mutation paths call
  // EnsurePlain first).
  std::vector<uint32_t> codes_;
  ColumnPtr dict_;
  bool dict_sorted_ = false;
  // kRle state (empty/null otherwise).
  ColumnPtr run_values_;
  std::vector<uint32_t> run_lengths_;
  std::vector<uint64_t> run_starts_;
};

}  // namespace mlcs

#endif  // MLCS_STORAGE_COLUMN_H_
