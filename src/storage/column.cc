#include "storage/column.h"

#include <cmath>

namespace mlcs {

namespace {
/// Default-constructs the right vector alternative for a type.
size_t VariantIndexFor(TypeId type) {
  switch (type) {
    case TypeId::kBool:
      return 0;
    case TypeId::kInt32:
      return 1;
    case TypeId::kInt64:
      return 2;
    case TypeId::kDouble:
      return 3;
    case TypeId::kVarchar:
    case TypeId::kBlob:
      return 4;
  }
  return 1;
}
}  // namespace

Column::Column(TypeId type) : type_(type) {
  switch (VariantIndexFor(type)) {
    case 0:
      data_.emplace<std::vector<uint8_t>>();
      break;
    case 1:
      data_.emplace<std::vector<int32_t>>();
      break;
    case 2:
      data_.emplace<std::vector<int64_t>>();
      break;
    case 3:
      data_.emplace<std::vector<double>>();
      break;
    case 4:
      data_.emplace<std::vector<std::string>>();
      break;
  }
}

ColumnPtr Column::Constant(const Value& v, size_t count) {
  ColumnPtr col = Make(v.type());
  col->Reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (v.is_null()) {
      col->AppendNull();
    } else {
      // AppendValue cannot fail here: the types match by construction.
      (void)col->AppendValue(v);
    }
  }
  return col;
}

ColumnPtr Column::FromInt32(std::vector<int32_t> data) {
  ColumnPtr col = Make(TypeId::kInt32);
  col->data_.emplace<std::vector<int32_t>>(std::move(data));
  return col;
}

ColumnPtr Column::FromInt64(std::vector<int64_t> data) {
  ColumnPtr col = Make(TypeId::kInt64);
  col->data_.emplace<std::vector<int64_t>>(std::move(data));
  return col;
}

ColumnPtr Column::FromDouble(std::vector<double> data) {
  ColumnPtr col = Make(TypeId::kDouble);
  col->data_.emplace<std::vector<double>>(std::move(data));
  return col;
}

ColumnPtr Column::FromBool(std::vector<uint8_t> data) {
  ColumnPtr col = Make(TypeId::kBool);
  col->data_.emplace<std::vector<uint8_t>>(std::move(data));
  return col;
}

ColumnPtr Column::FromStrings(std::vector<std::string> data, TypeId type) {
  ColumnPtr col = Make(type);
  col->data_.emplace<std::vector<std::string>>(std::move(data));
  return col;
}

size_t Column::size() const {
  switch (data_.index()) {
    case kBoolIdx:
      return std::get<kBoolIdx>(data_).size();
    case kI32Idx:
      return std::get<kI32Idx>(data_).size();
    case kI64Idx:
      return std::get<kI64Idx>(data_).size();
    case kF64Idx:
      return std::get<kF64Idx>(data_).size();
    case kStrIdx:
      return std::get<kStrIdx>(data_).size();
  }
  return 0;
}

void Column::EnsureValidity() {
  if (validity_.empty()) validity_.assign(size(), 1);
}

void Column::SetNull(size_t row) {
  EnsureValidity();
  if (validity_[row] != 0) {
    validity_[row] = 0;
    ++null_count_;
  }
}

void Column::Reserve(size_t capacity) {
  switch (data_.index()) {
    case kBoolIdx:
      std::get<kBoolIdx>(data_).reserve(capacity);
      break;
    case kI32Idx:
      std::get<kI32Idx>(data_).reserve(capacity);
      break;
    case kI64Idx:
      std::get<kI64Idx>(data_).reserve(capacity);
      break;
    case kF64Idx:
      std::get<kF64Idx>(data_).reserve(capacity);
      break;
    case kStrIdx:
      std::get<kStrIdx>(data_).reserve(capacity);
      break;
  }
}

void Column::AppendNull() {
  // Push a default slot, then mark it null.
  switch (data_.index()) {
    case kBoolIdx:
      std::get<kBoolIdx>(data_).push_back(0);
      break;
    case kI32Idx:
      std::get<kI32Idx>(data_).push_back(0);
      break;
    case kI64Idx:
      std::get<kI64Idx>(data_).push_back(0);
      break;
    case kF64Idx:
      std::get<kF64Idx>(data_).push_back(0);
      break;
    case kStrIdx:
      std::get<kStrIdx>(data_).emplace_back();
      break;
  }
  MarkAppendedValid();  // keep validity aligned before flipping the new slot
  SetNull(size() - 1);
}

Status Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  Value coerced = v;
  if (v.type() != type_) {
    MLCS_ASSIGN_OR_RETURN(coerced, v.CastTo(type_));
  }
  switch (type_) {
    case TypeId::kBool:
      AppendBool(coerced.bool_value());
      break;
    case TypeId::kInt32:
      AppendInt32(coerced.int32_value());
      break;
    case TypeId::kInt64:
      AppendInt64(coerced.int64_value());
      break;
    case TypeId::kDouble:
      AppendDouble(coerced.double_value());
      break;
    case TypeId::kVarchar:
    case TypeId::kBlob:
      AppendString(coerced.string_value());
      break;
  }
  return Status::OK();
}

Status Column::AppendColumn(const Column& other) {
  if (other.type_ != type_) {
    return Status::TypeMismatch(std::string("cannot append ") +
                                TypeIdToString(other.type_) + " column to " +
                                TypeIdToString(type_) + " column");
  }
  size_t old_size = size();
  switch (data_.index()) {
    case kBoolIdx: {
      auto& dst = std::get<kBoolIdx>(data_);
      const auto& src = std::get<kBoolIdx>(other.data_);
      dst.insert(dst.end(), src.begin(), src.end());
      break;
    }
    case kI32Idx: {
      auto& dst = std::get<kI32Idx>(data_);
      const auto& src = std::get<kI32Idx>(other.data_);
      dst.insert(dst.end(), src.begin(), src.end());
      break;
    }
    case kI64Idx: {
      auto& dst = std::get<kI64Idx>(data_);
      const auto& src = std::get<kI64Idx>(other.data_);
      dst.insert(dst.end(), src.begin(), src.end());
      break;
    }
    case kF64Idx: {
      auto& dst = std::get<kF64Idx>(data_);
      const auto& src = std::get<kF64Idx>(other.data_);
      dst.insert(dst.end(), src.begin(), src.end());
      break;
    }
    case kStrIdx: {
      auto& dst = std::get<kStrIdx>(data_);
      const auto& src = std::get<kStrIdx>(other.data_);
      dst.insert(dst.end(), src.begin(), src.end());
      break;
    }
  }
  if (other.has_nulls() || !validity_.empty()) {
    if (validity_.empty()) validity_.assign(old_size, 1);
    if (other.validity_.empty()) {
      validity_.insert(validity_.end(), other.size(), 1);
    } else {
      validity_.insert(validity_.end(), other.validity_.begin(),
                       other.validity_.end());
    }
    null_count_ += other.null_count_;
  }
  return Status::OK();
}

Result<Value> Column::GetValue(size_t row) const {
  if (row >= size()) {
    return Status::OutOfRange("row " + std::to_string(row) +
                              " out of range (size " +
                              std::to_string(size()) + ")");
  }
  if (IsNull(row)) return Value::MakeNull(type_);
  switch (type_) {
    case TypeId::kBool:
      return Value::Bool(std::get<kBoolIdx>(data_)[row] != 0);
    case TypeId::kInt32:
      return Value::Int32(std::get<kI32Idx>(data_)[row]);
    case TypeId::kInt64:
      return Value::Int64(std::get<kI64Idx>(data_)[row]);
    case TypeId::kDouble:
      return Value::Double(std::get<kF64Idx>(data_)[row]);
    case TypeId::kVarchar:
      return Value::Varchar(std::get<kStrIdx>(data_)[row]);
    case TypeId::kBlob:
      return Value::Blob(std::get<kStrIdx>(data_)[row]);
  }
  return Status::Internal("unreachable");
}

Result<ColumnPtr> Column::CastTo(TypeId target) const {
  if (target == type_) {
    return std::make_shared<Column>(*this);
  }
  ColumnPtr out = Make(target);
  size_t n = size();
  out->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (IsNull(i)) {
      out->AppendNull();
      continue;
    }
    MLCS_ASSIGN_OR_RETURN(Value v, GetValue(i));
    MLCS_ASSIGN_OR_RETURN(Value cast, v.CastTo(target));
    MLCS_RETURN_IF_ERROR(out->AppendValue(cast));
  }
  return out;
}

ColumnPtr Column::Take(const std::vector<uint32_t>& indices) const {
  return Take(indices.data(), indices.size());
}

ColumnPtr Column::Take(const uint32_t* indices, size_t count) const {
  ColumnPtr out = Make(type_);
  out->Reserve(count);
  switch (data_.index()) {
    case kBoolIdx: {
      const auto& src = std::get<kBoolIdx>(data_);
      auto& dst = std::get<kBoolIdx>(out->data_);
      for (size_t i = 0; i < count; ++i) dst.push_back(src[indices[i]]);
      break;
    }
    case kI32Idx: {
      const auto& src = std::get<kI32Idx>(data_);
      auto& dst = std::get<kI32Idx>(out->data_);
      for (size_t i = 0; i < count; ++i) dst.push_back(src[indices[i]]);
      break;
    }
    case kI64Idx: {
      const auto& src = std::get<kI64Idx>(data_);
      auto& dst = std::get<kI64Idx>(out->data_);
      for (size_t i = 0; i < count; ++i) dst.push_back(src[indices[i]]);
      break;
    }
    case kF64Idx: {
      const auto& src = std::get<kF64Idx>(data_);
      auto& dst = std::get<kF64Idx>(out->data_);
      for (size_t i = 0; i < count; ++i) dst.push_back(src[indices[i]]);
      break;
    }
    case kStrIdx: {
      const auto& src = std::get<kStrIdx>(data_);
      auto& dst = std::get<kStrIdx>(out->data_);
      for (size_t i = 0; i < count; ++i) dst.push_back(src[indices[i]]);
      break;
    }
  }
  if (has_nulls()) {
    out->validity_.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      uint8_t valid = validity_[indices[i]];
      out->validity_.push_back(valid);
      if (valid == 0) ++out->null_count_;
    }
    if (out->null_count_ == 0) out->validity_.clear();
  }
  return out;
}

ColumnPtr Column::Slice(size_t offset, size_t length) const {
  // Contiguous range copy, not a gather: the morsel-parallel operators
  // slice every input column once per morsel, so this is a hot path.
  ColumnPtr out = Make(type_);
  switch (data_.index()) {
    case kBoolIdx: {
      const auto& src = std::get<kBoolIdx>(data_);
      std::get<kBoolIdx>(out->data_)
          .assign(src.begin() + offset, src.begin() + offset + length);
      break;
    }
    case kI32Idx: {
      const auto& src = std::get<kI32Idx>(data_);
      std::get<kI32Idx>(out->data_)
          .assign(src.begin() + offset, src.begin() + offset + length);
      break;
    }
    case kI64Idx: {
      const auto& src = std::get<kI64Idx>(data_);
      std::get<kI64Idx>(out->data_)
          .assign(src.begin() + offset, src.begin() + offset + length);
      break;
    }
    case kF64Idx: {
      const auto& src = std::get<kF64Idx>(data_);
      std::get<kF64Idx>(out->data_)
          .assign(src.begin() + offset, src.begin() + offset + length);
      break;
    }
    case kStrIdx: {
      const auto& src = std::get<kStrIdx>(data_);
      std::get<kStrIdx>(out->data_)
          .assign(src.begin() + offset, src.begin() + offset + length);
      break;
    }
  }
  if (has_nulls()) {
    out->validity_.assign(validity_.begin() + offset,
                          validity_.begin() + offset + length);
    for (uint8_t v : out->validity_) {
      if (v == 0) ++out->null_count_;
    }
    if (out->null_count_ == 0) out->validity_.clear();
  }
  return out;
}

Result<std::vector<double>> Column::ToDoubleVector() const {
  if (!IsNumericType(type_)) {
    return Status::TypeMismatch(std::string(TypeIdToString(type_)) +
                                " column cannot be converted to doubles");
  }
  size_t n = size();
  std::vector<double> out(n);
  switch (type_) {
    case TypeId::kBool: {
      const auto& src = std::get<kBoolIdx>(data_);
      for (size_t i = 0; i < n; ++i) out[i] = src[i];
      break;
    }
    case TypeId::kInt32: {
      const auto& src = std::get<kI32Idx>(data_);
      for (size_t i = 0; i < n; ++i) out[i] = src[i];
      break;
    }
    case TypeId::kInt64: {
      const auto& src = std::get<kI64Idx>(data_);
      for (size_t i = 0; i < n; ++i) out[i] = static_cast<double>(src[i]);
      break;
    }
    case TypeId::kDouble:
      out = std::get<kF64Idx>(data_);
      break;
    default:
      break;
  }
  if (has_nulls()) {
    for (size_t i = 0; i < n; ++i) {
      if (validity_[i] == 0) out[i] = std::nan("");
    }
  }
  return out;
}

size_t Column::ByteSize() const {
  size_t bytes = validity_.size();
  switch (type_) {
    case TypeId::kBool:
      bytes += std::get<kBoolIdx>(data_).size();
      break;
    case TypeId::kInt32:
      bytes += std::get<kI32Idx>(data_).size() * sizeof(int32_t);
      break;
    case TypeId::kInt64:
      bytes += std::get<kI64Idx>(data_).size() * sizeof(int64_t);
      break;
    case TypeId::kDouble:
      bytes += std::get<kF64Idx>(data_).size() * sizeof(double);
      break;
    case TypeId::kVarchar:
    case TypeId::kBlob:
      for (const auto& s : std::get<kStrIdx>(data_)) bytes += s.size();
      break;
  }
  return bytes;
}

bool Column::Equals(const Column& other) const {
  if (type_ != other.type_ || size() != other.size()) return false;
  size_t n = size();
  for (size_t i = 0; i < n; ++i) {
    if (IsNull(i) != other.IsNull(i)) return false;
  }
  // Payload comparison skips null slots (their stored defaults may differ).
  for (size_t i = 0; i < n; ++i) {
    if (IsNull(i)) continue;
    auto a = GetValue(i);
    auto b = other.GetValue(i);
    if (!a.ok() || !b.ok()) return false;
    if (!(a.ValueOrDie() == b.ValueOrDie())) return false;
  }
  return true;
}

void Column::Serialize(ByteWriter* writer) const {
  writer->WriteU8(static_cast<uint8_t>(type_));
  size_t n = size();
  writer->WriteVarint(n);
  writer->WriteBool(has_nulls());
  if (has_nulls()) writer->WriteRaw(validity_.data(), n);
  switch (data_.index()) {
    case kBoolIdx:
      writer->WriteRaw(std::get<kBoolIdx>(data_).data(), n);
      break;
    case kI32Idx:
      writer->WriteRaw(std::get<kI32Idx>(data_).data(), n * sizeof(int32_t));
      break;
    case kI64Idx:
      writer->WriteRaw(std::get<kI64Idx>(data_).data(), n * sizeof(int64_t));
      break;
    case kF64Idx:
      writer->WriteRaw(std::get<kF64Idx>(data_).data(), n * sizeof(double));
      break;
    case kStrIdx:
      for (const auto& s : std::get<kStrIdx>(data_)) {
        writer->WriteVarint(s.size());
        writer->WriteRaw(s.data(), s.size());
      }
      break;
  }
}

Result<ColumnPtr> Column::Deserialize(ByteReader* reader) {
  MLCS_ASSIGN_OR_RETURN(uint8_t type_byte, reader->ReadU8());
  if (type_byte > static_cast<uint8_t>(TypeId::kBlob)) {
    return Status::ParseError("invalid type tag in serialized column");
  }
  TypeId type = static_cast<TypeId>(type_byte);
  MLCS_ASSIGN_OR_RETURN(uint64_t n, reader->ReadVarint());
  MLCS_ASSIGN_OR_RETURN(bool has_nulls, reader->ReadBool());
  ColumnPtr col = Make(type);
  if (has_nulls) {
    col->validity_.resize(n);
    MLCS_RETURN_IF_ERROR(reader->ReadRaw(col->validity_.data(), n));
    for (uint8_t v : col->validity_) {
      if (v == 0) ++col->null_count_;
    }
  }
  switch (type) {
    case TypeId::kBool: {
      auto& dst = std::get<kBoolIdx>(col->data_);
      dst.resize(n);
      MLCS_RETURN_IF_ERROR(reader->ReadRaw(dst.data(), n));
      break;
    }
    case TypeId::kInt32: {
      auto& dst = std::get<kI32Idx>(col->data_);
      dst.resize(n);
      MLCS_RETURN_IF_ERROR(reader->ReadRaw(dst.data(), n * sizeof(int32_t)));
      break;
    }
    case TypeId::kInt64: {
      auto& dst = std::get<kI64Idx>(col->data_);
      dst.resize(n);
      MLCS_RETURN_IF_ERROR(reader->ReadRaw(dst.data(), n * sizeof(int64_t)));
      break;
    }
    case TypeId::kDouble: {
      auto& dst = std::get<kF64Idx>(col->data_);
      dst.resize(n);
      MLCS_RETURN_IF_ERROR(reader->ReadRaw(dst.data(), n * sizeof(double)));
      break;
    }
    case TypeId::kVarchar:
    case TypeId::kBlob: {
      auto& dst = std::get<kStrIdx>(col->data_);
      dst.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        MLCS_ASSIGN_OR_RETURN(uint64_t len, reader->ReadVarint());
        std::string s(len, '\0');
        MLCS_RETURN_IF_ERROR(reader->ReadRaw(s.data(), len));
        dst.push_back(std::move(s));
      }
      break;
    }
  }
  return col;
}

}  // namespace mlcs
