#include "storage/column.h"

#include <algorithm>
#include <cmath>

#include "storage/encoding.h"

namespace mlcs {

namespace {
/// Default-constructs the right vector alternative for a type.
size_t VariantIndexFor(TypeId type) {
  switch (type) {
    case TypeId::kBool:
      return 0;
    case TypeId::kInt32:
      return 1;
    case TypeId::kInt64:
      return 2;
    case TypeId::kDouble:
      return 3;
    case TypeId::kVarchar:
    case TypeId::kBlob:
      return 4;
  }
  return 1;
}

/// True when a plain, null-free column's values are strictly ascending —
/// the precondition for translating range predicates to code comparisons.
/// NaN-bearing DOUBLE dictionaries are never "sorted" (comparisons with
/// NaN are unordered).
bool StrictlyAscending(const Column& dict) {
  size_t n = dict.size();
  if (n < 2) return true;
  switch (dict.type()) {
    case TypeId::kBool: {
      const auto& v = dict.bool_data();
      for (size_t i = 1; i < n; ++i) {
        if (!(v[i - 1] < v[i])) return false;
      }
      return true;
    }
    case TypeId::kInt32: {
      const auto& v = dict.i32_data();
      for (size_t i = 1; i < n; ++i) {
        if (!(v[i - 1] < v[i])) return false;
      }
      return true;
    }
    case TypeId::kInt64: {
      const auto& v = dict.i64_data();
      for (size_t i = 1; i < n; ++i) {
        if (!(v[i - 1] < v[i])) return false;
      }
      return true;
    }
    case TypeId::kDouble: {
      const auto& v = dict.f64_data();
      for (size_t i = 1; i < n; ++i) {
        if (!(v[i - 1] < v[i])) return false;
      }
      return true;
    }
    case TypeId::kVarchar:
    case TypeId::kBlob: {
      const auto& v = dict.str_data();
      for (size_t i = 1; i < n; ++i) {
        if (!(v[i - 1] < v[i])) return false;
      }
      return true;
    }
  }
  return false;
}
}  // namespace

Column::Column(TypeId type) : type_(type) {
  switch (VariantIndexFor(type)) {
    case 0:
      data_.emplace<std::vector<uint8_t>>();
      break;
    case 1:
      data_.emplace<std::vector<int32_t>>();
      break;
    case 2:
      data_.emplace<std::vector<int64_t>>();
      break;
    case 3:
      data_.emplace<std::vector<double>>();
      break;
    case 4:
      data_.emplace<std::vector<std::string>>();
      break;
  }
}

ColumnPtr Column::Constant(const Value& v, size_t count) {
  ColumnPtr col = Make(v.type());
  col->Reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (v.is_null()) {
      col->AppendNull();
    } else {
      // AppendValue cannot fail here: the types match by construction.
      (void)col->AppendValue(v);
    }
  }
  return col;
}

ColumnPtr Column::FromInt32(std::vector<int32_t> data) {
  ColumnPtr col = Make(TypeId::kInt32);
  col->data_.emplace<std::vector<int32_t>>(std::move(data));
  return col;
}

ColumnPtr Column::FromInt64(std::vector<int64_t> data) {
  ColumnPtr col = Make(TypeId::kInt64);
  col->data_.emplace<std::vector<int64_t>>(std::move(data));
  return col;
}

ColumnPtr Column::FromDouble(std::vector<double> data) {
  ColumnPtr col = Make(TypeId::kDouble);
  col->data_.emplace<std::vector<double>>(std::move(data));
  return col;
}

ColumnPtr Column::FromBool(std::vector<uint8_t> data) {
  ColumnPtr col = Make(TypeId::kBool);
  col->data_.emplace<std::vector<uint8_t>>(std::move(data));
  return col;
}

ColumnPtr Column::FromStrings(std::vector<std::string> data, TypeId type) {
  ColumnPtr col = Make(type);
  col->data_.emplace<std::vector<std::string>>(std::move(data));
  return col;
}

Result<ColumnPtr> Column::MakeDictionary(TypeId type,
                                         std::vector<uint32_t> codes,
                                         ColumnPtr dict,
                                         std::vector<uint8_t> validity) {
  if (dict == nullptr) {
    return Status::InvalidArgument("MakeDictionary: null dictionary");
  }
  if (dict->is_encoded()) {
    return Status::InvalidArgument("MakeDictionary: dictionary must be plain");
  }
  if (dict->type() != type) {
    return Status::TypeMismatch("MakeDictionary: dictionary type mismatch");
  }
  if (dict->has_nulls()) {
    return Status::InvalidArgument(
        "MakeDictionary: dictionary must be null-free");
  }
  if (!validity.empty() && validity.size() != codes.size()) {
    return Status::InvalidArgument(
        "MakeDictionary: validity/codes length mismatch");
  }
  size_t dict_size = dict->size();
  size_t nulls = 0;
  for (size_t i = 0; i < codes.size(); ++i) {
    if (!validity.empty() && validity[i] == 0) {
      codes[i] = 0;  // normalize: null rows' codes are never dereferenced
      ++nulls;
      continue;
    }
    if (codes[i] >= dict_size) {
      return Status::InvalidArgument(
          "MakeDictionary: code out of dictionary range");
    }
  }
  if (nulls == 0) validity.clear();
  ColumnPtr col = Make(type);
  col->encoding_ = ColumnEncoding::kDict;
  col->codes_ = std::move(codes);
  col->dict_sorted_ = StrictlyAscending(*dict);
  col->dict_ = std::move(dict);
  col->validity_ = std::move(validity);
  col->null_count_ = nulls;
  return col;
}

Result<ColumnPtr> Column::MakeRle(TypeId type, ColumnPtr run_values,
                                  std::vector<uint32_t> run_lengths,
                                  std::vector<uint8_t> validity) {
  if (run_values == nullptr) {
    return Status::InvalidArgument("MakeRle: null run values");
  }
  if (run_values->is_encoded()) {
    return Status::InvalidArgument("MakeRle: run values must be plain");
  }
  if (run_values->type() != type) {
    return Status::TypeMismatch("MakeRle: run-value type mismatch");
  }
  if (run_values->has_nulls()) {
    // Null runs carry a default payload slot; the per-row validity is the
    // only null authority (per-run kernels rely on the slots being real).
    return Status::InvalidArgument("MakeRle: run values must be null-free");
  }
  if (run_values->size() != run_lengths.size()) {
    return Status::InvalidArgument(
        "MakeRle: run value / run length count mismatch");
  }
  std::vector<uint64_t> starts;
  starts.reserve(run_lengths.size() + 1);
  starts.push_back(0);
  for (uint32_t len : run_lengths) {
    if (len == 0) {
      return Status::InvalidArgument("MakeRle: zero-length run");
    }
    starts.push_back(starts.back() + len);
  }
  uint64_t rows = starts.back();
  if (!validity.empty() && validity.size() != rows) {
    return Status::InvalidArgument("MakeRle: validity/rows length mismatch");
  }
  size_t nulls = 0;
  for (uint8_t v : validity) {
    if (v == 0) ++nulls;
  }
  if (nulls == 0) validity.clear();
  ColumnPtr col = Make(type);
  col->encoding_ = ColumnEncoding::kRle;
  col->run_values_ = std::move(run_values);
  col->run_lengths_ = std::move(run_lengths);
  col->run_starts_ = std::move(starts);
  col->validity_ = std::move(validity);
  col->null_count_ = nulls;
  return col;
}

size_t Column::size() const {
  switch (encoding_) {
    case ColumnEncoding::kDict:
      return codes_.size();
    case ColumnEncoding::kRle:
      return run_starts_.empty() ? 0 : run_starts_.back();
    case ColumnEncoding::kPlain:
      break;
  }
  switch (data_.index()) {
    case kBoolIdx:
      return std::get<kBoolIdx>(data_).size();
    case kI32Idx:
      return std::get<kI32Idx>(data_).size();
    case kI64Idx:
      return std::get<kI64Idx>(data_).size();
    case kF64Idx:
      return std::get<kF64Idx>(data_).size();
    case kStrIdx:
      return std::get<kStrIdx>(data_).size();
  }
  return 0;
}

size_t Column::RunIndexOf(size_t row) const {
  auto it = std::upper_bound(run_starts_.begin(), run_starts_.end(),
                             static_cast<uint64_t>(row));
  return static_cast<size_t>(it - run_starts_.begin()) - 1;
}

size_t Column::CodeWidth() const {
  size_t dict_size = dict_ != nullptr ? dict_->size() : 0;
  if (dict_size <= (1u << 8)) return 1;
  if (dict_size <= (1u << 16)) return 2;
  return 4;
}

ColumnPtr Column::Decode() const {
  if (encoding_ == ColumnEncoding::kPlain) {
    return std::make_shared<Column>(*this);
  }
  CountDecodeEvent();
  size_t n = size();
  ColumnPtr out = Make(type_);
  if (encoding_ == ColumnEncoding::kDict) {
    const uint32_t* codes = codes_.data();
    const uint8_t* valid = validity_data();
    switch (type_) {
      case TypeId::kBool: {
        const auto& dv = dict_->bool_data();
        auto& dst = out->bool_data();
        if (dv.empty()) {
          dst.assign(n, 0);  // all-null column: empty dictionary
          break;
        }
        dst.resize(n);
        for (size_t i = 0; i < n; ++i) {
          dst[i] = (valid == nullptr || valid[i]) ? dv[codes[i]] : 0;
        }
        break;
      }
      case TypeId::kInt32: {
        const auto& dv = dict_->i32_data();
        auto& dst = out->i32_data();
        if (dv.empty()) {
          dst.assign(n, 0);
          break;
        }
        dst.resize(n);
        for (size_t i = 0; i < n; ++i) {
          dst[i] = (valid == nullptr || valid[i]) ? dv[codes[i]] : 0;
        }
        break;
      }
      case TypeId::kInt64: {
        const auto& dv = dict_->i64_data();
        auto& dst = out->i64_data();
        if (dv.empty()) {
          dst.assign(n, 0);
          break;
        }
        dst.resize(n);
        for (size_t i = 0; i < n; ++i) {
          dst[i] = (valid == nullptr || valid[i]) ? dv[codes[i]] : 0;
        }
        break;
      }
      case TypeId::kDouble: {
        const auto& dv = dict_->f64_data();
        auto& dst = out->f64_data();
        if (dv.empty()) {
          dst.assign(n, 0.0);
          break;
        }
        dst.resize(n);
        for (size_t i = 0; i < n; ++i) {
          dst[i] = (valid == nullptr || valid[i]) ? dv[codes[i]] : 0.0;
        }
        break;
      }
      case TypeId::kVarchar:
      case TypeId::kBlob: {
        const auto& dv = dict_->str_data();
        auto& dst = out->str_data();
        dst.resize(n);
        if (dv.empty()) break;
        for (size_t i = 0; i < n; ++i) {
          if (valid == nullptr || valid[i]) dst[i] = dv[codes[i]];
        }
        break;
      }
    }
  } else {  // kRle
    size_t runs = run_lengths_.size();
    switch (type_) {
      case TypeId::kBool: {
        const auto& rv = run_values_->bool_data();
        auto& dst = out->bool_data();
        dst.resize(n);
        for (size_t r = 0; r < runs; ++r) {
          std::fill(dst.begin() + run_starts_[r],
                    dst.begin() + run_starts_[r + 1], rv[r]);
        }
        break;
      }
      case TypeId::kInt32: {
        const auto& rv = run_values_->i32_data();
        auto& dst = out->i32_data();
        dst.resize(n);
        for (size_t r = 0; r < runs; ++r) {
          std::fill(dst.begin() + run_starts_[r],
                    dst.begin() + run_starts_[r + 1], rv[r]);
        }
        break;
      }
      case TypeId::kInt64: {
        const auto& rv = run_values_->i64_data();
        auto& dst = out->i64_data();
        dst.resize(n);
        for (size_t r = 0; r < runs; ++r) {
          std::fill(dst.begin() + run_starts_[r],
                    dst.begin() + run_starts_[r + 1], rv[r]);
        }
        break;
      }
      case TypeId::kDouble: {
        const auto& rv = run_values_->f64_data();
        auto& dst = out->f64_data();
        dst.resize(n);
        for (size_t r = 0; r < runs; ++r) {
          std::fill(dst.begin() + run_starts_[r],
                    dst.begin() + run_starts_[r + 1], rv[r]);
        }
        break;
      }
      case TypeId::kVarchar:
      case TypeId::kBlob: {
        const auto& rv = run_values_->str_data();
        auto& dst = out->str_data();
        dst.resize(n);
        for (size_t r = 0; r < runs; ++r) {
          std::fill(dst.begin() + run_starts_[r],
                    dst.begin() + run_starts_[r + 1], rv[r]);
        }
        break;
      }
    }
    // Null slots hold run values; normalize them to defaults so decoded
    // bytes match what plain appends would have produced.
    if (has_nulls()) {
      for (size_t i = 0; i < n; ++i) {
        if (validity_[i] != 0) continue;
        switch (type_) {
          case TypeId::kBool:
            out->bool_data()[i] = 0;
            break;
          case TypeId::kInt32:
            out->i32_data()[i] = 0;
            break;
          case TypeId::kInt64:
            out->i64_data()[i] = 0;
            break;
          case TypeId::kDouble:
            out->f64_data()[i] = 0.0;
            break;
          case TypeId::kVarchar:
          case TypeId::kBlob:
            out->str_data()[i].clear();
            break;
        }
      }
    }
  }
  out->validity_ = validity_;
  out->null_count_ = null_count_;
  return out;
}

void Column::EnsurePlain() {
  if (encoding_ == ColumnEncoding::kPlain) return;
  ColumnPtr plain = Decode();
  *this = std::move(*plain);
}

void Column::EnsureValidity() {
  if (validity_.empty()) validity_.assign(size(), 1);
}

void Column::SetNull(size_t row) {
  EnsureValidity();
  if (validity_[row] != 0) {
    validity_[row] = 0;
    ++null_count_;
  }
}

void Column::Reserve(size_t capacity) {
  if (encoding_ == ColumnEncoding::kDict) {
    codes_.reserve(capacity);
    return;
  }
  if (encoding_ == ColumnEncoding::kRle) return;
  switch (data_.index()) {
    case kBoolIdx:
      std::get<kBoolIdx>(data_).reserve(capacity);
      break;
    case kI32Idx:
      std::get<kI32Idx>(data_).reserve(capacity);
      break;
    case kI64Idx:
      std::get<kI64Idx>(data_).reserve(capacity);
      break;
    case kF64Idx:
      std::get<kF64Idx>(data_).reserve(capacity);
      break;
    case kStrIdx:
      std::get<kStrIdx>(data_).reserve(capacity);
      break;
  }
}

void Column::AppendNull() {
  if (encoding_ != ColumnEncoding::kPlain) EnsurePlain();
  // Push a default slot, then mark it null.
  switch (data_.index()) {
    case kBoolIdx:
      std::get<kBoolIdx>(data_).push_back(0);
      break;
    case kI32Idx:
      std::get<kI32Idx>(data_).push_back(0);
      break;
    case kI64Idx:
      std::get<kI64Idx>(data_).push_back(0);
      break;
    case kF64Idx:
      std::get<kF64Idx>(data_).push_back(0);
      break;
    case kStrIdx:
      std::get<kStrIdx>(data_).emplace_back();
      break;
  }
  MarkAppendedValid();  // keep validity aligned before flipping the new slot
  SetNull(size() - 1);
}

Status Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  Value coerced = v;
  if (v.type() != type_) {
    MLCS_ASSIGN_OR_RETURN(coerced, v.CastTo(type_));
  }
  switch (type_) {
    case TypeId::kBool:
      AppendBool(coerced.bool_value());
      break;
    case TypeId::kInt32:
      AppendInt32(coerced.int32_value());
      break;
    case TypeId::kInt64:
      AppendInt64(coerced.int64_value());
      break;
    case TypeId::kDouble:
      AppendDouble(coerced.double_value());
      break;
    case TypeId::kVarchar:
    case TypeId::kBlob:
      AppendString(coerced.string_value());
      break;
  }
  return Status::OK();
}

Status Column::AppendColumn(const Column& other) {
  if (other.type_ != type_) {
    return Status::TypeMismatch(std::string("cannot append ") +
                                TypeIdToString(other.type_) + " column to " +
                                TypeIdToString(type_) + " column");
  }
  if (other.size() == 0) return Status::OK();
  // An empty plain column adopts the first appended column's encoding:
  // block scans splice chunks with Make(type) + AppendColumn, and this is
  // what keeps encoded chunks encoded end-to-end. RLE state is deep-copied
  // because later appends extend run_values_ in place — the source (often
  // a cached buffer-pool chunk) must not grow with us.
  if (size() == 0 && encoding_ == ColumnEncoding::kPlain &&
      validity_.empty() && other.is_encoded()) {
    *this = other;
    if (encoding_ == ColumnEncoding::kRle) {
      run_values_ = std::make_shared<Column>(*run_values_);
    }
    return Status::OK();
  }
  if (encoding_ == ColumnEncoding::kDict &&
      other.encoding_ == ColumnEncoding::kDict &&
      (dict_ == other.dict_ || dict_->PlainPayloadEquals(*other.dict_))) {
    size_t old_size = codes_.size();
    codes_.insert(codes_.end(), other.codes_.begin(), other.codes_.end());
    if (other.has_nulls() || !validity_.empty()) {
      if (validity_.empty()) validity_.assign(old_size, 1);
      if (other.validity_.empty()) {
        validity_.insert(validity_.end(), other.size(), 1);
      } else {
        validity_.insert(validity_.end(), other.validity_.begin(),
                         other.validity_.end());
      }
      null_count_ += other.null_count_;
    }
    return Status::OK();
  }
  if (encoding_ == ColumnEncoding::kRle &&
      other.encoding_ == ColumnEncoding::kRle && &other != this) {
    size_t old_size = size();
    MLCS_RETURN_IF_ERROR(run_values_->AppendColumn(*other.run_values_));
    run_lengths_.insert(run_lengths_.end(), other.run_lengths_.begin(),
                        other.run_lengths_.end());
    uint64_t base = run_starts_.back();
    for (size_t r = 1; r < other.run_starts_.size(); ++r) {
      run_starts_.push_back(base + other.run_starts_[r]);
    }
    if (other.has_nulls() || !validity_.empty()) {
      if (validity_.empty()) validity_.assign(old_size, 1);
      if (other.validity_.empty()) {
        validity_.insert(validity_.end(), other.size(), 1);
      } else {
        validity_.insert(validity_.end(), other.validity_.begin(),
                         other.validity_.end());
      }
      null_count_ += other.null_count_;
    }
    return Status::OK();
  }
  if (is_encoded() || other.is_encoded()) {
    // Incompatible mix (different dictionaries, dict+RLE, …): fall back.
    EnsurePlain();
    if (other.is_encoded()) {
      ColumnPtr plain = other.Decode();
      return AppendColumn(*plain);
    }
  }
  size_t old_size = size();
  switch (data_.index()) {
    case kBoolIdx: {
      auto& dst = std::get<kBoolIdx>(data_);
      const auto& src = std::get<kBoolIdx>(other.data_);
      dst.insert(dst.end(), src.begin(), src.end());
      break;
    }
    case kI32Idx: {
      auto& dst = std::get<kI32Idx>(data_);
      const auto& src = std::get<kI32Idx>(other.data_);
      dst.insert(dst.end(), src.begin(), src.end());
      break;
    }
    case kI64Idx: {
      auto& dst = std::get<kI64Idx>(data_);
      const auto& src = std::get<kI64Idx>(other.data_);
      dst.insert(dst.end(), src.begin(), src.end());
      break;
    }
    case kF64Idx: {
      auto& dst = std::get<kF64Idx>(data_);
      const auto& src = std::get<kF64Idx>(other.data_);
      dst.insert(dst.end(), src.begin(), src.end());
      break;
    }
    case kStrIdx: {
      auto& dst = std::get<kStrIdx>(data_);
      const auto& src = std::get<kStrIdx>(other.data_);
      dst.insert(dst.end(), src.begin(), src.end());
      break;
    }
  }
  if (other.has_nulls() || !validity_.empty()) {
    if (validity_.empty()) validity_.assign(old_size, 1);
    if (other.validity_.empty()) {
      validity_.insert(validity_.end(), other.size(), 1);
    } else {
      validity_.insert(validity_.end(), other.validity_.begin(),
                       other.validity_.end());
    }
    null_count_ += other.null_count_;
  }
  return Status::OK();
}

Result<Value> Column::GetValue(size_t row) const {
  if (row >= size()) {
    return Status::OutOfRange("row " + std::to_string(row) +
                              " out of range (size " +
                              std::to_string(size()) + ")");
  }
  if (IsNull(row)) return Value::MakeNull(type_);
  if (encoding_ == ColumnEncoding::kDict) {
    return dict_->GetValue(codes_[row]);
  }
  if (encoding_ == ColumnEncoding::kRle) {
    return run_values_->GetValue(RunIndexOf(row));
  }
  switch (type_) {
    case TypeId::kBool:
      return Value::Bool(std::get<kBoolIdx>(data_)[row] != 0);
    case TypeId::kInt32:
      return Value::Int32(std::get<kI32Idx>(data_)[row]);
    case TypeId::kInt64:
      return Value::Int64(std::get<kI64Idx>(data_)[row]);
    case TypeId::kDouble:
      return Value::Double(std::get<kF64Idx>(data_)[row]);
    case TypeId::kVarchar:
      return Value::Varchar(std::get<kStrIdx>(data_)[row]);
    case TypeId::kBlob:
      return Value::Blob(std::get<kStrIdx>(data_)[row]);
  }
  return Status::Internal("unreachable");
}

Result<ColumnPtr> Column::CastTo(TypeId target) const {
  if (target == type_) {
    return std::make_shared<Column>(*this);
  }
  if (is_encoded()) {
    // A cast could collapse distinct dictionary entries (e.g. double →
    // int32 truncation), breaking the distinctness the code-equality fast
    // paths rely on — decode instead of remapping the dictionary.
    ColumnPtr plain = Decode();
    return plain->CastTo(target);
  }
  ColumnPtr out = Make(target);
  size_t n = size();
  out->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (IsNull(i)) {
      out->AppendNull();
      continue;
    }
    MLCS_ASSIGN_OR_RETURN(Value v, GetValue(i));
    MLCS_ASSIGN_OR_RETURN(Value cast, v.CastTo(target));
    MLCS_RETURN_IF_ERROR(out->AppendValue(cast));
  }
  return out;
}

ColumnPtr Column::Take(const std::vector<uint32_t>& indices) const {
  return Take(indices.data(), indices.size());
}

ColumnPtr Column::Take(const uint32_t* indices, size_t count) const {
  if (encoding_ == ColumnEncoding::kDict) {
    // Gather the codes, share the dictionary.
    ColumnPtr out = Make(type_);
    out->encoding_ = ColumnEncoding::kDict;
    out->dict_ = dict_;
    out->dict_sorted_ = dict_sorted_;
    out->codes_.resize(count);
    const uint32_t* src = codes_.data();
    uint32_t* dst = out->codes_.data();
    for (size_t i = 0; i < count; ++i) dst[i] = src[indices[i]];
    if (has_nulls()) {
      out->validity_.reserve(count);
      for (size_t i = 0; i < count; ++i) {
        uint8_t valid = validity_[indices[i]];
        out->validity_.push_back(valid);
        if (valid == 0) ++out->null_count_;
      }
      if (out->null_count_ == 0) out->validity_.clear();
    }
    return out;
  }
  if (encoding_ == ColumnEncoding::kRle) {
    // A gather breaks runs; emit plain by gathering run values. Selection
    // vectors arrive ascending, so a monotonic run cursor resolves them in
    // O(count + runs); a backwards jump falls back to the binary search
    // and re-anchors the cursor there.
    std::vector<uint32_t> run_idx(count);
    size_t run = 0;
    for (size_t i = 0; i < count; ++i) {
      size_t row = indices[i];
      if (row < run_starts_[run]) {
        run = RunIndexOf(row);
      } else {
        while (run_starts_[run + 1] <= row) ++run;
      }
      run_idx[i] = static_cast<uint32_t>(run);
    }
    ColumnPtr out = run_values_->Take(run_idx);
    if (has_nulls()) {
      for (size_t i = 0; i < count; ++i) {
        if (validity_[indices[i]] == 0) out->SetNull(i);
      }
    }
    return out;
  }
  // resize + indexed stores, not push_back: the per-element capacity check
  // blocks the compiler from keeping this a tight gather, and this loop
  // expands every per-entry kernel result back to row space.
  ColumnPtr out = Make(type_);
  switch (data_.index()) {
    case kBoolIdx: {
      const auto& src = std::get<kBoolIdx>(data_);
      auto& dst = std::get<kBoolIdx>(out->data_);
      dst.resize(count);
      for (size_t i = 0; i < count; ++i) dst[i] = src[indices[i]];
      break;
    }
    case kI32Idx: {
      const auto& src = std::get<kI32Idx>(data_);
      auto& dst = std::get<kI32Idx>(out->data_);
      dst.resize(count);
      for (size_t i = 0; i < count; ++i) dst[i] = src[indices[i]];
      break;
    }
    case kI64Idx: {
      const auto& src = std::get<kI64Idx>(data_);
      auto& dst = std::get<kI64Idx>(out->data_);
      dst.resize(count);
      for (size_t i = 0; i < count; ++i) dst[i] = src[indices[i]];
      break;
    }
    case kF64Idx: {
      const auto& src = std::get<kF64Idx>(data_);
      auto& dst = std::get<kF64Idx>(out->data_);
      dst.resize(count);
      for (size_t i = 0; i < count; ++i) dst[i] = src[indices[i]];
      break;
    }
    case kStrIdx: {
      const auto& src = std::get<kStrIdx>(data_);
      auto& dst = std::get<kStrIdx>(out->data_);
      dst.resize(count);
      for (size_t i = 0; i < count; ++i) dst[i] = src[indices[i]];
      break;
    }
  }
  if (has_nulls()) {
    out->validity_.resize(count);
    size_t nulls = 0;
    for (size_t i = 0; i < count; ++i) {
      uint8_t valid = validity_[indices[i]];
      out->validity_[i] = valid;
      nulls += valid == 0 ? 1 : 0;
    }
    out->null_count_ = nulls;
    if (nulls == 0) out->validity_.clear();
  }
  return out;
}

ColumnPtr Column::Slice(size_t offset, size_t length) const {
  // Contiguous range copy, not a gather: the morsel-parallel operators
  // slice every input column once per morsel, so this is a hot path.
  if (encoding_ == ColumnEncoding::kDict) {
    ColumnPtr out = Make(type_);
    out->encoding_ = ColumnEncoding::kDict;
    out->dict_ = dict_;
    out->dict_sorted_ = dict_sorted_;
    out->codes_.assign(codes_.begin() + offset,
                       codes_.begin() + offset + length);
    if (has_nulls()) {
      out->validity_.assign(validity_.begin() + offset,
                            validity_.begin() + offset + length);
      for (uint8_t v : out->validity_) {
        if (v == 0) ++out->null_count_;
      }
      if (out->null_count_ == 0) out->validity_.clear();
    }
    return out;
  }
  if (encoding_ == ColumnEncoding::kRle) {
    if (length == 0) return Make(type_);
    size_t first = RunIndexOf(offset);
    size_t last = RunIndexOf(offset + length - 1);
    ColumnPtr out = Make(type_);
    out->encoding_ = ColumnEncoding::kRle;
    out->run_values_ = run_values_->Slice(first, last - first + 1);
    out->run_lengths_.assign(run_lengths_.begin() + first,
                             run_lengths_.begin() + last + 1);
    // Trim the boundary runs to the slice window.
    out->run_lengths_.front() = static_cast<uint32_t>(
        std::min<uint64_t>(run_starts_[first + 1], offset + length) - offset);
    if (last > first) {
      out->run_lengths_.back() =
          static_cast<uint32_t>(offset + length - run_starts_[last]);
    }
    out->run_starts_.reserve(out->run_lengths_.size() + 1);
    out->run_starts_.push_back(0);
    for (uint32_t len : out->run_lengths_) {
      out->run_starts_.push_back(out->run_starts_.back() + len);
    }
    if (has_nulls()) {
      out->validity_.assign(validity_.begin() + offset,
                            validity_.begin() + offset + length);
      for (uint8_t v : out->validity_) {
        if (v == 0) ++out->null_count_;
      }
      if (out->null_count_ == 0) out->validity_.clear();
    }
    return out;
  }
  ColumnPtr out = Make(type_);
  switch (data_.index()) {
    case kBoolIdx: {
      const auto& src = std::get<kBoolIdx>(data_);
      std::get<kBoolIdx>(out->data_)
          .assign(src.begin() + offset, src.begin() + offset + length);
      break;
    }
    case kI32Idx: {
      const auto& src = std::get<kI32Idx>(data_);
      std::get<kI32Idx>(out->data_)
          .assign(src.begin() + offset, src.begin() + offset + length);
      break;
    }
    case kI64Idx: {
      const auto& src = std::get<kI64Idx>(data_);
      std::get<kI64Idx>(out->data_)
          .assign(src.begin() + offset, src.begin() + offset + length);
      break;
    }
    case kF64Idx: {
      const auto& src = std::get<kF64Idx>(data_);
      std::get<kF64Idx>(out->data_)
          .assign(src.begin() + offset, src.begin() + offset + length);
      break;
    }
    case kStrIdx: {
      const auto& src = std::get<kStrIdx>(data_);
      std::get<kStrIdx>(out->data_)
          .assign(src.begin() + offset, src.begin() + offset + length);
      break;
    }
  }
  if (has_nulls()) {
    out->validity_.assign(validity_.begin() + offset,
                          validity_.begin() + offset + length);
    for (uint8_t v : out->validity_) {
      if (v == 0) ++out->null_count_;
    }
    if (out->null_count_ == 0) out->validity_.clear();
  }
  return out;
}

Result<std::vector<double>> Column::ToDoubleVector() const {
  if (!IsNumericType(type_)) {
    return Status::TypeMismatch(std::string(TypeIdToString(type_)) +
                                " column cannot be converted to doubles");
  }
  size_t n = size();
  std::vector<double> out(n);
  if (encoding_ == ColumnEncoding::kDict) {
    MLCS_ASSIGN_OR_RETURN(std::vector<double> dict_vals,
                          dict_->ToDoubleVector());
    if (!dict_vals.empty()) {
      const uint32_t* codes = codes_.data();
      for (size_t i = 0; i < n; ++i) out[i] = dict_vals[codes[i]];
    }
  } else if (encoding_ == ColumnEncoding::kRle) {
    MLCS_ASSIGN_OR_RETURN(std::vector<double> run_vals,
                          run_values_->ToDoubleVector());
    for (size_t r = 0; r < run_vals.size(); ++r) {
      std::fill(out.begin() + run_starts_[r], out.begin() + run_starts_[r + 1],
                run_vals[r]);
    }
  } else {
    switch (type_) {
      case TypeId::kBool: {
        const auto& src = std::get<kBoolIdx>(data_);
        for (size_t i = 0; i < n; ++i) out[i] = src[i];
        break;
      }
      case TypeId::kInt32: {
        const auto& src = std::get<kI32Idx>(data_);
        for (size_t i = 0; i < n; ++i) out[i] = src[i];
        break;
      }
      case TypeId::kInt64: {
        const auto& src = std::get<kI64Idx>(data_);
        for (size_t i = 0; i < n; ++i) out[i] = static_cast<double>(src[i]);
        break;
      }
      case TypeId::kDouble:
        out = std::get<kF64Idx>(data_);
        break;
      default:
        break;
    }
  }
  if (has_nulls()) {
    for (size_t i = 0; i < n; ++i) {
      if (validity_[i] == 0) out[i] = std::nan("");
    }
  }
  return out;
}

size_t Column::ByteSize() const {
  size_t bytes = validity_.size();
  if (encoding_ == ColumnEncoding::kDict) {
    return bytes + codes_.size() * CodeWidth() + dict_->ByteSize();
  }
  if (encoding_ == ColumnEncoding::kRle) {
    return bytes + run_lengths_.size() * sizeof(uint32_t) +
           run_values_->ByteSize();
  }
  switch (type_) {
    case TypeId::kBool:
      bytes += std::get<kBoolIdx>(data_).size();
      break;
    case TypeId::kInt32:
      bytes += std::get<kI32Idx>(data_).size() * sizeof(int32_t);
      break;
    case TypeId::kInt64:
      bytes += std::get<kI64Idx>(data_).size() * sizeof(int64_t);
      break;
    case TypeId::kDouble:
      bytes += std::get<kF64Idx>(data_).size() * sizeof(double);
      break;
    case TypeId::kVarchar:
    case TypeId::kBlob:
      for (const auto& s : std::get<kStrIdx>(data_)) bytes += s.size();
      break;
  }
  return bytes;
}

bool Column::Equals(const Column& other) const {
  if (type_ != other.type_ || size() != other.size()) return false;
  size_t n = size();
  for (size_t i = 0; i < n; ++i) {
    if (IsNull(i) != other.IsNull(i)) return false;
  }
  // Payload comparison skips null slots (their stored defaults may differ).
  // GetValue is encoding-aware, so any encoding mix compares logically.
  for (size_t i = 0; i < n; ++i) {
    if (IsNull(i)) continue;
    auto a = GetValue(i);
    auto b = other.GetValue(i);
    if (!a.ok() || !b.ok()) return false;
    if (!(a.ValueOrDie() == b.ValueOrDie())) return false;
  }
  return true;
}

void Column::Serialize(ByteWriter* writer) const {
  size_t n = size();
  if (encoding_ == ColumnEncoding::kDict) {
    writer->WriteU8(kDictTagBase | static_cast<uint8_t>(type_));
    writer->WriteVarint(n);
    writer->WriteBool(has_nulls());
    if (has_nulls()) writer->WriteRaw(validity_.data(), n);
    dict_->Serialize(writer);
    // Codes at their packed width (1/2/4 bytes by dictionary size; the
    // reader recomputes the width from the dictionary it just read).
    switch (CodeWidth()) {
      case 1: {
        std::vector<uint8_t> packed(n);
        for (size_t i = 0; i < n; ++i) {
          packed[i] = static_cast<uint8_t>(codes_[i]);
        }
        writer->WriteRaw(packed.data(), n);
        break;
      }
      case 2: {
        std::vector<uint16_t> packed(n);
        for (size_t i = 0; i < n; ++i) {
          packed[i] = static_cast<uint16_t>(codes_[i]);
        }
        writer->WriteRaw(packed.data(), n * sizeof(uint16_t));
        break;
      }
      default:
        writer->WriteRaw(codes_.data(), n * sizeof(uint32_t));
        break;
    }
    return;
  }
  if (encoding_ == ColumnEncoding::kRle) {
    writer->WriteU8(kRleTagBase | static_cast<uint8_t>(type_));
    writer->WriteVarint(n);
    writer->WriteBool(has_nulls());
    if (has_nulls()) writer->WriteRaw(validity_.data(), n);
    writer->WriteVarint(run_lengths_.size());
    for (uint32_t len : run_lengths_) writer->WriteVarint(len);
    run_values_->Serialize(writer);
    return;
  }
  writer->WriteU8(static_cast<uint8_t>(type_));
  writer->WriteVarint(n);
  writer->WriteBool(has_nulls());
  if (has_nulls()) writer->WriteRaw(validity_.data(), n);
  switch (data_.index()) {
    case kBoolIdx:
      writer->WriteRaw(std::get<kBoolIdx>(data_).data(), n);
      break;
    case kI32Idx:
      writer->WriteRaw(std::get<kI32Idx>(data_).data(), n * sizeof(int32_t));
      break;
    case kI64Idx:
      writer->WriteRaw(std::get<kI64Idx>(data_).data(), n * sizeof(int64_t));
      break;
    case kF64Idx:
      writer->WriteRaw(std::get<kF64Idx>(data_).data(), n * sizeof(double));
      break;
    case kStrIdx:
      for (const auto& s : std::get<kStrIdx>(data_)) {
        writer->WriteVarint(s.size());
        writer->WriteRaw(s.data(), s.size());
      }
      break;
  }
}

Result<ColumnPtr> Column::Deserialize(ByteReader* reader) {
  MLCS_ASSIGN_OR_RETURN(uint8_t type_byte, reader->ReadU8());
  if ((type_byte & kDictTagBase) != 0) {
    // Encoded form: 0x80|type = dictionary, 0xA0|type = RLE.
    bool is_rle = (type_byte & (kRleTagBase & ~kDictTagBase)) != 0;
    uint8_t base_byte = type_byte & 0x1F;
    if (base_byte > static_cast<uint8_t>(TypeId::kBlob)) {
      return Status::ParseError("invalid type tag in serialized column");
    }
    TypeId type = static_cast<TypeId>(base_byte);
    MLCS_ASSIGN_OR_RETURN(uint64_t n, reader->ReadVarint());
    MLCS_ASSIGN_OR_RETURN(bool has_nulls, reader->ReadBool());
    std::vector<uint8_t> validity;
    if (has_nulls) {
      validity.resize(n);
      MLCS_RETURN_IF_ERROR(reader->ReadRaw(validity.data(), n));
    }
    if (is_rle) {
      MLCS_ASSIGN_OR_RETURN(uint64_t num_runs, reader->ReadVarint());
      if (num_runs > n) {
        return Status::ParseError("RLE column has more runs than rows");
      }
      std::vector<uint32_t> lengths;
      lengths.reserve(num_runs);
      for (uint64_t r = 0; r < num_runs; ++r) {
        MLCS_ASSIGN_OR_RETURN(uint64_t len, reader->ReadVarint());
        if (len == 0 || len > n) {
          return Status::ParseError("invalid RLE run length");
        }
        lengths.push_back(static_cast<uint32_t>(len));
      }
      MLCS_ASSIGN_OR_RETURN(ColumnPtr run_values,
                            Column::Deserialize(reader));
      MLCS_ASSIGN_OR_RETURN(
          ColumnPtr col,
          MakeRle(type, std::move(run_values), std::move(lengths),
                  std::move(validity)));
      if (col->size() != n) {
        return Status::ParseError("RLE run lengths disagree with row count");
      }
      return col;
    }
    MLCS_ASSIGN_OR_RETURN(ColumnPtr dict, Column::Deserialize(reader));
    size_t dict_size = dict->size();
    size_t width = dict_size <= (1u << 8) ? 1 : dict_size <= (1u << 16) ? 2 : 4;
    std::vector<uint32_t> codes(n);
    switch (width) {
      case 1: {
        std::vector<uint8_t> packed(n);
        MLCS_RETURN_IF_ERROR(reader->ReadRaw(packed.data(), n));
        for (uint64_t i = 0; i < n; ++i) codes[i] = packed[i];
        break;
      }
      case 2: {
        std::vector<uint16_t> packed(n);
        MLCS_RETURN_IF_ERROR(
            reader->ReadRaw(packed.data(), n * sizeof(uint16_t)));
        for (uint64_t i = 0; i < n; ++i) codes[i] = packed[i];
        break;
      }
      default:
        MLCS_RETURN_IF_ERROR(
            reader->ReadRaw(codes.data(), n * sizeof(uint32_t)));
        break;
    }
    return MakeDictionary(type, std::move(codes), std::move(dict),
                          std::move(validity));
  }
  if (type_byte > static_cast<uint8_t>(TypeId::kBlob)) {
    return Status::ParseError("invalid type tag in serialized column");
  }
  TypeId type = static_cast<TypeId>(type_byte);
  MLCS_ASSIGN_OR_RETURN(uint64_t n, reader->ReadVarint());
  MLCS_ASSIGN_OR_RETURN(bool has_nulls, reader->ReadBool());
  ColumnPtr col = Make(type);
  if (has_nulls) {
    col->validity_.resize(n);
    MLCS_RETURN_IF_ERROR(reader->ReadRaw(col->validity_.data(), n));
    for (uint8_t v : col->validity_) {
      if (v == 0) ++col->null_count_;
    }
  }
  switch (type) {
    case TypeId::kBool: {
      auto& dst = std::get<kBoolIdx>(col->data_);
      dst.resize(n);
      MLCS_RETURN_IF_ERROR(reader->ReadRaw(dst.data(), n));
      break;
    }
    case TypeId::kInt32: {
      auto& dst = std::get<kI32Idx>(col->data_);
      dst.resize(n);
      MLCS_RETURN_IF_ERROR(reader->ReadRaw(dst.data(), n * sizeof(int32_t)));
      break;
    }
    case TypeId::kInt64: {
      auto& dst = std::get<kI64Idx>(col->data_);
      dst.resize(n);
      MLCS_RETURN_IF_ERROR(reader->ReadRaw(dst.data(), n * sizeof(int64_t)));
      break;
    }
    case TypeId::kDouble: {
      auto& dst = std::get<kF64Idx>(col->data_);
      dst.resize(n);
      MLCS_RETURN_IF_ERROR(reader->ReadRaw(dst.data(), n * sizeof(double)));
      break;
    }
    case TypeId::kVarchar:
    case TypeId::kBlob: {
      auto& dst = std::get<kStrIdx>(col->data_);
      dst.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        MLCS_ASSIGN_OR_RETURN(uint64_t len, reader->ReadVarint());
        std::string s(len, '\0');
        MLCS_RETURN_IF_ERROR(reader->ReadRaw(s.data(), len));
        dst.push_back(std::move(s));
      }
      break;
    }
  }
  return col;
}

}  // namespace mlcs
