#ifndef MLCS_STORAGE_ENCODING_H_
#define MLCS_STORAGE_ENCODING_H_

#include <cstddef>
#include <cstdint>

#include "storage/column.h"
#include "storage/table.h"

namespace mlcs {

/// Auto-detect thresholds for EncodeColumn/EncodeTable (DESIGN.md §13).
/// A column is considered, in order: RLE when its run count is a small
/// fraction of its rows (sorted / precinct-like data); dictionary when a
/// low-cardinality INT32/INT64/VARCHAR column's distinct count is both
/// under the hard cap and a small fraction of its rows (voter-shaped
/// categorical data); plain otherwise. Tiny columns are never encoded.
struct EncodingPolicy {
  /// Hard dictionary cap — more distinct values spill to plain (codes
  /// would need >2 bytes and the dictionary stops paying for itself).
  size_t max_dict_size = 1u << 16;
  /// distinct / non-null rows must be ≤ this for dictionary encoding.
  double max_dict_fraction = 0.5;
  /// runs / rows must be ≤ this for RLE.
  double max_run_fraction = 0.5;
  /// Columns with fewer rows than this stay plain.
  size_t min_rows = 64;
};

/// Encodes one column per `policy`. Returns the input pointer unchanged
/// when no encoding is profitable (or the column is already encoded);
/// otherwise a freshly built encoded column with identical logical
/// contents. Never fails — an unencodable column is simply returned as-is.
ColumnPtr EncodeColumn(const ColumnPtr& column, const EncodingPolicy& policy);

/// Applies EncodeColumn to every column. Returns the input table pointer
/// when nothing changed (also when encoding is disabled, see
/// EncodingEnabled()); otherwise a new Table sharing the untouched columns.
TablePtr EncodeTable(const TablePtr& table,
                     const EncodingPolicy& policy = EncodingPolicy());

/// Decodes every encoded column. Returns the input pointer when all
/// columns are already plain. This is the decode boundary queries pass
/// through before results reach raw-accessor consumers (wire protocols,
/// UDF argument vectors, ML ingestion).
TablePtr DecodeTable(const TablePtr& table);

/// Process-wide toggle for producing encoded columns (default on; the
/// MLCS_DISABLE_ENCODING env var starts it off — recorded in BENCH json).
/// When off, EncodeTable is a no-op and block scans decode any encoded
/// chunks they read, so previously-saved encoded tables still execute
/// plain end-to-end: that is the bit-identical parity axis the property
/// sweep and bench/ablation_compression flip.
bool EncodingEnabled();
void SetEncodingEnabled(bool enabled);

/// mlcs.encode.* registry series (cached pointers; safe on hot paths).
/// Readable snapshots for tests and the ablation bench.
uint64_t EncodeColumnsEncoded();   ///< columns EncodeColumn compressed
uint64_t EncodeEncodedBytes();     ///< ByteSize of columns as encoded
uint64_t EncodeDecodeEvents();     ///< Column::Decode fallback count
uint64_t EncodeCodePathHits();     ///< kernel operate-on-code fast paths

/// Internal hot-path hooks (Column::Decode and the exec fast paths bump
/// these; exposed here so those layers need no obs dependency of their own).
void CountDecodeEvent();
void CountCodePathHit();

}  // namespace mlcs

#endif  // MLCS_STORAGE_ENCODING_H_
