#ifndef MLCS_ML_METRICS_H_
#define MLCS_ML_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "ml/matrix.h"

namespace mlcs::ml {

/// Fraction of rows where prediction equals truth.
Result<double> Accuracy(const Labels& y_true, const Labels& y_pred);

/// Confusion matrix over the union of observed classes.
struct ConfusionMatrix {
  std::vector<int32_t> classes;                 // sorted
  std::vector<std::vector<int64_t>> counts;     // [true][pred]

  int64_t At(int32_t true_cls, int32_t pred_cls) const;
  std::string ToString() const;
};

Result<ConfusionMatrix> ComputeConfusionMatrix(const Labels& y_true,
                                               const Labels& y_pred);

/// Per-class precision / recall / F1 plus macro averages.
struct ClassificationReport {
  struct PerClass {
    int32_t cls = 0;
    double precision = 0;
    double recall = 0;
    double f1 = 0;
    int64_t support = 0;
  };
  std::vector<PerClass> per_class;
  double macro_precision = 0;
  double macro_recall = 0;
  double macro_f1 = 0;

  std::string ToString() const;
};

Result<ClassificationReport> ComputeClassificationReport(
    const Labels& y_true, const Labels& y_pred);

/// Negative mean log of the predicted probability assigned to the true
/// class (probabilities clamped away from 0).
Result<double> LogLoss(const Labels& y_true,
                       const std::vector<double>& proba_of_true);

}  // namespace mlcs::ml

#endif  // MLCS_ML_METRICS_H_
