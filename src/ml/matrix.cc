#include "ml/matrix.h"

namespace mlcs::ml {

Result<Matrix> Matrix::FromColumns(const std::vector<ColumnPtr>& columns) {
  Matrix m;
  for (const auto& col : columns) {
    if (col == nullptr) return Status::InvalidArgument("null column");
    MLCS_ASSIGN_OR_RETURN(std::vector<double> data, col->ToDoubleVector());
    MLCS_RETURN_IF_ERROR(m.AddColumn(std::move(data)));
  }
  return m;
}

Result<Matrix> Matrix::FromTable(const Table& table,
                                 const std::vector<std::string>& features) {
  std::vector<ColumnPtr> cols;
  cols.reserve(features.size());
  for (const auto& name : features) {
    MLCS_ASSIGN_OR_RETURN(ColumnPtr col, table.ColumnByName(name));
    cols.push_back(std::move(col));
  }
  return FromColumns(cols);
}

Status Matrix::AddColumn(std::vector<double> column) {
  if (cols_ > 0 && column.size() != rows_) {
    return Status::InvalidArgument(
        "column length " + std::to_string(column.size()) +
        " does not match matrix rows " + std::to_string(rows_));
  }
  if (cols_ == 0) rows_ = column.size();
  data_.push_back(std::move(column));
  ++cols_;
  return Status::OK();
}

Matrix Matrix::SelectRows(const std::vector<uint32_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (size_t c = 0; c < cols_; ++c) {
    const auto& src = data_[c];
    auto& dst = out.data_[c];
    for (size_t i = 0; i < indices.size(); ++i) dst[i] = src[indices[i]];
  }
  return out;
}

}  // namespace mlcs::ml
