#ifndef MLCS_ML_NAIVE_BAYES_H_
#define MLCS_ML_NAIVE_BAYES_H_

#include <memory>
#include <vector>

#include "ml/model.h"

namespace mlcs::ml {

struct NaiveBayesOptions {
  /// Variance floor added to every per-feature variance (sklearn's
  /// var_smoothing analogue, relative to the largest feature variance).
  double var_smoothing = 1e-9;
};

/// Gaussian naive Bayes — the third model family for the ensemble study.
/// Fast single-pass fit, closed-form probabilities.
class NaiveBayes : public Model {
 public:
  explicit NaiveBayes(NaiveBayesOptions options = {});

  ModelType type() const override { return ModelType::kNaiveBayes; }
  Status Fit(const Matrix& x, const Labels& y) override;
  Result<Labels> Predict(const Matrix& x) const override;
  Result<std::vector<double>> PredictProba(const Matrix& x,
                                           int32_t cls) const override;
  Result<std::vector<double>> PredictConfidence(
      const Matrix& x) const override;
  const std::vector<int32_t>& classes() const override { return classes_; }
  std::string ParamsString() const override;
  void Serialize(ByteWriter* writer) const override;

  static Result<std::unique_ptr<NaiveBayes>> DeserializeBody(
      ByteReader* reader);

 private:
  /// Row-normalized posterior per class.
  Result<std::vector<std::vector<double>>> Posteriors(const Matrix& x) const;

  NaiveBayesOptions options_;
  std::vector<int32_t> classes_;
  size_t num_features_ = 0;
  std::vector<double> log_prior_;              // [class]
  std::vector<std::vector<double>> mean_;      // [class][feature]
  std::vector<std::vector<double>> var_;       // [class][feature]
};

}  // namespace mlcs::ml

#endif  // MLCS_ML_NAIVE_BAYES_H_
