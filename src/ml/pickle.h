#ifndef MLCS_ML_PICKLE_H_
#define MLCS_ML_PICKLE_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "ml/model.h"

namespace mlcs::ml::pickle {

/// Serializes a fitted (or unfitted) model to bytes — the analogue of
/// Python's `pickle.dumps(clf)` in the paper's Listing 1. The result is
/// what gets stored in a BLOB column.
std::string Dumps(const Model& model);

/// Reconstructs a model from bytes — `pickle.loads(classifier)` in
/// Listing 2. Rejects unknown type tags and truncated payloads.
Result<ModelPtr> Loads(const std::string& bytes);

}  // namespace mlcs::ml::pickle

#endif  // MLCS_ML_PICKLE_H_
