#ifndef MLCS_ML_SPLIT_H_
#define MLCS_ML_SPLIT_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace mlcs::ml {

struct TrainTestIndices {
  std::vector<uint32_t> train;
  std::vector<uint32_t> test;
};

/// Shuffled split of [0, n) into train/test by `test_fraction` (paper §4
/// "divide the data into a training set and a test set"). Deterministic
/// given the seed.
Result<TrainTestIndices> TrainTestSplit(size_t n, double test_fraction,
                                        uint64_t seed = 42);

/// K-fold partition: fold i is the test set of split i, the rest train.
/// All folds are disjoint and cover [0, n).
Result<std::vector<TrainTestIndices>> KFold(size_t n, size_t k,
                                            uint64_t seed = 42);

/// Group-aware split for factorized training sources (DESIGN.md §14):
/// every row of `keys` whose join key lands test goes to the test side,
/// so no dimension row feeds both sides — the leakage a row-level split
/// invites when the same dimension features back train and test rows.
/// Keys are shuffled by `seed`, then whole key-groups fill the test side
/// until it holds at least `test_fraction` of the rows. Within each side,
/// rows keep their original (fact-table) order. `keys[r]` must be in
/// [0, num_keys); both sides are guaranteed non-empty.
Result<TrainTestIndices> GroupedTrainTestSplit(
    const std::vector<uint32_t>& keys, size_t num_keys, double test_fraction,
    uint64_t seed = 42);

}  // namespace mlcs::ml

#endif  // MLCS_ML_SPLIT_H_
