#ifndef MLCS_ML_SPLIT_H_
#define MLCS_ML_SPLIT_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace mlcs::ml {

struct TrainTestIndices {
  std::vector<uint32_t> train;
  std::vector<uint32_t> test;
};

/// Shuffled split of [0, n) into train/test by `test_fraction` (paper §4
/// "divide the data into a training set and a test set"). Deterministic
/// given the seed.
Result<TrainTestIndices> TrainTestSplit(size_t n, double test_fraction,
                                        uint64_t seed = 42);

/// K-fold partition: fold i is the test set of split i, the rest train.
/// All folds are disjoint and cover [0, n).
Result<std::vector<TrainTestIndices>> KFold(size_t n, size_t k,
                                            uint64_t seed = 42);

}  // namespace mlcs::ml

#endif  // MLCS_ML_SPLIT_H_
