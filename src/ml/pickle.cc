#include "ml/pickle.h"

#include "ml/decision_tree.h"
#include "ml/knn.h"
#include "ml/logistic_regression.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"

namespace mlcs::ml::pickle {

namespace {
constexpr uint32_t kMagic = 0x4D4C504B;  // "MLPK"
}

std::string Dumps(const Model& model) {
  ByteWriter writer;
  writer.WriteU32(kMagic);
  writer.WriteU8(static_cast<uint8_t>(model.type()));
  model.Serialize(&writer);
  return writer.TakeString();
}

Result<ModelPtr> Loads(const std::string& bytes) {
  ByteReader reader(bytes);
  MLCS_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kMagic) {
    return Status::ParseError("not a pickled mlcs model");
  }
  MLCS_ASSIGN_OR_RETURN(uint8_t tag, reader.ReadU8());
  switch (static_cast<ModelType>(tag)) {
    case ModelType::kDecisionTree: {
      MLCS_ASSIGN_OR_RETURN(auto m, DecisionTree::DeserializeBody(&reader));
      return ModelPtr(std::move(m));
    }
    case ModelType::kRandomForest: {
      MLCS_ASSIGN_OR_RETURN(auto m, RandomForest::DeserializeBody(&reader));
      return ModelPtr(std::move(m));
    }
    case ModelType::kLogisticRegression: {
      MLCS_ASSIGN_OR_RETURN(auto m,
                            LogisticRegression::DeserializeBody(&reader));
      return ModelPtr(std::move(m));
    }
    case ModelType::kNaiveBayes: {
      MLCS_ASSIGN_OR_RETURN(auto m, NaiveBayes::DeserializeBody(&reader));
      return ModelPtr(std::move(m));
    }
    case ModelType::kKnn: {
      MLCS_ASSIGN_OR_RETURN(auto m, Knn::DeserializeBody(&reader));
      return ModelPtr(std::move(m));
    }
  }
  return Status::ParseError("unknown model type tag " + std::to_string(tag));
}

}  // namespace mlcs::ml::pickle
