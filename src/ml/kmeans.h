#ifndef MLCS_ML_KMEANS_H_
#define MLCS_ML_KMEANS_H_

#include <vector>

#include "common/result.h"
#include "ml/matrix.h"

namespace mlcs::ml {

struct KMeansOptions {
  size_t k = 8;
  int max_iters = 100;
  /// Stop when total centroid movement falls below this.
  double tolerance = 1e-6;
  uint64_t seed = 42;
};

/// Lloyd's k-means with k-means++ initialization. Unsupervised — used for
/// the preprocessing stage of pipelines (e.g. bucketing voters into
/// behavioural segments before classification), which the paper notes can
/// also live inside UDFs.
class KMeans {
 public:
  explicit KMeans(KMeansOptions options = {});

  /// Clusters X; deterministic given the seed.
  Status Fit(const Matrix& x);

  bool fitted() const { return !centroids_.empty(); }
  size_t k() const { return options_.k; }
  /// [cluster][feature] centers.
  const std::vector<std::vector<double>>& centroids() const {
    return centroids_;
  }
  /// Sum of squared distances of training points to their centers.
  double inertia() const { return inertia_; }
  int iterations_run() const { return iterations_run_; }

  /// Nearest-centroid assignment per row.
  Result<std::vector<int32_t>> Assign(const Matrix& x) const;

 private:
  size_t NearestCentroid(const Matrix& x, size_t row,
                         double* distance_sq) const;

  KMeansOptions options_;
  size_t num_features_ = 0;
  std::vector<std::vector<double>> centroids_;
  double inertia_ = 0;
  int iterations_run_ = 0;
};

}  // namespace mlcs::ml

#endif  // MLCS_ML_KMEANS_H_
