#include "ml/naive_bayes.h"

#include <cmath>

namespace mlcs::ml {

NaiveBayes::NaiveBayes(NaiveBayesOptions options) : options_(options) {}

Status NaiveBayes::Fit(const Matrix& x, const Labels& y) {
  MLCS_RETURN_IF_ERROR(internal::CheckFitInputs(x, y));
  classes_ = internal::DistinctClasses(y);
  num_features_ = x.cols();
  size_t n = x.rows(), d = x.cols(), k = classes_.size();

  std::vector<double> counts(k, 0.0);
  mean_.assign(k, std::vector<double>(d, 0.0));
  var_.assign(k, std::vector<double>(d, 0.0));
  std::vector<size_t> cls_of_row(n);
  for (size_t r = 0; r < n; ++r) {
    MLCS_ASSIGN_OR_RETURN(size_t c, internal::ClassIndex(classes_, y[r]));
    cls_of_row[r] = c;
    counts[c] += 1.0;
  }
  for (size_t f = 0; f < d; ++f) {
    const auto& col = x.column(f);
    for (size_t r = 0; r < n; ++r) {
      double v = std::isnan(col[r]) ? 0.0 : col[r];
      mean_[cls_of_row[r]][f] += v;
    }
  }
  for (size_t c = 0; c < k; ++c) {
    for (size_t f = 0; f < d; ++f) mean_[c][f] /= counts[c];
  }
  double max_var = 0;
  for (size_t f = 0; f < d; ++f) {
    const auto& col = x.column(f);
    for (size_t r = 0; r < n; ++r) {
      double v = std::isnan(col[r]) ? 0.0 : col[r];
      double e = v - mean_[cls_of_row[r]][f];
      var_[cls_of_row[r]][f] += e * e;
    }
  }
  for (size_t c = 0; c < k; ++c) {
    for (size_t f = 0; f < d; ++f) {
      var_[c][f] /= counts[c];
      max_var = std::max(max_var, var_[c][f]);
    }
  }
  double eps = options_.var_smoothing * std::max(max_var, 1.0);
  for (auto& per_class : var_) {
    for (auto& v : per_class) v += eps;
  }
  log_prior_.resize(k);
  for (size_t c = 0; c < k; ++c) {
    log_prior_[c] = std::log(counts[c] / static_cast<double>(n));
  }
  return Status::OK();
}

Result<std::vector<std::vector<double>>> NaiveBayes::Posteriors(
    const Matrix& x) const {
  MLCS_RETURN_IF_ERROR(
      internal::CheckPredictInputs(x, num_features_, fitted()));
  size_t n = x.rows(), d = x.cols(), k = classes_.size();
  std::vector<std::vector<double>> log_post(n,
                                            std::vector<double>(k, 0.0));
  constexpr double kLog2Pi = 1.8378770664093453;
  for (size_t c = 0; c < k; ++c) {
    double base = log_prior_[c];
    for (size_t r = 0; r < n; ++r) log_post[r][c] = base;
    for (size_t f = 0; f < d; ++f) {
      const auto& col = x.column(f);
      double m = mean_[c][f];
      double v = var_[c][f];
      double inv2v = 0.5 / v;
      double log_norm = -0.5 * (kLog2Pi + std::log(v));
      for (size_t r = 0; r < n; ++r) {
        double value = std::isnan(col[r]) ? 0.0 : col[r];
        double e = value - m;
        log_post[r][c] += log_norm - e * e * inv2v;
      }
    }
  }
  // Softmax per row (log-sum-exp stabilized).
  for (auto& row : log_post) {
    double mx = row[0];
    for (double v : row) mx = std::max(mx, v);
    double sum = 0;
    for (double& v : row) {
      v = std::exp(v - mx);
      sum += v;
    }
    for (double& v : row) v /= sum;
  }
  return log_post;
}

Result<Labels> NaiveBayes::Predict(const Matrix& x) const {
  MLCS_ASSIGN_OR_RETURN(auto post, Posteriors(x));
  Labels out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    size_t best = 0;
    for (size_t c = 1; c < classes_.size(); ++c) {
      if (post[r][c] > post[r][best]) best = c;
    }
    out[r] = classes_[best];
  }
  return out;
}

Result<std::vector<double>> NaiveBayes::PredictProba(const Matrix& x,
                                                     int32_t cls) const {
  MLCS_ASSIGN_OR_RETURN(size_t idx, internal::ClassIndex(classes_, cls));
  MLCS_ASSIGN_OR_RETURN(auto post, Posteriors(x));
  std::vector<double> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) out[r] = post[r][idx];
  return out;
}

Result<std::vector<double>> NaiveBayes::PredictConfidence(
    const Matrix& x) const {
  MLCS_ASSIGN_OR_RETURN(auto post, Posteriors(x));
  std::vector<double> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    double best = 0;
    for (double v : post[r]) best = std::max(best, v);
    out[r] = best;
  }
  return out;
}

std::string NaiveBayes::ParamsString() const {
  return "var_smoothing=" + std::to_string(options_.var_smoothing);
}

void NaiveBayes::Serialize(ByteWriter* writer) const {
  writer->WriteDouble(options_.var_smoothing);
  writer->WriteVarint(classes_.size());
  for (int32_t c : classes_) writer->WriteI32(c);
  writer->WriteVarint(num_features_);
  for (double v : log_prior_) writer->WriteDouble(v);
  for (const auto& per_class : mean_) {
    for (double v : per_class) writer->WriteDouble(v);
  }
  for (const auto& per_class : var_) {
    for (double v : per_class) writer->WriteDouble(v);
  }
}

Result<std::unique_ptr<NaiveBayes>> NaiveBayes::DeserializeBody(
    ByteReader* reader) {
  NaiveBayesOptions options;
  MLCS_ASSIGN_OR_RETURN(options.var_smoothing, reader->ReadDouble());
  auto model = std::make_unique<NaiveBayes>(options);
  MLCS_ASSIGN_OR_RETURN(uint64_t k, reader->ReadVarint());
  model->classes_.resize(k);
  for (auto& c : model->classes_) {
    MLCS_ASSIGN_OR_RETURN(c, reader->ReadI32());
  }
  MLCS_ASSIGN_OR_RETURN(uint64_t d, reader->ReadVarint());
  model->num_features_ = d;
  model->log_prior_.resize(k);
  for (auto& v : model->log_prior_) {
    MLCS_ASSIGN_OR_RETURN(v, reader->ReadDouble());
  }
  model->mean_.assign(k, std::vector<double>(d));
  for (auto& per_class : model->mean_) {
    for (auto& v : per_class) {
      MLCS_ASSIGN_OR_RETURN(v, reader->ReadDouble());
    }
  }
  model->var_.assign(k, std::vector<double>(d));
  for (auto& per_class : model->var_) {
    for (auto& v : per_class) {
      MLCS_ASSIGN_OR_RETURN(v, reader->ReadDouble());
    }
  }
  return model;
}

}  // namespace mlcs::ml
