#ifndef MLCS_ML_RANDOM_FOREST_H_
#define MLCS_ML_RANDOM_FOREST_H_

#include <memory>
#include <vector>

#include "ml/decision_tree.h"
#include "ml/model.h"

namespace mlcs::ml {

struct RandomForestOptions {
  /// Number of trees — the paper's `n_estimators` UDF parameter
  /// (Listing 1).
  int n_estimators = 16;
  int max_depth = 12;
  size_t min_samples_split = 2;
  size_t min_samples_leaf = 1;
  /// Features per split; 0 = floor(sqrt(d)), scikit-learn's default.
  size_t max_features = 0;
  bool bootstrap = true;
  int num_bins = 32;
  bool exact_splits = false;
  /// Fit trees on the global thread pool.
  bool parallel_fit = true;
  uint64_t seed = 42;
};

/// Bagging random-forest classifier over CART trees — the reproduction of
/// the paper's sklearn RandomForestClassifier UDF workload.
class RandomForest : public Model {
 public:
  explicit RandomForest(RandomForestOptions options = {});

  ModelType type() const override { return ModelType::kRandomForest; }
  Status Fit(const Matrix& x, const Labels& y) override;
  /// Statistics-provider path: every tree bootstraps and fits against the
  /// TrainingSource (per-key aggregate split statistics for factorized
  /// features). Bit-identical to Fit on the equivalent dense matrix;
  /// Fit funnels through here via TrainingSource::FromMatrix.
  Status FitSource(const TrainingSource& x, const Labels& y);
  Result<Labels> Predict(const Matrix& x) const override;
  Result<std::vector<double>> PredictProba(const Matrix& x,
                                           int32_t cls) const override;
  Result<std::vector<double>> PredictConfidence(
      const Matrix& x) const override;
  const std::vector<int32_t>& classes() const override { return classes_; }
  std::string ParamsString() const override;
  void Serialize(ByteWriter* writer) const override;

  static Result<std::unique_ptr<RandomForest>> DeserializeBody(
      ByteReader* reader);

  size_t num_trees() const { return trees_.size(); }

  /// Mean of the trees' normalized importances, renormalized — which
  /// demographics drive the voter model (meta-analysis, §3.3 flavor).
  Result<std::vector<double>> FeatureImportances() const;
  const RandomForestOptions& options() const { return options_; }

 private:
  /// Tree-distribution average per row (class-index space).
  Result<std::vector<std::vector<double>>> AverageDistribution(
      const Matrix& x) const;

  RandomForestOptions options_;
  std::vector<int32_t> classes_;
  size_t num_features_ = 0;
  std::vector<std::unique_ptr<DecisionTree>> trees_;
};

}  // namespace mlcs::ml

#endif  // MLCS_ML_RANDOM_FOREST_H_
