#include "ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace mlcs::ml {

namespace {
Status CheckSameLength(size_t a, size_t b) {
  if (a != b) {
    return Status::InvalidArgument("label vectors have different lengths: " +
                                   std::to_string(a) + " vs " +
                                   std::to_string(b));
  }
  if (a == 0) {
    return Status::InvalidArgument("label vectors are empty");
  }
  return Status::OK();
}
}  // namespace

Result<double> Accuracy(const Labels& y_true, const Labels& y_pred) {
  MLCS_RETURN_IF_ERROR(CheckSameLength(y_true.size(), y_pred.size()));
  size_t hits = 0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    if (y_true[i] == y_pred[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(y_true.size());
}

int64_t ConfusionMatrix::At(int32_t true_cls, int32_t pred_cls) const {
  auto find = [this](int32_t c) -> int64_t {
    auto it = std::lower_bound(classes.begin(), classes.end(), c);
    if (it == classes.end() || *it != c) return -1;
    return it - classes.begin();
  };
  int64_t t = find(true_cls), p = find(pred_cls);
  if (t < 0 || p < 0) return 0;
  return counts[t][p];
}

std::string ConfusionMatrix::ToString() const {
  std::ostringstream out;
  out << "true\\pred";
  for (int32_t c : classes) out << "\t" << c;
  out << "\n";
  for (size_t t = 0; t < classes.size(); ++t) {
    out << classes[t];
    for (size_t p = 0; p < classes.size(); ++p) out << "\t" << counts[t][p];
    out << "\n";
  }
  return out.str();
}

Result<ConfusionMatrix> ComputeConfusionMatrix(const Labels& y_true,
                                               const Labels& y_pred) {
  MLCS_RETURN_IF_ERROR(CheckSameLength(y_true.size(), y_pred.size()));
  ConfusionMatrix cm;
  cm.classes = y_true;
  cm.classes.insert(cm.classes.end(), y_pred.begin(), y_pred.end());
  std::sort(cm.classes.begin(), cm.classes.end());
  cm.classes.erase(std::unique(cm.classes.begin(), cm.classes.end()),
                   cm.classes.end());
  size_t k = cm.classes.size();
  cm.counts.assign(k, std::vector<int64_t>(k, 0));
  auto index = [&](int32_t c) {
    return static_cast<size_t>(
        std::lower_bound(cm.classes.begin(), cm.classes.end(), c) -
        cm.classes.begin());
  };
  for (size_t i = 0; i < y_true.size(); ++i) {
    ++cm.counts[index(y_true[i])][index(y_pred[i])];
  }
  return cm;
}

std::string ClassificationReport::ToString() const {
  std::ostringstream out;
  out << "class\tprecision\trecall\tf1\tsupport\n";
  for (const auto& pc : per_class) {
    out << pc.cls << "\t" << pc.precision << "\t" << pc.recall << "\t"
        << pc.f1 << "\t" << pc.support << "\n";
  }
  out << "macro\t" << macro_precision << "\t" << macro_recall << "\t"
      << macro_f1 << "\n";
  return out.str();
}

Result<ClassificationReport> ComputeClassificationReport(
    const Labels& y_true, const Labels& y_pred) {
  MLCS_ASSIGN_OR_RETURN(ConfusionMatrix cm,
                        ComputeConfusionMatrix(y_true, y_pred));
  ClassificationReport report;
  size_t k = cm.classes.size();
  for (size_t c = 0; c < k; ++c) {
    int64_t tp = cm.counts[c][c];
    int64_t fp = 0, fn = 0, support = 0;
    for (size_t o = 0; o < k; ++o) {
      if (o != c) {
        fp += cm.counts[o][c];
        fn += cm.counts[c][o];
      }
      support += cm.counts[c][o];
    }
    ClassificationReport::PerClass pc;
    pc.cls = cm.classes[c];
    pc.support = support;
    pc.precision = (tp + fp) > 0
                       ? static_cast<double>(tp) / static_cast<double>(tp + fp)
                       : 0.0;
    pc.recall = (tp + fn) > 0
                    ? static_cast<double>(tp) / static_cast<double>(tp + fn)
                    : 0.0;
    pc.f1 = (pc.precision + pc.recall) > 0
                ? 2 * pc.precision * pc.recall / (pc.precision + pc.recall)
                : 0.0;
    report.per_class.push_back(pc);
    report.macro_precision += pc.precision;
    report.macro_recall += pc.recall;
    report.macro_f1 += pc.f1;
  }
  report.macro_precision /= static_cast<double>(k);
  report.macro_recall /= static_cast<double>(k);
  report.macro_f1 /= static_cast<double>(k);
  return report;
}

Result<double> LogLoss(const Labels& y_true,
                       const std::vector<double>& proba_of_true) {
  MLCS_RETURN_IF_ERROR(CheckSameLength(y_true.size(), proba_of_true.size()));
  double sum = 0;
  for (double p : proba_of_true) {
    sum += -std::log(std::max(p, 1e-15));
  }
  return sum / static_cast<double>(proba_of_true.size());
}

}  // namespace mlcs::ml
