#include "ml/training_source.h"

#include <atomic>
#include <cstdlib>

#include "obs/metrics.h"

namespace mlcs::ml {

namespace {

/// Default-on toggle, started off by MLCS_DISABLE_FACTORIZED (same pattern
/// as column encoding — storage/encoding.cc).
std::atomic<int>& FactorizedState() {
  static std::atomic<int> state([] {
    const char* env = std::getenv("MLCS_DISABLE_FACTORIZED");
    return (env != nullptr && env[0] != '\0') ? 0 : 1;
  }());
  return state;
}

}  // namespace

bool FactorizedEnabled() { return FactorizedState().load() != 0; }

bool SetFactorizedEnabled(bool enabled) {
  return FactorizedState().exchange(enabled ? 1 : 0) != 0;
}

TrainingSource TrainingSource::FromMatrix(const Matrix& x) {
  TrainingSource source;
  source.rows_ = x.rows();
  source.rows_set_ = true;
  source.features_.reserve(x.cols());
  for (size_t c = 0; c < x.cols(); ++c) {
    Feature f;
    f.dense = &x.column(c);
    source.features_.push_back(std::move(f));
  }
  return source;
}

Status TrainingSource::CheckRows(size_t n) {
  if (!rows_set_) {
    rows_ = n;
    rows_set_ = true;
    return Status::OK();
  }
  if (n != rows_) {
    return Status::InvalidArgument(
        "training source length " + std::to_string(n) +
        " does not match row count " + std::to_string(rows_));
  }
  return Status::OK();
}

Status TrainingSource::AddDenseFeature(const std::vector<double>* column) {
  MLCS_RETURN_IF_ERROR(CheckRows(column->size()));
  Feature f;
  f.dense = column;
  features_.push_back(std::move(f));
  return Status::OK();
}

Status TrainingSource::AddOwnedDenseFeature(std::vector<double> column) {
  MLCS_RETURN_IF_ERROR(CheckRows(column.size()));
  Feature f;
  f.owned = std::move(column);
  features_.push_back(std::move(f));
  return Status::OK();
}

Status TrainingSource::SetKeys(std::vector<uint32_t> keys, size_t num_keys) {
  if (!keys_.empty()) {
    return Status::InvalidArgument("training source keys already set");
  }
  if (num_keys == 0) {
    return Status::InvalidArgument("training source needs at least one key");
  }
  MLCS_RETURN_IF_ERROR(CheckRows(keys.size()));
  for (uint32_t k : keys) {
    if (k >= num_keys) {
      return Status::InvalidArgument(
          "key code " + std::to_string(k) + " out of range [0, " +
          std::to_string(num_keys) + ")");
    }
  }
  keys_ = std::move(keys);
  num_keys_ = num_keys;
  return Status::OK();
}

Status TrainingSource::AddFactorizedFeature(std::vector<double> lut) {
  if (keys_.empty()) {
    return Status::InvalidArgument(
        "SetKeys must precede AddFactorizedFeature");
  }
  if (lut.size() != num_keys_) {
    return Status::InvalidArgument(
        "LUT size " + std::to_string(lut.size()) + " does not match key count " +
        std::to_string(num_keys_));
  }
  Feature f;
  f.lut = std::move(lut);
  f.is_factorized = true;
  features_.push_back(std::move(f));
  return Status::OK();
}

FeatureView TrainingSource::view(size_t f) const {
  const Feature& feature = features_[f];
  if (feature.is_factorized) {
    return FeatureView(nullptr, feature.lut.data(), keys_.data(), true);
  }
  const std::vector<double>& dense =
      feature.dense != nullptr ? *feature.dense : feature.owned;
  return FeatureView(dense.data(), nullptr, nullptr, false);
}

size_t TrainingSource::num_factorized() const {
  size_t count = 0;
  for (const Feature& f : features_) count += f.is_factorized ? 1 : 0;
  return count;
}

size_t TrainingSource::FactorizedBytes() const {
  size_t bytes = keys_.size() * sizeof(uint32_t);
  for (const Feature& f : features_) {
    bytes += (f.is_factorized ? num_keys_ : rows_) * sizeof(double);
  }
  return bytes;
}

void CountTrainingSourceFit(const TrainingSource& source) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("mlcs.factorized.fits")->Add(1);
  if (source.num_factorized() > 0) {
    registry.GetCounter("mlcs.factorized.factorized_fits")->Add(1);
  }
  registry.GetCounter("mlcs.factorized.source_bytes")
      ->Add(source.FactorizedBytes());
  registry.GetCounter("mlcs.factorized.materialized_bytes")
      ->Add(source.MaterializedBytes());
  registry.GetGauge("mlcs.factorized.peak_source_bytes")
      ->UpdateMax(static_cast<int64_t>(source.FactorizedBytes()));
}

}  // namespace mlcs::ml
