#include "ml/kmeans.h"

#include <cmath>
#include <limits>

#include "common/random.h"

namespace mlcs::ml {

KMeans::KMeans(KMeansOptions options) : options_(options) {}

size_t KMeans::NearestCentroid(const Matrix& x, size_t row,
                               double* distance_sq) const {
  size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centroids_.size(); ++c) {
    double dist = 0;
    for (size_t f = 0; f < num_features_; ++f) {
      double v = x.At(row, f);
      if (std::isnan(v)) v = 0;
      double e = v - centroids_[c][f];
      dist += e * e;
    }
    if (dist < best_dist) {
      best_dist = dist;
      best = c;
    }
  }
  if (distance_sq != nullptr) *distance_sq = best_dist;
  return best;
}

Status KMeans::Fit(const Matrix& x) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("cannot cluster an empty matrix");
  }
  if (options_.k == 0 || options_.k > x.rows()) {
    return Status::InvalidArgument(
        "k must be in [1, rows]; got k=" + std::to_string(options_.k) +
        " rows=" + std::to_string(x.rows()));
  }
  num_features_ = x.cols();
  size_t n = x.rows(), d = x.cols(), k = options_.k;
  Rng rng(options_.seed);

  auto row_of = [&x, d](size_t r) {
    std::vector<double> out(d);
    for (size_t f = 0; f < d; ++f) {
      double v = x.At(r, f);
      out[f] = std::isnan(v) ? 0 : v;
    }
    return out;
  };

  // k-means++ seeding: first center uniform, the rest D²-weighted.
  centroids_.clear();
  centroids_.push_back(row_of(rng.NextBounded(n)));
  std::vector<double> dist_sq(n);
  while (centroids_.size() < k) {
    double total = 0;
    for (size_t r = 0; r < n; ++r) {
      NearestCentroid(x, r, &dist_sq[r]);
      total += dist_sq[r];
    }
    size_t chosen = 0;
    if (total > 0) {
      double target = rng.NextDouble() * total;
      double cumulative = 0;
      for (size_t r = 0; r < n; ++r) {
        cumulative += dist_sq[r];
        if (cumulative >= target) {
          chosen = r;
          break;
        }
      }
    } else {
      chosen = rng.NextBounded(n);  // degenerate: all points identical
    }
    centroids_.push_back(row_of(chosen));
  }

  // Lloyd's iterations.
  std::vector<size_t> assignment(n, 0);
  iterations_run_ = 0;
  for (int iter = 0; iter < options_.max_iters; ++iter) {
    ++iterations_run_;
    for (size_t r = 0; r < n; ++r) {
      assignment[r] = NearestCentroid(x, r, nullptr);
    }
    std::vector<std::vector<double>> sums(k, std::vector<double>(d, 0.0));
    std::vector<size_t> counts(k, 0);
    for (size_t r = 0; r < n; ++r) {
      ++counts[assignment[r]];
      for (size_t f = 0; f < d; ++f) {
        double v = x.At(r, f);
        sums[assignment[r]][f] += std::isnan(v) ? 0 : v;
      }
    }
    double movement = 0;
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Empty cluster: reseed on a random point (keeps k clusters).
        centroids_[c] = row_of(rng.NextBounded(n));
        movement += 1.0;
        continue;
      }
      for (size_t f = 0; f < d; ++f) {
        double next = sums[c][f] / static_cast<double>(counts[c]);
        movement += std::fabs(next - centroids_[c][f]);
        centroids_[c][f] = next;
      }
    }
    if (movement < options_.tolerance) break;
  }

  inertia_ = 0;
  for (size_t r = 0; r < n; ++r) {
    double dist = 0;
    NearestCentroid(x, r, &dist);
    inertia_ += dist;
  }
  return Status::OK();
}

Result<std::vector<int32_t>> KMeans::Assign(const Matrix& x) const {
  if (!fitted()) return Status::InvalidArgument("KMeans is not fitted");
  if (x.cols() != num_features_) {
    return Status::InvalidArgument("feature count mismatch");
  }
  std::vector<int32_t> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    out[r] = static_cast<int32_t>(NearestCentroid(x, r, nullptr));
  }
  return out;
}

}  // namespace mlcs::ml
