#ifndef MLCS_ML_MATRIX_H_
#define MLCS_ML_MATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace mlcs::ml {

/// Class labels. Arbitrary int32 values; models remap them internally.
using Labels = std::vector<int32_t>;

/// Column-major dense double matrix — the feature-set view every model
/// consumes. Column-major matches the column store's layout, so building a
/// Matrix from table columns is a straight per-column copy (and the paper's
/// "no row-major conversion" benefit shows up in the benchmarks).
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols),
        data_(cols, std::vector<double>(rows, 0.0)) {}

  /// Builds from numeric columns (each converted to doubles; NULL → NaN).
  static Result<Matrix> FromColumns(const std::vector<ColumnPtr>& columns);
  /// Builds from named table columns.
  static Result<Matrix> FromTable(const Table& table,
                                  const std::vector<std::string>& features);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double At(size_t r, size_t c) const { return data_[c][r]; }
  void Set(size_t r, size_t c, double v) { data_[c][r] = v; }

  const std::vector<double>& column(size_t c) const { return data_[c]; }
  std::vector<double>& column(size_t c) { return data_[c]; }

  /// Adopts a pre-built column (length must match rows(), or the matrix
  /// must be empty).
  Status AddColumn(std::vector<double> column);

  /// Row-gather into a new matrix.
  Matrix SelectRows(const std::vector<uint32_t>& indices) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<std::vector<double>> data_;
};

}  // namespace mlcs::ml

#endif  // MLCS_ML_MATRIX_H_
