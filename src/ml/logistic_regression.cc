#include "ml/logistic_regression.h"

#include <cmath>

#include "common/random.h"

namespace mlcs::ml {

namespace {
double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

LogisticRegression::LogisticRegression(LogisticRegressionOptions options)
    : options_(options) {}

Status LogisticRegression::Fit(const Matrix& x, const Labels& y) {
  MLCS_RETURN_IF_ERROR(internal::CheckFitInputs(x, y));
  return FitSource(TrainingSource::FromMatrix(x), y);
}

Status LogisticRegression::FitSource(const TrainingSource& x,
                                     const Labels& y) {
  MLCS_RETURN_IF_ERROR(internal::CheckFitInputs(x, y));
  classes_ = internal::DistinctClasses(y);
  num_features_ = x.cols();
  size_t n = x.rows(), d = x.cols(), k = classes_.size();

  // Standardize (constant features get std 1 so they contribute nothing).
  // Per-row accumulation in row order through the views: a view returns
  // the exact double the joined matrix would hold at that row, so the
  // statistics match the dense path bit for bit.
  mean_.assign(d, 0.0);
  std_.assign(d, 1.0);
  for (size_t c = 0; c < d; ++c) {
    FeatureView col = x.view(c);
    double sum = 0;
    for (size_t r = 0; r < n; ++r) {
      double v = col[r];
      sum += std::isnan(v) ? 0.0 : v;
    }
    mean_[c] = sum / static_cast<double>(n);
    double var = 0;
    for (size_t r = 0; r < n; ++r) {
      double e = (std::isnan(col[r]) ? 0.0 : col[r]) - mean_[c];
      var += e * e;
    }
    var /= static_cast<double>(n);
    std_[c] = var > 1e-12 ? std::sqrt(var) : 1.0;
  }

  // Standardized copy. Dense features standardize per row; factorized
  // features standardize their K-entry LUT once — row r then reads
  // slut[key[r]], the same double the dense path would store at row r,
  // so the epoch loops below see identical operands in identical order
  // while the copy stays O(|fact| + |dim|) bytes.
  TrainingSource xs;
  if (x.num_keys() > 0) {
    std::vector<uint32_t> keys(x.keys(), x.keys() + n);
    MLCS_RETURN_IF_ERROR(xs.SetKeys(std::move(keys), x.num_keys()));
  }
  for (size_t c = 0; c < d; ++c) {
    if (x.factorized(c)) {
      const std::vector<double>& lut = x.lut(c);
      std::vector<double> slut(lut.size());
      for (size_t i = 0; i < lut.size(); ++i) {
        double v = std::isnan(lut[i]) ? 0.0 : lut[i];
        slut[i] = (v - mean_[c]) / std_[c];
      }
      MLCS_RETURN_IF_ERROR(xs.AddFactorizedFeature(std::move(slut)));
    } else {
      FeatureView src = x.view(c);
      std::vector<double> dst(n);
      for (size_t r = 0; r < n; ++r) {
        double v = std::isnan(src[r]) ? 0.0 : src[r];
        dst[r] = (v - mean_[c]) / std_[c];
      }
      MLCS_RETURN_IF_ERROR(xs.AddOwnedDenseFeature(std::move(dst)));
    }
  }

  weights_.assign(k, std::vector<double>(d, 0.0));
  bias_.assign(k, 0.0);
  Rng rng(options_.seed);

  // One-vs-rest full-batch gradient descent per class. Gradient sums stay
  // in row order (not grouped by key) on purpose: per-key regrouping would
  // reorder double addition and break bit-identity with the dense path.
  for (size_t cls = 0; cls < k; ++cls) {
    auto& w = weights_[cls];
    double& b = bias_[cls];
    std::vector<double> target(n);
    for (size_t r = 0; r < n; ++r) {
      target[r] = y[r] == classes_[cls] ? 1.0 : 0.0;
    }
    std::vector<double> margin(n), grad_w(d);
    for (int epoch = 0; epoch < options_.epochs; ++epoch) {
      // margin = Xw + b, column-major accumulation.
      std::fill(margin.begin(), margin.end(), b);
      for (size_t c = 0; c < d; ++c) {
        FeatureView col = xs.view(c);
        double wc = w[c];
        if (wc == 0.0) continue;
        for (size_t r = 0; r < n; ++r) margin[r] += wc * col[r];
      }
      // residual = sigmoid(margin) - target
      for (size_t r = 0; r < n; ++r) margin[r] = Sigmoid(margin[r]) - target[r];
      double inv_n = 1.0 / static_cast<double>(n);
      double grad_b = 0;
      for (size_t r = 0; r < n; ++r) grad_b += margin[r];
      grad_b *= inv_n;
      for (size_t c = 0; c < d; ++c) {
        FeatureView col = xs.view(c);
        double g = 0;
        for (size_t r = 0; r < n; ++r) g += margin[r] * col[r];
        grad_w[c] = g * inv_n + options_.l2 * w[c];
      }
      for (size_t c = 0; c < d; ++c) w[c] -= options_.learning_rate * grad_w[c];
      b -= options_.learning_rate * grad_b;
    }
  }
  CountTrainingSourceFit(x);
  return Status::OK();
}

Result<std::vector<std::vector<double>>> LogisticRegression::Scores(
    const Matrix& x) const {
  MLCS_RETURN_IF_ERROR(
      internal::CheckPredictInputs(x, num_features_, fitted()));
  size_t n = x.rows(), d = x.cols(), k = classes_.size();
  std::vector<std::vector<double>> scores(n, std::vector<double>(k, 0.0));
  std::vector<double> margin(n);
  for (size_t cls = 0; cls < k; ++cls) {
    std::fill(margin.begin(), margin.end(), bias_[cls]);
    for (size_t c = 0; c < d; ++c) {
      const auto& col = x.column(c);
      double wc = weights_[cls][c];
      if (wc == 0.0) continue;
      double inv_std = 1.0 / std_[c];
      for (size_t r = 0; r < n; ++r) {
        double v = std::isnan(col[r]) ? 0.0 : col[r];
        margin[r] += wc * (v - mean_[c]) * inv_std;
      }
    }
    for (size_t r = 0; r < n; ++r) scores[r][cls] = Sigmoid(margin[r]);
  }
  // Normalize across classes so rows form a distribution.
  for (auto& row : scores) {
    double sum = 0;
    for (double v : row) sum += v;
    if (sum > 0) {
      for (double& v : row) v /= sum;
    } else {
      for (double& v : row) v = 1.0 / static_cast<double>(k);
    }
  }
  return scores;
}

Result<Labels> LogisticRegression::Predict(const Matrix& x) const {
  MLCS_ASSIGN_OR_RETURN(auto scores, Scores(x));
  Labels out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    size_t best = 0;
    for (size_t c = 1; c < classes_.size(); ++c) {
      if (scores[r][c] > scores[r][best]) best = c;
    }
    out[r] = classes_[best];
  }
  return out;
}

Result<std::vector<double>> LogisticRegression::PredictProba(
    const Matrix& x, int32_t cls) const {
  MLCS_ASSIGN_OR_RETURN(size_t idx, internal::ClassIndex(classes_, cls));
  MLCS_ASSIGN_OR_RETURN(auto scores, Scores(x));
  std::vector<double> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) out[r] = scores[r][idx];
  return out;
}

Result<std::vector<double>> LogisticRegression::PredictConfidence(
    const Matrix& x) const {
  MLCS_ASSIGN_OR_RETURN(auto scores, Scores(x));
  std::vector<double> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    double best = 0;
    for (double v : scores[r]) best = std::max(best, v);
    out[r] = best;
  }
  return out;
}

std::string LogisticRegression::ParamsString() const {
  return "learning_rate=" + std::to_string(options_.learning_rate) +
         " epochs=" + std::to_string(options_.epochs) +
         " l2=" + std::to_string(options_.l2);
}

void LogisticRegression::Serialize(ByteWriter* writer) const {
  writer->WriteDouble(options_.learning_rate);
  writer->WriteI32(options_.epochs);
  writer->WriteDouble(options_.l2);
  writer->WriteU64(options_.seed);
  writer->WriteVarint(classes_.size());
  for (int32_t c : classes_) writer->WriteI32(c);
  writer->WriteVarint(num_features_);
  for (double v : mean_) writer->WriteDouble(v);
  for (double v : std_) writer->WriteDouble(v);
  for (const auto& w : weights_) {
    for (double v : w) writer->WriteDouble(v);
  }
  for (double v : bias_) writer->WriteDouble(v);
}

Result<std::unique_ptr<LogisticRegression>>
LogisticRegression::DeserializeBody(ByteReader* reader) {
  LogisticRegressionOptions options;
  MLCS_ASSIGN_OR_RETURN(options.learning_rate, reader->ReadDouble());
  MLCS_ASSIGN_OR_RETURN(options.epochs, reader->ReadI32());
  MLCS_ASSIGN_OR_RETURN(options.l2, reader->ReadDouble());
  MLCS_ASSIGN_OR_RETURN(options.seed, reader->ReadU64());
  auto model = std::make_unique<LogisticRegression>(options);
  MLCS_ASSIGN_OR_RETURN(uint64_t k, reader->ReadVarint());
  model->classes_.resize(k);
  for (auto& c : model->classes_) {
    MLCS_ASSIGN_OR_RETURN(c, reader->ReadI32());
  }
  MLCS_ASSIGN_OR_RETURN(uint64_t d, reader->ReadVarint());
  model->num_features_ = d;
  model->mean_.resize(d);
  model->std_.resize(d);
  for (auto& v : model->mean_) {
    MLCS_ASSIGN_OR_RETURN(v, reader->ReadDouble());
  }
  for (auto& v : model->std_) {
    MLCS_ASSIGN_OR_RETURN(v, reader->ReadDouble());
  }
  model->weights_.assign(k, std::vector<double>(d));
  for (auto& w : model->weights_) {
    for (auto& v : w) {
      MLCS_ASSIGN_OR_RETURN(v, reader->ReadDouble());
    }
  }
  model->bias_.resize(k);
  for (auto& v : model->bias_) {
    MLCS_ASSIGN_OR_RETURN(v, reader->ReadDouble());
  }
  return model;
}

}  // namespace mlcs::ml
