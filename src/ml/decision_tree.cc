#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace mlcs::ml {

namespace {

/// Gini impurity of a class-count histogram with `total` samples.
double Gini(const std::vector<double>& counts, double total) {
  if (total <= 0) return 0;
  double sum_sq = 0;
  for (double c : counts) sum_sq += c * c;
  return 1.0 - sum_sq / (total * total);
}

}  // namespace

DecisionTree::DecisionTree(DecisionTreeOptions options)
    : options_(options) {}

Status DecisionTree::Fit(const Matrix& x, const Labels& y) {
  MLCS_RETURN_IF_ERROR(internal::CheckFitInputs(x, y));
  return FitSource(TrainingSource::FromMatrix(x), y);
}

Status DecisionTree::FitOnRows(const Matrix& x, const Labels& y,
                               const std::vector<uint32_t>& rows,
                               const std::vector<int32_t>& class_set) {
  return FitSourceOnRows(TrainingSource::FromMatrix(x), y, rows, class_set);
}

Status DecisionTree::FitSource(const TrainingSource& x, const Labels& y) {
  MLCS_RETURN_IF_ERROR(internal::CheckFitInputs(x, y));
  std::vector<uint32_t> rows(x.rows());
  std::iota(rows.begin(), rows.end(), 0);
  MLCS_RETURN_IF_ERROR(
      FitSourceOnRows(x, y, rows, internal::DistinctClasses(y)));
  CountTrainingSourceFit(x);
  return Status::OK();
}

Status DecisionTree::FitSourceOnRows(const TrainingSource& x, const Labels& y,
                                     const std::vector<uint32_t>& rows,
                                     const std::vector<int32_t>& class_set) {
  if (rows.empty()) {
    return Status::InvalidArgument("cannot fit a tree on zero rows");
  }
  if (class_set.empty()) {
    return Status::InvalidArgument("empty class set");
  }
  classes_ = class_set;
  num_features_ = x.cols();
  nodes_.clear();
  feature_importances_.assign(num_features_, 0.0);
  std::vector<uint32_t> work(rows);
  Rng rng(options_.seed);
  BuildNode(x, y, work, /*depth=*/0, rng);
  double total = 0;
  for (double v : feature_importances_) total += v;
  if (total > 0) {
    for (double& v : feature_importances_) v /= total;
  }
  return Status::OK();
}

uint32_t DecisionTree::MakeLeaf(const Labels& y,
                                const std::vector<uint32_t>& rows) {
  Node node;
  node.probs.assign(classes_.size(), 0.0f);
  for (uint32_t r : rows) {
    auto idx = internal::ClassIndex(classes_, y[r]);
    if (idx.ok()) node.probs[idx.ValueOrDie()] += 1.0f;
  }
  float total = 0;
  for (float p : node.probs) total += p;
  if (total > 0) {
    for (float& p : node.probs) p /= total;
  }
  nodes_.push_back(std::move(node));
  return static_cast<uint32_t>(nodes_.size() - 1);
}

uint32_t DecisionTree::BuildNode(const TrainingSource& x, const Labels& y,
                                 std::vector<uint32_t>& rows, int depth,
                                 Rng& rng) {
  // Stopping conditions → leaf.
  bool pure = true;
  for (size_t i = 1; i < rows.size(); ++i) {
    if (y[rows[i]] != y[rows[0]]) {
      pure = false;
      break;
    }
  }
  if (pure || depth >= options_.max_depth ||
      rows.size() < options_.min_samples_split) {
    return MakeLeaf(y, rows);
  }

  // Candidate features (random subset for forests).
  std::vector<size_t> features(num_features_);
  std::iota(features.begin(), features.end(), 0);
  size_t k = options_.max_features == 0
                 ? num_features_
                 : std::min(options_.max_features, num_features_);
  if (k < num_features_) {
    // Partial Fisher-Yates: the first k entries become the sample.
    for (size_t i = 0; i < k; ++i) {
      size_t j = i + rng.NextBounded(num_features_ - i);
      std::swap(features[i], features[j]);
    }
    features.resize(k);
  }

  SplitResult best = FindBestSplit(x, y, rows, features);
  if (!best.found) return MakeLeaf(y, rows);

  // Partition rows (NaN → left).
  std::vector<uint32_t> left_rows, right_rows;
  FeatureView col = x.view(best.feature);
  for (uint32_t r : rows) {
    double v = col[r];
    if (std::isnan(v) || v <= best.threshold) {
      left_rows.push_back(r);
    } else {
      right_rows.push_back(r);
    }
  }
  if (left_rows.size() < options_.min_samples_leaf ||
      right_rows.size() < options_.min_samples_leaf) {
    return MakeLeaf(y, rows);
  }
  feature_importances_[best.feature] +=
      best.impurity_decrease * static_cast<double>(rows.size());
  rows.clear();
  rows.shrink_to_fit();  // free before recursing

  Node node;
  node.feature = static_cast<int32_t>(best.feature);
  node.threshold = best.threshold;
  nodes_.push_back(node);
  uint32_t self = static_cast<uint32_t>(nodes_.size() - 1);
  uint32_t left = BuildNode(x, y, left_rows, depth + 1, rng);
  uint32_t right = BuildNode(x, y, right_rows, depth + 1, rng);
  nodes_[self].left = left;
  nodes_[self].right = right;
  return self;
}

DecisionTree::SplitResult DecisionTree::FindBestSplit(
    const TrainingSource& x, const Labels& y,
    const std::vector<uint32_t>& rows,
    const std::vector<size_t>& features) const {
  SplitResult best;
  // One group-by below the join per node: the per-key class counts feed
  // every factorized candidate's splitter, so d dimension features cost
  // one O(rows) counting pass plus d × O(keys) statistic scans instead of
  // d × O(rows) value scans.
  std::vector<int64_t> key_counts;
  bool any_factorized = false;
  for (size_t f : features) any_factorized |= x.factorized(f);
  if (any_factorized) {
    const uint32_t* keys = x.keys();
    size_t num_classes = classes_.size();
    key_counts.assign(x.num_keys() * num_classes, 0);
    for (uint32_t r : rows) {
      size_t cls = internal::ClassIndex(classes_, y[r]).ValueOr(0);
      key_counts[keys[r] * num_classes + cls] += 1;
    }
  }
  for (size_t f : features) {
    SplitResult cand;
    if (x.factorized(f)) {
      cand = options_.exact_splits
                 ? BestSplitExactAgg(x.lut(f), key_counts, f)
                 : BestSplitHistogramAgg(x.lut(f), key_counts, f);
    } else {
      FeatureView col = x.view(f);
      cand = options_.exact_splits ? BestSplitExact(col, y, rows, f)
                                   : BestSplitHistogram(col, y, rows, f);
    }
    if (cand.found &&
        (!best.found || cand.impurity_decrease > best.impurity_decrease)) {
      best = cand;
    }
  }
  return best;
}

DecisionTree::SplitResult DecisionTree::ScanHistogram(
    const std::vector<double>& counts, size_t bins, double lo, double hi,
    size_t feature) const {
  SplitResult out;
  size_t num_classes = classes_.size();
  // Scan split boundaries between bins with prefix sums.
  std::vector<double> left_counts(num_classes, 0.0);
  std::vector<double> total_counts(num_classes, 0.0);
  double total = 0;
  for (size_t b = 0; b < bins; ++b) {
    for (size_t c = 0; c < num_classes; ++c) {
      total_counts[c] += counts[b * num_classes + c];
    }
  }
  for (double c : total_counts) total += c;
  double parent_impurity = Gini(total_counts, total);

  double left_total = 0;
  for (size_t b = 0; b + 1 < bins; ++b) {
    for (size_t c = 0; c < num_classes; ++c) {
      left_counts[c] += counts[b * num_classes + c];
      left_total += counts[b * num_classes + c];
    }
    if (left_total == 0 || left_total == total) continue;
    std::vector<double> right_counts(num_classes);
    for (size_t c = 0; c < num_classes; ++c) {
      right_counts[c] = total_counts[c] - left_counts[c];
    }
    double right_total = total - left_total;
    double weighted = (left_total / total) * Gini(left_counts, left_total) +
                      (right_total / total) * Gini(right_counts, right_total);
    double decrease = parent_impurity - weighted;
    if (decrease > 1e-12 && (!out.found || decrease > out.impurity_decrease)) {
      out.found = true;
      out.feature = feature;
      out.threshold = lo + (static_cast<double>(b + 1) / bins) * (hi - lo);
      out.impurity_decrease = decrease;
    }
  }
  return out;
}

DecisionTree::SplitResult DecisionTree::BestSplitHistogram(
    const FeatureView& col, const Labels& y,
    const std::vector<uint32_t>& rows, size_t feature) const {
  SplitResult out;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (uint32_t r : rows) {
    double v = col[r];
    if (std::isnan(v)) continue;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (!(hi > lo)) return out;  // constant (or all-NaN) feature

  size_t bins = static_cast<size_t>(options_.num_bins);
  size_t num_classes = classes_.size();
  // counts[bin * num_classes + class]
  std::vector<double> counts(bins * num_classes, 0.0);
  double scale = static_cast<double>(bins) / (hi - lo);
  for (uint32_t r : rows) {
    double v = col[r];
    size_t bin;
    if (std::isnan(v)) {
      bin = 0;  // NaN routes left, i.e. lowest bin
    } else {
      bin = std::min(bins - 1, static_cast<size_t>((v - lo) * scale));
    }
    size_t cls = static_cast<size_t>(
        internal::ClassIndex(classes_, y[r]).ValueOr(0));
    counts[bin * num_classes + cls] += 1.0;
  }
  return ScanHistogram(counts, bins, lo, hi, feature);
}

DecisionTree::SplitResult DecisionTree::BestSplitHistogramAgg(
    const std::vector<double>& lut, const std::vector<int64_t>& key_counts,
    size_t feature) const {
  SplitResult out;
  size_t num_classes = classes_.size();
  size_t num_keys = lut.size();
  // Per-key totals: keys absent from this node contribute nothing (they
  // would not appear in a per-row scan either).
  std::vector<int64_t> key_totals(num_keys, 0);
  for (size_t k = 0; k < num_keys; ++k) {
    for (size_t c = 0; c < num_classes; ++c) {
      key_totals[k] += key_counts[k * num_classes + c];
    }
  }
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (size_t k = 0; k < num_keys; ++k) {
    double v = lut[k];
    if (key_totals[k] == 0 || std::isnan(v)) continue;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (!(hi > lo)) return out;

  size_t bins = static_cast<size_t>(options_.num_bins);
  std::vector<double> counts(bins * num_classes, 0.0);
  double scale = static_cast<double>(bins) / (hi - lo);
  for (size_t k = 0; k < num_keys; ++k) {
    if (key_totals[k] == 0) continue;
    double v = lut[k];
    size_t bin;
    if (std::isnan(v)) {
      bin = 0;
    } else {
      bin = std::min(bins - 1, static_cast<size_t>((v - lo) * scale));
    }
    // Integer-valued doubles: adding the key's count at once lands on the
    // same histogram the per-row loop builds by repeated += 1.0.
    for (size_t c = 0; c < num_classes; ++c) {
      counts[bin * num_classes + c] +=
          static_cast<double>(key_counts[k * num_classes + c]);
    }
  }
  return ScanHistogram(counts, bins, lo, hi, feature);
}

DecisionTree::SplitResult DecisionTree::BestSplitExactAgg(
    const std::vector<double>& lut, const std::vector<int64_t>& key_counts,
    size_t feature) const {
  SplitResult out;
  size_t num_classes = classes_.size();
  size_t num_keys = lut.size();
  // Present keys sorted by LUT value, NaN first — the key-level image of
  // the per-row sort; equal values merge into one group below, exactly
  // the spans the row scan never splits.
  std::vector<uint32_t> order;
  for (size_t k = 0; k < num_keys; ++k) {
    int64_t present = 0;
    for (size_t c = 0; c < num_classes; ++c) {
      present += key_counts[k * num_classes + c];
    }
    if (present > 0) order.push_back(static_cast<uint32_t>(k));
  }
  if (order.empty()) return out;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    double va = lut[a], vb = lut[b];
    bool na = std::isnan(va), nb = std::isnan(vb);
    if (na != nb) return na;
    return va < vb;
  });

  std::vector<double> values;           // one entry per distinct-value group
  std::vector<double> counts;           // [group * num_classes + class]
  std::vector<double> group_totals;
  for (uint32_t k : order) {
    double v = lut[k];
    bool merge = !values.empty() &&
                 ((std::isnan(v) && std::isnan(values.back())) ||
                  v == values.back());
    if (!merge) {
      values.push_back(v);
      counts.resize(values.size() * num_classes, 0.0);
      group_totals.push_back(0.0);
    }
    size_t g = values.size() - 1;
    for (size_t c = 0; c < num_classes; ++c) {
      double n = static_cast<double>(key_counts[k * num_classes + c]);
      counts[g * num_classes + c] += n;
      group_totals[g] += n;
    }
  }

  std::vector<double> total_counts(num_classes, 0.0);
  double total = 0;
  for (size_t g = 0; g < values.size(); ++g) {
    for (size_t c = 0; c < num_classes; ++c) {
      total_counts[c] += counts[g * num_classes + c];
    }
    total += group_totals[g];
  }
  double parent_impurity = Gini(total_counts, total);

  std::vector<double> left_counts(num_classes, 0.0);
  double left_total = 0;
  for (size_t g = 0; g + 1 < values.size(); ++g) {
    for (size_t c = 0; c < num_classes; ++c) {
      left_counts[c] += counts[g * num_classes + c];
    }
    left_total += group_totals[g];
    double v = values[g];
    double next = values[g + 1];
    double right_total = total - left_total;
    std::vector<double> right_counts(num_classes);
    for (size_t c = 0; c < num_classes; ++c) {
      right_counts[c] = total_counts[c] - left_counts[c];
    }
    double weighted = (left_total / total) * Gini(left_counts, left_total) +
                      (right_total / total) * Gini(right_counts, right_total);
    double decrease = parent_impurity - weighted;
    if (decrease > 1e-12 && (!out.found || decrease > out.impurity_decrease)) {
      out.found = true;
      out.feature = feature;
      out.threshold = std::isnan(v) ? next - 1.0 : (v + next) / 2.0;
      out.impurity_decrease = decrease;
    }
  }
  return out;
}

DecisionTree::SplitResult DecisionTree::BestSplitExact(
    const FeatureView& col, const Labels& y,
    const std::vector<uint32_t>& rows, size_t feature) const {
  SplitResult out;
  // Sort rows by feature value; NaN first (they route left).
  std::vector<uint32_t> sorted(rows);
  std::sort(sorted.begin(), sorted.end(), [&](uint32_t a, uint32_t b) {
    double va = col[a], vb = col[b];
    bool na = std::isnan(va), nb = std::isnan(vb);
    if (na != nb) return na;
    return va < vb;
  });

  size_t num_classes = classes_.size();
  std::vector<double> total_counts(num_classes, 0.0);
  for (uint32_t r : sorted) {
    total_counts[internal::ClassIndex(classes_, y[r]).ValueOr(0)] += 1.0;
  }
  double total = static_cast<double>(sorted.size());
  double parent_impurity = Gini(total_counts, total);

  std::vector<double> left_counts(num_classes, 0.0);
  for (size_t i = 0; i + 1 < sorted.size(); ++i) {
    left_counts[internal::ClassIndex(classes_, y[sorted[i]]).ValueOr(0)] +=
        1.0;
    double v = col[sorted[i]];
    double next = col[sorted[i + 1]];
    // A valid boundary needs distinct adjacent values (NaNs sit at the
    // front and never end a boundary themselves).
    if (std::isnan(next) || v == next ||
        (std::isnan(v) && i + 1 < sorted.size() && std::isnan(next))) {
      continue;
    }
    double left_total = static_cast<double>(i + 1);
    double right_total = total - left_total;
    std::vector<double> right_counts(num_classes);
    for (size_t c = 0; c < num_classes; ++c) {
      right_counts[c] = total_counts[c] - left_counts[c];
    }
    double weighted = (left_total / total) * Gini(left_counts, left_total) +
                      (right_total / total) * Gini(right_counts, right_total);
    double decrease = parent_impurity - weighted;
    if (decrease > 1e-12 && (!out.found || decrease > out.impurity_decrease)) {
      out.found = true;
      out.feature = feature;
      out.threshold = std::isnan(v) ? next - 1.0 : (v + next) / 2.0;
      out.impurity_decrease = decrease;
    }
  }
  return out;
}

size_t DecisionTree::WalkToLeaf(const Matrix& x, size_t row) const {
  size_t node = 0;
  while (nodes_[node].feature >= 0) {
    double v = x.At(row, static_cast<size_t>(nodes_[node].feature));
    node = (std::isnan(v) || v <= nodes_[node].threshold)
               ? nodes_[node].left
               : nodes_[node].right;
  }
  return node;
}

Result<Labels> DecisionTree::Predict(const Matrix& x) const {
  MLCS_RETURN_IF_ERROR(
      internal::CheckPredictInputs(x, num_features_, fitted()));
  Labels out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    const auto& probs = nodes_[WalkToLeaf(x, r)].probs;
    size_t best = 0;
    for (size_t c = 1; c < probs.size(); ++c) {
      if (probs[c] > probs[best]) best = c;
    }
    out[r] = classes_[best];
  }
  return out;
}

Result<std::vector<std::vector<double>>> DecisionTree::PredictDistribution(
    const Matrix& x) const {
  MLCS_RETURN_IF_ERROR(
      internal::CheckPredictInputs(x, num_features_, fitted()));
  std::vector<std::vector<double>> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    const auto& probs = nodes_[WalkToLeaf(x, r)].probs;
    out[r].assign(probs.begin(), probs.end());
  }
  return out;
}

Result<std::vector<double>> DecisionTree::PredictProba(const Matrix& x,
                                                       int32_t cls) const {
  MLCS_RETURN_IF_ERROR(
      internal::CheckPredictInputs(x, num_features_, fitted()));
  MLCS_ASSIGN_OR_RETURN(size_t cls_idx, internal::ClassIndex(classes_, cls));
  std::vector<double> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    out[r] = nodes_[WalkToLeaf(x, r)].probs[cls_idx];
  }
  return out;
}

Result<std::vector<double>> DecisionTree::PredictConfidence(
    const Matrix& x) const {
  MLCS_RETURN_IF_ERROR(
      internal::CheckPredictInputs(x, num_features_, fitted()));
  std::vector<double> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    const auto& probs = nodes_[WalkToLeaf(x, r)].probs;
    float best = 0;
    for (float p : probs) best = std::max(best, p);
    out[r] = best;
  }
  return out;
}

std::string DecisionTree::ParamsString() const {
  return "max_depth=" + std::to_string(options_.max_depth) +
         " min_samples_split=" + std::to_string(options_.min_samples_split) +
         " max_features=" + std::to_string(options_.max_features) +
         " splitter=" + (options_.exact_splits ? "exact" : "histogram");
}

void DecisionTree::Serialize(ByteWriter* writer) const {
  writer->WriteI32(options_.max_depth);
  writer->WriteVarint(options_.min_samples_split);
  writer->WriteVarint(options_.min_samples_leaf);
  writer->WriteVarint(options_.max_features);
  writer->WriteI32(options_.num_bins);
  writer->WriteBool(options_.exact_splits);
  writer->WriteU64(options_.seed);
  writer->WriteVarint(classes_.size());
  for (int32_t c : classes_) writer->WriteI32(c);
  writer->WriteVarint(num_features_);
  writer->WriteVarint(feature_importances_.size());
  for (double v : feature_importances_) writer->WriteDouble(v);
  writer->WriteVarint(nodes_.size());
  for (const auto& node : nodes_) {
    writer->WriteI32(node.feature);
    writer->WriteDouble(node.threshold);
    writer->WriteU32(node.left);
    writer->WriteU32(node.right);
    writer->WriteVarint(node.probs.size());
    for (float p : node.probs) writer->WriteDouble(p);
  }
}

Result<std::unique_ptr<DecisionTree>> DecisionTree::DeserializeBody(
    ByteReader* reader) {
  DecisionTreeOptions options;
  MLCS_ASSIGN_OR_RETURN(options.max_depth, reader->ReadI32());
  MLCS_ASSIGN_OR_RETURN(uint64_t mss, reader->ReadVarint());
  options.min_samples_split = mss;
  MLCS_ASSIGN_OR_RETURN(uint64_t msl, reader->ReadVarint());
  options.min_samples_leaf = msl;
  MLCS_ASSIGN_OR_RETURN(uint64_t mf, reader->ReadVarint());
  options.max_features = mf;
  MLCS_ASSIGN_OR_RETURN(options.num_bins, reader->ReadI32());
  MLCS_ASSIGN_OR_RETURN(options.exact_splits, reader->ReadBool());
  MLCS_ASSIGN_OR_RETURN(options.seed, reader->ReadU64());
  auto tree = std::make_unique<DecisionTree>(options);
  MLCS_ASSIGN_OR_RETURN(uint64_t num_classes, reader->ReadVarint());
  tree->classes_.resize(num_classes);
  for (auto& c : tree->classes_) {
    MLCS_ASSIGN_OR_RETURN(c, reader->ReadI32());
  }
  MLCS_ASSIGN_OR_RETURN(uint64_t nf, reader->ReadVarint());
  tree->num_features_ = nf;
  MLCS_ASSIGN_OR_RETURN(uint64_t num_importances, reader->ReadVarint());
  tree->feature_importances_.resize(num_importances);
  for (auto& v : tree->feature_importances_) {
    MLCS_ASSIGN_OR_RETURN(v, reader->ReadDouble());
  }
  MLCS_ASSIGN_OR_RETURN(uint64_t num_nodes, reader->ReadVarint());
  tree->nodes_.resize(num_nodes);
  for (auto& node : tree->nodes_) {
    MLCS_ASSIGN_OR_RETURN(node.feature, reader->ReadI32());
    MLCS_ASSIGN_OR_RETURN(node.threshold, reader->ReadDouble());
    MLCS_ASSIGN_OR_RETURN(node.left, reader->ReadU32());
    MLCS_ASSIGN_OR_RETURN(node.right, reader->ReadU32());
    MLCS_ASSIGN_OR_RETURN(uint64_t np, reader->ReadVarint());
    node.probs.resize(np);
    for (auto& p : node.probs) {
      MLCS_ASSIGN_OR_RETURN(double d, reader->ReadDouble());
      p = static_cast<float>(d);
    }
    // Bounds-check child indices against the node array.
    if (node.feature >= 0 &&
        (node.left >= num_nodes || node.right >= num_nodes)) {
      return Status::ParseError("corrupt tree: child index out of range");
    }
  }
  return tree;
}

}  // namespace mlcs::ml
