#ifndef MLCS_ML_TRAINING_SOURCE_H_
#define MLCS_ML_TRAINING_SOURCE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "ml/matrix.h"

namespace mlcs::ml {

/// Read access to one feature of a TrainingSource. Either a dense per-row
/// array (fact-table feature) or a per-key lookup table addressed through
/// the source's shared key column (dimension-table feature reached through
/// a join key — the factorized representation that never materializes the
/// join). `view[r]` returns the exact double the dense path would hold at
/// row r, so trainers running through views stay bit-identical to the
/// matrix path.
class FeatureView {
 public:
  FeatureView() = default;

  double operator[](size_t r) const {
    return factorized_ ? lut_[keys_[r]] : dense_[r];
  }
  bool factorized() const { return factorized_; }

 private:
  friend class TrainingSource;
  FeatureView(const double* dense, const double* lut, const uint32_t* keys,
              bool factorized)
      : dense_(dense), lut_(lut), keys_(keys), factorized_(factorized) {}

  const double* dense_ = nullptr;
  const double* lut_ = nullptr;
  const uint32_t* keys_ = nullptr;
  bool factorized_ = false;
};

/// The statistics-provider seam between relational data and the trainers
/// (DESIGN.md §14). A TrainingSource presents n rows × d features like a
/// Matrix, but dimension-side features are stored once per join key (a
/// K-entry LUT) plus one shared n-entry key column, instead of n gathered
/// copies — O(|fact| + |dim|) bytes instead of O(|join output|). Trainers
/// consume it through FeatureView (per-row reads, bit-identical to dense)
/// or through the per-key LUT directly (the tree splitters aggregate
/// class counts by key below the join and derive split statistics from
/// the K-sized table).
///
/// Build either by borrowing a fitted Matrix (FromMatrix — the dense
/// fallback funnels through the same trainer code) or feature by feature:
/// dense features via AddDenseFeature, then SetKeys once, then factorized
/// features via AddFactorizedFeature.
class TrainingSource {
 public:
  TrainingSource() = default;
  TrainingSource(TrainingSource&&) = default;
  TrainingSource& operator=(TrainingSource&&) = default;
  TrainingSource(const TrainingSource&) = delete;
  TrainingSource& operator=(const TrainingSource&) = delete;

  /// Dense view over an existing matrix. Borrows the columns — `x` must
  /// outlive the source.
  static TrainingSource FromMatrix(const Matrix& x);

  /// Borrows `column` (caller keeps it alive) as a dense feature.
  Status AddDenseFeature(const std::vector<double>* column);
  /// Adopts `column` as a dense feature.
  Status AddOwnedDenseFeature(std::vector<double> column);
  /// Sets the shared join-key column: `keys[r]` in [0, num_keys). Must be
  /// called once, before any AddFactorizedFeature.
  Status SetKeys(std::vector<uint32_t> keys, size_t num_keys);
  /// Adds a per-key feature: `lut.size() == num_keys()`. Row r's value is
  /// lut[keys()[r]].
  Status AddFactorizedFeature(std::vector<double> lut);

  size_t rows() const { return rows_; }
  size_t cols() const { return features_.size(); }
  FeatureView view(size_t f) const;
  bool factorized(size_t f) const { return features_[f].is_factorized; }
  /// Per-key values of a factorized feature (undefined for dense ones).
  const std::vector<double>& lut(size_t f) const { return features_[f].lut; }
  /// Shared key column; nullptr when the source has no factorized features.
  const uint32_t* keys() const {
    return keys_.empty() ? nullptr : keys_.data();
  }
  size_t num_keys() const { return num_keys_; }
  size_t num_factorized() const;

  /// Bytes a dense n×d materialization of this feature set would hold —
  /// what the joined-matrix path touches.
  size_t MaterializedBytes() const {
    return rows_ * features_.size() * sizeof(double);
  }
  /// Bytes actually backing this source: n per dense feature, K per
  /// factorized feature, plus the shared key column.
  size_t FactorizedBytes() const;

 private:
  struct Feature {
    const std::vector<double>* dense = nullptr;  // borrowed when set
    std::vector<double> owned;                   // owns dense storage
    std::vector<double> lut;                     // factorized storage
    bool is_factorized = false;
  };

  Status CheckRows(size_t n);

  size_t rows_ = 0;
  bool rows_set_ = false;
  size_t num_keys_ = 0;
  std::vector<uint32_t> keys_;
  std::vector<Feature> features_;
};

/// Bumps the mlcs.factorized.* metrics for one completed factorized (or
/// dense-fallback) fit: fit count, bytes the source held, and bytes the
/// materialized path would have held.
void CountTrainingSourceFit(const TrainingSource& source);

/// Process-wide factorized-training toggle. Defaults on; the
/// MLCS_DISABLE_FACTORIZED environment variable (any non-empty value)
/// starts it off. Gates both the pipeline's factorized training path and
/// the optimizer's aggregate-pushdown-below-join rewrite, so one switch
/// reverts the whole factorized stack to the materialized fallback.
bool FactorizedEnabled();
/// Returns the previous value (test helper for save/restore).
bool SetFactorizedEnabled(bool enabled);

}  // namespace mlcs::ml

#endif  // MLCS_ML_TRAINING_SOURCE_H_
