#include "ml/random_forest.h"

#include <cmath>

#include "common/mutex.h"
#include "common/random.h"
#include "common/thread_pool.h"

namespace mlcs::ml {

RandomForest::RandomForest(RandomForestOptions options) : options_(options) {}

Status RandomForest::Fit(const Matrix& x, const Labels& y) {
  MLCS_RETURN_IF_ERROR(internal::CheckFitInputs(x, y));
  return FitSource(TrainingSource::FromMatrix(x), y);
}

Status RandomForest::FitSource(const TrainingSource& x, const Labels& y) {
  MLCS_RETURN_IF_ERROR(internal::CheckFitInputs(x, y));
  if (options_.n_estimators <= 0) {
    return Status::InvalidArgument("n_estimators must be positive");
  }
  classes_ = internal::DistinctClasses(y);
  num_features_ = x.cols();

  size_t max_features =
      options_.max_features != 0
          ? options_.max_features
          : std::max<size_t>(
                1, static_cast<size_t>(std::sqrt(
                       static_cast<double>(x.cols()))));

  size_t n = x.rows();
  size_t num_trees = static_cast<size_t>(options_.n_estimators);
  trees_.clear();
  trees_.resize(num_trees);

  // Pre-draw per-tree bootstrap samples so results are deterministic
  // regardless of fit parallelism.
  Rng seeder(options_.seed);
  std::vector<uint64_t> tree_seeds(num_trees);
  for (auto& s : tree_seeds) s = seeder.NextU64();

  Mutex error_mutex{"RandomForest::Fit error_mutex"};
  Status first_error = Status::OK();
  auto fit_one = [&](size_t t) {
    DecisionTreeOptions topt;
    topt.max_depth = options_.max_depth;
    topt.min_samples_split = options_.min_samples_split;
    topt.min_samples_leaf = options_.min_samples_leaf;
    topt.max_features = max_features;
    topt.num_bins = options_.num_bins;
    topt.exact_splits = options_.exact_splits;
    topt.seed = tree_seeds[t];
    auto tree = std::make_unique<DecisionTree>(topt);

    Rng rng(tree_seeds[t] ^ 0xB0075E7ULL);
    std::vector<uint32_t> rows(n);
    if (options_.bootstrap) {
      for (size_t i = 0; i < n; ++i) {
        rows[i] = static_cast<uint32_t>(rng.NextBounded(n));
      }
    } else {
      for (size_t i = 0; i < n; ++i) rows[i] = static_cast<uint32_t>(i);
    }
    Status st = tree->FitSourceOnRows(x, y, rows, classes_);
    if (!st.ok()) {
      MutexLock lock(&error_mutex);
      if (first_error.ok()) first_error = st;
      return;
    }
    trees_[t] = std::move(tree);
  };

  if (options_.parallel_fit && num_trees > 1) {
    ThreadPool::Global().ParallelFor(num_trees, fit_one);
  } else {
    for (size_t t = 0; t < num_trees; ++t) fit_one(t);
  }
  if (!first_error.ok()) {
    trees_.clear();
    classes_.clear();
    return first_error;
  }
  CountTrainingSourceFit(x);
  return Status::OK();
}

Result<std::vector<std::vector<double>>> RandomForest::AverageDistribution(
    const Matrix& x) const {
  MLCS_RETURN_IF_ERROR(
      internal::CheckPredictInputs(x, num_features_, fitted()));
  std::vector<std::vector<double>> avg(
      x.rows(), std::vector<double>(classes_.size(), 0.0));
  for (const auto& tree : trees_) {
    MLCS_ASSIGN_OR_RETURN(auto dist, tree->PredictDistribution(x));
    for (size_t r = 0; r < x.rows(); ++r) {
      for (size_t c = 0; c < classes_.size(); ++c) {
        avg[r][c] += dist[r][c];
      }
    }
  }
  double inv = 1.0 / static_cast<double>(trees_.size());
  for (auto& row : avg) {
    for (auto& v : row) v *= inv;
  }
  return avg;
}

Result<Labels> RandomForest::Predict(const Matrix& x) const {
  MLCS_ASSIGN_OR_RETURN(auto avg, AverageDistribution(x));
  Labels out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    size_t best = 0;
    for (size_t c = 1; c < classes_.size(); ++c) {
      if (avg[r][c] > avg[r][best]) best = c;
    }
    out[r] = classes_[best];
  }
  return out;
}

Result<std::vector<double>> RandomForest::PredictProba(const Matrix& x,
                                                       int32_t cls) const {
  MLCS_ASSIGN_OR_RETURN(size_t cls_idx, internal::ClassIndex(classes_, cls));
  MLCS_ASSIGN_OR_RETURN(auto avg, AverageDistribution(x));
  std::vector<double> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) out[r] = avg[r][cls_idx];
  return out;
}

Result<std::vector<double>> RandomForest::PredictConfidence(
    const Matrix& x) const {
  MLCS_ASSIGN_OR_RETURN(auto avg, AverageDistribution(x));
  std::vector<double> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    double best = 0;
    for (double v : avg[r]) best = std::max(best, v);
    out[r] = best;
  }
  return out;
}

Result<std::vector<double>> RandomForest::FeatureImportances() const {
  if (!fitted()) return Status::InvalidArgument("model is not fitted");
  std::vector<double> out(num_features_, 0.0);
  for (const auto& tree : trees_) {
    const auto& imp = tree->feature_importances();
    for (size_t f = 0; f < out.size() && f < imp.size(); ++f) {
      out[f] += imp[f];
    }
  }
  double total = 0;
  for (double v : out) total += v;
  if (total > 0) {
    for (double& v : out) v /= total;
  }
  return out;
}

std::string RandomForest::ParamsString() const {
  return "n_estimators=" + std::to_string(options_.n_estimators) +
         " max_depth=" + std::to_string(options_.max_depth) +
         " max_features=" + std::to_string(options_.max_features) +
         " bootstrap=" + (options_.bootstrap ? "true" : "false");
}

void RandomForest::Serialize(ByteWriter* writer) const {
  writer->WriteI32(options_.n_estimators);
  writer->WriteI32(options_.max_depth);
  writer->WriteVarint(options_.min_samples_split);
  writer->WriteVarint(options_.min_samples_leaf);
  writer->WriteVarint(options_.max_features);
  writer->WriteBool(options_.bootstrap);
  writer->WriteI32(options_.num_bins);
  writer->WriteBool(options_.exact_splits);
  writer->WriteBool(options_.parallel_fit);
  writer->WriteU64(options_.seed);
  writer->WriteVarint(classes_.size());
  for (int32_t c : classes_) writer->WriteI32(c);
  writer->WriteVarint(num_features_);
  writer->WriteVarint(trees_.size());
  for (const auto& tree : trees_) tree->Serialize(writer);
}

Result<std::unique_ptr<RandomForest>> RandomForest::DeserializeBody(
    ByteReader* reader) {
  RandomForestOptions options;
  MLCS_ASSIGN_OR_RETURN(options.n_estimators, reader->ReadI32());
  MLCS_ASSIGN_OR_RETURN(options.max_depth, reader->ReadI32());
  MLCS_ASSIGN_OR_RETURN(uint64_t mss, reader->ReadVarint());
  options.min_samples_split = mss;
  MLCS_ASSIGN_OR_RETURN(uint64_t msl, reader->ReadVarint());
  options.min_samples_leaf = msl;
  MLCS_ASSIGN_OR_RETURN(uint64_t mf, reader->ReadVarint());
  options.max_features = mf;
  MLCS_ASSIGN_OR_RETURN(options.bootstrap, reader->ReadBool());
  MLCS_ASSIGN_OR_RETURN(options.num_bins, reader->ReadI32());
  MLCS_ASSIGN_OR_RETURN(options.exact_splits, reader->ReadBool());
  MLCS_ASSIGN_OR_RETURN(options.parallel_fit, reader->ReadBool());
  MLCS_ASSIGN_OR_RETURN(options.seed, reader->ReadU64());
  auto forest = std::make_unique<RandomForest>(options);
  MLCS_ASSIGN_OR_RETURN(uint64_t num_classes, reader->ReadVarint());
  forest->classes_.resize(num_classes);
  for (auto& c : forest->classes_) {
    MLCS_ASSIGN_OR_RETURN(c, reader->ReadI32());
  }
  MLCS_ASSIGN_OR_RETURN(uint64_t nf, reader->ReadVarint());
  forest->num_features_ = nf;
  MLCS_ASSIGN_OR_RETURN(uint64_t num_trees, reader->ReadVarint());
  forest->trees_.reserve(num_trees);
  for (uint64_t t = 0; t < num_trees; ++t) {
    MLCS_ASSIGN_OR_RETURN(auto tree, DecisionTree::DeserializeBody(reader));
    forest->trees_.push_back(std::move(tree));
  }
  return forest;
}

}  // namespace mlcs::ml
