#include <algorithm>

#include "ml/model.h"
#include "ml/training_source.h"

namespace mlcs::ml {

const char* ModelTypeToString(ModelType type) {
  switch (type) {
    case ModelType::kDecisionTree:
      return "decision_tree";
    case ModelType::kRandomForest:
      return "random_forest";
    case ModelType::kLogisticRegression:
      return "logistic_regression";
    case ModelType::kNaiveBayes:
      return "naive_bayes";
    case ModelType::kKnn:
      return "knn";
  }
  return "unknown";
}

namespace internal {

std::vector<int32_t> DistinctClasses(const Labels& y) {
  std::vector<int32_t> classes(y);
  std::sort(classes.begin(), classes.end());
  classes.erase(std::unique(classes.begin(), classes.end()), classes.end());
  return classes;
}

Result<size_t> ClassIndex(const std::vector<int32_t>& classes, int32_t cls) {
  auto it = std::lower_bound(classes.begin(), classes.end(), cls);
  if (it == classes.end() || *it != cls) {
    return Status::InvalidArgument("class " + std::to_string(cls) +
                                   " was not seen during fit");
  }
  return static_cast<size_t>(it - classes.begin());
}

Status CheckFitInputs(const Matrix& x, const Labels& y) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("cannot fit on an empty matrix");
  }
  if (y.size() != x.rows()) {
    return Status::InvalidArgument(
        "label count " + std::to_string(y.size()) +
        " does not match row count " + std::to_string(x.rows()));
  }
  return Status::OK();
}

Status CheckFitInputs(const TrainingSource& x, const Labels& y) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("cannot fit on an empty training source");
  }
  if (y.size() != x.rows()) {
    return Status::InvalidArgument(
        "label count " + std::to_string(y.size()) +
        " does not match row count " + std::to_string(x.rows()));
  }
  return Status::OK();
}

Status CheckPredictInputs(const Matrix& x, size_t expected_features,
                          bool fitted) {
  if (!fitted) {
    return Status::InvalidArgument("model is not fitted");
  }
  if (x.cols() != expected_features) {
    return Status::InvalidArgument(
        "feature count " + std::to_string(x.cols()) +
        " does not match fit-time count " +
        std::to_string(expected_features));
  }
  return Status::OK();
}

}  // namespace internal
}  // namespace mlcs::ml
