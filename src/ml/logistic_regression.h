#ifndef MLCS_ML_LOGISTIC_REGRESSION_H_
#define MLCS_ML_LOGISTIC_REGRESSION_H_

#include <memory>
#include <vector>

#include "ml/model.h"
#include "ml/training_source.h"

namespace mlcs::ml {

struct LogisticRegressionOptions {
  double learning_rate = 0.1;
  int epochs = 50;
  double l2 = 1e-4;
  uint64_t seed = 42;
};

/// Multiclass logistic regression (one-vs-rest) trained with mini-batch
/// gradient descent on standardized features. Part of the ensemble study
/// (paper §3.3): a second model family to store and compare in the catalog.
class LogisticRegression : public Model {
 public:
  explicit LogisticRegression(LogisticRegressionOptions options = {});

  ModelType type() const override { return ModelType::kLogisticRegression; }
  Status Fit(const Matrix& x, const Labels& y) override;
  /// Statistics-provider path: gradient-descent sums read dimension
  /// features through standardized per-key LUTs (K doubles per feature
  /// instead of an n-row standardized copy). Row order and operands match
  /// the dense path exactly, so the fitted weights are bit-identical; Fit
  /// funnels through here via TrainingSource::FromMatrix.
  Status FitSource(const TrainingSource& x, const Labels& y);
  Result<Labels> Predict(const Matrix& x) const override;
  Result<std::vector<double>> PredictProba(const Matrix& x,
                                           int32_t cls) const override;
  Result<std::vector<double>> PredictConfidence(
      const Matrix& x) const override;
  const std::vector<int32_t>& classes() const override { return classes_; }
  std::string ParamsString() const override;
  void Serialize(ByteWriter* writer) const override;

  static Result<std::unique_ptr<LogisticRegression>> DeserializeBody(
      ByteReader* reader);

 private:
  /// Per-class scores normalized across classes: out[r][c].
  Result<std::vector<std::vector<double>>> Scores(const Matrix& x) const;

  LogisticRegressionOptions options_;
  std::vector<int32_t> classes_;
  size_t num_features_ = 0;
  std::vector<double> mean_, std_;              // standardization
  std::vector<std::vector<double>> weights_;    // [class][feature]
  std::vector<double> bias_;                    // [class]
};

}  // namespace mlcs::ml

#endif  // MLCS_ML_LOGISTIC_REGRESSION_H_
