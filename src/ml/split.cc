#include "ml/split.h"

#include <numeric>

namespace mlcs::ml {

namespace {
std::vector<uint32_t> ShuffledIndices(size_t n, uint64_t seed) {
  std::vector<uint32_t> indices(n);
  std::iota(indices.begin(), indices.end(), 0);
  Rng rng(seed);
  for (size_t i = n; i > 1; --i) {
    size_t j = rng.NextBounded(i);
    std::swap(indices[i - 1], indices[j]);
  }
  return indices;
}
}  // namespace

Result<TrainTestIndices> TrainTestSplit(size_t n, double test_fraction,
                                        uint64_t seed) {
  if (n == 0) return Status::InvalidArgument("cannot split zero rows");
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    return Status::InvalidArgument("test_fraction must be in (0, 1)");
  }
  std::vector<uint32_t> indices = ShuffledIndices(n, seed);
  size_t test_size = static_cast<size_t>(
      static_cast<double>(n) * test_fraction);
  test_size = std::min(std::max<size_t>(1, test_size), n - 1);
  TrainTestIndices out;
  out.test.assign(indices.begin(), indices.begin() + test_size);
  out.train.assign(indices.begin() + test_size, indices.end());
  return out;
}

Result<std::vector<TrainTestIndices>> KFold(size_t n, size_t k,
                                            uint64_t seed) {
  if (k < 2) return Status::InvalidArgument("k must be >= 2");
  if (n < k) return Status::InvalidArgument("fewer rows than folds");
  std::vector<uint32_t> indices = ShuffledIndices(n, seed);
  std::vector<TrainTestIndices> folds(k);
  size_t base = n / k, extra = n % k;
  size_t offset = 0;
  for (size_t f = 0; f < k; ++f) {
    size_t fold_size = base + (f < extra ? 1 : 0);
    folds[f].test.assign(indices.begin() + offset,
                         indices.begin() + offset + fold_size);
    folds[f].train.reserve(n - fold_size);
    folds[f].train.insert(folds[f].train.end(), indices.begin(),
                          indices.begin() + offset);
    folds[f].train.insert(folds[f].train.end(),
                          indices.begin() + offset + fold_size,
                          indices.end());
    offset += fold_size;
  }
  return folds;
}

}  // namespace mlcs::ml
