#include "ml/split.h"

#include <numeric>

namespace mlcs::ml {

namespace {
std::vector<uint32_t> ShuffledIndices(size_t n, uint64_t seed) {
  std::vector<uint32_t> indices(n);
  std::iota(indices.begin(), indices.end(), 0);
  Rng rng(seed);
  for (size_t i = n; i > 1; --i) {
    size_t j = rng.NextBounded(i);
    std::swap(indices[i - 1], indices[j]);
  }
  return indices;
}
}  // namespace

Result<TrainTestIndices> TrainTestSplit(size_t n, double test_fraction,
                                        uint64_t seed) {
  if (n == 0) return Status::InvalidArgument("cannot split zero rows");
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    return Status::InvalidArgument("test_fraction must be in (0, 1)");
  }
  std::vector<uint32_t> indices = ShuffledIndices(n, seed);
  size_t test_size = static_cast<size_t>(
      static_cast<double>(n) * test_fraction);
  test_size = std::min(std::max<size_t>(1, test_size), n - 1);
  TrainTestIndices out;
  out.test.assign(indices.begin(), indices.begin() + test_size);
  out.train.assign(indices.begin() + test_size, indices.end());
  return out;
}

Result<std::vector<TrainTestIndices>> KFold(size_t n, size_t k,
                                            uint64_t seed) {
  if (k < 2) return Status::InvalidArgument("k must be >= 2");
  if (n < k) return Status::InvalidArgument("fewer rows than folds");
  std::vector<uint32_t> indices = ShuffledIndices(n, seed);
  std::vector<TrainTestIndices> folds(k);
  size_t base = n / k, extra = n % k;
  size_t offset = 0;
  for (size_t f = 0; f < k; ++f) {
    size_t fold_size = base + (f < extra ? 1 : 0);
    folds[f].test.assign(indices.begin() + offset,
                         indices.begin() + offset + fold_size);
    folds[f].train.reserve(n - fold_size);
    folds[f].train.insert(folds[f].train.end(), indices.begin(),
                          indices.begin() + offset);
    folds[f].train.insert(folds[f].train.end(),
                          indices.begin() + offset + fold_size,
                          indices.end());
    offset += fold_size;
  }
  return folds;
}

Result<TrainTestIndices> GroupedTrainTestSplit(
    const std::vector<uint32_t>& keys, size_t num_keys, double test_fraction,
    uint64_t seed) {
  if (keys.empty()) return Status::InvalidArgument("cannot split zero rows");
  if (num_keys < 2) {
    return Status::InvalidArgument(
        "grouped split needs at least two distinct keys");
  }
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    return Status::InvalidArgument("test_fraction must be in (0, 1)");
  }
  std::vector<size_t> group_sizes(num_keys, 0);
  for (uint32_t k : keys) {
    if (k >= num_keys) {
      return Status::InvalidArgument("key out of range in grouped split");
    }
    ++group_sizes[k];
  }
  std::vector<uint32_t> order = ShuffledIndices(num_keys, seed);
  size_t target = static_cast<size_t>(
      static_cast<double>(keys.size()) * test_fraction);
  target = std::min(std::max<size_t>(1, target), keys.size() - 1);
  std::vector<uint8_t> is_test(num_keys, 0);
  size_t test_rows = 0;
  for (uint32_t k : order) {
    if (test_rows >= target) break;
    // Never drain the train side: leave at least one populated key out.
    if (test_rows + group_sizes[k] >= keys.size()) continue;
    is_test[k] = 1;
    test_rows += group_sizes[k];
  }
  TrainTestIndices out;
  out.test.reserve(test_rows);
  out.train.reserve(keys.size() - test_rows);
  for (size_t r = 0; r < keys.size(); ++r) {
    (is_test[keys[r]] ? out.test : out.train)
        .push_back(static_cast<uint32_t>(r));
  }
  if (out.test.empty() || out.train.empty()) {
    return Status::InvalidArgument(
        "grouped split could not populate both sides");
  }
  return out;
}

}  // namespace mlcs::ml
