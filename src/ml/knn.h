#ifndef MLCS_ML_KNN_H_
#define MLCS_ML_KNN_H_

#include <memory>
#include <vector>

#include "ml/model.h"

namespace mlcs::ml {

struct KnnOptions {
  size_t k = 5;
};

/// Brute-force k-nearest-neighbours classifier (L2 distance, standardized
/// features). Included as a non-parametric model family for the ensemble
/// study: its serialized form *is* the training data, which also makes it
/// the worst case for the model-BLOB storage path (abl-ser's large-model
/// end of the spectrum).
class Knn : public Model {
 public:
  explicit Knn(KnnOptions options = {});

  ModelType type() const override { return ModelType::kKnn; }
  Status Fit(const Matrix& x, const Labels& y) override;
  Result<Labels> Predict(const Matrix& x) const override;
  Result<std::vector<double>> PredictProba(const Matrix& x,
                                           int32_t cls) const override;
  Result<std::vector<double>> PredictConfidence(
      const Matrix& x) const override;
  const std::vector<int32_t>& classes() const override { return classes_; }
  std::string ParamsString() const override;
  void Serialize(ByteWriter* writer) const override;

  static Result<std::unique_ptr<Knn>> DeserializeBody(ByteReader* reader);

 private:
  /// Vote distribution per row over class indices.
  Result<std::vector<std::vector<double>>> VoteDistribution(
      const Matrix& x) const;

  KnnOptions options_;
  std::vector<int32_t> classes_;
  size_t num_features_ = 0;
  std::vector<double> mean_, std_;
  Matrix train_;        // standardized training data
  Labels train_labels_;
};

}  // namespace mlcs::ml

#endif  // MLCS_ML_KNN_H_
