#ifndef MLCS_ML_DECISION_TREE_H_
#define MLCS_ML_DECISION_TREE_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "ml/model.h"
#include "ml/training_source.h"

namespace mlcs::ml {

struct DecisionTreeOptions {
  int max_depth = 16;
  size_t min_samples_split = 2;
  size_t min_samples_leaf = 1;
  /// Features considered per split; 0 = all (plain CART). Random forests
  /// set this to ~sqrt(d).
  size_t max_features = 0;
  /// Histogram splitter granularity (bins per feature per node). The
  /// histogram splitter is O(n·d) per node — the right trade for the
  /// paper-scale datasets; `exact_splits` switches to the O(n log n · d)
  /// sort-based CART splitter for small data / tests.
  int num_bins = 32;
  bool exact_splits = false;
  uint64_t seed = 42;
};

/// CART decision-tree classifier (gini impurity). NaN feature values are
/// routed to the left child at both fit and predict time.
class DecisionTree : public Model {
 public:
  explicit DecisionTree(DecisionTreeOptions options = {});

  ModelType type() const override { return ModelType::kDecisionTree; }
  Status Fit(const Matrix& x, const Labels& y) override;
  Result<Labels> Predict(const Matrix& x) const override;
  Result<std::vector<double>> PredictProba(const Matrix& x,
                                           int32_t cls) const override;
  Result<std::vector<double>> PredictConfidence(
      const Matrix& x) const override;
  const std::vector<int32_t>& classes() const override { return classes_; }
  std::string ParamsString() const override;
  void Serialize(ByteWriter* writer) const override;

  /// Fits on a row subset with a pre-agreed class set — lets a random
  /// forest bootstrap without copying the matrix and keeps every tree's
  /// class-index space aligned.
  Status FitOnRows(const Matrix& x, const Labels& y,
                   const std::vector<uint32_t>& rows,
                   const std::vector<int32_t>& class_set);

  /// Statistics-provider path (DESIGN.md §14): trains through a
  /// TrainingSource. Dimension features compute their split statistics as
  /// per-key class-count aggregates (one group-by below the join per node,
  /// shared across all factorized features) instead of per-row scans;
  /// results are bit-identical to Fit on the equivalent dense matrix.
  Status FitSource(const TrainingSource& x, const Labels& y);
  Status FitSourceOnRows(const TrainingSource& x, const Labels& y,
                         const std::vector<uint32_t>& rows,
                         const std::vector<int32_t>& class_set);

  /// Class-index probability distribution for each row (num_classes per
  /// row); the forest averages these across trees.
  Result<std::vector<std::vector<double>>> PredictDistribution(
      const Matrix& x) const;

  size_t num_nodes() const { return nodes_.size(); }

  /// Per-feature importance: total gini impurity decrease weighted by node
  /// size, normalized to sum to 1 (sklearn's feature_importances_).
  /// Empty before fitting; all-zero when the tree is a single leaf.
  const std::vector<double>& feature_importances() const {
    return feature_importances_;
  }

  static Result<std::unique_ptr<DecisionTree>> DeserializeBody(
      ByteReader* reader);

  const DecisionTreeOptions& options() const { return options_; }

 private:
  struct Node {
    int32_t feature = -1;  // -1 → leaf
    double threshold = 0;
    uint32_t left = 0;
    uint32_t right = 0;
    std::vector<float> probs;  // leaf only: class distribution
  };

  struct SplitResult {
    bool found = false;
    size_t feature = 0;
    double threshold = 0;
    double impurity_decrease = 0;
  };

  uint32_t BuildNode(const TrainingSource& x, const Labels& y,
                     std::vector<uint32_t>& rows, int depth, Rng& rng);
  SplitResult FindBestSplit(const TrainingSource& x, const Labels& y,
                            const std::vector<uint32_t>& rows,
                            const std::vector<size_t>& features) const;
  SplitResult BestSplitHistogram(const FeatureView& col, const Labels& y,
                                 const std::vector<uint32_t>& rows,
                                 size_t feature) const;
  SplitResult BestSplitExact(const FeatureView& col, const Labels& y,
                             const std::vector<uint32_t>& rows,
                             size_t feature) const;
  /// Aggregate-statistics splitters for factorized features: derive the
  /// split from the node's per-key class counts (`key_counts`, flattened
  /// [key × class]) and the feature's K-entry LUT — O(K) per feature
  /// instead of O(rows), bit-identical because every accumulated quantity
  /// is an integer-valued double.
  SplitResult BestSplitHistogramAgg(const std::vector<double>& lut,
                                    const std::vector<int64_t>& key_counts,
                                    size_t feature) const;
  SplitResult BestSplitExactAgg(const std::vector<double>& lut,
                                const std::vector<int64_t>& key_counts,
                                size_t feature) const;
  /// Boundary scan shared by the per-row and aggregate histogram
  /// splitters (`counts` is the [bin × class] histogram).
  SplitResult ScanHistogram(const std::vector<double>& counts, size_t bins,
                            double lo, double hi, size_t feature) const;
  uint32_t MakeLeaf(const Labels& y, const std::vector<uint32_t>& rows);
  size_t WalkToLeaf(const Matrix& x, size_t row) const;

  DecisionTreeOptions options_;
  std::vector<int32_t> classes_;
  size_t num_features_ = 0;
  std::vector<Node> nodes_;
  std::vector<double> feature_importances_;
};

}  // namespace mlcs::ml

#endif  // MLCS_ML_DECISION_TREE_H_
