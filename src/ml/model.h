#ifndef MLCS_ML_MODEL_H_
#define MLCS_ML_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/byte_buffer.h"
#include "common/result.h"
#include "ml/matrix.h"

namespace mlcs::ml {

/// Serialization tags; stable on disk — never reorder.
enum class ModelType : uint8_t {
  kDecisionTree = 1,
  kRandomForest = 2,
  kLogisticRegression = 3,
  kNaiveBayes = 4,
  kKnn = 5,
};

const char* ModelTypeToString(ModelType type);

/// Abstract classifier, the scikit-learn-estimator analogue: Fit on a
/// feature matrix plus labels, Predict labels, and report per-row
/// confidences for ensemble selection (paper §3.3). All models support
/// binary serialization via pickle.h ("pickle.dumps/loads").
class Model {
 public:
  virtual ~Model() = default;

  virtual ModelType type() const = 0;

  /// Trains on X (n×d) and labels y (length n). Labels may be arbitrary
  /// int32 values; models remap internally and remember the class set.
  virtual Status Fit(const Matrix& x, const Labels& y) = 0;

  /// Predicted label per row. Requires a fitted model.
  virtual Result<Labels> Predict(const Matrix& x) const = 0;

  /// P(class = `cls`) per row. `cls` must be one of classes().
  virtual Result<std::vector<double>> PredictProba(const Matrix& x,
                                                   int32_t cls) const = 0;

  /// Confidence (probability of the *predicted* class) per row — what the
  /// "use the most confident model" ensemble keys on.
  virtual Result<std::vector<double>> PredictConfidence(
      const Matrix& x) const = 0;

  /// Sorted distinct labels seen at fit time (empty before fitting).
  virtual const std::vector<int32_t>& classes() const = 0;

  bool fitted() const { return !classes().empty(); }

  /// Human/SQL-queryable hyperparameter description, e.g.
  /// "n_estimators=16 max_depth=12". Stored in the model catalog.
  virtual std::string ParamsString() const = 0;

  /// Writes the body (excluding the type tag, which pickle.h adds).
  virtual void Serialize(ByteWriter* writer) const = 0;
};

using ModelPtr = std::shared_ptr<Model>;

class TrainingSource;

namespace internal {

/// Sorted distinct values of y.
std::vector<int32_t> DistinctClasses(const Labels& y);

/// Index of `cls` in sorted `classes`, or error.
Result<size_t> ClassIndex(const std::vector<int32_t>& classes, int32_t cls);

/// Shared validation for Fit inputs.
Status CheckFitInputs(const Matrix& x, const Labels& y);
/// Same checks against a statistics-provider source (training_source.h).
Status CheckFitInputs(const TrainingSource& x, const Labels& y);
/// Shared validation for Predict inputs against the fitted feature count.
Status CheckPredictInputs(const Matrix& x, size_t expected_features,
                          bool fitted);

}  // namespace internal
}  // namespace mlcs::ml

#endif  // MLCS_ML_MODEL_H_
