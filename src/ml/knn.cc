#include "ml/knn.h"

#include <algorithm>
#include <cmath>

namespace mlcs::ml {

Knn::Knn(KnnOptions options) : options_(options) {}

Status Knn::Fit(const Matrix& x, const Labels& y) {
  MLCS_RETURN_IF_ERROR(internal::CheckFitInputs(x, y));
  if (options_.k == 0) return Status::InvalidArgument("k must be positive");
  classes_ = internal::DistinctClasses(y);
  num_features_ = x.cols();
  size_t n = x.rows(), d = x.cols();

  mean_.assign(d, 0.0);
  std_.assign(d, 1.0);
  for (size_t c = 0; c < d; ++c) {
    const auto& col = x.column(c);
    double sum = 0;
    for (double v : col) sum += std::isnan(v) ? 0.0 : v;
    mean_[c] = sum / static_cast<double>(n);
    double var = 0;
    for (double v : col) {
      double e = (std::isnan(v) ? 0.0 : v) - mean_[c];
      var += e * e;
    }
    var /= static_cast<double>(n);
    std_[c] = var > 1e-12 ? std::sqrt(var) : 1.0;
  }
  train_ = Matrix(n, d);
  for (size_t c = 0; c < d; ++c) {
    const auto& src = x.column(c);
    auto& dst = train_.column(c);
    for (size_t r = 0; r < n; ++r) {
      double v = std::isnan(src[r]) ? 0.0 : src[r];
      dst[r] = (v - mean_[c]) / std_[c];
    }
  }
  train_labels_ = y;
  return Status::OK();
}

Result<std::vector<std::vector<double>>> Knn::VoteDistribution(
    const Matrix& x) const {
  MLCS_RETURN_IF_ERROR(
      internal::CheckPredictInputs(x, num_features_, fitted()));
  size_t n = x.rows(), d = x.cols(), m = train_.rows();
  size_t k = std::min(options_.k, m);
  std::vector<std::vector<double>> votes(
      n, std::vector<double>(classes_.size(), 0.0));
  std::vector<std::pair<double, size_t>> distances(m);
  std::vector<double> probe(d);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < d; ++c) {
      double v = x.At(r, c);
      probe[c] = ((std::isnan(v) ? 0.0 : v) - mean_[c]) / std_[c];
    }
    for (size_t t = 0; t < m; ++t) {
      double dist = 0;
      for (size_t c = 0; c < d; ++c) {
        double e = probe[c] - train_.At(t, c);
        dist += e * e;
      }
      distances[t] = {dist, t};
    }
    std::partial_sort(distances.begin(), distances.begin() + k,
                      distances.end());
    for (size_t i = 0; i < k; ++i) {
      size_t t = distances[i].second;
      auto idx = internal::ClassIndex(classes_, train_labels_[t]);
      votes[r][idx.ValueOr(0)] += 1.0;
    }
    for (auto& v : votes[r]) v /= static_cast<double>(k);
  }
  return votes;
}

Result<Labels> Knn::Predict(const Matrix& x) const {
  MLCS_ASSIGN_OR_RETURN(auto votes, VoteDistribution(x));
  Labels out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    size_t best = 0;
    for (size_t c = 1; c < classes_.size(); ++c) {
      if (votes[r][c] > votes[r][best]) best = c;
    }
    out[r] = classes_[best];
  }
  return out;
}

Result<std::vector<double>> Knn::PredictProba(const Matrix& x,
                                              int32_t cls) const {
  MLCS_ASSIGN_OR_RETURN(size_t idx, internal::ClassIndex(classes_, cls));
  MLCS_ASSIGN_OR_RETURN(auto votes, VoteDistribution(x));
  std::vector<double> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) out[r] = votes[r][idx];
  return out;
}

Result<std::vector<double>> Knn::PredictConfidence(const Matrix& x) const {
  MLCS_ASSIGN_OR_RETURN(auto votes, VoteDistribution(x));
  std::vector<double> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    double best = 0;
    for (double v : votes[r]) best = std::max(best, v);
    out[r] = best;
  }
  return out;
}

std::string Knn::ParamsString() const {
  return "k=" + std::to_string(options_.k);
}

void Knn::Serialize(ByteWriter* writer) const {
  writer->WriteVarint(options_.k);
  writer->WriteVarint(classes_.size());
  for (int32_t c : classes_) writer->WriteI32(c);
  writer->WriteVarint(num_features_);
  for (double v : mean_) writer->WriteDouble(v);
  for (double v : std_) writer->WriteDouble(v);
  writer->WriteVarint(train_.rows());
  for (size_t c = 0; c < train_.cols(); ++c) {
    for (double v : train_.column(c)) writer->WriteDouble(v);
  }
  for (int32_t label : train_labels_) writer->WriteI32(label);
}

Result<std::unique_ptr<Knn>> Knn::DeserializeBody(ByteReader* reader) {
  KnnOptions options;
  MLCS_ASSIGN_OR_RETURN(uint64_t k, reader->ReadVarint());
  options.k = k;
  auto model = std::make_unique<Knn>(options);
  MLCS_ASSIGN_OR_RETURN(uint64_t num_classes, reader->ReadVarint());
  model->classes_.resize(num_classes);
  for (auto& c : model->classes_) {
    MLCS_ASSIGN_OR_RETURN(c, reader->ReadI32());
  }
  MLCS_ASSIGN_OR_RETURN(uint64_t d, reader->ReadVarint());
  model->num_features_ = d;
  model->mean_.resize(d);
  model->std_.resize(d);
  for (auto& v : model->mean_) {
    MLCS_ASSIGN_OR_RETURN(v, reader->ReadDouble());
  }
  for (auto& v : model->std_) {
    MLCS_ASSIGN_OR_RETURN(v, reader->ReadDouble());
  }
  MLCS_ASSIGN_OR_RETURN(uint64_t rows, reader->ReadVarint());
  model->train_ = Matrix(rows, d);
  for (size_t c = 0; c < d; ++c) {
    for (auto& v : model->train_.column(c)) {
      MLCS_ASSIGN_OR_RETURN(v, reader->ReadDouble());
    }
  }
  model->train_labels_.resize(rows);
  for (auto& label : model->train_labels_) {
    MLCS_ASSIGN_OR_RETURN(label, reader->ReadI32());
  }
  return model;
}

}  // namespace mlcs::ml
