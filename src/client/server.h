#ifndef MLCS_CLIENT_SERVER_H_
#define MLCS_CLIENT_SERVER_H_

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "client/protocol.h"
#include "common/result.h"
#include "sql/database.h"

namespace mlcs::client {

/// A TCP table server fronting a Database — the "separate database server
/// + socket connection" deployment the paper benchmarks against. Request
/// framing: u8 protocol, u32 length, SQL bytes. Response: u8 ok-flag;
/// on error a length-prefixed message, on success an encoded result set
/// (header + row messages + end marker), all length-framed as one blob.
class TableServer {
 public:
  explicit TableServer(Database* db) : db_(db) {}
  ~TableServer();

  TableServer(const TableServer&) = delete;
  TableServer& operator=(const TableServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 → ephemeral) and starts the accept loop.
  Status Start(uint16_t port = 0);
  void Stop();

  uint16_t port() const { return port_; }
  bool running() const { return running_.load(); }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  Database* db_;
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::vector<std::thread> connection_threads_;
};

}  // namespace mlcs::client

#endif  // MLCS_CLIENT_SERVER_H_
