#ifndef MLCS_CLIENT_SERVER_H_
#define MLCS_CLIENT_SERVER_H_

#include <atomic>
#include <list>
#include <memory>
#include <thread>

#include "client/protocol.h"
#include "common/mutex.h"
#include "common/result.h"
#include "sql/database.h"

namespace mlcs::client {

/// A TCP table server fronting a Database — the "separate database server
/// + socket connection" deployment the paper benchmarks against. Request
/// framing: u8 protocol, u32 length, SQL bytes. Response: u8 ok-flag;
/// on error a length-prefixed message, on success an encoded result set
/// (header + row messages + end marker), all length-framed as one blob.
class TableServer {
 public:
  explicit TableServer(Database* db) : db_(db) {}
  ~TableServer();

  TableServer(const TableServer&) = delete;
  TableServer& operator=(const TableServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 → ephemeral) and starts the accept loop.
  Status Start(uint16_t port = 0);
  void Stop();

  uint16_t port() const { return port_; }
  bool running() const { return running_.load(); }

  /// Connection threads currently tracked (live + awaiting reap). Stays
  /// bounded by the number of *concurrent* connections, not by the total
  /// ever accepted — the regression test for the old unbounded growth.
  size_t tracked_connection_threads() const;

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  /// Joins every thread that has finished serving (never the caller's own).
  void ReapFinishedLocked(std::list<std::thread>* out)
      MLCS_REQUIRES(threads_mutex_);

  Database* const db_;
  std::atomic<int> listen_fd_{-1};
  /// Assigned in Start() before the accept thread exists, then read-only.
  uint16_t port_ = 0;  // lint:allow(guarded-member)
  std::atomic<bool> running_{false};
  /// Owned by Start()/Stop(), which the caller serializes (as documented).
  std::thread accept_thread_;  // lint:allow(guarded-member)

  /// Connection threads move from `active_threads_` to `finished_threads_`
  /// as their connection closes; the next event (a new connection, another
  /// connection closing, or Stop) joins them. At rest at most one finished
  /// thread waits unreaped, instead of one zombie per connection ever made.
  mutable Mutex threads_mutex_{"TableServer::threads_mutex_"};
  std::list<std::thread> active_threads_ MLCS_GUARDED_BY(threads_mutex_);
  std::list<std::thread> finished_threads_ MLCS_GUARDED_BY(threads_mutex_);
};

}  // namespace mlcs::client

#endif  // MLCS_CLIENT_SERVER_H_
