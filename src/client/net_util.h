#ifndef MLCS_CLIENT_NET_UTIL_H_
#define MLCS_CLIENT_NET_UTIL_H_

#include <cstddef>

namespace mlcs::client::net {

/// Reads exactly `size` bytes; false on EOF/error.
[[nodiscard]] bool ReadExact(int fd, void* buffer, size_t size);

/// Writes all `size` bytes; false on error.
[[nodiscard]] bool WriteAll(int fd, const void* buffer, size_t size);

}  // namespace mlcs::client::net

#endif  // MLCS_CLIENT_NET_UTIL_H_
