#include "client/inference_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/byte_buffer.h"

namespace mlcs::client {

InferenceClient::~InferenceClient() { Disconnect(); }

Status InferenceClient::Connect(const std::string& host, uint16_t port) {
  Disconnect();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::NetworkError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Disconnect();
    return Status::InvalidArgument("bad host address '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status st = Status::NetworkError("connect() failed: " +
                                     std::string(std::strerror(errno)));
    Disconnect();
    return st;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

void InferenceClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<uint64_t> InferenceClient::Send(const std::string& model_name,
                                       const ml::Matrix& features,
                                       const InferenceCallOptions& options) {
  if (fd_ < 0) return Status::NetworkError("not connected");
  serve::PredictRequest request;
  request.request_id = next_request_id_++;
  request.deadline_ms = options.deadline_ms;
  request.model_name = model_name;
  request.features = features;
  ByteWriter body;
  serve::EncodePredictRequest(request, options.layout, &body);
  MLCS_RETURN_IF_ERROR(serve::WriteFrame(fd_, body));
  return request.request_id;
}

Result<serve::PredictResponse> InferenceClient::Receive() {
  if (fd_ < 0) return Status::NetworkError("not connected");
  MLCS_ASSIGN_OR_RETURN(std::vector<uint8_t> frame, serve::ReadFrame(fd_));
  ByteReader reader(frame);
  return serve::DecodePredictResponse(&reader);
}

Result<serve::PredictResponse> InferenceClient::Call(
    const std::string& model_name, const ml::Matrix& features,
    const InferenceCallOptions& options) {
  MLCS_ASSIGN_OR_RETURN(uint64_t id, Send(model_name, features, options));
  MLCS_ASSIGN_OR_RETURN(serve::PredictResponse response, Receive());
  if (response.request_id != id) {
    return Status::Internal("response id " +
                            std::to_string(response.request_id) +
                            " does not match request id " +
                            std::to_string(id));
  }
  return response;
}

Result<std::string> InferenceClient::FetchMetricsText() {
  if (fd_ < 0) return Status::NetworkError("not connected");
  ByteWriter body;
  serve::EncodeMetricsRequest(&body);
  MLCS_RETURN_IF_ERROR(serve::WriteFrame(fd_, body));
  MLCS_ASSIGN_OR_RETURN(std::vector<uint8_t> frame, serve::ReadFrame(fd_));
  ByteReader reader(frame);
  return serve::DecodeExportResponse(&reader);
}

Result<std::string> InferenceClient::FetchChromeTrace(uint64_t trace_id) {
  if (fd_ < 0) return Status::NetworkError("not connected");
  ByteWriter body;
  serve::EncodeTraceExportRequest(trace_id, &body);
  MLCS_RETURN_IF_ERROR(serve::WriteFrame(fd_, body));
  MLCS_ASSIGN_OR_RETURN(std::vector<uint8_t> frame, serve::ReadFrame(fd_));
  ByteReader reader(frame);
  return serve::DecodeExportResponse(&reader);
}

Result<std::vector<int32_t>> InferenceClient::Predict(
    const std::string& model_name, const ml::Matrix& features,
    const InferenceCallOptions& options) {
  MLCS_ASSIGN_OR_RETURN(serve::PredictResponse response,
                        Call(model_name, features, options));
  if (response.code != serve::ServeCode::kOk) {
    return serve::ServeCodeToStatus(response.code, response.message);
  }
  return std::move(response.labels);
}

}  // namespace mlcs::client
