#ifndef MLCS_CLIENT_SQLITE_LIKE_H_
#define MLCS_CLIENT_SQLITE_LIKE_H_

#include <string>

#include "common/result.h"
#include "sql/database.h"

namespace mlcs::client {

/// SQLite-style in-process row-at-a-time cursor: no socket, but every cell
/// is fetched through a per-row step + per-cell typed accessor, boxing one
/// Value at a time — the conversion overhead the paper's SQLite bar pays
/// even without network transfer.
class RowCursor {
 public:
  RowCursor() = default;

  /// Executes the query eagerly (as this engine is operator-at-a-time) and
  /// positions the cursor before the first row.
  Status Prepare(Database* db, const std::string& sql);

  /// Advances; false once past the last row.
  [[nodiscard]] bool Step();

  size_t num_columns() const;
  const Schema& schema() const { return result_->schema(); }

  /// Typed accessors for the current row (SQLite's sqlite3_column_*).
  Result<int64_t> ColumnInt(size_t col) const;
  Result<double> ColumnDouble(size_t col) const;
  Result<std::string> ColumnText(size_t col) const;
  Result<bool> ColumnIsNull(size_t col) const;
  Result<Value> ColumnValue(size_t col) const;

 private:
  TablePtr result_;
  size_t row_ = 0;
  bool started_ = false;
};

/// Fetches an entire result set through the row-at-a-time cursor into a
/// fresh columnar table — models `cursor.fetchall()` + per-cell conversion
/// in the paper's SQLite pipeline.
Result<TablePtr> FetchAllRowAtATime(Database* db, const std::string& sql);

}  // namespace mlcs::client

#endif  // MLCS_CLIENT_SQLITE_LIKE_H_
