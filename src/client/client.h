#ifndef MLCS_CLIENT_CLIENT_H_
#define MLCS_CLIENT_CLIENT_H_

#include <cstdint>
#include <string>

#include "client/protocol.h"
#include "common/result.h"

namespace mlcs::client {

/// TCP client for TableServer — the "analysis tool connects to the
/// database over a socket" side of the benchmark. Query() ships SQL,
/// receives the row-major result stream and converts it back into columns
/// (that conversion IS the measured client overhead).
class TableClient {
 public:
  TableClient() = default;
  ~TableClient();

  TableClient(const TableClient&) = delete;
  TableClient& operator=(const TableClient&) = delete;

  Status Connect(const std::string& host, uint16_t port);
  void Disconnect();
  bool connected() const { return fd_ >= 0; }

  /// Executes SQL on the server and materializes the result locally.
  Result<TablePtr> Query(const std::string& sql, WireProtocol protocol);

  /// Observability verbs (kVerbPrometheus / kVerbChromeTrace): the
  /// server's Prometheus text exposition, or the Chrome trace_event JSON
  /// of one recorded trace (0 = every retained trace).
  Result<std::string> FetchMetricsText();
  Result<std::string> FetchChromeTrace(uint64_t trace_id);

  /// Bytes received for the last query (for throughput reporting).
  size_t last_response_bytes() const { return last_response_bytes_; }

 private:
  Result<std::string> FetchExport(uint8_t verb, const std::string& payload);

  int fd_ = -1;
  size_t last_response_bytes_ = 0;
};

}  // namespace mlcs::client

#endif  // MLCS_CLIENT_CLIENT_H_
