#include "client/sqlite_like.h"

namespace mlcs::client {

Status RowCursor::Prepare(Database* db, const std::string& sql) {
  MLCS_ASSIGN_OR_RETURN(result_, db->Query(sql));
  row_ = 0;
  started_ = false;
  return Status::OK();
}

bool RowCursor::Step() {
  if (result_ == nullptr) return false;
  if (!started_) {
    started_ = true;
    return result_->num_rows() > 0;
  }
  if (row_ + 1 >= result_->num_rows()) return false;
  ++row_;
  return true;
}

size_t RowCursor::num_columns() const {
  return result_ == nullptr ? 0 : result_->num_columns();
}

Result<Value> RowCursor::ColumnValue(size_t col) const {
  if (result_ == nullptr || !started_) {
    return Status::InvalidArgument("cursor is not positioned on a row");
  }
  return result_->GetValue(row_, col);
}

Result<int64_t> RowCursor::ColumnInt(size_t col) const {
  MLCS_ASSIGN_OR_RETURN(Value v, ColumnValue(col));
  return v.AsInt64();
}

Result<double> RowCursor::ColumnDouble(size_t col) const {
  MLCS_ASSIGN_OR_RETURN(Value v, ColumnValue(col));
  return v.AsDouble();
}

Result<std::string> RowCursor::ColumnText(size_t col) const {
  MLCS_ASSIGN_OR_RETURN(Value v, ColumnValue(col));
  return v.AsString();
}

Result<bool> RowCursor::ColumnIsNull(size_t col) const {
  MLCS_ASSIGN_OR_RETURN(Value v, ColumnValue(col));
  return v.is_null();
}

Result<TablePtr> FetchAllRowAtATime(Database* db, const std::string& sql) {
  RowCursor cursor;
  MLCS_RETURN_IF_ERROR(cursor.Prepare(db, sql));
  auto out = Table::Make(cursor.schema());
  std::vector<Value> row(cursor.num_columns());
  while (cursor.Step()) {
    for (size_t c = 0; c < cursor.num_columns(); ++c) {
      MLCS_ASSIGN_OR_RETURN(row[c], cursor.ColumnValue(c));
    }
    MLCS_RETURN_IF_ERROR(out->AppendRow(row));
  }
  return out;
}

}  // namespace mlcs::client
