#include "client/net_util.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>

namespace mlcs::client::net {

bool ReadExact(int fd, void* buffer, size_t size) {
  uint8_t* p = static_cast<uint8_t*>(buffer);
  size_t got = 0;
  while (got < size) {
    ssize_t n = ::recv(fd, p + got, size - got, 0);
    if (n == 0) return false;  // orderly shutdown
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    got += static_cast<size_t>(n);
  }
  return true;
}

bool WriteAll(int fd, const void* buffer, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(buffer);
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd, p + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace mlcs::client::net
