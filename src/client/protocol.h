#ifndef MLCS_CLIENT_PROTOCOL_H_
#define MLCS_CLIENT_PROTOCOL_H_

#include "common/byte_buffer.h"
#include "common/result.h"
#include "storage/table.h"

namespace mlcs::client {

/// Row-major result-set wire formats modeling the client protocols the
/// paper benchmarks against (§4, citing "Don't Hold My Data Hostage"):
///
///  - kPgText:    PostgreSQL-style — every value rendered as ASCII text
///                with a 4-byte per-field length prefix. Pays printf on
///                the server and strtol/strtod on the client, per cell.
///  - kMyBinary:  MySQL-style binary rows — per-row NULL bitmap + fixed
///                width little-endian values / length-prefixed strings.
///                Cheaper per cell but still row-major: the client must
///                transpose rows back into columns.
///  - kColumnar:  one block per result set; within it every column's
///                values are contiguous, so fixed-width no-null columns
///                encode and decode as a single memcpy. This is the wire
///                form of the column store itself — the protocol the
///                serving path (src/serve/) speaks.
///
/// The contrast between the row-major pair and the in-database path
/// (zero-copy column handoff to the UDF) is exactly Figure 1's "socket"
/// bars; kColumnar shows how close a socket protocol can get when it
/// stops fighting the storage layout.
enum class WireProtocol : uint8_t { kPgText = 0, kMyBinary = 1, kColumnar = 2 };

const char* WireProtocolToString(WireProtocol protocol);

/// Observability verbs (DESIGN.md §15), carried in the protocol byte of
/// the TableServer request framing. The "SQL" payload repurposes: empty
/// for kVerbPrometheus, the decimal trace id (0 = all retained) for
/// kVerbChromeTrace. The response is the usual u8 ok-flag followed by one
/// length-prefixed string — the export text — instead of a result set.
inline constexpr uint8_t kVerbPrometheus = 0xF0;
inline constexpr uint8_t kVerbChromeTrace = 0xF1;

/// Result-set header: column names and types.
void EncodeHeader(const Schema& schema, ByteWriter* out);
Result<Schema> DecodeHeader(ByteReader* in);

/// Encodes rows [begin, begin+count) of `table`, one 'D' message per row.
Status EncodeRows(const Table& table, WireProtocol protocol, size_t begin,
                  size_t count, ByteWriter* out);

/// Terminator after all rows.
void EncodeEnd(ByteWriter* out);

/// Decodes a full result set (header + rows + end marker) into a table,
/// converting every cell — the client-side share of the protocol cost.
Result<TablePtr> DecodeResultSet(ByteReader* in, WireProtocol protocol);

}  // namespace mlcs::client

#endif  // MLCS_CLIENT_PROTOCOL_H_
