#include "client/protocol.h"

#include "common/string_util.h"

namespace mlcs::client {

namespace {
constexpr uint8_t kRowMarker = 'D';
constexpr uint8_t kEndMarker = 'C';
constexpr uint8_t kBlockMarker = 'B';
/// Allocation guard for columnar block decode: a block declaring more rows
/// than this is rejected before any buffer is sized from the wire value.
constexpr uint32_t kMaxBlockRows = 1u << 26;

/// Encodes rows [begin, end) of one column as a contiguous run: u8
/// has-nulls flag, then either packed non-null values behind a null bitmap
/// (bit set = NULL, same convention as the mysql-binary row bitmap) or the
/// raw value run. Fixed-width no-null columns go out as one WriteRaw.
void EncodeColumnRun(const Column& col, size_t begin, size_t end,
                     ByteWriter* out) {
  size_t count = end - begin;
  bool any_null = false;
  if (col.has_nulls()) {
    for (size_t r = begin; r < end && !any_null; ++r) {
      any_null = col.IsNull(r);
    }
  }
  out->WriteU8(any_null ? 1 : 0);
  if (any_null) {
    std::vector<uint8_t> bitmap((count + 7) / 8, 0);
    for (size_t r = begin; r < end; ++r) {
      size_t i = r - begin;
      if (col.IsNull(r)) bitmap[i / 8] |= (1u << (i % 8));
    }
    out->WriteRaw(bitmap.data(), bitmap.size());
  }
  switch (col.type()) {
    case TypeId::kBool:
      if (!any_null) {
        out->WriteRaw(col.bool_data().data() + begin, count);
      } else {
        for (size_t r = begin; r < end; ++r) {
          if (!col.IsNull(r)) out->WriteU8(col.bool_data()[r]);
        }
      }
      break;
    case TypeId::kInt32:
      if (!any_null) {
        out->WriteRaw(col.i32_data().data() + begin,
                      count * sizeof(int32_t));
      } else {
        for (size_t r = begin; r < end; ++r) {
          if (!col.IsNull(r)) out->WriteI32(col.i32_data()[r]);
        }
      }
      break;
    case TypeId::kInt64:
      if (!any_null) {
        out->WriteRaw(col.i64_data().data() + begin,
                      count * sizeof(int64_t));
      } else {
        for (size_t r = begin; r < end; ++r) {
          if (!col.IsNull(r)) out->WriteI64(col.i64_data()[r]);
        }
      }
      break;
    case TypeId::kDouble:
      if (!any_null) {
        out->WriteRaw(col.f64_data().data() + begin,
                      count * sizeof(double));
      } else {
        for (size_t r = begin; r < end; ++r) {
          if (!col.IsNull(r)) out->WriteDouble(col.f64_data()[r]);
        }
      }
      break;
    case TypeId::kVarchar:
    case TypeId::kBlob:
      for (size_t r = begin; r < end; ++r) {
        if (!col.IsNull(r)) out->WriteString(col.str_data()[r]);
      }
      break;
  }
}

/// Bulk-reads `count` fixed-width values straight into the column's
/// backing vector. Only valid when the column has no validity vector yet
/// (all prior rows valid) — appending raw values keeps it all-valid.
template <typename V>
Status BulkReadInto(std::vector<V>& data, size_t count, ByteReader* in) {
  if (in->remaining() < count * sizeof(V)) {
    return Status::OutOfRange("truncated columnar value run");
  }
  size_t old = data.size();
  data.resize(old + count);
  return in->ReadRaw(data.data() + old, count * sizeof(V));
}

/// Per-value decode of one column run (bitmap form, or a column that
/// already carries nulls from an earlier block).
Status DecodeColumnRun(Column* col, size_t count, bool any_null,
                       ByteReader* in) {
  std::vector<uint8_t> bitmap;
  if (any_null) {
    bitmap.resize((count + 7) / 8);
    MLCS_RETURN_IF_ERROR(in->ReadRaw(bitmap.data(), bitmap.size()));
  }
  // Fast path: no nulls on the wire and none accumulated in the column —
  // fixed-width values land with a single ReadRaw.
  if (!any_null && !col->has_nulls()) {
    switch (col->type()) {
      case TypeId::kBool:
        return BulkReadInto(col->bool_data(), count, in);
      case TypeId::kInt32:
        return BulkReadInto(col->i32_data(), count, in);
      case TypeId::kInt64:
        return BulkReadInto(col->i64_data(), count, in);
      case TypeId::kDouble:
        return BulkReadInto(col->f64_data(), count, in);
      case TypeId::kVarchar:
      case TypeId::kBlob:
        for (size_t i = 0; i < count; ++i) {
          MLCS_ASSIGN_OR_RETURN(std::string s, in->ReadString());
          col->AppendString(std::move(s));
        }
        return Status::OK();
    }
    return Status::ParseError("bad column type in columnar block");
  }
  for (size_t i = 0; i < count; ++i) {
    if (any_null && (bitmap[i / 8] & (1u << (i % 8)))) {
      col->AppendNull();
      continue;
    }
    switch (col->type()) {
      case TypeId::kBool: {
        MLCS_ASSIGN_OR_RETURN(uint8_t v, in->ReadU8());
        col->AppendBool(v != 0);
        break;
      }
      case TypeId::kInt32: {
        MLCS_ASSIGN_OR_RETURN(int32_t v, in->ReadI32());
        col->AppendInt32(v);
        break;
      }
      case TypeId::kInt64: {
        MLCS_ASSIGN_OR_RETURN(int64_t v, in->ReadI64());
        col->AppendInt64(v);
        break;
      }
      case TypeId::kDouble: {
        MLCS_ASSIGN_OR_RETURN(double v, in->ReadDouble());
        col->AppendDouble(v);
        break;
      }
      case TypeId::kVarchar:
      case TypeId::kBlob: {
        MLCS_ASSIGN_OR_RETURN(std::string s, in->ReadString());
        col->AppendString(std::move(s));
        break;
      }
    }
  }
  return Status::OK();
}
}  // namespace

const char* WireProtocolToString(WireProtocol protocol) {
  switch (protocol) {
    case WireProtocol::kPgText:
      return "pg-text";
    case WireProtocol::kMyBinary:
      return "mysql-binary";
    case WireProtocol::kColumnar:
      return "columnar";
  }
  return "?";
}

void EncodeHeader(const Schema& schema, ByteWriter* out) {
  out->WriteU16(static_cast<uint16_t>(schema.num_fields()));
  for (const auto& field : schema.fields()) {
    out->WriteString(field.name);
    out->WriteU8(static_cast<uint8_t>(field.type));
  }
}

Result<Schema> DecodeHeader(ByteReader* in) {
  MLCS_ASSIGN_OR_RETURN(uint16_t ncols, in->ReadU16());
  Schema schema;
  for (uint16_t c = 0; c < ncols; ++c) {
    MLCS_ASSIGN_OR_RETURN(std::string name, in->ReadString());
    MLCS_ASSIGN_OR_RETURN(uint8_t type_byte, in->ReadU8());
    if (type_byte > static_cast<uint8_t>(TypeId::kBlob)) {
      return Status::ParseError("bad type tag in result header");
    }
    schema.AddField(std::move(name), static_cast<TypeId>(type_byte));
  }
  return schema;
}

Status EncodeRows(const Table& table, WireProtocol protocol, size_t begin,
                  size_t count, ByteWriter* out) {
  size_t end = begin + count;
  if (end > table.num_rows()) {
    return Status::OutOfRange("row range exceeds table");
  }
  size_t ncols = table.num_columns();
  if (protocol == WireProtocol::kColumnar) {
    // The whole range goes out as one column-major block: no per-row
    // marker, no per-row bitmap, values of each column contiguous.
    out->WriteU8(kBlockMarker);
    out->WriteU32(static_cast<uint32_t>(count));
    for (size_t c = 0; c < ncols; ++c) {
      EncodeColumnRun(*table.column(c), begin, end, out);
    }
    return Status::OK();
  }
  for (size_t r = begin; r < end; ++r) {
    out->WriteU8(kRowMarker);
    if (protocol == WireProtocol::kPgText) {
      // Every value as length-prefixed text; -1 length marks NULL.
      for (size_t c = 0; c < ncols; ++c) {
        const Column& col = *table.column(c);
        if (col.IsNull(r)) {
          out->WriteI32(-1);
          continue;
        }
        std::string text;
        switch (col.type()) {
          case TypeId::kBool:
            text.assign(1, col.bool_data()[r] != 0 ? 't' : 'f');
            break;
          case TypeId::kInt32:
            text = std::to_string(col.i32_data()[r]);
            break;
          case TypeId::kInt64:
            text = std::to_string(col.i64_data()[r]);
            break;
          case TypeId::kDouble:
            text = FormatDouble(col.f64_data()[r]);
            break;
          case TypeId::kVarchar:
          case TypeId::kBlob:
            text = col.str_data()[r];
            break;
        }
        out->WriteI32(static_cast<int32_t>(text.size()));
        out->WriteRaw(text.data(), text.size());
      }
    } else {
      // Binary: NULL bitmap then packed values.
      size_t bitmap_bytes = (ncols + 7) / 8;
      std::vector<uint8_t> bitmap(bitmap_bytes, 0);
      for (size_t c = 0; c < ncols; ++c) {
        if (table.column(c)->IsNull(r)) bitmap[c / 8] |= (1u << (c % 8));
      }
      out->WriteRaw(bitmap.data(), bitmap.size());
      for (size_t c = 0; c < ncols; ++c) {
        const Column& col = *table.column(c);
        if (col.IsNull(r)) continue;
        switch (col.type()) {
          case TypeId::kBool:
            out->WriteU8(col.bool_data()[r]);
            break;
          case TypeId::kInt32:
            out->WriteI32(col.i32_data()[r]);
            break;
          case TypeId::kInt64:
            out->WriteI64(col.i64_data()[r]);
            break;
          case TypeId::kDouble:
            out->WriteDouble(col.f64_data()[r]);
            break;
          case TypeId::kVarchar:
          case TypeId::kBlob:
            out->WriteString(col.str_data()[r]);
            break;
        }
      }
    }
  }
  return Status::OK();
}

void EncodeEnd(ByteWriter* out) { out->WriteU8(kEndMarker); }

Result<TablePtr> DecodeResultSet(ByteReader* in, WireProtocol protocol) {
  MLCS_ASSIGN_OR_RETURN(Schema schema, DecodeHeader(in));
  auto table = Table::Make(schema);
  size_t ncols = schema.num_fields();
  while (true) {
    MLCS_ASSIGN_OR_RETURN(uint8_t marker, in->ReadU8());
    if (marker == kEndMarker) break;
    if (protocol == WireProtocol::kColumnar) {
      if (marker != kBlockMarker) {
        return Status::ParseError("unexpected message marker " +
                                  std::to_string(marker));
      }
      MLCS_ASSIGN_OR_RETURN(uint32_t count, in->ReadU32());
      if (count > kMaxBlockRows) {
        return Status::ParseError("columnar block declares " +
                                  std::to_string(count) +
                                  " rows, above the block cap");
      }
      for (size_t c = 0; c < ncols; ++c) {
        MLCS_ASSIGN_OR_RETURN(uint8_t any_null, in->ReadU8());
        if (any_null > 1) {
          return Status::ParseError("bad null flag in columnar block");
        }
        MLCS_RETURN_IF_ERROR(DecodeColumnRun(table->column(c).get(), count,
                                             any_null != 0, in));
      }
      continue;
    }
    if (marker != kRowMarker) {
      return Status::ParseError("unexpected message marker " +
                                std::to_string(marker));
    }
    if (protocol == WireProtocol::kPgText) {
      for (size_t c = 0; c < ncols; ++c) {
        Column* col = table->column(c).get();
        MLCS_ASSIGN_OR_RETURN(int32_t len, in->ReadI32());
        if (len < 0) {
          col->AppendNull();
          continue;
        }
        std::string text(static_cast<size_t>(len), '\0');
        MLCS_RETURN_IF_ERROR(in->ReadRaw(text.data(), text.size()));
        // Client-side conversion: text → native value (the per-cell parse
        // cost the paper's PostgreSQL/MySQL bars pay).
        switch (col->type()) {
          case TypeId::kBool:
            col->AppendBool(text == "t" || text == "true");
            break;
          case TypeId::kInt32: {
            MLCS_ASSIGN_OR_RETURN(int32_t v, ParseInt32(text));
            col->AppendInt32(v);
            break;
          }
          case TypeId::kInt64: {
            MLCS_ASSIGN_OR_RETURN(int64_t v, ParseInt64(text));
            col->AppendInt64(v);
            break;
          }
          case TypeId::kDouble: {
            MLCS_ASSIGN_OR_RETURN(double v, ParseDouble(text));
            col->AppendDouble(v);
            break;
          }
          case TypeId::kVarchar:
          case TypeId::kBlob:
            col->AppendString(std::move(text));
            break;
        }
      }
    } else {
      size_t bitmap_bytes = (ncols + 7) / 8;
      std::vector<uint8_t> bitmap(bitmap_bytes);
      MLCS_RETURN_IF_ERROR(in->ReadRaw(bitmap.data(), bitmap.size()));
      for (size_t c = 0; c < ncols; ++c) {
        Column* col = table->column(c).get();
        if (bitmap[c / 8] & (1u << (c % 8))) {
          col->AppendNull();
          continue;
        }
        switch (col->type()) {
          case TypeId::kBool: {
            MLCS_ASSIGN_OR_RETURN(uint8_t v, in->ReadU8());
            col->AppendBool(v != 0);
            break;
          }
          case TypeId::kInt32: {
            MLCS_ASSIGN_OR_RETURN(int32_t v, in->ReadI32());
            col->AppendInt32(v);
            break;
          }
          case TypeId::kInt64: {
            MLCS_ASSIGN_OR_RETURN(int64_t v, in->ReadI64());
            col->AppendInt64(v);
            break;
          }
          case TypeId::kDouble: {
            MLCS_ASSIGN_OR_RETURN(double v, in->ReadDouble());
            col->AppendDouble(v);
            break;
          }
          case TypeId::kVarchar:
          case TypeId::kBlob: {
            MLCS_ASSIGN_OR_RETURN(std::string s, in->ReadString());
            col->AppendString(std::move(s));
            break;
          }
        }
      }
    }
  }
  return table;
}

}  // namespace mlcs::client
