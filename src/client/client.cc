#include "client/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "client/net_util.h"

namespace mlcs::client {

TableClient::~TableClient() { Disconnect(); }

Status TableClient::Connect(const std::string& host, uint16_t port) {
  Disconnect();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::NetworkError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Disconnect();
    return Status::InvalidArgument("bad host address '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status st = Status::NetworkError("connect() failed: " +
                                     std::string(std::strerror(errno)));
    Disconnect();
    return st;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

void TableClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<TablePtr> TableClient::Query(const std::string& sql,
                                    WireProtocol protocol) {
  if (fd_ < 0) return Status::NetworkError("not connected");
  uint8_t protocol_byte = static_cast<uint8_t>(protocol);
  uint32_t sql_len = static_cast<uint32_t>(sql.size());
  if (!net::WriteAll(fd_, &protocol_byte, 1) ||
      !net::WriteAll(fd_, &sql_len, sizeof(sql_len)) ||
      !net::WriteAll(fd_, sql.data(), sql.size())) {
    return Status::NetworkError("failed to send query");
  }
  uint64_t frame_len = 0;
  if (!net::ReadExact(fd_, &frame_len, sizeof(frame_len))) {
    return Status::NetworkError("connection closed while reading response");
  }
  std::vector<uint8_t> frame(frame_len);
  if (!net::ReadExact(fd_, frame.data(), frame.size())) {
    return Status::NetworkError("truncated response frame");
  }
  last_response_bytes_ = frame.size();
  ByteReader reader(frame);
  MLCS_ASSIGN_OR_RETURN(uint8_t ok_flag, reader.ReadU8());
  if (ok_flag != 0) {
    MLCS_ASSIGN_OR_RETURN(std::string message, reader.ReadString());
    return Status::NetworkError("server error: " + message);
  }
  return DecodeResultSet(&reader, protocol);
}

Result<std::string> TableClient::FetchExport(uint8_t verb,
                                             const std::string& payload) {
  if (fd_ < 0) return Status::NetworkError("not connected");
  uint32_t payload_len = static_cast<uint32_t>(payload.size());
  if (!net::WriteAll(fd_, &verb, 1) ||
      !net::WriteAll(fd_, &payload_len, sizeof(payload_len)) ||
      !net::WriteAll(fd_, payload.data(), payload.size())) {
    return Status::NetworkError("failed to send export request");
  }
  uint64_t frame_len = 0;
  if (!net::ReadExact(fd_, &frame_len, sizeof(frame_len))) {
    return Status::NetworkError("connection closed while reading export");
  }
  std::vector<uint8_t> frame(frame_len);
  if (!net::ReadExact(fd_, frame.data(), frame.size())) {
    return Status::NetworkError("truncated export frame");
  }
  last_response_bytes_ = frame.size();
  ByteReader reader(frame);
  MLCS_ASSIGN_OR_RETURN(uint8_t ok_flag, reader.ReadU8());
  MLCS_ASSIGN_OR_RETURN(std::string text, reader.ReadString());
  if (ok_flag != 0) return Status::NetworkError("server error: " + text);
  return text;
}

Result<std::string> TableClient::FetchMetricsText() {
  return FetchExport(kVerbPrometheus, "");
}

Result<std::string> TableClient::FetchChromeTrace(uint64_t trace_id) {
  return FetchExport(kVerbChromeTrace, std::to_string(trace_id));
}

}  // namespace mlcs::client
