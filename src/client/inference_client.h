#ifndef MLCS_CLIENT_INFERENCE_CLIENT_H_
#define MLCS_CLIENT_INFERENCE_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "ml/matrix.h"
#include "serve/serve_protocol.h"

namespace mlcs::client {

struct InferenceCallOptions {
  /// Wire layout for the feature payload (see serve::Layout).
  serve::Layout layout = serve::Layout::kColumnar;
  /// Server-side deadline in milliseconds; 0 disables it.
  uint32_t deadline_ms = 0;
};

/// TCP client for serve::InferenceServer. The protocol is fully pipelined:
/// Send() can be called repeatedly without waiting, and Receive() collects
/// responses in whatever order the server finishes them (the request_id
/// correlates the two) — that pipelining is what gives the server's
/// micro-batcher concurrent requests to coalesce.
class InferenceClient {
 public:
  InferenceClient() = default;
  ~InferenceClient();

  InferenceClient(const InferenceClient&) = delete;
  InferenceClient& operator=(const InferenceClient&) = delete;

  Status Connect(const std::string& host, uint16_t port);
  void Disconnect();
  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Ships one predict request without waiting for the response; returns
  /// the request id Receive()'s response will carry.
  Result<uint64_t> Send(const std::string& model_name,
                        const ml::Matrix& features,
                        const InferenceCallOptions& options = {});

  /// Blocks for the next response frame, whichever request it answers.
  Result<serve::PredictResponse> Receive();

  /// Send + receive-until-matching-id. Out-of-order responses for *other*
  /// ids are an error here — Call() is for strictly serial use; pipelined
  /// callers pair Send() with their own Receive() loop.
  Result<serve::PredictResponse> Call(
      const std::string& model_name, const ml::Matrix& features,
      const InferenceCallOptions& options = {});

  /// Call(), then either the labels or the response code as a Status.
  Result<std::vector<int32_t>> Predict(
      const std::string& model_name, const ml::Matrix& features,
      const InferenceCallOptions& options = {});

  /// Observability sideband (serial use, like Call): a Prometheus text
  /// snapshot of the server's metrics registry, or the Chrome trace_event
  /// JSON of one recorded trace (0 = every retained trace).
  Result<std::string> FetchMetricsText();
  Result<std::string> FetchChromeTrace(uint64_t trace_id);

 private:
  int fd_ = -1;
  uint64_t next_request_id_ = 1;
};

}  // namespace mlcs::client

#endif  // MLCS_CLIENT_INFERENCE_CLIENT_H_
