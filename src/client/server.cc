#include "client/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>

#include "client/net_util.h"
#include "common/logging.h"
#include "obs/export.h"

namespace mlcs::client {

TableServer::~TableServer() { Stop(); }

Status TableServer::Start(uint16_t port) {
  if (running_.load()) return Status::InvalidArgument("already running");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::NetworkError("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::NetworkError("bind() failed: " +
                                std::string(std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::NetworkError("getsockname() failed");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, SOMAXCONN) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::NetworkError("listen() failed: " +
                                std::string(std::strerror(errno)));
  }
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TableServer::Stop() {
  if (!running_.exchange(false)) return;
  // Claim the fd atomically: AcceptLoop reads listen_fd_ concurrently, so
  // the swap (not a plain write) is what makes the close race-free.
  // Closing the listen socket unblocks accept().
  int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Join every connection thread. An active thread's list node must stay
  // in place until the thread itself moves it to finished_threads_ (it
  // holds an iterator to it), so only the handle is taken here; joining an
  // active handle also guarantees its node reached finished_threads_,
  // where the next iteration discards it.
  while (true) {
    std::thread victim;
    {
      MutexLock lock(&threads_mutex_);
      if (!finished_threads_.empty()) {
        victim = std::move(finished_threads_.front());
        finished_threads_.pop_front();
      } else if (!active_threads_.empty()) {
        victim = std::move(active_threads_.front());
      } else {
        break;
      }
    }
    if (victim.joinable()) victim.join();
  }
}

size_t TableServer::tracked_connection_threads() const {
  MutexLock lock(&threads_mutex_);
  return active_threads_.size() + finished_threads_.size();
}

void TableServer::ReapFinishedLocked(std::list<std::thread>* out)
    MLCS_REQUIRES(threads_mutex_) {
  out->splice(out->end(), finished_threads_);
}

void TableServer::AcceptLoop() {
  while (running_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (running_.load()) {
        MLCS_LOG(kWarn) << "accept() failed: " << std::strerror(errno);
      }
      break;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::list<std::thread> to_join;
    {
      MutexLock lock(&threads_mutex_);
      ReapFinishedLocked(&to_join);
      auto it = active_threads_.emplace(active_threads_.end());
      // The assignment happens under the lock: the new thread's first act
      // is to take the same lock, so it cannot touch its node before the
      // handle has landed in it.
      *it = std::thread([this, fd, it] {
        ServeConnection(fd);
        std::list<std::thread> finished;
        {
          MutexLock inner(&threads_mutex_);
          ReapFinishedLocked(&finished);
          finished_threads_.splice(finished_threads_.end(), active_threads_,
                                   it);
        }
        // Join peers that finished before us — never ourselves; our own
        // node was just moved to finished_threads_ for a later reaper.
        for (auto& t : finished) {
          if (t.joinable()) t.join();
        }
      });
    }
    for (auto& t : to_join) {
      if (t.joinable()) t.join();
    }
  }
}

void TableServer::ServeConnection(int fd) {
  while (running_.load()) {
    uint8_t protocol_byte = 0;
    if (!net::ReadExact(fd, &protocol_byte, 1)) break;  // client gone
    uint32_t sql_len = 0;
    if (!net::ReadExact(fd, &sql_len, sizeof(sql_len))) break;
    if (sql_len > (64u << 20)) {
      // Refuse absurd frames, but tell the client why before hanging up
      // instead of silently dropping the connection.
      ByteWriter error;
      error.WriteU8(1);
      error.WriteString("query of " + std::to_string(sql_len) +
                        " bytes exceeds the frame cap");
      uint64_t frame_len = error.size();
      if (net::WriteAll(fd, &frame_len, sizeof(frame_len))) {
        bool sent = net::WriteAll(fd, error.data().data(), error.size());
        (void)sent;
      }
      break;
    }
    std::string sql(sql_len, '\0');
    if (!net::ReadExact(fd, sql.data(), sql.size())) break;

    if (protocol_byte == kVerbPrometheus ||
        protocol_byte == kVerbChromeTrace) {
      // Observability verbs bypass SQL entirely: the payload is empty
      // (Prometheus) or a decimal trace id (Chrome trace).
      ByteWriter response;
      response.WriteU8(0);
      if (protocol_byte == kVerbPrometheus) {
        response.WriteString(obs::PrometheusText());
      } else {
        uint64_t trace_id = std::strtoull(sql.c_str(), nullptr, 10);
        response.WriteString(obs::ChromeTraceJson(trace_id));
      }
      uint64_t frame_len = response.size();
      if (!net::WriteAll(fd, &frame_len, sizeof(frame_len))) break;
      if (!net::WriteAll(fd, response.data().data(), response.size())) break;
      continue;
    }

    ByteWriter response;
    auto result = db_->Query(sql);
    if (!result.ok() ||
        protocol_byte > static_cast<uint8_t>(WireProtocol::kColumnar)) {
      response.WriteU8(1);
      response.WriteString(result.ok() ? "bad protocol"
                                       : result.status().ToString());
    } else {
      WireProtocol protocol = static_cast<WireProtocol>(protocol_byte);
      const Table& table = *result.ValueOrDie();
      response.WriteU8(0);
      EncodeHeader(table.schema(), &response);
      Status encoded =
          EncodeRows(table, protocol, 0, table.num_rows(), &response);
      if (!encoded.ok()) {
        ByteWriter error;
        error.WriteU8(1);
        error.WriteString(encoded.ToString());
        response = std::move(error);
      } else {
        EncodeEnd(&response);
      }
    }
    uint64_t frame_len = response.size();
    if (!net::WriteAll(fd, &frame_len, sizeof(frame_len))) break;
    if (!net::WriteAll(fd, response.data().data(), response.size())) break;
  }
  ::close(fd);
}

}  // namespace mlcs::client
