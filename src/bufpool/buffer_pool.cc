#include "bufpool/buffer_pool.h"

#include <chrono>
#include <cstdlib>
#include <utility>

#include "obs/wait_stats.h"

namespace mlcs::bufpool {

void PinnedChunk::Release() {
  // The liveness token expires with the pool: a pin released after a
  // private pool's teardown (tests/benches) must not touch freed memory.
  if (pool_ != nullptr && pool_alive_.lock() != nullptr) {
    pool_->Unpin(key_);
  }
  pool_ = nullptr;
}

PinnedChunk& PinnedChunk::operator=(PinnedChunk&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = std::exchange(other.pool_, nullptr);
    pool_alive_ = std::move(other.pool_alive_);
    key_ = std::move(other.key_);
    column_ = std::move(other.column_);
    hit_ = other.hit_;
  }
  return *this;
}

PinnedChunk::~PinnedChunk() { Release(); }

BufferPool::BufferPool(size_t byte_budget)
    : byte_budget_(byte_budget) {  // lint:allow(guarded-access) ctor warm-up
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  hits_ = registry.GetCounter("mlcs.bufpool.hits");
  misses_ = registry.GetCounter("mlcs.bufpool.misses");
  evictions_ = registry.GetCounter("mlcs.bufpool.evictions");
  bytes_read_ = registry.GetCounter("mlcs.bufpool.bytes_read");
  bytes_cached_gauge_ = registry.GetGauge("mlcs.bufpool.bytes_cached");
  pinned_bytes_gauge_ = registry.GetGauge("mlcs.bufpool.pinned_bytes");
  pinned_bytes_hw_gauge_ = registry.GetGauge("mlcs.bufpool.pinned_bytes_hw");
}

void BufferPool::NotePinnedDeltaLocked(int64_t delta) MLCS_REQUIRES(mutex_) {
  pinned_bytes_total_ = static_cast<size_t>(
      static_cast<int64_t>(pinned_bytes_total_) + delta);
  pinned_bytes_gauge_->Add(delta);
  if (delta > 0) {
    pinned_bytes_hw_gauge_->UpdateMax(
        static_cast<int64_t>(pinned_bytes_total_));
  }
}

Result<PinnedChunk> BufferPool::Fetch(const std::string& key,
                                      const ChunkLoader& load) {
  {
    MutexLock lock(&mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      hits_->Add(1);
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      if (++it->second.pins == 1) {
        NotePinnedDeltaLocked(static_cast<int64_t>(it->second.bytes));
      }
      return PinnedChunk(this, liveness_, key, it->second.column,
                         /*hit=*/true);
    }
  }
  // Miss: load outside the lock — disk I/O must not serialize unrelated
  // scans. Two threads racing on the same key may both load; the loser's
  // copy is simply dropped below. The pin path is stalled on I/O for the
  // duration, which is exactly what `mlcs.wait.bufpool.load` attributes.
  misses_->Add(1);
  static obs::WaitSite* load_wait =
      obs::WaitStats::Global().GetSite(obs::WaitKind::kBufpool, "load");
  auto load_start = std::chrono::steady_clock::now();
  MLCS_ASSIGN_OR_RETURN(ColumnPtr column, load());
  load_wait->RecordWaitNs(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - load_start)
          .count()));
  if (column == nullptr) {
    return Status::Internal("buffer pool loader returned a null column");
  }
  size_t bytes = column->ByteSize();
  bytes_read_->Add(bytes);
  MutexLock lock(&mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // A concurrent loader beat us; pin its copy and drop ours.
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    if (++it->second.pins == 1) {
      NotePinnedDeltaLocked(static_cast<int64_t>(it->second.bytes));
    }
    return PinnedChunk(this, liveness_, key, it->second.column,
                       /*hit=*/false);
  }
  lru_.push_front(key);
  Entry entry;
  entry.column = column;
  entry.bytes = bytes;
  entry.pins = 1;
  entry.lru_pos = lru_.begin();
  entries_.emplace(key, std::move(entry));
  bytes_cached_total_ += bytes;
  bytes_cached_gauge_->Add(static_cast<int64_t>(bytes));
  NotePinnedDeltaLocked(static_cast<int64_t>(bytes));
  EvictToBudgetLocked();
  return PinnedChunk(this, liveness_, key, std::move(column),
                     /*hit=*/false);
}

void BufferPool::EvictToBudgetLocked() MLCS_REQUIRES(mutex_) {
  auto it = lru_.end();
  while (bytes_cached_total_ > byte_budget_ && it != lru_.begin()) {
    --it;
    auto eit = entries_.find(*it);
    if (eit->second.pins > 0) continue;  // pinned: skip, try the next-older
    bytes_cached_total_ -= eit->second.bytes;
    bytes_cached_gauge_->Add(-static_cast<int64_t>(eit->second.bytes));
    evictions_->Add(1);
    entries_.erase(eit);
    it = lru_.erase(it);
  }
}

void BufferPool::Unpin(const std::string& key) {
  MutexLock lock(&mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end() && it->second.pins > 0) {
    if (--it->second.pins == 0) {
      NotePinnedDeltaLocked(-static_cast<int64_t>(it->second.bytes));
    }
    // A pool over budget because everything was pinned shrinks as soon as
    // pins release.
    if (bytes_cached_total_ > byte_budget_) EvictToBudgetLocked();
  }
}

void BufferPool::Clear() {
  MutexLock lock(&mutex_);
  auto it = lru_.begin();
  while (it != lru_.end()) {
    auto eit = entries_.find(*it);
    if (eit->second.pins > 0) {
      ++it;
      continue;
    }
    bytes_cached_total_ -= eit->second.bytes;
    bytes_cached_gauge_->Add(-static_cast<int64_t>(eit->second.bytes));
    entries_.erase(eit);
    it = lru_.erase(it);
  }
}

void BufferPool::set_byte_budget(size_t bytes) {
  MutexLock lock(&mutex_);
  byte_budget_ = bytes;
  EvictToBudgetLocked();
}

size_t BufferPool::byte_budget() const {
  MutexLock lock(&mutex_);
  return byte_budget_;
}

size_t BufferPool::bytes_cached() const {
  MutexLock lock(&mutex_);
  return bytes_cached_total_;
}

size_t BufferPool::pinned_bytes() const {
  MutexLock lock(&mutex_);
  return pinned_bytes_total_;
}

size_t BufferPool::entry_count() const {
  MutexLock lock(&mutex_);
  return entries_.size();
}

bool BufferPool::Contains(const std::string& key) const {
  MutexLock lock(&mutex_);
  return entries_.count(key) > 0;
}

std::vector<std::string> BufferPool::KeysMruToLru() const {
  MutexLock lock(&mutex_);
  return {lru_.begin(), lru_.end()};
}

BufferPool& BufferPool::Global() {
  static BufferPool* pool = [] {
    size_t budget = kDefaultByteBudget;
    const char* env = std::getenv("MLCS_BUFFER_POOL_BYTES");
    if (env != nullptr && env[0] != '\0') {
      budget = static_cast<size_t>(std::strtoull(env, nullptr, 10));
    }
    return new BufferPool(budget);
  }();
  return *pool;
}

}  // namespace mlcs::bufpool
