#ifndef MLCS_BUFPOOL_STORED_TABLE_H_
#define MLCS_BUFPOOL_STORED_TABLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bufpool/block_format.h"
#include "bufpool/buffer_pool.h"
#include "bufpool/zone_map.h"
#include "common/result.h"
#include "storage/table.h"
#include "types/schema.h"

namespace mlcs::bufpool {

/// A table persisted as a directory of fixed-capacity row-group block
/// files plus a manifest:
///
///   <dir>/manifest.mlm    magic "1MLM", version, save generation, schema,
///                         block capacity, per-block row counts
///                         (crash-safe writes)
///   <dir>/block_NNNN.blk  row groups (block_format.h)
///
/// Open() reads the manifest and every block *header* — zone maps and
/// payload extents land in memory, payload bytes stay on disk — after
/// which the object is immutable, so concurrent scans need no lock of
/// their own; all shared mutable state lives in the BufferPool.
class StoredTable {
 public:
  static constexpr size_t kDefaultBlockRows = 4096;

  /// Flushes `table` into `dir` (created if missing): one .blk per
  /// `block_rows` rows, then the manifest. Every file goes through
  /// AtomicWriteFile, and the manifest is written last, so a crash
  /// mid-save leaves the previous manifest pointing at fully-written
  /// blocks. Stale higher-numbered blocks from an earlier, larger save
  /// are unlinked.
  static Status Write(const Table& table, const std::string& dir,
                      size_t block_rows = kDefaultBlockRows);

  /// Opens a directory Write produced. `pool` defaults to
  /// BufferPool::Global().
  static Result<std::shared_ptr<StoredTable>> Open(
      const std::string& dir, BufferPool* pool = nullptr);

  const Schema& schema() const { return schema_; }
  uint64_t num_rows() const { return num_rows_; }
  size_t num_blocks() const { return blocks_.size(); }
  const std::string& dir() const { return dir_; }
  /// Save generation from the manifest (strictly increasing per Write to
  /// the same dir); part of every buffer-pool chunk key so a rewrite of
  /// the same block paths never hits chunks cached from an earlier save.
  uint64_t generation() const { return generation_; }

  /// Per-scan observability, surfaced through Catalog::ScanOptions into
  /// EXPLAIN ANALYZE. Process-wide totals live on the metrics registry
  /// (mlcs.bufpool.*).
  struct ScanCounters {
    uint64_t blocks_total = 0;
    uint64_t blocks_read = 0;
    uint64_t blocks_skipped = 0;
    uint64_t pool_hits = 0;
    uint64_t pool_misses = 0;
    /// Chunk bytes actually handed to the query (skipped blocks excluded)
    /// — what Catalog adds to ScanBytesTouched for stored scans.
    uint64_t bytes_materialized = 0;
  };

  /// Receives one block's worth of rows. Returning a non-OK status aborts
  /// the scan and propagates the status to the ScanBlocks caller.
  using BlockEmit = std::function<Status(const TablePtr&)>;

  /// Streaming scan: pins each surviving block's chunks, hands the block
  /// to `emit` as a self-contained table, and unpins before moving to the
  /// next block — peak pool pin footprint is one block's projected
  /// columns, not the whole table (asserted against
  /// mlcs.bufpool.pinned_bytes_hw in tests). Emitted columns may be
  /// dictionary/RLE-encoded exactly as stored (decoded here only when
  /// encoding is globally disabled) and are shared with the buffer pool
  /// cache — callers must treat them as immutable.
  Status ScanBlocks(const std::optional<std::vector<std::string>>& columns,
                    const std::vector<ZonePredicate>& predicates,
                    ScanCounters* counters, const BlockEmit& emit) const;

  /// Materializes the requested columns (nullopt → all, in schema order),
  /// skipping any block whose zone maps prove no row can satisfy some
  /// predicate. Block payloads are fetched through the buffer pool.
  Result<TablePtr> Scan(const std::optional<std::vector<std::string>>& columns,
                        const std::vector<ZonePredicate>& predicates,
                        ScanCounters* counters = nullptr) const;

  /// Full materialization (catalog promotion on first write access).
  /// Decodes to plain columns: promoted tables are mutated in place by
  /// INSERT/UPDATE and read through raw accessors, both of which assume
  /// plain storage.
  Result<TablePtr> Materialize() const;

 private:
  StoredTable() = default;

  Result<std::vector<size_t>> ResolveProjection(
      const std::optional<std::vector<std::string>>& columns) const;

  // Immutable after Open (no mutex by design; see class comment).
  std::string dir_;
  Schema schema_;
  uint64_t generation_ = 0;
  uint64_t num_rows_ = 0;
  std::vector<BlockMeta> blocks_;
  BufferPool* pool_ = nullptr;
};

}  // namespace mlcs::bufpool

#endif  // MLCS_BUFPOOL_STORED_TABLE_H_
