#include "bufpool/zone_map.h"

#include <atomic>
#include <cmath>
#include <cstdlib>

namespace mlcs::bufpool {

namespace {

/// Largest integer magnitude a double represents exactly. Min/max stored
/// as int64 but compared against a double literal (or vice versa) beyond
/// this bound could round across the decision boundary, so ZoneAdmits
/// fails open there.
constexpr double kExactDoubleBound = 9007199254740992.0;  // 2^53

template <typename T>
bool AdmitRange(const T& lo, const T& hi, const T& v, ZoneOp op) {
  switch (op) {
    case ZoneOp::kEq:
      return lo <= v && v <= hi;
    case ZoneOp::kNe:
      // Only skippable when every non-null row equals the literal.
      return !(lo == v && hi == v);
    case ZoneOp::kLt:
      return lo < v;
    case ZoneOp::kLe:
      return lo <= v;
    case ZoneOp::kGt:
      return hi > v;
    case ZoneOp::kGe:
      return hi >= v;
  }
  return true;
}

bool IsIntegral(TypeId t) {
  return t == TypeId::kBool || t == TypeId::kInt32 || t == TypeId::kInt64;
}

int64_t IntOf(const Value& v) {
  switch (v.type()) {
    case TypeId::kBool:
      return v.bool_value() ? 1 : 0;
    case TypeId::kInt32:
      return v.int32_value();
    default:
      return v.int64_value();
  }
}

double DoubleOf(const Value& v) {
  return v.type() == TypeId::kDouble ? v.double_value()
                                     : static_cast<double>(IntOf(v));
}

std::atomic<int>& SkipState() {
  static std::atomic<int> state([] {
    const char* env = std::getenv("MLCS_DISABLE_ZONEMAPS");
    return (env != nullptr && env[0] != '\0') ? 0 : 1;
  }());
  return state;
}

}  // namespace

ZoneMap ComputeZoneMap(const Column& column) {
  ZoneMap zone;
  zone.null_count = column.null_count();
  size_t n = column.size();
  if (column.type() == TypeId::kBlob || zone.null_count >= n) {
    return zone;  // unsummarizable payload or no non-null values
  }
  if (column.encoding() == ColumnEncoding::kDict) {
    // Zone over DECODED values: code order need not be value order (the
    // dictionary may be unsorted), so min/max come from the dictionary
    // entries actually referenced by this block's non-null rows — exact
    // per block even when blocks share a dictionary.
    const auto& codes = column.codes();
    std::vector<uint8_t> used(column.dict()->size(), 0);
    for (size_t i = 0; i < n; ++i) {
      if (!column.IsNull(i)) used[codes[i]] = 1;
    }
    std::vector<uint32_t> sel;
    for (size_t e = 0; e < used.size(); ++e) {
      if (used[e] != 0) sel.push_back(static_cast<uint32_t>(e));
    }
    ZoneMap z = ComputeZoneMap(*column.dict()->Take(sel));
    z.null_count = zone.null_count;
    return z;
  }
  if (column.encoding() == ColumnEncoding::kRle) {
    if (!column.has_nulls()) {
      // Every run value is a real row value: the per-run min/max is the
      // per-row min/max at O(runs) cost.
      return ComputeZoneMap(*column.run_values());
    }
    return ComputeZoneMap(*column.Decode());
  }
  switch (column.type()) {
    case TypeId::kBool: {
      uint8_t lo = 1, hi = 0;
      const auto& data = column.bool_data();
      for (size_t i = 0; i < n; ++i) {
        if (column.IsNull(i)) continue;
        uint8_t v = data[i] != 0 ? 1 : 0;
        if (v < lo) lo = v;
        if (v > hi) hi = v;
      }
      zone.min = Value::Bool(lo != 0);
      zone.max = Value::Bool(hi != 0);
      break;
    }
    case TypeId::kInt32: {
      const auto& data = column.i32_data();
      bool first = true;
      int32_t lo = 0, hi = 0;
      for (size_t i = 0; i < n; ++i) {
        if (column.IsNull(i)) continue;
        if (first || data[i] < lo) lo = data[i];
        if (first || data[i] > hi) hi = data[i];
        first = false;
      }
      zone.min = Value::Int32(lo);
      zone.max = Value::Int32(hi);
      break;
    }
    case TypeId::kInt64: {
      const auto& data = column.i64_data();
      bool first = true;
      int64_t lo = 0, hi = 0;
      for (size_t i = 0; i < n; ++i) {
        if (column.IsNull(i)) continue;
        if (first || data[i] < lo) lo = data[i];
        if (first || data[i] > hi) hi = data[i];
        first = false;
      }
      zone.min = Value::Int64(lo);
      zone.max = Value::Int64(hi);
      break;
    }
    case TypeId::kDouble: {
      const auto& data = column.f64_data();
      bool first = true;
      double lo = 0, hi = 0;
      for (size_t i = 0; i < n; ++i) {
        if (column.IsNull(i)) continue;
        if (std::isnan(data[i])) return zone;  // NaN defeats ordering
        if (first || data[i] < lo) lo = data[i];
        if (first || data[i] > hi) hi = data[i];
        first = false;
      }
      zone.min = Value::Double(lo);
      zone.max = Value::Double(hi);
      break;
    }
    case TypeId::kVarchar: {
      const auto& data = column.str_data();
      const std::string* lo = nullptr;
      const std::string* hi = nullptr;
      for (size_t i = 0; i < n; ++i) {
        if (column.IsNull(i)) continue;
        if (lo == nullptr || data[i] < *lo) lo = &data[i];
        if (hi == nullptr || data[i] > *hi) hi = &data[i];
      }
      zone.min = Value::Varchar(*lo);
      zone.max = Value::Varchar(*hi);
      break;
    }
    case TypeId::kBlob:
      return zone;
  }
  zone.has_minmax = true;
  return zone;
}

bool ZoneAdmits(const ZoneMap& zone, uint64_t block_rows, ZoneOp op,
                const Value& literal) {
  if (literal.is_null()) return false;  // `x <op> NULL` is never TRUE
  if (zone.null_count >= block_rows) return false;  // every row is NULL
  if (!zone.has_minmax) return true;  // BLOB / NaN: nothing provable
  TypeId mt = zone.min.type();
  TypeId lt = literal.type();
  if (IsIntegral(mt) && IsIntegral(lt)) {
    return AdmitRange<int64_t>(IntOf(zone.min), IntOf(zone.max),
                               IntOf(literal), op);
  }
  bool numeric_zone = IsIntegral(mt) || mt == TypeId::kDouble;
  bool numeric_lit = IsIntegral(lt) || lt == TypeId::kDouble;
  if (numeric_zone && numeric_lit) {
    double lo = DoubleOf(zone.min);
    double hi = DoubleOf(zone.max);
    double v = DoubleOf(literal);
    if (std::isnan(v)) return true;
    if (std::fabs(lo) >= kExactDoubleBound ||
        std::fabs(hi) >= kExactDoubleBound ||
        std::fabs(v) >= kExactDoubleBound) {
      return true;  // rounding could flip the inequality
    }
    return AdmitRange<double>(lo, hi, v, op);
  }
  if (mt == TypeId::kVarchar && lt == TypeId::kVarchar) {
    return AdmitRange<std::string>(zone.min.string_value(),
                                   zone.max.string_value(),
                                   literal.string_value(), op);
  }
  return true;  // mixed string/numeric comparison: fail open
}

bool ZoneMapSkippingEnabled() {
  return SkipState().load(std::memory_order_relaxed) != 0;
}

void SetZoneMapSkippingEnabled(bool enabled) {
  SkipState().store(enabled ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace mlcs::bufpool
