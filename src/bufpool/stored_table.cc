#include "bufpool/stored_table.h"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "common/byte_buffer.h"
#include "common/file_util.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "storage/encoding.h"

namespace mlcs::bufpool {

namespace {

constexpr uint32_t kManifestMagic = 0x4D4C4D31;  // "1MLM" on disk (LE)
// v2 adds the save generation (v1 manifests load with generation 0).
constexpr uint16_t kManifestVersion = 2;

/// Registry series for blocks proven irrelevant by zone maps; cached so
/// scans never take the registry lock.
obs::Counter* BlocksSkippedCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "mlcs.bufpool.blocks_skipped");
  return counter;
}

std::string BlockPath(const std::string& dir, size_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "block_%04zu.blk", index);
  return dir + "/" + name;
}

std::string ManifestPath(const std::string& dir) {
  return dir + "/manifest.mlm";
}

/// Best-effort read of the save generation recorded in `dir`'s current
/// manifest; 0 when there is none or it predates generations (v1).
uint64_t CurrentManifestGeneration(const std::string& dir) {
  Result<std::vector<uint8_t>> read = ReadFileBytes(ManifestPath(dir));
  if (!read.ok()) return 0;
  const std::vector<uint8_t>& bytes = read.ValueOrDie();
  ByteReader reader(bytes);
  Result<uint32_t> magic = reader.ReadU32();
  if (!magic.ok() || magic.ValueOrDie() != kManifestMagic) return 0;
  Result<uint16_t> version = reader.ReadU16();
  if (!version.ok() || version.ValueOrDie() < 2) return 0;
  Result<uint64_t> generation = reader.ReadU64();
  return generation.ok() ? generation.ValueOrDie() : 0;
}

/// Issues a generation strictly greater than both `prev_on_disk` and every
/// generation this process has handed out before. Buffer-pool chunk keys
/// embed the generation, so a rewrite of the same block paths can never
/// alias chunks cached from an earlier save — even if the directory (and
/// its manifest) was wiped out from under us between saves.
uint64_t NextSaveGeneration(uint64_t prev_on_disk) {
  static std::atomic<uint64_t> process_floor{0};
  uint64_t prev = process_floor.load(std::memory_order_relaxed);
  uint64_t next;
  do {
    next = std::max(prev, prev_on_disk) + 1;
  } while (!process_floor.compare_exchange_weak(prev, next,
                                                std::memory_order_relaxed));
  return next;
}

/// A predicate resolved against the stored schema.
struct ResolvedPredicate {
  size_t col_idx = 0;
  ZoneOp op = ZoneOp::kEq;
  const Value* literal = nullptr;
};

/// True when the zone maps prove no row of `block` can satisfy every
/// predicate (any single refuted conjunct suffices — conjuncts AND).
bool CanSkipBlock(const BlockMeta& block,
                  const std::vector<ResolvedPredicate>& predicates) {
  for (const ResolvedPredicate& p : predicates) {
    if (p.col_idx >= block.columns.size()) continue;  // fail open
    if (!ZoneAdmits(block.columns[p.col_idx].zone, block.rows, p.op,
                    *p.literal)) {
      return true;
    }
  }
  return false;
}

}  // namespace

Status StoredTable::Write(const Table& table, const std::string& dir,
                          size_t block_rows) {
  if (block_rows == 0) {
    return Status::InvalidArgument("StoredTable: block_rows must be > 0");
  }
  MLCS_RETURN_IF_ERROR(table.Validate());
  MLCS_RETURN_IF_ERROR(MakeDirs(dir));
  size_t rows = table.num_rows();
  size_t num_blocks = (rows + block_rows - 1) / block_rows;
  std::vector<uint64_t> block_row_counts;
  block_row_counts.reserve(num_blocks);
  for (size_t b = 0; b < num_blocks; ++b) {
    size_t offset = b * block_rows;
    size_t length = std::min(block_rows, rows - offset);
    TablePtr slice = table.SliceRows(offset, length);
    MLCS_RETURN_IF_ERROR(WriteBlockFile(*slice, BlockPath(dir, b)));
    block_row_counts.push_back(length);
  }
  ByteWriter manifest;
  manifest.WriteU32(kManifestMagic);
  manifest.WriteU16(kManifestVersion);
  manifest.WriteU64(NextSaveGeneration(CurrentManifestGeneration(dir)));
  table.schema().Serialize(&manifest);
  manifest.WriteVarint(block_rows);
  manifest.WriteVarint(num_blocks);
  for (uint64_t count : block_row_counts) manifest.WriteVarint(count);
  // Manifest last: a crash before this line leaves the old manifest (if
  // any) still pointing at fully-written old blocks.
  MLCS_RETURN_IF_ERROR(AtomicWriteFile(
      ManifestPath(dir), manifest.data().data(), manifest.size()));
  // A previous, larger save may have left higher-numbered blocks behind.
  for (size_t b = num_blocks; RemoveFileIfExists(BlockPath(dir, b)); ++b) {
  }
  return Status::OK();
}

Result<std::shared_ptr<StoredTable>> StoredTable::Open(
    const std::string& dir, BufferPool* pool) {
  MLCS_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                        ReadFileBytes(ManifestPath(dir)));
  ByteReader reader(bytes);
  MLCS_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kManifestMagic) {
    std::string path = ManifestPath(dir);
    return Status::ParseError("'" + path +
                              "' is not an mlcs table manifest");
  }
  MLCS_ASSIGN_OR_RETURN(uint16_t version, reader.ReadU16());
  if (version < 1 || version > kManifestVersion) {
    return Status::ParseError("unsupported manifest version " +
                              std::to_string(version));
  }
  auto stored = std::shared_ptr<StoredTable>(new StoredTable());
  stored->dir_ = dir;
  stored->pool_ = pool != nullptr ? pool : &BufferPool::Global();
  if (version >= 2) {
    MLCS_ASSIGN_OR_RETURN(stored->generation_, reader.ReadU64());
  }
  MLCS_ASSIGN_OR_RETURN(stored->schema_, Schema::Deserialize(&reader));
  MLCS_ASSIGN_OR_RETURN(uint64_t block_rows, reader.ReadVarint());
  (void)block_rows;
  MLCS_ASSIGN_OR_RETURN(uint64_t num_blocks, reader.ReadVarint());
  if (num_blocks > (1u << 24)) {
    return Status::ParseError("implausible block count in '" + dir + "'");
  }
  stored->blocks_.reserve(num_blocks);
  for (uint64_t b = 0; b < num_blocks; ++b) {
    MLCS_ASSIGN_OR_RETURN(uint64_t expected_rows, reader.ReadVarint());
    MLCS_ASSIGN_OR_RETURN(BlockMeta meta,
                          ReadBlockMeta(BlockPath(dir, b)));
    if (meta.rows != expected_rows ||
        meta.columns.size() != stored->schema_.num_fields()) {
      return Status::ParseError(
          "'" + meta.path + "' disagrees with the manifest (torn save?)");
    }
    stored->num_rows_ += meta.rows;
    stored->blocks_.push_back(std::move(meta));
  }
  return stored;
}

Result<std::vector<size_t>> StoredTable::ResolveProjection(
    const std::optional<std::vector<std::string>>& columns) const {
  // Mirrors SelectColumns: output order is request order, names stay as
  // stored.
  std::vector<size_t> indices;
  if (columns.has_value()) {
    indices.reserve(columns->size());
    for (const std::string& name : *columns) {
      MLCS_ASSIGN_OR_RETURN(size_t idx, schema_.RequireFieldIndex(name));
      indices.push_back(idx);
    }
  } else {
    indices.reserve(schema_.num_fields());
    for (size_t i = 0; i < schema_.num_fields(); ++i) indices.push_back(i);
  }
  return indices;
}

Status StoredTable::ScanBlocks(
    const std::optional<std::vector<std::string>>& columns,
    const std::vector<ZonePredicate>& predicates, ScanCounters* counters,
    const BlockEmit& emit) const {
  MLCS_ASSIGN_OR_RETURN(std::vector<size_t> indices,
                        ResolveProjection(columns));
  Schema out_schema;
  for (size_t idx : indices) {
    const Field& field = schema_.field(idx);
    out_schema.AddField(field.name, field.type);
  }
  // Resolve predicates by name; unknown columns are ignored (fail open).
  std::vector<ResolvedPredicate> resolved;
  if (ZoneMapSkippingEnabled()) {
    resolved.reserve(predicates.size());
    for (const ZonePredicate& p : predicates) {
      std::optional<size_t> idx = schema_.FieldIndex(p.column);
      if (!idx.has_value()) continue;
      resolved.push_back(ResolvedPredicate{*idx, p.op, &p.literal});
    }
  }
  ScanCounters local;
  ScanCounters& c = counters != nullptr ? *counters : local;
  for (const BlockMeta& block : blocks_) {
    ++c.blocks_total;
    if (!resolved.empty() && CanSkipBlock(block, resolved)) {
      ++c.blocks_skipped;
      BlocksSkippedCounter()->Add(1);
      continue;
    }
    ++c.blocks_read;
    std::vector<ColumnPtr> block_columns;
    block_columns.reserve(indices.size());
    for (size_t col_idx : indices) {
      // The save generation is part of the key: a rewrite of this block
      // path (SaveTo over an open directory) must miss, not serve chunks
      // cached from the previous save.
      std::string key = block.path;
      key += '@';
      key += std::to_string(generation_);
      key += '#';
      key += std::to_string(col_idx);
      MLCS_ASSIGN_OR_RETURN(
          PinnedChunk chunk,
          pool_->Fetch(key, [&block, col_idx]() {
            return ReadColumnChunk(block, col_idx);
          }));
      chunk.hit() ? ++c.pool_hits : ++c.pool_misses;
      // The ColumnPtr outlives the pin (eviction only drops the pool's
      // reference), so blocks are shared with the cache copy-free; the
      // pin itself releases at end of scope — one pinned chunk at a time.
      ColumnPtr col = chunk.column();
      if (col->is_encoded() && !EncodingEnabled()) {
        // Parity axis: with encoding globally disabled, previously-saved
        // encoded tables execute plain end-to-end.
        col = col->Decode();
      }
      c.bytes_materialized += col->ByteSize();
      block_columns.push_back(std::move(col));
    }
    MLCS_RETURN_IF_ERROR(emit(
        std::make_shared<Table>(out_schema, std::move(block_columns))));
  }
  return Status::OK();
}

Result<TablePtr> StoredTable::Scan(
    const std::optional<std::vector<std::string>>& columns,
    const std::vector<ZonePredicate>& predicates,
    ScanCounters* counters) const {
  MLCS_ASSIGN_OR_RETURN(std::vector<size_t> indices,
                        ResolveProjection(columns));
  Schema out_schema;
  std::vector<ColumnPtr> out_columns;
  out_columns.reserve(indices.size());
  for (size_t idx : indices) {
    const Field& field = schema_.field(idx);
    out_schema.AddField(field.name, field.type);
    out_columns.push_back(Column::Make(field.type));
  }
  MLCS_RETURN_IF_ERROR(ScanBlocks(
      columns, predicates, counters, [&out_columns](const TablePtr& block) {
        for (size_t j = 0; j < out_columns.size(); ++j) {
          MLCS_RETURN_IF_ERROR(
              out_columns[j]->AppendColumn(*block->column(j)));
        }
        return Status::OK();
      }));
  return std::make_shared<Table>(std::move(out_schema),
                                 std::move(out_columns));
}

Result<TablePtr> StoredTable::Materialize() const {
  MLCS_ASSIGN_OR_RETURN(TablePtr table, Scan(std::nullopt, {}));
  // Promotion hands the table to in-place writers (INSERT/UPDATE append
  // paths, raw-accessor readers); those assume plain columns.
  return DecodeTable(table);
}

}  // namespace mlcs::bufpool
