#ifndef MLCS_BUFPOOL_ZONE_MAP_H_
#define MLCS_BUFPOOL_ZONE_MAP_H_

#include <cstdint>
#include <string>

#include "storage/column.h"
#include "types/value.h"

namespace mlcs::bufpool {

/// Comparison shapes the planner can prove against a block's min/max
/// summary. Deliberately decoupled from exec::BinOpKind so the storage
/// layer never depends on the execution engine's operator enum.
enum class ZoneOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// One pushed-down `column <op> literal` predicate, as extracted by the
/// planner from a filter directly above a scan. Only ever used to *skip*
/// blocks — the full filter still runs above the scan, so an ignored or
/// unprovable predicate costs correctness nothing.
struct ZonePredicate {
  std::string column;  // lower-cased
  ZoneOp op = ZoneOp::kEq;
  Value literal;
};

/// Per-column, per-block summary written at flush time: null count plus
/// min/max over the non-null values. `has_minmax` is false for BLOB
/// columns, all-null columns, and DOUBLE columns containing NaN (whose
/// ordering min/max cannot summarize).
struct ZoneMap {
  uint64_t null_count = 0;
  bool has_minmax = false;
  Value min;
  Value max;
};

/// Summarizes one column (one block's worth of rows) at flush time.
ZoneMap ComputeZoneMap(const Column& column);

/// True when some row in a block of `block_rows` rows summarized by `zone`
/// *could* satisfy `<op> literal` — i.e. the block cannot be skipped on
/// this predicate. Fails open (returns true) whenever the comparison is
/// not provably decidable from min/max alone: type mismatches, NaN
/// literals, and int/double comparisons beyond 2^53 where double rounding
/// could flip an inequality. Comparisons against a NULL literal are never
/// TRUE in SQL, so those — and all-null blocks — admit nothing.
[[nodiscard]] bool ZoneAdmits(const ZoneMap& zone, uint64_t block_rows,
                              ZoneOp op, const Value& literal);

/// Process-wide toggle for zone-map block skipping (default on; the
/// MLCS_DISABLE_ZONEMAPS env var starts it off). The ablation grid flips
/// it to measure blocks read with and without skipping.
bool ZoneMapSkippingEnabled();
void SetZoneMapSkippingEnabled(bool enabled);

}  // namespace mlcs::bufpool

#endif  // MLCS_BUFPOOL_ZONE_MAP_H_
