#ifndef MLCS_BUFPOOL_BUFFER_POOL_H_
#define MLCS_BUFPOOL_BUFFER_POOL_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "obs/metrics.h"
#include "storage/column.h"

namespace mlcs::bufpool {

class BufferPool;

/// RAII pin on one cached chunk. While alive, the pool will not evict the
/// entry (pin counts are refcounts, MonetDB/ARIES style); destruction
/// unpins. The ColumnPtr stays valid past unpin as long as the caller
/// holds it — eviction only drops the pool's reference — so pins exist to
/// keep hot chunks resident, not to protect liveness.
///
/// A PinnedChunk may outlive its pool (private pools in tests/benches):
/// it holds a weak liveness token and the unpin becomes a no-op once the
/// pool is gone. Destroying the pool *concurrently* with pin release is
/// still a data race — teardown must be externally quiesced, like any
/// other BufferPool call.
class PinnedChunk {
 public:
  PinnedChunk() = default;
  PinnedChunk(PinnedChunk&& other) noexcept { *this = std::move(other); }
  PinnedChunk& operator=(PinnedChunk&& other) noexcept;
  ~PinnedChunk();
  PinnedChunk(const PinnedChunk&) = delete;
  PinnedChunk& operator=(const PinnedChunk&) = delete;

  const ColumnPtr& column() const { return column_; }
  /// True when Fetch served this chunk from cache (no loader run).
  bool hit() const { return hit_; }

 private:
  friend class BufferPool;
  PinnedChunk(BufferPool* pool, std::weak_ptr<const bool> pool_alive,
              std::string key, ColumnPtr column, bool hit)
      : pool_(pool), pool_alive_(std::move(pool_alive)),
        key_(std::move(key)), column_(std::move(column)), hit_(hit) {}

  /// Unpins unless the pool has already been destroyed.
  void Release();

  BufferPool* pool_ = nullptr;
  std::weak_ptr<const bool> pool_alive_;
  std::string key_;
  ColumnPtr column_;
  bool hit_ = false;
};

/// Process-wide LRU cache of decoded column chunks, keyed by
/// "<block path>@<save generation>#<column index>" — the layer every
/// block read goes through (tools/lint.py forbids .blk I/O anywhere else
/// in src/). The generation comes from the table manifest, so rewriting
/// a table's block files invalidates every previously cached chunk by
/// construction.
///
/// Invariants (DESIGN.md §12):
///  - entries with pins > 0 are never evicted; the pool may exceed its
///    byte budget while everything resident is pinned
///  - eviction walks from the LRU tail, skipping pinned entries
///  - loaders run *outside* the pool mutex (disk I/O must not serialize
///    unrelated scans); two threads missing the same key concurrently may
///    both load, and the first insert wins
///
/// Budget comes from MLCS_BUFFER_POOL_BYTES for the Global() pool
/// (default 256 MiB); tests build private pools with tiny budgets.
class BufferPool {
 public:
  static constexpr size_t kDefaultByteBudget = 256ull << 20;

  explicit BufferPool(size_t byte_budget = kDefaultByteBudget);
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  using ChunkLoader = std::function<Result<ColumnPtr>()>;

  /// Returns the cached chunk for `key`, running `load` on a miss. The
  /// result is pinned until the returned PinnedChunk is destroyed.
  Result<PinnedChunk> Fetch(const std::string& key,
                            const ChunkLoader& load);

  /// Drops every unpinned entry (cold-cache benches and tests). Not
  /// counted as evictions.
  void Clear();

  void set_byte_budget(size_t bytes);
  size_t byte_budget() const;
  size_t bytes_cached() const;
  /// Bytes held by entries with pins > 0 right now. Streaming scans keep
  /// this bounded by one chunk per scanning thread; the matching
  /// high-water gauge (`mlcs.bufpool.pinned_bytes_hw`) is what tests
  /// assert against.
  size_t pinned_bytes() const;
  size_t entry_count() const;
  [[nodiscard]] bool Contains(const std::string& key) const;
  /// Cached keys, most-recently-used first (eviction-order tests).
  std::vector<std::string> KeysMruToLru() const;

  /// The process-wide pool every StoredTable scan uses by default;
  /// budget read from MLCS_BUFFER_POOL_BYTES at first use.
  static BufferPool& Global();

 private:
  friend class PinnedChunk;

  struct Entry {
    ColumnPtr column;
    size_t bytes = 0;
    uint32_t pins = 0;
    std::list<std::string>::iterator lru_pos;
  };

  void Unpin(const std::string& key);
  /// Evicts from the LRU tail (skipping pinned entries) until the cache
  /// fits the budget or only pinned entries remain.
  void EvictToBudgetLocked() MLCS_REQUIRES(mutex_);
  /// Applies a pinned-bytes delta (entry pin count crossing 0<->1) to the
  /// local total and the registry gauges, ratcheting the high-water mark
  /// on increases.
  void NotePinnedDeltaLocked(int64_t delta) MLCS_REQUIRES(mutex_);

  /// Liveness token for PinnedChunks: expires with the pool, so a pin
  /// released after pool teardown skips the (dangling) Unpin call.
  std::shared_ptr<const bool> liveness_ = std::make_shared<const bool>(true);

  mutable Mutex mutex_{"BufferPool::mutex_"};
  std::unordered_map<std::string, Entry> entries_ MLCS_GUARDED_BY(mutex_);
  std::list<std::string> lru_ MLCS_GUARDED_BY(mutex_);  // front = MRU
  size_t byte_budget_ MLCS_GUARDED_BY(mutex_);
  size_t bytes_cached_total_ MLCS_GUARDED_BY(mutex_) = 0;
  size_t pinned_bytes_total_ MLCS_GUARDED_BY(mutex_) = 0;

  // Registry-backed series (mlcs.bufpool.*); internally atomic.
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* evictions_;
  obs::Counter* bytes_read_;
  obs::Gauge* bytes_cached_gauge_;
  obs::Gauge* pinned_bytes_gauge_;
  obs::Gauge* pinned_bytes_hw_gauge_;
};

}  // namespace mlcs::bufpool

#endif  // MLCS_BUFPOOL_BUFFER_POOL_H_
