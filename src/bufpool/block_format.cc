#include "bufpool/block_format.h"

#include "common/byte_buffer.h"
#include "common/file_util.h"

namespace mlcs::bufpool {

Status WriteBlockFile(const Table& block, const std::string& path) {
  MLCS_RETURN_IF_ERROR(block.Validate());
  // Payloads first: the header needs their extents.
  ByteWriter payloads;
  std::vector<uint64_t> offsets(block.num_columns());
  std::vector<uint64_t> lengths(block.num_columns());
  for (size_t c = 0; c < block.num_columns(); ++c) {
    offsets[c] = payloads.size();
    block.column(c)->Serialize(&payloads);
    lengths[c] = payloads.size() - offsets[c];
  }
  ByteWriter header;
  header.WriteVarint(block.num_rows());
  header.WriteVarint(block.num_columns());
  for (size_t c = 0; c < block.num_columns(); ++c) {
    const Field& field = block.schema().field(c);
    header.WriteString(field.name);
    header.WriteU8(static_cast<uint8_t>(field.type));
    ZoneMap zone = ComputeZoneMap(*block.column(c));
    header.WriteVarint(zone.null_count);
    header.WriteBool(zone.has_minmax);
    if (zone.has_minmax) {
      zone.min.Serialize(&header);
      zone.max.Serialize(&header);
    }
    header.WriteU64(offsets[c]);
    header.WriteU64(lengths[c]);
  }
  ByteWriter file;
  file.WriteU32(kBlockMagic);
  file.WriteU16(kBlockFormatVersion);
  file.WriteU32(static_cast<uint32_t>(header.size()));
  file.WriteRaw(header.data().data(), header.size());
  file.WriteRaw(payloads.data().data(), payloads.size());
  return AtomicWriteFile(path, file.data().data(), file.size());
}

Result<BlockMeta> ReadBlockMeta(const std::string& path) {
  MLCS_ASSIGN_OR_RETURN(std::vector<uint8_t> fixed,
                        ReadFileRegion(path, 0, kBlockFixedHeaderBytes));
  ByteReader fixed_reader(fixed);
  MLCS_ASSIGN_OR_RETURN(uint32_t magic, fixed_reader.ReadU32());
  if (magic != kBlockMagic) {
    return Status::ParseError("'" + path + "' is not an mlcs block file");
  }
  MLCS_ASSIGN_OR_RETURN(uint16_t version, fixed_reader.ReadU16());
  if (version != kBlockFormatVersion) {
    return Status::ParseError("'" + path + "': unsupported block version " +
                              std::to_string(version));
  }
  MLCS_ASSIGN_OR_RETURN(uint32_t header_len, fixed_reader.ReadU32());
  if (header_len == 0 || header_len > (64u << 20)) {
    return Status::ParseError("'" + path + "': implausible header length");
  }
  MLCS_ASSIGN_OR_RETURN(
      std::vector<uint8_t> header_bytes,
      ReadFileRegion(path, kBlockFixedHeaderBytes, header_len));
  ByteReader header(header_bytes);
  BlockMeta meta;
  meta.path = path;
  MLCS_ASSIGN_OR_RETURN(meta.rows, header.ReadVarint());
  MLCS_ASSIGN_OR_RETURN(uint64_t num_cols, header.ReadVarint());
  if (num_cols > (1u << 20)) {
    return Status::ParseError("'" + path + "': implausible column count");
  }
  uint64_t payload_base = kBlockFixedHeaderBytes + header_len;
  meta.columns.reserve(num_cols);
  for (uint64_t c = 0; c < num_cols; ++c) {
    BlockColumnMeta col;
    MLCS_ASSIGN_OR_RETURN(col.name, header.ReadString());
    MLCS_ASSIGN_OR_RETURN(uint8_t type_byte, header.ReadU8());
    if (type_byte > static_cast<uint8_t>(TypeId::kBlob)) {
      return Status::ParseError("'" + path + "': invalid column type tag");
    }
    col.type = static_cast<TypeId>(type_byte);
    MLCS_ASSIGN_OR_RETURN(col.zone.null_count, header.ReadVarint());
    MLCS_ASSIGN_OR_RETURN(col.zone.has_minmax, header.ReadBool());
    if (col.zone.has_minmax) {
      MLCS_ASSIGN_OR_RETURN(col.zone.min, Value::Deserialize(&header));
      MLCS_ASSIGN_OR_RETURN(col.zone.max, Value::Deserialize(&header));
    }
    MLCS_ASSIGN_OR_RETURN(uint64_t rel_offset, header.ReadU64());
    MLCS_ASSIGN_OR_RETURN(col.payload_length, header.ReadU64());
    col.payload_offset = payload_base + rel_offset;
    meta.columns.push_back(std::move(col));
  }
  return meta;
}

Result<ColumnPtr> ReadColumnChunk(const BlockMeta& block, size_t col_idx) {
  if (col_idx >= block.columns.size()) {
    return Status::InvalidArgument("block column index out of range");
  }
  const BlockColumnMeta& col = block.columns[col_idx];
  MLCS_ASSIGN_OR_RETURN(
      std::vector<uint8_t> bytes,
      ReadFileRegion(block.path, col.payload_offset, col.payload_length));
  ByteReader reader(bytes);
  MLCS_ASSIGN_OR_RETURN(ColumnPtr column, Column::Deserialize(&reader));
  if (column->size() != block.rows || column->type() != col.type) {
    return Status::ParseError("'" + block.path + "': column '" + col.name +
                              "' payload does not match its header "
                              "(torn write?)");
  }
  return column;
}

}  // namespace mlcs::bufpool
