#ifndef MLCS_BUFPOOL_BLOCK_FORMAT_H_
#define MLCS_BUFPOOL_BLOCK_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bufpool/zone_map.h"
#include "common/result.h"
#include "storage/table.h"
#include "types/data_type.h"

namespace mlcs::bufpool {

/// On-disk block file (.blk) layout — one fixed-capacity row group, stored
/// column-at-a-time so a scan can fetch exactly the columns it needs:
///
///   u32 magic "1BLM"   u16 version   u32 header_len
///   header body (header_len bytes):
///     varint num_rows, varint num_cols, then per column:
///       string name, u8 type, varint null_count,
///       u8 has_minmax [+ Value min + Value max],
///       u64 payload_offset (relative to payload base), u64 payload_len
///   column payloads (each a Column::Serialize image)
///
/// The header carries the zone maps, so StoredTable::Open summarizes every
/// block — and every later scan decides skips — without touching a single
/// payload byte.
inline constexpr uint32_t kBlockMagic = 0x4D4C4231;  // "1BLM" on disk (LE)
inline constexpr uint16_t kBlockFormatVersion = 1;
/// magic + version + header_len.
inline constexpr size_t kBlockFixedHeaderBytes = 10;

struct BlockColumnMeta {
  std::string name;
  TypeId type = TypeId::kInt32;
  ZoneMap zone;
  uint64_t payload_offset = 0;  // absolute offset within the block file
  uint64_t payload_length = 0;
};

/// Everything a scan needs to know about one block without reading its
/// payloads. Immutable after ReadBlockMeta.
struct BlockMeta {
  std::string path;
  uint64_t rows = 0;
  std::vector<BlockColumnMeta> columns;  // schema order
};

/// Serializes one row group into `path` crash-safely (temp + fsync +
/// rename) with zone maps computed at flush time.
Status WriteBlockFile(const Table& block, const std::string& path);

/// Header-only read: validates magic/version and returns rows, zone maps
/// and payload extents. Payload bytes are not touched.
Result<BlockMeta> ReadBlockMeta(const std::string& path);

/// Reads and decodes one column payload; the decoded row count and type
/// must match the header or the chunk is rejected (torn-write guard).
Result<ColumnPtr> ReadColumnChunk(const BlockMeta& block, size_t col_idx);

}  // namespace mlcs::bufpool

#endif  // MLCS_BUFPOOL_BLOCK_FORMAT_H_
