#include "dataframe/dataframe.h"

#include "exec/filter.h"
#include "exec/hash_join.h"

namespace mlcs::dataframe {

Result<DataFrame> DataFrame::Merge(const DataFrame& other,
                                   const std::vector<std::string>& on) const {
  // The DataFrame API embeds the operators by design (no SQL plan here).
  MLCS_ASSIGN_OR_RETURN(
      TablePtr joined,
      exec::HashJoin(*table_, *other.table_,  // lint:allow(exec-operator-call)
                     on, on));
  return DataFrame(std::move(joined));
}

Result<DataFrame> DataFrame::GroupBy(
    const std::vector<std::string>& keys,
    const std::vector<exec::AggSpec>& aggs) const {
  MLCS_ASSIGN_OR_RETURN(
      TablePtr out,
      exec::HashGroupBy(*table_, keys,  // lint:allow(exec-operator-call)
                        aggs));
  return DataFrame(std::move(out));
}

Result<DataFrame> DataFrame::Filter(const mlcs::Column& predicate) const {
  MLCS_ASSIGN_OR_RETURN(
      TablePtr out,
      exec::FilterTable(*table_,  // lint:allow(exec-operator-call)
                        predicate));
  return DataFrame(std::move(out));
}

Result<DataFrame> DataFrame::Select(
    const std::vector<std::string>& names) const {
  std::vector<size_t> indices;
  indices.reserve(names.size());
  for (const auto& name : names) {
    MLCS_ASSIGN_OR_RETURN(size_t idx,
                          table_->schema().RequireFieldIndex(name));
    indices.push_back(idx);
  }
  return DataFrame(table_->Project(indices));
}

DataFrame DataFrame::Head(size_t n) const {
  return SliceRows(0, std::min(n, num_rows()));
}

DataFrame DataFrame::SliceRows(size_t offset, size_t length) const {
  return DataFrame(table_->SliceRows(offset, length));
}

DataFrame DataFrame::TakeRows(const std::vector<uint32_t>& indices) const {
  return DataFrame(table_->TakeRows(indices));
}

Result<ml::Matrix> DataFrame::ToMatrix(
    const std::vector<std::string>& features) const {
  return ml::Matrix::FromTable(*table_, features);
}

Result<ml::Labels> DataFrame::LabelColumn(const std::string& name) const {
  MLCS_ASSIGN_OR_RETURN(ColumnPtr col, table_->ColumnByName(name));
  MLCS_ASSIGN_OR_RETURN(ColumnPtr as_int, col->CastTo(TypeId::kInt32));
  // Same-type CastTo preserves encoding; i32_data() needs plain storage.
  if (as_int->is_encoded()) as_int = as_int->Decode();
  return ml::Labels(as_int->i32_data());
}

}  // namespace mlcs::dataframe
