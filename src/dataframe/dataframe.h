#ifndef MLCS_DATAFRAME_DATAFRAME_H_
#define MLCS_DATAFRAME_DATAFRAME_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/aggregate.h"
#include "ml/matrix.h"
#include "storage/table.h"

namespace mlcs::dataframe {

/// A client-side columnar frame — the pandas analogue the paper's external
/// baselines use for the preprocessing joins/aggregations that the
/// in-database pipeline does in SQL. Backed by the same Table/Column
/// machinery (so load comparisons measure I/O and protocol cost, not
/// container overhead) but living entirely "outside the database".
class DataFrame {
 public:
  DataFrame() : table_(std::make_shared<Table>(Schema{})) {}
  explicit DataFrame(TablePtr table) : table_(std::move(table)) {}

  const TablePtr& table() const { return table_; }
  size_t num_rows() const { return table_->num_rows(); }
  size_t num_columns() const { return table_->num_columns(); }
  const Schema& schema() const { return table_->schema(); }

  Result<ColumnPtr> Column(const std::string& name) const {
    return table_->ColumnByName(name);
  }

  Status AddColumn(std::string name, ColumnPtr column) {
    return table_->AddColumn(std::move(name), std::move(column));
  }

  /// Inner join on equally-named key columns (hash join under the hood).
  Result<DataFrame> Merge(const DataFrame& other,
                          const std::vector<std::string>& on) const;

  /// Group-by aggregation, pandas `df.groupby(keys).agg(...)` analogue.
  Result<DataFrame> GroupBy(const std::vector<std::string>& keys,
                            const std::vector<exec::AggSpec>& aggs) const;

  /// Rows where `predicate` (a BOOL column) is true.
  Result<DataFrame> Filter(const mlcs::Column& predicate) const;

  /// Keep only the named columns (shares buffers).
  Result<DataFrame> Select(const std::vector<std::string>& names) const;

  /// Row-range head/slice.
  DataFrame Head(size_t n) const;
  DataFrame SliceRows(size_t offset, size_t length) const;
  DataFrame TakeRows(const std::vector<uint32_t>& indices) const;

  /// Feature matrix view of numeric columns (for the ML library).
  Result<ml::Matrix> ToMatrix(const std::vector<std::string>& features) const;
  /// Int32 labels from a column.
  Result<ml::Labels> LabelColumn(const std::string& name) const;

  std::string ToString(size_t max_rows = 10) const {
    return table_->ToString(max_rows);
  }

 private:
  TablePtr table_;
};

}  // namespace mlcs::dataframe

#endif  // MLCS_DATAFRAME_DATAFRAME_H_
