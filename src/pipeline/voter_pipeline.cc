#include "pipeline/voter_pipeline.h"

#include <algorithm>
#include <cmath>

#include "client/client.h"
#include "client/sqlite_like.h"
#include "common/timer.h"
#include "dataframe/dataframe.h"
#include "exec/kernels.h"
#include "io/csv.h"
#include "io/h5b.h"
#include "io/npy.h"
#include "ml/pickle.h"
#include "ml/random_forest.h"
#include "ml/training_source.h"
#include "modelstore/model_cache.h"
#include "obs/metrics.h"

namespace mlcs::pipeline {

namespace {

/// splitmix64 finalizer mapped to [0, 1) — the deterministic "random"
/// shared by every channel so labels and splits agree bit-for-bit.
double HashToUnit(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x = x ^ (x >> 31);
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

constexpr uint64_t kLabelSalt = 0xA5A5A5A5A5A5A5A5ULL;
constexpr uint64_t kSplitSalt = 0x5A5A5A5A5A5A5A5AULL;

/// Feature columns = every voter column except voter_id (the paper trains
/// on the demographic characteristics; precinct_id is a feature too).
std::vector<std::string> FeatureNames(const PipelineConfig& config) {
  std::vector<std::string> names = {"precinct_id",    "age",
                                    "gender",         "ethnicity",
                                    "party_reg",      "income_bracket",
                                    "urban_score",    "years_registered"};
  for (size_t c = 9; c < config.data.num_columns; ++c) {
    names.push_back("attr_" + std::to_string(c));
  }
  return names;
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += names[i];
  }
  return out;
}

/// Mean absolute error between aggregated predicted dem share and the
/// generator's true precinct lean. `predictions` has columns
/// (precinct_id, pred_dem, n).
Result<double> PrecinctShareMae(const Table& predictions,
                                const PipelineConfig& config) {
  MLCS_ASSIGN_OR_RETURN(ColumnPtr precinct,
                        predictions.ColumnByName("precinct_id"));
  MLCS_ASSIGN_OR_RETURN(ColumnPtr pred_dem,
                        predictions.ColumnByName("pred_dem"));
  MLCS_ASSIGN_OR_RETURN(ColumnPtr count, predictions.ColumnByName("n"));
  MLCS_ASSIGN_OR_RETURN(std::vector<double> dem, pred_dem->ToDoubleVector());
  MLCS_ASSIGN_OR_RETURN(std::vector<double> n, count->ToDoubleVector());
  double mae = 0;
  size_t rows = predictions.num_rows();
  if (rows == 0) return Status::InvalidArgument("no precinct predictions");
  for (size_t r = 0; r < rows; ++r) {
    double share = n[r] > 0 ? dem[r] / n[r] : 0;
    double truth = io::PrecinctDemShare(
        config.data.seed, static_cast<size_t>(precinct->i32_data()[r]),
        config.data.num_precincts);
    mae += std::fabs(share - truth);
  }
  return mae / static_cast<double>(rows);
}

/// Shared by the external channels: client-side wrangle + train + predict
/// + aggregate, starting from already-loaded voters/precincts frames.
Result<PipelineResult> RunExternal(dataframe::DataFrame voters,
                                   dataframe::DataFrame precincts,
                                   const PipelineConfig& config,
                                   std::string method,
                                   double load_seconds) {
  PipelineResult result;
  result.method = std::move(method);
  WallTimer wrangle_timer;

  // Preprocessing (pandas analogue): join, labels, split mask.
  MLCS_ASSIGN_OR_RETURN(dataframe::DataFrame joined,
                        voters.Merge(precincts, {"precinct_id"}));
  MLCS_ASSIGN_OR_RETURN(ColumnPtr voter_id, joined.Column("voter_id"));
  MLCS_ASSIGN_OR_RETURN(ColumnPtr dem, joined.Column("dem_votes"));
  MLCS_ASSIGN_OR_RETURN(ColumnPtr rep, joined.Column("rep_votes"));
  ColumnPtr label = GenerateLabelColumn(*voter_id, *dem, *rep, config.seed);
  ColumnPtr mask =
      SplitMaskColumn(*voter_id, config.seed, config.train_fraction);
  MLCS_RETURN_IF_ERROR(joined.AddColumn("label", label));
  MLCS_ASSIGN_OR_RETURN(dataframe::DataFrame train_df, joined.Filter(*mask));
  MLCS_ASSIGN_OR_RETURN(ColumnPtr not_mask,
                        exec::UnaryKernel(exec::UnOpKind::kNot, *mask));
  MLCS_ASSIGN_OR_RETURN(dataframe::DataFrame test_df,
                        joined.Filter(*not_mask));
  result.load_wrangle_seconds = load_seconds + wrangle_timer.ElapsedSeconds();

  // Training.
  WallTimer train_timer;
  std::vector<std::string> features = FeatureNames(config);
  MLCS_ASSIGN_OR_RETURN(ml::Matrix x_train, train_df.ToMatrix(features));
  MLCS_ASSIGN_OR_RETURN(ml::Labels y_train, train_df.LabelColumn("label"));
  ml::RandomForestOptions opt;
  opt.n_estimators = config.n_estimators;
  opt.max_depth = config.max_depth;
  opt.seed = config.seed;
  ml::RandomForest forest(opt);
  MLCS_RETURN_IF_ERROR(forest.Fit(x_train, y_train));
  result.train_seconds = train_timer.ElapsedSeconds();

  // Prediction + per-precinct aggregation.
  WallTimer predict_timer;
  MLCS_ASSIGN_OR_RETURN(ml::Matrix x_test, test_df.ToMatrix(features));
  MLCS_ASSIGN_OR_RETURN(ml::Labels pred, forest.Predict(x_test));
  dataframe::DataFrame pred_df(test_df.table());
  MLCS_RETURN_IF_ERROR(
      pred_df.AddColumn("pred", Column::FromInt32(ml::Labels(pred))));
  MLCS_ASSIGN_OR_RETURN(
      dataframe::DataFrame aggregated,
      pred_df.GroupBy({"precinct_id"},
                      {{exec::AggOp::kSum, "pred", "pred_dem"},
                       {exec::AggOp::kCountStar, "", "n"}}));
  result.predict_seconds = predict_timer.ElapsedSeconds();

  result.test_rows = test_df.num_rows();
  result.precinct_predictions = aggregated.table();
  MLCS_ASSIGN_OR_RETURN(result.precinct_share_mae,
                        PrecinctShareMae(*aggregated.table(), config));
  result.total_seconds = result.load_wrangle_seconds +
                         result.train_seconds + result.predict_seconds;
  return result;
}

/// Post-wrangle tail shared by the channels that receive an already
/// joined+labelled table (socket and row-cursor): split, train, predict,
/// aggregate.
Result<PipelineResult> FinishFromWrangled(TablePtr wrangled,
                                          const PipelineConfig& config,
                                          std::string method,
                                          double load_seconds) {
  PipelineResult result;
  result.method = std::move(method);
  dataframe::DataFrame joined(std::move(wrangled));
  MLCS_ASSIGN_OR_RETURN(ColumnPtr mask_col, joined.Column("is_train"));
  MLCS_ASSIGN_OR_RETURN(dataframe::DataFrame train_df,
                        joined.Filter(*mask_col));
  MLCS_ASSIGN_OR_RETURN(ColumnPtr not_mask,
                        exec::UnaryKernel(exec::UnOpKind::kNot, *mask_col));
  MLCS_ASSIGN_OR_RETURN(dataframe::DataFrame test_df,
                        joined.Filter(*not_mask));
  result.load_wrangle_seconds = load_seconds;

  WallTimer train_timer;
  std::vector<std::string> features = FeatureNames(config);
  MLCS_ASSIGN_OR_RETURN(ml::Matrix x_train, train_df.ToMatrix(features));
  MLCS_ASSIGN_OR_RETURN(ml::Labels y_train, train_df.LabelColumn("label"));
  ml::RandomForestOptions opt;
  opt.n_estimators = config.n_estimators;
  opt.max_depth = config.max_depth;
  opt.seed = config.seed;
  ml::RandomForest forest(opt);
  MLCS_RETURN_IF_ERROR(forest.Fit(x_train, y_train));
  result.train_seconds = train_timer.ElapsedSeconds();

  WallTimer predict_timer;
  MLCS_ASSIGN_OR_RETURN(ml::Matrix x_test, test_df.ToMatrix(features));
  MLCS_ASSIGN_OR_RETURN(ml::Labels pred, forest.Predict(x_test));
  dataframe::DataFrame pred_df(test_df.table());
  MLCS_RETURN_IF_ERROR(
      pred_df.AddColumn("pred", Column::FromInt32(std::move(pred))));
  MLCS_ASSIGN_OR_RETURN(
      dataframe::DataFrame aggregated,
      pred_df.GroupBy({"precinct_id"},
                      {{exec::AggOp::kSum, "pred", "pred_dem"},
                       {exec::AggOp::kCountStar, "", "n"}}));
  result.predict_seconds = predict_timer.ElapsedSeconds();

  result.test_rows = test_df.num_rows();
  result.precinct_predictions = aggregated.table();
  MLCS_ASSIGN_OR_RETURN(result.precinct_share_mae,
                        PrecinctShareMae(*aggregated.table(), config));
  result.total_seconds = result.load_wrangle_seconds +
                         result.train_seconds + result.predict_seconds;
  return result;
}

/// Factorized wrangle (DESIGN.md §14): the dimension table's only
/// contribution to the wrangled output is the per-precinct dem share
/// consumed by gen_label, so the fact⋈dim join is replaced by a K-entry
/// share LUT computed over `precincts` alone and gathered through
/// voters.precinct_id. The output table reuses the voters' column buffers;
/// the join output is never materialized. Bit-identical to the
/// WranglingSql() result: precinct_id is unique in `precincts` (the inner
/// join preserves fact row order and multiplicity) and every label sees
/// exactly the share double the joined path would compute for its row.
/// Fails — so the caller can fall back to the join — when a voter
/// references a precinct the dimension table does not have.
Result<TablePtr> FactorizedWrangle(Database* db,
                                   const PipelineConfig& config) {
  MLCS_ASSIGN_OR_RETURN(TablePtr voters, db->catalog().GetTable("voters"));
  MLCS_ASSIGN_OR_RETURN(TablePtr precincts,
                        db->catalog().GetTable("precincts"));
  auto plain = [](ColumnPtr c) { return c->is_encoded() ? c->Decode() : c; };

  // Dim-side statistic: share[k] = dem_k / (dem_k + rep_k).
  MLCS_ASSIGN_OR_RETURN(ColumnPtr pid_col,
                        precincts->ColumnByName("precinct_id"));
  MLCS_ASSIGN_OR_RETURN(ColumnPtr dem_col,
                        precincts->ColumnByName("dem_votes"));
  MLCS_ASSIGN_OR_RETURN(ColumnPtr rep_col,
                        precincts->ColumnByName("rep_votes"));
  pid_col = plain(pid_col);
  dem_col = plain(dem_col);
  rep_col = plain(rep_col);
  const auto& pid = pid_col->i32_data();
  const auto& dem = dem_col->i32_data();
  const auto& rep = rep_col->i32_data();
  int64_t max_pid = -1;
  for (int32_t p : pid) {
    if (p < 0) return Status::InvalidArgument("negative precinct_id");
    max_pid = std::max<int64_t>(max_pid, p);
  }
  std::vector<double> share(static_cast<size_t>(max_pid + 1), 0.0);
  std::vector<uint8_t> present(share.size(), 0);
  for (size_t k = 0; k < pid.size(); ++k) {
    double dk = static_cast<double>(dem[k]);
    double rk = static_cast<double>(rep[k]);
    double total = dk + rk;
    share[static_cast<size_t>(pid[k])] = total > 0 ? dk / total : 0.5;
    present[static_cast<size_t>(pid[k])] = 1;
  }

  MLCS_ASSIGN_OR_RETURN(ColumnPtr voter_id, voters->ColumnByName("voter_id"));
  MLCS_ASSIGN_OR_RETURN(ColumnPtr precinct,
                        voters->ColumnByName("precinct_id"));
  voter_id = plain(voter_id);
  precinct = plain(precinct);
  for (int32_t k : precinct->i32_data()) {
    if (k < 0 || static_cast<size_t>(k) >= share.size() ||
        !present[static_cast<size_t>(k)]) {
      return Status::InvalidArgument(
          "voter references a precinct outside the dimension table");
    }
  }
  ColumnPtr label =
      GenerateLabelColumnFactorized(*voter_id, *precinct, share, config.seed);
  ColumnPtr mask =
      SplitMaskColumn(*voter_id, config.seed, config.train_fraction);

  // Same shape as the WranglingSql() output, zero-copy from the fact table.
  Schema schema;
  std::vector<ColumnPtr> columns;
  schema.AddField("voter_id", TypeId::kInt32);
  columns.push_back(voter_id);
  for (const std::string& name : FeatureNames(config)) {
    MLCS_ASSIGN_OR_RETURN(ColumnPtr col, voters->ColumnByName(name));
    col = plain(col);
    schema.AddField(name, col->type());
    columns.push_back(std::move(col));
  }
  schema.AddField("label", TypeId::kInt32);
  columns.push_back(std::move(label));
  schema.AddField("is_train", TypeId::kBool);
  columns.push_back(std::move(mask));
  obs::MetricsRegistry::Global()
      .GetCounter("mlcs.factorized.pipeline_wrangles")
      ->Add(1);
  return std::make_shared<Table>(std::move(schema), std::move(columns));
}

}  // namespace

ColumnPtr GenerateLabelColumn(const Column& voter_id, const Column& dem,
                              const Column& rep, uint64_t seed) {
  size_t n = voter_id.size();
  std::vector<int32_t> labels(n);
  const auto& ids = voter_id.i32_data();
  const auto& d = dem.i32_data();
  const auto& r = rep.i32_data();
  // Length-1 vote columns broadcast (scalar literals from SQL).
  size_t dn = d.size() == 1 ? 0 : 1;
  size_t rn = r.size() == 1 ? 0 : 1;
  for (size_t i = 0; i < n; ++i) {
    double di = static_cast<double>(d[i * dn]);
    double ri = static_cast<double>(r[i * rn]);
    double total = di + ri;
    double share = total > 0 ? di / total : 0.5;
    double u = HashToUnit(seed ^ kLabelSalt ^
                          (static_cast<uint64_t>(
                               static_cast<uint32_t>(ids[i])) *
                           0x100000001B3ULL));
    labels[i] = u < share ? 1 : 0;
  }
  return Column::FromInt32(std::move(labels));
}

ColumnPtr GenerateLabelColumnFactorized(const Column& voter_id,
                                        const Column& precinct,
                                        const std::vector<double>& share,
                                        uint64_t seed) {
  size_t n = voter_id.size();
  std::vector<int32_t> labels(n);
  const auto& ids = voter_id.i32_data();
  const auto& keys = precinct.i32_data();
  for (size_t i = 0; i < n; ++i) {
    double u = HashToUnit(seed ^ kLabelSalt ^
                          (static_cast<uint64_t>(
                               static_cast<uint32_t>(ids[i])) *
                           0x100000001B3ULL));
    labels[i] = u < share[static_cast<size_t>(keys[i])] ? 1 : 0;
  }
  return Column::FromInt32(std::move(labels));
}

ColumnPtr SplitMaskColumn(const Column& voter_id, uint64_t seed,
                          double train_fraction) {
  size_t n = voter_id.size();
  std::vector<uint8_t> mask(n);
  const auto& ids = voter_id.i32_data();
  for (size_t i = 0; i < n; ++i) {
    double u = HashToUnit(seed ^ kSplitSalt ^
                          (static_cast<uint64_t>(
                               static_cast<uint32_t>(ids[i])) *
                           0xC4CEB9FE1A85EC53ULL));
    mask[i] = u < train_fraction ? 1 : 0;
  }
  return Column::FromBool(std::move(mask));
}

Status RegisterVoterUdfs(Database* db) {
  udf::UdfRegistry& registry = db->udfs();

  udf::ScalarUdfEntry gen_label;
  gen_label.name = "gen_label";
  gen_label.return_type = TypeId::kInt32;
  gen_label.has_return_type = true;
  gen_label.fn = [](const std::vector<ColumnPtr>& args,
                    size_t /*num_rows*/) -> Result<ColumnPtr> {
    if (args.size() != 4) {
      return Status::InvalidArgument("gen_label(voter_id, dem, rep, seed)");
    }
    MLCS_ASSIGN_OR_RETURN(Value seed, args[3]->GetValue(0));
    MLCS_ASSIGN_OR_RETURN(int64_t seed_value, seed.AsInt64());
    return GenerateLabelColumn(*args[0], *args[1], *args[2],
                               static_cast<uint64_t>(seed_value));
  };
  Status st = registry.RegisterScalar(std::move(gen_label),
                                      /*or_replace=*/true);
  MLCS_RETURN_IF_ERROR(st);

  udf::ScalarUdfEntry split_mask;
  split_mask.name = "split_mask";
  split_mask.return_type = TypeId::kBool;
  split_mask.has_return_type = true;
  split_mask.fn = [](const std::vector<ColumnPtr>& args,
                     size_t /*num_rows*/) -> Result<ColumnPtr> {
    if (args.size() != 3) {
      return Status::InvalidArgument("split_mask(voter_id, seed, fraction)");
    }
    MLCS_ASSIGN_OR_RETURN(Value seed, args[1]->GetValue(0));
    MLCS_ASSIGN_OR_RETURN(int64_t seed_value, seed.AsInt64());
    MLCS_ASSIGN_OR_RETURN(Value fraction, args[2]->GetValue(0));
    MLCS_ASSIGN_OR_RETURN(double f, fraction.AsDouble());
    return SplitMaskColumn(*args[0], static_cast<uint64_t>(seed_value), f);
  };
  MLCS_RETURN_IF_ERROR(
      registry.RegisterScalar(std::move(split_mask), /*or_replace=*/true));

  udf::TableUdfEntry train;
  train.name = "train_voter_rf";
  train.return_schema.AddField("classifier", TypeId::kBlob);
  train.return_schema.AddField("n_estimators", TypeId::kInt32);
  train.fn = [](const std::vector<ColumnPtr>& args) -> Result<TablePtr> {
    if (args.size() < 5) {
      return Status::InvalidArgument(
          "train_voter_rf(n_estimators, max_depth, seed, features..., "
          "labels)");
    }
    MLCS_ASSIGN_OR_RETURN(Value n_est, args[0]->GetValue(0));
    MLCS_ASSIGN_OR_RETURN(Value depth, args[1]->GetValue(0));
    MLCS_ASSIGN_OR_RETURN(Value seed, args[2]->GetValue(0));
    ml::RandomForestOptions opt;
    MLCS_ASSIGN_OR_RETURN(int64_t n_est_v, n_est.AsInt64());
    MLCS_ASSIGN_OR_RETURN(int64_t depth_v, depth.AsInt64());
    MLCS_ASSIGN_OR_RETURN(int64_t seed_v, seed.AsInt64());
    opt.n_estimators = static_cast<int>(n_est_v);
    opt.max_depth = static_cast<int>(depth_v);
    opt.seed = static_cast<uint64_t>(seed_v);
    std::vector<ColumnPtr> features(args.begin() + 3, args.end() - 1);
    MLCS_ASSIGN_OR_RETURN(ml::Matrix x, ml::Matrix::FromColumns(features));
    MLCS_ASSIGN_OR_RETURN(ColumnPtr labels,
                          args.back()->CastTo(TypeId::kInt32));
    ml::RandomForest forest(opt);
    MLCS_RETURN_IF_ERROR(forest.Fit(x, labels->i32_data()));
    Schema schema;
    schema.AddField("classifier", TypeId::kBlob);
    schema.AddField("n_estimators", TypeId::kInt32);
    auto out = Table::Make(std::move(schema));
    MLCS_RETURN_IF_ERROR(
        out->AppendRow({Value::Blob(ml::pickle::Dumps(forest)),
                        Value::Int32(opt.n_estimators)}));
    return out;
  };
  MLCS_RETURN_IF_ERROR(
      registry.RegisterTable(std::move(train), /*or_replace=*/true));

  udf::ScalarUdfEntry predict;
  predict.name = "predict_voter_rf";
  predict.return_type = TypeId::kInt32;
  predict.has_return_type = true;
  predict.fn = [](const std::vector<ColumnPtr>& args,
                  size_t /*num_rows*/) -> Result<ColumnPtr> {
    if (args.size() < 2) {
      return Status::InvalidArgument(
          "predict_voter_rf(classifier, features...)");
    }
    MLCS_ASSIGN_OR_RETURN(Value blob, args[0]->GetValue(0));
    if (blob.type() != TypeId::kBlob) {
      return Status::TypeMismatch("first argument must be the model BLOB");
    }
    // Deserialization per call — the §5.1 overhead the abl-ser benchmark
    // quantifies.
    MLCS_ASSIGN_OR_RETURN(ml::ModelPtr model,
                          ml::pickle::Loads(blob.blob_value()));
    std::vector<ColumnPtr> features(args.begin() + 1, args.end());
    MLCS_ASSIGN_OR_RETURN(ml::Matrix x, ml::Matrix::FromColumns(features));
    MLCS_ASSIGN_OR_RETURN(ml::Labels pred, model->Predict(x));
    return Column::FromInt32(std::move(pred));
  };
  MLCS_RETURN_IF_ERROR(
      registry.RegisterScalar(std::move(predict), /*or_replace=*/true));

  // The §5.1 optimization: same signature, but the deserialized model is
  // snapshotted in the global content-addressed cache, so repeated
  // predict calls skip the BLOB round-trip.
  udf::ScalarUdfEntry predict_cached;
  predict_cached.name = "predict_voter_rf_cached";
  predict_cached.return_type = TypeId::kInt32;
  predict_cached.has_return_type = true;
  predict_cached.fn = [](const std::vector<ColumnPtr>& args,
                         size_t /*num_rows*/) -> Result<ColumnPtr> {
    if (args.size() < 2) {
      return Status::InvalidArgument(
          "predict_voter_rf_cached(classifier, features...)");
    }
    MLCS_ASSIGN_OR_RETURN(Value blob, args[0]->GetValue(0));
    if (blob.type() != TypeId::kBlob) {
      return Status::TypeMismatch("first argument must be the model BLOB");
    }
    MLCS_ASSIGN_OR_RETURN(
        ml::ModelPtr model,
        modelstore::ModelCache::Global().Get(blob.blob_value()));
    std::vector<ColumnPtr> features(args.begin() + 1, args.end());
    MLCS_ASSIGN_OR_RETURN(ml::Matrix x, ml::Matrix::FromColumns(features));
    MLCS_ASSIGN_OR_RETURN(ml::Labels pred, model->Predict(x));
    return Column::FromInt32(std::move(pred));
  };
  return registry.RegisterScalar(std::move(predict_cached),
                                 /*or_replace=*/true);
}

Status LoadVoterData(Database* db, const PipelineConfig& config) {
  MLCS_ASSIGN_OR_RETURN(TablePtr voters, io::GenerateVoters(config.data));
  MLCS_ASSIGN_OR_RETURN(TablePtr precincts,
                        io::GeneratePrecincts(config.data));
  MLCS_RETURN_IF_ERROR(db->catalog().CreateTable("voters", voters,
                                                 /*or_replace=*/true));
  return db->catalog().CreateTable("precincts", precincts,
                                   /*or_replace=*/true);
}

std::string WranglingSql(const PipelineConfig& config) {
  std::vector<std::string> features = FeatureNames(config);
  std::string sql = "SELECT voter_id, " + JoinNames(features) +
                    ", gen_label(voter_id, dem_votes, rep_votes, " +
                    std::to_string(config.seed) + ") AS label" +
                    ", split_mask(voter_id, " + std::to_string(config.seed) +
                    ", " + std::to_string(config.train_fraction) +
                    ") AS is_train" +
                    " FROM voters JOIN precincts ON precinct_id = "
                    "precinct_id";
  return sql;
}

Result<PipelineResult> RunInDatabase(Database* db,
                                     const PipelineConfig& config) {
  MLCS_RETURN_IF_ERROR(RegisterVoterUdfs(db));
  PipelineResult result;
  result.method = "mlcs (in-database UDF)";
  std::vector<std::string> features = FeatureNames(config);

  // Wrangle: labels + split, all inside the engine. When factorized
  // training is enabled the per-precinct label share is computed below the
  // join (a K-entry LUT over `precincts`) and the join output is never
  // materialized; otherwise — or whenever the LUT cannot represent the
  // data — the SQL join path runs. Either way the result is registered
  // directly (columnar intermediates share buffers, MonetDB style) instead
  // of CREATE TABLE AS, which would deep-copy.
  WallTimer wrangle_timer;
  TablePtr joined;
  if (ml::FactorizedEnabled()) {
    auto wrangled = FactorizedWrangle(db, config);
    if (wrangled.ok()) joined = std::move(wrangled).ValueOrDie();
  }
  if (joined == nullptr) {
    MLCS_ASSIGN_OR_RETURN(joined, db->Query(WranglingSql(config)));
  }
  MLCS_RETURN_IF_ERROR(db->catalog().CreateTable("voter_joined", joined,
                                                 /*or_replace=*/true));
  result.load_wrangle_seconds = wrangle_timer.ElapsedSeconds();

  // Train via the table UDF; model persists as a BLOB row (Listing 1).
  WallTimer train_timer;
  std::string train_sql =
      "CREATE OR REPLACE TABLE voter_models AS SELECT * FROM "
      "train_voter_rf(" +
      std::to_string(config.n_estimators) + ", " +
      std::to_string(config.max_depth) + ", " + std::to_string(config.seed) +
      ", (SELECT " + JoinNames(features) +
      ", label FROM voter_joined WHERE is_train))";
  MLCS_RETURN_IF_ERROR(db->Query(train_sql).status());
  result.train_seconds = train_timer.ElapsedSeconds();

  // Predict + aggregate per precinct (Listing 2 + the paper's testing
  // aggregation), still inside the engine.
  WallTimer predict_timer;
  std::string predict_sql =
      "CREATE OR REPLACE TABLE voter_predictions AS SELECT precinct_id, "
      "predict_voter_rf((SELECT classifier FROM voter_models), " +
      JoinNames(features) +
      ") AS pred FROM voter_joined WHERE NOT is_train";
  MLCS_RETURN_IF_ERROR(db->Query(predict_sql).status());
  MLCS_ASSIGN_OR_RETURN(
      TablePtr aggregated,
      db->Query("SELECT precinct_id, SUM(pred) AS pred_dem, COUNT(*) AS n "
                "FROM voter_predictions GROUP BY precinct_id"));
  result.predict_seconds = predict_timer.ElapsedSeconds();

  MLCS_ASSIGN_OR_RETURN(
      TablePtr test_count,
      db->Query("SELECT COUNT(*) FROM voter_joined WHERE NOT is_train"));
  MLCS_ASSIGN_OR_RETURN(Value n, test_count->GetValue(0, 0));
  result.test_rows = static_cast<size_t>(n.int64_value());
  result.precinct_predictions = aggregated;
  MLCS_ASSIGN_OR_RETURN(result.precinct_share_mae,
                        PrecinctShareMae(*aggregated, config));
  result.total_seconds = result.load_wrangle_seconds +
                         result.train_seconds + result.predict_seconds;
  return result;
}

Result<PipelineResult> RunFromCsv(const std::string& voters_csv,
                                  const std::string& precincts_csv,
                                  const PipelineConfig& config) {
  WallTimer load_timer;
  MLCS_ASSIGN_OR_RETURN(TablePtr voters_schema_probe,
                        io::GenerateVoters({1, 1, config.data.num_columns,
                                            config.data.seed}));
  // Known schemas → the fast typed CSV path.
  MLCS_ASSIGN_OR_RETURN(
      TablePtr voters,
      io::ReadCsv(voters_csv, voters_schema_probe->schema()));
  Schema precinct_schema;
  precinct_schema.AddField("precinct_id", TypeId::kInt32);
  precinct_schema.AddField("dem_votes", TypeId::kInt32);
  precinct_schema.AddField("rep_votes", TypeId::kInt32);
  MLCS_ASSIGN_OR_RETURN(TablePtr precincts,
                        io::ReadCsv(precincts_csv, precinct_schema));
  double load_seconds = load_timer.ElapsedSeconds();
  return RunExternal(dataframe::DataFrame(voters),
                     dataframe::DataFrame(precincts), config, "csv",
                     load_seconds);
}

Result<PipelineResult> RunFromNpyDir(const std::string& voters_dir,
                                     const std::string& precincts_dir,
                                     const PipelineConfig& config) {
  WallTimer load_timer;
  MLCS_ASSIGN_OR_RETURN(TablePtr voters,
                        io::LoadTableFromNpyDir(voters_dir));
  MLCS_ASSIGN_OR_RETURN(TablePtr precincts,
                        io::LoadTableFromNpyDir(precincts_dir));
  double load_seconds = load_timer.ElapsedSeconds();
  return RunExternal(dataframe::DataFrame(voters),
                     dataframe::DataFrame(precincts), config, "numpy-binary",
                     load_seconds);
}

Result<PipelineResult> RunFromH5b(const std::string& voters_file,
                                  const std::string& precincts_file,
                                  const PipelineConfig& config) {
  WallTimer load_timer;
  MLCS_ASSIGN_OR_RETURN(TablePtr voters, io::ReadH5b(voters_file));
  MLCS_ASSIGN_OR_RETURN(TablePtr precincts, io::ReadH5b(precincts_file));
  double load_seconds = load_timer.ElapsedSeconds();
  return RunExternal(dataframe::DataFrame(voters),
                     dataframe::DataFrame(precincts), config, "hdf5-like",
                     load_seconds);
}

Result<PipelineResult> RunFromSocket(const std::string& host, uint16_t port,
                                     client::WireProtocol protocol,
                                     const PipelineConfig& config) {
  // The server performs the join/label/split in SQL; the client receives
  // the preprocessed rows over the socket and continues externally — the
  // paper's PostgreSQL/MySQL setup.
  WallTimer load_timer;
  client::TableClient tcp;
  MLCS_RETURN_IF_ERROR(tcp.Connect(host, port));
  MLCS_ASSIGN_OR_RETURN(TablePtr wrangled,
                        tcp.Query(WranglingSql(config), protocol));
  double load_seconds = load_timer.ElapsedSeconds();
  return FinishFromWrangled(std::move(wrangled), config,
                            std::string("socket ") +
                                client::WireProtocolToString(protocol),
                            load_seconds);
}

Result<PipelineResult> RunSqliteLike(Database* db,
                                     const PipelineConfig& config) {
  MLCS_RETURN_IF_ERROR(RegisterVoterUdfs(db));
  // In-process, but the result set is fetched row-at-a-time through the
  // cursor API with per-cell Value boxing — the SQLite bar.
  WallTimer load_timer;
  MLCS_ASSIGN_OR_RETURN(TablePtr wrangled,
                        client::FetchAllRowAtATime(db, WranglingSql(config)));
  double load_seconds = load_timer.ElapsedSeconds();
  return FinishFromWrangled(std::move(wrangled), config,
                            "sqlite-like (row-at-a-time)", load_seconds);
}

}  // namespace mlcs::pipeline
