#ifndef MLCS_PIPELINE_VOTER_PIPELINE_H_
#define MLCS_PIPELINE_VOTER_PIPELINE_H_

#include <string>
#include <vector>

#include "client/protocol.h"
#include "common/result.h"
#include "io/voter_gen.h"
#include "sql/database.h"

namespace mlcs::pipeline {

/// Voter-classification pipeline parameters (paper §4). Every channel runs
/// the *same* logical pipeline: join voters with precincts, generate a
/// "true" label per voter by weighted random from the precinct's vote
/// share, split train/test, fit a random forest, predict the test set, and
/// aggregate predictions per precinct.
struct PipelineConfig {
  io::VoterDataOptions data;
  int n_estimators = 8;
  int max_depth = 10;
  double train_fraction = 0.5;
  uint64_t seed = 42;
};

/// One Figure-1 bar: total time plus the load/initial-wrangling share
/// (the gray sub-bar), and a quality check (mean absolute error between
/// aggregated predicted and actual precinct dem-share).
struct PipelineResult {
  std::string method;
  double load_wrangle_seconds = 0;
  double train_seconds = 0;
  double predict_seconds = 0;
  double total_seconds = 0;
  double precinct_share_mae = 0;
  size_t test_rows = 0;
  /// Per-precinct aggregate predictions (precinct_id, predicted dem count,
  /// test rows) — identical across channels given identical config; the
  /// cross-channel equivalence test keys on this.
  TablePtr precinct_predictions;
};

/// -- Shared deterministic building blocks (identical on every channel) --

/// Weighted-random "true" class label per voter: P(dem) = precinct dem
/// share; deterministic in (voter_id, seed).
[[nodiscard]] ColumnPtr GenerateLabelColumn(const Column& voter_id,
                                            const Column& dem,
                                            const Column& rep, uint64_t seed);

/// Train/test split mask, deterministic in (voter_id, seed).
[[nodiscard]] ColumnPtr SplitMaskColumn(const Column& voter_id, uint64_t seed,
                                        double train_fraction);

/// Factorized form of GenerateLabelColumn: the per-precinct dem share is a
/// K-entry LUT (`share[k]` for precinct k) gathered through each voter's
/// `precinct` code instead of joining the vote columns onto every voter.
/// Bit-identical to GenerateLabelColumn when `share[k]` holds the same
/// double the joined path computes per row (dem/(dem+rep), 0.5 when no
/// votes). Precondition: every precinct code indexes into `share`.
[[nodiscard]] ColumnPtr GenerateLabelColumnFactorized(
    const Column& voter_id, const Column& precinct,
    const std::vector<double>& share, uint64_t seed);

/// Registers the pipeline's native vectorized UDFs on a database:
///   gen_label(voter_id, dem, rep, seed)              → INTEGER
///   split_mask(voter_id, seed, fraction_permille)    → BOOLEAN
///   train_voter_rf(n_estimators, max_depth, seed, f..., labels)
///       → TABLE(classifier BLOB, n_estimators INTEGER)
///   predict_voter_rf(classifier, f...)               → INTEGER
Status RegisterVoterUdfs(Database* db);

/// Loads the synthetic dataset into `db` as `voters` + `precincts` (the
/// in-database channel's starting state: data already lives in the RDBMS).
Status LoadVoterData(Database* db, const PipelineConfig& config);

/// -- Figure-1 channels ---------------------------------------------------

/// MonetDB/Python analogue: everything in the database via vectorized
/// UDFs; data never leaves the engine.
Result<PipelineResult> RunInDatabase(Database* db,
                                     const PipelineConfig& config);

/// External pipeline loading from CSV text files.
Result<PipelineResult> RunFromCsv(const std::string& voters_csv,
                                  const std::string& precincts_csv,
                                  const PipelineConfig& config);

/// External pipeline loading from per-column NumPy .npy files.
Result<PipelineResult> RunFromNpyDir(const std::string& voters_dir,
                                     const std::string& precincts_dir,
                                     const PipelineConfig& config);

/// External pipeline loading from the HDF5-like .h5b chunked files.
Result<PipelineResult> RunFromH5b(const std::string& voters_file,
                                  const std::string& precincts_file,
                                  const PipelineConfig& config);

/// External pipeline pulling preprocessed data from a database server over
/// a socket (PostgreSQL-style text protocol or MySQL-style binary).
Result<PipelineResult> RunFromSocket(const std::string& host, uint16_t port,
                                     client::WireProtocol protocol,
                                     const PipelineConfig& config);

/// External pipeline using an in-process row-at-a-time cursor (SQLite
/// analogue): no socket, but per-cell boxing.
Result<PipelineResult> RunSqliteLike(Database* db,
                                     const PipelineConfig& config);

/// The wrangling SQL the server-backed channels execute remotely (exposed
/// for tests): join + labels + split mask, projecting features/label/mask.
std::string WranglingSql(const PipelineConfig& config);

}  // namespace mlcs::pipeline

#endif  // MLCS_PIPELINE_VOTER_PIPELINE_H_
