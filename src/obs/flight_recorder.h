#ifndef MLCS_OBS_FLIGHT_RECORDER_H_
#define MLCS_OBS_FLIGHT_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "obs/trace.h"

namespace mlcs::obs {

/// One completed trace as retained by the flight recorder: the span tree
/// plus query-level context the root alone cannot carry.
struct RecordedTrace {
  uint64_t trace_id = 0;
  std::string root_name;   // "query: <sql prefix>" etc.
  std::string query_text;  // full SQL when the trace wraps a statement
  std::string plan_text;   // optimized plan, rendered only for slow queries
  double duration_ms = 0.0;
  uint64_t dropped_spans = 0;  // per-trace span-cap drops (satellite fix)
  bool truncated = false;      // hit the 8192-span cap
  bool slow = false;           // crossed MLCS_SLOW_QUERY_MS
  std::vector<TraceSpan> spans;  // root included, insertion order
  size_t bytes = 0;  // retention accounting, filled by AddTrace
};

/// Always-on flight recorder (DESIGN.md §15) — replaces PR-5's 64-trace
/// TraceSink. Two retention domains:
///
///  - the **ring**: every completed trace, evicted oldest-first once the
///    byte budget (MLCS_FLIGHT_RECORDER_BYTES, default 4 MiB, 0 disables
///    recording) is exceeded; evictions count in
///    `mlcs.trace.evicted_traces`. Queryable via `mlcs_trace(id)`.
///  - the **slow-query log**: traces whose root exceeded
///    MLCS_SLOW_QUERY_MS (default 250) keep their full span tree and
///    optimized plan text in a separate bounded log (newest
///    kMaxSlowQueries), queryable via `mlcs_slow_queries()`.
///
/// Additionally every AddTrace publishes a pre-serialized JSON summary
/// into the lock-free crash slot ring (crash_state.h), and rate-limits a
/// refresh of the crash-visible metrics buffer — that is what the
/// async-signal-safe crash dump reads.
class FlightRecorder {
 public:
  static constexpr size_t kDefaultByteBudget = 4u << 20;
  static constexpr size_t kMaxSlowQueries = 32;
  static constexpr double kDefaultSlowQueryMs = 250.0;

  explicit FlightRecorder(size_t byte_budget,
                          size_t max_slow = kMaxSlowQueries);

  /// Retains `trace` (no-op when recording is disabled or the trace is
  /// empty). Decides `slow` from the threshold, fills `bytes`.
  void AddTrace(RecordedTrace trace);

  /// Spans of one retained trace — ring first, then the slow log (a slow
  /// trace evicted from the ring stays reachable) — or of every ring
  /// trace when `trace_id == 0`. Ordered by (trace, span id).
  std::vector<TraceSpan> Query(uint64_t trace_id) const;

  /// Slow-log entries, newest first (span trees included).
  std::vector<RecordedTrace> SlowQueries() const;

  /// The newest `limit` ring entries (spans omitted), newest first.
  std::vector<RecordedTrace> RecentTraces(size_t limit) const;

  void Clear();
  size_t trace_count() const;
  size_t bytes_retained() const;
  size_t slow_query_count() const;

  /// Process-wide recorder; budget from MLCS_FLIGHT_RECORDER_BYTES.
  static FlightRecorder& Global();

  /// True when completed traces should be captured: the runtime flag is
  /// on (default) AND Global()'s budget is non-zero. The gate
  /// Database::Query checks before forcing a context.
  static bool RecordingEnabled();
  /// Runtime override (bench baselines, tests); does not change budgets.
  static void SetRecordingEnabled(bool enabled);

  /// Slow-query threshold: MLCS_SLOW_QUERY_MS unless overridden.
  static double SlowQueryThresholdMs();
  static void SetSlowQueryThresholdMsForTesting(double ms);

  /// Re-serializes the global metrics snapshot into the crash-visible
  /// buffer. Rate-limited to every ~250ms unless `force`; called from
  /// AddTrace and from the exporters.
  static void RefreshCrashMetrics(bool force = false);

 private:
  void EvictLocked() MLCS_REQUIRES(mutex_);
  void PublishCrashSlot(const RecordedTrace& trace);

  const size_t byte_budget_;
  const size_t max_slow_;
  mutable Mutex mutex_{"FlightRecorder::mutex_"};
  std::deque<RecordedTrace> ring_ MLCS_GUARDED_BY(mutex_);
  std::deque<RecordedTrace> slow_ MLCS_GUARDED_BY(mutex_);
  size_t ring_bytes_ MLCS_GUARDED_BY(mutex_) = 0;
};

}  // namespace mlcs::obs

#endif  // MLCS_OBS_FLIGHT_RECORDER_H_
