#include "obs/flight_recorder.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/crash_dump.h"
#include "obs/crash_state.h"
#include "obs/metrics.h"

namespace mlcs::obs {

namespace crash {

CrashState& GlobalCrashState() {
  // Static storage (not heap): the crash handler must be able to read
  // this even when malloc's state is what crashed.
  static CrashState state;
  return state;
}

}  // namespace crash

namespace {

std::atomic<bool> g_recording_enabled{true};
/// Microseconds; -1 = undecided (resolve from MLCS_SLOW_QUERY_MS).
std::atomic<int64_t> g_slow_threshold_us{-1};

/// Installed before main() in every process linking the engine (this TU
/// is always referenced by the trace-flush path), so `kill -USR1 <pid>`
/// dumps state from the first instruction on — no lazy init to race.
/// SIGUSR1's default action is termination, so taking it over only
/// helps. Fatal-signal dumps are opt-in: sanitizers and death tests own
/// SIGSEGV/SIGABRT, so those install only under MLCS_CRASH_DUMP=1.
const bool g_crash_handler_installed = [] {
  const char* fatal = std::getenv("MLCS_CRASH_DUMP");
  return crash::InstallCrashHandler(
      /*install_fatal=*/fatal != nullptr && *fatal == '1');
}();

Counter* EvictedTracesCounter() {
  static Counter* counter =
      MetricsRegistry::Global().GetCounter("mlcs.trace.evicted_traces");
  return counter;
}

Counter* SlowQueriesCounter() {
  static Counter* counter =
      MetricsRegistry::Global().GetCounter("mlcs.slow_query.captured");
  return counter;
}

size_t TraceBytes(const RecordedTrace& t) {
  size_t bytes = sizeof(RecordedTrace) + t.root_name.size() +
                 t.query_text.size() + t.plan_text.size();
  for (const TraceSpan& s : t.spans) {
    bytes += sizeof(TraceSpan) + s.name.size() + s.note.size();
  }
  return bytes;
}

/// Copies `src` into `dst` (capacity `cap`, always NUL-terminated),
/// replacing JSON-breaking bytes so crash slots can quote it verbatim.
void CopySanitized(char* dst, size_t cap, const std::string& src) {
  size_t n = 0;
  for (char c : src) {
    if (n + 1 >= cap) break;
    unsigned char u = static_cast<unsigned char>(c);
    dst[n++] = (u < 0x20 || c == '"' || c == '\\') ? ' ' : c;
  }
  dst[n] = '\0';
}

}  // namespace

FlightRecorder::FlightRecorder(size_t byte_budget, size_t max_slow)
    : byte_budget_(byte_budget), max_slow_(max_slow) {}

double FlightRecorder::SlowQueryThresholdMs() {
  int64_t us = g_slow_threshold_us.load(std::memory_order_relaxed);
  if (us >= 0) return static_cast<double>(us) / 1000.0;
  double ms = kDefaultSlowQueryMs;
  const char* env = std::getenv("MLCS_SLOW_QUERY_MS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    double parsed = std::strtod(env, &end);
    if (end != nullptr && *end == '\0' && parsed >= 0.0) ms = parsed;
  }
  int64_t expected = -1;
  g_slow_threshold_us.compare_exchange_strong(
      expected, static_cast<int64_t>(ms * 1000.0),
      std::memory_order_relaxed);
  return static_cast<double>(
             g_slow_threshold_us.load(std::memory_order_relaxed)) /
         1000.0;
}

void FlightRecorder::SetSlowQueryThresholdMsForTesting(double ms) {
  g_slow_threshold_us.store(static_cast<int64_t>(ms * 1000.0),
                            std::memory_order_relaxed);
}

bool FlightRecorder::RecordingEnabled() {
  if (!g_recording_enabled.load(std::memory_order_relaxed)) return false;
  return Global().byte_budget_ > 0;
}

void FlightRecorder::SetRecordingEnabled(bool enabled) {
  g_recording_enabled.store(enabled, std::memory_order_relaxed);
}

void FlightRecorder::PublishCrashSlot(const RecordedTrace& trace) {
  crash::CrashState& state = crash::GlobalCrashState();
  uint32_t idx = state.next_trace_slot.fetch_add(
                     1, std::memory_order_relaxed) %
                 crash::kNumTraceSlots;
  crash::TraceSlot& slot = state.trace_slots[idx];
  char name[160];
  CopySanitized(name, sizeof(name), trace.root_name);
  slot.seq.fetch_add(1, std::memory_order_acq_rel);  // odd: mid-write
  int n = std::snprintf(
      slot.data, crash::kTraceSlotBytes,
      "{\"trace_id\":%llu,\"name\":\"%s\",\"duration_ms\":%.3f,"
      "\"spans\":%zu,\"dropped_spans\":%llu,\"truncated\":%s,"
      "\"slow\":%s}",
      static_cast<unsigned long long>(trace.trace_id), name,
      trace.duration_ms, trace.spans.size(),
      static_cast<unsigned long long>(trace.dropped_spans),
      trace.truncated ? "true" : "false", trace.slow ? "true" : "false");
  if (n < 0) n = 0;
  if (static_cast<size_t>(n) >= crash::kTraceSlotBytes) {
    n = crash::kTraceSlotBytes - 1;
  }
  slot.len.store(static_cast<uint32_t>(n), std::memory_order_relaxed);
  slot.seq.fetch_add(1, std::memory_order_acq_rel);  // even: stable
}

void FlightRecorder::RefreshCrashMetrics(bool force) {
  static std::atomic<int64_t> last_refresh_ns{0};
  int64_t now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now().time_since_epoch())
                       .count();
  int64_t last = last_refresh_ns.load(std::memory_order_relaxed);
  if (!force && now_ns - last < 250'000'000) return;
  if (!last_refresh_ns.compare_exchange_strong(
          last, now_ns, std::memory_order_relaxed)) {
    if (!force) return;  // another thread is refreshing right now
  }
  std::vector<MetricSample> samples = MetricsRegistry::Global().Snapshot();
  crash::SeqBuf& buf = crash::GlobalCrashState().metrics;
  buf.seq.fetch_add(1, std::memory_order_acq_rel);
  size_t pos = 0;
  buf.data[pos++] = '{';
  bool first = true;
  for (const MetricSample& s : samples) {
    char entry[192];
    char name[128];
    CopySanitized(name, sizeof(name), s.name);
    int n = std::snprintf(entry, sizeof(entry), "%s\"%s\":%.6g",
                          first ? "" : ",", name, s.value);
    if (n < 0) continue;
    if (pos + static_cast<size_t>(n) + 2 > crash::kMetricsBufBytes) break;
    std::memcpy(buf.data + pos, entry, static_cast<size_t>(n));
    pos += static_cast<size_t>(n);
    first = false;
  }
  buf.data[pos++] = '}';
  buf.len.store(static_cast<uint32_t>(pos), std::memory_order_relaxed);
  buf.seq.fetch_add(1, std::memory_order_acq_rel);
}

void FlightRecorder::AddTrace(RecordedTrace trace) {
  if (trace.spans.empty()) return;
  if (!g_recording_enabled.load(std::memory_order_relaxed) ||
      byte_budget_ == 0) {
    return;
  }
  trace.slow = trace.duration_ms >= SlowQueryThresholdMs();
  trace.bytes = TraceBytes(trace);
  const bool slow = trace.slow;
  PublishCrashSlot(trace);
  {
    MutexLock lock(&mutex_);
    if (slow) {
      slow_.push_back(trace);  // full copy: survives ring eviction
      while (slow_.size() > max_slow_) slow_.pop_front();
    }
    ring_bytes_ += trace.bytes;
    ring_.push_back(std::move(trace));
    EvictLocked();
  }
  if (slow) SlowQueriesCounter()->Add(1);
  RefreshCrashMetrics();
}

void FlightRecorder::EvictLocked() MLCS_REQUIRES(mutex_) {
  while (ring_bytes_ > byte_budget_ && ring_.size() > 1) {
    ring_bytes_ -= ring_.front().bytes;
    ring_.pop_front();
    EvictedTracesCounter()->Add(1);
  }
}

std::vector<TraceSpan> FlightRecorder::Query(uint64_t trace_id) const {
  std::vector<TraceSpan> out;
  {
    MutexLock lock(&mutex_);
    bool found = false;
    for (const RecordedTrace& t : ring_) {
      if (trace_id != 0 && t.trace_id != trace_id) continue;
      out.insert(out.end(), t.spans.begin(), t.spans.end());
      found = true;
    }
    if (!found && trace_id != 0) {
      for (const RecordedTrace& t : slow_) {
        if (t.trace_id != trace_id) continue;
        out.insert(out.end(), t.spans.begin(), t.spans.end());
        break;
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
              return a.span_id < b.span_id;
            });
  return out;
}

std::vector<RecordedTrace> FlightRecorder::SlowQueries() const {
  MutexLock lock(&mutex_);
  return {slow_.rbegin(), slow_.rend()};
}

std::vector<RecordedTrace> FlightRecorder::RecentTraces(
    size_t limit) const {
  std::vector<RecordedTrace> out;
  MutexLock lock(&mutex_);
  for (auto it = ring_.rbegin(); it != ring_.rend() && out.size() < limit;
       ++it) {
    RecordedTrace summary = *it;
    summary.spans.clear();
    out.push_back(std::move(summary));
  }
  return out;
}

void FlightRecorder::Clear() {
  MutexLock lock(&mutex_);
  ring_.clear();
  slow_.clear();
  ring_bytes_ = 0;
}

size_t FlightRecorder::trace_count() const {
  MutexLock lock(&mutex_);
  return ring_.size();
}

size_t FlightRecorder::bytes_retained() const {
  MutexLock lock(&mutex_);
  return ring_bytes_;
}

size_t FlightRecorder::slow_query_count() const {
  MutexLock lock(&mutex_);
  return slow_.size();
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = [] {
    size_t budget = kDefaultByteBudget;
    const char* env = std::getenv("MLCS_FLIGHT_RECORDER_BYTES");
    if (env != nullptr && *env != '\0') {
      budget = static_cast<size_t>(std::strtoull(env, nullptr, 10));
    }
    return new FlightRecorder(budget);
  }();
  return *recorder;
}

}  // namespace mlcs::obs
