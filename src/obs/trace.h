#ifndef MLCS_OBS_TRACE_H_
#define MLCS_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"

namespace mlcs::obs {

/// Per-query trace spans (DESIGN.md §10). A TraceContext is created at a
/// query or batch boundary and installed as the calling thread's current
/// context; ScopedSpan then records one completed span per instrumented
/// stage (parse → plan → optimize → each physical operator, UDF calls,
/// model-cache loads, serving batch/predict). Pool threads join a context
/// explicitly with ScopedTraceAttach — span collection is mutex-protected,
/// so morsel-parallel operators and concurrent serving batches stay
/// TSan-clean.
///
/// Zero-cost when off: contexts are only created when TracingEnabled()
/// (one relaxed atomic load), and every ScopedSpan constructor starts with
/// a plain thread-local null check — no clock reads, no allocation, no
/// atomics on the untraced path.

/// One completed span. Ids are per-trace: the root span is 1, parent 0.
struct TraceSpan {
  uint64_t trace_id = 0;
  uint32_t span_id = 0;
  uint32_t parent_id = 0;
  /// Small per-thread index (CurrentThreadIndex()) of the recording
  /// thread — the `tid` of the Chrome trace_event export, which is how a
  /// morsel-parallel operator's spans land on separate timeline rows.
  uint32_t tid = 0;
  std::string name;
  /// Offset from the trace's start, and the span's own wall time.
  std::chrono::nanoseconds start_offset{0};
  std::chrono::nanoseconds duration{0};
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  uint64_t bytes = 0;
  /// Free-form per-span annotation (e.g. a stored scan's
  /// "blocks=8 skipped=6 ..."); rendered by EXPLAIN ANALYZE.
  std::string note;
  /// Identity of the plan node that produced this span (EXPLAIN ANALYZE
  /// matches annotations through it); never exported through SQL.
  const void* op_token = nullptr;
};

/// Process-wide enable flag for background tracing (mlcs_trace()).
/// EXPLAIN ANALYZE forces a context regardless.
bool TracingEnabled();
void SetTracingEnabled(bool enabled);

/// True when a query boundary should create a trace context: tracing is
/// on OR the always-on flight recorder is capturing completed traces.
/// (Implemented in trace.cc to keep this header free of the recorder.)
bool TraceCaptureEnabled();

/// True when the calling thread currently has a trace context installed —
/// the cheap gate instrumentation checks before building span names.
bool TraceActive();

/// Stable small index (1, 2, …) identifying the calling thread; assigned
/// on first use. Exported as the Chrome trace `tid` and the crash dump's
/// thread key — readable, unlike the 64-bit std::thread::id hash.
uint32_t CurrentThreadIndex();

class TraceContext;

/// Attaches `ctx` (may be null → no-op) as the calling thread's current
/// context for the scope — how pool tasks contribute spans to the query or
/// batch that spawned them. New spans parent under the context's root.
class ScopedTraceAttach {
 public:
  explicit ScopedTraceAttach(TraceContext* ctx);
  ~ScopedTraceAttach();
  ScopedTraceAttach(const ScopedTraceAttach&) = delete;
  ScopedTraceAttach& operator=(const ScopedTraceAttach&) = delete;

 private:
  TraceContext* saved_ctx_;
  uint32_t saved_parent_;
  bool attached_ = false;
};

/// Collects the spans of one trace. Construction installs the context on
/// the calling thread (saving any outer context; an EXPLAIN ANALYZE inside
/// a traced session shadows, then restores it). Destruction records the
/// root span and flushes everything to the global FlightRecorder — unless
/// the caller already took the spans with ConsumeSpans().
class TraceContext {
 public:
  /// `force` creates an active context even when TracingEnabled() is off
  /// (EXPLAIN ANALYZE). When inactive, the context installs nothing and
  /// every operation is a no-op.
  explicit TraceContext(std::string root_name, bool force = false);
  ~TraceContext();
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  bool active() const { return active_; }
  uint64_t trace_id() const { return trace_id_; }

  /// Wall time since construction — what Database::Query compares against
  /// the slow-query threshold before rendering plan text.
  double ElapsedMs() const;

  /// Query-level context carried into the flight recorder's RecordedTrace
  /// (no-ops when inactive). Plan text is set lazily, post-execution, and
  /// only for queries that crossed the slow threshold.
  void set_query_text(std::string sql);
  void set_plan_text(std::string plan);

  /// Spans this trace dropped at the kMaxSpansPerTrace cap (per-trace
  /// attribution; the global `mlcs.trace.dropped_spans` counter is the
  /// process aggregate).
  uint64_t dropped_spans() const;

  /// Records a completed span with explicit endpoints (e.g. the serving
  /// admission wait, whose start predates the batch's context).
  /// Thread-safe; no-op when inactive.
  void RecordSpan(std::string name,
                  std::chrono::steady_clock::time_point start,
                  std::chrono::steady_clock::time_point end,
                  uint64_t rows_in = 0, uint64_t rows_out = 0,
                  uint64_t bytes = 0);

  /// Takes the collected spans (root span included, finalized as of now);
  /// the destructor then flushes nothing. EXPLAIN ANALYZE reads spans this
  /// way instead of via the sink.
  std::vector<TraceSpan> ConsumeSpans();

 private:
  friend class ScopedSpan;
  friend class ScopedTraceAttach;

  uint32_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }
  void Record(TraceSpan span);
  TraceSpan MakeRootSpan() const;

  // Written once in the constructor on the owning thread, read-only while
  // pool threads are attached — only spans_/dropped_warned_ are shared
  // mutable state.
  bool active_ = false;           // lint:allow(guarded-member)
  bool consumed_ = false;         // lint:allow(guarded-member) owner-thread only
  uint64_t trace_id_ = 0;         // lint:allow(guarded-member)
  std::string root_name_;         // lint:allow(guarded-member)
  /// Owner-thread only, like root_name_.
  std::string query_text_;        // lint:allow(guarded-member)
  std::string plan_text_;         // lint:allow(guarded-member)
  std::chrono::steady_clock::time_point start_;  // lint:allow(guarded-member)
  std::atomic<uint32_t> next_span_id_{2};  // 1 is the root
  std::atomic<uint64_t> dropped_{0};
  Mutex mutex_{"TraceContext::mutex_"};
  std::vector<TraceSpan> spans_ MLCS_GUARDED_BY(mutex_);
  bool dropped_warned_ MLCS_GUARDED_BY(mutex_) = false;
  // Thread-local state saved at installation, restored at destruction.
  TraceContext* prev_ctx_ = nullptr;  // lint:allow(guarded-member)
  uint32_t prev_parent_ = 0;          // lint:allow(guarded-member)
};

/// RAII span: measures its own scope on the thread's current context.
/// Inactive (and nearly free) when no context is installed.
class ScopedSpan {
 public:
  /// The const char* form never materializes a string when inactive; use
  /// the (prefix, suffix) form for dynamic names — the concatenation only
  /// happens on the traced path.
  explicit ScopedSpan(const char* name);
  explicit ScopedSpan(std::string name);
  ScopedSpan(const char* prefix, const std::string& suffix);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return ctx_ != nullptr; }
  void set_rows_in(uint64_t n) { rows_in_ = n; }
  void set_rows_out(uint64_t n) { rows_out_ = n; }
  void set_bytes(uint64_t n) { bytes_ = n; }
  void set_note(std::string note) { note_ = std::move(note); }
  void set_op_token(const void* token) { op_token_ = token; }

 private:
  void Begin(std::string name);

  TraceContext* ctx_ = nullptr;
  uint32_t span_id_ = 0;
  uint32_t parent_ = 0;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  uint64_t rows_in_ = 0;
  uint64_t rows_out_ = 0;
  uint64_t bytes_ = 0;
  std::string note_;
  const void* op_token_ = nullptr;
};

}  // namespace mlcs::obs

#endif  // MLCS_OBS_TRACE_H_
