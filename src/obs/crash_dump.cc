// Async-signal-safe crash dump writer. EVERYTHING in this translation
// unit must stay callable from a signal handler: no allocation, no locks,
// no stdio, no std::string — only atomics, byte copies into static
// buffers, and open()/write()/close(). The `signal-unsafe` lint rule
// enforces this mechanically (tools/lint.py).

#include "obs/crash_dump.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstddef>
#include <cstdint>

#include "obs/crash_state.h"

namespace mlcs::obs::crash {

namespace {

constexpr size_t kDirBytes = 200;
constexpr size_t kPathBytes = 256;

char g_dump_dir[kDirBytes] = ".";
char g_dump_path[kPathBytes] = {0};
std::atomic<bool> g_installed{false};
std::atomic<bool> g_dump_in_progress{false};
/// Seqlock copy targets. Static (not stack): a signal handler's stack may
/// be nearly exhausted — SIGSEGV from stack overflow is a dump we want.
/// g_dump_in_progress serializes access.
char g_metrics_scratch[kMetricsBufBytes];
char g_slot_scratch[kTraceSlotBytes];

size_t StrLen(const char* s) {
  size_t n = 0;
  while (s[n] != '\0') ++n;
  return n;
}

void ByteCopy(char* dst, const char* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] = src[i];
}

void WriteAll(int fd, const char* data, size_t n) {
  while (n > 0) {
    ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return;  // best effort: a failing fd must not hang the handler
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
}

void WriteStr(int fd, const char* s) { WriteAll(fd, s, StrLen(s)); }

/// Decimal formatting without snprintf; buf must hold >= 21 bytes.
size_t FormatU64(uint64_t v, char* buf) {
  char tmp[21];
  size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + (v % 10));
    v /= 10;
  } while (v != 0);
  for (size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  buf[n] = '\0';
  return n;
}

void WriteU64(int fd, uint64_t v) {
  char buf[24];
  WriteAll(fd, buf, FormatU64(v, buf));
}

/// Seqlock read of one pre-serialized buffer into `dst` (capacity `cap`).
/// Returns the stable length, or 0 when the buffer is empty or a writer
/// kept it unstable across the retry budget.
template <typename Buf>
uint32_t ReadSeqBuf(const Buf& buf, char* dst, size_t cap) {
  for (int attempt = 0; attempt < 3; ++attempt) {
    uint32_t seq1 = buf.seq.load(std::memory_order_acquire);
    if (seq1 == 0 || (seq1 & 1u) != 0) continue;
    uint32_t len = buf.len.load(std::memory_order_acquire);
    if (len == 0 || len > cap) continue;
    ByteCopy(dst, buf.data, len);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (buf.seq.load(std::memory_order_acquire) == seq1) return len;
  }
  return 0;
}

/// The dump body. Runs in signal context for real signals; `sig == 0`
/// marks a direct (test) invocation.
void WriteCrashDump(int sig) {
  if (g_dump_in_progress.exchange(true)) return;  // re-entry: first wins
  int fd = ::open(g_dump_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    CrashState& state = GlobalCrashState();
    WriteStr(fd, "{\"signal\":");
    WriteU64(fd, static_cast<uint64_t>(sig));
    WriteStr(fd, ",\"pid\":");
    WriteU64(fd, static_cast<uint64_t>(::getpid()));

    WriteStr(fd, ",\"metrics\":");
    uint32_t mlen =
        ReadSeqBuf(state.metrics, g_metrics_scratch, kMetricsBufBytes);
    if (mlen > 0) {
      WriteAll(fd, g_metrics_scratch, mlen);
    } else {
      WriteStr(fd, "null");
    }

    WriteStr(fd, ",\"recent_traces\":[");
    bool first = true;
    for (size_t i = 0; i < kNumTraceSlots; ++i) {
      uint32_t len =
          ReadSeqBuf(state.trace_slots[i], g_slot_scratch, kTraceSlotBytes);
      if (len == 0) continue;
      if (!first) WriteStr(fd, ",");
      first = false;
      WriteAll(fd, g_slot_scratch, len);
    }

    WriteStr(fd, "],\"threads\":[");
    first = true;
    for (size_t i = 0; i < kMaxThreadSlots; ++i) {
      const ThreadSlot& slot = state.thread_slots[i];
      if (slot.in_use.load(std::memory_order_acquire) == 0) continue;
      uint32_t depth = slot.depth.load(std::memory_order_acquire);
      if (depth > kMaxSpanDepth) depth = kMaxSpanDepth;
      if (!first) WriteStr(fd, ",");
      first = false;
      WriteStr(fd, "{\"thread_index\":");
      WriteU64(fd, slot.thread_index.load(std::memory_order_relaxed));
      WriteStr(fd, ",\"trace_id\":");
      WriteU64(fd, slot.trace_id.load(std::memory_order_relaxed));
      WriteStr(fd, ",\"stack\":[");
      for (uint32_t d = 0; d < depth; ++d) {
        if (d > 0) WriteStr(fd, ",");
        WriteStr(fd, "\"");
        // Frame names were JSON-sanitized and NUL-terminated at push time
        // (trace.cc), so they are quotable verbatim.
        WriteStr(fd, slot.names[d]);
        WriteStr(fd, "\"");
      }
      WriteStr(fd, "]}");
    }
    WriteStr(fd, "]}\n");
    ::close(fd);
  }
  g_dump_in_progress.store(false);
}

void CrashSignalHandler(int sig) {
  int saved_errno = errno;
  WriteCrashDump(sig);
  if (sig == SIGUSR1) {
    errno = saved_errno;  // on-demand dump: return to the interrupted code
    return;
  }
  // Fatal path: restore the default disposition and re-deliver so the
  // process still dies with the right status (and core, if enabled).
  struct sigaction dfl = {};
  dfl.sa_handler = SIG_DFL;
  ::sigemptyset(&dfl.sa_mask);
  ::sigaction(sig, &dfl, nullptr);
  ::raise(sig);
}

void RebuildPath() {
  size_t n = StrLen(g_dump_dir);
  ByteCopy(g_dump_path, g_dump_dir, n);
  g_dump_path[n++] = '/';
  const char prefix[] = "mlcs_crash_";
  ByteCopy(g_dump_path + n, prefix, sizeof(prefix) - 1);
  n += sizeof(prefix) - 1;
  n += FormatU64(static_cast<uint64_t>(::getpid()), g_dump_path + n);
  const char suffix[] = ".json";
  ByteCopy(g_dump_path + n, suffix, sizeof(suffix));  // includes the NUL
}

}  // namespace

bool InstallCrashHandler(bool install_fatal) {
  RebuildPath();
  struct sigaction sa = {};
  sa.sa_handler = CrashSignalHandler;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  if (::sigaction(SIGUSR1, &sa, nullptr) != 0) return false;
  if (install_fatal) {
    // No SA_RESTART on fatal signals; they never return anyway.
    sa.sa_flags = 0;
    if (::sigaction(SIGSEGV, &sa, nullptr) != 0) return false;
    if (::sigaction(SIGABRT, &sa, nullptr) != 0) return false;
  }
  g_installed.store(true);
  return true;
}

void SetCrashDumpDir(const char* dir) {
  size_t n = StrLen(dir);
  if (n == 0) {
    dir = ".";
    n = 1;
  }
  if (n >= kDirBytes) n = kDirBytes - 1;
  ByteCopy(g_dump_dir, dir, n);
  g_dump_dir[n] = '\0';
  RebuildPath();
}

const char* CrashDumpPath() {
  if (g_dump_path[0] == '\0') RebuildPath();
  return g_dump_path;
}

void TriggerCrashDumpForTesting() {
  if (g_dump_path[0] == '\0') RebuildPath();
  WriteCrashDump(0);
}

}  // namespace mlcs::obs::crash
