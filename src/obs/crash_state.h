#ifndef MLCS_OBS_CRASH_STATE_H_
#define MLCS_OBS_CRASH_STATE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace mlcs::obs::crash {

/// Crash-visible shared state (DESIGN.md §15). Everything the crash
/// handler dumps is pre-serialized into these fixed static buffers by
/// normal (allocating, locking) code on the healthy path; the
/// async-signal-safe handler in crash_dump.cc only reads atomics and
/// bytes and write()s them out. Each buffer is guarded by a seqlock:
/// writers bump `seq` to odd, mutate, bump to even — the handler skips a
/// buffer it observes mid-write instead of emitting torn JSON.
///
/// Layering: the storage lives in flight_recorder.cc (so this TU stays
/// malloc-free for the `signal-unsafe` lint rule); writers are
/// flight_recorder.cc (metrics + trace slots) and trace.cc (per-thread
/// span stacks).

inline constexpr size_t kMetricsBufBytes = 64 * 1024;
inline constexpr size_t kTraceSlotBytes = 4096;
inline constexpr size_t kNumTraceSlots = 32;
inline constexpr size_t kMaxThreadSlots = 128;
inline constexpr size_t kMaxSpanDepth = 16;
inline constexpr size_t kSpanNameBytes = 48;

/// Seqlock-guarded pre-serialized JSON object (`{...}`), e.g. the latest
/// metrics snapshot.
struct SeqBuf {
  std::atomic<uint32_t> seq{0};  // even = stable, odd = being written
  std::atomic<uint32_t> len{0};
  char data[kMetricsBufBytes];
};

/// One pre-serialized flight-recorder entry (a JSON object). Slots form a
/// ring: writers claim them round-robin, so the newest kNumTraceSlots
/// completed traces are always dump-ready.
struct TraceSlot {
  std::atomic<uint32_t> seq{0};
  std::atomic<uint32_t> len{0};
  char data[kTraceSlotBytes];
};

/// One thread's live span stack. `names` entries are JSON-sanitized at
/// push time (quotes/backslashes/control bytes replaced) so the handler
/// can quote them verbatim. `depth` is published with release order after
/// the name bytes are in place; a racy read may see a stale frame name —
/// acceptable for a crash dump.
struct ThreadSlot {
  std::atomic<uint32_t> in_use{0};
  std::atomic<uint64_t> thread_index{0};
  std::atomic<uint64_t> trace_id{0};
  std::atomic<uint32_t> depth{0};
  char names[kMaxSpanDepth][kSpanNameBytes];
};

struct CrashState {
  SeqBuf metrics;
  TraceSlot trace_slots[kNumTraceSlots];
  std::atomic<uint32_t> next_trace_slot{0};
  ThreadSlot thread_slots[kMaxThreadSlots];
};

/// The process-wide instance (static storage in flight_recorder.cc —
/// never allocated, so it is readable from the first instruction of a
/// signal handler).
CrashState& GlobalCrashState();

}  // namespace mlcs::obs::crash

#endif  // MLCS_OBS_CRASH_STATE_H_
