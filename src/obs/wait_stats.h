#ifndef MLCS_OBS_WAIT_STATS_H_
#define MLCS_OBS_WAIT_STATS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mlcs::obs {

struct MetricSample;

/// Wait-state attribution (DESIGN.md §15). Every blocking primitive in the
/// engine — contended mlcs::Mutex acquisitions, BoundedQueue consumer
/// waits, buffer-pool miss loads, ThreadPool dispatch — records its
/// time-blocked into a named WaitSite here, so `mlcs_metrics()` can answer
/// "what were 200 threads waiting on" with per-site latency histograms
/// (`mlcs.wait.{lock,queue,bufpool,pool}.<site>.*`).
///
/// The registry is deliberately NOT built on MetricsRegistry: recording a
/// wait must never take a lock (the most important caller *is* the lock
/// facade, including MetricsRegistry's own mutex — routing through the
/// registry would recurse). Sites live in a fixed-capacity array, claimed
/// with a lock-free CAS handshake, and bump relaxed atomics; the flat
/// MetricsRegistry::Global() snapshot merges them in at export time.

/// Which blocking primitive a site instruments; becomes the third path
/// segment of the exported series name.
enum class WaitKind : uint8_t { kLock = 0, kQueue = 1, kBufpool = 2,
                                kPool = 3 };

const char* WaitKindName(WaitKind kind);

/// One named blocking site: a fixed-bucket latency histogram (bounds in
/// microseconds, shared by every site) plus count/total/max. All methods
/// are lock-free and async-signal-tolerant (plain atomics, no allocation).
class WaitSite {
 public:
  static constexpr size_t kNumBounds = 11;
  static constexpr size_t kNameBytes = 56;
  /// Ascending bucket upper bounds in microseconds (10us … 1s, +inf
  /// implicit).
  static const double* BoundsUs();

  void RecordWaitNs(uint64_t ns);

  const char* name() const { return name_; }
  WaitKind kind() const { return kind_; }
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t TotalNs() const {
    return total_ns_.load(std::memory_order_relaxed);
  }
  uint64_t MaxNs() const { return max_ns_.load(std::memory_order_relaxed); }
  /// Count in bucket `i`; `i == kNumBounds` is the overflow bucket.
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  friend class WaitStats;
  /// 0 = free, 1 = being claimed, 2 = published (name_/kind_ readable).
  std::atomic<uint32_t> state_{0};
  char name_[kNameBytes] = {0};
  WaitKind kind_ = WaitKind::kLock;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_ns_{0};
  std::atomic<uint64_t> max_ns_{0};
  std::atomic<uint64_t> buckets_[kNumBounds + 1] = {};
};

/// Fixed-capacity, lock-free site registry. GetSite is idempotent per
/// (kind, name) modulo a benign claim race (two racing first-callers may
/// create duplicate sites; Export merges by name, and callers cache the
/// returned pointer so the race is one-shot). Past capacity every caller
/// shares one "overflow" site — waits are never silently dropped.
class WaitStats {
 public:
  static constexpr size_t kMaxSites = 256;

  /// Never returns null; `name` is copied (truncated to kNameBytes-1).
  WaitSite* GetSite(WaitKind kind, const char* name);

  /// Appends flat samples (`mlcs.wait.<kind>.<name>.count/.sum/.max/
  /// .p50/.p90/.p99`, microseconds) merged across duplicate sites.
  void Export(std::vector<MetricSample>* out) const;

  /// Published sites in claim order (duplicates included).
  std::vector<const WaitSite*> Sites() const;

  /// Zeroes every published site's counters (the sites themselves persist —
  /// cached pointers stay valid). Testing/bench only.
  void ResetCountersForTesting();

  static WaitStats& Global();

 private:
  std::atomic<uint32_t> num_sites_{0};
  WaitSite sites_[kMaxSites];
  WaitSite overflow_;
};

}  // namespace mlcs::obs

#endif  // MLCS_OBS_WAIT_STATS_H_
