#include "obs/introspection.h"

#include <utility>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mlcs::obs {

namespace {

double ToMicros(std::chrono::nanoseconds ns) {
  return static_cast<double>(ns.count()) / 1000.0;
}

Schema TraceSchema() {
  Schema schema;
  schema.AddField("trace_id", TypeId::kInt64);
  schema.AddField("span_id", TypeId::kInt64);
  schema.AddField("parent_id", TypeId::kInt64);
  schema.AddField("name", TypeId::kVarchar);
  schema.AddField("start_us", TypeId::kDouble);
  schema.AddField("duration_us", TypeId::kDouble);
  schema.AddField("rows_in", TypeId::kInt64);
  schema.AddField("rows_out", TypeId::kInt64);
  schema.AddField("bytes", TypeId::kInt64);
  schema.AddField("note", TypeId::kVarchar);
  return schema;
}

Schema SlowQuerySchema() {
  Schema schema;
  schema.AddField("trace_id", TypeId::kInt64);
  schema.AddField("query", TypeId::kVarchar);
  schema.AddField("duration_ms", TypeId::kDouble);
  schema.AddField("spans", TypeId::kInt64);
  schema.AddField("dropped_spans", TypeId::kInt64);
  schema.AddField("truncated", TypeId::kInt64);
  schema.AddField("plan", TypeId::kVarchar);
  return schema;
}

}  // namespace

TablePtr MetricsTable() {
  Schema schema;
  schema.AddField("name", TypeId::kVarchar);
  schema.AddField("kind", TypeId::kVarchar);
  schema.AddField("value", TypeId::kDouble);
  auto table = Table::Make(std::move(schema));
  for (const MetricSample& s : MetricsRegistry::Global().Snapshot()) {
    (void)table->AppendRow({Value::Varchar(s.name), Value::Varchar(s.kind),
                            Value::Double(s.value)});
  }
  return table;
}

TablePtr TraceTable(uint64_t trace_id) {
  auto table = Table::Make(TraceSchema());
  for (const TraceSpan& s : FlightRecorder::Global().Query(trace_id)) {
    (void)table->AppendRow(
        {Value::Int64(static_cast<int64_t>(s.trace_id)),
         Value::Int64(s.span_id), Value::Int64(s.parent_id),
         Value::Varchar(s.name), Value::Double(ToMicros(s.start_offset)),
         Value::Double(ToMicros(s.duration)),
         Value::Int64(static_cast<int64_t>(s.rows_in)),
         Value::Int64(static_cast<int64_t>(s.rows_out)),
         Value::Int64(static_cast<int64_t>(s.bytes)),
         Value::Varchar(s.note)});
  }
  return table;
}

TablePtr SlowQueriesTable() {
  auto table = Table::Make(SlowQuerySchema());
  for (const RecordedTrace& t : FlightRecorder::Global().SlowQueries()) {
    (void)table->AppendRow(
        {Value::Int64(static_cast<int64_t>(t.trace_id)),
         Value::Varchar(t.query_text.empty() ? t.root_name : t.query_text),
         Value::Double(t.duration_ms),
         Value::Int64(static_cast<int64_t>(t.spans.size())),
         Value::Int64(static_cast<int64_t>(t.dropped_spans)),
         Value::Int64(t.truncated ? 1 : 0), Value::Varchar(t.plan_text)});
  }
  return table;
}

Status RegisterIntrospectionFunctions(udf::UdfRegistry* registry) {
  {
    udf::TableUdfEntry entry;
    entry.name = "mlcs_metrics";
    entry.typed = true;  // zero arguments, enforced
    entry.return_schema.AddField("name", TypeId::kVarchar);
    entry.return_schema.AddField("kind", TypeId::kVarchar);
    entry.return_schema.AddField("value", TypeId::kDouble);
    entry.fn =
        [](const std::vector<ColumnPtr>& /*args*/) -> Result<TablePtr> {
      return MetricsTable();
    };
    MLCS_RETURN_IF_ERROR(registry->RegisterTable(std::move(entry)));
  }
  {
    udf::TableUdfEntry entry;
    entry.name = "mlcs_trace";
    entry.param_types = {TypeId::kInt64};
    entry.typed = true;
    entry.return_schema = TraceSchema();
    entry.fn = [](const std::vector<ColumnPtr>& args) -> Result<TablePtr> {
      if (args.size() != 1 || args[0]->size() != 1 || args[0]->IsNull(0)) {
        return Status::InvalidArgument(
            "mlcs_trace(trace_id) takes one non-NULL BIGINT "
            "(0 selects every retained trace)");
      }
      MLCS_ASSIGN_OR_RETURN(Value id, args[0]->GetValue(0));
      return TraceTable(static_cast<uint64_t>(id.int64_value()));
    };
    MLCS_RETURN_IF_ERROR(registry->RegisterTable(std::move(entry)));
  }
  {
    udf::TableUdfEntry entry;
    entry.name = "mlcs_slow_queries";
    entry.typed = true;  // zero arguments, enforced
    entry.return_schema = SlowQuerySchema();
    entry.fn =
        [](const std::vector<ColumnPtr>& /*args*/) -> Result<TablePtr> {
      return SlowQueriesTable();
    };
    MLCS_RETURN_IF_ERROR(registry->RegisterTable(std::move(entry)));
  }
  return Status::OK();
}

}  // namespace mlcs::obs
