#include "obs/introspection.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mlcs::obs {

namespace {

double ToMicros(std::chrono::nanoseconds ns) {
  return static_cast<double>(ns.count()) / 1000.0;
}

}  // namespace

TablePtr MetricsTable() {
  Schema schema;
  schema.AddField("name", TypeId::kVarchar);
  schema.AddField("kind", TypeId::kVarchar);
  schema.AddField("value", TypeId::kDouble);
  auto table = Table::Make(std::move(schema));
  for (const MetricSample& s : MetricsRegistry::Global().Snapshot()) {
    (void)table->AppendRow({Value::Varchar(s.name), Value::Varchar(s.kind),
                            Value::Double(s.value)});
  }
  return table;
}

TablePtr TraceTable(uint64_t trace_id) {
  Schema schema;
  schema.AddField("trace_id", TypeId::kInt64);
  schema.AddField("span_id", TypeId::kInt64);
  schema.AddField("parent_id", TypeId::kInt64);
  schema.AddField("name", TypeId::kVarchar);
  schema.AddField("start_us", TypeId::kDouble);
  schema.AddField("duration_us", TypeId::kDouble);
  schema.AddField("rows_in", TypeId::kInt64);
  schema.AddField("rows_out", TypeId::kInt64);
  schema.AddField("bytes", TypeId::kInt64);
  auto table = Table::Make(std::move(schema));
  for (const TraceSpan& s : TraceSink::Global().Query(trace_id)) {
    (void)table->AppendRow(
        {Value::Int64(static_cast<int64_t>(s.trace_id)),
         Value::Int64(s.span_id), Value::Int64(s.parent_id),
         Value::Varchar(s.name), Value::Double(ToMicros(s.start_offset)),
         Value::Double(ToMicros(s.duration)),
         Value::Int64(static_cast<int64_t>(s.rows_in)),
         Value::Int64(static_cast<int64_t>(s.rows_out)),
         Value::Int64(static_cast<int64_t>(s.bytes))});
  }
  return table;
}

Status RegisterIntrospectionFunctions(udf::UdfRegistry* registry) {
  {
    udf::TableUdfEntry entry;
    entry.name = "mlcs_metrics";
    entry.typed = true;  // zero arguments, enforced
    entry.return_schema.AddField("name", TypeId::kVarchar);
    entry.return_schema.AddField("kind", TypeId::kVarchar);
    entry.return_schema.AddField("value", TypeId::kDouble);
    entry.fn =
        [](const std::vector<ColumnPtr>& /*args*/) -> Result<TablePtr> {
      return MetricsTable();
    };
    MLCS_RETURN_IF_ERROR(registry->RegisterTable(std::move(entry)));
  }
  {
    udf::TableUdfEntry entry;
    entry.name = "mlcs_trace";
    entry.param_types = {TypeId::kInt64};
    entry.typed = true;
    entry.return_schema.AddField("trace_id", TypeId::kInt64);
    entry.return_schema.AddField("span_id", TypeId::kInt64);
    entry.return_schema.AddField("parent_id", TypeId::kInt64);
    entry.return_schema.AddField("name", TypeId::kVarchar);
    entry.return_schema.AddField("start_us", TypeId::kDouble);
    entry.return_schema.AddField("duration_us", TypeId::kDouble);
    entry.return_schema.AddField("rows_in", TypeId::kInt64);
    entry.return_schema.AddField("rows_out", TypeId::kInt64);
    entry.return_schema.AddField("bytes", TypeId::kInt64);
    entry.fn = [](const std::vector<ColumnPtr>& args) -> Result<TablePtr> {
      if (args.size() != 1 || args[0]->size() != 1 || args[0]->IsNull(0)) {
        return Status::InvalidArgument(
            "mlcs_trace(trace_id) takes one non-NULL BIGINT "
            "(0 selects every retained trace)");
      }
      MLCS_ASSIGN_OR_RETURN(Value id, args[0]->GetValue(0));
      return TraceTable(static_cast<uint64_t>(id.int64_value()));
    };
    MLCS_RETURN_IF_ERROR(registry->RegisterTable(std::move(entry)));
  }
  return Status::OK();
}

}  // namespace mlcs::obs
