#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace mlcs::obs {

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)),
      bounds_(std::move(bounds)),
      counts_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::Observe(double v) {
  // Linear probe: bucket lists are short (≤ ~16) and fixed, so this beats
  // a branch-missing binary search on the hot path.
  size_t bucket = bounds_.size();
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  if (bucket == bounds_.size() && !bounds_.empty() &&
      !overflow_warned_.exchange(true, std::memory_order_relaxed)) {
    MLCS_LOG(kWarn) << "histogram overflow " << Kv("name", name_)
                    << Kv("value", v) << Kv("max_bound", bounds_.back())
                    << "— counting in +inf bucket";
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bucket_bounds) {
  MutexLock lock(&mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot.reset(new Histogram(name, std::move(bucket_bounds)));
  }
  return slot.get();
}

namespace {

/// "100", "0.25": shortest representation that round-trips the bound.
std::string FormatBound(double bound) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", bound);
  return buf;
}

}  // namespace

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  if (snapshots_ != nullptr) snapshots_->Add(1);
  MutexLock lock(&mutex_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + 3 * histograms_.size());
  for (const auto& [name, counter] : counters_) {
    out.push_back({name, "counter", static_cast<double>(counter->Value())});
  }
  for (const auto& [name, gauge] : gauges_) {
    out.push_back({name, "gauge", static_cast<double>(gauge->Value())});
  }
  for (const auto& [name, h] : histograms_) {
    for (size_t i = 0; i < h->bounds().size(); ++i) {
      out.push_back({name + ".le_" + FormatBound(h->bounds()[i]),
                     "histogram", static_cast<double>(h->BucketCount(i))});
    }
    out.push_back({name + ".le_inf", "histogram",
                   static_cast<double>(h->BucketCount(h->bounds().size()))});
    out.push_back(
        {name + ".count", "histogram", static_cast<double>(h->Count())});
    out.push_back({name + ".sum", "histogram", h->Sum()});
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    r->snapshots_ = r->GetCounter("mlcs.obs.snapshots");
    return r;
  }();
  return *registry;
}

}  // namespace mlcs::obs
