#include "obs/metrics.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "obs/wait_stats.h"

namespace mlcs::obs {

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)),
      bounds_(std::move(bounds)),
      counts_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::Observe(double v) {
  // Linear probe: bucket lists are short (≤ ~16) and fixed, so this beats
  // a branch-missing binary search on the hot path.
  size_t bucket = bounds_.size();
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  if (bucket == bounds_.size() && !bounds_.empty() &&
      !overflow_warned_.exchange(true, std::memory_order_relaxed)) {
    MLCS_LOG(kWarn) << "histogram overflow " << Kv("name", name_)
                    << Kv("value", v) << Kv("max_bound", bounds_.back())
                    << "— counting in +inf bucket";
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bucket_bounds) {
  MutexLock lock(&mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot.reset(new Histogram(name, std::move(bucket_bounds)));
  }
  return slot.get();
}

Quantiles EstimateQuantiles(const double* bounds, size_t num_bounds,
                            const uint64_t* bucket_counts,
                            uint64_t total_count) {
  Quantiles q;
  if (total_count == 0) return q;
  const double fallback = num_bounds > 0 ? bounds[num_bounds - 1] : 0.0;
  const double targets[3] = {0.50, 0.90, 0.99};
  double* outs[3] = {&q.p50, &q.p90, &q.p99};
  for (int t = 0; t < 3; ++t) {
    double rank = targets[t] * static_cast<double>(total_count);
    if (rank < 1.0) rank = 1.0;
    double estimate = fallback;
    double cum = 0.0;
    for (size_t i = 0; i <= num_bounds; ++i) {
      double in_bucket = static_cast<double>(bucket_counts[i]);
      if (cum + in_bucket >= rank) {
        if (i == num_bounds) break;  // +inf bucket: clamp to last bound
        double lower = (i == 0) ? 0.0 : bounds[i - 1];
        double frac = in_bucket == 0.0 ? 1.0 : (rank - cum) / in_bucket;
        estimate = lower + frac * (bounds[i] - lower);
        break;
      }
      cum += in_bucket;
    }
    *outs[t] = estimate;
  }
  return q;
}

namespace {

Quantiles HistogramQuantiles(const Histogram& h) {
  std::vector<uint64_t> counts(h.num_buckets());
  for (size_t i = 0; i < h.num_buckets(); ++i) counts[i] = h.BucketCount(i);
  return EstimateQuantiles(h.bounds().data(), h.bounds().size(),
                           counts.data(), h.Count());
}

}  // namespace

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  auto begin = std::chrono::steady_clock::now();
  if (snapshots_ != nullptr) snapshots_->Add(1);
  std::vector<MetricSample> out;
  {
    MutexLock lock(&mutex_);
    out.reserve(counters_.size() + gauges_.size() +
                5 * histograms_.size());
    for (const auto& [name, counter] : counters_) {
      out.push_back(
          {name, "counter", static_cast<double>(counter->Value())});
    }
    for (const auto& [name, gauge] : gauges_) {
      out.push_back({name, "gauge", static_cast<double>(gauge->Value())});
    }
    for (const auto& [name, h] : histograms_) {
      Quantiles q = HistogramQuantiles(*h);
      out.push_back(
          {name + ".count", "histogram", static_cast<double>(h->Count())});
      out.push_back({name + ".sum", "histogram", h->Sum()});
      out.push_back({name + ".p50", "histogram", q.p50});
      out.push_back({name + ".p90", "histogram", q.p90});
      out.push_back({name + ".p99", "histogram", q.p99});
    }
  }
  // Only the Global() registry (recognizable by its self-registered
  // counter) merges the process-wide wait sites: plain instance registries
  // in tests must stay self-contained.
  if (snapshots_ != nullptr) WaitStats::Global().Export(&out);
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  if (export_us_ != nullptr) {
    export_us_->Observe(std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - begin)
                            .count());
  }
  return out;
}

RegistrySnapshot MetricsRegistry::StructuredSnapshot() const {
  RegistrySnapshot snap;
  MutexLock lock(&mutex_);
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back(
        {name, "counter", static_cast<double>(counter->Value())});
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back(
        {name, "gauge", static_cast<double>(gauge->Value())});
  }
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.bounds = h->bounds();
    hs.counts.resize(h->num_buckets());
    for (size_t i = 0; i < h->num_buckets(); ++i) {
      hs.counts[i] = h->BucketCount(i);
    }
    hs.count = h->Count();
    hs.sum = h->Sum();
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    r->snapshots_ = r->GetCounter("mlcs.obs.snapshots");
    r->export_us_ = r->GetHistogram(
        "mlcs.obs.export_us", {10, 50, 100, 500, 1000, 5000, 10000, 50000});
    return r;
  }();
  return *registry;
}

}  // namespace mlcs::obs
