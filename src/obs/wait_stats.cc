#include "obs/wait_stats.h"

#include <cstring>
#include <map>
#include <string>

#include "obs/metrics.h"

namespace mlcs::obs {

const char* WaitKindName(WaitKind kind) {
  switch (kind) {
    case WaitKind::kLock:
      return "lock";
    case WaitKind::kQueue:
      return "queue";
    case WaitKind::kBufpool:
      return "bufpool";
    case WaitKind::kPool:
      return "pool";
  }
  return "?";
}

const double* WaitSite::BoundsUs() {
  // 10us … 1s: spans a briefly contended spinlock-ish wait through a
  // saturated admission queue. Shared across sites so Export can merge
  // duplicate claims bucket-by-bucket.
  static const double bounds[kNumBounds] = {10,    50,     100,    500,
                                            1000,  5000,   10000,  50000,
                                            100000, 500000, 1000000};
  return bounds;
}

void WaitSite::RecordWaitNs(uint64_t ns) {
  const double us = static_cast<double>(ns) / 1000.0;
  const double* bounds = BoundsUs();
  size_t bucket = kNumBounds;
  for (size_t i = 0; i < kNumBounds; ++i) {
    if (us <= bounds[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(ns, std::memory_order_relaxed);
  uint64_t prev = max_ns_.load(std::memory_order_relaxed);
  while (ns > prev &&
         !max_ns_.compare_exchange_weak(prev, ns,
                                        std::memory_order_relaxed)) {
  }
}

WaitSite* WaitStats::GetSite(WaitKind kind, const char* name) {
  uint32_t published = num_sites_.load(std::memory_order_acquire);
  for (uint32_t i = 0; i < published && i < kMaxSites; ++i) {
    WaitSite& site = sites_[i];
    if (site.state_.load(std::memory_order_acquire) != 2) continue;
    if (site.kind_ == kind && std::strcmp(site.name_, name) == 0) {
      return &site;
    }
  }
  uint32_t idx = num_sites_.fetch_add(1, std::memory_order_acq_rel);
  if (idx >= kMaxSites) {
    // Registry full: everyone shares the overflow site so blocked time
    // still lands somewhere visible.
    num_sites_.store(kMaxSites, std::memory_order_release);
    if (overflow_.state_.load(std::memory_order_acquire) != 2) {
      uint32_t expected = 0;
      if (overflow_.state_.compare_exchange_strong(
              expected, 1, std::memory_order_acq_rel)) {
        std::strncpy(overflow_.name_, "overflow",
                     WaitSite::kNameBytes - 1);
        overflow_.kind_ = kind;
        overflow_.state_.store(2, std::memory_order_release);
      }
    }
    return &overflow_;
  }
  WaitSite& site = sites_[idx];
  site.state_.store(1, std::memory_order_relaxed);
  std::strncpy(site.name_, name, WaitSite::kNameBytes - 1);
  site.name_[WaitSite::kNameBytes - 1] = '\0';
  site.kind_ = kind;
  site.state_.store(2, std::memory_order_release);
  return &site;
}

std::vector<const WaitSite*> WaitStats::Sites() const {
  std::vector<const WaitSite*> out;
  uint32_t published = num_sites_.load(std::memory_order_acquire);
  for (uint32_t i = 0; i < published && i < kMaxSites; ++i) {
    if (sites_[i].state_.load(std::memory_order_acquire) == 2) {
      out.push_back(&sites_[i]);
    }
  }
  if (overflow_.state_.load(std::memory_order_acquire) == 2) {
    out.push_back(&overflow_);
  }
  return out;
}

void WaitStats::Export(std::vector<MetricSample>* out) const {
  struct Merged {
    uint64_t count = 0;
    uint64_t total_ns = 0;
    uint64_t max_ns = 0;
    uint64_t buckets[WaitSite::kNumBounds + 1] = {};
  };
  std::map<std::string, Merged> merged;
  for (const WaitSite* site : Sites()) {
    Merged& m = merged[std::string("mlcs.wait.") +
                       WaitKindName(site->kind()) + "." + site->name()];
    m.count += site->Count();
    m.total_ns += site->TotalNs();
    if (site->MaxNs() > m.max_ns) m.max_ns = site->MaxNs();
    for (size_t i = 0; i <= WaitSite::kNumBounds; ++i) {
      m.buckets[i] += site->BucketCount(i);
    }
  }
  for (const auto& [name, m] : merged) {
    Quantiles q = EstimateQuantiles(WaitSite::BoundsUs(),
                                    WaitSite::kNumBounds, m.buckets,
                                    m.count);
    out->push_back(
        {name + ".count", "histogram", static_cast<double>(m.count)});
    out->push_back({name + ".sum", "histogram",
                    static_cast<double>(m.total_ns) / 1000.0});
    out->push_back({name + ".max", "histogram",
                    static_cast<double>(m.max_ns) / 1000.0});
    out->push_back({name + ".p50", "histogram", q.p50});
    out->push_back({name + ".p90", "histogram", q.p90});
    out->push_back({name + ".p99", "histogram", q.p99});
  }
}

void WaitStats::ResetCountersForTesting() {
  uint32_t published = num_sites_.load(std::memory_order_acquire);
  for (uint32_t i = 0; i < published && i < kMaxSites; ++i) {
    WaitSite& site = sites_[i];
    if (site.state_.load(std::memory_order_acquire) != 2) continue;
    site.count_.store(0, std::memory_order_relaxed);
    site.total_ns_.store(0, std::memory_order_relaxed);
    site.max_ns_.store(0, std::memory_order_relaxed);
    for (size_t b = 0; b <= WaitSite::kNumBounds; ++b) {
      site.buckets_[b].store(0, std::memory_order_relaxed);
    }
  }
}

WaitStats& WaitStats::Global() {
  static WaitStats* stats = new WaitStats();
  return *stats;
}

}  // namespace mlcs::obs
