#include "obs/export.h"

#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/file_util.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/wait_stats.h"

namespace mlcs::obs {

namespace {

/// Shortest faithful decimal for a telemetry value: integers print without
/// a fraction, everything else gets enough digits to round-trip a reading.
std::string FormatValue(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<int64_t>(v)) && v < 1e15 &&
      v > -1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(v)));
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
  }
  return buf;
}

/// Prometheus metric names must match [a-zA-Z_:][a-zA-Z0-9_:]* — the
/// engine's dotted series names map onto it by substitution.
std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
              c == ':' || (c >= '0' && c <= '9' && i > 0);
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) out.push_back('_');
  return out;
}

/// Exposition-format label-value escaping: backslash, double-quote, and
/// line-feed are the three characters the format reserves.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

void AppendSimpleFamily(const std::vector<MetricSample>& samples,
                        const char* type, std::string* out) {
  for (const MetricSample& s : samples) {
    std::string name = SanitizeMetricName(s.name);
    *out += "# TYPE " + name + " " + type + "\n";
    *out += name + " " + FormatValue(s.value) + "\n";
  }
}

void AppendHistogramFamily(const HistogramSnapshot& h, std::string* out) {
  std::string name = SanitizeMetricName(h.name);
  *out += "# TYPE " + name + " histogram\n";
  uint64_t cumulative = 0;
  for (size_t i = 0; i < h.bounds.size(); ++i) {
    cumulative += h.counts[i];
    *out += name + "_bucket{le=\"" + FormatValue(h.bounds[i]) + "\"} " +
            FormatValue(static_cast<double>(cumulative)) + "\n";
  }
  cumulative += h.counts.empty() ? 0 : h.counts.back();
  *out += name + "_bucket{le=\"+Inf\"} " +
          FormatValue(static_cast<double>(cumulative)) + "\n";
  *out += name + "_sum " + FormatValue(h.sum) + "\n";
  *out += name + "_count " + FormatValue(static_cast<double>(h.count)) +
          "\n";
}

/// One wait site's counters, merged across duplicate registry slots
/// (WaitStats documents the benign claim race; exporters re-merge).
struct MergedSite {
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t buckets[WaitSite::kNumBounds + 1] = {};
};

void AppendWaitFamily(std::string* out) {
  std::map<std::pair<std::string, std::string>, MergedSite> merged;
  for (const WaitSite* site : WaitStats::Global().Sites()) {
    MergedSite& m =
        merged[{WaitKindName(site->kind()), site->name()}];
    m.count += site->Count();
    m.total_ns += site->TotalNs();
    for (size_t i = 0; i <= WaitSite::kNumBounds; ++i) {
      m.buckets[i] += site->BucketCount(i);
    }
  }
  if (merged.empty()) return;
  const double* bounds = WaitSite::BoundsUs();
  *out += "# TYPE mlcs_wait_us histogram\n";
  for (const auto& [key, m] : merged) {
    std::string labels = "kind=\"" + EscapeLabelValue(key.first) +
                         "\",site=\"" + EscapeLabelValue(key.second) + "\"";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < WaitSite::kNumBounds; ++i) {
      cumulative += m.buckets[i];
      *out += "mlcs_wait_us_bucket{" + labels + ",le=\"" +
              FormatValue(bounds[i]) + "\"} " +
              FormatValue(static_cast<double>(cumulative)) + "\n";
    }
    cumulative += m.buckets[WaitSite::kNumBounds];
    *out += "mlcs_wait_us_bucket{" + labels + ",le=\"+Inf\"} " +
            FormatValue(static_cast<double>(cumulative)) + "\n";
    *out += "mlcs_wait_us_sum{" + labels + "} " +
            FormatValue(static_cast<double>(m.total_ns) / 1000.0) + "\n";
    *out += "mlcs_wait_us_count{" + labels + "} " +
            FormatValue(static_cast<double>(m.count)) + "\n";
  }
}

/// JSON string escaping (quotes, backslash, control characters).
std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size() + 2);
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string PrometheusText() {
  RegistrySnapshot snapshot = MetricsRegistry::Global().StructuredSnapshot();
  std::string out;
  out.reserve(4096);
  AppendSimpleFamily(snapshot.counters, "counter", &out);
  AppendSimpleFamily(snapshot.gauges, "gauge", &out);
  for (const HistogramSnapshot& h : snapshot.histograms) {
    AppendHistogramFamily(h, &out);
  }
  AppendWaitFamily(&out);
  // An export is a natural moment to refresh the crash-visible metrics
  // buffer — a scrape right before a crash leaves a current dump.
  FlightRecorder::RefreshCrashMetrics();
  return out;
}

std::string ChromeTraceJson(uint64_t trace_id) {
  std::vector<TraceSpan> spans = FlightRecorder::Global().Query(trace_id);
  std::string out;
  out.reserve(256 + spans.size() * 160);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const TraceSpan& s : spans) {
    if (!first) out += ",";
    first = false;
    double ts_us = static_cast<double>(s.start_offset.count()) / 1000.0;
    double dur_us = static_cast<double>(s.duration.count()) / 1000.0;
    out += "{\"name\":\"" + EscapeJson(s.name) + "\",\"ph\":\"X\",\"ts\":" +
           FormatValue(ts_us) + ",\"dur\":" + FormatValue(dur_us) +
           ",\"pid\":" + std::to_string(s.trace_id) +
           ",\"tid\":" + std::to_string(s.tid) + ",\"args\":{" +
           "\"span_id\":" + std::to_string(s.span_id) +
           ",\"parent_id\":" + std::to_string(s.parent_id) +
           ",\"rows_in\":" + std::to_string(s.rows_in) +
           ",\"rows_out\":" + std::to_string(s.rows_out) +
           ",\"bytes\":" + std::to_string(s.bytes);
    if (!s.note.empty()) {
      out += ",\"note\":\"" + EscapeJson(s.note) + "\"";
    }
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Status DumpPrometheusText(const std::string& path) {
  std::string text = PrometheusText();
  return AtomicWriteFile(path, text.data(), text.size());
}

Status DumpChromeTrace(uint64_t trace_id, const std::string& path) {
  std::string json = ChromeTraceJson(trace_id);
  return AtomicWriteFile(path, json.data(), json.size());
}

}  // namespace mlcs::obs
