#ifndef MLCS_OBS_CRASH_DUMP_H_
#define MLCS_OBS_CRASH_DUMP_H_

namespace mlcs::obs::crash {

/// Crash/stall dump (DESIGN.md §15). InstallCrashHandler() registers a
/// signal handler for SIGSEGV and SIGABRT (post-mortem) plus SIGUSR1
/// (on-demand: `kill -USR1 <pid>` against a live, possibly stalled,
/// process). The handler writes `mlcs_crash_<pid>.json` — the latest
/// metrics snapshot, the flight recorder's pre-serialized trace ring, and
/// every live thread's current span stack — using only async-signal-safe
/// primitives: it reads the static seqlock-guarded buffers of
/// crash_state.h and emits them with open()/write() and hand-rolled
/// integer formatting. No allocation, no locks, no stdio (enforced by the
/// `signal-unsafe` lint rule on this translation unit).
///
/// Fatal signals re-raise with the default disposition after dumping, so
/// exit codes and core dumps are unchanged. SIGUSR1 returns to the
/// interrupted code (errno preserved) — the process keeps running.

/// Registers the handlers; idempotent. `install_fatal == false` registers
/// only SIGUSR1 (for processes whose runtime owns the fatal signals, e.g.
/// sanitizer builds). Returns false if sigaction failed.
bool InstallCrashHandler(bool install_fatal = true);

/// Directory for the dump file (default "."); copied into a fixed buffer,
/// truncated if longer than ~200 bytes. Callable before or after install.
void SetCrashDumpDir(const char* dir);

/// The exact path the next dump will write (fixed static buffer).
const char* CrashDumpPath();

/// Runs the dump path directly (signal number 0) — what unit tests call
/// to validate the JSON without delivering a real signal.
void TriggerCrashDumpForTesting();

}  // namespace mlcs::obs::crash

#endif  // MLCS_OBS_CRASH_DUMP_H_
