#ifndef MLCS_OBS_EXPORT_H_
#define MLCS_OBS_EXPORT_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace mlcs::obs {

/// Standard-format exporters (DESIGN.md §15): the bridge from the
/// engine-internal registries (MetricsRegistry, WaitStats, FlightRecorder)
/// to the two formats external tooling actually ingests. Served over the
/// wire by both servers (TableServer verbs 0xF0/0xF1, serve protocol kinds
/// 'm'/'t') and dumpable to disk for offline runs.

/// Prometheus text exposition (version 0.0.4) of the global registry:
/// counters and gauges as flat samples, histograms in the cumulative
/// `_bucket{le="..."}` / `_sum` / `_count` form, and every wait site as a
/// shared `mlcs_wait_us` histogram family labeled {kind=,site=}. Metric
/// names are sanitized (dots → underscores); label values are escaped per
/// the exposition format (backslash, double-quote, newline).
std::string PrometheusText();

/// Chrome `trace_event` JSON (the chrome://tracing / Perfetto "JSON Array
/// Format") of one recorded trace: each span becomes a complete event
/// (`"ph":"X"`) with microsecond `ts`/`dur`, the engine's small thread
/// index as `tid`, and rows_in/rows_out/bytes (plus any note) in `args`.
/// `trace_id == 0` exports every retained ring trace on a shared timeline.
std::string ChromeTraceJson(uint64_t trace_id);

/// Atomic-rename dumps of the above (ops escape hatch when no scraper or
/// trace viewer is attached to the socket).
Status DumpPrometheusText(const std::string& path);
Status DumpChromeTrace(uint64_t trace_id, const std::string& path);

}  // namespace mlcs::obs

#endif  // MLCS_OBS_EXPORT_H_
