#ifndef MLCS_OBS_INTROSPECTION_H_
#define MLCS_OBS_INTROSPECTION_H_

#include "common/result.h"
#include "storage/table.h"
#include "udf/udf.h"

namespace mlcs::obs {

/// Snapshot of the global MetricsRegistry as a relational table:
///   (name VARCHAR, kind VARCHAR, value DOUBLE), sorted by name.
TablePtr MetricsTable();

/// Spans of one retained trace (0 → all retained traces) as a table:
///   (trace_id BIGINT, span_id BIGINT, parent_id BIGINT, name VARCHAR,
///    start_us DOUBLE, duration_us DOUBLE, rows_in BIGINT,
///    rows_out BIGINT, bytes BIGINT)
TablePtr TraceTable(uint64_t trace_id);

/// Registers the SQL surface of the observability layer — the paper-native
/// interface: `SELECT * FROM mlcs_metrics()` and
/// `SELECT * FROM mlcs_trace(<trace_id>)` become meta-analysis queries
/// like any other table function. Called by Database's builtin setup.
Status RegisterIntrospectionFunctions(udf::UdfRegistry* registry);

}  // namespace mlcs::obs

#endif  // MLCS_OBS_INTROSPECTION_H_
