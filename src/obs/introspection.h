#ifndef MLCS_OBS_INTROSPECTION_H_
#define MLCS_OBS_INTROSPECTION_H_

#include "common/result.h"
#include "storage/table.h"
#include "udf/udf.h"

namespace mlcs::obs {

/// Snapshot of the global MetricsRegistry as a relational table:
///   (name VARCHAR, kind VARCHAR, value DOUBLE), sorted by name.
/// Histograms surface as `.count/.sum/.p50/.p90/.p99` rows (interpolated
/// quantiles, DESIGN.md §15) and the wait-attribution sites as
/// `mlcs.wait.*` rows — never raw bucket blobs.
TablePtr MetricsTable();

/// Spans of one flight-recorder trace (0 → every ring trace) as a table:
///   (trace_id BIGINT, span_id BIGINT, parent_id BIGINT, name VARCHAR,
///    start_us DOUBLE, duration_us DOUBLE, rows_in BIGINT,
///    rows_out BIGINT, bytes BIGINT, note VARCHAR)
TablePtr TraceTable(uint64_t trace_id);

/// The flight recorder's slow-query log as a table, newest first:
///   (trace_id BIGINT, query VARCHAR, duration_ms DOUBLE, spans BIGINT,
///    dropped_spans BIGINT, truncated BIGINT, plan VARCHAR)
TablePtr SlowQueriesTable();

/// Registers the SQL surface of the observability layer — the paper-native
/// interface: `SELECT * FROM mlcs_metrics()`,
/// `SELECT * FROM mlcs_trace(<trace_id>)`, and
/// `SELECT * FROM mlcs_slow_queries()` become meta-analysis queries
/// like any other table function. Called by Database's builtin setup.
Status RegisterIntrospectionFunctions(udf::UdfRegistry* registry);

}  // namespace mlcs::obs

#endif  // MLCS_OBS_INTROSPECTION_H_
