#ifndef MLCS_OBS_METRICS_H_
#define MLCS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"

namespace mlcs::obs {

/// Process-wide metrics registry — the one snapshot path for every
/// subsystem's counters (plan cache, serving, thread pool, scans). The
/// paper's deep-integration thesis applied to the system's own telemetry:
/// series register by name, bump through lock-free atomics on the hot
/// path, and export as a relational table via the `mlcs_metrics()` SQL
/// table function (obs/introspection.h).
///
/// Naming scheme (DESIGN.md §10): `mlcs.<subsystem>.<series>`, lowercase,
/// dot-separated, e.g. `mlcs.plan_cache.hits`, `mlcs.threadpool.queue_depth`,
/// `mlcs.serve.batched_rows`. Histograms export `<name>.count`,
/// `<name>.sum`, and interpolated `<name>.p50/.p90/.p99` quantile rows
/// (DESIGN.md §15) — raw bucket blobs are reachable through
/// StructuredSnapshot() for the Prometheus exporter, which needs the
/// cumulative `_bucket{le=...}` form.

/// Monotonic event count. Relaxed atomics: series are independent and
/// snapshots are advisory, so no ordering is needed.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time level (queue depth, resident entries, high-water marks).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Ratchets the gauge up to `v` if larger (high-water marks).
  void UpdateMax(int64_t v) {
    int64_t current = value_.load(std::memory_order_relaxed);
    while (v > current &&
           !value_.compare_exchange_weak(current, v,
                                         std::memory_order_relaxed)) {
    }
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket latency histogram: ascending upper bounds plus an implicit
/// +inf overflow bucket. A value lands in the first bucket whose bound it
/// does not exceed (`v <= bound`). Observations past the last bound count
/// in the overflow bucket and warn once per histogram through MLCS_LOG —
/// never silently lost.
class Histogram {
 public:
  void Observe(double v);

  size_t num_buckets() const { return bounds_.size() + 1; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket `i`; `i == bounds().size()` is the overflow bucket.
  uint64_t BucketCount(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::vector<double> bounds);

  const std::string name_;
  const std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<bool> overflow_warned_{false};
};

/// One exported sample row (the `mlcs_metrics()` table schema).
struct MetricSample {
  std::string name;
  std::string kind;  // "counter" | "gauge" | "histogram"
  double value = 0.0;
};

/// Interpolated quantile estimates from fixed histogram buckets.
struct Quantiles {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Estimates p50/p90/p99 by linear interpolation inside the bucket that
/// holds each target rank (the Prometheus `histogram_quantile` model).
/// `bucket_counts` has `num_bounds + 1` entries (the last is the +inf
/// overflow bucket, whose estimates clamp to the last finite bound — the
/// error is bounded and one-sided). All zeros when `total_count == 0`.
Quantiles EstimateQuantiles(const double* bounds, size_t num_bounds,
                            const uint64_t* bucket_counts,
                            uint64_t total_count);

/// Full-resolution view of one histogram for structured exporters.
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<uint64_t> counts;  // bounds.size() + 1, last is +inf
  uint64_t count = 0;
  double sum = 0.0;
};

/// Kind-separated snapshot — what the Prometheus text exporter renders
/// (it needs per-bucket counts, which the flat Snapshot() elides in favor
/// of quantiles).
struct RegistrySnapshot {
  std::vector<MetricSample> counters;
  std::vector<MetricSample> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// Named registration + snapshot over the three metric kinds. Registration
/// takes a mutex (cold: callers cache the returned pointer); bumping the
/// returned handle is wait-free. Handles are stable for the process
/// lifetime — the registry never removes a series.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the series registered under `name`, creating it on first use.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bucket_bounds` must be ascending; they apply only on first
  /// registration (a later caller with different bounds gets the existing
  /// histogram — bounds are part of the series identity contract).
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bucket_bounds);

  /// Consistent-enough snapshot of every series, sorted by name.
  /// (Individual reads are atomic; the set is not a cross-series
  /// transaction — fine for telemetry.) The Global() registry's snapshot
  /// additionally merges the WaitStats sites (`mlcs.wait.*`).
  std::vector<MetricSample> Snapshot() const;

  /// Per-kind snapshot with full histogram buckets, sorted by name within
  /// each kind. Wait sites are NOT merged here — exporters render them
  /// with labels straight from WaitStats.
  RegistrySnapshot StructuredSnapshot() const;

  /// Process-wide registry (leaky singleton, never destroyed). Unlike a
  /// plain registry it self-registers `mlcs.obs.snapshots` (bumped per
  /// Snapshot call) and the `mlcs.obs.export_us` histogram (snapshot
  /// render time), so a global export always carries at least one counter
  /// AND one histogram — the bench-JSON metrics block (and its quantile
  /// fields) is checkable even from a binary that exercises no
  /// instrumented subsystem.
  static MetricsRegistry& Global();

 private:
  mutable Mutex mutex_{"MetricsRegistry::mutex_"};
  /// Set once inside Global()'s initializer, read-only afterwards.
  Counter* snapshots_ = nullptr;    // lint:allow(guarded-member)
  Histogram* export_us_ = nullptr;  // lint:allow(guarded-member)
  std::map<std::string, std::unique_ptr<Counter>> counters_
      MLCS_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      MLCS_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      MLCS_GUARDED_BY(mutex_);
};

/// A per-instance counter that mirrors every bump into a process-wide
/// registry series. Lets an object keep exact local counts (e.g. one
/// InferenceServer's stats()) while the global series aggregates across
/// instances through the one snapshot path.
class MirroredCounter {
 public:
  explicit MirroredCounter(const char* global_name)
      : global_(MetricsRegistry::Global().GetCounter(global_name)) {}

  void Add(uint64_t n = 1) {
    local_.fetch_add(n, std::memory_order_relaxed);
    global_->Add(n);
  }
  uint64_t Value() const { return local_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> local_{0};
  Counter* global_;
};

/// Per-instance high-water mark mirrored into a registry gauge.
class MirroredMaxGauge {
 public:
  explicit MirroredMaxGauge(const char* global_name)
      : global_(MetricsRegistry::Global().GetGauge(global_name)) {}

  void UpdateMax(uint64_t v) {
    uint64_t current = local_.load(std::memory_order_relaxed);
    while (v > current &&
           !local_.compare_exchange_weak(current, v,
                                         std::memory_order_relaxed)) {
    }
    global_->UpdateMax(static_cast<int64_t>(v));
  }
  uint64_t Value() const { return local_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> local_{0};
  Gauge* global_;
};

}  // namespace mlcs::obs

#endif  // MLCS_OBS_METRICS_H_
