#include "obs/trace.h"

#include "common/logging.h"
#include "obs/crash_state.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace mlcs::obs {

namespace {

std::atomic<bool> g_tracing_enabled{false};
std::atomic<uint64_t> g_next_trace_id{1};
std::atomic<uint32_t> g_next_thread_index{1};

/// Per-trace span cap: a runaway plan (or a pathological query) cannot
/// grow a trace without bound. Further spans are dropped, counted in
/// `mlcs.trace.dropped_spans`, and warned once per trace.
constexpr size_t kMaxSpansPerTrace = 8192;

/// The thread's current trace state. `parent` is the span id new spans
/// nest under (maintained by ScopedSpan as scopes open and close).
struct TlsTrace {
  TraceContext* ctx = nullptr;
  uint32_t parent = 0;
};
thread_local TlsTrace tls_trace;

Counter* DroppedSpansCounter() {
  static Counter* counter =
      MetricsRegistry::Global().GetCounter("mlcs.trace.dropped_spans");
  return counter;
}

/// -- crash-visible per-thread span stacks -----------------------------------
///
/// Each thread that ever records a span claims one crash::ThreadSlot for
/// its lifetime; span begin/end push and pop fixed-size sanitized name
/// frames so the signal handler can print "what was every thread doing"
/// without touching any heap state.

/// Fixed-buffer copy with JSON-breaking bytes replaced — the crash
/// handler quotes these frames verbatim.
void CopyFrameName(char* dst, size_t cap, const std::string& src) {
  size_t n = 0;
  for (char c : src) {
    if (n + 1 >= cap) break;
    unsigned char u = static_cast<unsigned char>(c);
    dst[n++] = (u < 0x20 || c == '"' || c == '\\') ? ' ' : c;
  }
  dst[n] = '\0';
}

struct ThreadSlotHandle {
  crash::ThreadSlot* slot = nullptr;
  uint32_t index = 0;

  ThreadSlotHandle() {
    index = g_next_thread_index.fetch_add(1, std::memory_order_relaxed);
    crash::CrashState& state = crash::GlobalCrashState();
    for (size_t i = 0; i < crash::kMaxThreadSlots; ++i) {
      uint32_t expected = 0;
      if (state.thread_slots[i].in_use.compare_exchange_strong(
              expected, 1, std::memory_order_acq_rel)) {
        slot = &state.thread_slots[i];
        slot->thread_index.store(index, std::memory_order_relaxed);
        slot->trace_id.store(0, std::memory_order_relaxed);
        slot->depth.store(0, std::memory_order_release);
        break;
      }
    }
    // All kMaxThreadSlots taken: this thread's stack is simply not
    // crash-visible (slot stays null; pushes no-op).
  }

  ~ThreadSlotHandle() {
    if (slot == nullptr) return;
    slot->depth.store(0, std::memory_order_relaxed);
    slot->trace_id.store(0, std::memory_order_relaxed);
    slot->in_use.store(0, std::memory_order_release);
  }
};

thread_local ThreadSlotHandle tls_thread_slot;

void PushThreadFrame(const std::string& name, uint64_t trace_id) {
  crash::ThreadSlot* slot = tls_thread_slot.slot;
  if (slot == nullptr) return;
  slot->trace_id.store(trace_id, std::memory_order_relaxed);
  uint32_t d = slot->depth.load(std::memory_order_relaxed);
  if (d < crash::kMaxSpanDepth) {
    CopyFrameName(slot->names[d], crash::kSpanNameBytes, name);
    slot->depth.store(d + 1, std::memory_order_release);
  } else {
    // Past the fixed depth only the counter grows; the handler clamps.
    slot->depth.store(d + 1, std::memory_order_relaxed);
  }
}

void PopThreadFrame() {
  crash::ThreadSlot* slot = tls_thread_slot.slot;
  if (slot == nullptr) return;
  uint32_t d = slot->depth.load(std::memory_order_relaxed);
  if (d > 0) slot->depth.store(d - 1, std::memory_order_relaxed);
}

}  // namespace

bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void SetTracingEnabled(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

bool TraceActive() { return tls_trace.ctx != nullptr; }

bool TraceCaptureEnabled() {
  return TracingEnabled() || FlightRecorder::RecordingEnabled();
}

uint32_t CurrentThreadIndex() { return tls_thread_slot.index; }

/// -- TraceContext -----------------------------------------------------------

TraceContext::TraceContext(std::string root_name, bool force) {
  if (!force && !TracingEnabled()) return;
  active_ = true;
  trace_id_ = g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
  root_name_ = std::move(root_name);
  start_ = std::chrono::steady_clock::now();
  // Constructor: not yet visible to other threads.
  spans_.reserve(16);  // lint:allow(guarded-access)
  prev_ctx_ = tls_trace.ctx;
  prev_parent_ = tls_trace.parent;
  tls_trace.ctx = this;
  tls_trace.parent = 1;  // children of the root span
  PushThreadFrame(root_name_, trace_id_);
}

TraceContext::~TraceContext() {
  if (!active_) return;
  PopThreadFrame();
  tls_trace.ctx = prev_ctx_;
  tls_trace.parent = prev_parent_;
  if (consumed_) return;
  std::vector<TraceSpan> spans;
  {
    MutexLock lock(&mutex_);
    spans = std::move(spans_);
  }
  TraceSpan root = MakeRootSpan();
  RecordedTrace rec;
  rec.trace_id = trace_id_;
  rec.root_name = root_name_;
  rec.query_text = std::move(query_text_);
  rec.plan_text = std::move(plan_text_);
  rec.duration_ms =
      std::chrono::duration<double, std::milli>(root.duration).count();
  rec.dropped_spans = dropped_.load(std::memory_order_relaxed);
  rec.truncated = rec.dropped_spans > 0;
  spans.push_back(std::move(root));
  rec.spans = std::move(spans);
  FlightRecorder::Global().AddTrace(std::move(rec));
}

double TraceContext::ElapsedMs() const {
  if (!active_) return 0.0;
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

void TraceContext::set_query_text(std::string sql) {
  if (!active_) return;
  query_text_ = std::move(sql);
}

void TraceContext::set_plan_text(std::string plan) {
  if (!active_) return;
  plan_text_ = std::move(plan);
}

uint64_t TraceContext::dropped_spans() const {
  return dropped_.load(std::memory_order_relaxed);
}

TraceSpan TraceContext::MakeRootSpan() const {
  TraceSpan root;
  root.trace_id = trace_id_;
  root.span_id = 1;
  root.parent_id = 0;
  root.tid = CurrentThreadIndex();
  root.name = root_name_;
  root.start_offset = std::chrono::nanoseconds{0};
  root.duration = std::chrono::steady_clock::now() - start_;
  uint64_t dropped = dropped_.load(std::memory_order_relaxed);
  if (dropped > 0) {
    // Per-trace attribution: the cap is visible on the trace itself, not
    // just as a process-wide counter.
    root.note = "truncated: dropped " + std::to_string(dropped) + " spans";
  }
  return root;
}

void TraceContext::Record(TraceSpan span) {
  span.trace_id = trace_id_;
  MutexLock lock(&mutex_);
  if (spans_.size() >= kMaxSpansPerTrace) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    DroppedSpansCounter()->Add(1);
    if (!dropped_warned_) {
      dropped_warned_ = true;
      MLCS_LOG(kWarn) << "trace span cap reached, dropping further spans "
                      << Kv("trace_id", trace_id_)
                      << Kv("cap", kMaxSpansPerTrace);
    }
    return;
  }
  spans_.push_back(std::move(span));
}

void TraceContext::RecordSpan(std::string name,
                              std::chrono::steady_clock::time_point start,
                              std::chrono::steady_clock::time_point end,
                              uint64_t rows_in, uint64_t rows_out,
                              uint64_t bytes) {
  if (!active_) return;
  TraceSpan span;
  span.span_id = NextSpanId();
  span.parent_id = 1;
  span.tid = CurrentThreadIndex();
  span.name = std::move(name);
  span.start_offset = start - start_;
  span.duration = end - start;
  span.rows_in = rows_in;
  span.rows_out = rows_out;
  span.bytes = bytes;
  Record(std::move(span));
}

std::vector<TraceSpan> TraceContext::ConsumeSpans() {
  if (!active_) return {};
  consumed_ = true;
  std::vector<TraceSpan> spans;
  {
    MutexLock lock(&mutex_);
    spans = std::move(spans_);
  }
  spans.push_back(MakeRootSpan());
  return spans;
}

/// -- ScopedTraceAttach ------------------------------------------------------

ScopedTraceAttach::ScopedTraceAttach(TraceContext* ctx)
    : saved_ctx_(tls_trace.ctx), saved_parent_(tls_trace.parent) {
  if (ctx == nullptr || !ctx->active()) return;
  attached_ = true;
  tls_trace.ctx = ctx;
  tls_trace.parent = 1;
}

ScopedTraceAttach::~ScopedTraceAttach() {
  if (!attached_) return;
  tls_trace.ctx = saved_ctx_;
  tls_trace.parent = saved_parent_;
}

/// -- ScopedSpan -------------------------------------------------------------

ScopedSpan::ScopedSpan(const char* name) {
  if (tls_trace.ctx == nullptr) return;
  Begin(name);
}

ScopedSpan::ScopedSpan(std::string name) {
  if (tls_trace.ctx == nullptr) return;
  Begin(std::move(name));
}

ScopedSpan::ScopedSpan(const char* prefix, const std::string& suffix) {
  if (tls_trace.ctx == nullptr) return;
  Begin(std::string(prefix) + suffix);
}

void ScopedSpan::Begin(std::string name) {
  ctx_ = tls_trace.ctx;
  name_ = std::move(name);
  parent_ = tls_trace.parent;
  span_id_ = ctx_->NextSpanId();
  tls_trace.parent = span_id_;  // nested spans parent under this one
  PushThreadFrame(name_, ctx_->trace_id());
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (ctx_ == nullptr) return;
  auto end = std::chrono::steady_clock::now();
  PopThreadFrame();
  tls_trace.parent = parent_;
  TraceSpan span;
  span.span_id = span_id_;
  span.parent_id = parent_;
  span.tid = CurrentThreadIndex();
  span.name = std::move(name_);
  span.start_offset = start_ - ctx_->start_;
  span.duration = end - start_;
  span.rows_in = rows_in_;
  span.rows_out = rows_out_;
  span.bytes = bytes_;
  span.note = std::move(note_);
  span.op_token = op_token_;
  ctx_->Record(std::move(span));
}

}  // namespace mlcs::obs
