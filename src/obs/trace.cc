#include "obs/trace.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"

namespace mlcs::obs {

namespace {

std::atomic<bool> g_tracing_enabled{false};
std::atomic<uint64_t> g_next_trace_id{1};

/// Per-trace span cap: a runaway plan (or a pathological query) cannot
/// grow a trace without bound. Further spans are dropped, counted in
/// `mlcs.trace.dropped_spans`, and warned once per trace.
constexpr size_t kMaxSpansPerTrace = 8192;

/// The thread's current trace state. `parent` is the span id new spans
/// nest under (maintained by ScopedSpan as scopes open and close).
struct TlsTrace {
  TraceContext* ctx = nullptr;
  uint32_t parent = 0;
};
thread_local TlsTrace tls_trace;

Counter* DroppedSpansCounter() {
  static Counter* counter =
      MetricsRegistry::Global().GetCounter("mlcs.trace.dropped_spans");
  return counter;
}

}  // namespace

bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void SetTracingEnabled(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

bool TraceActive() { return tls_trace.ctx != nullptr; }

/// -- TraceContext -----------------------------------------------------------

TraceContext::TraceContext(std::string root_name, bool force) {
  if (!force && !TracingEnabled()) return;
  active_ = true;
  trace_id_ = g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
  root_name_ = std::move(root_name);
  start_ = std::chrono::steady_clock::now();
  // Constructor: not yet visible to other threads.
  spans_.reserve(16);  // lint:allow(guarded-access)
  prev_ctx_ = tls_trace.ctx;
  prev_parent_ = tls_trace.parent;
  tls_trace.ctx = this;
  tls_trace.parent = 1;  // children of the root span
}

TraceContext::~TraceContext() {
  if (!active_) return;
  tls_trace.ctx = prev_ctx_;
  tls_trace.parent = prev_parent_;
  if (consumed_) return;
  std::vector<TraceSpan> spans;
  {
    MutexLock lock(&mutex_);
    spans = std::move(spans_);
  }
  spans.push_back(MakeRootSpan());
  TraceSink::Global().AddTrace(std::move(spans));
}

TraceSpan TraceContext::MakeRootSpan() const {
  TraceSpan root;
  root.trace_id = trace_id_;
  root.span_id = 1;
  root.parent_id = 0;
  root.name = root_name_;
  root.start_offset = std::chrono::nanoseconds{0};
  root.duration = std::chrono::steady_clock::now() - start_;
  return root;
}

void TraceContext::Record(TraceSpan span) {
  span.trace_id = trace_id_;
  MutexLock lock(&mutex_);
  if (spans_.size() >= kMaxSpansPerTrace) {
    DroppedSpansCounter()->Add(1);
    if (!dropped_warned_) {
      dropped_warned_ = true;
      MLCS_LOG(kWarn) << "trace span cap reached, dropping further spans "
                      << Kv("trace_id", trace_id_)
                      << Kv("cap", kMaxSpansPerTrace);
    }
    return;
  }
  spans_.push_back(std::move(span));
}

void TraceContext::RecordSpan(std::string name,
                              std::chrono::steady_clock::time_point start,
                              std::chrono::steady_clock::time_point end,
                              uint64_t rows_in, uint64_t rows_out,
                              uint64_t bytes) {
  if (!active_) return;
  TraceSpan span;
  span.span_id = NextSpanId();
  span.parent_id = 1;
  span.name = std::move(name);
  span.start_offset = start - start_;
  span.duration = end - start;
  span.rows_in = rows_in;
  span.rows_out = rows_out;
  span.bytes = bytes;
  Record(std::move(span));
}

std::vector<TraceSpan> TraceContext::ConsumeSpans() {
  if (!active_) return {};
  consumed_ = true;
  std::vector<TraceSpan> spans;
  {
    MutexLock lock(&mutex_);
    spans = std::move(spans_);
  }
  spans.push_back(MakeRootSpan());
  return spans;
}

/// -- ScopedTraceAttach ------------------------------------------------------

ScopedTraceAttach::ScopedTraceAttach(TraceContext* ctx)
    : saved_ctx_(tls_trace.ctx), saved_parent_(tls_trace.parent) {
  if (ctx == nullptr || !ctx->active()) return;
  attached_ = true;
  tls_trace.ctx = ctx;
  tls_trace.parent = 1;
}

ScopedTraceAttach::~ScopedTraceAttach() {
  if (!attached_) return;
  tls_trace.ctx = saved_ctx_;
  tls_trace.parent = saved_parent_;
}

/// -- ScopedSpan -------------------------------------------------------------

ScopedSpan::ScopedSpan(const char* name) {
  if (tls_trace.ctx == nullptr) return;
  Begin(name);
}

ScopedSpan::ScopedSpan(std::string name) {
  if (tls_trace.ctx == nullptr) return;
  Begin(std::move(name));
}

ScopedSpan::ScopedSpan(const char* prefix, const std::string& suffix) {
  if (tls_trace.ctx == nullptr) return;
  Begin(std::string(prefix) + suffix);
}

void ScopedSpan::Begin(std::string name) {
  ctx_ = tls_trace.ctx;
  name_ = std::move(name);
  parent_ = tls_trace.parent;
  span_id_ = ctx_->NextSpanId();
  tls_trace.parent = span_id_;  // nested spans parent under this one
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (ctx_ == nullptr) return;
  auto end = std::chrono::steady_clock::now();
  tls_trace.parent = parent_;
  TraceSpan span;
  span.span_id = span_id_;
  span.parent_id = parent_;
  span.name = std::move(name_);
  span.start_offset = start_ - ctx_->start_;
  span.duration = end - start_;
  span.rows_in = rows_in_;
  span.rows_out = rows_out_;
  span.bytes = bytes_;
  span.note = std::move(note_);
  span.op_token = op_token_;
  ctx_->Record(std::move(span));
}

/// -- TraceSink --------------------------------------------------------------

void TraceSink::AddTrace(std::vector<TraceSpan> spans) {
  if (spans.empty()) return;
  static Counter* evicted =
      MetricsRegistry::Global().GetCounter("mlcs.trace.evicted_traces");
  MutexLock lock(&mutex_);
  traces_.push_back(std::move(spans));
  while (traces_.size() > kMaxTraces) {
    traces_.pop_front();
    evicted->Add(1);
  }
}

std::vector<TraceSpan> TraceSink::Query(uint64_t trace_id) const {
  MutexLock lock(&mutex_);
  std::vector<TraceSpan> out;
  for (const auto& trace : traces_) {
    if (trace_id != 0 && (trace.empty() || trace[0].trace_id != trace_id)) {
      continue;
    }
    out.insert(out.end(), trace.begin(), trace.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
              return a.span_id < b.span_id;
            });
  return out;
}

void TraceSink::Clear() {
  MutexLock lock(&mutex_);
  traces_.clear();
}

TraceSink& TraceSink::Global() {
  static TraceSink* sink = new TraceSink();
  return *sink;
}

}  // namespace mlcs::obs
