#ifndef MLCS_VSCRIPT_VS_LEXER_H_
#define MLCS_VSCRIPT_VS_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace mlcs::vscript {

enum class TokenType {
  kIdent,
  kInt,
  kFloat,
  kString,
  // keywords
  kReturn,
  kIf,
  kElse,
  kWhile,
  kAnd,
  kOr,
  kNot,
  kTrue,
  kFalse,
  kNull,
  // punctuation / operators
  kAssign,   // =
  kEq,       // ==
  kNe,       // !=
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kComma,
  kSemicolon,
  kColon,
  kDot,
  kEof,
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;
  int line = 1;
};

/// Tokenizes a VectorScript body. `#` starts a line comment (Python
/// flavor, matching the paper's UDF bodies).
Result<std::vector<Token>> Tokenize(const std::string& source);

const char* TokenTypeToString(TokenType type);

}  // namespace mlcs::vscript

#endif  // MLCS_VSCRIPT_VS_LEXER_H_
