#include "vscript/vs_builtins.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/logging.h"
#include "common/random.h"
#include "ml/decision_tree.h"
#include "ml/knn.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "ml/naive_bayes.h"
#include "ml/pickle.h"
#include "ml/random_forest.h"

namespace mlcs::vscript {

namespace {

Status Arity(const std::string& name, const std::vector<ScriptValue>& args,
             size_t min_args, size_t max_args) {
  if (args.size() < min_args || args.size() > max_args) {
    return Status::InvalidArgument(
        name + " expects " + std::to_string(min_args) +
        (max_args == min_args ? "" : ".." + std::to_string(max_args)) +
        " arguments, got " + std::to_string(args.size()));
  }
  return Status::OK();
}

Result<int64_t> IntArg(const std::string& name,
                       const std::vector<ScriptValue>& args, size_t i) {
  MLCS_ASSIGN_OR_RETURN(Value v, args[i].AsScalar());
  auto r = v.AsInt64();
  if (!r.ok()) {
    return Status::InvalidArgument(name + ": argument " +
                                   std::to_string(i + 1) +
                                   " must be an integer");
  }
  return r;
}

Result<ml::ModelPtr> ModelArg(const std::string& name,
                              const std::vector<ScriptValue>& args,
                              size_t i) {
  if (i >= args.size() || !args[i].is_model()) {
    return Status::InvalidArgument(name + ": argument " +
                                   std::to_string(i + 1) +
                                   " must be a model handle");
  }
  return args[i].model();
}

/// Collects feature columns args[begin, end) into a Matrix.
Result<ml::Matrix> FeaturesArg(const std::string& name,
                               const std::vector<ScriptValue>& args,
                               size_t begin, size_t end) {
  std::vector<ColumnPtr> cols;
  for (size_t i = begin; i < end; ++i) {
    MLCS_ASSIGN_OR_RETURN(ColumnPtr col, args[i].AsColumn());
    cols.push_back(std::move(col));
  }
  if (cols.empty()) {
    return Status::InvalidArgument(name + ": needs at least one feature");
  }
  return ml::Matrix::FromColumns(cols);
}

Result<ml::Labels> LabelsArg(const std::string& /*name*/,
                             const std::vector<ScriptValue>& args,
                             size_t i) {
  MLCS_ASSIGN_OR_RETURN(ColumnPtr col, args[i].AsColumn());
  MLCS_ASSIGN_OR_RETURN(ColumnPtr as_int, col->CastTo(TypeId::kInt32));
  // Same-type CastTo preserves encoding; i32_data() needs plain storage.
  if (as_int->is_encoded()) as_int = as_int->Decode();
  ml::Labels labels(as_int->i32_data());
  return labels;
}

/// Scalar statistics shared by vec.sum / vec.avg / vec.min / vec.max.
Result<ScriptValue> VecStat(const std::string& op,
                            const std::vector<ScriptValue>& args) {
  MLCS_RETURN_IF_ERROR(Arity("vec." + op, args, 1, 1));
  MLCS_ASSIGN_OR_RETURN(ColumnPtr col, args[0].AsColumn());
  MLCS_ASSIGN_OR_RETURN(std::vector<double> data, col->ToDoubleVector());
  if (data.empty()) {
    return Status::InvalidArgument("vec." + op + " of an empty column");
  }
  double acc;
  if (op == "sum" || op == "avg") {
    acc = 0;
    for (double v : data) {
      if (!std::isnan(v)) acc += v;
    }
    if (op == "avg") acc /= static_cast<double>(data.size());
  } else if (op == "min") {
    acc = data[0];
    for (double v : data) {
      if (!std::isnan(v)) acc = std::min(acc, v);
    }
  } else {
    acc = data[0];
    for (double v : data) {
      if (!std::isnan(v)) acc = std::max(acc, v);
    }
  }
  return ScriptValue(Value::Double(acc));
}

Result<ScriptValue> MlBuiltin(const std::string& name,
                              const std::vector<ScriptValue>& args) {
  if (name == "ml.random_forest") {
    MLCS_RETURN_IF_ERROR(Arity(name, args, 1, 3));
    ml::RandomForestOptions opt;
    MLCS_ASSIGN_OR_RETURN(int64_t n, IntArg(name, args, 0));
    opt.n_estimators = static_cast<int>(n);
    if (args.size() >= 2) {
      MLCS_ASSIGN_OR_RETURN(int64_t d, IntArg(name, args, 1));
      opt.max_depth = static_cast<int>(d);
    }
    if (args.size() >= 3) {
      MLCS_ASSIGN_OR_RETURN(int64_t s, IntArg(name, args, 2));
      opt.seed = static_cast<uint64_t>(s);
    }
    return ScriptValue(ml::ModelPtr(std::make_shared<ml::RandomForest>(opt)));
  }
  if (name == "ml.decision_tree") {
    MLCS_RETURN_IF_ERROR(Arity(name, args, 0, 1));
    ml::DecisionTreeOptions opt;
    if (!args.empty()) {
      MLCS_ASSIGN_OR_RETURN(int64_t d, IntArg(name, args, 0));
      opt.max_depth = static_cast<int>(d);
    }
    return ScriptValue(ml::ModelPtr(std::make_shared<ml::DecisionTree>(opt)));
  }
  if (name == "ml.logistic_regression") {
    MLCS_RETURN_IF_ERROR(Arity(name, args, 0, 2));
    ml::LogisticRegressionOptions opt;
    if (args.size() >= 1) {
      MLCS_ASSIGN_OR_RETURN(int64_t e, IntArg(name, args, 0));
      opt.epochs = static_cast<int>(e);
    }
    if (args.size() >= 2) {
      MLCS_ASSIGN_OR_RETURN(Value lr, args[1].AsScalar());
      MLCS_ASSIGN_OR_RETURN(opt.learning_rate, lr.AsDouble());
    }
    return ScriptValue(
        ml::ModelPtr(std::make_shared<ml::LogisticRegression>(opt)));
  }
  if (name == "ml.naive_bayes") {
    MLCS_RETURN_IF_ERROR(Arity(name, args, 0, 0));
    return ScriptValue(ml::ModelPtr(std::make_shared<ml::NaiveBayes>()));
  }
  if (name == "ml.knn") {
    MLCS_RETURN_IF_ERROR(Arity(name, args, 0, 1));
    ml::KnnOptions opt;
    if (!args.empty()) {
      MLCS_ASSIGN_OR_RETURN(int64_t k, IntArg(name, args, 0));
      if (k <= 0) return Status::InvalidArgument("ml.knn: k must be > 0");
      opt.k = static_cast<size_t>(k);
    }
    return ScriptValue(ml::ModelPtr(std::make_shared<ml::Knn>(opt)));
  }
  if (name == "ml.fit") {
    MLCS_RETURN_IF_ERROR(Arity(name, args, 3, 256));
    MLCS_ASSIGN_OR_RETURN(ml::ModelPtr model, ModelArg(name, args, 0));
    MLCS_ASSIGN_OR_RETURN(ml::Matrix x,
                          FeaturesArg(name, args, 1, args.size() - 1));
    MLCS_ASSIGN_OR_RETURN(ml::Labels y,
                          LabelsArg(name, args, args.size() - 1));
    MLCS_RETURN_IF_ERROR(model->Fit(x, y));
    return ScriptValue();  // fit mutates the handle
  }
  if (name == "ml.predict") {
    MLCS_RETURN_IF_ERROR(Arity(name, args, 2, 256));
    MLCS_ASSIGN_OR_RETURN(ml::ModelPtr model, ModelArg(name, args, 0));
    MLCS_ASSIGN_OR_RETURN(ml::Matrix x,
                          FeaturesArg(name, args, 1, args.size()));
    MLCS_ASSIGN_OR_RETURN(ml::Labels pred, model->Predict(x));
    return ScriptValue(Column::FromInt32(std::move(pred)));
  }
  if (name == "ml.predict_proba") {
    MLCS_RETURN_IF_ERROR(Arity(name, args, 3, 256));
    MLCS_ASSIGN_OR_RETURN(ml::ModelPtr model, ModelArg(name, args, 0));
    MLCS_ASSIGN_OR_RETURN(int64_t cls, IntArg(name, args, 1));
    MLCS_ASSIGN_OR_RETURN(ml::Matrix x,
                          FeaturesArg(name, args, 2, args.size()));
    MLCS_ASSIGN_OR_RETURN(std::vector<double> proba,
                          model->PredictProba(x, static_cast<int32_t>(cls)));
    return ScriptValue(Column::FromDouble(std::move(proba)));
  }
  if (name == "ml.confidence") {
    MLCS_RETURN_IF_ERROR(Arity(name, args, 2, 256));
    MLCS_ASSIGN_OR_RETURN(ml::ModelPtr model, ModelArg(name, args, 0));
    MLCS_ASSIGN_OR_RETURN(ml::Matrix x,
                          FeaturesArg(name, args, 1, args.size()));
    MLCS_ASSIGN_OR_RETURN(std::vector<double> conf,
                          model->PredictConfidence(x));
    return ScriptValue(Column::FromDouble(std::move(conf)));
  }
  if (name == "ml.accuracy") {
    MLCS_RETURN_IF_ERROR(Arity(name, args, 2, 2));
    MLCS_ASSIGN_OR_RETURN(ml::Labels y_true, LabelsArg(name, args, 0));
    MLCS_ASSIGN_OR_RETURN(ml::Labels y_pred, LabelsArg(name, args, 1));
    MLCS_ASSIGN_OR_RETURN(double acc, ml::Accuracy(y_true, y_pred));
    return ScriptValue(Value::Double(acc));
  }
  return Status::NotFound("unknown builtin '" + name + "'");
}

Result<ScriptValue> PickleBuiltin(const std::string& name,
                                  const std::vector<ScriptValue>& args) {
  if (name == "pickle.dumps") {
    MLCS_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    MLCS_ASSIGN_OR_RETURN(ml::ModelPtr model, ModelArg(name, args, 0));
    return ScriptValue(Value::Blob(ml::pickle::Dumps(*model)));
  }
  if (name == "pickle.loads") {
    MLCS_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    MLCS_ASSIGN_OR_RETURN(Value blob, args[0].AsScalar());
    if (blob.type() != TypeId::kBlob && blob.type() != TypeId::kVarchar) {
      return Status::InvalidArgument("pickle.loads expects a BLOB");
    }
    MLCS_ASSIGN_OR_RETURN(ml::ModelPtr model,
                          ml::pickle::Loads(blob.blob_value()));
    return ScriptValue(std::move(model));
  }
  return Status::NotFound("unknown builtin '" + name + "'");
}

Result<ScriptValue> VecBuiltin(const std::string& name,
                               const std::vector<ScriptValue>& args) {
  if (name == "vec.len") {
    MLCS_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    MLCS_ASSIGN_OR_RETURN(ColumnPtr col, args[0].AsColumn());
    return ScriptValue(Value::Int64(static_cast<int64_t>(col->size())));
  }
  if (name == "vec.sum" || name == "vec.avg" || name == "vec.min" ||
      name == "vec.max") {
    return VecStat(name.substr(4), args);
  }
  if (name == "vec.fill") {
    MLCS_RETURN_IF_ERROR(Arity(name, args, 2, 2));
    MLCS_ASSIGN_OR_RETURN(Value v, args[0].AsScalar());
    MLCS_ASSIGN_OR_RETURN(int64_t n, IntArg(name, args, 1));
    if (n < 0) return Status::InvalidArgument("vec.fill: negative length");
    return ScriptValue(Column::Constant(v, static_cast<size_t>(n)));
  }
  if (name == "vec.abs" || name == "vec.log" || name == "vec.exp" ||
      name == "vec.sqrt" || name == "vec.round" || name == "vec.floor" ||
      name == "vec.ceil") {
    MLCS_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    MLCS_ASSIGN_OR_RETURN(ColumnPtr col, args[0].AsColumn());
    MLCS_ASSIGN_OR_RETURN(std::vector<double> data, col->ToDoubleVector());
    const std::string op = name.substr(4);
    for (auto& v : data) {
      if (op == "abs") {
        v = std::fabs(v);
      } else if (op == "log") {
        v = std::log(v);
      } else if (op == "exp") {
        v = std::exp(v);
      } else if (op == "sqrt") {
        v = std::sqrt(v);
      } else if (op == "round") {
        v = std::round(v);
      } else if (op == "floor") {
        v = std::floor(v);
      } else {
        v = std::ceil(v);
      }
    }
    ColumnPtr out = Column::FromDouble(std::move(data));
    if (col->has_nulls()) {
      for (size_t i = 0; i < col->size(); ++i) {
        if (col->IsNull(i)) out->SetNull(i);
      }
    }
    if (args[0].is_scalar()) {
      MLCS_ASSIGN_OR_RETURN(Value v, out->GetValue(0));
      return ScriptValue(std::move(v));
    }
    return ScriptValue(std::move(out));
  }
  if (name == "vec.where") {
    // vec.where(cond, a, b): per-row select, numpy.where semantics.
    MLCS_RETURN_IF_ERROR(Arity(name, args, 3, 3));
    MLCS_ASSIGN_OR_RETURN(ColumnPtr cond, args[0].AsColumn());
    if (cond->type() != TypeId::kBool) {
      return Status::TypeMismatch("vec.where condition must be boolean");
    }
    if (cond->is_encoded()) cond = cond->Decode();  // bool_data() below
    MLCS_ASSIGN_OR_RETURN(ColumnPtr a, args[1].AsColumn());
    MLCS_ASSIGN_OR_RETURN(ColumnPtr b, args[2].AsColumn());
    size_t n = cond->size();
    MLCS_ASSIGN_OR_RETURN(TypeId out_type,
                          CommonNumericType(a->type(), b->type()));
    ColumnPtr out = Column::Make(out_type);
    out->Reserve(n);
    const auto& mask = cond->bool_data();
    for (size_t i = 0; i < n; ++i) {
      const ColumnPtr& src = mask[i] != 0 ? a : b;
      size_t idx = src->size() == 1 ? 0 : i;
      if (idx >= src->size()) {
        return Status::InvalidArgument("vec.where operand too short");
      }
      if (cond->IsNull(i) || src->IsNull(idx)) {
        out->AppendNull();
        continue;
      }
      MLCS_ASSIGN_OR_RETURN(Value v, src->GetValue(idx));
      MLCS_RETURN_IF_ERROR(out->AppendValue(v));
    }
    return ScriptValue(std::move(out));
  }
  if (name == "vec.clip") {
    MLCS_RETURN_IF_ERROR(Arity(name, args, 3, 3));
    MLCS_ASSIGN_OR_RETURN(ColumnPtr col, args[0].AsColumn());
    MLCS_ASSIGN_OR_RETURN(Value lo_v, args[1].AsScalar());
    MLCS_ASSIGN_OR_RETURN(Value hi_v, args[2].AsScalar());
    MLCS_ASSIGN_OR_RETURN(double lo, lo_v.AsDouble());
    MLCS_ASSIGN_OR_RETURN(double hi, hi_v.AsDouble());
    if (lo > hi) return Status::InvalidArgument("vec.clip: lo > hi");
    MLCS_ASSIGN_OR_RETURN(std::vector<double> data, col->ToDoubleVector());
    for (auto& v : data) v = std::clamp(v, lo, hi);
    ColumnPtr out = Column::FromDouble(std::move(data));
    if (col->has_nulls()) {
      for (size_t i = 0; i < col->size(); ++i) {
        if (col->IsNull(i)) out->SetNull(i);
      }
    }
    return ScriptValue(std::move(out));
  }
  if (name == "vec.fillna") {
    // Replace NULL/NaN with a scalar — the paper's §3 "inconsistencies
    // from incorrect or missing measurements are corrected" step.
    MLCS_RETURN_IF_ERROR(Arity(name, args, 2, 2));
    MLCS_ASSIGN_OR_RETURN(ColumnPtr col, args[0].AsColumn());
    MLCS_ASSIGN_OR_RETURN(Value fill, args[1].AsScalar());
    MLCS_ASSIGN_OR_RETURN(std::vector<double> data, col->ToDoubleVector());
    MLCS_ASSIGN_OR_RETURN(double f, fill.AsDouble());
    for (auto& v : data) {
      if (std::isnan(v)) v = f;
    }
    return ScriptValue(Column::FromDouble(std::move(data)));
  }
  if (name == "vec.random") {
    MLCS_RETURN_IF_ERROR(Arity(name, args, 1, 2));
    MLCS_ASSIGN_OR_RETURN(int64_t n, IntArg(name, args, 0));
    if (n < 0) return Status::InvalidArgument("vec.random: negative length");
    uint64_t seed = 42;
    if (args.size() >= 2) {
      MLCS_ASSIGN_OR_RETURN(int64_t s, IntArg(name, args, 1));
      seed = static_cast<uint64_t>(s);
    }
    Rng rng(seed);
    std::vector<double> data(static_cast<size_t>(n));
    for (auto& v : data) v = rng.NextDouble();
    return ScriptValue(Column::FromDouble(std::move(data)));
  }
  return Status::NotFound("unknown builtin '" + name + "'");
}

}  // namespace

bool IsBuiltin(const std::string& name) {
  static const std::set<std::string>* kNames = new std::set<std::string>{
      "ml.random_forest", "ml.decision_tree", "ml.logistic_regression",
      "ml.naive_bayes",   "ml.knn",           "ml.fit",
      "ml.predict",
      "ml.predict_proba", "ml.confidence",    "ml.accuracy",
      "pickle.dumps",     "pickle.loads",     "vec.len",
      "vec.sum",          "vec.avg",          "vec.min",
      "vec.max",          "vec.fill",         "vec.random",
      "vec.abs",          "vec.log",          "vec.exp",
      "vec.sqrt",         "vec.round",        "vec.floor",
      "vec.ceil",         "vec.where",        "vec.clip",
      "vec.fillna",       "print"};
  return kNames->count(name) > 0;
}

Result<ScriptValue> CallBuiltin(const std::string& name,
                                const std::vector<ScriptValue>& args) {
  if (name.rfind("ml.", 0) == 0) return MlBuiltin(name, args);
  if (name.rfind("pickle.", 0) == 0) return PickleBuiltin(name, args);
  if (name.rfind("vec.", 0) == 0) return VecBuiltin(name, args);
  if (name == "print") {
    std::string rendered;
    for (const auto& arg : args) {
      if (!rendered.empty()) rendered += " ";
      rendered += arg.ToString();
    }
    MLCS_LOG(kInfo) << "[vscript] " << rendered;
    return ScriptValue();
  }
  return Status::NotFound("unknown function '" + name + "'");
}

}  // namespace mlcs::vscript
