#include "vscript/vs_interpreter.h"

#include "vscript/vs_builtins.h"
#include "vscript/vs_parser.h"

namespace mlcs::vscript {

namespace {

Status AtLine(Status st, int line) {
  if (st.ok()) return st;
  return Status(st.code(),
                st.message() + " (script line " + std::to_string(line) + ")");
}

class Interpreter {
 public:
  Interpreter(const Program& program, Environment env,
              const InterpreterOptions& options)
      : program_(program), env_(std::move(env)), options_(options) {}

  Result<ScriptValue> Run() {
    MLCS_ASSIGN_OR_RETURN(bool returned, RunBlock(program_.statements));
    if (returned) return return_value_;
    return ScriptValue();  // fell off the end → null
  }

 private:
  /// Executes statements; true means a `return` fired.
  Result<bool> RunBlock(const std::vector<StmtPtr>& body) {
    for (const auto& stmt : body) {
      if (++steps_ > options_.max_steps) {
        return Status::Internal("script exceeded max step count (" +
                                std::to_string(options_.max_steps) + ")");
      }
      switch (stmt->kind) {
        case StmtKind::kAssign: {
          auto value = EvalExpr(*stmt->expr);
          if (!value.ok()) return AtLine(value.status(), stmt->line);
          env_[stmt->target] = std::move(value).ValueOrDie();
          break;
        }
        case StmtKind::kExpr: {
          auto value = EvalExpr(*stmt->expr);
          if (!value.ok()) return AtLine(value.status(), stmt->line);
          break;
        }
        case StmtKind::kReturn: {
          auto value = EvalExpr(*stmt->expr);
          if (!value.ok()) return AtLine(value.status(), stmt->line);
          return_value_ = std::move(value).ValueOrDie();
          return true;
        }
        case StmtKind::kIf: {
          auto cond = EvalExpr(*stmt->expr);
          if (!cond.ok()) return AtLine(cond.status(), stmt->line);
          auto truth = cond.ValueOrDie().AsBool();
          if (!truth.ok()) return AtLine(truth.status(), stmt->line);
          MLCS_ASSIGN_OR_RETURN(
              bool returned,
              RunBlock(truth.ValueOrDie() ? stmt->body : stmt->orelse));
          if (returned) return true;
          break;
        }
        case StmtKind::kWhile: {
          while (true) {
            if (++steps_ > options_.max_steps) {
              return Status::Internal("script exceeded max step count");
            }
            auto cond = EvalExpr(*stmt->expr);
            if (!cond.ok()) return AtLine(cond.status(), stmt->line);
            auto truth = cond.ValueOrDie().AsBool();
            if (!truth.ok()) return AtLine(truth.status(), stmt->line);
            if (!truth.ValueOrDie()) break;
            MLCS_ASSIGN_OR_RETURN(bool returned, RunBlock(stmt->body));
            if (returned) return true;
          }
          break;
        }
      }
    }
    return false;
  }

  Result<ScriptValue> EvalExpr(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kLiteral:
        return ScriptValue(expr.literal);
      case ExprKind::kVariable: {
        auto it = env_.find(expr.name);
        if (it == env_.end()) {
          return Status::NotFound("undefined variable '" + expr.name + "'");
        }
        return it->second;
      }
      case ExprKind::kBinary: {
        MLCS_ASSIGN_OR_RETURN(ScriptValue left, EvalExpr(*expr.left));
        MLCS_ASSIGN_OR_RETURN(ScriptValue right, EvalExpr(*expr.right));
        return ApplyBinary(expr.bin_op, left, right);
      }
      case ExprKind::kUnary: {
        MLCS_ASSIGN_OR_RETURN(ScriptValue operand, EvalExpr(*expr.left));
        MLCS_ASSIGN_OR_RETURN(ColumnPtr col, operand.AsColumn());
        MLCS_ASSIGN_OR_RETURN(ColumnPtr out,
                              exec::UnaryKernel(expr.un_op, *col));
        return Collapse(std::move(out), operand.is_scalar());
      }
      case ExprKind::kCall: {
        std::vector<ScriptValue> args;
        args.reserve(expr.args.size());
        for (const auto& arg : expr.args) {
          MLCS_ASSIGN_OR_RETURN(ScriptValue v, EvalExpr(*arg));
          args.push_back(std::move(v));
        }
        auto r = CallBuiltin(expr.name, args);
        if (!r.ok()) return AtLine(r.status(), expr.line);
        return r;
      }
      case ExprKind::kDict: {
        ScriptDict dict;
        for (const auto& [key, value_expr] : expr.entries) {
          MLCS_ASSIGN_OR_RETURN(ScriptValue v, EvalExpr(*value_expr));
          dict[key] = std::move(v);
        }
        return ScriptValue(std::move(dict));
      }
    }
    return Status::Internal("unreachable expression kind");
  }

  /// Binary ops via the vectorized kernels. Two scalars collapse back to
  /// a scalar; anything involving a column stays a column.
  Result<ScriptValue> ApplyBinary(exec::BinOpKind op, const ScriptValue& l,
                                  const ScriptValue& r) {
    if (l.is_model() || r.is_model() || l.is_dict() || r.is_dict()) {
      return Status::TypeMismatch(
          "models/dicts do not support arithmetic operators");
    }
    MLCS_ASSIGN_OR_RETURN(ColumnPtr lc, l.AsColumn());
    MLCS_ASSIGN_OR_RETURN(ColumnPtr rc, r.AsColumn());
    MLCS_ASSIGN_OR_RETURN(ColumnPtr out, exec::BinaryKernel(op, *lc, *rc));
    return Collapse(std::move(out), l.is_scalar() && r.is_scalar());
  }

  static Result<ScriptValue> Collapse(ColumnPtr column, bool to_scalar) {
    if (to_scalar && column->size() == 1) {
      MLCS_ASSIGN_OR_RETURN(Value v, column->GetValue(0));
      return ScriptValue(std::move(v));
    }
    return ScriptValue(std::move(column));
  }

  const Program& program_;
  Environment env_;
  InterpreterOptions options_;
  ScriptValue return_value_;
  size_t steps_ = 0;
};

}  // namespace

Result<ScriptValue> Execute(const Program& program, Environment env,
                            const InterpreterOptions& options) {
  Interpreter interp(program, std::move(env), options);
  return interp.Run();
}

Result<ScriptValue> ExecuteSource(const std::string& source, Environment env,
                                  const InterpreterOptions& options) {
  MLCS_ASSIGN_OR_RETURN(Program program, Parse(source));
  return Execute(program, std::move(env), options);
}

}  // namespace mlcs::vscript
